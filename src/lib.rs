//! Workspace root crate: hosts the runnable examples in `examples/` and the
//! cross-crate integration tests in `tests/`. The library surface simply
//! re-exports the `cbma` facade so examples can `use cbma_suite as cbma`.
pub use cbma::*;
