//! Integration: interference coexistence (the Fig. 12 ordering).

use cbma::prelude::*;

fn measure(scenario: Scenario, rounds: usize) -> f64 {
    let mut engine = Engine::new(scenario).unwrap();
    for tag in engine.tags_mut() {
        tag.set_impedance(ImpedanceState::Open);
    }
    1.0 - engine.run_rounds(rounds).fer() // packet reception rate
}

fn base() -> Scenario {
    Scenario::paper_default(vec![Point::new(0.0, 0.4), Point::new(0.0, -0.45)])
}

#[test]
fn wifi_and_bluetooth_cost_little() {
    let clean = measure(base(), 20);
    let wifi = {
        let mut s = base();
        s.interference = InterferenceModel::wifi(Dbm::new(-62.0), 1500);
        measure(s, 20)
    };
    let bt = {
        let mut s = base();
        s.interference = InterferenceModel::bluetooth(Dbm::new(-62.0), 5000);
        measure(s, 20)
    };
    assert!(clean > 0.8, "clean PRR {clean}");
    // The duty-cycled interferers may cost some packets but must leave
    // the system operational (Fig. 12 cases ii and iii).
    assert!(wifi > 0.5, "wifi PRR {wifi}");
    assert!(bt > 0.5, "bluetooth PRR {bt}");
    assert!(clean >= wifi - 0.05);
    assert!(clean >= bt - 0.05);
}

#[test]
fn ofdm_excitation_hurts_much_more() {
    let clean = measure(base(), 20);
    let ofdm = {
        let mut s = base();
        s.excitation = Excitation::ofdm(0.6, 20_000);
        measure(s, 20)
    };
    assert!(
        ofdm < clean - 0.2,
        "intermittent excitation should cost much more: clean {clean}, ofdm {ofdm}"
    );
}

#[test]
fn continuous_ofdm_burst_behaves_like_tone() {
    // Degenerate check: duty ~1 with extremely long bursts approximates
    // the tone.
    let tone = measure(base(), 15);
    let almost_tone = {
        let mut s = base();
        s.excitation = Excitation::ofdm(0.999, 10_000_000);
        measure(s, 15)
    };
    assert!((tone - almost_tone).abs() < 0.2);
}
