//! Integration: the full pipeline from tag framing to receiver ACK.

use cbma::prelude::*;

fn line_positions(n: usize) -> Vec<Point> {
    // Alternating above/below the ES–RX axis, comfortably separated.
    (0..n)
        .map(|i| {
            let y = 0.4 + 0.15 * (i / 2) as f64;
            Point::new(0.0, if i % 2 == 0 { y } else { -y })
        })
        .collect()
}

fn balanced_ten() -> Vec<Point> {
    // Positions mirrored across both axes share the same d1²·d2² product,
    // so all ten links are within ~2 dB of each other.
    vec![
        Point::new(0.15, 0.45),
        Point::new(-0.15, 0.45),
        Point::new(0.15, -0.45),
        Point::new(-0.15, -0.45),
        Point::new(0.35, 0.5),
        Point::new(-0.35, 0.5),
        Point::new(0.35, -0.5),
        Point::new(-0.35, -0.5),
        Point::new(0.0, 0.62),
        Point::new(0.0, -0.62),
    ]
}

fn full_power(engine: &mut Engine) {
    for tag in engine.tags_mut() {
        tag.set_impedance(ImpedanceState::Open);
    }
}

#[test]
fn single_tag_delivers_every_frame_on_clean_channel() {
    let mut engine = Engine::new(Scenario::clean(line_positions(1))).unwrap();
    let stats = engine.run_rounds(15);
    assert_eq!(stats.fer(), 0.0);
    assert_eq!(stats.total_delivered(), 15);
}

#[test]
fn five_tags_collide_and_mostly_deliver() {
    // A balanced-link subset (shared d1²·d2² products) — the line
    // geometry's power spread is the near-far case tested elsewhere.
    let mut engine = Engine::new(Scenario::paper_default(balanced_ten()[..5].to_vec())).unwrap();
    full_power(&mut engine);
    let stats = engine.run_rounds(20);
    assert!(
        stats.fer() < 0.25,
        "5-tag collision FER {} too high",
        stats.fer()
    );
}

#[test]
fn ten_tags_collide_concurrently() {
    let mut engine = Engine::new(Scenario::paper_default(balanced_ten())).unwrap();
    full_power(&mut engine);
    let stats = engine.run_rounds(10);
    // Ten concurrent tags are the paper's headline configuration; most
    // frames must get through in a benign geometry.
    assert!(
        stats.fer() < 0.35,
        "10-tag collision FER {} too high",
        stats.fer()
    );
    // Aggregate modulated rate approaches n_tags × chip rate.
    let agg = stats.aggregate_symbol_rate(&engine.scenario().phy).get();
    assert!(agg > 6.5e6, "aggregate rate {agg} too low");
}

#[test]
fn decoded_payloads_match_what_tags_sent() {
    let mut engine = Engine::new(Scenario::clean(line_positions(3))).unwrap();
    full_power(&mut engine);
    for round in 0..5u64 {
        let expected: Vec<Vec<u8>> = (0..3).map(|i| engine.payload_for(i, round)).collect();
        let outcome = engine.run_round();
        for (id, frame) in outcome.report.frames() {
            assert_eq!(
                frame.payload(),
                expected[id].as_slice(),
                "round {round} tag {id} payload corrupted"
            );
        }
        assert!(outcome.all_delivered(), "round {round}: {outcome:?}");
    }
}

#[test]
fn runs_are_deterministic_per_seed() {
    let run = |seed| {
        let mut engine =
            Engine::new(Scenario::paper_default(line_positions(4)).with_seed(seed)).unwrap();
        (0..8)
            .map(|_| engine.run_round().delivered)
            .collect::<Vec<_>>()
    };
    assert_eq!(run(7), run(7));
    assert_ne!(run(7), run(8));
}

#[test]
fn gold_codes_also_work_end_to_end() {
    let scenario = Scenario::paper_default(line_positions(3)).with_gold_codes(5);
    let mut engine = Engine::new(scenario).unwrap();
    full_power(&mut engine);
    let stats = engine.run_rounds(15);
    assert!(stats.fer() < 0.4, "gold-code FER {}", stats.fer());
}

#[test]
fn subset_transmissions_are_detected_exactly() {
    let mut engine = Engine::new(Scenario::clean(line_positions(6))).unwrap();
    full_power(&mut engine);
    let outcome = engine.run_round_subset(&[1, 4]);
    assert_eq!(outcome.delivered, vec![1, 4]);
    // Inactive tags must not be acknowledged.
    for id in [0u32, 2, 3, 5] {
        assert!(!outcome.report.ack.acknowledges(id));
    }
}
