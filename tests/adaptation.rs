//! Integration: closed-loop power control and node selection.

use cbma::prelude::*;
use cbma::sim::adaptation::Adapter;

#[test]
fn power_control_rescues_a_weak_booted_tag() {
    // Tag 1 boots at the weakest impedance next to a full-power
    // neighbour; Algorithm 1 must step it until its ACK ratio recovers.
    let scenario = Scenario::paper_default(vec![Point::new(0.0, 0.35), Point::new(0.3, -0.6)]);
    let mut engine = Engine::new(scenario).unwrap();
    engine.tags_mut()[0].set_impedance(ImpedanceState::Open);
    engine.tags_mut()[1].set_impedance(ImpedanceState::Inductor2nH);

    let before = {
        let mut probe = Engine::new(engine.scenario().clone()).unwrap();
        probe.tags_mut()[0].set_impedance(ImpedanceState::Open);
        probe.tags_mut()[1].set_impedance(ImpedanceState::Inductor2nH);
        probe.run_rounds(15).fer()
    };
    let adapter = Adapter::paper_default(10);
    let report = adapter.run_power_control(&mut engine);
    let after = engine.run_rounds(15).fer();
    assert!(
        after <= before + 0.05,
        "power control should not make things worse: {before} -> {after} ({report:?})"
    );
    assert!(after < 0.45, "adapted FER {after} still too high");
}

#[test]
fn power_control_respects_the_cycle_cap() {
    // A hopeless deployment must terminate within 3n control cycles.
    let mut scenario = Scenario::paper_default(vec![Point::new(5.0, 5.0)]);
    scenario.noise = NoiseModel::new(Db::new(10.0), Dbm::new(-60.0));
    let mut engine = Engine::new(scenario).unwrap();
    let adapter = Adapter::paper_default(4);
    let report = adapter.run_power_control(&mut engine);
    assert!(report.fer_history.len() <= 3 + 1);
    assert!(report.final_fer() > 0.5, "deployment should remain bad");
}

#[test]
fn node_selection_moves_a_hopeless_tag_and_improves() {
    let scenario = Scenario::paper_default(vec![
        Point::new(0.0, 0.35),
        Point::new(1.9, 2.9), // far corner: unrecoverable by power alone
    ])
    .with_seed(11);
    let mut engine = Engine::new(scenario).unwrap();
    let adapter = Adapter::paper_default(10);
    let idle = vec![Point::new(0.25, -0.4), Point::new(-0.3, 0.5)];
    let report = adapter.run_with_node_selection(&mut engine, &idle);
    assert!(
        report.relocations.iter().any(|&(t, _, _)| t == 1),
        "the far tag should be relocated: {report:?}"
    );
    assert!(
        report.final_fer() < 0.35,
        "post-selection FER {} too high",
        report.final_fer()
    );
}

#[test]
fn node_selection_respects_exclusion_radius() {
    // The only idle position sits 2 cm from the healthy tag — inside the
    // λ/2 exclusion radius — so the annealing pass must not pick it, and
    // the fallback must also skip it.
    let scenario =
        Scenario::paper_default(vec![Point::new(0.0, 0.35), Point::new(1.9, 2.9)]).with_seed(13);
    let mut engine = Engine::new(scenario).unwrap();
    let adapter = Adapter::paper_default(8);
    let idle = vec![Point::new(0.0, 0.37)];
    let report = adapter.run_with_node_selection(&mut engine, &idle);
    assert!(
        report.relocations.is_empty(),
        "must not relocate inside the exclusion radius: {report:?}"
    );
}

#[test]
fn adaptation_report_aggregates_history() {
    let scenario = Scenario::paper_default(vec![Point::new(0.0, 0.4)]);
    let mut engine = Engine::new(scenario).unwrap();
    let adapter = Adapter::paper_default(6);
    let report = adapter.run_with_node_selection(&mut engine, &[]);
    assert!(!report.fer_history.is_empty());
    assert_eq!(report.final_stats.rounds(), 6);
}
