//! Manifest round-trip, determinism and resume guarantees, exercised
//! end-to-end through the public `cbma-harness` API on real campaigns.

use std::path::PathBuf;

use cbma_harness::{campaigns, run_campaign, CampaignManifest, RunnerConfig, Tier};

fn manifest_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("target")
        .join("test-manifests")
}

fn fast_cfg(checkpoint_dir: Option<PathBuf>) -> RunnerConfig {
    RunnerConfig {
        checkpoint_dir,
        ..RunnerConfig::default()
    }
}

/// Serialize → parse → re-serialize is lossless, on a manifest holding
/// real measured points and snapshots.
#[test]
fn manifest_round_trip_is_lossless() {
    let campaign = campaigns::by_name("fig12", Tier::Fast).unwrap();
    let dir = manifest_dir().join(".checkpoints").join("fig12.fast");
    let manifest = run_campaign(&campaign, &fast_cfg(Some(dir))).unwrap();

    let text = manifest.to_json();
    let parsed = CampaignManifest::from_json(&text).expect("canonical manifest parses");
    assert_eq!(parsed, manifest, "parse must reconstruct every field");
    assert_eq!(parsed.to_json(), text, "re-serialization must be byte-identical");

    // The embedded snapshots survived the trip.
    assert_eq!(parsed.points.len(), campaign.points.len());
    for point in &parsed.points {
        assert!(
            point.snapshot.metric_count() > 0,
            "point {} lost its snapshot",
            point.label
        );
        assert!(
            point.totals.rounds > 0 && !point.replicate_fers.is_empty(),
            "point {} lost its measurements",
            point.label
        );
    }
}

/// Two same-seed fast runs — computed from scratch, no checkpoint reuse —
/// produce byte-identical manifests, even with different worker counts.
#[test]
fn same_seed_runs_are_byte_identical() {
    let campaign = campaigns::by_name("fig12", Tier::Fast).unwrap();
    let mut cfg_a = fast_cfg(None);
    cfg_a.workers = 1;
    let mut cfg_b = fast_cfg(None);
    cfg_b.workers = 4;
    let a = run_campaign(&campaign, &cfg_a).unwrap().to_json();
    let b = run_campaign(&campaign, &cfg_b).unwrap().to_json();
    assert_eq!(a, b, "same-seed manifests must be byte-identical");

    // A different root seed must change the measurements (the seed really
    // reaches the channel).
    let mut cfg_c = fast_cfg(None);
    cfg_c.root_seed ^= 0xDEAD;
    let c = run_campaign(&campaign, &cfg_c).unwrap().to_json();
    assert_ne!(a, c, "a different root seed must produce different numbers");
}

/// An interrupted campaign resumes from its checkpoints: deleting one
/// shard forces exactly that point to be recomputed, and the resumed
/// manifest is byte-identical to the uninterrupted one.
#[test]
fn interrupted_campaign_resumes_to_identical_bytes() {
    let campaign = campaigns::by_name("fig11", Tier::Fast).unwrap();
    let shared = manifest_dir().join(".checkpoints").join("fig11.fast");
    let full = run_campaign(&campaign, &fast_cfg(Some(shared.clone()))).unwrap();

    // Simulate an interruption: copy the completed checkpoints, then lose
    // one shard and corrupt another (torn write).
    let resume_dir = manifest_dir().join(".checkpoints").join(format!(
        "fig11.resume.{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&resume_dir);
    std::fs::create_dir_all(&resume_dir).unwrap();
    for entry in std::fs::read_dir(&shared).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), resume_dir.join(entry.file_name())).unwrap();
    }
    std::fs::remove_file(resume_dir.join("point_0002.json")).unwrap();
    std::fs::write(resume_dir.join("point_0004.json"), "{\"torn\":").unwrap();

    let resumed = run_campaign(&campaign, &fast_cfg(Some(resume_dir.clone()))).unwrap();
    assert_eq!(
        resumed.to_json(),
        full.to_json(),
        "resume after losing shards must reproduce the uninterrupted bytes"
    );
    // The recomputed shards were re-persisted.
    assert!(resume_dir.join("point_0002.json").exists());
    let _ = std::fs::remove_dir_all(&resume_dir);
}

/// The manifest rejects torn or tampered documents instead of
/// misreporting numbers.
#[test]
fn manifest_rejects_malformed_documents() {
    assert!(CampaignManifest::from_json("").is_err());
    assert!(CampaignManifest::from_json("{\"torn\":").is_err());
    assert!(CampaignManifest::from_json("{}").is_err());
    assert!(CampaignManifest::from_json("[1,2,3]").is_err());
}
