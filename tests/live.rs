//! Integration: live campaign telemetry against the real runner.
//!
//! Runs a small campaign twice — once silently, once with a live
//! aggregator attached — and asserts the rolling `live.json` converges
//! to exactly the manifest's merged observability rollup, independent of
//! worker scheduling.

use std::collections::BTreeMap;
use std::path::PathBuf;

use cbma::obs::json::JsonValue;
use cbma::prelude::*;
use cbma_harness::{
    run_campaign, Campaign, CampaignPoint, LiveAggregator, LiveConfig, RunnerConfig,
};

fn tiny_engine(seed: u64) -> Engine {
    let scenario = Scenario::paper_default(vec![Point::new(0.0, 0.4), Point::new(0.0, -0.4)])
        .with_seed(seed);
    let mut engine = Engine::new(scenario).expect("valid scenario");
    for t in engine.tags_mut() {
        t.set_impedance(ImpedanceState::Open);
    }
    engine
}

fn tiny_campaign(n_points: usize) -> Campaign {
    Campaign {
        name: "livetest",
        paper_ref: "test",
        description: "live telemetry test campaign",
        tier: "fast",
        replicates: 2,
        rounds: 2,
        points: (0..n_points)
            .map(|i| {
                CampaignPoint::new(
                    format!("p{i}"),
                    &[("i", JsonValue::UInt(i as u64))],
                    |ctx| tiny_engine(ctx.seed),
                )
            })
            .collect(),
    }
}

fn tmppath(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "cbma-live-it-{tag}-{}-{:?}.json",
        std::process::id(),
        std::thread::current().id()
    ))
}

fn campaign_obj(text: &str, name: &str) -> BTreeMap<String, JsonValue> {
    JsonValue::parse(text)
        .expect("live.json parses")
        .as_object()
        .and_then(|o| o.get("campaigns").and_then(JsonValue::as_object).cloned())
        .and_then(|c| c.get(name).and_then(JsonValue::as_object).cloned())
        .expect("campaign entry present")
}

#[test]
fn final_live_snapshot_equals_the_manifest_rollup() {
    let path = tmppath("converge");
    let _ = std::fs::remove_file(&path);
    let agg = LiveAggregator::start(LiveConfig::new(&path)).unwrap();

    let campaign = tiny_campaign(3);
    let mut cfg = RunnerConfig {
        workers: 2,
        root_seed: 23,
        checkpoint_dir: None,
        ..RunnerConfig::default()
    };
    cfg.live = Some(agg.publisher());
    let manifest = run_campaign(&campaign, &cfg).unwrap();
    drop(cfg);
    agg.finish().unwrap();

    let text = std::fs::read_to_string(&path).unwrap();
    let c = campaign_obj(&text, "livetest");

    // Progress accounting reached the end state.
    assert_eq!(c.get("points_done").and_then(JsonValue::as_u64), Some(3));
    assert_eq!(c.get("points_total").and_then(JsonValue::as_u64), Some(3));
    assert_eq!(c.get("tier").and_then(JsonValue::as_str), Some("fast"));

    // The acceptance bar: the live rollup and the manifest's merged
    // snapshot are the same bytes (both sides timing-stripped).
    let live_merged = c.get("merged_snapshot").expect("merged_snapshot").to_json();
    let manifest_merged = JsonValue::parse(&manifest.merged_snapshot().to_json())
        .unwrap()
        .to_json();
    assert_eq!(live_merged, manifest_merged);

    // And the rollup genuinely carries pipeline metrics, not an empty
    // object: the runner attaches a registry to every replicate engine.
    let merged = manifest.merged_snapshot();
    assert_eq!(
        merged.counters.get("cbma.sim.rounds"),
        Some(&(3 * 2 * 2u64)),
        "3 points × 2 replicates × 2 rounds each"
    );
    assert!(
        merged.counters.keys().any(|k| k.starts_with("cbma.rx.")),
        "receiver metrics present: {:?}",
        merged.counters.keys().collect::<Vec<_>>()
    );

    let _ = std::fs::remove_file(&path);
}

#[test]
fn live_rollup_is_independent_of_worker_count() {
    let mut merged = Vec::new();
    for workers in [1usize, 4] {
        let path = tmppath(&format!("w{workers}"));
        let _ = std::fs::remove_file(&path);
        let agg = LiveAggregator::start(LiveConfig::new(&path)).unwrap();
        let mut cfg = RunnerConfig {
            workers,
            root_seed: 23,
            checkpoint_dir: None,
            ..RunnerConfig::default()
        };
        cfg.live = Some(agg.publisher());
        run_campaign(&tiny_campaign(4), &cfg).unwrap();
        drop(cfg);
        agg.finish().unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let c = campaign_obj(&text, "livetest");
        merged.push(c.get("merged_snapshot").unwrap().to_json());
        let _ = std::fs::remove_file(&path);
    }
    assert_eq!(merged[0], merged[1], "scheduling must not change the rollup");
}
