//! Integration: reproduction extensions — grouping, SIC, sideband,
//! energy budgeting, faults, mobility.

use cbma::codes::CodeFamily;
use cbma::mac::{AccessScheme, GroupPlan, GroupedCbmaAccess};
use cbma::prelude::*;
use cbma::tag::{frame::Frame, PhyProfile, TagPowerModel};
use rand::SeedableRng;

fn balanced(n: usize) -> Vec<Point> {
    let full = [
        Point::new(0.15, 0.45),
        Point::new(-0.15, 0.45),
        Point::new(0.15, -0.45),
        Point::new(-0.15, -0.45),
        Point::new(0.35, 0.5),
        Point::new(-0.35, 0.5),
        Point::new(0.35, -0.5),
        Point::new(-0.35, -0.5),
        Point::new(0.0, 0.62),
        Point::new(0.0, -0.62),
    ];
    full[..n].to_vec()
}

#[test]
fn grouped_access_serves_more_tags_than_codes_would() {
    // 8 tags, groups of 4, rotating: every tag ships frames.
    let scenario = Scenario::paper_default(balanced(8));
    let mut engine = Engine::new(scenario).unwrap();
    for t in engine.tags_mut() {
        t.set_impedance(ImpedanceState::Open);
    }
    let plan = GroupPlan::round_robin(8, 4);
    let mut access = GroupedCbmaAccess::new(plan, 8);
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    for _ in 0..8 {
        let tx: Vec<usize> = access
            .next_slot(&mut rng)
            .into_iter()
            .map(|t| t as usize)
            .collect();
        engine.run_round_subset(&tx);
    }
    // No starvation: the rotation gives every tag identical airtime.
    for (i, tag) in engine.tags().iter().enumerate() {
        assert_eq!(tag.packets_sent(), 4, "tag {i} starved");
    }
    // And the aggregate channel is healthy (individual tags may fade).
    let delivered: u64 = engine.tags().iter().map(|t| t.acks_received()).sum();
    assert!(
        delivered >= 8 * 4 / 2,
        "grouped rotation delivered only {delivered} of 32 frames"
    );
}

#[test]
fn sic_improves_a_near_far_deployment_end_to_end() {
    // A strong tag close to the RX and a weak one far away.
    let positions = vec![Point::new(0.3, 0.2), Point::new(-0.3, 1.4)];
    let base = Scenario::paper_default(positions).with_seed(42);

    let fer_of = |sic: usize| {
        let mut s = base.clone();
        s.rx_config.sic_passes = sic;
        let mut e = Engine::new(s).unwrap();
        for t in e.tags_mut() {
            t.set_impedance(ImpedanceState::Open);
        }
        e.run_rounds(25).fer()
    };
    let without = fer_of(0);
    let with = fer_of(2);
    assert!(with <= without, "SIC must not hurt: {without} -> {with}");
}

#[test]
fn single_sideband_extends_range() {
    // At a marginal excitation power, SSB's 3 dB decides decodability.
    let mk = |ssb: bool| {
        let mut s = Scenario::paper_default(balanced(2)).with_seed(7);
        s.link = s.link.with_tx_power(Dbm::new(3.0));
        s.noise = NoiseModel::new(Db::new(6.0), Dbm::new(-73.0));
        if ssb {
            s.link = s.link.with_single_sideband();
        }
        let mut e = Engine::new(s).unwrap();
        for t in e.tags_mut() {
            t.set_impedance(ImpedanceState::Open);
        }
        e.run_rounds(25).fer()
    };
    let dsb = mk(false);
    let ssb = mk(true);
    assert!(
        ssb <= dsb,
        "single sideband should not lose to double: dsb {dsb}, ssb {ssb}"
    );
}

#[test]
fn energy_budget_limits_weakly_powered_tags() {
    let model = TagPowerModel::paper_default();
    let phy = PhyProfile::paper_default();
    let frame = Frame::new(vec![0xAA; 16]).unwrap();
    let code = cbma::codes::TwoNcFamily::new(4).unwrap().code(0).unwrap();
    let chips = cbma::tag::encoder::spread(&frame.to_bits(8), &code);

    // Near the source the duty is unconstrained; far away it throttles.
    assert_eq!(model.sustainable_duty(Dbm::new(-3.0), &chips, &phy), 1.0);
    let weak = model.sustainable_duty(Dbm::new(-17.0), &chips, &phy);
    assert!(weak < 1.0 && weak > 0.0, "weak-field duty {weak}");

    // The budget enforces it frame by frame.
    let e_frame = model.frame_energy(&chips, &phy);
    let mut budget = cbma::tag::EnergyBudget::new(e_frame * 2.5);
    assert!(budget.try_spend(e_frame));
    assert!(budget.try_spend(e_frame));
    assert!(
        !budget.try_spend(e_frame),
        "third frame must wait for harvest"
    );
    budget.harvest(model.harvest_power(Dbm::new(-10.0)), Seconds::new(10.0));
    assert!(budget.try_spend(e_frame));
}

#[test]
fn mobility_alleviates_a_coupled_pair() {
    // §VIII-D: "if the tag is moving, the starvation problem can be
    // alleviated." Two tags start 2 cm apart (deep mutual coupling); a
    // random walk separates them over time.
    let mut s =
        Scenario::paper_default(vec![Point::new(0.0, 0.30), Point::new(0.02, 0.30)]).with_seed(2);
    s.mobility = Some(MobilityModel::new(
        0.06,
        Rect::new(Point::new(-0.8, -0.8), Point::new(0.8, 0.8)),
    ));
    let mut engine = Engine::new(s).unwrap();
    for t in engine.tags_mut() {
        t.set_impedance(ImpedanceState::Open);
    }
    let early = engine.run_rounds(12).fer();
    engine.run_rounds(20); // keep walking
    let late = engine.run_rounds(12).fer();
    // Once separated beyond λ/2 the coupling penalty disappears; allow
    // for channel randomness but expect a real improvement.
    assert!(
        late <= early,
        "mobility should decouple the pair: early {early}, late {late}"
    );
    let d = engine.tags()[0]
        .position()
        .distance_to(engine.tags()[1].position());
    assert!(d > 0.075, "tags still inside the coupling radius: {d} m");
}

#[test]
fn faulty_deployment_keeps_running() {
    let mut s = Scenario::paper_default(balanced(4)).with_seed(9);
    s.faults = FaultPlan::none().with_dead_tag(2, 5).with_ack_loss(0.2);
    let mut engine = Engine::new(s).unwrap();
    for t in engine.tags_mut() {
        t.set_impedance(ImpedanceState::Open);
    }
    let stats = engine.run_rounds(12);
    // The dead tag stops counting after round 5; the rest keep working.
    assert_eq!(engine.tags()[2].packets_sent(), 5);
    assert!(stats.ack_ratios()[0] > 0.5);
    // ACK loss shows up as tags hearing fewer ACKs than were delivered.
    let heard: u64 = engine.tags().iter().map(|t| t.acks_received()).sum();
    assert!(heard <= stats.total_delivered());
}
