//! Paper-trend regression tests over campaign manifests.
//!
//! Each test runs a fast-tier campaign through `cbma-harness` (the same
//! code path as `cargo run -p cbma-harness`) and asserts the *shape* the
//! paper reports — not absolute numbers, which depend on RNG details and
//! tier sizing, but the physics-driven trends that must survive any
//! refactor: error rises with distance and tag count, power control does
//! not hurt, small clock offsets are tolerated while large ones are not,
//! and OFDM excitation costs far more than duty-cycled interferers.
//!
//! Campaign results are checkpointed under `target/test-manifests/`, so
//! repeated test runs (and the sibling `manifest.rs` suite) reuse
//! completed points instead of recomputing them. Every assertion failure
//! names the manifest file that contains the offending numbers.

use std::path::PathBuf;

use cbma_harness::{campaigns, run_campaign, CampaignManifest, RunnerConfig, Tier};

/// Directory manifests and checkpoints land in for inspection.
fn manifest_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("target")
        .join("test-manifests")
}

/// Runs (or resumes) a fast-tier campaign and returns the manifest plus
/// the path it was written to.
fn fast_manifest(name: &str) -> (CampaignManifest, PathBuf) {
    let campaign = campaigns::by_name(name, Tier::Fast).expect("built-in campaign");
    let dir = manifest_dir();
    let cfg = RunnerConfig {
        checkpoint_dir: Some(dir.join(".checkpoints").join(format!("{name}.fast"))),
        ..RunnerConfig::default()
    };
    let manifest = run_campaign(&campaign, &cfg).expect("campaign runs");
    std::fs::create_dir_all(&dir).expect("manifest dir");
    let path = dir.join(format!("{name}.fast.json"));
    std::fs::write(&path, manifest.to_json()).expect("write manifest");
    (manifest, path)
}

/// FER of the point with the given label.
fn fer(manifest: &CampaignManifest, label: &str) -> f64 {
    manifest
        .points
        .iter()
        .find(|p| p.label == label)
        .unwrap_or_else(|| panic!("no point labeled {label:?} in {}", manifest.campaign))
        .totals
        .fer()
}

fn mean(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>() / xs.len() as f64
}

#[test]
fn fig8a_error_grows_with_distance_and_tag_count() {
    let (m, path) = fast_manifest("fig8a");
    let distances = ["d025cm", "d100cm", "d250cm", "d400cm"];
    let counts = [2usize, 3, 4];

    // Paper trend 1: averaged over tag counts, the far end of the office
    // is no better than the bench (K-factor decay beyond ~2 m).
    let at = |d: &str| mean(&counts.map(|n| fer(&m, &format!("n{n}_{d}"))));
    let near = at(distances[0]);
    let far = at(distances[distances.len() - 1]);
    assert!(
        far + 0.05 >= near,
        "fig8a: FER fell with distance (near {near:.3}, far {far:.3}) — see {}",
        path.display()
    );

    // Paper trend 2: averaged over distances, more concurrent tags mean
    // more multiple-access interference.
    let for_n = |n: usize| mean(&distances.map(|d| fer(&m, &format!("n{n}_{d}"))));
    let two = for_n(2);
    let four = for_n(4);
    assert!(
        four + 0.05 >= two,
        "fig8a: 4 tags beat 2 tags ({four:.3} vs {two:.3}) — see {}",
        path.display()
    );
    // Two concurrent tags in the balanced regime stay reliable.
    assert!(
        two <= 0.25,
        "fig8a: 2-tag FER {two:.3} implausibly high — see {}",
        path.display()
    );
}

#[test]
fn fig9c_power_control_does_not_hurt() {
    let (m, path) = fast_manifest("fig9c");
    let counts = [2usize, 3, 4, 5];

    // Paper trend 1: Algorithm 1 never makes the aggregate worse (our
    // coherent receiver shows a smaller gain than the paper's envelope
    // receiver, so the margin is loose — see EXPERIMENTS.md).
    let off = mean(&counts.map(|n| fer(&m, &format!("n{n}_pc_off"))));
    let on = mean(&counts.map(|n| fer(&m, &format!("n{n}_pc_on"))));
    assert!(
        on <= off + 0.08,
        "fig9c: power control hurt the aggregate (on {on:.3}, off {off:.3}) — see {}",
        path.display()
    );

    // Paper trend 2: error grows with the number of concurrent tags.
    let two = fer(&m, "n2_pc_off");
    let five = fer(&m, "n5_pc_off");
    assert!(
        five + 0.05 >= two,
        "fig9c: 5 tags beat 2 tags ({five:.3} vs {two:.3}) — see {}",
        path.display()
    );
}

#[test]
fn fig11_small_delays_tolerated_large_delays_not() {
    let (m, path) = fast_manifest("fig11");

    // Within the correlator's ~8-chip search horizon the error stays low…
    for label in ["delay_00.00chips", "delay_00.50chips", "delay_02.00chips", "delay_06.00chips"] {
        let f = fer(&m, label);
        assert!(
            f <= 0.2,
            "fig11: {label} FER {f:.3} exceeds the in-horizon budget — see {}",
            path.display()
        );
    }

    // …and far beyond it the error rises sharply.
    let within = fer(&m, "delay_02.00chips");
    for label in ["delay_12.00chips", "delay_16.00chips"] {
        let beyond = fer(&m, label);
        assert!(
            beyond >= 0.2 && beyond >= within + 0.1,
            "fig11: {label} FER {beyond:.3} shows no beyond-horizon cliff \
             (within-horizon {within:.3}) — see {}",
            path.display()
        );
    }
}

#[test]
fn fig12_ofdm_excitation_costs_most() {
    let (m, path) = fast_manifest("fig12");
    let clean = fer(&m, "no_interference");

    // Duty-cycled interferers (CSMA/CA WiFi, FHSS Bluetooth) cost little.
    for label in ["wifi_interference", "bluetooth_interference"] {
        let f = fer(&m, label);
        assert!(
            f <= clean + 0.2,
            "fig12: {label} FER {f:.3} far above clean {clean:.3} — see {}",
            path.display()
        );
    }

    // OFDM excitation drops reception significantly.
    let ofdm = fer(&m, "ofdm_excitation");
    assert!(
        ofdm >= clean + 0.15,
        "fig12: OFDM excitation FER {ofdm:.3} not clearly above clean {clean:.3} — see {}",
        path.display()
    );
}

#[test]
fn fig8b_low_excitation_power_buries_the_signal() {
    let (m, path) = fast_manifest("fig8b");
    for n in [2usize, 3, 4] {
        let low = fer(&m, &format!("n{n}_pt-05dbm"));
        let high = fer(&m, &format!("n{n}_pt+20dbm"));
        assert!(
            low >= 0.8,
            "fig8b: n={n} at −5 dBm FER {low:.3} — the signal should sink \
             under the −73 dBm floor — see {}",
            path.display()
        );
        assert!(
            high <= low - 0.3,
            "fig8b: n={n} FER did not fall with power ({low:.3} → {high:.3}) — see {}",
            path.display()
        );
    }
}
