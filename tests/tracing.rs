//! Integration: structured tracing end to end.
//!
//! Drives a real deployment with a span tracer attached and asserts the
//! exported Chrome trace-event JSON is structurally valid Perfetto input:
//! every capture is a rooted tree (capture → stage → kernel spans),
//! children nest inside their parents' time windows, and sibling stages
//! do not overlap.

use std::collections::BTreeMap;

use cbma::obs::json::JsonValue;
use cbma::obs::Tracer;
use cbma::prelude::*;

/// Runs an instrumented deployment and returns the exported trace text.
fn traced_run(rounds: usize) -> (Tracer, String) {
    let mut scenario = Scenario::paper_default(vec![
        Point::new(0.0, 0.35),
        Point::new(0.25, -0.40),
        Point::new(-0.30, 0.45),
    ])
    .with_seed(11);
    scenario.rx_config.sic_passes = 1;
    let mut engine = Engine::new(scenario).unwrap();
    for tag in engine.tags_mut() {
        tag.set_impedance(ImpedanceState::Open);
    }
    let tracer = Tracer::new(16384);
    engine.attach_tracer(&tracer);
    engine.run_rounds(rounds);
    let text = tracer.chrome_trace(None);
    (tracer, text)
}

/// One parsed trace event, decoded from the Chrome trace-event JSON.
#[derive(Debug, Clone)]
struct Ev {
    name: String,
    ts: f64,
    dur: f64,
    tid: u64,
    span: u64,
    parent: u64,
}

fn parse_events(text: &str) -> Vec<Ev> {
    let v = JsonValue::parse(text).expect("chrome trace must be valid JSON");
    let root = v.as_object().expect("trace root is an object");
    assert_eq!(
        root.get("displayTimeUnit").and_then(JsonValue::as_str),
        Some("ns")
    );
    root.get("traceEvents")
        .and_then(JsonValue::as_array)
        .expect("traceEvents array")
        .iter()
        .map(|e| {
            let o = e.as_object().expect("event is an object");
            assert_eq!(o.get("ph").and_then(JsonValue::as_str), Some("X"));
            assert_eq!(o.get("cat").and_then(JsonValue::as_str), Some("cbma"));
            assert_eq!(o.get("pid").and_then(JsonValue::as_u64), Some(1));
            let args = o
                .get("args")
                .and_then(JsonValue::as_object)
                .expect("args object");
            Ev {
                name: o
                    .get("name")
                    .and_then(JsonValue::as_str)
                    .expect("name")
                    .to_string(),
                ts: o.get("ts").and_then(JsonValue::as_f64).expect("ts"),
                dur: o.get("dur").and_then(JsonValue::as_f64).expect("dur"),
                tid: o.get("tid").and_then(JsonValue::as_u64).expect("tid"),
                span: args.get("span").and_then(JsonValue::as_u64).expect("span"),
                parent: args
                    .get("parent")
                    .and_then(JsonValue::as_u64)
                    .unwrap_or(0),
            }
        })
        .collect()
}

#[test]
fn instrumented_run_exports_a_valid_chrome_trace() {
    let (tracer, text) = traced_run(3);
    assert!(tracer.recorded() > 0, "tracer saw no spans");
    assert_eq!(tracer.dropped(), 0, "ring must not wrap in this test");
    let events = parse_events(&text);
    assert_eq!(events.len() as u64, tracer.recorded());

    // Every span name the pipeline is instrumented with must appear.
    let mut by_name: BTreeMap<&str, usize> = BTreeMap::new();
    for e in &events {
        *by_name.entry(e.name.as_str()).or_default() += 1;
    }
    for name in [
        "round",
        "capture",
        "frame_sync",
        "user_detect",
        "decode",
        "sic",
        "correlate",
    ] {
        assert!(by_name.contains_key(name), "missing span {name:?}: {by_name:?}");
    }
    assert_eq!(by_name["round"], 3, "one round span per round");
}

#[test]
fn spans_form_rooted_trees_with_nested_children() {
    let (_tracer, text) = traced_run(2);
    let events = parse_events(&text);

    // Index spans by (trace tid, span id); ids are unique per tracer.
    let by_id: BTreeMap<u64, &Ev> = events.iter().map(|e| (e.span, e)).collect();
    assert_eq!(by_id.len(), events.len(), "span ids are unique");

    for e in &events {
        if e.parent == 0 {
            assert_eq!(e.name, "round", "only round spans are roots: {e:?}");
            continue;
        }
        let parent = by_id
            .get(&e.parent)
            .unwrap_or_else(|| panic!("dangling parent for {e:?}"));
        // A child shares its parent's trace and nests inside its
        // parent's time window (both in µs since the tracer epoch).
        assert_eq!(e.tid, parent.tid, "child crosses traces: {e:?}");
        assert!(
            e.ts >= parent.ts && e.ts + e.dur <= parent.ts + parent.dur + 1e-3,
            "child escapes parent window: child={e:?} parent={parent:?}"
        );
    }

    // capture → stage → kernel nesting: every correlate span's parent is
    // a user_detect stage, whose parent is a capture, whose parent is a
    // round.
    let mut chains = 0;
    for e in events.iter().filter(|e| e.name == "correlate") {
        let stage = by_id[&e.parent];
        assert_eq!(stage.name, "user_detect");
        let capture = by_id[&stage.parent];
        assert_eq!(capture.name, "capture");
        let round = by_id[&capture.parent];
        assert_eq!(round.name, "round");
        chains += 1;
    }
    assert!(chains > 0, "no correlate chains found");
}

#[test]
fn sibling_stage_spans_do_not_overlap() {
    let (_tracer, text) = traced_run(2);
    let events = parse_events(&text);
    let by_id: BTreeMap<u64, &Ev> = events.iter().map(|e| (e.span, e)).collect();

    // Group the stage spans under each capture and check pairwise
    // disjointness: the receive pipeline runs its stages sequentially.
    let mut children: BTreeMap<u64, Vec<&Ev>> = BTreeMap::new();
    for e in &events {
        if matches!(e.name.as_str(), "frame_sync" | "user_detect" | "decode" | "sic")
            && by_id[&e.parent].name == "capture"
        {
            children.entry(e.parent).or_default().push(e);
        }
    }
    assert!(!children.is_empty());
    for siblings in children.values() {
        let mut sorted = siblings.clone();
        sorted.sort_by(|a, b| a.ts.total_cmp(&b.ts));
        for pair in sorted.windows(2) {
            assert!(
                pair[0].ts + pair[0].dur <= pair[1].ts + 1e-3,
                "sibling stages overlap: {:?} then {:?}",
                pair[0],
                pair[1]
            );
        }
    }
}
