//! Integration: spectral sanity of the simulated air interface.
//!
//! Uses the DSP analysis tools (FFT, Goertzel) to verify that the channel
//! and tag models produce the spectra the math promises — the kind of
//! check an engineer would do on a spectrum analyzer before trusting a
//! testbed.

use cbma::dsp::fft::power_spectrum;
use cbma::dsp::goertzel::bin_power;
use cbma::prelude::*;

#[test]
fn subcarrier_beat_appears_at_the_configured_offset() {
    // A tag with a known subcarrier offset must put its energy in the
    // corresponding baseband bin.
    use cbma::channel::mixer::{Mixer, TagSignal};
    use cbma::channel::{Excitation, InterferenceModel, NoiseModel};
    use rand::SeedableRng;

    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let n = 4096;
    let offset_cycles_per_sample = 0.01;
    let sig = TagSignal {
        envelope: vec![1.0; n], // continuous reflection isolates the tone
        amplitude: 1.0,
        phase: 0.3,
        taps: cbma::channel::multipath::ChannelTaps::identity(),
        delay_samples: 0.0,
        freq_offset_rad_per_sample: std::f64::consts::TAU * offset_cycles_per_sample,
    };
    let mixer = Mixer {
        noise: NoiseModel::new(Db::new(0.0), Dbm::new(-120.0)),
        bandwidth: Hertz::from_mhz(1.0),
        excitation: Excitation::tone(),
        interference: InterferenceModel::none(),
        lead_in: 0,
        tail: 0,
    };
    let iq = mixer.combine(&mut rng, &[sig]);
    let on_bin = bin_power(&iq[..n], offset_cycles_per_sample);
    let off_bin = bin_power(&iq[..n], 0.1);
    assert!(
        on_bin > 100.0 * off_bin,
        "beat tone not where expected: on {on_bin:.1}, off {off_bin:.3}"
    );
}

#[test]
fn spread_spectrum_is_flat_compared_to_unspread() {
    // Spreading must whiten the transmitted spectrum: the peak-to-average
    // ratio of the chip waveform's spectrum is far below that of the
    // unspread bit waveform (the whole point of DSSS).
    use cbma::codes::{CodeFamily, TwoNcFamily};
    use cbma::tag::encoder::spread;
    use cbma::tag::modulator::ook_envelope;

    let code = TwoNcFamily::new(8).unwrap().code(0).unwrap();
    // A deliberately narrowband bit pattern: all ones.
    let bits: Bits = (0..32u32).map(|_| 1u8).collect();
    let unspread: Vec<Iq> = ook_envelope(&bits, 16)
        .into_iter()
        .map(|e| Iq::new(e - 0.5, 0.0))
        .collect();
    let chips = spread(&bits, &code);
    let spread_wave: Vec<Iq> = ook_envelope(&chips, 1)
        .into_iter()
        .map(|e| Iq::new(e - 0.5, 0.0))
        .collect();

    let par = |buf: &[Iq]| {
        let n = buf.len().next_power_of_two();
        let mut padded = buf.to_vec();
        padded.resize(n, Iq::ZERO);
        let spec = power_spectrum(&padded).unwrap();
        let peak = spec.iter().copied().fold(0.0f64, f64::max);
        let mean = spec.iter().sum::<f64>() / spec.len() as f64;
        peak / mean
    };
    let par_unspread = par(&unspread);
    let par_spread = par(&spread_wave);
    assert!(
        par_unspread > 5.0 * par_spread,
        "spreading failed to whiten: unspread PAR {par_unspread:.1}, spread {par_spread:.1}"
    );
}

#[test]
fn received_power_matches_link_budget() {
    // The mean power of a captured frame must agree with Eq. 1 within the
    // fading/envelope statistics.
    let mut scenario = Scenario::clean(vec![Point::new(0.0, 0.4)]);
    scenario.noise = NoiseModel::new(Db::new(0.0), Dbm::new(-150.0));
    let mut engine = Engine::new(scenario.clone()).unwrap();
    engine.tags_mut()[0].set_impedance(ImpedanceState::Open);
    engine.set_capture_iq(true);
    let outcome = engine.run_round();
    let iq = outcome.iq.unwrap();

    // Mean power over the frame body (past the lead-in), corrected for
    // the ~50% OOK duty cycle.
    let body = &iq[300..iq.len() - 100];
    let measured: f64 = body.iter().map(|s| s.power()).sum::<f64>() / body.len() as f64;
    // The Open impedance state reflects with |ΔΓ| = 2 (the engine swaps
    // it into the link budget).
    let expected = scenario
        .link
        .with_delta_gamma(2.0)
        .received_power(scenario.es, Point::new(0.0, 0.4), scenario.rx)
        .to_watts()
        .get();
    let ratio = measured / expected;
    // OOK duty ≈ 0.5 → measured ≈ 0.5 × expected; allow slack for code
    // imbalance and the lead-in/tail trim.
    assert!(
        (0.3..=0.8).contains(&ratio),
        "measured/expected = {ratio:.3}"
    );
}
