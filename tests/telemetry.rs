//! Integration: the pipeline observability layer end to end.
//!
//! Drives a real deployment with a metrics registry and a recording sink
//! attached, exports the telemetry snapshot as JSON, and asserts the
//! export round-trips losslessly — the contract `BENCH_pipeline_obs.json`
//! and any external consumer of the artifact rely on.

use std::sync::Arc;

use cbma::obs::{FieldValue, MetricsRegistry, RecordingSink, Snapshot};
use cbma::prelude::*;

fn observed_run(rounds: usize) -> (Snapshot, Vec<cbma::obs::Event>) {
    let mut scenario = Scenario::paper_default(vec![
        Point::new(0.0, 0.35),
        Point::new(0.25, -0.40),
        Point::new(-0.30, 0.45),
    ])
    .with_seed(11);
    scenario.rx_config.sic_passes = 1;
    let mut engine = Engine::new(scenario).unwrap();
    for tag in engine.tags_mut() {
        tag.set_impedance(ImpedanceState::Open);
    }
    let registry = MetricsRegistry::new();
    let sink = Arc::new(RecordingSink::new());
    engine.attach_observability(&registry);
    engine.set_sink(sink.clone());
    engine.run_rounds(rounds);
    (registry.snapshot(), sink.take())
}

#[test]
fn snapshot_json_round_trips_exactly() {
    let (snapshot, _) = observed_run(12);
    // The acceptance bar: at least 8 distinct named metrics from a real
    // pipeline run, including the per-stage timing histograms.
    assert!(
        snapshot.metric_count() >= 8,
        "only {} metrics: {:?}",
        snapshot.metric_count(),
        snapshot
    );
    for stage in [
        "cbma.rx.stage.frame_sync_ns",
        "cbma.rx.stage.user_detect_ns",
        "cbma.rx.stage.decode_ns",
        "cbma.sim.round_ns",
    ] {
        let hist = snapshot
            .histograms
            .get(stage)
            .unwrap_or_else(|| panic!("missing stage histogram {stage}"));
        assert_eq!(hist.count, 12, "{stage} should record once per round");
        assert!(hist.sum > 0, "{stage} spans should be non-zero");
    }

    let json = snapshot.to_json();
    let parsed = Snapshot::from_json(&json).expect("exported JSON must parse");
    assert_eq!(parsed, snapshot, "round-trip must be lossless");
    // And the round-trip is a fixed point: serializing the parse yields
    // byte-identical JSON (ordering is BTreeMap-stable).
    assert_eq!(parsed.to_json(), json);
}

#[test]
fn merged_sweep_snapshots_round_trip_too() {
    let seeds: Vec<u64> = (0..3).collect();
    let (_, merged) = parallel_sweep_instrumented(&seeds, |&seed, registry| {
        let scenario = Scenario::paper_default(vec![
            Point::new(0.0, 0.35),
            Point::new(0.25, -0.40),
        ])
        .with_seed(seed);
        let mut engine = Engine::new(scenario).unwrap();
        engine.attach_observability(registry);
        engine.run_rounds(4).fer()
    });
    assert_eq!(merged.counters["cbma.sim.rounds"], 12);
    assert_eq!(merged.histograms["cbma.sim.round_ns"].count, 12);
    let json = merged.to_json();
    assert_eq!(Snapshot::from_json(&json).unwrap(), merged);
}

#[test]
fn round_events_describe_the_run() {
    let (_, events) = observed_run(6);
    let rounds: Vec<_> = events
        .iter()
        .filter(|e| e.name == "cbma.sim.round")
        .collect();
    assert_eq!(rounds.len(), 6, "one cbma.sim.round event per round");
    for (k, event) in rounds.iter().enumerate() {
        assert_eq!(event.field_u64("round"), Some(k as u64));
        let Some(FieldValue::List(active)) = event.field("active") else {
            panic!("round event missing active set: {event:?}");
        };
        assert_eq!(active, &[0, 1, 2], "all three tags transmit every round");
        let Some(FieldValue::List(delivered)) = event.field("delivered") else {
            panic!("round event missing delivered set: {event:?}");
        };
        assert!(delivered.len() <= active.len());
        assert!(event.field("frame_detected").is_some());
        assert!(event.field_u64("round_ns").unwrap() > 0);
    }
}

#[test]
fn malformed_snapshot_json_is_rejected() {
    for bad in [
        "",
        "[]",
        "{",
        r#"{"counters": 3, "gauges": {}, "histograms": {}}"#,
        r#"{"counters": {"x": -1}, "gauges": {}, "histograms": {}}"#,
        r#"{"counters": {}, "gauges": {}, "histograms": {"h": {"count": 1}}}"#,
    ] {
        assert!(
            Snapshot::from_json(bad).is_err(),
            "should reject {bad:?}"
        );
    }
}
