//! Property-based integration tests over the public API.

use cbma::codes::FamilyKind;
use cbma::prelude::*;
use cbma::rx::{Receiver, ReceiverConfig};
use cbma::tag::{frame::Frame, PhyProfile, Tag};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any payload a tag can frame survives the complete clean-channel
    /// pipeline: frame → spread → OOK → IQ → sync → detect → decode.
    #[test]
    fn any_payload_round_trips_through_the_air(
        payload in proptest::collection::vec(any::<u8>(), 0..64),
        code_index in 0usize..8,
        phase in 0.0f64..std::f64::consts::TAU,
    ) {
        let phy = PhyProfile::paper_default();
        let family = FamilyKind::TwoNc { users: 8 }.build().unwrap();
        let codes = family.codes(8).unwrap();
        let mut tag = Tag::new(code_index as u32, Point::ORIGIN, codes[code_index].clone());
        let envelope = tag.transmit(payload.clone(), &phy).unwrap();

        let gain = Iq::from_polar(0.01, phase);
        let mut iq = vec![Iq::ZERO; 400];
        iq.extend(envelope.iter().map(|&e| gain.scale(e)));
        iq.extend(vec![Iq::ZERO; 64]);

        let mut rx = Receiver::new(codes, phy, ReceiverConfig::default());
        let report = rx.receive(&iq);
        prop_assert!(report.ack.acknowledges(code_index as u32), "{report:?}");
        let frames = report.frames();
        let decoded = frames.iter().find(|(id, _)| *id == code_index).unwrap();
        prop_assert_eq!(decoded.1.payload(), payload.as_slice());
    }

    /// Frames reject any single-bit corruption somewhere in the body.
    #[test]
    fn frames_reject_random_single_bit_corruption(
        payload in proptest::collection::vec(any::<u8>(), 1..32),
        flip in any::<usize>(),
    ) {
        let frame = Frame::new(payload).unwrap();
        let bits = frame.to_bits(8);
        let idx = flip % bits.len();
        let mut raw: Vec<u8> = bits.iter().collect();
        raw[idx] ^= 1;
        let corrupted = Bits::from_slice(&raw).unwrap();
        // Either the structure breaks or the CRC catches it; it must
        // never silently produce a different valid payload.
        if let Ok(decoded) = Frame::from_bits(&corrupted, 8) { prop_assert_eq!(decoded, frame) }
    }

    /// Scenario seeds fully determine outcomes.
    #[test]
    fn seeded_rounds_are_pure_functions(seed in any::<u64>()) {
        let run = |s: u64| {
            let scenario = Scenario::paper_default(vec![
                Point::new(0.0, 0.4),
                Point::new(0.0, -0.45),
            ])
            .with_seed(s);
            let mut engine = Engine::new(scenario).unwrap();
            engine.run_round().delivered
        };
        prop_assert_eq!(run(seed), run(seed));
    }

    /// Every family code assignment spreads and despreads losslessly.
    #[test]
    fn spreading_is_invertible(
        data in proptest::collection::vec(0u8..2, 1..64),
        idx in 0usize..10,
        gold in any::<bool>(),
    ) {
        let family = if gold {
            FamilyKind::Gold { degree: 5 }.build().unwrap()
        } else {
            FamilyKind::TwoNc { users: 10 }.build().unwrap()
        };
        let code = family.code(idx).unwrap();
        let bits = Bits::from_slice(&data).unwrap();
        let chips = cbma::tag::encoder::spread(&bits, &code);
        let back = cbma::tag::encoder::despread_exact(&chips, &code);
        prop_assert_eq!(back, bits);
    }
}

#[test]
fn corrupted_single_bit_never_passes_as_different_payload() {
    // Deterministic spot-check of the property above at the frame edges.
    let frame = Frame::new(vec![0xFF; 8]).unwrap();
    let bits = frame.to_bits(8);
    for idx in [8usize, 15, 16, bits.len() - 17, bits.len() - 1] {
        let mut raw: Vec<u8> = bits.iter().collect();
        raw[idx] ^= 1;
        let corrupted = Bits::from_slice(&raw).unwrap();
        assert!(
            Frame::from_bits(&corrupted, 8).is_err(),
            "bit {idx} slipped through"
        );
    }
}
