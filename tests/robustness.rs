//! Integration: receiver robustness against degenerate and hostile
//! inputs — a decoder must never panic on garbage.

use cbma::codes::{CodeFamily, TwoNcFamily};
use cbma::prelude::*;
use cbma::rx::{DecoderKind, Receiver, ReceiverConfig};
use cbma::tag::PhyProfile;
use rand::{rngs::StdRng, Rng, SeedableRng};

fn receiver(kind: DecoderKind, sic: usize) -> Receiver {
    let phy = PhyProfile::paper_default();
    let codes = TwoNcFamily::new(4).unwrap().codes(4).unwrap();
    let config = ReceiverConfig {
        decoder_kind: kind,
        sic_passes: sic,
        ..ReceiverConfig::default()
    };
    Receiver::new(codes, phy, config)
}

#[test]
fn empty_and_tiny_buffers_are_handled() {
    for kind in [DecoderKind::Coherent, DecoderKind::Envelope] {
        let mut rx = receiver(kind, 1);
        for len in [0usize, 1, 7, 63, 200] {
            let report = rx.receive(&vec![Iq::ZERO; len]);
            assert!(report.ack.is_empty(), "{kind:?} len {len}: {report:?}");
        }
    }
}

#[test]
fn pure_noise_produces_no_valid_frames() {
    let mut rng = StdRng::seed_from_u64(0xBAD);
    for kind in [DecoderKind::Coherent, DecoderKind::Envelope] {
        let mut rx = receiver(kind, 1);
        for trial in 0..5 {
            let buf: Vec<Iq> = (0..20_000)
                .map(|_| Iq::new(rng.gen::<f64>() - 0.5, rng.gen::<f64>() - 0.5))
                .collect();
            let report = rx.receive(&buf);
            assert!(
                report.ack.is_empty(),
                "{kind:?} trial {trial}: noise decoded as {:?}",
                report.frames()
            );
        }
    }
}

#[test]
fn impulsive_garbage_is_survivable() {
    // Spikes, steps, and saturated runs — the energy detector and
    // correlators must not panic or false-decode.
    let mut rx = receiver(DecoderKind::Coherent, 2);
    let mut buf = vec![Iq::ZERO; 8000];
    for i in (0..8000).step_by(97) {
        buf[i] = Iq::new(1e6, -1e6);
    }
    for s in buf.iter_mut().skip(4000).take(500) {
        *s = Iq::new(f64::MAX / 1e10, 0.0);
    }
    let report = rx.receive(&buf);
    assert!(report.ack.is_empty());
}

#[test]
fn truncated_frames_report_truncation_not_garbage() {
    let phy = PhyProfile::paper_default();
    let codes = TwoNcFamily::new(4).unwrap().codes(4).unwrap();
    let mut tag = cbma::tag::Tag::new(0, Point::ORIGIN, codes[0].clone());
    let env = tag.transmit(vec![0xEE; 30], &phy).unwrap();
    let mut buf = vec![Iq::ZERO; 400];
    buf.extend(env.iter().map(|&e| Iq::new(0.01 * e, 0.0)));
    // Cut the frame off mid-payload.
    buf.truncate(400 + env.len() / 2);

    let mut rx = receiver(DecoderKind::Coherent, 0);
    let report = rx.receive(&buf);
    assert!(!report.ack.acknowledges(0), "truncated frame must not ACK");
}

#[test]
fn receiver_is_pure_across_calls() {
    // The receiver holds no hidden mutable state: the same buffer gives
    // the same report any number of times, interleaved with other work.
    let phy = PhyProfile::paper_default();
    let codes = TwoNcFamily::new(4).unwrap().codes(4).unwrap();
    let mut tag = cbma::tag::Tag::new(2, Point::ORIGIN, codes[2].clone());
    let env = tag.transmit(b"idempotent".to_vec(), &phy).unwrap();
    let mut buf = vec![Iq::ZERO; 400];
    buf.extend(env.iter().map(|&e| Iq::new(0.01 * e, 0.0)));
    buf.extend(vec![Iq::ZERO; 64]);

    let mut rx = receiver(DecoderKind::Coherent, 1);
    let first = rx.receive(&buf);
    let mut rng = StdRng::seed_from_u64(1);
    let noise: Vec<Iq> = (0..5000)
        .map(|_| Iq::new(rng.gen::<f64>() - 0.5, rng.gen::<f64>() - 0.5))
        .collect();
    let _ = rx.receive(&noise);
    let second = rx.receive(&buf);
    assert_eq!(first, second);
}

#[test]
fn engine_rejects_nonsense_scenarios_gracefully() {
    // Zero tags.
    assert!(Engine::new(Scenario::paper_default(vec![])).is_err());
    // Chip rate beyond the receiver's sampling capacity.
    let mut s = Scenario::paper_default(vec![Point::ORIGIN]);
    s.phy.chip_rate = Hertz::from_mhz(100.0);
    assert!(Engine::new(s).is_err());
    // More tags than the code family can serve.
    let mut s = Scenario::paper_default(vec![Point::ORIGIN; 40]);
    s.family = FamilyKind::Gold { degree: 5 };
    assert!(Engine::new(s).is_err());
}

#[test]
fn extreme_payload_sizes_work_end_to_end() {
    for payload_len in [0usize, 1, 126] {
        let mut s = Scenario::clean(vec![Point::new(0.0, 0.4)]);
        s.payload_len = payload_len;
        let mut engine = Engine::new(s).unwrap();
        engine.tags_mut()[0].set_impedance(ImpedanceState::Open);
        let stats = engine.run_rounds(3);
        assert_eq!(
            stats.total_delivered(),
            3,
            "payload {payload_len}: {stats:?}"
        );
    }
}
