//! Streaming-runtime determinism, end-to-end through the harness: a
//! campaign measured through `Engine::run_streaming` must produce the
//! byte-identical manifest for every scheduler, block size and batch
//! width — and identical to the round-synchronous engine loop. The
//! manifest's `to_json()` is the repo's canonical byte-identity
//! fingerprint (sorted keys, shortest round-trip floats, volatile
//! metrics stripped), so one string comparison covers every decision
//! the receiver made in every round.

use cbma::rx::Scheduler;
use cbma::sim::StreamingConfig;
use cbma_harness::{campaigns, run_campaign, RunnerConfig, Tier};

fn cfg(streaming: Option<StreamingConfig>) -> RunnerConfig {
    RunnerConfig {
        streaming,
        checkpoint_dir: None,
        ..RunnerConfig::default()
    }
}

#[test]
fn streaming_manifests_match_the_round_synchronous_engine() {
    let campaign = campaigns::by_name("fig12", Tier::Fast).unwrap();
    let baseline = run_campaign(&campaign, &cfg(None)).unwrap().to_json();

    // Scheduler, block size and batch width are execution-shape knobs;
    // none may leak into the manifest bytes.
    let shapes = [
        StreamingConfig {
            width: 3,
            block_size: 1000,
            ring_capacity: 2,
            scheduler: Scheduler::Inline,
        },
        StreamingConfig {
            width: 8,
            block_size: 4096,
            ring_capacity: 4,
            scheduler: Scheduler::ThreadPerStage,
        },
        StreamingConfig {
            width: 2,
            block_size: 513,
            ring_capacity: 1,
            scheduler: Scheduler::ThreadPerStage,
        },
        // Work-stealing spreads each batch over per-round streams, so
        // these also prove the multi-stream path (and the placement
        // metrics it emits) leaves no fingerprint in the manifest.
        StreamingConfig {
            width: 4,
            block_size: 1024,
            ring_capacity: 2,
            scheduler: Scheduler::WorkStealing { workers: 2, pin: false },
        },
        StreamingConfig {
            width: 8,
            block_size: 4096,
            ring_capacity: 4,
            scheduler: Scheduler::WorkStealing { workers: 4, pin: false },
        },
        StreamingConfig {
            width: 6,
            block_size: 777,
            ring_capacity: 1,
            scheduler: Scheduler::WorkStealing { workers: 1, pin: false },
        },
    ];
    for shape in shapes {
        let manifest = run_campaign(&campaign, &cfg(Some(shape))).unwrap().to_json();
        assert_eq!(
            manifest, baseline,
            "manifest bytes diverged under {shape:?}"
        );
    }
}
