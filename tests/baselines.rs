//! Integration: CBMA against the TDMA and FSA baselines — the paper's
//! ">10× backscatter throughput" headline, end to end.

use cbma::mac::{AccessScheme, CbmaAccess, FsaAccess, TdmaAccess};
use cbma::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn balanced_ten() -> Vec<Point> {
    // Positions mirrored across both axes share the same d1²·d2² product,
    // so all ten links are within ~2 dB of each other.
    vec![
        Point::new(0.15, 0.45),
        Point::new(-0.15, 0.45),
        Point::new(0.15, -0.45),
        Point::new(-0.15, -0.45),
        Point::new(0.35, 0.5),
        Point::new(-0.35, 0.5),
        Point::new(0.35, -0.5),
        Point::new(-0.35, -0.5),
        Point::new(0.0, 0.62),
        Point::new(0.0, -0.62),
    ]
}

/// Runs `slots` medium-access slots under `scheme` and returns total
/// frames delivered.
fn run_scheme(scheme: &mut dyn AccessScheme, engine: &mut Engine, slots: usize) -> u64 {
    let mut rng = StdRng::seed_from_u64(0xACC);
    let mut delivered = 0;
    for _ in 0..slots {
        let transmitters: Vec<usize> = scheme
            .next_slot(&mut rng)
            .into_iter()
            .map(|t| t as usize)
            .collect();
        if transmitters.is_empty() {
            continue;
        }
        let outcome = engine.run_round_subset(&transmitters);
        delivered += outcome.delivered.len() as u64;
    }
    delivered
}

#[test]
fn cbma_beats_tdma_by_many_x_at_ten_tags() {
    let n = 10;
    let slots = 12;
    let scenario = Scenario::paper_default(balanced_ten());

    let mut engine = Engine::new(scenario.clone()).unwrap();
    for t in engine.tags_mut() {
        t.set_impedance(ImpedanceState::Open);
    }
    let cbma = run_scheme(&mut CbmaAccess::new(n), &mut engine, slots);

    let mut engine = Engine::new(scenario.clone()).unwrap();
    for t in engine.tags_mut() {
        t.set_impedance(ImpedanceState::Open);
    }
    let tdma = run_scheme(&mut TdmaAccess::new(n), &mut engine, slots);

    // TDMA delivers ≤ 1 frame per slot; CBMA delivers up to n. With a
    // benign geometry the ratio must be large (the paper reports >10×).
    assert!(tdma <= slots as u64);
    let ratio = cbma as f64 / tdma.max(1) as f64;
    assert!(
        ratio >= 5.0,
        "CBMA {cbma} vs TDMA {tdma}: ratio {ratio} below expectation"
    );
}

#[test]
fn fsa_loses_slots_to_collisions_and_idle() {
    let n = 10;
    let slots = 30;
    let scenario = Scenario::paper_default(balanced_ten());
    let mut engine = Engine::new(scenario).unwrap();
    for t in engine.tags_mut() {
        t.set_impedance(ImpedanceState::Open);
    }
    let fsa = run_scheme(&mut FsaAccess::optimal(n), &mut engine, slots);
    // Optimal FSA delivers ≈ slots/e singleton slots; collisions in our
    // engine may still decode (CBMA codes!), so just require it stays
    // well below full concurrency.
    assert!(
        fsa < (n * slots) as u64 / 3,
        "FSA delivered {fsa} of {} slot-frames",
        n * slots
    );
}

#[test]
fn analytic_shares_match_paper_scaling() {
    let cbma = CbmaAccess::new(10);
    let tdma = TdmaAccess::new(10);
    let fsa = FsaAccess::optimal(10);
    let cbma_total = 10.0 * cbma.ideal_per_tag_slot_share();
    let tdma_total = 10.0 * tdma.ideal_per_tag_slot_share();
    let fsa_total = 10.0 * fsa.ideal_per_tag_slot_share();
    assert!((cbma_total / tdma_total - 10.0).abs() < 1e-9);
    assert!(cbma_total / fsa_total > 10.0);
}
