//! Integration: trace recording, serialization, and replay determinism.

use cbma::prelude::*;
use cbma::sim::trace::Trace;

#[test]
fn identical_seeds_produce_identical_traces() {
    let record = |seed: u64| {
        let scenario = Scenario::paper_default(vec![
            Point::new(0.0, 0.4),
            Point::new(0.0, -0.45),
            Point::new(0.2, 0.6),
        ])
        .with_seed(seed);
        let mut engine = Engine::new(scenario).unwrap();
        let mut trace = Trace::new();
        for _ in 0..10 {
            let outcome = engine.run_round();
            trace.record(&outcome);
        }
        trace
    };
    let a = record(55);
    let b = record(55);
    assert_eq!(a, b, "same seed must replay bit-identically");
    let c = record(56);
    assert_ne!(a, c, "different seeds should diverge");
}

#[test]
fn traces_survive_text_round_trip() {
    let scenario = Scenario::paper_default(vec![Point::new(0.0, 0.4), Point::new(0.0, -0.4)]);
    let mut engine = Engine::new(scenario).unwrap();
    let mut trace = Trace::new();
    for _ in 0..6 {
        trace.record(&engine.run_round());
    }
    let text = trace.to_text();
    let parsed = Trace::from_text(&text).unwrap();
    assert_eq!(parsed, trace);
    assert!((parsed.fer() - trace.fer()).abs() < 1e-12);
}

#[test]
fn trace_fer_matches_run_stats() {
    let scenario = Scenario::paper_default(vec![Point::new(0.0, 0.4), Point::new(0.3, -0.6)]);
    let mut engine = Engine::new(scenario).unwrap();
    let mut trace = Trace::new();
    let mut stats = cbma::sim::RunStats::new(2);
    for _ in 0..12 {
        let outcome = engine.run_round();
        trace.record(&outcome);
        stats.record(&outcome);
    }
    assert!((trace.fer() - stats.fer()).abs() < 1e-12);
}
