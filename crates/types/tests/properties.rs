//! Property-based tests for the foundation types.

use cbma_types::geometry::{Point, Rect};
use cbma_types::units::{Db, Dbm, Hertz, Meters, Seconds};
use cbma_types::{Bits, Iq, SeedSequence};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// dBm ↔ watts round-trips across fourteen orders of magnitude.
    #[test]
    fn dbm_watts_round_trip(dbm in -120.0f64..40.0) {
        let back = Dbm::new(dbm).to_watts().to_dbm().get();
        prop_assert!((back - dbm).abs() < 1e-9);
    }

    /// dB ratio algebra: from_ratio ∘ to_ratio is the identity, and
    /// adding decibels multiplies ratios.
    #[test]
    fn db_algebra(a in -60.0f64..60.0, b in -60.0f64..60.0) {
        let ra = Db::new(a).to_ratio();
        let rb = Db::new(b).to_ratio();
        let sum = Db::new(a) + Db::new(b);
        prop_assert!((sum.to_ratio() - ra * rb).abs() < 1e-9 * (1.0 + ra * rb));
        prop_assert!((Db::from_ratio(ra).get() - a).abs() < 1e-9);
    }

    /// Wavelength × frequency recovers the speed of light.
    #[test]
    fn wavelength_times_frequency_is_c(ghz in 0.1f64..100.0) {
        let f = Hertz::from_ghz(ghz);
        let c = f.wavelength().get() * f.get();
        prop_assert!((c - Hertz::SPEED_OF_LIGHT).abs() < 1.0);
    }

    /// Unit conversions round-trip.
    #[test]
    fn length_and_time_round_trips(cm in -1e4f64..1e4, us in -1e6f64..1e6) {
        prop_assert!((Meters::from_cm(cm).as_cm() - cm).abs() < 1e-9 * (1.0 + cm.abs()));
        prop_assert!(
            (Seconds::from_micros(us).as_micros() - us).abs() < 1e-9 * (1.0 + us.abs())
        );
    }

    /// The triangle inequality holds for the deployment plane.
    #[test]
    fn triangle_inequality(
        ax in -5.0f64..5.0, ay in -5.0f64..5.0,
        bx in -5.0f64..5.0, by in -5.0f64..5.0,
        cx in -5.0f64..5.0, cy in -5.0f64..5.0,
    ) {
        let (a, b, c) = (Point::new(ax, ay), Point::new(bx, by), Point::new(cx, cy));
        prop_assert!(a.distance_to(c) <= a.distance_to(b) + b.distance_to(c) + 1e-9);
    }

    /// Rect::clamp always lands inside, and containment is idempotent.
    #[test]
    fn rect_clamp_contains(
        x in -10.0f64..10.0, y in -10.0f64..10.0,
        x1 in -3.0f64..3.0, y1 in -3.0f64..3.0,
        x2 in -3.0f64..3.0, y2 in -3.0f64..3.0,
    ) {
        let rect = Rect::new(Point::new(x1, y1), Point::new(x2, y2));
        let clamped = rect.clamp(Point::new(x, y));
        prop_assert!(rect.contains(clamped));
        prop_assert_eq!(rect.clamp(clamped), clamped);
    }

    /// Complex multiplication is associative and |ab| = |a||b|.
    #[test]
    fn iq_multiplication_laws(
        ar in -2.0f64..2.0, ai in -2.0f64..2.0,
        br in -2.0f64..2.0, bi in -2.0f64..2.0,
        cr in -2.0f64..2.0, ci in -2.0f64..2.0,
    ) {
        let (a, b, c) = (Iq::new(ar, ai), Iq::new(br, bi), Iq::new(cr, ci));
        let left = (a * b) * c;
        let right = a * (b * c);
        prop_assert!((left - right).abs() < 1e-9);
        prop_assert!(((a * b).abs() - a.abs() * b.abs()).abs() < 1e-9);
    }

    /// Bit vectors survive byte packing whenever the length divides by 8,
    /// and XOR is an involution.
    #[test]
    fn bits_pack_and_xor(data in proptest::collection::vec(0u8..2, 0..128)) {
        let bits = Bits::from_slice(&data).unwrap();
        if bits.len().is_multiple_of(8) {
            let packed = bits.to_bytes_msb().unwrap();
            prop_assert_eq!(Bits::from_bytes_msb(&packed), bits.clone());
        }
        let mask: Bits = (0..bits.len()).map(|i| (i % 3 == 0) as u8).collect();
        prop_assert_eq!(bits.xor(&mask).xor(&mask), bits.clone());
        prop_assert_eq!(bits.complement().complement(), bits);
    }

    /// Cyclic rotation by the length is the identity; rotations compose.
    #[test]
    fn rotation_laws(
        data in proptest::collection::vec(0u8..2, 1..64),
        r1 in 0usize..128,
        r2 in 0usize..128,
    ) {
        let bits = Bits::from_slice(&data).unwrap();
        prop_assert_eq!(bits.rotate_left(bits.len()), bits.clone());
        prop_assert_eq!(
            bits.rotate_left(r1).rotate_left(r2),
            bits.rotate_left((r1 + r2) % bits.len())
        );
    }

    /// Seed derivation is stable and label-sensitive.
    #[test]
    fn seeds_are_stable(root in any::<u64>(), idx in any::<u64>()) {
        let seq = SeedSequence::new(root);
        prop_assert_eq!(seq.derive("a"), SeedSequence::new(root).derive("a"));
        prop_assert_ne!(seq.derive("a"), seq.derive("b"));
        prop_assert_eq!(seq.derive_indexed("t", idx), seq.derive_indexed("t", idx));
    }
}
