//! Deterministic random-seed derivation.
//!
//! Every experiment in the reproduction must be bit-for-bit repeatable, yet
//! different subsystems (channel fading, interference arrivals, deployment
//! placement, payload generation) must draw *independent* randomness.
//! [`SeedSequence`] solves both: it derives well-separated 64-bit seeds
//! from a single root seed plus a textual label, using the SplitMix64
//! finalizer, so adding a new consumer never perturbs the streams of
//! existing ones.
//!
//! # Examples
//!
//! ```
//! use cbma_types::SeedSequence;
//! use rand::{rngs::StdRng, SeedableRng, Rng};
//!
//! let seeds = SeedSequence::new(42);
//! let mut channel_rng: StdRng = SeedableRng::seed_from_u64(seeds.derive("channel"));
//! let mut payload_rng: StdRng = SeedableRng::seed_from_u64(seeds.derive("payload"));
//! // Streams are independent and stable across runs.
//! let a: u64 = channel_rng.gen();
//! let b: u64 = payload_rng.gen();
//! assert_ne!(a, b);
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Derives independent, reproducible RNG seeds from a root seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedSequence {
    root: u64,
}

impl SeedSequence {
    /// Creates a sequence rooted at `root`.
    #[inline]
    pub const fn new(root: u64) -> SeedSequence {
        SeedSequence { root }
    }

    /// The root seed this sequence was created with.
    #[inline]
    pub const fn root(&self) -> u64 {
        self.root
    }

    /// Derives a seed for the consumer identified by `label`.
    ///
    /// The same `(root, label)` pair always yields the same seed; distinct
    /// labels yield statistically independent seeds.
    pub fn derive(&self, label: &str) -> u64 {
        let mut h = self.root ^ 0x9E37_79B9_7F4A_7C15;
        for &byte in label.as_bytes() {
            h ^= u64::from(byte);
            h = splitmix64(h);
        }
        splitmix64(h)
    }

    /// Derives a seed for the `index`-th member of a family of consumers
    /// (e.g. per-tag fading streams).
    pub fn derive_indexed(&self, label: &str, index: u64) -> u64 {
        splitmix64(self.derive(label) ^ splitmix64(index.wrapping_add(0xA5A5_5A5A_DEAD_BEEF)))
    }

    /// Convenience: builds a [`StdRng`] for `label` directly.
    pub fn rng(&self, label: &str) -> StdRng {
        StdRng::seed_from_u64(self.derive(label))
    }

    /// Convenience: builds a [`StdRng`] for the indexed consumer.
    pub fn rng_indexed(&self, label: &str, index: u64) -> StdRng {
        StdRng::seed_from_u64(self.derive_indexed(label, index))
    }

    /// Creates a child sequence, useful for nesting (e.g. one sequence per
    /// simulation round).
    pub fn child(&self, label: &str) -> SeedSequence {
        SeedSequence {
            root: self.derive(label),
        }
    }
}

/// SplitMix64 finalizer — a fast, well-studied 64-bit mixing function.
#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_label_same_seed() {
        let s = SeedSequence::new(7);
        assert_eq!(s.derive("channel"), s.derive("channel"));
        assert_eq!(s.derive_indexed("tag", 3), s.derive_indexed("tag", 3));
    }

    #[test]
    fn different_labels_different_seeds() {
        let s = SeedSequence::new(7);
        assert_ne!(s.derive("channel"), s.derive("payload"));
        assert_ne!(s.derive("a"), s.derive("b"));
        assert_ne!(s.derive_indexed("tag", 0), s.derive_indexed("tag", 1));
    }

    #[test]
    fn different_roots_different_seeds() {
        assert_ne!(
            SeedSequence::new(1).derive("x"),
            SeedSequence::new(2).derive("x")
        );
    }

    #[test]
    fn child_sequences_are_independent() {
        let s = SeedSequence::new(99);
        let round0 = s.child("round-0");
        let round1 = s.child("round-1");
        assert_ne!(round0.derive("channel"), round1.derive("channel"));
        // But each is stable.
        assert_eq!(
            round0.derive("channel"),
            s.child("round-0").derive("channel")
        );
    }

    #[test]
    fn rngs_produce_reproducible_streams() {
        let s = SeedSequence::new(123);
        let a: Vec<u32> = s
            .rng("noise")
            .sample_iter(rand::distributions::Standard)
            .take(8)
            .collect();
        let b: Vec<u32> = s
            .rng("noise")
            .sample_iter(rand::distributions::Standard)
            .take(8)
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn seeds_are_well_spread() {
        // A weak but useful smoke test: 1000 derived seeds should be unique.
        let s = SeedSequence::new(0);
        let mut seen = std::collections::HashSet::new();
        for i in 0..1000u64 {
            assert!(seen.insert(s.derive_indexed("spread", i)));
        }
    }
}
