//! Unpacked bit vectors.
//!
//! Framing, spreading and despreading all manipulate individual bits — a
//! tag's encoder multiplies each data bit by a PN chip sequence (§II-B), so
//! the natural unit of work is the bit, not the byte. [`Bits`] stores one
//! bit per `u8` (0 or 1) which keeps indexing trivial and the XOR/AND chip
//! operations branch-free, at a memory cost that is irrelevant at frame
//! scale (≤ 130 bytes of payload).
//!
//! # Examples
//!
//! ```
//! use cbma_types::Bits;
//!
//! // The paper's example (§III-A): data "10" spread by PN code "01001"
//! // yields "0100110110".
//! let data = Bits::from_str("10").unwrap();
//! let code = Bits::from_str("01001").unwrap();
//! let mut spread = Bits::new();
//! for bit in data.iter() {
//!     for chip in code.iter() {
//!         spread.push(if bit == 1 { chip } else { chip ^ 1 });
//!     }
//! }
//! assert_eq!(spread.to_string(), "0100110110");
//! ```

use std::fmt;
use std::ops::Index;

use serde::{Deserialize, Serialize};

use crate::error::{CbmaError, Result};

/// A growable sequence of bits, stored unpacked (one `u8` per bit).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Bits {
    bits: Vec<u8>,
}

impl Bits {
    /// Creates an empty bit vector.
    #[inline]
    pub fn new() -> Bits {
        Bits { bits: Vec::new() }
    }

    /// Creates an empty bit vector with space reserved for `n` bits.
    #[inline]
    pub fn with_capacity(n: usize) -> Bits {
        Bits {
            bits: Vec::with_capacity(n),
        }
    }

    /// Creates a bit vector of `n` zero bits.
    #[inline]
    pub fn zeros(n: usize) -> Bits {
        Bits { bits: vec![0; n] }
    }

    /// Builds from a slice of 0/1 values.
    ///
    /// # Errors
    ///
    /// Returns [`CbmaError::InvalidBit`] if any element is neither 0 nor 1.
    pub fn from_slice(slice: &[u8]) -> Result<Bits> {
        if let Some(&bad) = slice.iter().find(|&&b| b > 1) {
            return Err(CbmaError::InvalidBit(bad));
        }
        Ok(Bits {
            bits: slice.to_vec(),
        })
    }

    /// Parses a string of `'0'`/`'1'` characters.
    ///
    /// Named like (and delegated to by) [`std::str::FromStr`], kept as an
    /// inherent method so callers don't need the trait in scope.
    ///
    /// # Errors
    ///
    /// Returns [`CbmaError::InvalidBit`] on any other character.
    #[allow(clippy::should_implement_trait)]
    pub fn from_str(s: &str) -> Result<Bits> {
        let mut bits = Vec::with_capacity(s.len());
        for c in s.chars() {
            match c {
                '0' => bits.push(0),
                '1' => bits.push(1),
                other => return Err(CbmaError::InvalidBit(other as u8)),
            }
        }
        Ok(Bits { bits })
    }

    /// Unpacks bytes MSB-first, the transmission order used by the frame
    /// format (the `0b1010_1010` preamble byte becomes `10101010`).
    pub fn from_bytes_msb(bytes: &[u8]) -> Bits {
        let mut bits = Vec::with_capacity(bytes.len() * 8);
        for &byte in bytes {
            for shift in (0..8).rev() {
                bits.push((byte >> shift) & 1);
            }
        }
        Bits { bits }
    }

    /// Packs back into bytes MSB-first.
    ///
    /// # Errors
    ///
    /// Returns [`CbmaError::BitLength`] if the length is not a multiple of
    /// eight.
    pub fn to_bytes_msb(&self) -> Result<Vec<u8>> {
        if !self.bits.len().is_multiple_of(8) {
            return Err(CbmaError::BitLength {
                expected_multiple: 8,
                actual: self.bits.len(),
            });
        }
        Ok(self
            .bits
            .chunks_exact(8)
            .map(|chunk| chunk.iter().fold(0u8, |acc, &b| (acc << 1) | b))
            .collect())
    }

    /// Appends one bit.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `bit` is not 0 or 1.
    #[inline]
    pub fn push(&mut self, bit: u8) {
        debug_assert!(bit <= 1, "bit must be 0 or 1, got {bit}");
        self.bits.push(bit & 1);
    }

    /// Appends all bits of `other`.
    #[inline]
    pub fn extend_bits(&mut self, other: &Bits) {
        self.bits.extend_from_slice(&other.bits);
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Whether the vector holds no bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Bit at `index`, or `None` past the end.
    #[inline]
    pub fn get(&self, index: usize) -> Option<u8> {
        self.bits.get(index).copied()
    }

    /// Read-only view as a slice of 0/1 values.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        &self.bits
    }

    /// Iterates over the bit values.
    pub fn iter(&self) -> impl Iterator<Item = u8> + '_ {
        self.bits.iter().copied()
    }

    /// Element-wise XOR with another equal-length bit vector.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn xor(&self, other: &Bits) -> Bits {
        assert_eq!(
            self.len(),
            other.len(),
            "xor requires equal lengths ({} vs {})",
            self.len(),
            other.len()
        );
        Bits {
            bits: self
                .bits
                .iter()
                .zip(&other.bits)
                .map(|(a, b)| a ^ b)
                .collect(),
        }
    }

    /// Bit-wise complement.
    pub fn complement(&self) -> Bits {
        Bits {
            bits: self.bits.iter().map(|b| b ^ 1).collect(),
        }
    }

    /// Number of 1 bits.
    #[inline]
    pub fn count_ones(&self) -> usize {
        self.bits.iter().filter(|&&b| b == 1).count()
    }

    /// Hamming distance to an equal-length bit vector.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn hamming_distance(&self, other: &Bits) -> usize {
        assert_eq!(
            self.len(),
            other.len(),
            "hamming distance requires equal lengths"
        );
        self.bits
            .iter()
            .zip(&other.bits)
            .filter(|(a, b)| a != b)
            .count()
    }

    /// Maps bits to the bipolar (±1) domain used by correlation math:
    /// 1 → +1.0, 0 → −1.0.
    pub fn to_bipolar(&self) -> Vec<f64> {
        self.bits
            .iter()
            .map(|&b| if b == 1 { 1.0 } else { -1.0 })
            .collect()
    }

    /// Cyclic left rotation by `n` positions.
    pub fn rotate_left(&self, n: usize) -> Bits {
        if self.bits.is_empty() {
            return self.clone();
        }
        let n = n % self.bits.len();
        let mut bits = self.bits.clone();
        bits.rotate_left(n);
        Bits { bits }
    }
}

impl Index<usize> for Bits {
    type Output = u8;
    #[inline]
    fn index(&self, index: usize) -> &u8 {
        &self.bits[index]
    }
}

impl std::str::FromStr for Bits {
    type Err = CbmaError;

    fn from_str(s: &str) -> Result<Bits> {
        Bits::from_str(s)
    }
}

impl fmt::Display for Bits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for &b in &self.bits {
            write!(f, "{b}")?;
        }
        Ok(())
    }
}

impl FromIterator<u8> for Bits {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Bits {
        let mut bits = Bits::new();
        for b in iter {
            bits.push(b);
        }
        bits
    }
}

impl Extend<u8> for Bits {
    fn extend<T: IntoIterator<Item = u8>>(&mut self, iter: T) {
        for b in iter {
            self.push(b);
        }
    }
}

impl<'a> IntoIterator for &'a Bits {
    type Item = u8;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, u8>>;
    fn into_iter(self) -> Self::IntoIter {
        self.bits.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_round_trip_msb_first() {
        let bytes = [0xAA, 0x0F, 0x00, 0xFF, 0x5C];
        let bits = Bits::from_bytes_msb(&bytes);
        assert_eq!(bits.len(), 40);
        assert_eq!(bits.to_bytes_msb().unwrap(), bytes);
    }

    #[test]
    fn preamble_byte_unpacks_to_alternating() {
        let bits = Bits::from_bytes_msb(&[0b1010_1010]);
        assert_eq!(bits.to_string(), "10101010");
    }

    #[test]
    fn to_bytes_rejects_ragged_length() {
        let bits = Bits::from_str("101").unwrap();
        assert!(matches!(
            bits.to_bytes_msb(),
            Err(CbmaError::BitLength { actual: 3, .. })
        ));
    }

    #[test]
    fn from_str_rejects_non_binary() {
        assert!(Bits::from_str("10a1").is_err());
        assert!(Bits::from_slice(&[0, 1, 2]).is_err());
    }

    #[test]
    fn xor_and_complement() {
        let a = Bits::from_str("1100").unwrap();
        let b = Bits::from_str("1010").unwrap();
        assert_eq!(a.xor(&b).to_string(), "0110");
        assert_eq!(a.complement().to_string(), "0011");
    }

    #[test]
    fn hamming_distance_counts_disagreements() {
        let a = Bits::from_str("10110").unwrap();
        let b = Bits::from_str("11100").unwrap();
        assert_eq!(a.hamming_distance(&b), 2);
        assert_eq!(a.hamming_distance(&a), 0);
    }

    #[test]
    fn bipolar_mapping() {
        let b = Bits::from_str("101").unwrap();
        assert_eq!(b.to_bipolar(), vec![1.0, -1.0, 1.0]);
    }

    #[test]
    fn rotate_left_wraps() {
        let b = Bits::from_str("10010").unwrap();
        assert_eq!(b.rotate_left(2).to_string(), "01010");
        assert_eq!(b.rotate_left(5).to_string(), "10010");
        assert_eq!(b.rotate_left(7).to_string(), "01010");
    }

    #[test]
    fn paper_spreading_example() {
        // §III-A: data "10" with PN code "01001" encodes to "0100110110".
        let code = Bits::from_str("01001").unwrap();
        let mut spread = Bits::new();
        for bit in Bits::from_str("10").unwrap().iter() {
            let chips = if bit == 1 {
                code.clone()
            } else {
                code.complement()
            };
            spread.extend_bits(&chips);
        }
        assert_eq!(spread.to_string(), "0100110110");
    }

    #[test]
    fn collect_and_extend() {
        let bits: Bits = [1u8, 0, 1].into_iter().collect();
        assert_eq!(bits.to_string(), "101");
        let mut more = bits.clone();
        more.extend([1u8, 1]);
        assert_eq!(more.to_string(), "10111");
        assert_eq!(more.count_ones(), 4);
    }
}
