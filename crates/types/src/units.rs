//! Strongly-typed physical units.
//!
//! The CBMA link budget (paper Eq. 1) mixes absolute powers, power ratios,
//! frequencies and distances. Each gets its own newtype so the compiler
//! rejects, e.g., adding a distance to a power. All wrappers are thin
//! (`repr(transparent)` over `f64`), `Copy`, and implement the arithmetic
//! that is physically meaningful for the quantity:
//!
//! * [`Db`] (a ratio) can be added to and subtracted from [`Db`] and
//!   [`Dbm`] (an absolute power), but two `Dbm` values cannot be added —
//!   only subtracted, which yields a `Db` ratio.
//! * [`Watts`] and [`Dbm`] interconvert exactly through
//!   `10 * log10(mW)`.
//!
//! # Examples
//!
//! ```
//! use cbma_types::units::{Db, Dbm, Watts};
//!
//! let tx = Dbm::new(0.0);                 // 1 mW
//! assert!((tx.to_watts().get() - 1.0e-3).abs() < 1e-15);
//! let gain = Db::new(3.0103);
//! let doubled = tx + gain;
//! assert!((doubled.to_watts().get() - 2.0e-3).abs() < 1e-7);
//! assert!(((doubled - tx).get()) - 3.0103 < 1e-9);
//! ```

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

use serde::{Deserialize, Serialize};

macro_rules! unit_base {
    ($(#[$meta:meta])* $name:ident, $suffix:expr) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
        #[repr(transparent)]
        pub struct $name(f64);

        impl $name {
            /// Wraps a raw `f64` value in the unit type.
            #[inline]
            pub const fn new(value: f64) -> Self {
                Self(value)
            }

            /// Returns the raw `f64` value.
            #[inline]
            pub const fn get(self) -> f64 {
                self.0
            }

            /// Returns the absolute value.
            #[inline]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// Returns the smaller of `self` and `other`.
            #[inline]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Returns the larger of `self` and `other`.
            #[inline]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Returns `true` when the wrapped value is finite.
            #[inline]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:.3} {}", self.0, $suffix)
            }
        }

        impl From<f64> for $name {
            fn from(value: f64) -> Self {
                Self(value)
            }
        }
    };
}

unit_base! {
    /// A power *ratio* in decibels (10·log₁₀ of a linear ratio).
    Db, "dB"
}
unit_base! {
    /// An absolute power referenced to one milliwatt.
    Dbm, "dBm"
}
unit_base! {
    /// An absolute power in watts (linear domain).
    Watts, "W"
}
unit_base! {
    /// A frequency in hertz.
    Hertz, "Hz"
}
unit_base! {
    /// A duration in seconds.
    Seconds, "s"
}
unit_base! {
    /// A distance in meters.
    Meters, "m"
}

impl Db {
    /// Zero ratio (0 dB, i.e. linear ×1).
    pub const ZERO: Db = Db(0.0);

    /// Converts a linear power ratio to decibels.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when `ratio` is negative (a power ratio can
    /// only be non-negative; zero maps to `-inf`).
    #[inline]
    pub fn from_ratio(ratio: f64) -> Db {
        debug_assert!(ratio >= 0.0, "power ratio must be non-negative");
        Db(10.0 * ratio.log10())
    }

    /// Converts the decibel value back to a linear power ratio.
    #[inline]
    pub fn to_ratio(self) -> f64 {
        10f64.powf(self.0 / 10.0)
    }

    /// Converts an *amplitude* (voltage) ratio to decibels (20·log₁₀).
    #[inline]
    pub fn from_amplitude_ratio(ratio: f64) -> Db {
        debug_assert!(ratio >= 0.0, "amplitude ratio must be non-negative");
        Db(20.0 * ratio.log10())
    }

    /// Converts the decibel value to a linear amplitude ratio.
    #[inline]
    pub fn to_amplitude_ratio(self) -> f64 {
        10f64.powf(self.0 / 20.0)
    }
}

impl Dbm {
    /// Converts an absolute power in watts to dBm.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when `power` is negative.
    #[inline]
    pub fn from_watts(power: Watts) -> Dbm {
        debug_assert!(power.get() >= 0.0, "power must be non-negative");
        Dbm(10.0 * (power.get() * 1e3).log10())
    }

    /// Converts to the linear watt domain.
    #[inline]
    pub fn to_watts(self) -> Watts {
        Watts(10f64.powf(self.0 / 10.0) * 1e-3)
    }

    /// Converts to milliwatts.
    #[inline]
    pub fn to_milliwatts(self) -> f64 {
        10f64.powf(self.0 / 10.0)
    }
}

impl Watts {
    /// Converts to dBm. Convenience alias for [`Dbm::from_watts`].
    #[inline]
    pub fn to_dbm(self) -> Dbm {
        Dbm::from_watts(self)
    }
}

impl Hertz {
    /// Speed of light in vacuum (m/s), used for wavelength conversion.
    pub const SPEED_OF_LIGHT: f64 = 299_792_458.0;

    /// Constructs a frequency expressed in megahertz.
    #[inline]
    pub const fn from_mhz(mhz: f64) -> Hertz {
        Hertz(mhz * 1e6)
    }

    /// Constructs a frequency expressed in gigahertz.
    #[inline]
    pub const fn from_ghz(ghz: f64) -> Hertz {
        Hertz(ghz * 1e9)
    }

    /// Free-space wavelength λ = c / f.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when the frequency is not strictly positive.
    #[inline]
    pub fn wavelength(self) -> Meters {
        debug_assert!(self.0 > 0.0, "frequency must be positive");
        Meters(Self::SPEED_OF_LIGHT / self.0)
    }

    /// The period 1/f of one cycle.
    #[inline]
    pub fn period(self) -> Seconds {
        debug_assert!(self.0 > 0.0, "frequency must be positive");
        Seconds(1.0 / self.0)
    }
}

impl Seconds {
    /// Constructs a duration expressed in microseconds.
    #[inline]
    pub const fn from_micros(us: f64) -> Seconds {
        Seconds(us * 1e-6)
    }

    /// Returns the duration in microseconds.
    #[inline]
    pub fn as_micros(self) -> f64 {
        self.0 * 1e6
    }
}

impl Meters {
    /// Constructs a distance expressed in centimeters.
    #[inline]
    pub const fn from_cm(cm: f64) -> Meters {
        Meters(cm / 100.0)
    }

    /// Returns the distance in centimeters.
    #[inline]
    pub fn as_cm(self) -> f64 {
        self.0 * 100.0
    }
}

// ---- arithmetic that is physically meaningful -----------------------------

impl Add for Db {
    type Output = Db;
    fn add(self, rhs: Db) -> Db {
        Db(self.0 + rhs.0)
    }
}
impl Sub for Db {
    type Output = Db;
    fn sub(self, rhs: Db) -> Db {
        Db(self.0 - rhs.0)
    }
}
impl Neg for Db {
    type Output = Db;
    fn neg(self) -> Db {
        Db(-self.0)
    }
}
impl AddAssign for Db {
    fn add_assign(&mut self, rhs: Db) {
        self.0 += rhs.0;
    }
}
impl SubAssign for Db {
    fn sub_assign(&mut self, rhs: Db) {
        self.0 -= rhs.0;
    }
}
impl Mul<f64> for Db {
    type Output = Db;
    fn mul(self, rhs: f64) -> Db {
        Db(self.0 * rhs)
    }
}

impl Add<Db> for Dbm {
    type Output = Dbm;
    fn add(self, rhs: Db) -> Dbm {
        Dbm(self.0 + rhs.0)
    }
}
impl Sub<Db> for Dbm {
    type Output = Dbm;
    fn sub(self, rhs: Db) -> Dbm {
        Dbm(self.0 - rhs.0)
    }
}
/// Subtracting two absolute powers yields a ratio.
impl Sub for Dbm {
    type Output = Db;
    fn sub(self, rhs: Dbm) -> Db {
        Db(self.0 - rhs.0)
    }
}

impl Add for Watts {
    type Output = Watts;
    fn add(self, rhs: Watts) -> Watts {
        Watts(self.0 + rhs.0)
    }
}
impl Sub for Watts {
    type Output = Watts;
    fn sub(self, rhs: Watts) -> Watts {
        Watts(self.0 - rhs.0)
    }
}
impl Mul<f64> for Watts {
    type Output = Watts;
    fn mul(self, rhs: f64) -> Watts {
        Watts(self.0 * rhs)
    }
}
impl Div<Watts> for Watts {
    type Output = f64;
    fn div(self, rhs: Watts) -> f64 {
        self.0 / rhs.0
    }
}

impl Add for Seconds {
    type Output = Seconds;
    fn add(self, rhs: Seconds) -> Seconds {
        Seconds(self.0 + rhs.0)
    }
}
impl Sub for Seconds {
    type Output = Seconds;
    fn sub(self, rhs: Seconds) -> Seconds {
        Seconds(self.0 - rhs.0)
    }
}
impl Mul<f64> for Seconds {
    type Output = Seconds;
    fn mul(self, rhs: f64) -> Seconds {
        Seconds(self.0 * rhs)
    }
}

impl Add for Meters {
    type Output = Meters;
    fn add(self, rhs: Meters) -> Meters {
        Meters(self.0 + rhs.0)
    }
}
impl Sub for Meters {
    type Output = Meters;
    fn sub(self, rhs: Meters) -> Meters {
        Meters(self.0 - rhs.0)
    }
}
impl Mul<f64> for Meters {
    type Output = Meters;
    fn mul(self, rhs: f64) -> Meters {
        Meters(self.0 * rhs)
    }
}
impl Div<Meters> for Meters {
    type Output = f64;
    fn div(self, rhs: Meters) -> f64 {
        self.0 / rhs.0
    }
}

impl Mul<f64> for Hertz {
    type Output = Hertz;
    fn mul(self, rhs: f64) -> Hertz {
        Hertz(self.0 * rhs)
    }
}
impl Div<Hertz> for Hertz {
    type Output = f64;
    fn div(self, rhs: Hertz) -> f64 {
        self.0 / rhs.0
    }
}
impl Add for Hertz {
    type Output = Hertz;
    fn add(self, rhs: Hertz) -> Hertz {
        Hertz(self.0 + rhs.0)
    }
}
impl Sub for Hertz {
    type Output = Hertz;
    fn sub(self, rhs: Hertz) -> Hertz {
        Hertz(self.0 - rhs.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dbm_watts_round_trip() {
        for dbm in [-90.0, -30.0, 0.0, 10.0, 20.0, 36.0] {
            let p = Dbm::new(dbm);
            let back = p.to_watts().to_dbm();
            assert!((back.get() - dbm).abs() < 1e-9, "{dbm} -> {back}");
        }
    }

    #[test]
    fn db_ratio_round_trip() {
        for db in [-40.0, -3.0, 0.0, 3.0, 10.0, 30.0] {
            let r = Db::new(db).to_ratio();
            let back = Db::from_ratio(r);
            assert!((back.get() - db).abs() < 1e-9);
        }
    }

    #[test]
    fn db_amplitude_vs_power() {
        // A ×2 amplitude ratio is a ×4 power ratio: 6.02 dB either way.
        let from_amp = Db::from_amplitude_ratio(2.0);
        let from_pow = Db::from_ratio(4.0);
        assert!((from_amp.get() - from_pow.get()).abs() < 1e-12);
    }

    #[test]
    fn dbm_plus_db_is_dbm() {
        let p = Dbm::new(-10.0) + Db::new(13.0);
        assert_eq!(p, Dbm::new(3.0));
        let diff: Db = Dbm::new(3.0) - Dbm::new(-10.0);
        assert_eq!(diff, Db::new(13.0));
    }

    #[test]
    fn zero_dbm_is_one_milliwatt() {
        assert!((Dbm::new(0.0).to_milliwatts() - 1.0).abs() < 1e-12);
        assert!((Dbm::new(30.0).to_watts().get() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn wavelength_at_2ghz() {
        let lambda = Hertz::from_ghz(2.0).wavelength();
        assert!((lambda.get() - 0.149896229).abs() < 1e-6);
    }

    #[test]
    fn seconds_micros_round_trip() {
        let s = Seconds::from_micros(1.0);
        assert!((s.get() - 1e-6).abs() < 1e-18);
        assert!((s.as_micros() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn meters_cm_round_trip() {
        let m = Meters::from_cm(250.0);
        assert!((m.get() - 2.5).abs() < 1e-12);
        assert!((m.as_cm() - 250.0).abs() < 1e-9);
    }

    #[test]
    fn display_includes_suffix() {
        assert_eq!(format!("{}", Db::new(3.0)), "3.000 dB");
        assert_eq!(format!("{}", Dbm::new(-5.0)), "-5.000 dBm");
        assert_eq!(format!("{}", Meters::new(1.5)), "1.500 m");
    }

    #[test]
    fn min_max_abs() {
        assert_eq!(Db::new(-3.0).abs(), Db::new(3.0));
        assert_eq!(Db::new(1.0).min(Db::new(2.0)), Db::new(1.0));
        assert_eq!(Db::new(1.0).max(Db::new(2.0)), Db::new(2.0));
    }

    #[test]
    fn watts_arithmetic() {
        let sum = Watts::new(1.0) + Watts::new(2.0);
        assert_eq!(sum, Watts::new(3.0));
        assert!((sum / Watts::new(1.5) - 2.0).abs() < 1e-12);
        assert_eq!(Watts::new(2.0) * 0.5, Watts::new(1.0));
    }
}
