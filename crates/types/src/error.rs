//! The workspace-wide error type.
//!
//! Every fallible public function in the CBMA crates returns
//! [`Result<T>`](Result) with [`CbmaError`]. The variants are grouped by the
//! subsystem that raises them; keeping one error enum across the workspace
//! lets the simulation engine propagate failures from any layer with `?`.

use std::fmt;

/// Convenience alias used across the CBMA workspace.
pub type Result<T> = std::result::Result<T, CbmaError>;

/// Errors raised anywhere in the CBMA stack.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CbmaError {
    /// A value that must be 0 or 1 was something else.
    InvalidBit(u8),
    /// A bit sequence had the wrong length (e.g. not a whole number of
    /// bytes when packing).
    BitLength {
        /// The length must be a multiple of this.
        expected_multiple: usize,
        /// The length that was supplied.
        actual: usize,
    },
    /// A frame payload exceeded the 126-byte maximum (§III-A).
    PayloadTooLarge {
        /// Bytes supplied.
        actual: usize,
        /// Maximum allowed.
        max: usize,
    },
    /// A received frame failed its CRC check.
    CrcMismatch {
        /// CRC carried in the frame.
        expected: u16,
        /// CRC computed over the received payload.
        computed: u16,
    },
    /// A received frame was truncated or structurally malformed.
    MalformedFrame(String),
    /// A PN-code family could not produce the requested code.
    CodeUnavailable {
        /// Family name, e.g. `"gold"`.
        family: &'static str,
        /// Explanation of the limit that was hit.
        reason: String,
    },
    /// A configuration parameter was out of its valid range.
    InvalidConfig(String),
    /// A DSP operation received incompatible buffer shapes.
    ShapeMismatch {
        /// What the operation expected.
        expected: String,
        /// What it received.
        actual: String,
    },
    /// The receiver found no frame in the supplied samples.
    NoFrameDetected,
    /// An operation referenced a tag id that is not part of the scenario.
    UnknownTag(u32),
}

impl fmt::Display for CbmaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CbmaError::InvalidBit(b) => write!(f, "value {b} is not a valid bit (must be 0 or 1)"),
            CbmaError::BitLength {
                expected_multiple,
                actual,
            } => write!(
                f,
                "bit length {actual} is not a multiple of {expected_multiple}"
            ),
            CbmaError::PayloadTooLarge { actual, max } => {
                write!(
                    f,
                    "payload of {actual} bytes exceeds the {max}-byte maximum"
                )
            }
            CbmaError::CrcMismatch { expected, computed } => write!(
                f,
                "crc mismatch: frame carries {expected:#06x} but payload computes {computed:#06x}"
            ),
            CbmaError::MalformedFrame(why) => write!(f, "malformed frame: {why}"),
            CbmaError::CodeUnavailable { family, reason } => {
                write!(f, "{family} code unavailable: {reason}")
            }
            CbmaError::InvalidConfig(why) => write!(f, "invalid configuration: {why}"),
            CbmaError::ShapeMismatch { expected, actual } => {
                write!(f, "shape mismatch: expected {expected}, got {actual}")
            }
            CbmaError::NoFrameDetected => write!(f, "no frame detected in the supplied samples"),
            CbmaError::UnknownTag(id) => write!(f, "tag id {id} is not part of the scenario"),
        }
    }
}

impl std::error::Error for CbmaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_are_send_sync_static() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<CbmaError>();
    }

    #[test]
    fn display_messages_are_lowercase_and_nonempty() {
        let samples: Vec<CbmaError> = vec![
            CbmaError::InvalidBit(7),
            CbmaError::BitLength {
                expected_multiple: 8,
                actual: 3,
            },
            CbmaError::PayloadTooLarge {
                actual: 200,
                max: 126,
            },
            CbmaError::CrcMismatch {
                expected: 0xBEEF,
                computed: 0xDEAD,
            },
            CbmaError::MalformedFrame("too short".into()),
            CbmaError::CodeUnavailable {
                family: "gold",
                reason: "degree 4 has no preferred pair".into(),
            },
            CbmaError::InvalidConfig("samples_per_chip must be >= 1".into()),
            CbmaError::ShapeMismatch {
                expected: "len 8".into(),
                actual: "len 5".into(),
            },
            CbmaError::NoFrameDetected,
            CbmaError::UnknownTag(3),
        ];
        for err in samples {
            let msg = err.to_string();
            assert!(!msg.is_empty());
            let first = msg.chars().next().unwrap();
            assert!(
                first.is_lowercase() || first.is_numeric(),
                "message should start lowercase: {msg}"
            );
            assert!(!msg.ends_with('.'), "no trailing punctuation: {msg}");
        }
    }

    #[test]
    fn question_mark_compatible() {
        fn inner() -> Result<()> {
            Err(CbmaError::NoFrameDetected)?;
            Ok(())
        }
        assert_eq!(inner(), Err(CbmaError::NoFrameDetected));
    }
}
