//! Shared foundation types for the CBMA workspace.
//!
//! This crate defines the small, dependency-free vocabulary used by every
//! other crate in the reproduction of *CBMA: Coded-Backscatter Multiple
//! Access* (ICDCS 2019):
//!
//! * strongly-typed physical units ([`units`]) so decibels, watts, hertz,
//!   seconds and meters cannot be confused with one another,
//! * 2-D geometry for placing the excitation source, tags and receiver in a
//!   room ([`geometry`]),
//! * complex baseband arithmetic ([`iq`]),
//! * unpacked bit vectors used by framing and spreading ([`bits`]),
//! * deterministic RNG seed derivation so every experiment is reproducible
//!   ([`rng`]),
//! * the workspace-wide error type ([`error`]).
//!
//! # Examples
//!
//! ```
//! use cbma_types::units::{Db, Dbm};
//! use cbma_types::geometry::Point;
//!
//! let tx_power = Dbm::new(20.0);
//! let path_loss = Db::new(46.0);
//! let rx_power = tx_power - path_loss;
//! assert_eq!(rx_power, Dbm::new(-26.0));
//!
//! let es = Point::new(-0.5, 0.0);
//! let rx = Point::new(0.5, 0.0);
//! assert!((es.distance_to(rx) - 1.0).abs() < 1e-12);
//! ```

pub mod bits;
pub mod error;
pub mod geometry;
pub mod iq;
pub mod rng;
pub mod units;

pub use bits::Bits;
pub use error::{CbmaError, Result};
pub use geometry::Point;
pub use iq::Iq;
pub use rng::SeedSequence;
pub use units::{Db, Dbm, Hertz, Meters, Seconds, Watts};
