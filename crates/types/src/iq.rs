//! Complex baseband (I/Q) arithmetic.
//!
//! Everything the receiver sees is a stream of in-phase/quadrature sample
//! pairs (§V-B: "We receive the backscatter signal in I-Q space: I(t) and
//! Q(t)"). [`Iq`] is a minimal complex number tailored to that use: double
//! precision, `Copy`, with the handful of operations DSP code needs (polar
//! construction, conjugation, magnitude, power).
//!
//! # Examples
//!
//! ```
//! use cbma_types::Iq;
//!
//! let s = Iq::from_polar(2.0, std::f64::consts::FRAC_PI_2);
//! assert!((s.re).abs() < 1e-12);
//! assert!((s.im - 2.0).abs() < 1e-12);
//! assert!((s.power() - 4.0).abs() < 1e-12);
//! ```

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A complex baseband sample with in-phase (`re`) and quadrature (`im`)
/// components.
///
/// The layout is `#[repr(C)]` — two consecutive `f64`s — so DSP kernels
/// may reinterpret an `&[Iq]` as an interleaved `&[f64]` of twice the
/// length (see `cbma_dsp::simd`).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
#[repr(C)]
pub struct Iq {
    /// In-phase component.
    pub re: f64,
    /// Quadrature component.
    pub im: f64,
}

impl Iq {
    /// The additive identity.
    pub const ZERO: Iq = Iq { re: 0.0, im: 0.0 };
    /// The multiplicative identity.
    pub const ONE: Iq = Iq { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: Iq = Iq { re: 0.0, im: 1.0 };

    /// Creates a sample from rectangular components.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Iq {
        Iq { re, im }
    }

    /// Creates a sample from polar form `r·e^{jθ}`.
    #[inline]
    pub fn from_polar(magnitude: f64, phase: f64) -> Iq {
        Iq {
            re: magnitude * phase.cos(),
            im: magnitude * phase.sin(),
        }
    }

    /// `e^{jθ}` — a unit phasor at the given phase.
    #[inline]
    pub fn phasor(phase: f64) -> Iq {
        Iq::from_polar(1.0, phase)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Iq {
        Iq::new(self.re, -self.im)
    }

    /// Magnitude |z| = √(I² + Q²) — the paper's P(t) definition (§V-B).
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Instantaneous power |z|² = I² + Q².
    #[inline]
    pub fn power(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Phase angle in radians, in (−π, π].
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, k: f64) -> Iq {
        Iq::new(self.re * k, self.im * k)
    }

    /// Returns `true` when both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl fmt::Display for Iq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{:.6}+{:.6}j", self.re, self.im)
        } else {
            write!(f, "{:.6}-{:.6}j", self.re, -self.im)
        }
    }
}

impl From<f64> for Iq {
    fn from(re: f64) -> Iq {
        Iq::new(re, 0.0)
    }
}

impl Add for Iq {
    type Output = Iq;
    #[inline]
    fn add(self, rhs: Iq) -> Iq {
        Iq::new(self.re + rhs.re, self.im + rhs.im)
    }
}
impl AddAssign for Iq {
    #[inline]
    fn add_assign(&mut self, rhs: Iq) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}
impl Sub for Iq {
    type Output = Iq;
    #[inline]
    fn sub(self, rhs: Iq) -> Iq {
        Iq::new(self.re - rhs.re, self.im - rhs.im)
    }
}
impl SubAssign for Iq {
    #[inline]
    fn sub_assign(&mut self, rhs: Iq) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}
impl Mul for Iq {
    type Output = Iq;
    #[inline]
    fn mul(self, rhs: Iq) -> Iq {
        Iq::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}
impl MulAssign for Iq {
    #[inline]
    fn mul_assign(&mut self, rhs: Iq) {
        *self = *self * rhs;
    }
}
impl Mul<f64> for Iq {
    type Output = Iq;
    #[inline]
    fn mul(self, rhs: f64) -> Iq {
        self.scale(rhs)
    }
}
impl Div<f64> for Iq {
    type Output = Iq;
    #[inline]
    fn div(self, rhs: f64) -> Iq {
        Iq::new(self.re / rhs, self.im / rhs)
    }
}
impl Div for Iq {
    type Output = Iq;
    #[inline]
    fn div(self, rhs: Iq) -> Iq {
        let d = rhs.power();
        Iq::new(
            (self.re * rhs.re + self.im * rhs.im) / d,
            (self.im * rhs.re - self.re * rhs.im) / d,
        )
    }
}
impl Neg for Iq {
    type Output = Iq;
    #[inline]
    fn neg(self) -> Iq {
        Iq::new(-self.re, -self.im)
    }
}
impl Sum for Iq {
    fn sum<I: Iterator<Item = Iq>>(iter: I) -> Iq {
        iter.fold(Iq::ZERO, |acc, z| acc + z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_4, PI};

    #[test]
    fn polar_round_trip() {
        let z = Iq::from_polar(3.0, FRAC_PI_4);
        assert!((z.abs() - 3.0).abs() < 1e-12);
        assert!((z.arg() - FRAC_PI_4).abs() < 1e-12);
    }

    #[test]
    fn multiplication_adds_phases() {
        let a = Iq::phasor(0.3);
        let b = Iq::phasor(0.5);
        let c = a * b;
        assert!((c.arg() - 0.8).abs() < 1e-12);
        assert!((c.abs() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn conjugate_multiplication_gives_power() {
        let z = Iq::new(3.0, -4.0);
        let p = z * z.conj();
        assert!((p.re - 25.0).abs() < 1e-12);
        assert!(p.im.abs() < 1e-12);
        assert!((z.power() - 25.0).abs() < 1e-12);
        assert!((z.abs() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = Iq::new(1.5, -2.5);
        let b = Iq::new(-0.3, 0.7);
        let q = (a * b) / b;
        assert!((q - a).abs() < 1e-12);
    }

    #[test]
    fn i_squared_is_minus_one() {
        let m = Iq::I * Iq::I;
        assert!((m - Iq::new(-1.0, 0.0)).abs() < 1e-15);
    }

    #[test]
    fn sum_of_phasors_cancels() {
        // e^{j0} + e^{jπ} = 0
        let s: Iq = [Iq::phasor(0.0), Iq::phasor(PI)].into_iter().sum();
        assert!(s.abs() < 1e-12);
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(format!("{}", Iq::new(1.0, 1.0)), "1.000000+1.000000j");
        assert_eq!(format!("{}", Iq::new(1.0, -1.0)), "1.000000-1.000000j");
    }
}
