//! 2-D geometry for deployment scenarios.
//!
//! The paper's experiments place the excitation source at (−D, 0), the
//! receiver at (D, 0) and tags at arbitrary positions in a 4 m × 6 m office
//! (§IV, §VII-A). All placement logic in `cbma-sim` and the node-selection
//! scheme in `cbma-mac` work on these types.
//!
//! # Examples
//!
//! ```
//! use cbma_types::geometry::{Point, Rect};
//!
//! let room = Rect::new(Point::new(-2.0, -3.0), Point::new(2.0, 3.0));
//! assert!(room.contains(Point::new(0.0, 0.0)));
//! assert!(!room.contains(Point::new(5.0, 0.0)));
//! ```

use std::fmt;
use std::ops::{Add, Mul, Sub};

use serde::{Deserialize, Serialize};

use crate::units::Meters;

/// A point (or displacement) in the 2-D deployment plane, in meters.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    /// X coordinate in meters.
    pub x: f64,
    /// Y coordinate in meters.
    pub y: f64,
}

impl Point {
    /// The origin `(0, 0)` — the paper's coordinate-system center (§IV).
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Creates a point from meter coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Point {
        Point { x, y }
    }

    /// Creates a point from centimeter coordinates, matching the paper's
    /// centimeter-denominated distances (e.g. D = 50 cm).
    #[inline]
    pub const fn from_cm(x_cm: f64, y_cm: f64) -> Point {
        Point {
            x: x_cm / 100.0,
            y: y_cm / 100.0,
        }
    }

    /// Euclidean distance to another point.
    #[inline]
    pub fn distance_to(self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }

    /// Euclidean distance as a typed [`Meters`] value.
    #[inline]
    pub fn distance_to_m(self, other: Point) -> Meters {
        Meters::new(self.distance_to(other))
    }

    /// Squared distance (avoids the square root when only comparisons are
    /// needed, e.g. the node-selection exclusion radius test).
    #[inline]
    pub fn distance_sq(self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Vector length interpreted as a displacement from the origin.
    #[inline]
    pub fn norm(self) -> f64 {
        (self.x * self.x + self.y * self.y).sqrt()
    }

    /// Returns a unit-length copy; returns the zero vector unchanged.
    #[inline]
    pub fn normalized(self) -> Point {
        let n = self.norm();
        if n == 0.0 {
            self
        } else {
            Point::new(self.x / n, self.y / n)
        }
    }

    /// Linear interpolation between `self` (t = 0) and `other` (t = 1).
    #[inline]
    pub fn lerp(self, other: Point, t: f64) -> Point {
        Point::new(
            self.x + (other.x - self.x) * t,
            self.y + (other.y - self.y) * t,
        )
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.3} m, {:.3} m)", self.x, self.y)
    }
}

impl Add for Point {
    type Output = Point;
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}
impl Sub for Point {
    type Output = Point;
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}
impl Mul<f64> for Point {
    type Output = Point;
    fn mul(self, rhs: f64) -> Point {
        Point::new(self.x * rhs, self.y * rhs)
    }
}

/// An axis-aligned rectangle, used as the room boundary for deployments.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rect {
    min: Point,
    max: Point,
}

impl Rect {
    /// Creates a rectangle from two opposite corners (any order).
    #[inline]
    pub fn new(a: Point, b: Point) -> Rect {
        Rect {
            min: Point::new(a.x.min(b.x), a.y.min(b.y)),
            max: Point::new(a.x.max(b.x), a.y.max(b.y)),
        }
    }

    /// The paper's office: 4 m × 6 m centered on the origin (§VII-A).
    #[inline]
    pub fn office() -> Rect {
        Rect::new(Point::new(-2.0, -3.0), Point::new(2.0, 3.0))
    }

    /// Minimum (bottom-left) corner.
    #[inline]
    pub fn min(&self) -> Point {
        self.min
    }

    /// Maximum (top-right) corner.
    #[inline]
    pub fn max(&self) -> Point {
        self.max
    }

    /// Width along X in meters.
    #[inline]
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Height along Y in meters.
    #[inline]
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Center point.
    #[inline]
    pub fn center(&self) -> Point {
        Point::new(
            (self.min.x + self.max.x) / 2.0,
            (self.min.y + self.max.y) / 2.0,
        )
    }

    /// Whether `p` lies inside (inclusive of the boundary).
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Clamps `p` to the rectangle.
    #[inline]
    pub fn clamp(&self, p: Point) -> Point {
        Point::new(
            p.x.clamp(self.min.x, self.max.x),
            p.y.clamp(self.min.y, self.max.y),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_symmetric_and_euclidean() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert!((a.distance_to(b) - 5.0).abs() < 1e-12);
        assert!((b.distance_to(a) - 5.0).abs() < 1e-12);
        assert!((a.distance_sq(b) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn from_cm_matches_paper_layout() {
        // ES at (-D, 0), RX at (D, 0) with D = 50cm (§IV).
        let es = Point::from_cm(-50.0, 0.0);
        let rx = Point::from_cm(50.0, 0.0);
        assert!((es.distance_to(rx) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn vector_ops() {
        let p = Point::new(1.0, 2.0) + Point::new(3.0, -1.0);
        assert_eq!(p, Point::new(4.0, 1.0));
        assert_eq!(p - Point::new(4.0, 0.0), Point::new(0.0, 1.0));
        assert_eq!(Point::new(1.0, -2.0) * 2.0, Point::new(2.0, -4.0));
    }

    #[test]
    fn normalized_unit_length() {
        let p = Point::new(3.0, 4.0).normalized();
        assert!((p.norm() - 1.0).abs() < 1e-12);
        assert_eq!(Point::ORIGIN.normalized(), Point::ORIGIN);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(2.0, 4.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Point::new(1.0, 2.0));
    }

    #[test]
    fn rect_contains_and_clamp() {
        let r = Rect::office();
        assert!((r.width() - 4.0).abs() < 1e-12);
        assert!((r.height() - 6.0).abs() < 1e-12);
        assert_eq!(r.center(), Point::ORIGIN);
        assert!(r.contains(Point::new(2.0, 3.0)));
        assert!(!r.contains(Point::new(2.1, 0.0)));
        assert_eq!(r.clamp(Point::new(10.0, -10.0)), Point::new(2.0, -3.0));
    }

    #[test]
    fn rect_corner_order_is_normalized() {
        let r = Rect::new(Point::new(1.0, 5.0), Point::new(-1.0, -5.0));
        assert_eq!(r.min(), Point::new(-1.0, -5.0));
        assert_eq!(r.max(), Point::new(1.0, 5.0));
    }
}
