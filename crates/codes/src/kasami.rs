//! Kasami codes (small set) — a reproduction extension.
//!
//! The paper evaluates Gold and 2NC codes; the small-set Kasami family is
//! the classic third option, meeting the Welch lower bound on maximum
//! cross-correlation: for even degree n it provides 2^(n/2) sequences of
//! length 2ⁿ − 1 with correlations in {−1, −s(n), s(n) − 2} where
//! s(n) = 2^(n/2) + 1 — strictly tighter than Gold's t(n) = 2^(n/2+1) + 1.
//! Included for the code-family ablation; wired into
//! [`FamilyKind`](crate::family::FamilyKind) as `Kasami`.
//!
//! Construction: take an m-sequence u of even degree n; decimate it by
//! 2^(n/2) + 1 to get w (period 2^(n/2) − 1); the family is
//! {u} ∪ {u ⊕ shiftₖ(w) : k = 0 … 2^(n/2) − 2}.

use cbma_types::{Bits, CbmaError, Result};

use crate::family::{CodeFamily, PnCode};
use crate::msequence::m_sequence;

/// The small-set Kasami family for an even LFSR degree.
#[derive(Debug, Clone)]
pub struct KasamiFamily {
    degree: u32,
    u: Bits,
    /// The decimated sequence, repeated to full length.
    w: Bits,
}

impl KasamiFamily {
    /// Constructs the family for even `degree` ∈ {6, 8, 10} (spreading
    /// factors 63, 255, 1023).
    ///
    /// # Errors
    ///
    /// Returns [`CbmaError::CodeUnavailable`] for odd or unsupported
    /// degrees.
    pub fn new(degree: u32) -> Result<KasamiFamily> {
        if !degree.is_multiple_of(2) || !(6..=10).contains(&degree) {
            return Err(CbmaError::CodeUnavailable {
                family: "kasami",
                reason: format!("degree must be even and in 6..=10, got {degree}"),
            });
        }
        let u = m_sequence(degree)?;
        let n = u.len();
        let dec = (1usize << (degree / 2)) + 1;
        // Decimation u[(k·dec) mod N] yields a sequence of period
        // 2^(n/2) − 1, replicated across the full length.
        let w: Bits = (0..n).map(|k| u[(k * dec) % n]).collect();
        Ok(KasamiFamily { degree, u, w })
    }

    /// The LFSR degree n.
    #[inline]
    pub fn degree(&self) -> u32 {
        self.degree
    }

    /// The theoretical peak cross-correlation magnitude s(n) = 2^(n/2)+1.
    pub fn s_bound(&self) -> i64 {
        (1i64 << (self.degree / 2)) + 1
    }

    /// The short period of the decimated sequence: 2^(n/2) − 1.
    pub fn short_period(&self) -> usize {
        (1usize << (self.degree / 2)) - 1
    }
}

impl CodeFamily for KasamiFamily {
    fn name(&self) -> &'static str {
        "kasami"
    }

    fn spreading_factor(&self) -> usize {
        self.u.len()
    }

    fn capacity(&self) -> usize {
        // u plus one code per distinct shift of w.
        1 << (self.degree / 2)
    }

    fn code(&self, index: usize) -> Result<PnCode> {
        if index >= self.capacity() {
            return Err(CbmaError::CodeUnavailable {
                family: "kasami",
                reason: format!("index {index} out of range (capacity {})", self.capacity()),
            });
        }
        let bits = match index {
            0 => self.u.clone(),
            k => self
                .u
                .xor(&self.w.rotate_left((k - 1) % self.short_period())),
        };
        Ok(PnCode::new(index, bits))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn periodic_cross(a: &Bits, b: &Bits, lag: usize) -> i64 {
        let n = a.len();
        (0..n)
            .map(|i| (i64::from(a[i]) * 2 - 1) * (i64::from(b[(i + lag) % n]) * 2 - 1))
            .sum()
    }

    #[test]
    fn dimensions_degree_6() {
        let k = KasamiFamily::new(6).unwrap();
        assert_eq!(k.spreading_factor(), 63);
        assert_eq!(k.capacity(), 8);
        assert_eq!(k.s_bound(), 9);
        assert_eq!(k.short_period(), 7);
    }

    #[test]
    fn odd_and_out_of_range_degrees_rejected() {
        assert!(KasamiFamily::new(5).is_err());
        assert!(KasamiFamily::new(7).is_err());
        assert!(KasamiFamily::new(4).is_err());
        assert!(KasamiFamily::new(12).is_err());
    }

    #[test]
    fn decimated_sequence_has_short_period() {
        let k = KasamiFamily::new(6).unwrap();
        // w repeats with period 7 across its 63 chips.
        for i in 0..63 - 7 {
            assert_eq!(k.w[i], k.w[i + 7], "w not 7-periodic at {i}");
        }
        // ... and is not constant.
        assert!(k.w.count_ones() > 0 && k.w.count_ones() < 63);
    }

    #[test]
    fn cross_correlation_is_three_valued() {
        // The defining Kasami property: every pairwise periodic
        // cross-correlation lies in {−1, −s, s−2} with s = 9 for n = 6.
        let family = KasamiFamily::new(6).unwrap();
        let s = family.s_bound();
        let allowed = [-1, -s, s - 2];
        let codes: Vec<Bits> = (0..family.capacity())
            .map(|i| family.code(i).unwrap().bits().clone())
            .collect();
        for i in 0..codes.len() {
            for j in i + 1..codes.len() {
                for lag in 0..63 {
                    let c = periodic_cross(&codes[i], &codes[j], lag);
                    assert!(
                        allowed.contains(&c),
                        "codes ({i},{j}) lag {lag}: {c} not in {allowed:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn kasami_bound_is_tighter_than_gold() {
        // Same length regime: Kasami-63 s = 9 vs Gold-63 t = 17.
        let kasami = KasamiFamily::new(6).unwrap();
        let gold = crate::gold::GoldFamily::new(6).unwrap();
        assert!(kasami.s_bound() < gold.t_bound());
        assert_eq!(kasami.spreading_factor(), gold.spreading_factor());
    }

    #[test]
    fn all_codes_distinct_and_bounds_checked() {
        let family = KasamiFamily::new(6).unwrap();
        let codes = family.codes(family.capacity()).unwrap();
        for i in 0..codes.len() {
            for j in i + 1..codes.len() {
                assert_ne!(codes[i].bits(), codes[j].bits());
            }
        }
        assert!(family.code(family.capacity()).is_err());
    }

    #[test]
    fn degree_8_family_works() {
        let family = KasamiFamily::new(8).unwrap();
        assert_eq!(family.spreading_factor(), 255);
        assert_eq!(family.capacity(), 16);
        assert_eq!(family.s_bound(), 17);
        // Spot-check the three-valued property on a few pairs.
        let a = family.code(1).unwrap();
        let b = family.code(5).unwrap();
        let allowed = [-1i64, -17, 15];
        for lag in [0usize, 1, 50, 100, 200] {
            let c = periodic_cross(a.bits(), b.bits(), lag);
            assert!(allowed.contains(&c), "lag {lag}: {c}");
        }
    }
}
