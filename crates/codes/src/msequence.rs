//! Maximal-length sequences (m-sequences).
//!
//! An m-sequence of degree n has period 2ⁿ − 1, is balanced (2ⁿ⁻¹ ones),
//! and has the ideal two-valued periodic autocorrelation {N, −1} — the
//! properties Gold-code construction relies on. This module carries the
//! primitive-polynomial table (octal notation) for degrees 3..=10 and
//! generates full-period sequences.

use cbma_types::{Bits, CbmaError, Result};

use crate::lfsr::Lfsr;

/// One primitive polynomial (octal) per supported degree — the first entry
/// of each degree's standard table.
const PRIMITIVE_OCTAL: &[(u32, u64)] = &[
    (2, 7),
    (3, 13),
    (4, 23),
    (5, 45),
    (6, 103),
    (7, 211),
    (8, 435),
    (9, 1021),
    (10, 2011),
];

/// Returns a primitive polynomial (octal notation) for `degree`.
///
/// # Errors
///
/// Returns [`CbmaError::CodeUnavailable`] for degrees outside 3..=10.
pub fn primitive_polynomial_octal(degree: u32) -> Result<u64> {
    PRIMITIVE_OCTAL
        .iter()
        .find(|(d, _)| *d == degree)
        .map(|(_, p)| *p)
        .ok_or_else(|| CbmaError::CodeUnavailable {
            family: "m-sequence",
            reason: format!("no primitive polynomial tabulated for degree {degree}"),
        })
}

/// Generates one full period (2ⁿ − 1 bits) of the m-sequence produced by
/// the given polynomial (octal notation), starting from state 1.
///
/// # Errors
///
/// Returns an error if the polynomial is malformed (see [`Lfsr::new`]) or
/// does not actually reach full period (i.e. is not primitive).
pub fn m_sequence_from_octal(octal: u64) -> Result<Bits> {
    let mut lfsr = Lfsr::from_octal(octal, 1)?;
    let period = lfsr.measure_period();
    if period != lfsr.max_period() {
        return Err(CbmaError::CodeUnavailable {
            family: "m-sequence",
            reason: format!(
                "polynomial {octal} (octal) has period {period}, expected {}",
                lfsr.max_period()
            ),
        });
    }
    lfsr.reset();
    let bits = lfsr.take_bits(period);
    Bits::from_slice(&bits)
}

/// Generates one full period of the canonical m-sequence for `degree`.
///
/// # Errors
///
/// Returns [`CbmaError::CodeUnavailable`] for unsupported degrees.
pub fn m_sequence(degree: u32) -> Result<Bits> {
    m_sequence_from_octal(primitive_polynomial_octal(degree)?)
}

/// Periodic autocorrelation of a ±1-mapped binary sequence at `lag`.
pub fn periodic_autocorrelation(seq: &Bits, lag: usize) -> i64 {
    let n = seq.len();
    let mut acc = 0i64;
    for i in 0..n {
        let a = i64::from(seq[i]) * 2 - 1;
        let b = i64::from(seq[(i + lag) % n]) * 2 - 1;
        acc += a * b;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_tabulated_polynomials_are_primitive() {
        for &(degree, octal) in PRIMITIVE_OCTAL {
            let seq =
                m_sequence_from_octal(octal).unwrap_or_else(|e| panic!("degree {degree}: {e}"));
            assert_eq!(seq.len(), (1 << degree) - 1);
        }
    }

    #[test]
    fn m_sequences_are_balanced() {
        for degree in 3..=10 {
            let seq = m_sequence(degree).unwrap();
            assert_eq!(
                seq.count_ones(),
                1 << (degree - 1),
                "degree {degree} not balanced"
            );
        }
    }

    #[test]
    fn autocorrelation_is_two_valued() {
        // Ideal m-sequence autocorrelation: N at lag 0, exactly -1 at every
        // other lag.
        let seq = m_sequence(5).unwrap();
        assert_eq!(periodic_autocorrelation(&seq, 0), 31);
        for lag in 1..31 {
            assert_eq!(periodic_autocorrelation(&seq, lag), -1, "lag {lag}");
        }
    }

    #[test]
    fn autocorrelation_degree_7() {
        let seq = m_sequence(7).unwrap();
        assert_eq!(periodic_autocorrelation(&seq, 0), 127);
        for lag in 1..127 {
            assert_eq!(periodic_autocorrelation(&seq, lag), -1);
        }
    }

    #[test]
    fn unsupported_degree_is_reported() {
        assert!(matches!(
            m_sequence(1),
            Err(CbmaError::CodeUnavailable { .. })
        ));
        assert!(m_sequence(11).is_err());
    }

    #[test]
    fn degree_2_sequence_exists_for_scrambling() {
        let seq = m_sequence(2).unwrap();
        assert_eq!(seq.len(), 3);
        assert_eq!(seq.count_ones(), 2);
    }

    #[test]
    fn non_primitive_polynomial_rejected() {
        // x^4 + x^2 + 1 is not primitive.
        assert!(matches!(
            m_sequence_from_octal(25),
            Err(CbmaError::CodeUnavailable { .. })
        ));
    }
}
