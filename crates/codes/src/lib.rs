//! Pseudo-noise code families for CBMA spreading.
//!
//! Each CBMA tag spreads its data with a tag-specific PN code; the receiver
//! separates concurrent tags by correlating against each code (§II-B,
//! §II-C). The paper evaluates two families (§VII-B.3):
//!
//! * **Gold codes** ([`gold`]) — the classic asynchronous-CDMA family with
//!   bounded three-valued cross-correlation, built from preferred pairs of
//!   m-sequences ([`msequence`], [`lfsr`]),
//! * **2NC codes** ([`twonc`]) — a family with strictly better
//!   orthogonality, which the paper adopts after Fig. 9(b); per the paper's
//!   footnote 2 the chip sequence representing a `0` bit is the negation of
//!   the sequence representing a `1`.
//!
//! [`walsh`] provides the Walsh–Hadamard construction 2NC builds on, and
//! [`props`] quantifies auto/cross-correlation so tests can verify the
//! family properties the paper relies on.
//!
//! # Examples
//!
//! ```
//! use cbma_codes::{CodeFamily, gold::GoldFamily};
//!
//! let family = GoldFamily::new(5)?; // length-31 Gold codes
//! assert_eq!(family.spreading_factor(), 31);
//! let c0 = family.code(0)?;
//! let c1 = family.code(1)?;
//! assert_ne!(c0.bits(), c1.bits());
//! # Ok::<(), cbma_types::CbmaError>(())
//! ```

pub mod family;
pub mod gold;
pub mod kasami;
pub mod lfsr;
pub mod msequence;
pub mod props;
pub mod twonc;
pub mod walsh;

pub use family::{CodeFamily, FamilyKind, PnCode};
pub use gold::GoldFamily;
pub use kasami::KasamiFamily;
pub use props::CorrelationReport;
pub use twonc::TwoNcFamily;
