//! Walsh–Hadamard code construction.
//!
//! Sylvester's recursive construction yields a 2ᵏ × 2ᵏ ±1 matrix whose rows
//! are mutually orthogonal. The 2NC family ([`crate::twonc`]) draws its
//! codes from these rows; this module also serves synchronous-CDMA
//! comparisons in the ablation benches.

use cbma_types::{Bits, CbmaError, Result};

/// Generates the order-`size` Hadamard matrix rows as bit vectors
/// (+1 → 1, −1 → 0).
///
/// # Errors
///
/// Returns [`CbmaError::InvalidConfig`] when `size` is not a power of two
/// or is zero.
pub fn hadamard_rows(size: usize) -> Result<Vec<Bits>> {
    if size == 0 || !size.is_power_of_two() {
        return Err(CbmaError::InvalidConfig(format!(
            "hadamard order must be a power of two, got {size}"
        )));
    }
    // Entry (i, j) of the Sylvester matrix is (−1)^popcount(i & j).
    let rows = (0..size)
        .map(|i| {
            (0..size)
                .map(|j| {
                    let parity = (i & j).count_ones() % 2;
                    if parity == 0 {
                        1u8
                    } else {
                        0u8
                    }
                })
                .collect::<Bits>()
        })
        .collect();
    Ok(rows)
}

/// Bipolar dot product of two equal-length bit rows.
pub fn row_dot(a: &Bits, b: &Bits) -> i64 {
    assert_eq!(a.len(), b.len(), "row dot requires equal lengths");
    (0..a.len())
        .map(|i| (i64::from(a[i]) * 2 - 1) * (i64::from(b[i]) * 2 - 1))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_one_and_two() {
        let h1 = hadamard_rows(1).unwrap();
        assert_eq!(h1.len(), 1);
        assert_eq!(h1[0].to_string(), "1");
        let h2 = hadamard_rows(2).unwrap();
        assert_eq!(h2[0].to_string(), "11");
        assert_eq!(h2[1].to_string(), "10");
    }

    #[test]
    fn rows_are_mutually_orthogonal() {
        for size in [4usize, 8, 16, 32] {
            let rows = hadamard_rows(size).unwrap();
            for i in 0..size {
                for j in 0..size {
                    let expected = if i == j { size as i64 } else { 0 };
                    assert_eq!(
                        row_dot(&rows[i], &rows[j]),
                        expected,
                        "order {size}, rows ({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn non_first_rows_are_balanced() {
        let rows = hadamard_rows(16).unwrap();
        for (i, row) in rows.iter().enumerate().skip(1) {
            assert_eq!(row.count_ones(), 8, "row {i} unbalanced");
        }
    }

    #[test]
    fn rejects_non_power_of_two() {
        assert!(hadamard_rows(0).is_err());
        assert!(hadamard_rows(3).is_err());
        assert!(hadamard_rows(12).is_err());
    }
}
