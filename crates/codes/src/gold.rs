//! Gold code generation (ref. \[8\] of the paper).
//!
//! A Gold family of degree n is built from a *preferred pair* of
//! m-sequences (u, v): the family is {u, v} ∪ {u ⊕ shiftₖ(v) : k}, giving
//! 2ⁿ + 1 codes of length N = 2ⁿ − 1 whose periodic cross-correlations
//! take only the three values {−1, −t(n), t(n) − 2} with
//! t(n) = 2^⌊(n+2)/2⌋ + 1. That bound is what makes asynchronous CDMA with
//! Gold codes workable — and, per Fig. 9(b), still noticeably worse than
//! 2NC at 5 concurrent tags.

use cbma_types::{Bits, CbmaError, Result};

use crate::family::{CodeFamily, PnCode};
use crate::msequence::m_sequence_from_octal;

/// Preferred pairs of primitive polynomials in octal notation, per degree.
const PREFERRED_PAIRS: &[(u32, u64, u64)] = &[(5, 45, 75), (6, 103, 147), (7, 211, 217)];

/// A Gold-code family of a given degree.
#[derive(Debug, Clone)]
pub struct GoldFamily {
    degree: u32,
    u: Bits,
    v: Bits,
}

impl GoldFamily {
    /// Constructs the family for `degree` ∈ {5, 6, 7} (spreading factors
    /// 31, 63, 127).
    ///
    /// # Errors
    ///
    /// Returns [`CbmaError::CodeUnavailable`] for degrees without a
    /// tabulated preferred pair.
    pub fn new(degree: u32) -> Result<GoldFamily> {
        let &(_, a, b) = PREFERRED_PAIRS
            .iter()
            .find(|(d, _, _)| *d == degree)
            .ok_or_else(|| CbmaError::CodeUnavailable {
                family: "gold",
                reason: format!("no preferred pair tabulated for degree {degree}"),
            })?;
        Ok(GoldFamily {
            degree,
            u: m_sequence_from_octal(a)?,
            v: m_sequence_from_octal(b)?,
        })
    }

    /// The family sized for the paper's experiments: degree 5 (length 31),
    /// which supports 33 codes — ample for 10 tags.
    pub fn paper_default() -> GoldFamily {
        GoldFamily::new(5).expect("degree 5 preferred pair is tabulated")
    }

    /// The LFSR degree n.
    #[inline]
    pub fn degree(&self) -> u32 {
        self.degree
    }

    /// The theoretical peak cross-correlation magnitude t(n).
    pub fn t_bound(&self) -> i64 {
        let n = self.degree;
        (1i64 << ((n + 2) / 2)) + 1
    }
}

impl CodeFamily for GoldFamily {
    fn name(&self) -> &'static str {
        "gold"
    }

    fn spreading_factor(&self) -> usize {
        self.u.len()
    }

    fn capacity(&self) -> usize {
        // u, v, and one XOR per relative shift.
        self.u.len() + 2
    }

    fn code(&self, index: usize) -> Result<PnCode> {
        let n = self.u.len();
        if index >= self.capacity() {
            return Err(CbmaError::CodeUnavailable {
                family: "gold",
                reason: format!(
                    "index {index} out of range for degree-{} family (capacity {})",
                    self.degree,
                    self.capacity()
                ),
            });
        }
        let bits = match index {
            0 => self.u.clone(),
            1 => self.v.clone(),
            k => self.u.xor(&self.v.rotate_left((k - 2) % n)),
        };
        Ok(PnCode::new(index, bits))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msequence::periodic_autocorrelation;

    fn periodic_cross(a: &Bits, b: &Bits, lag: usize) -> i64 {
        let n = a.len();
        (0..n)
            .map(|i| {
                let x = i64::from(a[i]) * 2 - 1;
                let y = i64::from(b[(i + lag) % n]) * 2 - 1;
                x * y
            })
            .sum()
    }

    #[test]
    fn family_dimensions() {
        let g5 = GoldFamily::new(5).unwrap();
        assert_eq!(g5.spreading_factor(), 31);
        assert_eq!(g5.capacity(), 33);
        assert_eq!(g5.t_bound(), 9);
        let g6 = GoldFamily::new(6).unwrap();
        assert_eq!(g6.spreading_factor(), 63);
        assert_eq!(g6.t_bound(), 17);
        let g7 = GoldFamily::new(7).unwrap();
        assert_eq!(g7.spreading_factor(), 127);
        assert_eq!(g7.t_bound(), 17);
    }

    #[test]
    fn unsupported_degree_rejected() {
        assert!(matches!(
            GoldFamily::new(4),
            Err(CbmaError::CodeUnavailable { .. })
        ));
    }

    #[test]
    fn cross_correlation_is_three_valued_degree_5() {
        // The defining Gold property: every pairwise periodic
        // cross-correlation takes a value in {-1, -t, t-2}.
        let family = GoldFamily::new(5).unwrap();
        let t = family.t_bound();
        let allowed = [-1, -t, t - 2];
        let codes: Vec<Bits> = (0..10)
            .map(|i| family.code(i).unwrap().bits().clone())
            .collect();
        for i in 0..codes.len() {
            for j in i + 1..codes.len() {
                for lag in 0..31 {
                    let c = periodic_cross(&codes[i], &codes[j], lag);
                    assert!(
                        allowed.contains(&c),
                        "codes ({i},{j}) lag {lag}: cross-correlation {c} not in {allowed:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn cross_correlation_is_three_valued_degree_6() {
        let family = GoldFamily::new(6).unwrap();
        let t = family.t_bound();
        let allowed = [-1, -t, t - 2];
        let codes: Vec<Bits> = (0..6)
            .map(|i| family.code(i).unwrap().bits().clone())
            .collect();
        for i in 0..codes.len() {
            for j in i + 1..codes.len() {
                for lag in 0..63 {
                    let c = periodic_cross(&codes[i], &codes[j], lag);
                    assert!(allowed.contains(&c), "({i},{j}) lag {lag}: {c}");
                }
            }
        }
    }

    #[test]
    fn gold_autocorrelation_sidelobes_bounded() {
        let family = GoldFamily::new(5).unwrap();
        let t = family.t_bound();
        for idx in 2..8 {
            let code = family.code(idx).unwrap();
            for lag in 1..31 {
                let a = periodic_autocorrelation(code.bits(), lag);
                assert!(
                    a.abs() <= t,
                    "code {idx} lag {lag}: autocorrelation {a} exceeds t={t}"
                );
            }
        }
    }

    #[test]
    fn all_codes_are_distinct() {
        let family = GoldFamily::new(5).unwrap();
        let codes = family.codes(family.capacity()).unwrap();
        for i in 0..codes.len() {
            for j in i + 1..codes.len() {
                assert_ne!(codes[i].bits(), codes[j].bits(), "codes {i},{j} equal");
            }
        }
    }

    #[test]
    fn out_of_range_index_rejected() {
        let family = GoldFamily::new(5).unwrap();
        assert!(family.code(33).is_err());
        assert!(family.code(32).is_ok());
    }

    #[test]
    fn paper_default_is_degree_5() {
        assert_eq!(GoldFamily::paper_default().degree(), 5);
    }
}
