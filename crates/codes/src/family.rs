//! The code-family abstraction shared by Gold and 2NC codes.
//!
//! A [`PnCode`] is one tag's spreading sequence together with its cached
//! bipolar forms for bit `1` and bit `0`. Per the paper's footnote 2, the
//! chip sequence representing `0` is the negation of the one representing
//! `1` for *both* families (the authors modified 2NC the same way).
//!
//! [`CodeFamily`] is the object-safe interface the tag encoder, the
//! receiver's user detector and the simulation engine all program against.

use cbma_types::{Bits, Result};

/// One assigned PN spreading code.
#[derive(Debug, Clone, PartialEq)]
pub struct PnCode {
    index: usize,
    bits: Bits,
    bipolar_one: Vec<f64>,
    bipolar_zero: Vec<f64>,
}

impl PnCode {
    /// Wraps a chip sequence as an assigned code.
    pub fn new(index: usize, bits: Bits) -> PnCode {
        let bipolar_one = bits.to_bipolar();
        let bipolar_zero = bipolar_one.iter().map(|c| -c).collect();
        PnCode {
            index,
            bits,
            bipolar_one,
            bipolar_zero,
        }
    }

    /// The code's index within its family (doubles as the tag/user id).
    #[inline]
    pub fn index(&self) -> usize {
        self.index
    }

    /// The chip sequence for a `1` bit.
    #[inline]
    pub fn bits(&self) -> &Bits {
        &self.bits
    }

    /// Number of chips per data bit (the spreading factor).
    #[inline]
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Whether the code is empty (never true for family-produced codes).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// The chip sequence transmitted for `bit` (complement signalling).
    pub fn chips_for(&self, bit: u8) -> Bits {
        debug_assert!(bit <= 1);
        if bit == 1 {
            self.bits.clone()
        } else {
            self.bits.complement()
        }
    }

    /// Bipolar (±1) reference for a `1` bit — the correlation template.
    #[inline]
    pub fn bipolar_one(&self) -> &[f64] {
        &self.bipolar_one
    }

    /// Bipolar reference for a `0` bit (the negation of
    /// [`bipolar_one`](PnCode::bipolar_one)).
    #[inline]
    pub fn bipolar_zero(&self) -> &[f64] {
        &self.bipolar_zero
    }
}

/// A family of PN codes assignable to tags.
///
/// Implementations are value types constructed up front; `code` is
/// infallible for indices below [`capacity`](CodeFamily::capacity).
pub trait CodeFamily: std::fmt::Debug {
    /// Family name for reports, e.g. `"gold"` or `"2nc"`.
    fn name(&self) -> &'static str;

    /// Chips per data bit.
    fn spreading_factor(&self) -> usize;

    /// Number of distinct codes the family can assign.
    fn capacity(&self) -> usize;

    /// Returns the code at `index`.
    ///
    /// # Errors
    ///
    /// Returns [`cbma_types::CbmaError::CodeUnavailable`] when `index` is
    /// at or beyond [`capacity`](CodeFamily::capacity).
    fn code(&self, index: usize) -> Result<PnCode>;

    /// Returns the first `n` codes of the family.
    ///
    /// # Errors
    ///
    /// Propagates the first unavailable index.
    fn codes(&self, n: usize) -> Result<Vec<PnCode>> {
        (0..n).map(|i| self.code(i)).collect()
    }
}

/// Configuration selector for the two families the paper evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FamilyKind {
    /// Gold codes of the given LFSR degree (spreading factor 2ⁿ − 1).
    Gold {
        /// LFSR degree n; supported values are 5, 6 and 7.
        degree: u32,
    },
    /// 2NC codes dimensioned for the given number of users.
    TwoNc {
        /// Number of concurrent users the family must support.
        users: usize,
    },
    /// Small-set Kasami codes of the given even LFSR degree (spreading
    /// factor 2ⁿ − 1) — a reproduction extension with the tightest
    /// cross-correlation bound of the three families.
    Kasami {
        /// Even LFSR degree n; supported values are 6, 8 and 10.
        degree: u32,
    },
}

impl FamilyKind {
    /// Builds the concrete family.
    ///
    /// # Errors
    ///
    /// Propagates construction errors from the family (unsupported degree,
    /// zero users, …).
    pub fn build(self) -> Result<Box<dyn CodeFamily + Send + Sync>> {
        match self {
            FamilyKind::Gold { degree } => Ok(Box::new(crate::gold::GoldFamily::new(degree)?)),
            FamilyKind::TwoNc { users } => Ok(Box::new(crate::twonc::TwoNcFamily::new(users)?)),
            FamilyKind::Kasami { degree } => {
                Ok(Box::new(crate::kasami::KasamiFamily::new(degree)?))
            }
        }
    }
}

impl std::fmt::Display for FamilyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FamilyKind::Gold { degree } => write!(f, "gold(n={degree})"),
            FamilyKind::TwoNc { users } => write!(f, "2nc(users={users})"),
            FamilyKind::Kasami { degree } => write!(f, "kasami(n={degree})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chips_for_zero_is_complement() {
        let code = PnCode::new(0, Bits::from_str("01001").unwrap());
        assert_eq!(code.chips_for(1).to_string(), "01001");
        assert_eq!(code.chips_for(0).to_string(), "10110");
        assert_eq!(code.len(), 5);
        assert!(!code.is_empty());
    }

    #[test]
    fn bipolar_zero_is_negated_one() {
        let code = PnCode::new(3, Bits::from_str("110").unwrap());
        assert_eq!(code.bipolar_one(), &[1.0, 1.0, -1.0]);
        assert_eq!(code.bipolar_zero(), &[-1.0, -1.0, 1.0]);
        assert_eq!(code.index(), 3);
    }

    #[test]
    fn family_kind_builds_both_families() {
        let gold = FamilyKind::Gold { degree: 5 }.build().unwrap();
        assert_eq!(gold.name(), "gold");
        assert_eq!(gold.spreading_factor(), 31);
        let twonc = FamilyKind::TwoNc { users: 5 }.build().unwrap();
        assert_eq!(twonc.name(), "2nc");
        assert!(twonc.capacity() >= 5);
    }

    #[test]
    fn family_kind_display() {
        assert_eq!(FamilyKind::Gold { degree: 6 }.to_string(), "gold(n=6)");
        assert_eq!(FamilyKind::TwoNc { users: 10 }.to_string(), "2nc(users=10)");
        assert_eq!(FamilyKind::Kasami { degree: 6 }.to_string(), "kasami(n=6)");
    }

    #[test]
    fn family_kind_builds_kasami() {
        let kasami = FamilyKind::Kasami { degree: 6 }.build().unwrap();
        assert_eq!(kasami.name(), "kasami");
        assert_eq!(kasami.spreading_factor(), 63);
        assert_eq!(kasami.capacity(), 8);
    }

    #[test]
    fn codes_helper_returns_distinct_codes() {
        let family = FamilyKind::Gold { degree: 5 }.build().unwrap();
        let codes = family.codes(8).unwrap();
        assert_eq!(codes.len(), 8);
        for i in 0..codes.len() {
            for j in i + 1..codes.len() {
                assert_ne!(
                    codes[i].bits(),
                    codes[j].bits(),
                    "codes {i} and {j} collide"
                );
            }
        }
    }
}
