//! Linear-feedback shift registers.
//!
//! The deterministic generator behind every PN sequence (§II-C: a PN code
//! "appears randomly but can be reproduced in a deterministic manner by
//! intended receivers"). [`Lfsr`] is a Fibonacci-configuration register
//! parameterized by its feedback polynomial; with a primitive polynomial it
//! produces a maximal-length sequence of period 2ⁿ − 1.

use cbma_types::{CbmaError, Result};

/// A Fibonacci LFSR over GF(2).
///
/// The feedback polynomial is given as a bitmask over the exponents
/// 0..=degree, e.g. x⁵ + x² + 1 is `0b10_0101` (bit 5, bit 2, bit 0).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lfsr {
    degree: u32,
    /// Right-shift amounts contributing to the feedback bit.
    shifts: Vec<u32>,
    state: u64,
    initial_state: u64,
}

impl Lfsr {
    /// Creates an LFSR from a feedback polynomial bitmask and a non-zero
    /// initial state.
    ///
    /// # Errors
    ///
    /// Returns [`CbmaError::InvalidConfig`] when the polynomial lacks the
    /// x⁰ or xⁿ term, the degree is outside 2..=24, or the state is zero
    /// or does not fit in `degree` bits.
    pub fn new(polynomial: u64, state: u64) -> Result<Lfsr> {
        let degree = 63 - polynomial.leading_zeros();
        if !(2..=24).contains(&degree) {
            return Err(CbmaError::InvalidConfig(format!(
                "lfsr degree must be in 2..=24, polynomial implies {degree}"
            )));
        }
        if polynomial & 1 == 0 {
            return Err(CbmaError::InvalidConfig(
                "feedback polynomial must contain the constant term".into(),
            ));
        }
        if state == 0 || state >> degree != 0 {
            return Err(CbmaError::InvalidConfig(format!(
                "state must be non-zero and fit in {degree} bits"
            )));
        }
        // Feedback = XOR of register bits tapped at (degree - exponent) for
        // every non-constant polynomial term (standard Fibonacci taps).
        let shifts = (1..=degree)
            .filter(|&e| (polynomial >> e) & 1 == 1)
            .map(|e| degree - e)
            .collect();
        Ok(Lfsr {
            degree,
            shifts,
            state,
            initial_state: state,
        })
    }

    /// Creates an LFSR from the polynomial's octal notation (the form used
    /// in spreading-code literature, e.g. Gold's preferred pair [45, 75]
    /// for degree 5).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Lfsr::new`].
    pub fn from_octal(octal: u64, state: u64) -> Result<Lfsr> {
        let mut value = 0u64;
        let mut digits = Vec::new();
        let mut o = octal;
        if o == 0 {
            return Err(CbmaError::InvalidConfig("octal polynomial is zero".into()));
        }
        while o > 0 {
            digits.push(o % 10);
            o /= 10;
        }
        for &d in digits.iter().rev() {
            if d > 7 {
                return Err(CbmaError::InvalidConfig(format!(
                    "{octal} is not valid octal notation"
                )));
            }
            value = (value << 3) | d;
        }
        Lfsr::new(value, state)
    }

    /// The register length n.
    #[inline]
    pub fn degree(&self) -> u32 {
        self.degree
    }

    /// Period of a maximal-length sequence for this degree: 2ⁿ − 1.
    #[inline]
    pub fn max_period(&self) -> usize {
        (1usize << self.degree) - 1
    }

    /// Advances one step and returns the output bit.
    pub fn step(&mut self) -> u8 {
        let feedback = self
            .shifts
            .iter()
            .fold(0u64, |acc, &s| acc ^ (self.state >> s))
            & 1;
        let out = (self.state & 1) as u8;
        self.state = (self.state >> 1) | (feedback << (self.degree - 1));
        out
    }

    /// Produces the next `n` output bits.
    pub fn take_bits(&mut self, n: usize) -> Vec<u8> {
        (0..n).map(|_| self.step()).collect()
    }

    /// Resets to the initial state.
    pub fn reset(&mut self) {
        self.state = self.initial_state;
    }

    /// Measures the actual period by stepping until the state recurs.
    /// Useful for validating that a polynomial is primitive.
    pub fn measure_period(&self) -> usize {
        let mut probe = self.clone();
        probe.reset();
        let start = probe.state;
        let mut count = 0usize;
        loop {
            probe.step();
            count += 1;
            if probe.state == start || count > probe.max_period() + 1 {
                return count;
            }
        }
    }
}

impl Iterator for Lfsr {
    type Item = u8;
    fn next(&mut self) -> Option<u8> {
        Some(self.step())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_degree_5_reaches_full_period() {
        // x^5 + x^2 + 1 (octal 45) is primitive: period 31.
        let lfsr = Lfsr::from_octal(45, 1).unwrap();
        assert_eq!(lfsr.degree(), 5);
        assert_eq!(lfsr.measure_period(), 31);
    }

    #[test]
    fn primitive_degree_6_and_7() {
        assert_eq!(Lfsr::from_octal(103, 1).unwrap().measure_period(), 63);
        assert_eq!(Lfsr::from_octal(211, 1).unwrap().measure_period(), 127);
    }

    #[test]
    fn non_primitive_polynomial_has_short_period() {
        // x^4 + x^2 + 1 = (x^2+x+1)^2 is not primitive.
        let lfsr = Lfsr::new(0b1_0101, 1).unwrap();
        assert!(lfsr.measure_period() < lfsr.max_period());
    }

    #[test]
    fn sequence_repeats_with_period() {
        let mut lfsr = Lfsr::from_octal(45, 0b1_0110).unwrap();
        let first: Vec<u8> = lfsr.take_bits(31);
        let second: Vec<u8> = lfsr.take_bits(31);
        assert_eq!(first, second);
    }

    #[test]
    fn different_seeds_give_shifted_sequences() {
        let a = Lfsr::from_octal(45, 1)
            .unwrap()
            .take(62)
            .collect::<Vec<_>>();
        let b = Lfsr::from_octal(45, 7)
            .unwrap()
            .take(31)
            .collect::<Vec<_>>();
        // b must appear as a cyclic shift of a's period.
        let found = (0..31).any(|s| (0..31).all(|i| b[i] == a[s + i]));
        assert!(found, "seeded sequence is not a cyclic shift");
    }

    #[test]
    fn m_sequence_is_balanced() {
        // An m-sequence of period 2^n - 1 has 2^(n-1) ones.
        let mut lfsr = Lfsr::from_octal(45, 1).unwrap();
        let bits = lfsr.take_bits(31);
        assert_eq!(bits.iter().filter(|&&b| b == 1).count(), 16);
    }

    #[test]
    fn reset_restores_stream() {
        let mut lfsr = Lfsr::from_octal(103, 5).unwrap();
        let a = lfsr.take_bits(20);
        lfsr.reset();
        let b = lfsr.take_bits(20);
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_bad_configs() {
        assert!(Lfsr::new(0b100, 1).is_err()); // no constant term
        assert!(Lfsr::new(0b101, 0).is_err()); // zero state
        assert!(Lfsr::new(0b101, 0b100).is_err()); // state too wide
        assert!(Lfsr::new(0b11, 1).is_err()); // degree 1
        assert!(Lfsr::from_octal(48, 1).is_err()); // digit 8 invalid
        assert!(Lfsr::from_octal(0, 1).is_err());
    }

    #[test]
    fn octal_matches_binary_form() {
        // 45 octal = 100101 binary.
        let a = Lfsr::from_octal(45, 1).unwrap();
        let b = Lfsr::new(0b10_0101, 1).unwrap();
        assert_eq!(a, b);
    }
}
