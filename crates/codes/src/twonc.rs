//! 2NC codes (ref. \[9\] of the paper, as modified by the authors).
//!
//! The paper adopts "2NC" codes from *Turbocharging Ambient Backscatter
//! Communication* and modifies them so that "the chip representing 0 is the
//! negation of that representing 1" (footnote 2). The evaluation relies on
//! exactly one property of the family: **strictly better orthogonality
//! than Gold codes**, which is what makes 2NC the winner in Fig. 9(b).
//!
//! We realize the family as rows of the order-2N Walsh–Hadamard
//! construction (skipping the all-ones row), XOR-scrambled by a common
//! m-sequence overlay: for N users the spreading factor is the smallest
//! power of two ≥ 2N, every pair of codes is exactly orthogonal when
//! chip-aligned (the shared overlay cancels in the product), and
//! complement signalling carries bit 0. The overlay matters because raw
//! Walsh rows are cyclic shifts/complements of one another, so an
//! asynchronous tag would alias into a *different* user's code — the
//! scrambling breaks that shift structure exactly the way channelization-
//! plus-scrambling does in deployed CDMA systems. DESIGN.md documents this
//! interpretation and why it preserves the paper's comparison.

use cbma_types::{Bits, CbmaError, Result};

use crate::family::{CodeFamily, PnCode};
use crate::msequence::m_sequence;
use crate::walsh::hadamard_rows;

/// Builds the scrambling overlay for a given code length (power of two):
/// the degree-n m-sequence (length 2ⁿ − 1) extended by one leading `1`.
fn scrambling_overlay(length: usize) -> Result<Bits> {
    debug_assert!(length.is_power_of_two() && length >= 16);
    let degree = length.trailing_zeros();
    let seq = m_sequence(degree)?;
    let mut overlay = Bits::with_capacity(length);
    overlay.push(1);
    overlay.extend_bits(&seq);
    Ok(overlay)
}

/// The 2NC code family dimensioned for a target user count.
#[derive(Debug, Clone)]
pub struct TwoNcFamily {
    users: usize,
    /// Scrambled codes, ordered most-balanced first. Balance matters for
    /// OOK: only the `1` chips radiate, so a code with few ones carries
    /// little correlation energy for bit 1 (and vice versa); assigning the
    /// most balanced codes first equalizes per-user decode margins.
    codes: Vec<Bits>,
}

impl TwoNcFamily {
    /// Builds the family for up to `users` concurrent tags.
    ///
    /// The spreading factor is the smallest power of two that is at least
    /// `2 × users` (the "2N" in the name), with a floor of 16 — shorter
    /// scrambled codes have too few chips per bit for reliable OOK
    /// correlation and grossly imbalanced rows.
    ///
    /// # Errors
    ///
    /// Returns [`CbmaError::InvalidConfig`] when `users` is zero.
    pub fn new(users: usize) -> Result<TwoNcFamily> {
        if users == 0 {
            return Err(CbmaError::InvalidConfig(
                "2nc family needs at least one user".into(),
            ));
        }
        let length = (2 * users).next_power_of_two().max(16);
        let rows = hadamard_rows(length)?;
        let overlay = scrambling_overlay(length)?;
        // Row 0 (all ones) is unusable for OOK complement signalling; the
        // rest are scrambled, then *ordered* so that early assignments are
        // balanced AND mutually well-separated under cyclic shifts
        // (asynchronous tags see shifted cross-correlations, so a pair
        // with a high shifted cross aliases into each other).
        let mut pool: Vec<Bits> = rows[1..].iter().map(|r| r.xor(&overlay)).collect();
        pool.sort_by_key(|c| {
            let imbalance = (2 * c.count_ones() as i64 - length as i64).unsigned_abs();
            (imbalance, c.to_string())
        });
        let max_cross = |a: &Bits, b: &Bits| -> i64 {
            let ba = a.to_bipolar();
            let bb = b.to_bipolar();
            (0..length)
                .map(|lag| {
                    (0..length)
                        .map(|k| (ba[k] * bb[(k + lag) % length]) as i64)
                        .sum::<i64>()
                        .abs()
                })
                .max()
                .unwrap_or(0)
        };
        let mut codes: Vec<Bits> = Vec::with_capacity(pool.len());
        // Greedy: tighten admission to a shifted-cross bound of L/4,
        // relaxing in L/8 steps until the pool drains (capacity must stay
        // at 2N−1; the ordering just puts the good codes first).
        let mut bound = (length / 4) as i64;
        while !pool.is_empty() {
            let mut admitted_any = false;
            let mut i = 0;
            while i < pool.len() {
                if codes.iter().all(|c| max_cross(c, &pool[i]) <= bound) {
                    codes.push(pool.remove(i));
                    admitted_any = true;
                } else {
                    i += 1;
                }
            }
            if !admitted_any {
                bound += (length / 8).max(1) as i64;
            }
        }
        Ok(TwoNcFamily { users, codes })
    }

    /// The family sized for the paper's 10-tag testbed.
    pub fn paper_default() -> TwoNcFamily {
        TwoNcFamily::new(10).expect("10 users is a valid 2nc configuration")
    }

    /// The user count the family was dimensioned for.
    #[inline]
    pub fn users(&self) -> usize {
        self.users
    }
}

impl CodeFamily for TwoNcFamily {
    fn name(&self) -> &'static str {
        "2nc"
    }

    fn spreading_factor(&self) -> usize {
        self.codes[0].len()
    }

    fn capacity(&self) -> usize {
        self.codes.len()
    }

    fn code(&self, index: usize) -> Result<PnCode> {
        if index >= self.capacity() {
            return Err(CbmaError::CodeUnavailable {
                family: "2nc",
                reason: format!("index {index} out of range (capacity {})", self.capacity()),
            });
        }
        Ok(PnCode::new(index, self.codes[index].clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::walsh::row_dot;

    #[test]
    fn sizing_rule() {
        assert_eq!(TwoNcFamily::new(2).unwrap().spreading_factor(), 16);
        assert_eq!(TwoNcFamily::new(5).unwrap().spreading_factor(), 16);
        assert_eq!(TwoNcFamily::new(10).unwrap().spreading_factor(), 32);
        assert_eq!(TwoNcFamily::new(1).unwrap().spreading_factor(), 16);
    }

    #[test]
    fn codes_are_exactly_orthogonal_when_aligned() {
        let family = TwoNcFamily::new(10).unwrap();
        let codes = family.codes(10).unwrap();
        for i in 0..codes.len() {
            for j in 0..codes.len() {
                let dot = row_dot(codes[i].bits(), codes[j].bits());
                if i == j {
                    assert_eq!(dot, family.spreading_factor() as i64);
                } else {
                    assert_eq!(dot, 0, "codes ({i},{j}) not orthogonal");
                }
            }
        }
    }

    #[test]
    fn codes_are_near_balanced() {
        // The scrambling overlay perturbs the exact Walsh balance; the
        // decoder tolerates imbalance (its gain scale and sign test use
        // the actual chip sums), but a grossly one-sided code would hurt
        // OOK energy detection, so require ones within L/4 of half.
        let family = TwoNcFamily::new(8).unwrap();
        let l = family.spreading_factor() as i64;
        for code in family.codes(8).unwrap() {
            let ones = code.bits().count_ones() as i64;
            assert!(
                (ones - l / 2).abs() <= l / 4,
                "code {} ones={ones} of {l}",
                code.index()
            );
        }
    }

    #[test]
    fn codes_are_not_cyclic_shifts_of_each_other() {
        // The scrambling overlay must break the raw-Walsh shift aliasing:
        // no code may equal a cyclic shift of another code or of its
        // complement (that aliasing produced phantom users under
        // asynchronous arrival).
        let family = TwoNcFamily::new(5).unwrap();
        let codes = family.codes(5).unwrap();
        for i in 0..codes.len() {
            for j in 0..codes.len() {
                if i == j {
                    continue;
                }
                for shift in 0..family.spreading_factor() {
                    let rotated = codes[j].bits().rotate_left(shift);
                    assert_ne!(codes[i].bits(), &rotated, "code {i} = code {j} <<< {shift}");
                    assert_ne!(
                        codes[i].bits(),
                        &rotated.complement(),
                        "code {i} = ~code {j} <<< {shift}"
                    );
                }
            }
        }
    }

    #[test]
    fn capacity_and_bounds() {
        let family = TwoNcFamily::new(5).unwrap();
        assert_eq!(family.capacity(), 15);
        assert!(family.code(14).is_ok());
        assert!(matches!(
            family.code(15),
            Err(CbmaError::CodeUnavailable { .. })
        ));
    }

    #[test]
    fn zero_users_rejected() {
        assert!(matches!(
            TwoNcFamily::new(0),
            Err(CbmaError::InvalidConfig(_))
        ));
    }

    #[test]
    fn better_aligned_orthogonality_than_gold() {
        // The property Fig. 9(b) rests on: at chip alignment the 2NC
        // cross-correlation (0) is strictly below Gold's worst case (t=9
        // for degree 5).
        let twonc = TwoNcFamily::new(5).unwrap();
        let codes = twonc.codes(5).unwrap();
        let worst = codes
            .iter()
            .enumerate()
            .flat_map(|(i, a)| {
                codes
                    .iter()
                    .enumerate()
                    .filter(move |(j, _)| *j != i)
                    .map(move |(_, b)| row_dot(a.bits(), b.bits()).abs())
            })
            .max()
            .unwrap();
        assert_eq!(worst, 0);
    }

    #[test]
    fn paper_default_supports_ten_tags() {
        let family = TwoNcFamily::paper_default();
        assert_eq!(family.users(), 10);
        assert!(family.capacity() >= 10);
    }
}
