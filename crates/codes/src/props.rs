//! Correlation-property analysis of code sets.
//!
//! Quantifies the auto- and cross-correlation behaviour that determines a
//! family's multi-access interference (§II-C), so tests and the Fig. 9(b)
//! bench can compare Gold and 2NC on the metric that actually drives the
//! decode error rate.

use crate::family::PnCode;

/// Summary statistics of a set of spreading codes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorrelationReport {
    /// Number of codes analyzed.
    pub codes: usize,
    /// Spreading factor (chips per bit).
    pub length: usize,
    /// Largest |periodic cross-correlation| over all pairs and lags,
    /// normalized by the code length (0 = orthogonal at all lags).
    pub max_cross: f64,
    /// Largest |periodic autocorrelation sidelobe| over all codes and
    /// non-zero lags, normalized by code length.
    pub max_auto_sidelobe: f64,
    /// Mean |cross-correlation| over all pairs and lags, normalized.
    pub mean_cross: f64,
    /// Largest |aligned (lag-0) cross-correlation| over all pairs,
    /// normalized — the figure of merit for chip-synchronous operation.
    pub max_aligned_cross: f64,
}

impl CorrelationReport {
    /// Analyzes a set of codes. All codes must share one length.
    ///
    /// # Panics
    ///
    /// Panics if `codes` is empty or lengths differ.
    pub fn analyze(codes: &[PnCode]) -> CorrelationReport {
        assert!(!codes.is_empty(), "need at least one code to analyze");
        let length = codes[0].len();
        assert!(
            codes.iter().all(|c| c.len() == length),
            "all codes must share one length"
        );
        let n = length as f64;
        let bipolar: Vec<&[f64]> = codes.iter().map(|c| c.bipolar_one()).collect();

        let periodic = |a: &[f64], b: &[f64], lag: usize| -> f64 {
            (0..length).map(|i| a[i] * b[(i + lag) % length]).sum()
        };

        let mut max_cross = 0.0f64;
        let mut max_aligned = 0.0f64;
        let mut cross_sum = 0.0f64;
        let mut cross_count = 0usize;
        for i in 0..bipolar.len() {
            for j in i + 1..bipolar.len() {
                for lag in 0..length {
                    let c = periodic(bipolar[i], bipolar[j], lag).abs() / n;
                    max_cross = max_cross.max(c);
                    cross_sum += c;
                    cross_count += 1;
                    if lag == 0 {
                        max_aligned = max_aligned.max(c);
                    }
                }
            }
        }

        let mut max_auto = 0.0f64;
        for b in &bipolar {
            for lag in 1..length {
                max_auto = max_auto.max(periodic(b, b, lag).abs() / n);
            }
        }

        CorrelationReport {
            codes: codes.len(),
            length,
            max_cross,
            max_auto_sidelobe: max_auto,
            mean_cross: if cross_count > 0 {
                cross_sum / cross_count as f64
            } else {
                0.0
            },
            max_aligned_cross: max_aligned,
        }
    }
}

impl std::fmt::Display for CorrelationReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} codes × {} chips: max cross {:.3}, aligned cross {:.3}, auto sidelobe {:.3}, mean cross {:.3}",
            self.codes,
            self.length,
            self.max_cross,
            self.max_aligned_cross,
            self.max_auto_sidelobe,
            self.mean_cross
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::family::CodeFamily;
    use crate::gold::GoldFamily;
    use crate::twonc::TwoNcFamily;

    #[test]
    fn gold_report_matches_theory() {
        let family = GoldFamily::new(5).unwrap();
        let codes = family.codes(10).unwrap();
        let report = CorrelationReport::analyze(&codes);
        assert_eq!(report.codes, 10);
        assert_eq!(report.length, 31);
        // Theory: max |cross| = t(n)/N = 9/31.
        assert!((report.max_cross - 9.0 / 31.0).abs() < 1e-9);
        assert!(report.max_auto_sidelobe <= 9.0 / 31.0 + 1e-9);
    }

    #[test]
    fn twonc_aligned_cross_is_zero() {
        let family = TwoNcFamily::new(5).unwrap();
        let report = CorrelationReport::analyze(&family.codes(5).unwrap());
        assert_eq!(report.max_aligned_cross, 0.0);
    }

    #[test]
    fn twonc_beats_gold_on_aligned_cross() {
        // The quantitative heart of Fig. 9(b).
        let gold = CorrelationReport::analyze(&GoldFamily::new(5).unwrap().codes(5).unwrap());
        let twonc = CorrelationReport::analyze(&TwoNcFamily::new(5).unwrap().codes(5).unwrap());
        assert!(twonc.max_aligned_cross < gold.max_aligned_cross);
    }

    #[test]
    fn single_code_has_zero_cross() {
        let family = GoldFamily::new(5).unwrap();
        let report = CorrelationReport::analyze(&family.codes(1).unwrap());
        assert_eq!(report.max_cross, 0.0);
        assert_eq!(report.mean_cross, 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one code")]
    fn empty_set_panics() {
        CorrelationReport::analyze(&[]);
    }

    #[test]
    fn display_is_informative() {
        let family = GoldFamily::new(5).unwrap();
        let report = CorrelationReport::analyze(&family.codes(3).unwrap());
        let s = report.to_string();
        assert!(s.contains("3 codes"));
        assert!(s.contains("31 chips"));
    }
}
