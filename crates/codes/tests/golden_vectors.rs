//! Golden-vector conformance tests for the spreading-code generators.
//!
//! The chip sequences below were generated once from this crate's own
//! LFSR implementations and then **hard-coded**: any future change to the
//! polynomial tables, the seed conventions, the Gold/Kasami combination
//! rules or the `Bits` ordering will break these tests loudly instead of
//! silently shifting every downstream experiment (code assignments are
//! part of the wire contract between tag and receiver).
//!
//! Alongside the exact vectors, the published PN-sequence invariants are
//! asserted from first principles: Golomb's balance and run-length
//! postulates, the two-valued autocorrelation of m-sequences, and the
//! t(n)/s(n) cross-correlation bounds of Gold and small-set Kasami
//! families.

use cbma_codes::msequence::{m_sequence, periodic_autocorrelation};
use cbma_codes::{CodeFamily, GoldFamily, KasamiFamily};
use cbma_types::Bits;

/// Golden degree-3 m-sequence (octal 13).
const MSEQ3: &str = "1001110";
/// Golden degree-4 m-sequence (octal 23).
const MSEQ4: &str = "100011110101100";
/// Golden degree-5 m-sequence (octal 45).
const MSEQ5: &str = "1000010101110110001111100110100";
/// Golden degree-6 m-sequence (octal 103).
const MSEQ6: &str =
    "100000111111010101100110111011010010011100010111100101000110000";

/// Golden degree-5 Gold codes (preferred pair 45/75): u, v, u⊕v, u⊕T(v).
const GOLD5: [&str; 4] = [
    "1000010101110110001111100110100",
    "1000010110101000111011111001001",
    "0000000011011110110100011111101",
    "1000111000100111111000010100111",
];

/// Golden degree-6 small-set Kasami codes: u, u⊕w, u⊕T(w).
const KASAMI6: [&str; 3] = [
    "100000111111010101100110111011010010011100010111100101000110000",
    "011001100011111011110001110000110111101110101110111001101000010",
    "010010000110001001001000101100011001111001100101011100011010101",
];

fn chips(bits: &Bits) -> String {
    bits.iter().map(|b| char::from(b'0' + b)).collect()
}

/// Cyclic run-length histogram: lengths of maximal same-value runs.
fn cyclic_runs(bits: &Bits) -> Vec<usize> {
    let v: Vec<u8> = bits.iter().collect();
    let n = v.len();
    // Rotate so the sequence starts at a run boundary.
    let start = (0..n)
        .find(|&i| v[i] != v[(i + n - 1) % n])
        .expect("sequence is not constant");
    let mut runs = Vec::new();
    let mut len = 0usize;
    for i in 0..n {
        let cur = v[(start + i) % n];
        let prev = v[(start + i + n - 1) % n];
        if i > 0 && cur != prev {
            runs.push(len);
            len = 0;
        }
        len += 1;
    }
    runs.push(len);
    runs
}

fn periodic_cross(a: &Bits, b: &Bits, lag: usize) -> i64 {
    let n = a.len();
    (0..n)
        .map(|i| {
            let x = i64::from(a.get(i).unwrap()) * 2 - 1;
            let y = i64::from(b.get((i + lag) % n).unwrap()) * 2 - 1;
            x * y
        })
        .sum()
}

#[test]
fn msequence_golden_chips() {
    assert_eq!(chips(&m_sequence(3).unwrap()), MSEQ3);
    assert_eq!(chips(&m_sequence(4).unwrap()), MSEQ4);
    assert_eq!(chips(&m_sequence(5).unwrap()), MSEQ5);
    assert_eq!(chips(&m_sequence(6).unwrap()), MSEQ6);
}

#[test]
fn msequence_lengths_are_full_period() {
    for degree in 3..=8u32 {
        let seq = m_sequence(degree).unwrap();
        assert_eq!(
            seq.len(),
            (1 << degree) - 1,
            "degree-{degree} m-sequence must have period 2^n − 1"
        );
    }
}

#[test]
fn msequence_balance_postulate() {
    // Golomb R-1: 2^(n−1) ones, 2^(n−1) − 1 zeros.
    for degree in 3..=8u32 {
        let seq = m_sequence(degree).unwrap();
        let ones = seq.count_ones();
        assert_eq!(
            ones,
            1 << (degree - 1),
            "degree-{degree}: ones must outnumber zeros by exactly one"
        );
        assert_eq!(seq.len() - ones, (1 << (degree - 1)) - 1);
    }
}

#[test]
fn msequence_run_length_postulate() {
    // Golomb R-2: 2^(n−1) runs total; half of length 1, a quarter of
    // length 2, …, plus one run of n ones and one of n−1 zeros.
    for degree in 3..=7u32 {
        let seq = m_sequence(degree).unwrap();
        let runs = cyclic_runs(&seq);
        let n = degree as usize;
        assert_eq!(
            runs.len(),
            1 << (degree - 1),
            "degree-{degree}: total run count"
        );
        for k in 1..=(n - 2) {
            let expected = 1usize << (n - 1 - k);
            let got = runs.iter().filter(|&&r| r == k).count();
            assert_eq!(got, expected, "degree-{degree}: runs of length {k}");
        }
        assert_eq!(runs.iter().filter(|&&r| r == n).count(), 1);
        assert_eq!(runs.iter().filter(|&&r| r == n - 1).count(), 1);
        assert_eq!(*runs.iter().max().unwrap(), n);
    }
}

#[test]
fn msequence_autocorrelation_is_two_valued() {
    // Golomb R-3: periodic autocorrelation is N at lag 0 and −1 at every
    // other lag (the sharpest peak a binary sequence can have).
    for degree in [3u32, 5, 7] {
        let seq = m_sequence(degree).unwrap();
        let n = seq.len();
        assert_eq!(periodic_autocorrelation(&seq, 0), n as i64);
        for lag in 1..n {
            assert_eq!(
                periodic_autocorrelation(&seq, lag),
                -1,
                "degree-{degree}, lag {lag}"
            );
        }
    }
}

#[test]
fn gold_golden_chips() {
    let family = GoldFamily::new(5).unwrap();
    for (i, want) in GOLD5.iter().enumerate() {
        assert_eq!(
            chips(family.code(i).unwrap().bits()),
            *want,
            "gold-5 code {i}"
        );
    }
}

#[test]
fn gold_paper_default_is_degree_5() {
    let family = GoldFamily::paper_default();
    assert_eq!(family.degree(), 5);
    assert_eq!(family.spreading_factor(), 31);
    // The paper-default family reproduces the same golden vectors.
    assert_eq!(chips(family.code(0).unwrap().bits()), GOLD5[0]);
}

#[test]
fn gold_family_shape() {
    let family = GoldFamily::new(5).unwrap();
    assert_eq!(family.capacity(), 31 + 2, "N + 2 codes");
    assert!(family.code(family.capacity()).is_err());
    for code in family.codes(family.capacity()).unwrap() {
        assert_eq!(code.len(), 31);
    }
}

#[test]
fn gold_cross_correlation_respects_t_bound() {
    let family = GoldFamily::new(5).unwrap();
    let t = family.t_bound();
    assert_eq!(t, 9, "t(5) = 2^3 + 1");
    let codes = family.codes(8).unwrap();
    let allowed = [-1i64, -t, t - 2];
    for a in 0..codes.len() {
        for b in (a + 1)..codes.len() {
            for lag in 0..codes[a].len() {
                let cc = periodic_cross(codes[a].bits(), codes[b].bits(), lag);
                assert!(
                    allowed.contains(&cc),
                    "gold-5 codes ({a},{b}) lag {lag}: cross-correlation {cc} \
                     outside the three-valued set {allowed:?}"
                );
            }
        }
    }
}

#[test]
fn kasami_golden_chips() {
    let family = KasamiFamily::new(6).unwrap();
    for (i, want) in KASAMI6.iter().enumerate() {
        assert_eq!(
            chips(family.code(i).unwrap().bits()),
            *want,
            "kasami-6 code {i}"
        );
    }
}

#[test]
fn kasami_family_shape_and_s_bound() {
    let family = KasamiFamily::new(6).unwrap();
    assert_eq!(family.capacity(), 8, "small set has 2^(n/2) codes");
    assert_eq!(family.s_bound(), 9, "s(6) = 2^3 + 1");
    assert_eq!(family.short_period(), 7);
    let codes = family.codes(family.capacity()).unwrap();
    for a in 0..codes.len() {
        assert_eq!(codes[a].len(), 63);
        for b in (a + 1)..codes.len() {
            for lag in 0..codes[a].len() {
                let cc = periodic_cross(codes[a].bits(), codes[b].bits(), lag);
                assert!(
                    cc.abs() <= family.s_bound(),
                    "kasami-6 codes ({a},{b}) lag {lag}: |{cc}| exceeds s(n)"
                );
            }
        }
    }
}

#[test]
fn golden_vectors_have_peak_autocorrelation_margin() {
    // Every golden code family keeps off-peak periodic autocorrelation
    // well below the lag-0 peak — the property user detection relies on.
    let gold = GoldFamily::new(5).unwrap();
    for code in gold.codes(4).unwrap() {
        let peak = periodic_cross(code.bits(), code.bits(), 0);
        assert_eq!(peak, code.len() as i64);
        for lag in 1..code.len() {
            let side = periodic_cross(code.bits(), code.bits(), lag).abs();
            assert!(
                side <= gold.t_bound(),
                "gold code {} lag {lag}: sidelobe {side}",
                code.index()
            );
        }
    }
}
