//! Property-based tests for the code families.

use cbma_codes::FamilyKind;
use cbma_types::Bits;
use proptest::prelude::*;

fn arb_family() -> impl Strategy<Value = FamilyKind> {
    prop_oneof![
        (5u32..=7).prop_map(|degree| FamilyKind::Gold { degree }),
        (1usize..=16).prop_map(|users| FamilyKind::TwoNc { users }),
        prop_oneof![Just(6u32), Just(8u32)].prop_map(|degree| FamilyKind::Kasami { degree }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Every family hands out exactly `capacity` distinct, equal-length,
    /// correctly-indexed codes and rejects the next index.
    #[test]
    fn families_are_well_formed(kind in arb_family()) {
        let family = kind.build().unwrap();
        let cap = family.capacity().min(12); // bound the pairwise check
        let codes = family.codes(cap).unwrap();
        for (i, code) in codes.iter().enumerate() {
            prop_assert_eq!(code.index(), i);
            prop_assert_eq!(code.len(), family.spreading_factor());
        }
        for i in 0..codes.len() {
            for j in i + 1..codes.len() {
                prop_assert_ne!(codes[i].bits(), codes[j].bits());
            }
        }
        prop_assert!(family.code(family.capacity()).is_err());
    }

    /// Complement signalling: the bipolar template for 0 is exactly the
    /// negated template for 1, and chips_for agrees with it.
    #[test]
    fn complement_signalling_is_consistent(
        kind in arb_family(),
        index in 0usize..4,
    ) {
        let family = kind.build().unwrap();
        let index = index % family.capacity();
        let code = family.code(index).unwrap();
        for (one, zero) in code.bipolar_one().iter().zip(code.bipolar_zero()) {
            prop_assert_eq!(*one, -zero);
        }
        prop_assert_eq!(&code.chips_for(0), &code.chips_for(1).complement());
    }

    /// No code in any family is degenerate (all-ones or all-zeros), which
    /// would break OOK signalling.
    #[test]
    fn codes_are_never_degenerate(kind in arb_family()) {
        let family = kind.build().unwrap();
        for code in family.codes(family.capacity().min(12)).unwrap() {
            let ones = code.bits().count_ones();
            prop_assert!(ones > 0, "all-zero code in {kind}");
            prop_assert!(ones < code.len(), "all-one code in {kind}");
        }
    }

    /// Spreading any data with any code is invertible (chip-exact).
    #[test]
    fn spread_is_injective_per_code(
        kind in arb_family(),
        data_a in proptest::collection::vec(0u8..2, 1..24),
        flip_at in any::<usize>(),
    ) {
        let family = kind.build().unwrap();
        let code = family.code(0).unwrap();
        let a = Bits::from_slice(&data_a).unwrap();
        // Flip one data bit: the chip streams must differ in exactly one
        // code word (complement signalling flips every chip of the word).
        let mut data_b = data_a.clone();
        let k = flip_at % data_b.len();
        data_b[k] ^= 1;
        let b = Bits::from_slice(&data_b).unwrap();
        let ca = cbma_tag_shim::spread(&a, &code);
        let cb = cbma_tag_shim::spread(&b, &code);
        let diff = ca.hamming_distance(&cb);
        prop_assert_eq!(diff, code.len(), "one bit flip must flip one whole word");
    }
}

/// Minimal local re-implementation of the tag's spreading rule so this
/// crate's property tests need no dependency on `cbma-tag` (which depends
/// on this crate).
mod cbma_tag_shim {
    use cbma_codes::PnCode;
    use cbma_types::Bits;

    pub fn spread(data: &Bits, code: &PnCode) -> Bits {
        let mut out = Bits::with_capacity(data.len() * code.len());
        for bit in data.iter() {
            if bit == 1 {
                out.extend_bits(code.bits());
            } else {
                out.extend_bits(&code.bits().complement());
            }
        }
        out
    }
}
