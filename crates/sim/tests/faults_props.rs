//! Property tests for `sim::faults`: fault plans, mobility bounds and the
//! degenerate ACK-loss probabilities, plus engine-level checks that the
//! injected faults actually reach the transmission rounds.

use cbma_sim::faults::{FaultPlan, MobilityModel};
use cbma_sim::{Engine, Scenario};
use cbma_types::geometry::{Point, Rect};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A tag marked dead from round `r` is alive strictly before `r` and
    /// dead at every round from `r` on; unrelated tags never die.
    #[test]
    fn dead_tag_is_dead_exactly_from_its_round(
        tag in 0usize..6,
        dead_from in 0u64..50,
        probe in 0u64..100,
        other in 6usize..12,
    ) {
        let plan = FaultPlan::none().with_dead_tag(tag, dead_from);
        prop_assert_eq!(plan.is_dead(tag, probe), probe >= dead_from);
        prop_assert!(!plan.is_dead(other, probe), "unlisted tags never die");
    }

    /// `ack_loss = 0` never loses an ACK and `ack_loss = 1` always does,
    /// whatever the RNG stream.
    #[test]
    fn ack_loss_degenerate_probabilities(seed in 0u64..1_000, draws in 1usize..64) {
        let never = FaultPlan::none().with_ack_loss(0.0);
        let always = FaultPlan::none().with_ack_loss(1.0);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..draws {
            prop_assert!(!never.ack_lost(&mut rng));
            prop_assert!(always.ack_lost(&mut rng));
        }
    }

    /// A mobility walk never leaves its bounding rectangle, from any
    /// start point (even one outside the area — the first step clamps).
    #[test]
    fn mobility_walk_stays_in_rect(
        seed in 0u64..1_000,
        step in 0.0f64..0.5,
        x0 in -2.0f64..2.0,
        y0 in -2.0f64..2.0,
        rounds in 1usize..80,
    ) {
        let area = Rect::new(Point::new(-0.6, -0.5), Point::new(0.6, 0.5));
        let model = MobilityModel::new(step, area);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pos = Point::new(x0, y0);
        for round in 0..rounds {
            pos = model.step(&mut rng, pos);
            prop_assert!(
                (-0.6..=0.6).contains(&pos.x) && (-0.5..=0.5).contains(&pos.y),
                "round {}: walked out of the rect to ({}, {})",
                round, pos.x, pos.y
            );
        }
    }

    /// A zero step size is the identity: the tag never moves.
    #[test]
    fn zero_step_mobility_is_static(seed in 0u64..1_000) {
        let area = Rect::new(Point::new(-0.6, -0.5), Point::new(0.6, 0.5));
        let model = MobilityModel::new(0.0, area);
        let mut rng = StdRng::seed_from_u64(seed);
        let start = Point::new(0.25, -0.25);
        prop_assert_eq!(model.step(&mut rng, start), start);
    }

    /// Moves within the area are bounded by the configured step size.
    #[test]
    fn mobility_step_is_bounded(seed in 0u64..1_000, step in 0.0f64..0.2) {
        let area = Rect::new(Point::new(-10.0, -10.0), Point::new(10.0, 10.0));
        let model = MobilityModel::new(step, area);
        let mut rng = StdRng::seed_from_u64(seed);
        let from = Point::new(0.0, 0.0);
        let to = model.step(&mut rng, from);
        let moved = ((to.x - from.x).powi(2) + (to.y - from.y).powi(2)).sqrt();
        prop_assert!(moved <= step + 1e-12, "moved {} > step {}", moved, step);
    }
}

fn two_tag_scenario(seed: u64) -> Scenario {
    Scenario::paper_default(vec![Point::new(0.0, 0.4), Point::new(0.0, -0.4)]).with_seed(seed)
}

/// Engine-level: a dead tag transmits in no round at or after its death
/// round and in every round before it.
#[test]
fn engine_dead_tag_contributes_nothing_after_its_round() {
    let dead_from = 3u64;
    let mut scenario = two_tag_scenario(0xFA017);
    scenario.faults = FaultPlan::none().with_dead_tag(1, dead_from);
    let mut engine = Engine::new(scenario).expect("valid scenario");
    for round in 0..6u64 {
        let outcome = engine.run_round();
        assert!(outcome.active.contains(&0), "tag 0 transmits every round");
        assert_eq!(
            outcome.active.contains(&1),
            round < dead_from,
            "round {round}: dead-from-{dead_from} tag activity"
        );
        if round >= dead_from {
            assert!(
                !outcome.delivered.contains(&1),
                "round {round}: a dead tag cannot be delivered"
            );
            assert!(
                outcome.bit_errors.iter().all(|&(tag, _, _)| tag != 1),
                "round {round}: a dead tag cannot contribute bit measurements"
            );
        }
    }
}

/// Engine-level: mobility keeps every tag inside the paper's table area
/// across a full run.
#[test]
fn engine_mobility_keeps_tags_in_area() {
    let area = Rect::new(Point::new(-0.6, -0.5), Point::new(0.6, 0.5));
    let mut scenario = two_tag_scenario(0xFA018);
    scenario.mobility = Some(MobilityModel::new(0.08, area));
    let mut engine = Engine::new(scenario).expect("valid scenario");
    for _ in 0..10 {
        engine.run_round();
        for tag in engine.tags() {
            let p = tag.position();
            assert!(
                (-0.6..=0.6).contains(&p.x) && (-0.5..=0.5).contains(&p.y),
                "tag left the table area: ({}, {})",
                p.x,
                p.y
            );
        }
    }
}
