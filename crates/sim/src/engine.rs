//! The end-to-end simulation engine.
//!
//! [`Engine::run_round`] performs one "collided packet" experiment exactly
//! the way the paper's testbed does: every active tag frames and spreads a
//! payload, the channel superposes the asynchronous, power-imbalanced
//! waveforms, and the receiver detects/decodes and broadcasts the ACK that
//! feeds the tags' statistics. Rounds are deterministic in
//! `(scenario.seed, round index)`.

use std::sync::Arc;
use std::time::Instant;

use rand::Rng;

use cbma_channel::mixer::{Mixer, TagSignal};
use cbma_obs::{Counter, Event, Gauge, Histogram, MetricsRegistry, NoopSink, Sink, Tracer};
use cbma_rx::runtime::{CaptureSource, RuntimeConfig, RxFlowgraph, Scheduler};
use cbma_rx::{Receiver, RxReport};
use cbma_tag::{ImpedanceBank, Tag};
use cbma_types::geometry::Point;
use cbma_types::{Result, SeedSequence};

use crate::scenario::Scenario;
use crate::stats::RunStats;

/// Per-tag channel realization metadata for one round (diagnostics).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SignalMeta {
    /// Tag index.
    pub tag: usize,
    /// Mean link amplitude (√W) before fading.
    pub amplitude: f64,
    /// Realized main-tap fading power gain.
    pub fading_power: f64,
    /// Start delay in samples.
    pub delay_samples: f64,
    /// Static carrier phase.
    pub phase: f64,
}

/// The outcome of one transmission round.
#[derive(Debug, Clone)]
pub struct RoundOutcome {
    /// Indices of the tags that transmitted.
    pub active: Vec<usize>,
    /// The receiver's report.
    pub report: RxReport,
    /// Active tags whose frame was decoded *with the transmitted payload*
    /// (an ACK under the right id but the wrong bytes does not count).
    pub delivered: Vec<usize>,
    /// Per-tag bit-error measurements `(tag, errored bits, total bits)`
    /// for active tags whose header decoded with the right length.
    pub bit_errors: Vec<(usize, usize, usize)>,
    /// Channel realization diagnostics, index-aligned with `active`.
    pub signal_meta: Vec<SignalMeta>,
    /// The raw received IQ buffer, captured only when
    /// [`Engine::set_capture_iq`] is enabled (it is large).
    pub iq: Option<Vec<cbma_types::Iq>>,
}

impl RoundOutcome {
    /// Whether every active tag was delivered.
    pub fn all_delivered(&self) -> bool {
        self.delivered.len() == self.active.len()
    }
}

/// Pre-registered `cbma.sim.*` metric handles (lock-free atomics), bound
/// once by [`Engine::attach_observability`].
#[derive(Debug, Clone)]
struct SimMetrics {
    rounds: Counter,
    frames_sent: Counter,
    frames_delivered: Counter,
    bit_errors: Counter,
    bits_measured: Counter,
    round_ns: Histogram,
    active_tags: Gauge,
    delivery_ratio: Gauge,
}

impl SimMetrics {
    fn register(registry: &MetricsRegistry) -> SimMetrics {
        SimMetrics {
            rounds: registry.counter("cbma.sim.rounds"),
            frames_sent: registry.counter("cbma.sim.frames_sent"),
            frames_delivered: registry.counter("cbma.sim.frames_delivered"),
            bit_errors: registry.counter("cbma.sim.bit_errors"),
            bits_measured: registry.counter("cbma.sim.bits_measured"),
            round_ns: registry.histogram("cbma.sim.round_ns"),
            active_tags: registry.gauge("cbma.sim.active_tags"),
            delivery_ratio: registry.gauge("cbma.sim.delivery_ratio"),
        }
    }

    fn record(&self, outcome: &RoundOutcome, round_ns: u64) {
        self.rounds.inc();
        self.frames_sent.add(outcome.active.len() as u64);
        self.frames_delivered.add(outcome.delivered.len() as u64);
        let (err, total) = outcome
            .bit_errors
            .iter()
            .fold((0u64, 0u64), |(e, t), &(_, be, bt)| {
                (e + be as u64, t + bt as u64)
            });
        self.bit_errors.add(err);
        self.bits_measured.add(total);
        self.round_ns.record(round_ns);
        self.active_tags.max(outcome.active.len() as f64);
        if !outcome.active.is_empty() {
            self.delivery_ratio
                .set(outcome.delivered.len() as f64 / outcome.active.len() as f64);
        }
    }
}

/// Knobs for [`Engine::run_streaming`]: how many rounds to realize per
/// flowgraph pass and how the streaming runtime is shaped. None of these
/// change outcomes — only latency, memory and parallelism.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamingConfig {
    /// Rounds realized (and fed through the flowgraph) per batch
    /// (clamped to ≥ 1).
    pub width: usize,
    /// Samples per source block (clamped to ≥ 1).
    pub block_size: usize,
    /// Capacity of each inter-stage ring buffer (clamped to ≥ 1).
    pub ring_capacity: usize,
    /// Stage scheduler.
    pub scheduler: Scheduler,
}

impl Default for StreamingConfig {
    fn default() -> StreamingConfig {
        let runtime = RuntimeConfig::default();
        StreamingConfig {
            width: 8,
            block_size: runtime.block_size,
            ring_capacity: runtime.ring_capacity,
            scheduler: runtime.scheduler,
        }
    }
}

impl StreamingConfig {
    /// The flowgraph runtime configuration this run asks for.
    pub fn runtime(&self) -> RuntimeConfig {
        RuntimeConfig {
            block_size: self.block_size,
            ring_capacity: self.ring_capacity,
            scheduler: self.scheduler,
        }
    }
}

/// The simulation engine for one scenario.
#[derive(Debug)]
pub struct Engine {
    scenario: Scenario,
    tags: Vec<Tag>,
    receiver: Receiver,
    bank: ImpedanceBank,
    seq: SeedSequence,
    round: u64,
    capture_iq: bool,
    /// Structured round/adaptation events go here; defaults to
    /// [`NoopSink`], whose `enabled() == false` skips event assembly.
    sink: Arc<dyn Sink>,
    /// Registered metric handles, when observability is attached.
    metrics: Option<SimMetrics>,
    /// Span recorder, when tracing is attached (see
    /// [`Engine::attach_tracer`]).
    tracer: Option<Tracer>,
}

impl Engine {
    /// Builds the engine: validates the scenario, assigns code `i` of the
    /// family to tag `i`, and configures the receiver with the full code
    /// set.
    ///
    /// # Errors
    ///
    /// Propagates scenario validation and code-family errors.
    pub fn new(scenario: Scenario) -> Result<Engine> {
        scenario.validate()?;
        let family = scenario.family.build()?;
        let codes = family.codes(scenario.n_tags())?;
        let seq = SeedSequence::new(scenario.seed);
        let mut boot_rng = seq.rng("impedance-boot");
        let tags = scenario
            .tag_positions
            .iter()
            .zip(codes.iter())
            .enumerate()
            .map(|(i, (&pos, code))| {
                let mut tag = Tag::new(i as u32, pos, code.clone());
                // Tags boot at an arbitrary impedance state — the unequal
                // backscatter powers this creates are exactly the near-far
                // condition Algorithm 1 then has to fix (§IV, §V-B).
                let state = cbma_tag::ImpedanceState::ALL[boot_rng.gen_range(0..4usize)];
                tag.set_impedance(state);
                tag
            })
            .collect();
        let receiver = Receiver::new(codes, scenario.phy, scenario.rx_config);
        let bank = ImpedanceBank::new(scenario.link.carrier);
        Ok(Engine {
            scenario,
            tags,
            receiver,
            bank,
            seq,
            round: 0,
            capture_iq: false,
            sink: Arc::new(NoopSink),
            metrics: None,
            tracer: None,
        })
    }

    /// Enables capturing the raw IQ buffer into each [`RoundOutcome`]
    /// (for waveform inspection; costs memory per round).
    pub fn set_capture_iq(&mut self, capture: bool) {
        self.capture_iq = capture;
    }

    /// Attaches a metrics registry: every subsequent round records
    /// `cbma.sim.*` metrics here, and the inner receiver is wired to
    /// record its `cbma.rx.*` metrics into the same registry.
    pub fn attach_observability(&mut self, registry: &MetricsRegistry) {
        self.metrics = Some(SimMetrics::register(registry));
        self.receiver.attach_metrics(registry);
    }

    /// Attaches a span tracer: every subsequent round records a `round`
    /// root span, with the receiver wired so its `capture` span tree
    /// (stages and correlation kernels) nests underneath. Each round is
    /// its own trace. Without this call rounds pay one `Option` branch.
    pub fn attach_tracer(&mut self, tracer: &Tracer) {
        self.tracer = Some(tracer.clone());
        self.receiver.attach_tracer(tracer);
    }

    /// Replaces the event sink. Rounds emit `cbma.sim.round` events and
    /// the adaptation layer emits `cbma.sim.power_control` /
    /// `cbma.sim.node_selection` events through it. The default
    /// [`NoopSink`] reports `enabled() == false`, so no event is even
    /// assembled on the hot path.
    pub fn set_sink(&mut self, sink: Arc<dyn Sink>) {
        self.sink = sink;
    }

    /// The current event sink (shared with the adaptation layer).
    #[inline]
    pub fn sink(&self) -> &Arc<dyn Sink> {
        &self.sink
    }

    /// The scenario the engine was built from.
    #[inline]
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// The tags (ACK statistics, impedance states, positions).
    #[inline]
    pub fn tags(&self) -> &[Tag] {
        &self.tags
    }

    /// Mutable tag access (the adaptation layer steps impedances and moves
    /// tags through this).
    #[inline]
    pub fn tags_mut(&mut self) -> &mut [Tag] {
        &mut self.tags
    }

    /// Rounds executed so far.
    #[inline]
    pub fn rounds_run(&self) -> u64 {
        self.round
    }

    /// The payload tag `i` transmits in round `r` (unique per tag and
    /// round so aliased decodes cannot masquerade as real deliveries).
    pub fn payload_for(&self, tag: usize, round: u64) -> Vec<u8> {
        let mut payload = vec![0u8; self.scenario.payload_len];
        let mut state = (tag as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ round;
        for byte in payload.iter_mut() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            *byte = (state & 0xFF) as u8;
        }
        if !payload.is_empty() {
            payload[0] = tag as u8; // self-identifying first byte
        }
        payload
    }

    /// Runs one round with every tag active.
    pub fn run_round(&mut self) -> RoundOutcome {
        let all: Vec<usize> = (0..self.tags.len()).collect();
        self.run_round_subset(&all)
    }

    /// Runs one round with the given subset of tags transmitting.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn run_round_subset(&mut self, active: &[usize]) -> RoundOutcome {
        let round_start = Instant::now();
        let round = self.round;
        self.round += 1;
        // The guard owns a tracer clone, so the later `&mut self` receiver
        // call is unencumbered; dropping it at function end closes the
        // round span around the whole round.
        let _round_span = self.tracer.clone().map(|tracer| {
            let trace = tracer.new_trace();
            let mut span = tracer.span(trace, None, "round");
            span.set_arg(round);
            self.receiver.set_trace_parent(trace, span.id());
            span
        });
        let round_seq = self.seq.child(&format!("round-{round}"));
        let mut chan_rng = round_seq.rng("channel");
        let mut fault_rng = round_seq.rng("faults");

        // Injected tag deaths: dead tags silently drop out of the round.
        let active: Vec<usize> = active
            .iter()
            .copied()
            .filter(|&i| !self.scenario.faults.is_dead(i, round))
            .collect();

        let (iq, signal_meta, payloads) = self.realize_round(&active, round, &mut chan_rng);
        let report = self.receiver.receive(&iq);
        // Mobility: positions evolve between rounds (shadowing and the
        // frozen carrier phases follow automatically, both being
        // position-keyed). Its own seed stream — not `fault_rng`, whose
        // draw count depends on how many frames were delivered — so the
        // coalesced runner can move tags right after waveform generation
        // (see [`Engine::run_round_batch`]) and land on identical
        // positions.
        if let Some(mobility) = self.scenario.mobility {
            let mut mobility_rng = round_seq.rng("mobility");
            for tag in &mut self.tags {
                let next = mobility.step(&mut mobility_rng, tag.position());
                tag.set_position(next);
            }
        }
        self.settle_round(
            round,
            round_start,
            active,
            payloads,
            signal_meta,
            iq,
            report,
            &mut fault_rng,
        )
    }

    /// Realizes one round's channel: every active tag's waveform with its
    /// link amplitude, fading, timing and phase, mixed (with noise and
    /// quantization) into the received IQ capture. Also returns the
    /// per-tag payloads for delivery accounting.
    fn realize_round(
        &mut self,
        active: &[usize],
        round: u64,
        mut chan_rng: &mut rand::rngs::StdRng,
    ) -> (Vec<cbma_types::Iq>, Vec<SignalMeta>, Vec<Vec<u8>>) {
        let mut signals = Vec::with_capacity(active.len());
        let mut signal_meta = Vec::with_capacity(active.len());
        let mut payloads = vec![Vec::new(); self.tags.len()];
        for &i in active {
            let payload = self.payload_for(i, round);
            payloads[i] = payload.clone();
            let envelope = self.tags[i]
                .transmit(payload, &self.scenario.phy)
                .expect("configured payload length is valid");

            // Mean link amplitude: Friis with this tag's |ΔΓ| state,
            // shadowed by the frozen large-scale environment.
            let dg = self.bank.delta_gamma(self.tags[i].impedance());
            let link = self.scenario.link.with_delta_gamma(dg);
            let mut amplitude = link.received_amplitude(
                self.scenario.es,
                self.tags[i].position(),
                self.scenario.rx,
            );
            amplitude *= self
                .scenario
                .shadowing
                .offset_for(self.tags[i].position())
                .to_amplitude_ratio();
            amplitude *= self.coupling_penalty(i, active, &mut chan_rng);

            let taps = self.scenario.multipath.realize(&mut chan_rng);
            let clock = self.scenario.clock_for(i);
            let delay = clock.frame_delay(&mut chan_rng, envelope.len());
            // The carrier phase of a static tag is set by its geometry
            // (path lengths at sub-wavelength precision), so it is frozen
            // per position like shadowing, with a small per-frame wobble
            // from oscillator drift and micro-motion.
            let phase = self.static_phase(self.tags[i].position()) + chan_rng.gen_range(-0.3..0.3);
            // Δf = 20 MHz subcarrier with ppm-grade tag oscillators: the
            // residual offset makes inter-tag phases beat over the frame.
            let beat =
                clock.subcarrier_beat(&mut chan_rng, 20.0e6, self.scenario.phy.sample_rate.get());

            signal_meta.push(SignalMeta {
                tag: i,
                amplitude,
                fading_power: taps.taps()[0].1.power(),
                delay_samples: delay,
                phase,
            });
            signals.push(TagSignal {
                envelope,
                amplitude,
                phase,
                taps,
                delay_samples: delay,
                freq_offset_rad_per_sample: beat,
            });
        }

        let mixer = Mixer {
            noise: self.scenario.noise,
            bandwidth: self.scenario.phy.sample_rate,
            excitation: self.scenario.excitation,
            interference: self.scenario.interference,
            lead_in: 4 * self.scenario.rx_config.energy_window.max(32),
            tail: 64,
        };
        let mut iq = mixer.combine(chan_rng, &signals);
        if let Some(adc) = self.scenario.adc {
            adc.quantize(chan_rng, &mut iq);
        }
        (iq, signal_meta, payloads)
    }

    /// The post-reception half of a round: delivery and bit-error
    /// accounting, ACK statistics (with downlink loss draws from the
    /// round's fault stream), outcome assembly and observability.
    #[allow(clippy::too_many_arguments)]
    fn settle_round(
        &mut self,
        round: u64,
        round_start: Instant,
        active: Vec<usize>,
        payloads: Vec<Vec<u8>>,
        signal_meta: Vec<SignalMeta>,
        iq: Vec<cbma_types::Iq>,
        report: RxReport,
        fault_rng: &mut rand::rngs::StdRng,
    ) -> RoundOutcome {
        // Deliveries: the right payload decoded under the right id.
        let mut delivered = Vec::new();
        for &(id, frame) in report.frames().iter() {
            if active.contains(&id) && frame.payload() == payloads[id].as_slice() {
                delivered.push(id);
            }
        }
        // Bit-error accounting: compare every active tag's decoded bit
        // stream (valid or not) against what it actually sent.
        let mut bit_errors = Vec::new();
        for user in &report.users {
            let id = user.detection.code_index;
            if !active.contains(&id) {
                continue;
            }
            if let Some(bits) = &user.bits {
                let sent = cbma_tag::Frame::new(payloads[id].clone())
                    .expect("payload length validated")
                    .to_bits(self.scenario.phy.preamble_bits);
                if bits.len() == sent.len() {
                    bit_errors.push((id, sent.hamming_distance(bits), sent.len()));
                }
            }
        }
        delivered.sort_unstable();
        // Feed the tags' ACK statistics (only true deliveries ACK, and the
        // broadcast ACK itself can be lost on the downlink).
        for &i in &delivered {
            if !self.scenario.faults.ack_lost(fault_rng) {
                self.tags[i].record_ack();
            }
        }

        let outcome = RoundOutcome {
            active,
            report,
            delivered,
            bit_errors,
            signal_meta,
            iq: if self.capture_iq { Some(iq) } else { None },
        };
        let round_ns = round_start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        if let Some(metrics) = &self.metrics {
            metrics.record(&outcome, round_ns);
        }
        if self.sink.enabled() {
            self.sink.record(
                Event::new("cbma.sim.round")
                    .with("round", round)
                    .with("active", &outcome.active)
                    .with("detected", &outcome.report.detected_ids())
                    .with("delivered", &outcome.delivered)
                    .with("frame_detected", outcome.report.frame_detected)
                    .with("sic_recovered", outcome.report.telemetry.sic_recovered)
                    .with("peak_correlation", outcome.report.telemetry.peak_correlation)
                    .with("round_ns", round_ns),
            );
        }
        outcome
    }

    /// Runs `n` all-tags rounds and accumulates statistics.
    pub fn run_rounds(&mut self, n: usize) -> RunStats {
        let mut stats = RunStats::new(self.tags.len());
        for _ in 0..n {
            let outcome = self.run_round();
            stats.record(&outcome);
        }
        stats
    }

    /// Runs `n` all-tags rounds in coalesced batches of `width` (see
    /// [`Engine::run_round_batch`]) and accumulates statistics. At paper
    /// defaults the shared multi-window correlation pass makes this the
    /// fastest way to run a long campaign.
    pub fn run_rounds_coalesced(&mut self, n: usize, width: usize) -> RunStats {
        let all: Vec<usize> = (0..self.tags.len()).collect();
        let mut stats = RunStats::new(self.tags.len());
        let mut done = 0;
        while done < n {
            let batch = width.max(1).min(n - done);
            for outcome in self.run_round_batch(&all, batch) {
                stats.record(&outcome);
            }
            done += batch;
        }
        stats
    }

    /// Runs `width` consecutive rounds whose captures are received in one
    /// coalesced [`Receiver::receive_coalesced`] pass: every round's
    /// waveforms are generated first (channel, fault and mobility draws
    /// come from the same per-round seed streams as [`Engine::run_round`],
    /// so the realized channels are identical), then all captures share
    /// one multi-window correlation matrix pass, then each round settles
    /// its deliveries and ACK statistics in order.
    ///
    /// Outcomes match `width` sequential [`Engine::run_round_subset`]
    /// calls (active sets, channel realizations, deliveries and ACK
    /// draws), except that detection correlations/gains differ within
    /// FFT rounding between the coalesced and single-window paths.
    ///
    /// When a tracer is attached the batch records one `round_batch`
    /// span (arg = first round index) with the receiver's
    /// `coalesced_receive` tree nested under it, instead of per-round
    /// `round` spans.
    pub fn run_round_batch(&mut self, active: &[usize], width: usize) -> Vec<RoundOutcome> {
        struct PendingRound {
            round: u64,
            start: Instant,
            active: Vec<usize>,
            payloads: Vec<Vec<u8>>,
            signal_meta: Vec<SignalMeta>,
            iq: Vec<cbma_types::Iq>,
            fault_rng: rand::rngs::StdRng,
        }
        let first_round = self.round;
        let _batch_span = self.tracer.clone().map(|tracer| {
            let trace = tracer.new_trace();
            let mut span = tracer.span(trace, None, "round_batch");
            span.set_arg(first_round);
            self.receiver.set_trace_parent(trace, span.id());
            span
        });
        let mut pending = Vec::with_capacity(width.max(1));
        for _ in 0..width.max(1) {
            let start = Instant::now();
            let round = self.round;
            self.round += 1;
            let round_seq = self.seq.child(&format!("round-{round}"));
            let mut chan_rng = round_seq.rng("channel");
            let fault_rng = round_seq.rng("faults");
            // Injected tag deaths: dead tags silently drop out.
            let active: Vec<usize> = active
                .iter()
                .copied()
                .filter(|&i| !self.scenario.faults.is_dead(i, round))
                .collect();
            let (iq, signal_meta, payloads) = self.realize_round(&active, round, &mut chan_rng);
            // Mobility steps immediately after this round's waveforms are
            // realized — the same position trajectory as the sequential
            // runner, because the mobility stream is independent of
            // reception.
            if let Some(mobility) = self.scenario.mobility {
                let mut mobility_rng = round_seq.rng("mobility");
                for tag in &mut self.tags {
                    let next = mobility.step(&mut mobility_rng, tag.position());
                    tag.set_position(next);
                }
            }
            pending.push(PendingRound {
                round,
                start,
                active,
                payloads,
                signal_meta,
                iq,
                fault_rng,
            });
        }
        let captures: Vec<&[cbma_types::Iq]> = pending.iter().map(|p| p.iq.as_slice()).collect();
        let reports = self.receiver.receive_coalesced(&captures);
        pending
            .into_iter()
            .zip(reports)
            .map(|(mut p, report)| {
                self.settle_round(
                    p.round,
                    p.start,
                    p.active,
                    p.payloads,
                    p.signal_meta,
                    p.iq,
                    report,
                    &mut p.fault_rng,
                )
            })
            .collect()
    }

    /// Runs `n` all-tags rounds through the streaming receiver runtime
    /// ([`RxFlowgraph`]): rounds are realized in batches of `cfg.width`
    /// with the exact per-round seed streams of [`Engine::run_round`],
    /// each capture is chopped into `cfg.block_size`-sample blocks and fed
    /// through the pipelined flowgraph, and every round settles its
    /// deliveries and ACK statistics in round order.
    ///
    /// The streaming stages call the same frame-sync/detect/decode/SIC
    /// seams as the monolithic [`Receiver::receive`], so outcomes are
    /// identical to `n` sequential [`Engine::run_round`] calls — for every
    /// block size, ring capacity and scheduler (the block-boundary
    /// equivalence suite in `crates/rx/tests/streaming_equivalence.rs`
    /// and the manifest byte-identity test in `tests/streaming.rs` pin
    /// this down).
    ///
    /// # Panics
    ///
    /// Panics if the flowgraph fails (a stage panicked); the harness
    /// retry machinery treats this like any other mid-round panic.
    pub fn run_streaming(&mut self, n: usize, cfg: &StreamingConfig) -> RunStats {
        self.run_streaming_with(n, cfg, |_| {})
    }

    /// Like [`Engine::run_streaming`], but hands every settled
    /// [`RoundOutcome`] (in round order) to `on_outcome` — the hook the
    /// harness uses to aggregate per-round measurements.
    ///
    /// # Panics
    ///
    /// As [`Engine::run_streaming`].
    pub fn run_streaming_with(
        &mut self,
        n: usize,
        cfg: &StreamingConfig,
        mut on_outcome: impl FnMut(&RoundOutcome),
    ) -> RunStats {
        struct PendingRound {
            round: u64,
            start: Instant,
            active: Vec<usize>,
            payloads: Vec<Vec<u8>>,
            signal_meta: Vec<SignalMeta>,
            iq: Vec<cbma_types::Iq>,
            fault_rng: rand::rngs::StdRng,
        }
        let all: Vec<usize> = (0..self.tags.len()).collect();
        let mut stats = RunStats::new(self.tags.len());
        // One flowgraph for the whole run: threads and rings are built per
        // `run` call, but the stage receivers (and their scratch) persist
        // across batches.
        let family = self
            .scenario
            .family
            .build()
            .expect("scenario validated at construction");
        let codes = family
            .codes(self.scenario.n_tags())
            .expect("scenario validated at construction");
        let mut flow = RxFlowgraph::new(
            codes,
            self.scenario.phy,
            self.scenario.rx_config,
            cfg.runtime(),
        );
        if let Some(tracer) = &self.tracer {
            flow.attach_tracer(tracer);
        }
        // The work-stealing scheduler multiplexes independent streams
        // over its pool: give each round of a batch its own stream so
        // the pool has real cross-capture parallelism. The
        // single-pipeline schedulers keep every round on stream 0
        // (their results arrive strictly in push order).
        let spread = matches!(cfg.scheduler, Scheduler::WorkStealing { .. });
        let mut done = 0;
        while done < n {
            let width = cfg.width.max(1).min(n - done);
            let _batch_span = self.tracer.clone().map(|tracer| {
                let trace = tracer.new_trace();
                let mut span = tracer.span(trace, None, "streaming_batch");
                span.set_arg(self.round);
                span
            });
            let mut pending = Vec::with_capacity(width);
            let mut source = CaptureSource::new(cfg.block_size);
            for _ in 0..width {
                let start = Instant::now();
                let round = self.round;
                self.round += 1;
                let round_seq = self.seq.child(&format!("round-{round}"));
                let mut chan_rng = round_seq.rng("channel");
                let fault_rng = round_seq.rng("faults");
                let active: Vec<usize> = all
                    .iter()
                    .copied()
                    .filter(|&i| !self.scenario.faults.is_dead(i, round))
                    .collect();
                let (iq, signal_meta, payloads) =
                    self.realize_round(&active, round, &mut chan_rng);
                // Mobility steps right after realization, exactly as in
                // the coalesced runner (the stream is reception-independent
                // so positions match the sequential trajectory).
                if let Some(mobility) = self.scenario.mobility {
                    let mut mobility_rng = round_seq.rng("mobility");
                    for tag in &mut self.tags {
                        let next = mobility.step(&mut mobility_rng, tag.position());
                        tag.set_position(next);
                    }
                }
                let stream = if spread { pending.len() } else { 0 };
                source.push(stream, iq.clone());
                pending.push(PendingRound {
                    round,
                    start,
                    active,
                    payloads,
                    signal_meta,
                    iq,
                    fault_rng,
                });
            }
            let output = flow
                .run(source)
                .unwrap_or_else(|e| panic!("streaming round batch: {e}"));
            let mut results = output.results;
            if spread {
                // One capture per stream, stream = batch index: sorting
                // by stream restores round order (settling order
                // matters — gauges keep the last value).
                results.sort_by_key(|r| (r.stream, r.seq));
            }
            for (mut p, result) in pending.into_iter().zip(results) {
                // Mirror `Receiver::receive`'s metric recording so the
                // streaming path feeds the same `cbma.rx.*` series.
                self.receiver.record_report_metrics(&result.report);
                let outcome = self.settle_round(
                    p.round,
                    p.start,
                    p.active,
                    p.payloads,
                    p.signal_meta,
                    p.iq,
                    result.report,
                    &mut p.fault_rng,
                );
                stats.record(&outcome);
                on_outcome(&outcome);
            }
            done += width;
        }
        stats
    }

    /// Mutual-coupling penalty for tag `i`: each active neighbour within
    /// the coupling radius multiplies the amplitude by a random factor in
    /// [0.15, 0.7] (§VII-C.1: "the distance between tags can be too small
    /// (smaller than half of wavelength). Then the interference between
    /// tags becomes large").
    fn coupling_penalty<R: Rng + ?Sized>(&self, i: usize, active: &[usize], rng: &mut R) -> f64 {
        if self.scenario.coupling_radius <= 0.0 {
            return 1.0;
        }
        let mut penalty = 1.0;
        let pos = self.tags[i].position();
        for &j in active {
            if j != i && self.tags[j].position().distance_to(pos) < self.scenario.coupling_radius {
                penalty *= rng.gen_range(0.05..0.6);
            }
        }
        penalty
    }

    /// The geometry-frozen carrier phase for a tag at `pos`, derived
    /// deterministically from the scenario seed and the position
    /// quantized to millimeters (a millimeter is ~2% of a wavelength at
    /// 2 GHz, fine enough to treat as static).
    fn static_phase(&self, pos: Point) -> f64 {
        let qx = (pos.x * 1000.0).round() as i64;
        let qy = (pos.y * 1000.0).round() as i64;
        let mut rng = self
            .seq
            .rng_indexed("static-phase", (qx as u64) ^ (qy as u64).rotate_left(32));
        rand::Rng::gen_range(&mut rng, 0.0..std::f64::consts::TAU)
    }

    /// Resets every tag's ACK statistics (start of an adaptation round).
    pub fn reset_tag_stats(&mut self) {
        for tag in &mut self.tags {
            tag.reset_stats();
        }
    }

    /// Moves a tag (node selection). Re-validating geometry is the
    /// caller's business; the engine accepts any position.
    ///
    /// # Panics
    ///
    /// Panics if `tag` is out of range.
    pub fn move_tag(&mut self, tag: usize, to: Point) {
        self.tags[tag].set_position(to);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;

    fn near_positions(n: usize) -> Vec<Point> {
        // Spread around the origin between ES and RX, comfortably apart.
        (0..n)
            .map(|i| Point::new(-0.3 + 0.2 * i as f64, if i % 2 == 0 { 0.35 } else { -0.35 }))
            .collect()
    }

    #[test]
    fn single_tag_clean_channel_always_delivers() {
        let mut engine = Engine::new(Scenario::clean(near_positions(1))).unwrap();
        let stats = engine.run_rounds(10);
        assert_eq!(stats.fer(), 0.0, "{stats:?}");
    }

    #[test]
    fn two_tag_collision_clean_channel_delivers_both() {
        let mut engine = Engine::new(Scenario::clean(near_positions(2))).unwrap();
        let outcome = engine.run_round();
        assert_eq!(outcome.active, vec![0, 1]);
        assert!(outcome.all_delivered(), "{outcome:?}");
    }

    #[test]
    fn five_tag_collision_paper_channel_mostly_delivers() {
        let mut engine = Engine::new(Scenario::paper_default(near_positions(5))).unwrap();
        // Uniform full power (the random boot states model the
        // pre-power-control near-far condition, which is not under test
        // here).
        for t in engine.tags_mut() {
            t.set_impedance(cbma_tag::ImpedanceState::Open);
        }
        let stats = engine.run_rounds(12);
        assert!(stats.fer() < 0.4, "fer = {} too high", stats.fer());
    }

    #[test]
    fn rounds_are_deterministic_in_seed() {
        // Fingerprint each round by the delivered set *and* the realized
        // channel (fading draw + start delay): at close range a good
        // receiver delivers every tag under both seeds, so `delivered`
        // alone cannot distinguish them.
        let run = |seed: u64| {
            let mut engine =
                Engine::new(Scenario::paper_default(near_positions(3)).with_seed(seed)).unwrap();
            (0..5)
                .map(|_| {
                    let outcome = engine.run_round();
                    let channel: Vec<(u64, u64)> = outcome
                        .signal_meta
                        .iter()
                        .map(|m| (m.fading_power.to_bits(), m.delay_samples.to_bits()))
                        .collect();
                    (outcome.delivered, channel)
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn coalesced_batches_match_sequential_rounds() {
        // The coalesced runner reorders work (generate-all, receive-all,
        // settle-all) but draws from the same per-round seed streams, so
        // every decision must match the sequential runner: realized
        // channels, delivered sets, ACK draws and tag statistics.
        // Detection correlations differ within FFT rounding, so the
        // comparison is decision-level, not RxReport float equality.
        let mut scenario = Scenario::paper_default(near_positions(3)).with_seed(11);
        scenario.mobility = Some(crate::faults::MobilityModel::new(
            0.05,
            cbma_types::geometry::Rect::office(),
        ));
        scenario.faults = crate::faults::FaultPlan::none()
            .with_ack_loss(0.3)
            .with_dead_tag(2, 4);
        let fingerprint = |o: &RoundOutcome| {
            let channel: Vec<(u64, u64)> = o
                .signal_meta
                .iter()
                .map(|m| (m.fading_power.to_bits(), m.delay_samples.to_bits()))
                .collect();
            (
                o.active.clone(),
                o.delivered.clone(),
                o.report.ack.iter().collect::<Vec<_>>(),
                o.bit_errors.clone(),
                channel,
            )
        };

        let mut seq = Engine::new(scenario.clone()).unwrap();
        let sequential: Vec<_> = (0..6).map(|_| fingerprint(&seq.run_round())).collect();

        let mut coal = Engine::new(scenario).unwrap();
        let all: Vec<usize> = (0..coal.tags().len()).collect();
        let mut coalesced = Vec::new();
        for width in [4usize, 2] {
            coalesced.extend(coal.run_round_batch(&all, width).iter().map(&fingerprint));
        }

        assert_eq!(sequential, coalesced);
        let stats = |e: &Engine| {
            e.tags()
                .iter()
                .map(|t| (t.packets_sent(), t.acks_received()))
                .collect::<Vec<_>>()
        };
        assert_eq!(stats(&seq), stats(&coal));
        let pos = |e: &Engine| e.tags().iter().map(|t| t.position()).collect::<Vec<_>>();
        assert_eq!(pos(&seq), pos(&coal));
    }

    #[test]
    fn streaming_matches_sequential_rounds() {
        // The streaming runtime calls the same monolithic receiver seams
        // block-by-block, so — unlike the coalesced path, which differs
        // within FFT rounding — its outcomes are *identical* to the
        // sequential runner, for every scheduler, block size and batch
        // width.
        let mut scenario = Scenario::paper_default(near_positions(3)).with_seed(23);
        scenario.mobility = Some(crate::faults::MobilityModel::new(
            0.05,
            cbma_types::geometry::Rect::office(),
        ));
        scenario.faults = crate::faults::FaultPlan::none()
            .with_ack_loss(0.25)
            .with_dead_tag(1, 3);

        let mut seq = Engine::new(scenario.clone()).unwrap();
        let sequential = seq.run_rounds(5);
        let stats = |e: &Engine| {
            e.tags()
                .iter()
                .map(|t| (t.packets_sent(), t.acks_received(), t.position()))
                .collect::<Vec<_>>()
        };

        for (scheduler, block_size, width) in [
            (Scheduler::Inline, 257, 2),
            (Scheduler::ThreadPerStage, 1024, 5),
        ] {
            let mut streaming = Engine::new(scenario.clone()).unwrap();
            let cfg = StreamingConfig {
                width,
                block_size,
                ring_capacity: 2,
                scheduler,
            };
            let run = streaming.run_streaming(5, &cfg);
            assert_eq!(run, sequential, "{scheduler:?} block={block_size}");
            assert_eq!(stats(&streaming), stats(&seq), "{scheduler:?}");
        }
    }

    #[test]
    fn subset_rounds_only_involve_active_tags() {
        let mut engine = Engine::new(Scenario::clean(near_positions(4))).unwrap();
        let outcome = engine.run_round_subset(&[1, 3]);
        assert_eq!(outcome.active, vec![1, 3]);
        assert!(outcome.delivered.iter().all(|&i| i == 1 || i == 3));
        // ACK bookkeeping only touches active tags.
        assert_eq!(engine.tags()[0].packets_sent(), 0);
        assert_eq!(engine.tags()[1].packets_sent(), 1);
    }

    #[test]
    fn payloads_are_unique_per_tag_and_round() {
        let engine = Engine::new(Scenario::clean(near_positions(2))).unwrap();
        assert_ne!(engine.payload_for(0, 0), engine.payload_for(1, 0));
        assert_ne!(engine.payload_for(0, 0), engine.payload_for(0, 1));
        assert_eq!(engine.payload_for(1, 7), engine.payload_for(1, 7));
        assert_eq!(engine.payload_for(1, 7).len(), 8);
    }

    #[test]
    fn ack_statistics_accumulate() {
        let mut engine = Engine::new(Scenario::clean(near_positions(1))).unwrap();
        engine.run_rounds(5);
        assert_eq!(engine.tags()[0].packets_sent(), 5);
        assert_eq!(engine.tags()[0].acks_received(), 5);
        engine.reset_tag_stats();
        assert_eq!(engine.tags()[0].packets_sent(), 0);
    }

    #[test]
    fn weak_far_tag_fails_until_near() {
        // A tag at the far corner of the office under the weakest
        // impedance state should mostly fail; moved near, it succeeds.
        let mut scenario = Scenario::paper_default(vec![Point::new(2.0, 3.0)]);
        scenario.multipath = cbma_channel::MultipathModel::disabled();
        let mut engine = Engine::new(scenario).unwrap();
        engine.tags_mut()[0].set_impedance(cbma_tag::ImpedanceState::Inductor2nH);
        let far = engine.run_rounds(8);
        engine.move_tag(0, Point::new(0.0, 0.3));
        engine.tags_mut()[0].set_impedance(cbma_tag::ImpedanceState::Open);
        let near = engine.run_rounds(8);
        assert!(
            near.fer() < far.fer() || far.fer() == 0.0,
            "near {} vs far {}",
            near.fer(),
            far.fer()
        );
    }

    #[test]
    fn dead_tags_stop_transmitting() {
        let mut scenario = Scenario::clean(near_positions(2));
        scenario.faults = crate::faults::FaultPlan::none().with_dead_tag(1, 3);
        let mut engine = Engine::new(scenario).unwrap();
        engine.run_rounds(6);
        // Tag 1 transmitted only in rounds 0..3.
        assert_eq!(engine.tags()[0].packets_sent(), 6);
        assert_eq!(engine.tags()[1].packets_sent(), 3);
    }

    #[test]
    fn lost_acks_hide_deliveries_from_the_tag() {
        let mut scenario = Scenario::clean(near_positions(1));
        scenario.faults = crate::faults::FaultPlan::none().with_ack_loss(1.0);
        let mut engine = Engine::new(scenario).unwrap();
        let stats = engine.run_rounds(5);
        // The receiver decoded everything …
        assert_eq!(stats.total_delivered(), 5);
        // … but the tag heard none of the ACKs.
        assert_eq!(engine.tags()[0].acks_received(), 0);
    }

    #[test]
    fn mobility_moves_tags_each_round() {
        let mut scenario = Scenario::clean(near_positions(2));
        scenario.mobility = Some(crate::faults::MobilityModel::new(
            0.05,
            cbma_types::geometry::Rect::office(),
        ));
        let mut engine = Engine::new(scenario).unwrap();
        let before: Vec<Point> = engine.tags().iter().map(|t| t.position()).collect();
        engine.run_rounds(4);
        let after: Vec<Point> = engine.tags().iter().map(|t| t.position()).collect();
        for (b, a) in before.iter().zip(&after) {
            assert_ne!(b, a, "tag did not move");
            assert!(b.distance_to(*a) <= 4.0 * 0.05 + 1e-9);
        }
    }

    #[test]
    fn observability_records_metrics_and_round_events() {
        use cbma_obs::{FieldValue, RecordingSink};

        let registry = MetricsRegistry::new();
        let sink = Arc::new(RecordingSink::new());
        let mut engine = Engine::new(Scenario::clean(near_positions(2))).unwrap();
        engine.attach_observability(&registry);
        engine.set_sink(sink.clone());
        engine.run_rounds(3);

        let snap = registry.snapshot();
        assert_eq!(snap.counters["cbma.sim.rounds"], 3);
        assert_eq!(snap.counters["cbma.sim.frames_sent"], 6);
        assert_eq!(snap.counters["cbma.sim.frames_delivered"], 6);
        // The inner receiver records into the same registry.
        assert_eq!(snap.counters["cbma.rx.captures"], 3);
        assert_eq!(snap.histograms["cbma.sim.round_ns"].count, 3);
        assert_eq!(snap.gauges["cbma.sim.active_tags"], 2.0);
        assert_eq!(snap.gauges["cbma.sim.delivery_ratio"], 1.0);

        let events = sink.take();
        assert_eq!(events.len(), 3);
        assert!(events.iter().all(|e| e.name == "cbma.sim.round"));
        assert_eq!(events[0].field_u64("round"), Some(0));
        assert_eq!(events[2].field_u64("round"), Some(2));
        assert_eq!(
            events[0].field("active"),
            Some(&FieldValue::List(vec![0, 1]))
        );
        assert_eq!(
            events[0].field("delivered"),
            Some(&FieldValue::List(vec![0, 1]))
        );
    }

    #[test]
    fn attached_tracer_nests_captures_under_round_spans() {
        let tracer = Tracer::new(4096);
        let mut engine = Engine::new(Scenario::clean(near_positions(2))).unwrap();
        engine.attach_tracer(&tracer);
        engine.run_rounds(2);

        let spans = tracer.spans();
        let rounds: Vec<_> = spans.iter().filter(|s| s.name == "round").collect();
        assert_eq!(rounds.len(), 2);
        assert_eq!(rounds[0].arg, Some(0));
        assert_eq!(rounds[1].arg, Some(1));
        // Each round is its own trace, with its capture span nested inside.
        for round in rounds {
            let capture = spans
                .iter()
                .find(|s| s.name == "capture" && s.trace == round.trace)
                .expect("capture span in round trace");
            assert_eq!(capture.parent, round.span);
            assert!(capture.start_ns >= round.start_ns);
            assert!(capture.start_ns + capture.dur_ns <= round.start_ns + round.dur_ns);
        }
        // The export is one valid Chrome trace-event document.
        let json = tracer.chrome_trace(None);
        assert!(cbma_obs::json::JsonValue::parse(&json).is_ok());
    }

    #[test]
    fn default_sink_is_disabled_and_rounds_are_unchanged() {
        let mut plain = Engine::new(Scenario::clean(near_positions(2))).unwrap();
        let mut wired = Engine::new(Scenario::clean(near_positions(2))).unwrap();
        assert!(!wired.sink().enabled());
        let registry = MetricsRegistry::new();
        wired.attach_observability(&registry);
        // Observability must not perturb the simulation itself.
        for _ in 0..3 {
            let a = plain.run_round();
            let b = wired.run_round();
            assert_eq!(a.delivered, b.delivered);
            assert_eq!(a.active, b.active);
        }
    }

    #[test]
    fn coupled_tags_suffer() {
        // Two tags 2 cm apart (within λ/2) versus 40 cm apart.
        let coupled = {
            let mut e = Engine::new(Scenario::paper_default(vec![
                Point::new(0.0, 0.30),
                Point::new(0.02, 0.30),
            ]))
            .unwrap();
            e.run_rounds(40).fer()
        };
        let separated = {
            let mut e = Engine::new(Scenario::paper_default(vec![
                Point::new(0.0, 0.30),
                Point::new(0.0, -0.30),
            ]))
            .unwrap();
            e.run_rounds(40).fer()
        };
        assert!(
            coupled > separated,
            "coupling should hurt: coupled {coupled} vs separated {separated}"
        );
    }
}
