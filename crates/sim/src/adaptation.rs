//! Closed-loop adaptation: Algorithm 1 power control and §V-C node
//! selection, driven by live engine feedback.
//!
//! [`Adapter`] wraps an [`Engine`] and reproduces the deployment procedure
//! of §VII-C.1: run a batch of packets, feed the per-tag ACK ratios to the
//! power controller, step the starving tags' impedances, and — when power
//! control saturates — hand the persistently bad tags (ACK < 70 %) to the
//! node selector, which swaps them against idle candidate positions.

use rand::Rng;

use cbma_mac::node_selection::{NodeSelector, BAD_TAG_ACK_THRESHOLD};
use cbma_mac::power_control::{PowerController, RoundObservation};
use cbma_types::geometry::Point;
use cbma_types::SeedSequence;

use crate::engine::Engine;
use crate::stats::RunStats;

/// What an adaptation pass did.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptationReport {
    /// FER measured in each control round, in order.
    pub fer_history: Vec<f64>,
    /// Total impedance steps applied.
    pub impedance_steps: usize,
    /// Tags relocated by node selection (tag index, old, new position).
    pub relocations: Vec<(usize, Point, Point)>,
    /// Final statistics after adaptation settled.
    pub final_stats: RunStats,
}

impl AdaptationReport {
    /// FER of the final measurement batch.
    pub fn final_fer(&self) -> f64 {
        self.final_stats.fer()
    }
}

/// The closed-loop adaptation driver.
#[derive(Debug)]
pub struct Adapter {
    packets_per_round: usize,
    fer_threshold: f64,
}

impl Adapter {
    /// Creates an adapter measuring `packets_per_round` collided packets
    /// per control round, targeting the given FER.
    ///
    /// # Panics
    ///
    /// Panics if `packets_per_round` is zero or the threshold is outside
    /// (0, 1).
    pub fn new(packets_per_round: usize, fer_threshold: f64) -> Adapter {
        assert!(packets_per_round > 0, "need at least one packet per round");
        assert!(
            fer_threshold > 0.0 && fer_threshold < 1.0,
            "threshold must be in (0, 1)"
        );
        Adapter {
            packets_per_round,
            fer_threshold,
        }
    }

    /// The paper's configuration: 10 % FER target.
    pub fn paper_default(packets_per_round: usize) -> Adapter {
        Adapter::new(packets_per_round, 0.1)
    }

    /// Runs Algorithm 1 to convergence (stable round, FER under target, or
    /// cycle budget exhausted). Returns the control history and the final
    /// measurement batch.
    pub fn run_power_control(&self, engine: &mut Engine) -> AdaptationReport {
        let n = engine.tags().len();
        let mut pc = PowerController::new(n, self.fer_threshold);
        let mut fer_history = Vec::new();
        let mut impedance_steps = 0usize;
        let sink = engine.sink().clone();

        loop {
            engine.reset_tag_stats();
            let batch = self.measure(engine);
            let obs = RoundObservation::from_ack_ratios(&batch.ack_ratios());
            let decision = pc.round(&obs);
            fer_history.push(decision.fer);
            if sink.enabled() {
                // One Algorithm 1 state transition: measured FER, the
                // actuation set, and how the controller left the round.
                sink.record(
                    cbma_obs::Event::new("cbma.sim.power_control")
                        .with("cycle", fer_history.len() - 1)
                        .with("fer", decision.fer)
                        .with("stepped", &decision.step_impedance)
                        .with("stable", decision.is_stable())
                        .with("exhausted", decision.exhausted),
                );
            }
            if decision.is_stable() || decision.exhausted {
                return AdaptationReport {
                    fer_history,
                    impedance_steps,
                    relocations: Vec::new(),
                    final_stats: batch,
                };
            }
            for &i in &decision.step_impedance {
                engine.tags_mut()[i].step_impedance();
                impedance_steps += 1;
            }
        }
    }

    /// Runs power control, then node selection for tags whose ACK ratio is
    /// still below 70 %, then a final power-control pass at the new
    /// positions.
    pub fn run_with_node_selection(
        &self,
        engine: &mut Engine,
        idle_positions: &[Point],
    ) -> AdaptationReport {
        let first = self.run_power_control(engine);
        let ratios = first.final_stats.ack_ratios();
        let bad: Vec<usize> = ratios
            .iter()
            .enumerate()
            .filter(|(_, &r)| r < BAD_TAG_ACK_THRESHOLD)
            .map(|(i, _)| i)
            .collect();
        if bad.is_empty() || idle_positions.is_empty() {
            return first;
        }

        let scenario = engine.scenario();
        let mut selector = NodeSelector::new(scenario.link, scenario.es, scenario.rx);
        let seq = SeedSequence::new(scenario.seed ^ 0x5E1E_C7ED);
        let mut rng = seq.rng("node-selection");
        let mut group: Vec<Point> = engine.tags().iter().map(|t| t.position()).collect();
        let mut pool: Vec<Point> = idle_positions.to_vec();
        let mut relocations = Vec::new();

        for &b in &bad {
            if pool.is_empty() {
                break;
            }
            let old = group[b];
            if let Some(promoted) = selector.replace_bad_tag(&mut rng, &mut group, b, &pool) {
                let new_pos = group[b];
                pool.swap_remove(promoted);
                relocations.push((b, old, new_pos));
            } else if let Some(anywhere) =
                self.fallback_position(&mut rng, &selector, &group, b, &pool)
            {
                // "when there are not enough tags to choose from … we have
                // to change the positions of those 'bad' tags" — force the
                // best available swap even if the annealing pass declined.
                let new_pos = pool[anywhere];
                group[b] = new_pos;
                pool.swap_remove(anywhere);
                relocations.push((b, old, new_pos));
            }
        }
        for (i, &pos) in group.iter().enumerate() {
            engine.move_tag(i, pos);
        }
        let sink = engine.sink().clone();
        if sink.enabled() {
            for &(tag, old, new) in &relocations {
                sink.record(
                    cbma_obs::Event::new("cbma.sim.node_selection")
                        .with("tag", tag)
                        .with("old_x", old.x)
                        .with("old_y", old.y)
                        .with("new_x", new.x)
                        .with("new_y", new.y),
                );
            }
        }

        // Re-run power control at the new geometry; boot relocated tags at
        // full power.
        for &(i, _, _) in &relocations {
            engine.tags_mut()[i].set_impedance(cbma_tag::ImpedanceState::Open);
        }
        let mut second = self.run_power_control(engine);
        second.relocations = relocations;
        second.fer_history = first
            .fer_history
            .iter()
            .chain(second.fer_history.iter())
            .copied()
            .collect();
        second.impedance_steps += first.impedance_steps;
        second
    }

    /// Picks the best-scoring pool position that honours the exclusion
    /// radius, if the annealing pass rejected everything.
    fn fallback_position<R: Rng + ?Sized>(
        &self,
        _rng: &mut R,
        selector: &NodeSelector,
        group: &[Point],
        bad: usize,
        pool: &[Point],
    ) -> Option<usize> {
        let others: Vec<Point> = group
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != bad)
            .map(|(_, p)| *p)
            .collect();
        pool.iter()
            .enumerate()
            .filter(|(_, &p)| {
                others
                    .iter()
                    .all(|o| o.distance_to(p) >= selector.exclusion_radius())
            })
            .max_by(|a, b| {
                selector
                    .score(*a.1)
                    .partial_cmp(&selector.score(*b.1))
                    .expect("scores are finite")
            })
            .map(|(i, _)| i)
    }

    /// Measures one batch of collided packets.
    fn measure(&self, engine: &mut Engine) -> RunStats {
        engine.run_rounds(self.packets_per_round)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;
    use cbma_tag::ImpedanceState;

    #[test]
    fn healthy_deployment_converges_immediately() {
        let scenario = Scenario::clean(vec![Point::new(0.0, 0.3), Point::new(0.0, -0.3)]);
        let mut engine = Engine::new(scenario).unwrap();
        let adapter = Adapter::paper_default(6);
        let report = adapter.run_power_control(&mut engine);
        assert_eq!(report.impedance_steps, 0);
        assert_eq!(report.fer_history.len(), 1);
        assert!(report.final_fer() < 0.1);
    }

    #[test]
    fn starving_tag_gets_impedance_steps() {
        // One healthy tag plus one weak-booted tag buried under a strong
        // neighbour: the starving tag (ACK < 50 %) must be stepped.
        let scenario = Scenario::paper_default(vec![Point::new(0.0, 0.35), Point::new(0.55, 0.85)]);
        let mut engine = Engine::new(scenario).unwrap();
        engine.tags_mut()[0].set_impedance(ImpedanceState::Open);
        engine.tags_mut()[1].set_impedance(ImpedanceState::Inductor2nH);
        let adapter = Adapter::paper_default(10);
        let report = adapter.run_power_control(&mut engine);
        assert!(!report.fer_history.is_empty());
        // The weak tag either starved (steps applied) or its link was
        // already good enough; in the starving case the loop must have
        // actuated and then terminated.
        if report.fer_history[0] > 0.25 {
            assert!(
                report.impedance_steps > 0,
                "starving deployment must actuate: {report:?}"
            );
        }
        assert!(
            engine.tags()[1].impedance() != ImpedanceState::Inductor2nH
                || report.impedance_steps == 0
                || report.fer_history.len() > 1,
            "stepping should move the weak tag's state"
        );
    }

    #[test]
    fn power_control_terminates_within_budget() {
        // A hopeless deployment (tag far outside the office, heavy noise)
        // must stop at the 3n cycle cap instead of looping forever.
        let mut scenario = Scenario::paper_default(vec![Point::new(10.0, 10.0)]);
        scenario.noise = cbma_channel::NoiseModel::new(
            cbma_types::units::Db::new(10.0),
            cbma_types::units::Dbm::new(-60.0),
        );
        let mut engine = Engine::new(scenario).unwrap();
        let adapter = Adapter::paper_default(3);
        let report = adapter.run_power_control(&mut engine);
        // 3 tags... n = 1 → cycle cap 3 → at most 4 rounds of history.
        assert!(report.fer_history.len() <= 4);
        assert!(report.final_fer() > 0.5, "deployment should still be bad");
    }

    #[test]
    fn node_selection_rescues_a_hopeless_tag() {
        // One good tag, one tag far in the corner; idle positions exist
        // near the receiver.
        let scenario =
            Scenario::paper_default(vec![Point::new(0.0, 0.3), Point::new(1.9, 2.9)]).with_seed(7);
        let mut engine = Engine::new(scenario).unwrap();
        let adapter = Adapter::paper_default(8);
        let idle = vec![Point::new(0.2, -0.35), Point::new(-0.25, 0.4)];
        let report = adapter.run_with_node_selection(&mut engine, &idle);
        // The hopeless far tag must have been relocated.
        let moved = report
            .relocations
            .iter()
            .find(|&&(t, _, _)| t == 1)
            .copied();
        let (_, old, new) = moved.expect("tag 1 should be relocated");
        assert_ne!(old, new);
        assert_eq!(engine.tags()[1].position(), new);
        // The adapted deployment must beat the initial hopeless one.
        assert!(report.final_fer() < 0.5, "fer {}", report.final_fer());
    }

    #[test]
    fn node_selection_without_candidates_is_power_control_only() {
        let scenario = Scenario::paper_default(vec![Point::new(1.9, 2.9)]);
        let mut engine = Engine::new(scenario).unwrap();
        let adapter = Adapter::paper_default(4);
        let report = adapter.run_with_node_selection(&mut engine, &[]);
        assert!(report.relocations.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one packet")]
    fn zero_packets_per_round_panics() {
        Adapter::new(0, 0.1);
    }

    #[test]
    fn power_control_emits_one_event_per_control_round() {
        use cbma_obs::{FieldValue, RecordingSink};
        use std::sync::Arc;

        let scenario = Scenario::paper_default(vec![Point::new(0.0, 0.35), Point::new(0.55, 0.85)]);
        let mut engine = Engine::new(scenario).unwrap();
        engine.tags_mut()[0].set_impedance(ImpedanceState::Open);
        engine.tags_mut()[1].set_impedance(ImpedanceState::Inductor2nH);
        let sink = Arc::new(RecordingSink::new());
        engine.set_sink(sink.clone());
        let adapter = Adapter::paper_default(10);
        let report = adapter.run_power_control(&mut engine);

        let events: Vec<_> = sink
            .take()
            .into_iter()
            .filter(|e| e.name == "cbma.sim.power_control")
            .collect();
        assert_eq!(events.len(), report.fer_history.len());
        for (k, (event, &fer)) in events.iter().zip(&report.fer_history).enumerate() {
            assert_eq!(event.field_u64("cycle"), Some(k as u64));
            assert_eq!(event.field("fer"), Some(&FieldValue::F64(fer)));
        }
        // The loop terminates on a stable or exhausted transition.
        let last = events.last().unwrap();
        assert!(
            last.field("stable") == Some(&FieldValue::Bool(true))
                || last.field("exhausted") == Some(&FieldValue::Bool(true)),
            "{last:?}"
        );
    }
}
