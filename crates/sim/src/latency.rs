//! Delivery-latency and data-freshness statistics.
//!
//! FER alone hides *when* a tag's data gets through: a sensor that fails
//! ten rounds in a row is worse than one failing every other round at the
//! same FER (the paper's smart-home motivation is fresh sensor readings).
//! [`LatencyTracker`] records per-tag delivery rounds and reports
//! inter-delivery gaps — the age-of-information view of the same runs.

use crate::engine::RoundOutcome;

/// Per-tag delivery timing over a run.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyTracker {
    /// Round indices at which each tag delivered.
    deliveries: Vec<Vec<u64>>,
    rounds: u64,
}

impl LatencyTracker {
    /// Creates a tracker for `n_tags` tags.
    pub fn new(n_tags: usize) -> LatencyTracker {
        LatencyTracker {
            deliveries: vec![Vec::new(); n_tags],
            rounds: 0,
        }
    }

    /// Records one round.
    pub fn record(&mut self, outcome: &RoundOutcome) {
        for &i in &outcome.delivered {
            self.deliveries[i].push(self.rounds);
        }
        self.rounds += 1;
    }

    /// Rounds observed.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// The round of a tag's first delivery, if any.
    pub fn first_delivery(&self, tag: usize) -> Option<u64> {
        self.deliveries[tag].first().copied()
    }

    /// The largest gap (in rounds) between consecutive deliveries for a
    /// tag, counting the lead-in before the first delivery and the tail
    /// after the last one. `None` if the tag never delivered.
    pub fn worst_gap(&self, tag: usize) -> Option<u64> {
        let d = &self.deliveries[tag];
        let first = *d.first()?;
        let mut worst = first + 1; // rounds waited until the first delivery
        for w in d.windows(2) {
            worst = worst.max(w[1] - w[0]);
        }
        worst = worst.max(self.rounds - d.last()?);
        Some(worst)
    }

    /// Mean rounds between consecutive deliveries for a tag (`None` with
    /// fewer than two deliveries).
    pub fn mean_gap(&self, tag: usize) -> Option<f64> {
        let d = &self.deliveries[tag];
        if d.len() < 2 {
            return None;
        }
        Some((*d.last()? - *d.first()?) as f64 / (d.len() - 1) as f64)
    }

    /// Mean age of information over the run for a tag: the time-average
    /// of "rounds since the last delivery", in rounds. `None` if the tag
    /// never delivered.
    pub fn mean_age(&self, tag: usize) -> Option<f64> {
        let d = &self.deliveries[tag];
        let first = *d.first()?;
        // Age ramps 1,2,…,g over a gap of g rounds: sum = g(g+1)/2.
        let ramp = |g: u64| (g * (g + 1)) as f64 / 2.0;
        let mut total = ramp(first); // before the first delivery
        for w in d.windows(2) {
            total += ramp(w[1] - w[0]);
        }
        total += ramp(self.rounds - d.last()?);
        Some(total / self.rounds.max(1) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbma_rx::RxReport;

    fn outcome(active: Vec<usize>, delivered: Vec<usize>) -> RoundOutcome {
        RoundOutcome {
            active,
            delivered,
            report: RxReport::default(),
            bit_errors: Vec::new(),
            signal_meta: Vec::new(),
            iq: None,
        }
    }

    fn tracked(pattern: &[bool]) -> LatencyTracker {
        let mut t = LatencyTracker::new(1);
        for &hit in pattern {
            t.record(&outcome(vec![0], if hit { vec![0] } else { vec![] }));
        }
        t
    }

    #[test]
    fn every_round_delivery_has_unit_gaps() {
        let t = tracked(&[true; 6]);
        assert_eq!(t.first_delivery(0), Some(0));
        assert_eq!(t.worst_gap(0), Some(1));
        assert_eq!(t.mean_gap(0), Some(1.0));
        // Age alternates 0→1 sampled at end of each round: mean 1·6/6...
        // each gap of 1 contributes ramp(1)=1 → total 6/6 = 1.
        assert_eq!(t.mean_age(0), Some(1.0));
    }

    #[test]
    fn a_burst_outage_shows_in_worst_gap() {
        // Delivered in rounds 0 and 5 of 7.
        let t = tracked(&[true, false, false, false, false, true, false]);
        assert_eq!(t.worst_gap(0), Some(5));
        assert_eq!(t.mean_gap(0), Some(5.0));
    }

    #[test]
    fn never_delivered_is_none() {
        let t = tracked(&[false; 4]);
        assert_eq!(t.first_delivery(0), None);
        assert_eq!(t.worst_gap(0), None);
        assert_eq!(t.mean_gap(0), None);
        assert_eq!(t.mean_age(0), None);
    }

    #[test]
    fn late_first_delivery_counts_as_a_gap() {
        let t = tracked(&[false, false, true, true]);
        assert_eq!(t.first_delivery(0), Some(2));
        // Waited 3 rounds for the first delivery; tail gap is 1.
        assert_eq!(t.worst_gap(0), Some(3));
    }

    #[test]
    fn same_fer_different_freshness() {
        // Two tags at 50% FER: one alternates, one bursts. The
        // alternating tag is fresher.
        let alternating = tracked(&[true, false, true, false, true, false, true, false]);
        let bursty = tracked(&[true, true, true, true, false, false, false, false]);
        let age_alt = alternating.mean_age(0).unwrap();
        let age_burst = bursty.mean_age(0).unwrap();
        assert!(
            age_alt < age_burst,
            "alternating age {age_alt} should beat bursty {age_burst}"
        );
    }

    #[test]
    fn multi_tag_tracking() {
        let mut t = LatencyTracker::new(2);
        t.record(&outcome(vec![0, 1], vec![0]));
        t.record(&outcome(vec![0, 1], vec![0, 1]));
        assert_eq!(t.first_delivery(0), Some(0));
        assert_eq!(t.first_delivery(1), Some(1));
        assert_eq!(t.rounds(), 2);
    }
}
