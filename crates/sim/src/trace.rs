//! Round-trace record and replay.
//!
//! §VIII-C: "even in our emulation tests, we still utilize the real trace
//! data delivered by the real field deployment tests". Our substitute is a
//! first-class trace facility: every round's active set, delivered set and
//! detection outcome can be recorded, serialized to a simple line-oriented
//! text format, and replayed to verify that a simulation is bit-for-bit
//! reproducible (or to feed recorded delivery patterns into higher-level
//! analyses without re-running the PHY).

use cbma_types::{CbmaError, Result};

use crate::engine::RoundOutcome;

/// One recorded round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundRecord {
    /// Round index.
    pub round: u64,
    /// Tags that transmitted.
    pub active: Vec<usize>,
    /// Tags whose frames were delivered.
    pub delivered: Vec<usize>,
    /// Whether the receiver detected a frame at all.
    pub frame_detected: bool,
}

impl RoundRecord {
    /// Captures an engine outcome.
    pub fn from_outcome(round: u64, outcome: &RoundOutcome) -> RoundRecord {
        RoundRecord {
            round,
            active: outcome.active.clone(),
            delivered: outcome.delivered.clone(),
            frame_detected: outcome.report.frame_detected,
        }
    }
}

/// A recorded run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Trace {
    records: Vec<RoundRecord>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Trace {
        Trace::default()
    }

    /// Appends a record.
    pub fn push(&mut self, record: RoundRecord) {
        self.records.push(record);
    }

    /// Records an outcome with the next round index.
    pub fn record(&mut self, outcome: &RoundOutcome) {
        let round = self.records.len() as u64;
        self.push(RoundRecord::from_outcome(round, outcome));
    }

    /// The recorded rounds.
    pub fn records(&self) -> &[RoundRecord] {
        &self.records
    }

    /// Number of rounds recorded.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Overall FER implied by the trace.
    pub fn fer(&self) -> f64 {
        let sent: usize = self.records.iter().map(|r| r.active.len()).sum();
        if sent == 0 {
            return 0.0;
        }
        let delivered: usize = self.records.iter().map(|r| r.delivered.len()).sum();
        1.0 - delivered as f64 / sent as f64
    }

    /// Serializes to the line format
    /// `round|detected|active,…|delivered,…`.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            let active = r
                .active
                .iter()
                .map(|i| i.to_string())
                .collect::<Vec<_>>()
                .join(",");
            let delivered = r
                .delivered
                .iter()
                .map(|i| i.to_string())
                .collect::<Vec<_>>()
                .join(",");
            out.push_str(&format!(
                "{}|{}|{}|{}\n",
                r.round,
                u8::from(r.frame_detected),
                active,
                delivered
            ));
        }
        out
    }

    /// Parses the [`to_text`](Trace::to_text) format.
    ///
    /// Tolerates blank lines and CRLF line endings (traces copied through
    /// Windows tooling); everything else malformed — wrong field count,
    /// non-numeric indices, an unknown detected flag, stray whitespace
    /// inside fields — is rejected with a line-numbered error rather than
    /// silently skipped, so a corrupted trace cannot masquerade as a
    /// shorter clean one.
    ///
    /// # Errors
    ///
    /// Returns [`CbmaError::MalformedFrame`] describing the offending line
    /// when the text is not valid trace format.
    pub fn from_text(text: &str) -> Result<Trace> {
        let mut records = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            // `str::lines` splits on '\n' only; shed the '\r' of CRLF.
            let line = line.strip_suffix('\r').unwrap_or(line);
            if line.trim().is_empty() {
                continue;
            }
            let parts: Vec<&str> = line.split('|').collect();
            if parts.len() != 4 {
                return Err(CbmaError::MalformedFrame(format!(
                    "trace line {} has {} fields, expected 4",
                    lineno + 1,
                    parts.len()
                )));
            }
            let parse_list = |s: &str| -> Result<Vec<usize>> {
                if s.is_empty() {
                    return Ok(Vec::new());
                }
                s.split(',')
                    .map(|t| {
                        t.parse::<usize>().map_err(|_| {
                            CbmaError::MalformedFrame(format!(
                                "trace line {}: bad index {t:?}",
                                lineno + 1
                            ))
                        })
                    })
                    .collect()
            };
            let round = parts[0].parse::<u64>().map_err(|_| {
                CbmaError::MalformedFrame(format!("trace line {}: bad round", lineno + 1))
            })?;
            let frame_detected = match parts[1] {
                "0" => false,
                "1" => true,
                other => {
                    return Err(CbmaError::MalformedFrame(format!(
                        "trace line {}: bad detected flag {other:?}",
                        lineno + 1
                    )))
                }
            };
            records.push(RoundRecord {
                round,
                frame_detected,
                active: parse_list(parts[2])?,
                delivered: parse_list(parts[3])?,
            });
        }
        Ok(Trace { records })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbma_rx::RxReport;

    fn outcome(active: Vec<usize>, delivered: Vec<usize>, detected: bool) -> RoundOutcome {
        let report = RxReport {
            frame_detected: detected,
            ..RxReport::default()
        };
        RoundOutcome {
            active,
            delivered,
            report,
            bit_errors: Vec::new(),
            signal_meta: Vec::new(),
            iq: None,
        }
    }

    #[test]
    fn text_round_trip() {
        let mut trace = Trace::new();
        trace.record(&outcome(vec![0, 1, 2], vec![0, 2], true));
        trace.record(&outcome(vec![0, 1], vec![], false));
        trace.record(&outcome(vec![], vec![], false));
        let text = trace.to_text();
        let parsed = Trace::from_text(&text).unwrap();
        assert_eq!(parsed, trace);
    }

    #[test]
    fn fer_from_trace() {
        let mut trace = Trace::new();
        trace.record(&outcome(vec![0, 1], vec![0], true));
        trace.record(&outcome(vec![0, 1], vec![0, 1], true));
        assert!((trace.fer() - 0.25).abs() < 1e-12);
        assert_eq!(Trace::new().fer(), 0.0);
    }

    #[test]
    fn malformed_lines_are_rejected() {
        assert!(Trace::from_text("1|1|0").is_err()); // 3 fields
        assert!(Trace::from_text("x|1||").is_err()); // bad round
        assert!(Trace::from_text("1|2||").is_err()); // bad flag
        assert!(Trace::from_text("1|1|a,b|").is_err()); // bad index
        assert!(Trace::from_text("1|1|0,|").is_err()); // trailing comma
        assert!(Trace::from_text("1|1| 0|").is_err()); // inner whitespace
        assert!(Trace::from_text("1|1|0|0|extra").is_err()); // 5 fields
        assert!(Trace::from_text("-1|1|0|0").is_err()); // negative round
        assert!(Trace::from_text("1|1|-2|").is_err()); // negative index
    }

    #[test]
    fn malformed_errors_name_the_line() {
        let err = Trace::from_text("0|1|0|0\nbroken\n").unwrap_err();
        let msg = format!("{err}");
        assert!(msg.contains("line 2"), "error should locate the line: {msg}");
    }

    #[test]
    fn crlf_traces_parse() {
        let trace = Trace::from_text("0|1|0,1|0\r\n1|0||\r\n").unwrap();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.records()[0].active, vec![0, 1]);
        assert!(!trace.records()[1].frame_detected);
        // And the round-trip through to_text is still identical.
        assert_eq!(Trace::from_text(&trace.to_text()).unwrap(), trace);
    }

    #[test]
    fn blank_lines_are_skipped() {
        let trace = Trace::from_text("\n0|1|0|0\n\n").unwrap();
        assert_eq!(trace.len(), 1);
        assert!(!trace.is_empty());
    }

    #[test]
    fn records_accessor() {
        let mut trace = Trace::new();
        trace.record(&outcome(vec![3], vec![3], true));
        assert_eq!(trace.records()[0].active, vec![3]);
        assert_eq!(trace.records()[0].round, 0);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// `from_text ∘ to_text` is the identity on arbitrary traces.
        #[test]
        fn to_text_from_text_identity(
            rounds in proptest::collection::vec(
                (
                    0u64..100_000,
                    proptest::strategy::any::<bool>(),
                    proptest::collection::vec(0usize..256, 0..10),
                    proptest::collection::vec(0usize..256, 0..10),
                ),
                0..24,
            )
        ) {
            let mut trace = Trace::new();
            for (round, frame_detected, active, delivered) in rounds {
                trace.push(RoundRecord {
                    round,
                    active,
                    delivered,
                    frame_detected,
                });
            }
            let text = trace.to_text();
            let parsed = Trace::from_text(&text).expect("serialized traces parse");
            prop_assert_eq!(parsed, trace);
        }

        /// Parsing never panics on arbitrary junk — it returns a trace or
        /// a structured error.
        #[test]
        fn from_text_is_panic_free(text in proptest::collection::vec(0u8..128, 0..200)) {
            let text = String::from_utf8_lossy(&text).into_owned();
            let _ = Trace::from_text(&text);
        }
    }
}
