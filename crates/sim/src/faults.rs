//! Failure injection and tag mobility.
//!
//! Real deployments lose tags (battery-free does not mean failure-free)
//! and lose downlink ACKs; and §VIII-D notes "if the tag is moving, the
//! starvation problem can be alleviated". [`FaultPlan`] injects tag
//! deaths and ACK losses into the engine; [`MobilityModel`] applies a
//! bounded random walk so positions (and with them the position-frozen
//! shadowing and carrier phases) evolve over rounds.

use rand::Rng;

use cbma_types::geometry::{Point, Rect};

/// Injected failures for a scenario.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Per-tag death round: a tag stops transmitting from that round on.
    /// Shorter than the tag count means the remaining tags never die.
    pub dead_from_round: Vec<Option<u64>>,
    /// Probability that a broadcast ACK fails to reach a tag (the frame
    /// still counts as delivered at the receiver, but the tag's power-
    /// control statistics miss the feedback).
    pub ack_loss_probability: f64,
}

impl FaultPlan {
    /// No failures.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Marks one tag dead from `round`.
    pub fn with_dead_tag(mut self, tag: usize, round: u64) -> FaultPlan {
        if self.dead_from_round.len() <= tag {
            self.dead_from_round.resize(tag + 1, None);
        }
        self.dead_from_round[tag] = Some(round);
        self
    }

    /// Sets the ACK loss probability.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside [0, 1].
    pub fn with_ack_loss(mut self, p: f64) -> FaultPlan {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        self.ack_loss_probability = p;
        self
    }

    /// Whether `tag` is dead at `round`.
    pub fn is_dead(&self, tag: usize, round: u64) -> bool {
        self.dead_from_round
            .get(tag)
            .copied()
            .flatten()
            .is_some_and(|from| round >= from)
    }

    /// Draws whether an ACK to a tag is lost this round.
    pub fn ack_lost<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        self.ack_loss_probability > 0.0 && rng.gen::<f64>() < self.ack_loss_probability
    }
}

/// A bounded random-walk mobility model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MobilityModel {
    /// Maximum displacement per round, meters.
    pub step_m: f64,
    /// Tags stay inside this area.
    pub area: Rect,
}

impl MobilityModel {
    /// Creates a model with the given per-round step inside `area`.
    ///
    /// # Panics
    ///
    /// Panics if `step_m` is negative.
    pub fn new(step_m: f64, area: Rect) -> MobilityModel {
        assert!(step_m >= 0.0, "step must be non-negative");
        MobilityModel { step_m, area }
    }

    /// Moves a position one round forward.
    pub fn step<R: Rng + ?Sized>(&self, rng: &mut R, from: Point) -> Point {
        if self.step_m == 0.0 {
            return from;
        }
        let theta = rng.gen_range(0.0..std::f64::consts::TAU);
        let r = rng.gen_range(0.0..=self.step_m);
        self.area.clamp(Point::new(
            from.x + r * theta.cos(),
            from.y + r * theta.sin(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn default_plan_has_no_faults() {
        let plan = FaultPlan::none();
        assert!(!plan.is_dead(0, 100));
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!plan.ack_lost(&mut rng));
    }

    #[test]
    fn dead_tag_dies_at_its_round() {
        let plan = FaultPlan::none().with_dead_tag(2, 5);
        assert!(!plan.is_dead(2, 4));
        assert!(plan.is_dead(2, 5));
        assert!(plan.is_dead(2, 50));
        assert!(!plan.is_dead(0, 50));
        assert!(!plan.is_dead(7, 50), "unlisted tags never die");
    }

    #[test]
    fn ack_loss_rate_matches_probability() {
        let plan = FaultPlan::none().with_ack_loss(0.3);
        let mut rng = StdRng::seed_from_u64(2);
        let losses = (0..20_000).filter(|_| plan.ack_lost(&mut rng)).count();
        let rate = losses as f64 / 20_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn bad_probability_panics() {
        FaultPlan::none().with_ack_loss(1.5);
    }

    #[test]
    fn mobility_respects_step_and_area() {
        let area = Rect::new(Point::new(-1.0, -1.0), Point::new(1.0, 1.0));
        let model = MobilityModel::new(0.05, area);
        let mut rng = StdRng::seed_from_u64(3);
        let mut pos = Point::new(0.9, 0.9);
        for _ in 0..500 {
            let next = model.step(&mut rng, pos);
            assert!(pos.distance_to(next) <= 0.05 + 1e-12);
            assert!(area.contains(next));
            pos = next;
        }
    }

    #[test]
    fn zero_step_is_static() {
        let area = Rect::office();
        let model = MobilityModel::new(0.0, area);
        let mut rng = StdRng::seed_from_u64(4);
        let p = Point::new(0.3, -0.2);
        assert_eq!(model.step(&mut rng, p), p);
    }

    #[test]
    fn mobility_eventually_explores() {
        let area = Rect::new(Point::new(-1.0, -1.0), Point::new(1.0, 1.0));
        let model = MobilityModel::new(0.1, area);
        let mut rng = StdRng::seed_from_u64(5);
        let start = Point::ORIGIN;
        let mut pos = start;
        for _ in 0..300 {
            pos = model.step(&mut rng, pos);
        }
        assert!(pos.distance_to(start) > 0.05, "walk went nowhere");
    }
}
