//! Named scenario presets.
//!
//! The evaluation re-uses a handful of configurations; these constructors
//! give them names so benches, examples and downstream code agree on what
//! "the paper's bench" means. Each preset documents which experiment it
//! backs.

use cbma_types::geometry::Point;

use crate::scenario::Scenario;

/// The §IV benchmark: ES at (−50 cm, 0), RX at (50 cm, 0), two tags on
/// the symmetry axis at ±40 cm — exactly equal link budgets. Used as the
/// balanced end of the Table II sweep.
pub fn two_tag_bench() -> Scenario {
    Scenario::paper_default(vec![Point::new(0.0, 0.40), Point::new(0.0, -0.40)])
}

/// Tag positions mirrored across both axes so every link shares the same
/// d₁²·d₂² product (within ~3 dB): the geometry where concurrent decoding
/// is cleanest. Feeds the Fig. 8/9 sweeps and the 10-tag headline.
///
/// # Panics
///
/// Panics if `n > 10` (ten mirrored positions are defined).
pub fn balanced_tags(n: usize) -> Vec<Point> {
    let full = [
        Point::new(0.15, 0.45),
        Point::new(-0.15, 0.45),
        Point::new(0.15, -0.45),
        Point::new(-0.15, -0.45),
        Point::new(0.35, 0.5),
        Point::new(-0.35, 0.5),
        Point::new(0.35, -0.5),
        Point::new(-0.35, -0.5),
        Point::new(0.0, 0.62),
        Point::new(0.0, -0.62),
    ];
    assert!(
        n <= full.len(),
        "only {} balanced positions defined",
        full.len()
    );
    full[..n].to_vec()
}

/// A balanced n-tag scenario (see [`balanced_tags`]).
///
/// # Panics
///
/// Panics if `n` is 0 or > 10.
pub fn balanced_scenario(n: usize) -> Scenario {
    Scenario::paper_default(balanced_tags(n))
}

/// The paper's 10-tag headline configuration: balanced geometry at the
/// default 1 Mbps symbol rate (§III-A's 1 µs symbols).
pub fn headline_ten_tags() -> Scenario {
    balanced_scenario(10)
}

/// A deliberately near-far pair: one tag close to the ES–RX axis, one
/// ~9 dB weaker. The configuration the power-control and SIC stories are
/// told on.
pub fn near_far_pair() -> Scenario {
    let mut s = Scenario::paper_default(vec![Point::new(0.0, 0.35), Point::new(0.4, 0.85)]);
    s.shadowing = cbma_channel::ShadowingModel::disabled();
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbma_channel::BackscatterLink;

    #[test]
    fn presets_validate() {
        two_tag_bench().validate().unwrap();
        balanced_scenario(5).validate().unwrap();
        headline_ten_tags().validate().unwrap();
        near_far_pair().validate().unwrap();
    }

    #[test]
    fn two_tag_bench_is_exactly_balanced() {
        let s = two_tag_bench();
        let link = BackscatterLink::paper_default();
        let p0 = link.received_power(s.es, s.tag_positions[0], s.rx).get();
        let p1 = link.received_power(s.es, s.tag_positions[1], s.rx).get();
        assert!((p0 - p1).abs() < 1e-9);
    }

    #[test]
    fn balanced_tags_share_link_products_within_2db() {
        let s = balanced_scenario(10);
        let link = BackscatterLink::paper_default();
        let powers: Vec<f64> = s
            .tag_positions
            .iter()
            .map(|&p| link.received_power(s.es, p, s.rx).get())
            .collect();
        let max = powers.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let min = powers.iter().copied().fold(f64::INFINITY, f64::min);
        assert!(max - min < 3.5, "spread {} dB", max - min);
    }

    #[test]
    fn near_far_pair_is_meaningfully_imbalanced() {
        let s = near_far_pair();
        let link = BackscatterLink::paper_default();
        let p0 = link.received_power(s.es, s.tag_positions[0], s.rx).get();
        let p1 = link.received_power(s.es, s.tag_positions[1], s.rx).get();
        assert!((p0 - p1).abs() > 6.0, "only {} dB apart", (p0 - p1).abs());
    }

    #[test]
    #[should_panic(expected = "balanced positions")]
    fn too_many_balanced_tags_panics() {
        balanced_tags(11);
    }
}
