//! Declarative deployment description.
//!
//! A [`Scenario`] is everything needed to reproduce one experiment
//! configuration: geometry (§IV's coordinate system with the excitation
//! source at (−D, 0) and the receiver at (D, 0)), the PHY profile, the
//! channel impairments, the code family, and the root seed. Every field is
//! public and the struct is plain data, so sweeps mutate copies freely.

use cbma_channel::{
    BackscatterLink, ClockModel, Excitation, InterferenceModel, MultipathModel, NoiseModel,
    ShadowingModel,
};
use cbma_codes::FamilyKind;
use cbma_rx::ReceiverConfig;
use cbma_tag::PhyProfile;
use cbma_types::geometry::Point;
use cbma_types::{CbmaError, Result};

/// A complete experiment configuration.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Air-interface profile shared by tags and receiver.
    pub phy: PhyProfile,
    /// Link budget (Eq. 1) parameters.
    pub link: BackscatterLink,
    /// Receiver noise environment.
    pub noise: NoiseModel,
    /// Large-scale shadowing.
    pub shadowing: ShadowingModel,
    /// Small-scale fading.
    pub multipath: MultipathModel,
    /// Default per-tag clock model (overridable per tag).
    pub clock: ClockModel,
    /// Per-tag clock overrides (index-aligned with `tag_positions`; `None`
    /// uses `clock`). Drives the Fig. 11 asynchrony sweep.
    pub clock_overrides: Vec<Option<ClockModel>>,
    /// Excitation-source model.
    pub excitation: Excitation,
    /// Ambient interference.
    pub interference: InterferenceModel,
    /// PN-code family.
    pub family: FamilyKind,
    /// Excitation-source position.
    pub es: Point,
    /// Receiver position.
    pub rx: Point,
    /// Tag positions (tag id = index).
    pub tag_positions: Vec<Point>,
    /// Payload bytes per frame.
    pub payload_len: usize,
    /// Receiver tuning.
    pub rx_config: ReceiverConfig,
    /// Mutual-coupling radius: tags closer than this distort each other
    /// (λ/2 in the paper's discussion of Fig. 10). Set 0 to disable.
    pub coupling_radius: f64,
    /// Receiver front-end ADC model (None = ideal converter).
    pub adc: Option<cbma_channel::AdcModel>,
    /// Injected failures (tag deaths, ACK losses).
    pub faults: crate::faults::FaultPlan,
    /// Tag mobility between rounds (None = static deployment).
    pub mobility: Option<crate::faults::MobilityModel>,
    /// Root seed for all randomness.
    pub seed: u64,
}

impl Scenario {
    /// The paper's baseline setup: D = 50 cm (ES at (−0.5, 0), RX at
    /// (0.5, 0)), 2NC codes sized for the tag count, paper-default PHY and
    /// channel, 8-byte payloads, indoor shadowing and multipath, small
    /// distributed clock jitter.
    pub fn paper_default(tag_positions: Vec<Point>) -> Scenario {
        let phy = PhyProfile::paper_default();
        let n = tag_positions.len().max(1);
        let link = BackscatterLink::paper_default();
        let lambda = link.carrier.wavelength().get();
        let rx_config = ReceiverConfig {
            // Tolerate concurrent users down to ~1/√n of the segment
            // energy.
            user_threshold: 0.12,
            ..ReceiverConfig::default()
        };
        Scenario {
            phy,
            link,
            noise: NoiseModel::paper_default(),
            shadowing: ShadowingModel::indoor_default(1),
            multipath: MultipathModel::indoor_default(),
            clock: ClockModel {
                fixed_offset_samples: 0.0,
                jitter_samples: 1.0 * phy.samples_per_chip() as f64,
                // TCXO-grade tags: 5 ppm bounds both start-time drift and
                // the inter-tag subcarrier beat.
                drift_ppm: 5.0,
            },
            clock_overrides: vec![None; tag_positions.len()],
            excitation: Excitation::tone(),
            interference: InterferenceModel::none(),
            family: FamilyKind::TwoNc { users: n.max(2) },
            es: Point::from_cm(-50.0, 0.0),
            rx: Point::from_cm(50.0, 0.0),
            tag_positions,
            payload_len: 8,
            rx_config,
            coupling_radius: lambda / 2.0,
            adc: None,
            faults: crate::faults::FaultPlan::none(),
            mobility: None,
            seed: 0xCB_0A,
        }
    }

    /// A quiet, impairment-free variant for unit tests: no shadowing,
    /// fading, jitter or coupling.
    pub fn clean(tag_positions: Vec<Point>) -> Scenario {
        let mut s = Scenario::paper_default(tag_positions);
        s.shadowing = ShadowingModel::disabled();
        s.multipath = MultipathModel::disabled();
        s.clock = ClockModel::synchronized();
        s.coupling_radius = 0.0;
        s
    }

    /// Number of tags.
    #[inline]
    pub fn n_tags(&self) -> usize {
        self.tag_positions.len()
    }

    /// The clock model for tag `i` (override or default).
    pub fn clock_for(&self, i: usize) -> ClockModel {
        self.clock_overrides
            .get(i)
            .copied()
            .flatten()
            .unwrap_or(self.clock)
    }

    /// Validates cross-field consistency.
    ///
    /// # Errors
    ///
    /// Returns [`CbmaError::InvalidConfig`] when there are no tags, the
    /// PHY profile is invalid, the code family cannot cover the tag
    /// count, or override lengths mismatch.
    pub fn validate(&self) -> Result<()> {
        if self.tag_positions.is_empty() {
            return Err(CbmaError::InvalidConfig("scenario has no tags".into()));
        }
        self.phy.validate()?;
        let family = self.family.build()?;
        if family.capacity() < self.n_tags() {
            return Err(CbmaError::InvalidConfig(format!(
                "code family {} supports {} codes but scenario has {} tags",
                self.family,
                family.capacity(),
                self.n_tags()
            )));
        }
        if !self.clock_overrides.is_empty() && self.clock_overrides.len() != self.n_tags() {
            return Err(CbmaError::InvalidConfig(format!(
                "clock_overrides has {} entries for {} tags",
                self.clock_overrides.len(),
                self.n_tags()
            )));
        }
        if self.payload_len > cbma_tag::frame::MAX_PAYLOAD {
            return Err(CbmaError::InvalidConfig(format!(
                "payload_len {} exceeds the {}-byte frame limit",
                self.payload_len,
                cbma_tag::frame::MAX_PAYLOAD
            )));
        }
        Ok(())
    }

    /// Returns a copy with a different seed (independent replication).
    pub fn with_seed(mut self, seed: u64) -> Scenario {
        self.seed = seed;
        self
    }

    /// Returns a copy using Gold codes of the given degree (Fig. 9(b)).
    pub fn with_gold_codes(mut self, degree: u32) -> Scenario {
        self.family = FamilyKind::Gold { degree };
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn positions(n: usize) -> Vec<Point> {
        (0..n).map(|i| Point::new(0.1 * i as f64, 0.3)).collect()
    }

    #[test]
    fn paper_default_validates() {
        for n in [1usize, 2, 5, 10] {
            Scenario::paper_default(positions(n)).validate().unwrap();
        }
    }

    #[test]
    fn empty_scenario_is_invalid() {
        assert!(Scenario::paper_default(vec![]).validate().is_err());
    }

    #[test]
    fn family_capacity_is_checked() {
        let mut s = Scenario::paper_default(positions(16));
        s.family = FamilyKind::TwoNc { users: 1 }; // capacity 15 < 16 tags
        assert!(s.validate().is_err());
    }

    #[test]
    fn clock_override_length_is_checked() {
        let mut s = Scenario::paper_default(positions(3));
        s.clock_overrides = vec![None; 2];
        assert!(s.validate().is_err());
    }

    #[test]
    fn clock_for_prefers_override() {
        let mut s = Scenario::clean(positions(2));
        s.clock_overrides[1] = Some(ClockModel::fixed(12.0));
        assert_eq!(s.clock_for(0), ClockModel::synchronized());
        assert_eq!(s.clock_for(1), ClockModel::fixed(12.0));
        // Out-of-range index falls back to the default clock.
        assert_eq!(s.clock_for(99), s.clock);
    }

    #[test]
    fn payload_limit_is_checked() {
        let mut s = Scenario::paper_default(positions(2));
        s.payload_len = 127;
        assert!(s.validate().is_err());
    }

    #[test]
    fn geometry_matches_paper() {
        let s = Scenario::paper_default(positions(2));
        assert_eq!(s.es, Point::new(-0.5, 0.0));
        assert_eq!(s.rx, Point::new(0.5, 0.0));
        assert!((s.coupling_radius - 0.0749).abs() < 0.001);
    }

    #[test]
    fn builders() {
        let s = Scenario::paper_default(positions(2))
            .with_seed(77)
            .with_gold_codes(5);
        assert_eq!(s.seed, 77);
        assert_eq!(s.family, FamilyKind::Gold { degree: 5 });
        s.validate().unwrap();
    }
}
