//! Statistics: frame error rates, goodput, empirical CDFs.
//!
//! The paper's metrics, made precise (DESIGN.md "metric interpretation"):
//!
//! * **error rate / FER** — missing frames ÷ transmitted frames (§IV),
//! * **aggregate modulated bitrate** — delivered tags × chip rate, the
//!   quantity behind "a 10-tag bit rate of 8 Mbps",
//! * **goodput** — payload bits delivered per second of airtime,
//! * **CDF** — the Fig. 10 deployment distribution.

use cbma_tag::PhyProfile;
use cbma_types::units::Hertz;

use crate::engine::RoundOutcome;

/// Accumulated delivery statistics over a run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunStats {
    sent: Vec<u64>,
    delivered: Vec<u64>,
    bit_errors: u64,
    bits_measured: u64,
    rounds: u64,
}

impl RunStats {
    /// Creates empty statistics for `n_tags` tags.
    pub fn new(n_tags: usize) -> RunStats {
        RunStats {
            sent: vec![0; n_tags],
            delivered: vec![0; n_tags],
            bit_errors: 0,
            bits_measured: 0,
            rounds: 0,
        }
    }

    /// Records one round.
    pub fn record(&mut self, outcome: &RoundOutcome) {
        self.rounds += 1;
        for &i in &outcome.active {
            self.sent[i] += 1;
        }
        for &i in &outcome.delivered {
            self.delivered[i] += 1;
        }
        for &(_, errs, total) in &outcome.bit_errors {
            self.bit_errors += errs as u64;
            self.bits_measured += total as u64;
        }
    }

    /// Rounds recorded.
    #[inline]
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Total frames transmitted.
    pub fn total_sent(&self) -> u64 {
        self.sent.iter().sum()
    }

    /// Total frames delivered.
    pub fn total_delivered(&self) -> u64 {
        self.delivered.iter().sum()
    }

    /// Frame error rate: missing ÷ transmitted (0 when nothing was sent).
    pub fn fer(&self) -> f64 {
        let sent = self.total_sent();
        if sent == 0 {
            return 0.0;
        }
        1.0 - self.total_delivered() as f64 / sent as f64
    }

    /// Per-tag frame error rate (`None` for tags that never transmitted).
    pub fn per_tag_fer(&self) -> Vec<Option<f64>> {
        self.sent
            .iter()
            .zip(&self.delivered)
            .map(|(&s, &d)| {
                if s == 0 {
                    None
                } else {
                    Some(1.0 - d as f64 / s as f64)
                }
            })
            .collect()
    }

    /// Per-tag ACK ratios with 0 for idle tags (Algorithm 1 input shape).
    pub fn ack_ratios(&self) -> Vec<f64> {
        self.sent
            .iter()
            .zip(&self.delivered)
            .map(|(&s, &d)| if s == 0 { 0.0 } else { d as f64 / s as f64 })
            .collect()
    }

    /// Aggregate modulated bit rate: mean delivered tags per round × chip
    /// rate — the paper's "multi-tag bit rate" (its tags signal at the
    /// chip/symbol rate, §III-A).
    pub fn aggregate_symbol_rate(&self, phy: &PhyProfile) -> Hertz {
        if self.rounds == 0 {
            return Hertz::new(0.0);
        }
        let mean_delivered = self.total_delivered() as f64 / self.rounds as f64;
        Hertz::new(mean_delivered * phy.chip_rate.get())
    }

    /// Aggregate information goodput: payload bits delivered per second of
    /// airtime, given the frame length in bits and the spreading factor.
    pub fn goodput(&self, phy: &PhyProfile, payload_len: usize, spreading_factor: usize) -> Hertz {
        if self.rounds == 0 {
            return Hertz::new(0.0);
        }
        let frame_bits = phy.preamble_bits + 8 + payload_len * 8 + 16;
        let airtime_per_round = frame_bits as f64 * spreading_factor as f64 / phy.chip_rate.get();
        let bits_delivered = self.total_delivered() as f64 * (payload_len * 8) as f64;
        Hertz::new(bits_delivered / (airtime_per_round * self.rounds as f64))
    }

    /// Bit error rate over the bits the receiver could measure (frames
    /// whose header decoded with the right length), or `None` when no
    /// bits were measured. Misaligned or undetected frames contribute no
    /// bits — combine with [`fer`](RunStats::fer) for the full picture.
    pub fn ber(&self) -> Option<f64> {
        if self.bits_measured == 0 {
            None
        } else {
            Some(self.bit_errors as f64 / self.bits_measured as f64)
        }
    }

    /// Total bits measured for the BER estimate.
    pub fn bits_measured(&self) -> u64 {
        self.bits_measured
    }

    /// Merges another run's statistics (same tag count).
    ///
    /// # Panics
    ///
    /// Panics if the tag counts differ.
    pub fn merge(&mut self, other: &RunStats) {
        assert_eq!(self.sent.len(), other.sent.len(), "tag counts differ");
        for i in 0..self.sent.len() {
            self.sent[i] += other.sent[i];
            self.delivered[i] += other.delivered[i];
        }
        self.bit_errors += other.bit_errors;
        self.bits_measured += other.bits_measured;
        self.rounds += other.rounds;
    }
}

/// An empirical cumulative distribution function.
#[derive(Debug, Clone, PartialEq)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Builds a CDF from samples (NaNs are dropped).
    pub fn from_samples<I: IntoIterator<Item = f64>>(samples: I) -> Cdf {
        let mut sorted: Vec<f64> = samples.into_iter().filter(|x| !x.is_nan()).collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("nans were filtered"));
        Cdf { sorted }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the CDF holds no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// P(X ≤ x).
    pub fn probability_at(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// The q-quantile (q in [0, 1]).
    ///
    /// # Panics
    ///
    /// Panics if the CDF is empty or `q` is outside [0, 1].
    pub fn quantile(&self, q: f64) -> f64 {
        assert!(!self.sorted.is_empty(), "quantile of an empty cdf");
        assert!((0.0..=1.0).contains(&q), "q must be in [0, 1]");
        let idx = ((self.sorted.len() - 1) as f64 * q).round() as usize;
        self.sorted[idx]
    }

    /// Median shortcut.
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// `(x, P(X ≤ x))` points for plotting.
    pub fn points(&self) -> Vec<(f64, f64)> {
        let n = self.sorted.len() as f64;
        self.sorted
            .iter()
            .enumerate()
            .map(|(i, &x)| (x, (i + 1) as f64 / n))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbma_rx::RxReport;

    fn outcome(active: Vec<usize>, delivered: Vec<usize>) -> RoundOutcome {
        RoundOutcome {
            active,
            delivered,
            report: RxReport::default(),
            bit_errors: Vec::new(),
            signal_meta: Vec::new(),
            iq: None,
        }
    }

    #[test]
    fn fer_accounting() {
        let mut s = RunStats::new(2);
        s.record(&outcome(vec![0, 1], vec![0, 1]));
        s.record(&outcome(vec![0, 1], vec![0]));
        assert_eq!(s.total_sent(), 4);
        assert_eq!(s.total_delivered(), 3);
        assert!((s.fer() - 0.25).abs() < 1e-12);
        assert_eq!(s.per_tag_fer(), vec![Some(0.0), Some(0.5)]);
        assert_eq!(s.ack_ratios(), vec![1.0, 0.5]);
    }

    #[test]
    fn idle_tags_have_no_fer() {
        let mut s = RunStats::new(2);
        s.record(&outcome(vec![0], vec![0]));
        assert_eq!(s.per_tag_fer()[1], None);
        assert_eq!(s.ack_ratios()[1], 0.0);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = RunStats::new(3);
        assert_eq!(s.fer(), 0.0);
        assert_eq!(
            s.aggregate_symbol_rate(&PhyProfile::paper_default()).get(),
            0.0
        );
        assert_eq!(s.goodput(&PhyProfile::paper_default(), 8, 31).get(), 0.0);
    }

    #[test]
    fn zero_round_run_yields_finite_everything() {
        // A run that never recorded a round must not divide by zero
        // anywhere: every derived quantity is finite (or explicitly None).
        let s = RunStats::new(4);
        assert_eq!(s.rounds(), 0);
        assert_eq!(s.total_sent(), 0);
        assert_eq!(s.total_delivered(), 0);
        assert!(s.fer().is_finite());
        assert_eq!(s.fer(), 0.0);
        assert_eq!(s.per_tag_fer(), vec![None; 4]);
        assert_eq!(s.ack_ratios(), vec![0.0; 4]);
        assert_eq!(s.ber(), None);
        assert_eq!(s.bits_measured(), 0);
        let phy = PhyProfile::paper_default();
        assert!(s.aggregate_symbol_rate(&phy).get().is_finite());
        assert!(s.goodput(&phy, 8, 31).get().is_finite());
    }

    #[test]
    fn never_transmitting_tag_does_not_nan_per_tag_fer() {
        // Tag 1 never transmits across many rounds: its FER slot stays
        // None (not NaN), the run FER ignores it, and merging preserves
        // the distinction.
        let mut s = RunStats::new(3);
        for _ in 0..5 {
            s.record(&outcome(vec![0, 2], vec![0]));
        }
        let per_tag = s.per_tag_fer();
        assert_eq!(per_tag[1], None);
        for fer in per_tag.iter().flatten() {
            assert!(fer.is_finite(), "per-tag FER must never be NaN");
        }
        assert!((per_tag[0].unwrap() - 0.0).abs() < 1e-12);
        assert!((per_tag[2].unwrap() - 1.0).abs() < 1e-12);
        assert!(s.fer().is_finite());
        // Merging two runs that both idled tag 1 keeps it idle.
        let mut other = RunStats::new(3);
        other.record(&outcome(vec![0], vec![0]));
        s.merge(&other);
        assert_eq!(s.per_tag_fer()[1], None);
        assert!(!s.ack_ratios().iter().any(|r| r.is_nan()));
    }

    #[test]
    fn merge_into_empty_is_identity() {
        let mut a = RunStats::new(2);
        let mut b = RunStats::new(2);
        b.record(&outcome(vec![0, 1], vec![1]));
        a.merge(&b);
        assert_eq!(a, b);
    }

    #[test]
    fn aggregate_symbol_rate_scales_with_delivered_tags() {
        let phy = PhyProfile::paper_default();
        let mut s = RunStats::new(10);
        for _ in 0..4 {
            s.record(&outcome((0..10).collect(), (0..10).collect()));
        }
        // 10 delivered tags × 1 Mcps = 10 Mbps modulated aggregate.
        assert!((s.aggregate_symbol_rate(&phy).get() - 10e6).abs() < 1.0);
    }

    #[test]
    fn goodput_matches_hand_computation() {
        let phy = PhyProfile::paper_default();
        let mut s = RunStats::new(1);
        s.record(&outcome(vec![0], vec![0]));
        // Frame: 8+8+64+16 = 96 bits × 31 chips @1 Mcps = 2976 µs airtime;
        // 64 payload bits delivered → 64/2.976e-3 ≈ 21.5 kbps.
        let g = s.goodput(&phy, 8, 31).get();
        assert!((g - 64.0 / 2.976e-3).abs() / g < 1e-9, "g = {g}");
    }

    #[test]
    fn merge_combines_runs() {
        let mut a = RunStats::new(1);
        a.record(&outcome(vec![0], vec![0]));
        let mut b = RunStats::new(1);
        b.record(&outcome(vec![0], vec![]));
        a.merge(&b);
        assert_eq!(a.rounds(), 2);
        assert!((a.fer() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn cdf_probability_and_quantiles() {
        let cdf = Cdf::from_samples([0.3, 0.1, 0.2, 0.4]);
        assert_eq!(cdf.len(), 4);
        assert!((cdf.probability_at(0.25) - 0.5).abs() < 1e-12);
        assert_eq!(cdf.probability_at(0.0), 0.0);
        assert_eq!(cdf.probability_at(1.0), 1.0);
        assert!((cdf.median() - 0.2).abs() < 0.11);
        assert_eq!(cdf.quantile(0.0), 0.1);
        assert_eq!(cdf.quantile(1.0), 0.4);
    }

    #[test]
    fn cdf_points_are_monotone() {
        let cdf = Cdf::from_samples([5.0, 1.0, 3.0, 3.0, 2.0]);
        let pts = cdf.points();
        assert_eq!(pts.len(), 5);
        for w in pts.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 < w[1].1);
        }
        assert!((pts.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cdf_drops_nans() {
        let cdf = Cdf::from_samples([f64::NAN, 1.0]);
        assert_eq!(cdf.len(), 1);
    }

    #[test]
    fn empty_cdf_probability_is_zero() {
        assert_eq!(Cdf::from_samples([]).probability_at(1.0), 0.0);
        assert!(Cdf::from_samples([]).is_empty());
    }
}
