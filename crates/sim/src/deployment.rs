//! Random tag placement.
//!
//! The evaluation repeatedly draws "random positions for tags" inside the
//! office (§VII-B.3: "we generate 50 groups of random positions"). The
//! generator supports a minimum pairwise separation so experiments can
//! choose whether the λ/2 coupling regime is part of the draw.

use rand::Rng;

use cbma_types::geometry::{Point, Rect};

/// Draws `n` uniform positions inside `room`, optionally enforcing a
/// minimum pairwise separation (meters). Falls back to accepting a
/// violating point after 1000 rejected attempts so pathological
/// configurations cannot loop forever.
///
/// # Panics
///
/// Panics if `min_separation` is negative.
pub fn random_positions<R: Rng + ?Sized>(
    rng: &mut R,
    room: Rect,
    n: usize,
    min_separation: f64,
) -> Vec<Point> {
    assert!(min_separation >= 0.0, "separation must be non-negative");
    let mut points: Vec<Point> = Vec::with_capacity(n);
    for _ in 0..n {
        let mut attempts = 0;
        loop {
            let candidate = Point::new(
                rng.gen_range(room.min().x..=room.max().x),
                rng.gen_range(room.min().y..=room.max().y),
            );
            let ok = min_separation == 0.0
                || points
                    .iter()
                    .all(|p| p.distance_to(candidate) >= min_separation);
            attempts += 1;
            if ok || attempts > 1000 {
                points.push(candidate);
                break;
            }
        }
    }
    points
}

/// Draws `n` positions on a circle of radius `r` around `center` — a
/// controlled geometry where every tag has the same tag→RX distance.
pub fn ring_positions(center: Point, r: f64, n: usize) -> Vec<Point> {
    (0..n)
        .map(|i| {
            let theta = std::f64::consts::TAU * i as f64 / n.max(1) as f64;
            Point::new(center.x + r * theta.cos(), center.y + r * theta.sin())
        })
        .collect()
}

/// The paper's benchmark geometry (§IV / Fig. 3): ES at (−D, 0), RX at
/// (D, 0); returns `(es, rx)` for D in meters.
pub fn benchmark_geometry(d: f64) -> (Point, Point) {
    (Point::new(-d, 0.0), Point::new(d, 0.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn positions_stay_inside_the_room() {
        let mut rng = StdRng::seed_from_u64(1);
        let room = Rect::office();
        for p in random_positions(&mut rng, room, 100, 0.0) {
            assert!(room.contains(p), "{p} escaped the room");
        }
    }

    #[test]
    fn separation_is_enforced() {
        let mut rng = StdRng::seed_from_u64(2);
        let pts = random_positions(&mut rng, Rect::office(), 10, 0.5);
        for i in 0..pts.len() {
            for j in i + 1..pts.len() {
                assert!(pts[i].distance_to(pts[j]) >= 0.5, "tags {i},{j} too close");
            }
        }
    }

    #[test]
    fn impossible_separation_still_terminates() {
        let mut rng = StdRng::seed_from_u64(3);
        // 50 tags at 5 m separation cannot fit in a 4×6 room; the
        // fallback must still return 50 points.
        let pts = random_positions(&mut rng, Rect::office(), 50, 5.0);
        assert_eq!(pts.len(), 50);
    }

    #[test]
    fn draws_are_seeded() {
        let a = random_positions(&mut StdRng::seed_from_u64(7), Rect::office(), 5, 0.0);
        let b = random_positions(&mut StdRng::seed_from_u64(7), Rect::office(), 5, 0.0);
        assert_eq!(a, b);
    }

    #[test]
    fn ring_is_equidistant() {
        let pts = ring_positions(Point::ORIGIN, 1.5, 8);
        assert_eq!(pts.len(), 8);
        for p in &pts {
            assert!((p.distance_to(Point::ORIGIN) - 1.5).abs() < 1e-12);
        }
    }

    #[test]
    fn benchmark_geometry_matches_paper() {
        let (es, rx) = benchmark_geometry(0.5);
        assert_eq!(es, Point::new(-0.5, 0.0));
        assert_eq!(rx, Point::new(0.5, 0.0));
    }
}
