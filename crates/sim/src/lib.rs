//! End-to-end CBMA simulation: the software testbed.
//!
//! Wires every substrate together — tags (`cbma-tag`), PN codes
//! (`cbma-codes`), the radio channel (`cbma-channel`), the receiver
//! (`cbma-rx`) and the MAC layer (`cbma-mac`) — into the experiment
//! harness that regenerates the paper's evaluation:
//!
//! * [`scenario`] — one declarative description of a deployment (room
//!   geometry, PHY profile, channel impairments, code family, seed),
//! * [`engine`] — runs transmission rounds through the full pipeline:
//!   frame → spread → OOK → Friis/shadowing/fading/asynchrony → mixer →
//!   frame sync → user detection → decode → ACK,
//! * [`adaptation`] — closed-loop power control (Algorithm 1) and node
//!   selection driven by the engine's ACK feedback,
//! * [`stats`] — FER/goodput accounting and empirical CDFs,
//! * [`deployment`] — random tag placement,
//! * [`sweep`] — parallel parameter sweeps for the benches,
//! * [`trace`] — record/replay of per-round outcomes.
//!
//! # Examples
//!
//! ```
//! use cbma_sim::prelude::*;
//!
//! // Two tags near the receiver, paper-default channel.
//! let scenario = Scenario::paper_default(vec![
//!     Point::new(0.0, 0.3),
//!     Point::new(0.2, -0.4),
//! ]);
//! let mut engine = Engine::new(scenario)?;
//! let stats = engine.run_rounds(20);
//! assert!(stats.fer() < 0.5, "most collided frames should decode");
//! # Ok::<(), cbma_types::CbmaError>(())
//! ```

pub mod adaptation;
pub mod deployment;
pub mod engine;
pub mod faults;
pub mod latency;
pub mod presets;
pub mod scenario;
pub mod stats;
pub mod sweep;
pub mod trace;

/// Convenient glob import for examples and benches.
pub mod prelude {
    pub use crate::adaptation::{AdaptationReport, Adapter};
    pub use crate::deployment::random_positions;
    pub use crate::engine::{Engine, RoundOutcome, StreamingConfig};
    pub use crate::faults::{FaultPlan, MobilityModel};
    pub use crate::latency::LatencyTracker;
    pub use crate::presets;
    pub use crate::scenario::Scenario;
    pub use crate::stats::{Cdf, RunStats};
    pub use crate::sweep::{parallel_sweep, parallel_sweep_instrumented};
    pub use cbma_obs::{
        Event, MetricsRegistry, NoopSink, RecordingSink, Sink, Snapshot, StageTimer,
    };
    pub use cbma_channel::{
        BackscatterLink, ClockModel, Excitation, InterferenceModel, MultipathModel, NoiseModel,
        ShadowingModel,
    };
    pub use cbma_codes::FamilyKind;
    pub use cbma_rx::ReceiverConfig;
    pub use cbma_tag::{ImpedanceState, PhyProfile};
    pub use cbma_types::geometry::{Point, Rect};
    pub use cbma_types::units::{Db, Dbm, Hertz, Meters, Seconds};
    pub use cbma_types::SeedSequence;
}

pub use engine::{Engine, RoundOutcome, StreamingConfig};
pub use scenario::Scenario;
pub use stats::{Cdf, RunStats};
