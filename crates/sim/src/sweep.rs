//! Parallel parameter sweeps.
//!
//! Every figure in the evaluation is a sweep (distance, power, preamble
//! length, bitrate, tag count, delay, …) of independent simulation runs.
//! [`parallel_sweep`] fans the points out over scoped worker threads
//! (crossbeam) and returns results in input order.
//!
//! Work distribution is an atomic work-stealing counter and result
//! storage is lock-free: each worker accumulates `(index, result)` pairs
//! in a thread-local vector that is handed back when the worker's thread
//! is joined, then the pairs are scattered into the output in one pass.
//! No mutex is taken per result, so cheap per-point closures don't
//! serialize on the collection.

use std::sync::atomic::{AtomicUsize, Ordering};

use cbma_obs::{MetricsRegistry, Snapshot};

/// Maps `f` over `params` in parallel, preserving order.
///
/// `f` must be deterministic per parameter (seed your RNGs from the
/// parameter) so the sweep is reproducible regardless of scheduling.
pub fn parallel_sweep<P, R, F>(params: &[P], f: F) -> Vec<R>
where
    P: Sync,
    R: Send,
    F: Fn(&P) -> R + Sync,
{
    let n = params.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(n);
    if workers <= 1 {
        return params.iter().map(&f).collect();
    }

    let next = AtomicUsize::new(0);

    let per_worker: Vec<Vec<(usize, R)>> = crossbeam::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|_| {
                    // Local accumulation only — no shared lock on the
                    // result path.
                    let mut local: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(&params[i])));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("sweep worker panicked"))
            .collect()
    })
    .expect("sweep scope failed");

    let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for (i, r) in per_worker.into_iter().flatten() {
        debug_assert!(results[i].is_none(), "index {i} computed twice");
        results[i] = Some(r);
    }
    results
        .into_iter()
        .map(|r| r.expect("every index was computed"))
        .collect()
}

/// [`parallel_sweep`] with per-worker observability: each worker thread
/// owns a private [`MetricsRegistry`] (zero cross-thread contention on the
/// recording path — every atomic is worker-local), the closure records
/// into the registry it is handed, and the per-worker snapshots are merged
/// when the workers are joined (counters and histograms add, gauges keep
/// the high-water mark).
///
/// Returns the results in input order plus the merged telemetry snapshot
/// of the whole sweep.
pub fn parallel_sweep_instrumented<P, R, F>(params: &[P], f: F) -> (Vec<R>, Snapshot)
where
    P: Sync,
    R: Send,
    F: Fn(&P, &MetricsRegistry) -> R + Sync,
{
    let n = params.len();
    if n == 0 {
        return (Vec::new(), Snapshot::default());
    }
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(n);
    if workers <= 1 {
        let registry = MetricsRegistry::new();
        let results = params.iter().map(|p| f(p, &registry)).collect();
        return (results, registry.snapshot());
    }

    let next = AtomicUsize::new(0);

    let per_worker: Vec<(Vec<(usize, R)>, Snapshot)> = crossbeam::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|_| {
                    // Worker-private registry: recording never crosses a
                    // cache line with another worker; merging happens once
                    // at join.
                    let registry = MetricsRegistry::new();
                    let mut local: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(&params[i], &registry)));
                    }
                    (local, registry.snapshot())
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("sweep worker panicked"))
            .collect()
    })
    .expect("sweep scope failed");

    let mut merged = Snapshot::default();
    let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for (pairs, snapshot) in per_worker {
        merged.merge(&snapshot);
        for (i, r) in pairs {
            debug_assert!(results[i].is_none(), "index {i} computed twice");
            results[i] = Some(r);
        }
    }
    let results = results
        .into_iter()
        .map(|r| r.expect("every index was computed"))
        .collect();
    (results, merged)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_preserve_order() {
        let params: Vec<u64> = (0..64).collect();
        let out = parallel_sweep(&params, |&p| p * p);
        assert_eq!(out, params.iter().map(|p| p * p).collect::<Vec<_>>());
    }

    #[test]
    fn empty_sweep() {
        let out: Vec<u32> = parallel_sweep(&Vec::<u32>::new(), |_| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn single_param() {
        assert_eq!(parallel_sweep(&[5u32], |&p| p + 1), vec![6]);
    }

    #[test]
    fn instrumented_sweep_merges_worker_registries() {
        let params: Vec<u64> = (0..48).collect();
        let (out, snapshot) = parallel_sweep_instrumented(&params, |&p, registry| {
            registry.counter("sweep.points").inc();
            registry.counter("sweep.total").add(p);
            registry.histogram("sweep.value").record(p);
            p * 2
        });
        assert_eq!(out, params.iter().map(|p| p * 2).collect::<Vec<_>>());
        // Counters add across workers …
        assert_eq!(snapshot.counters["sweep.points"], 48);
        assert_eq!(snapshot.counters["sweep.total"], (0..48).sum::<u64>());
        // … and histograms merge to the full population.
        let hist = &snapshot.histograms["sweep.value"];
        assert_eq!(hist.count, 48);
        assert_eq!(hist.min, 0);
        assert_eq!(hist.max, 47);
    }

    #[test]
    fn instrumented_sweep_empty_and_engine_metrics_compose() {
        let (out, snapshot) =
            parallel_sweep_instrumented(&Vec::<u32>::new(), |_, _| unreachable!());
        assert!(out.is_empty());
        assert_eq!(snapshot.metric_count(), 0);

        // Per-point engines recording into the worker registry: the merged
        // snapshot aggregates cbma.rx.* and cbma.sim.* over the sweep.
        let seeds: Vec<u64> = (0..4).collect();
        let (fers, snapshot) = parallel_sweep_instrumented(&seeds, |&seed, registry| {
            let scenario = crate::scenario::Scenario::clean(vec![
                cbma_types::geometry::Point::new(0.0, 0.3),
                cbma_types::geometry::Point::new(0.2, -0.4),
            ])
            .with_seed(seed);
            let mut engine = crate::engine::Engine::new(scenario).unwrap();
            engine.attach_observability(registry);
            engine.run_rounds(2).fer()
        });
        assert_eq!(fers.len(), 4);
        assert_eq!(snapshot.counters["cbma.sim.rounds"], 8);
        assert_eq!(snapshot.counters["cbma.rx.captures"], 8);
        assert_eq!(snapshot.histograms["cbma.sim.round_ns"].count, 8);
    }

    #[test]
    fn heavier_work_still_ordered() {
        let params: Vec<usize> = (0..32).collect();
        let out = parallel_sweep(&params, |&p| {
            // Unequal work per item to shuffle completion order.
            let mut acc = 0u64;
            for i in 0..(p * 1000) {
                acc = acc.wrapping_add(i as u64);
            }
            (p, acc)
        });
        for (i, (p, _)) in out.iter().enumerate() {
            assert_eq!(i, *p);
        }
    }
}
