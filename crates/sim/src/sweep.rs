//! Parallel parameter sweeps.
//!
//! Every figure in the evaluation is a sweep (distance, power, preamble
//! length, bitrate, tag count, delay, …) of independent simulation runs.
//! [`parallel_sweep`] fans the points out over scoped worker threads
//! (crossbeam) and returns results in input order.

use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;

/// Maps `f` over `params` in parallel, preserving order.
///
/// `f` must be deterministic per parameter (seed your RNGs from the
/// parameter) so the sweep is reproducible regardless of scheduling.
pub fn parallel_sweep<P, R, F>(params: &[P], f: F) -> Vec<R>
where
    P: Sync,
    R: Send,
    F: Fn(&P) -> R + Sync,
{
    let n = params.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(n);
    if workers <= 1 {
        return params.iter().map(&f).collect();
    }

    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<Option<R>>> = Mutex::new((0..n).map(|_| None).collect());

    crossbeam::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(&params[i]);
                results.lock()[i] = Some(r);
            });
        }
    })
    .expect("sweep worker panicked");

    results
        .into_inner()
        .into_iter()
        .map(|r| r.expect("every index was computed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_preserve_order() {
        let params: Vec<u64> = (0..64).collect();
        let out = parallel_sweep(&params, |&p| p * p);
        assert_eq!(out, params.iter().map(|p| p * p).collect::<Vec<_>>());
    }

    #[test]
    fn empty_sweep() {
        let out: Vec<u32> = parallel_sweep(&Vec::<u32>::new(), |_| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn single_param() {
        assert_eq!(parallel_sweep(&[5u32], |&p| p + 1), vec![6]);
    }

    #[test]
    fn heavier_work_still_ordered() {
        let params: Vec<usize> = (0..32).collect();
        let out = parallel_sweep(&params, |&p| {
            // Unequal work per item to shuffle completion order.
            let mut acc = 0u64;
            for i in 0..(p * 1000) {
                acc = acc.wrapping_add(i as u64);
            }
            (p, acc)
        });
        for (i, (p, _)) in out.iter().enumerate() {
            assert_eq!(i, *p);
        }
    }
}
