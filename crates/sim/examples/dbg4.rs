use cbma_sim::prelude::*;
fn main() {
    for (rate, drift) in [
        (250e3, 20.0),
        (250e3, 10.0),
        (250e3, 5.0),
        (1e6, 5.0),
        (5e6, 5.0),
        (1e6, 10.0),
        (5e6, 10.0),
    ] {
        let mut s = Scenario::paper_default(vec![
            Point::new(0.15, 0.45),
            Point::new(-0.15, 0.45),
            Point::new(0.15, -0.45),
            Point::new(-0.15, -0.45),
        ]);
        s.phy = s.phy.with_chip_rate(Hertz::new(rate));
        s.clock.jitter_samples = s.phy.samples_per_chip() as f64;
        s.clock.drift_ppm = drift;
        let mut e = Engine::new(s).unwrap();
        for t in e.tags_mut() {
            t.set_impedance(ImpedanceState::Open);
        }
        let st = e.run_rounds(40);
        println!("rate {rate:.0} drift {drift}: fer {:.3}", st.fer());
    }
}
