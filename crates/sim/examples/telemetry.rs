//! Pipeline telemetry walkthrough.
//!
//! Runs the paper-default four-tag deployment with full observability
//! attached and prints everything the observability layer produces:
//!
//! * per-capture [`RxTelemetry`](cbma_rx::RxTelemetry) on the last round's
//!   report (stage spans, correlation margins, SIC activity),
//! * the aggregated `cbma.rx.*` / `cbma.sim.*` metrics snapshot,
//! * the structured `cbma.sim.round` event stream, and
//! * the JSON export that `bench_summary` writes as
//!   `BENCH_pipeline_obs.json`.
//!
//! Run with:
//!
//! ```text
//! cargo run --release -p cbma-sim --example telemetry
//! ```

use std::sync::Arc;

use cbma_sim::prelude::*;

fn main() {
    // Four tags around the receiver, paper-default channel impairments,
    // one SIC pass so the cancellation path shows up in the telemetry.
    let mut scenario = Scenario::paper_default(vec![
        Point::new(0.15, 0.45),
        Point::new(-0.15, 0.45),
        Point::new(0.15, -0.45),
        Point::new(-0.15, -0.45),
    ]);
    scenario.rx_config.sic_passes = 1;
    let mut engine = Engine::new(scenario).expect("scenario is valid");
    for tag in engine.tags_mut() {
        tag.set_impedance(ImpedanceState::Open);
    }

    // Attach observability: a registry for aggregated metrics and a
    // recording sink for per-round structured events. Without these two
    // calls the engine runs with a no-op sink and records nothing.
    let registry = MetricsRegistry::new();
    let sink = Arc::new(RecordingSink::new());
    engine.attach_observability(&registry);
    engine.set_sink(sink.clone());

    let rounds = 20;
    let mut last = None;
    for _ in 0..rounds {
        last = Some(engine.run_round());
    }

    // 1. Per-capture telemetry rides on every RxReport.
    let last = last.expect("ran at least one round");
    let t = &last.report.telemetry;
    println!("last round's receive pipeline:");
    println!("  frame sync    {:>9} ns", t.frame_sync_ns);
    println!("  user detect   {:>9} ns  ({} candidates)", t.user_detect_ns, t.candidates_evaluated);
    println!("  decode        {:>9} ns  ({} probes, {} failures)", t.decode_ns, t.probes_attempted, t.decode_failures);
    println!("  sic           {:>9} ns  ({} passes, {} recovered)", t.sic_ns, t.sic_iterations, t.sic_recovered);
    println!("  peak correlation {:.3} (margin {:.3} over threshold)", t.peak_correlation, t.peak_margin);

    // 2. Aggregated metrics: counters, gauges and log₂-bucketed timing
    //    histograms across all rounds.
    let snapshot = registry.snapshot();
    println!("\naggregated metrics ({} named series):", snapshot.metric_count());
    for (name, value) in &snapshot.counters {
        println!("  {name:<32} {value}");
    }
    for (name, hist) in &snapshot.histograms {
        if hist.count > 0 {
            println!(
                "  {name:<32} n={} mean={:.0} min={} max={}",
                hist.count,
                hist.mean().unwrap_or(0.0),
                hist.min,
                hist.max
            );
        }
    }

    // 3. The structured event stream the engine emitted through the sink.
    let events = sink.take();
    let delivered_all = events
        .iter()
        .filter(|e| e.name == "cbma.sim.round")
        .filter(|e| e.field("delivered") == e.field("active"))
        .count();
    println!(
        "\nevents: {} recorded, {} rounds delivered every active tag",
        events.len(),
        delivered_all
    );

    // 4. The JSON export — the same artifact bench_summary grows into
    //    BENCH_pipeline_obs.json (and it must round-trip).
    let json = snapshot.to_json();
    let reparsed = Snapshot::from_json(&json).expect("export must parse back");
    assert_eq!(reparsed, snapshot);
    println!("\nsnapshot JSON ({} bytes, round-trips cleanly):\n{json}", json.len());
}
