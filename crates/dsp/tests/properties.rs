//! Property-based tests for the DSP primitives.

use cbma_dsp::biquad::Biquad;
use cbma_dsp::correlate::{normalized_correlation, normalized_iq_correlation};
use cbma_dsp::fft::{fft, ifft};
use cbma_dsp::goertzel::bin_power;
use cbma_dsp::mafilter::moving_average;
use cbma_dsp::resample::{downsample_mean, fractional_delay, upsample_repeat};
use cbma_types::Iq;
use proptest::prelude::*;

fn arb_iq_buffer(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<Iq>> {
    proptest::collection::vec(
        (-1.0f64..1.0, -1.0f64..1.0).prop_map(|(re, im)| Iq::new(re, im)),
        len,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// FFT then IFFT is the identity for any power-of-two buffer.
    #[test]
    fn fft_round_trip(buf in arb_iq_buffer(1..9).prop_map(|v| {
        let n = v.len().next_power_of_two();
        let mut v = v;
        v.resize(n, Iq::ZERO);
        v
    })) {
        let back = ifft(&fft(&buf).unwrap()).unwrap();
        for (a, b) in back.iter().zip(&buf) {
            prop_assert!((*a - *b).abs() < 1e-9);
        }
    }

    /// Parseval: FFT preserves energy (within the 1/N convention).
    #[test]
    fn fft_preserves_energy(buf in arb_iq_buffer(4..5).prop_map(|v| {
        let mut v = v;
        v.resize(16, Iq::ZERO);
        v
    })) {
        let time: f64 = buf.iter().map(|x| x.power()).sum();
        let freq: f64 = fft(&buf).unwrap().iter().map(|x| x.power()).sum::<f64>() / 16.0;
        prop_assert!((time - freq).abs() < 1e-9 * (1.0 + time));
    }

    /// Upsample-then-downsample is the identity for any factor.
    #[test]
    fn resample_round_trip(
        buf in arb_iq_buffer(1..64),
        factor in 1usize..12,
    ) {
        let up = upsample_repeat(&buf, factor);
        prop_assert_eq!(up.len(), buf.len() * factor);
        let down = downsample_mean(&up, factor);
        for (a, b) in down.iter().zip(&buf) {
            prop_assert!((*a - *b).abs() < 1e-12);
        }
    }

    /// Two integer delays compose additively.
    #[test]
    fn integer_delays_compose(
        buf in arb_iq_buffer(8..48),
        d1 in 0usize..5,
        d2 in 0usize..5,
    ) {
        let a = fractional_delay(&fractional_delay(&buf, d1 as f64), d2 as f64);
        let b = fractional_delay(&buf, (d1 + d2) as f64);
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((*x - *y).abs() < 1e-9);
        }
    }

    /// Normalized correlation is symmetric and bounded.
    #[test]
    fn correlation_bounds(
        a in proptest::collection::vec(-1.0f64..1.0, 4..64),
    ) {
        let b: Vec<f64> = a.iter().map(|x| -x * 0.5).collect();
        let c = normalized_correlation(&a, &b);
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&c));
        let c_sym = normalized_correlation(&b, &a);
        prop_assert!((c - c_sym).abs() < 1e-12);
    }

    /// The noncoherent IQ correlation is invariant under a global phase.
    #[test]
    fn iq_correlation_phase_invariance(
        buf in arb_iq_buffer(8..32),
        phase in 0.0f64..std::f64::consts::TAU,
    ) {
        let reference: Vec<f64> = (0..buf.len())
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let rotated: Vec<Iq> = buf.iter().map(|s| *s * Iq::phasor(phase)).collect();
        let m0 = normalized_iq_correlation(&buf, &reference);
        let m1 = normalized_iq_correlation(&rotated, &reference);
        prop_assert!((m0 - m1).abs() < 1e-9);
    }

    /// A moving average never exceeds the input's running extremes.
    #[test]
    fn moving_average_is_bounded(
        input in proptest::collection::vec(-10.0f64..10.0, 1..64),
        window in 1usize..16,
    ) {
        let out = moving_average(&input, window);
        let lo = input.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = input.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        for y in out {
            prop_assert!(y >= lo - 1e-9 && y <= hi + 1e-9);
        }
    }

    /// Goertzel bin power is non-negative and no larger than total energy.
    #[test]
    fn goertzel_power_bounds(
        buf in arb_iq_buffer(4..64),
        f in -0.49f64..0.49,
    ) {
        let p = bin_power(&buf, f);
        let energy: f64 = buf.iter().map(|s| s.power()).sum();
        prop_assert!(p >= 0.0);
        // |X(f)|² ≤ (Σ|x|)² ≤ N·Σ|x|² by Cauchy–Schwarz → p ≤ energy… ×1.
        prop_assert!(p <= energy + 1e-9);
    }

    /// A DC blocker drives any constant input to (near) zero.
    #[test]
    fn dc_blocker_kills_constants(dc in -5.0f64..5.0) {
        let mut bq = Biquad::dc_blocker(0.99).unwrap();
        let input = vec![dc; 3000];
        let out = bq.process_block(&input);
        prop_assert!(out[2999].abs() < 1e-6 + dc.abs() * 1e-6);
    }
}
