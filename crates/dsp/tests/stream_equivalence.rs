//! Regression: every overlap-save path shares one carry-over
//! normalization for ragged final blocks.
//!
//! A window whose length is not a multiple of the FFT block leaves a
//! final block shorter than the transform; each engine must zero-pad it
//! through the same `load_block` helper so the one-shot batch pass, the
//! chunk-fed [`BatchStream`], and the multi-window fallback that
//! `Receiver::receive_coalesced` rides (mixed window sizes route through
//! `fallback_multi` → `BatchCorrelator::correlate_iq_into`) all produce
//! **bit-identical** correlation rows — especially the rows of the last
//! window, whose tail is the ragged one.

use cbma_dsp::{BatchCorrelator, BatchScratch, MultiWindowCorrelator, WindowScratch};
use cbma_types::Iq;

fn signal(n: usize, seed: u64) -> Vec<Iq> {
    (0..n)
        .map(|i| {
            let t = i as f64 + seed as f64 * 0.61;
            Iq::new((0.29 * t).sin() + 0.15, (0.173 * t).cos() - 0.08)
        })
        .collect()
}

fn references(k: usize, l: usize) -> Vec<Vec<f64>> {
    (0..k)
        .map(|c| {
            (0..l)
                .map(|i| if (i * 5 + c * 3) % 4 < 2 { 1.0 } else { -1.0 })
                .collect()
        })
        .collect()
}

fn assert_rows_bit_identical(got: &[Iq], want: &[Iq], label: &str) {
    assert_eq!(got.len(), want.len(), "{label}: row length");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(
            (g.re.to_bits(), g.im.to_bits()),
            (w.re.to_bits(), w.im.to_bits()),
            "{label}: lag {i}"
        );
    }
}

/// The last window of a mixed-size coalesced batch ends in a ragged
/// final block. Its correlation rows must be bit-identical across the
/// one-shot pass, the streamed pass under several chunkings, and the
/// multi-window fallback.
#[test]
fn ragged_final_block_rows_are_bit_identical_across_paths() {
    let refs = references(3, 64);
    let batch = BatchCorrelator::new(&refs);
    let multi = MultiWindowCorrelator::new(&refs);

    // Window lengths chosen so the batch mixes block specs (forcing the
    // fallback path) and the last window needs a multi-block walk whose
    // final block is ragged (1731 is far from any power of two).
    let bufs: Vec<Vec<Iq>> = vec![signal(100, 1), signal(2000, 2), signal(1731, 3)];
    let windows: Vec<&[Iq]> = bufs.iter().map(|b| b.as_slice()).collect();

    let mut ws = WindowScratch::new();
    multi.correlate_iq_multi(&windows, &mut ws);

    for (w, window) in windows.iter().enumerate() {
        // One-shot reference rows.
        let mut one_shot = BatchScratch::new();
        batch.correlate_iq_into(window, &mut one_shot);

        for k in 0..batch.num_codes() {
            assert_rows_bit_identical(
                ws.row(w, k),
                one_shot.code(k),
                &format!("fallback window {w} code {k}"),
            );
        }

        // Streamed rows, under chunkings that misalign with the FFT
        // block every way the runtime can: single samples, a prime, a
        // power of two, and the whole window at once.
        for chunk in [1usize, 251, 512, window.len().max(1)] {
            let mut streamed = BatchScratch::new();
            let mut stream = batch.begin_stream(window.len(), &mut streamed);
            for block in window.chunks(chunk) {
                stream.feed(&batch, block, &mut streamed);
            }
            stream.finish(&batch, &mut streamed);
            assert_eq!(streamed.lags(), one_shot.lags());
            for k in 0..batch.num_codes() {
                assert_rows_bit_identical(
                    streamed.code(k),
                    one_shot.code(k),
                    &format!("stream chunk {chunk} window {w} code {k}"),
                );
            }
        }
    }
}

/// Degenerate windows: shorter than the reference (zero lags) and
/// exactly the reference length (one lag) stream safely.
#[test]
fn degenerate_streams_match_one_shot() {
    let refs = references(2, 32);
    let batch = BatchCorrelator::new(&refs);
    for n in [0usize, 1, 31, 32, 33] {
        let window = signal(n, 7);
        let mut want = BatchScratch::new();
        batch.correlate_iq_into(&window, &mut want);
        let mut got = BatchScratch::new();
        let mut stream = batch.begin_stream(n, &mut got);
        for block in window.chunks(3) {
            stream.feed(&batch, block, &mut got);
        }
        stream.finish(&batch, &mut got);
        assert_eq!(got.lags(), want.lags(), "n={n}");
        for k in 0..batch.num_codes() {
            assert_rows_bit_identical(got.code(k), want.code(k), &format!("n={n} code {k}"));
        }
    }
}
