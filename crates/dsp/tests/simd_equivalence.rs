//! SIMD-vs-scalar and batched-vs-per-code correlation equivalence.
//!
//! The explicit-SIMD kernels in `cbma_dsp::simd` and the shared-FFT
//! [`BatchCorrelator`] are pure optimizations: across random inputs —
//! including every lane-remainder length around the 4-wide AVX2 vector
//! width — each must agree with its scalar / per-code counterpart to
//! floating-point rounding (1e-9 relative on unit-scale data).

use cbma_dsp::simd;
use cbma_dsp::xcorr::{
    BatchCorrelator, BatchScratch, FftPlan, MultiWindowCorrelator, SlidingCorrelator, WindowScratch,
};
use cbma_types::Iq;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn reals(rng: &mut StdRng, n: usize) -> Vec<f64> {
    (0..n).map(|_| rng.gen::<f64>() * 2.0 - 1.0).collect()
}

fn iqs(rng: &mut StdRng, n: usize) -> Vec<Iq> {
    (0..n)
        .map(|_| Iq::new(rng.gen::<f64>() * 2.0 - 1.0, rng.gen::<f64>() * 2.0 - 1.0))
        .collect()
}

/// O(n·m) sliding correlation oracle: out[lag] = Σ s[lag+i]·r[i].
fn direct_sliding(samples: &[Iq], reference: &[f64]) -> Vec<Iq> {
    if samples.len() < reference.len() || reference.is_empty() {
        return Vec::new();
    }
    (0..=samples.len() - reference.len())
        .map(|lag| simd::dot_iq_real_scalar(&samples[lag..lag + reference.len()], reference))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every SIMD kernel matches its scalar twin on lengths that sweep
    /// the lane remainders (0..=9 covers full vectors plus every tail).
    #[test]
    fn simd_kernels_match_scalar_across_lane_remainders(
        seed in 0u64..1 << 48,
        base in 0usize..48,
        tail in 0usize..=9,
    ) {
        let n = base * 4 + tail;
        let mut rng = StdRng::seed_from_u64(seed);
        let a = reals(&mut rng, n);
        let b = reals(&mut rng, n);
        let s = iqs(&mut rng, n);

        prop_assert!((simd::dot(&a, &b) - simd::dot_scalar(&a, &b)).abs() < 1e-9);
        prop_assert!(
            (simd::dot_iq_real(&s, &a) - simd::dot_iq_real_scalar(&s, &a)).abs() < 1e-9
        );
        prop_assert!((simd::sum_power(&s) - simd::sum_power_scalar(&s)).abs() < 1e-9);

        let src = iqs(&mut rng, n);
        let mut dst_v = s.clone();
        let mut dst_s = s.clone();
        simd::spectrum_mul(&mut dst_v, &src);
        simd::spectrum_mul_scalar(&mut dst_s, &src);
        for (v, w) in dst_v.iter().zip(&dst_s) {
            prop_assert!((*v - *w).abs() < 1e-9);
        }

        let mut scl_v = s.clone();
        let mut scl_s = s.clone();
        simd::scale_iq(&mut scl_v, 0.7315);
        simd::scale_iq_scalar(&mut scl_s, 0.7315);
        for (v, w) in scl_v.iter().zip(&scl_s) {
            prop_assert!((*v - *w).abs() < 1e-12);
        }

        let gain = Iq::new(0.4, -1.2);
        let mut sub_v = s.clone();
        let mut sub_s = s.clone();
        simd::subtract_scaled_real(&mut sub_v, &a, gain);
        simd::subtract_scaled_real_scalar(&mut sub_s, &a, gain);
        for (v, w) in sub_v.iter().zip(&sub_s) {
            prop_assert!((*v - *w).abs() < 1e-12);
        }

        let mut mag_v = vec![0.0; n];
        let mut mag_s = vec![0.0; n];
        simd::magnitudes_into(&s, &mut mag_v);
        simd::magnitudes_into_scalar(&s, &mut mag_s);
        for (v, w) in mag_v.iter().zip(&mag_s) {
            prop_assert!((v - w).abs() < 1e-12);
        }
    }

    /// The shared-FFT batch engine returns exactly the rows the per-code
    /// sliding correlator returns, which in turn match the O(n·m) direct
    /// oracle — for K = 1 and larger, and windows of non-power-of-two
    /// lengths spanning several overlap-save blocks.
    #[test]
    fn batch_rows_match_per_code_and_direct(
        seed in 0u64..1 << 48,
        num_codes in 1usize..=8,
        ref_len in 2usize..=96,
        extra in 0usize..700,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let references: Vec<Vec<f64>> = (0..num_codes)
            .map(|_| {
                (0..ref_len)
                    .map(|_| if rng.gen::<bool>() { 1.0 } else { -1.0 })
                    .collect()
            })
            .collect();
        let samples = iqs(&mut rng, ref_len + extra);

        let batch = BatchCorrelator::new(&references);
        let mut scratch = BatchScratch::new();
        batch.correlate_iq_into(&samples, &mut scratch);
        prop_assert_eq!(scratch.num_codes(), num_codes);
        prop_assert_eq!(scratch.lags(), samples.len() - ref_len + 1);

        for (k, reference) in references.iter().enumerate() {
            let per_code = SlidingCorrelator::new(reference).correlate_iq(&samples);
            let row = scratch.code(k);
            // Bit-identical to the per-code engine: the batch pass uses
            // the same block sizing and the same butterflies, only the
            // forward transform of each block is shared.
            prop_assert_eq!(row, per_code.as_slice());
            let oracle = direct_sliding(&samples, reference);
            prop_assert_eq!(row.len(), oracle.len());
            for (b, d) in row.iter().zip(&oracle) {
                prop_assert!(
                    (*b - *d).abs() < 1e-9 * (ref_len as f64),
                    "batch {} vs direct {}",
                    b,
                    d
                );
            }
        }
    }
}

/// O(n²) DFT oracle: X[k] = Σ x[j]·e^{-2πi·jk/n}.
fn direct_dft(input: &[Iq]) -> Vec<Iq> {
    let n = input.len();
    (0..n)
        .map(|k| {
            let mut acc = Iq::ZERO;
            for (j, &x) in input.iter().enumerate() {
                let angle = -std::f64::consts::TAU * (j * k % n) as f64 / n as f64;
                acc += x * Iq::from_polar(1.0, angle);
            }
            acc
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The merged radix-4 / split-tail FFT ladder matches the O(n²) DFT
    /// oracle at every power-of-two size through 512 — both the
    /// even-stage-count sizes (pure radix-4: 4, 16, 64, 256) and the odd
    /// ones that need the radix-2 tail stage (2, 8, 32, 128, 512) — and
    /// the raw bit-reversed-order pipeline round-trips to the input.
    #[test]
    fn radix4_fft_matches_direct_dft(seed in 0u64..1 << 48, log2n in 1u32..=9) {
        let n = 1usize << log2n;
        let mut rng = StdRng::seed_from_u64(seed);
        let input = iqs(&mut rng, n);
        let plan = FftPlan::new(n).unwrap();

        let mut fwd = input.clone();
        plan.forward(&mut fwd).unwrap();
        let oracle = direct_dft(&input);
        for (f, o) in fwd.iter().zip(&oracle) {
            prop_assert!(
                (*f - *o).abs() < 1e-9 * n as f64,
                "n={} fft {:?} vs dft {:?}", n, f, o
            );
        }

        // forward → inverse is the identity to rounding.
        let mut back = fwd.clone();
        plan.inverse(&mut back).unwrap();
        for (b, x) in back.iter().zip(&input) {
            prop_assert!((*b - *x).abs() < 1e-9);
        }

        // The permutation-free raw pipeline round-trips too (DIF emits
        // bit-reversed order, DIT consumes it).
        let mut raw = input.clone();
        plan.forward_raw(&mut raw).unwrap();
        plan.inverse_raw(&mut raw).unwrap();
        for (r, x) in raw.iter().zip(&input) {
            prop_assert!((*r - *x).abs() < 1e-9);
        }
    }

    /// Every row of the multi-window matrix pass is bit-identical to a
    /// per-window [`BatchCorrelator`] pass over the same capture — for
    /// uniform-length windows (the shared fast path) and ragged mixes
    /// that force the per-window fallback, including windows shorter
    /// than the reference (empty rows).
    #[test]
    fn multi_window_rows_match_batch_per_window(
        seed in 0u64..1 << 48,
        num_codes in 1usize..=6,
        ref_len in 2usize..=64,
        num_windows in 1usize..=5,
        uniform in any::<bool>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let references: Vec<Vec<f64>> = (0..num_codes)
            .map(|_| {
                (0..ref_len)
                    .map(|_| if rng.gen::<bool>() { 1.0 } else { -1.0 })
                    .collect()
            })
            .collect();
        let base_len = ref_len + rng.gen_range(0usize..500);
        let captures: Vec<Vec<Iq>> = (0..num_windows)
            .map(|_| {
                let len = if uniform {
                    base_len
                } else {
                    rng.gen_range(1usize..ref_len + 500)
                };
                iqs(&mut rng, len)
            })
            .collect();
        let windows: Vec<&[Iq]> = captures.iter().map(Vec::as_slice).collect();

        let multi = MultiWindowCorrelator::new(&references);
        let mut scratch = WindowScratch::new();
        multi.correlate_iq_multi(&windows, &mut scratch);
        prop_assert_eq!(scratch.num_windows(), num_windows);
        prop_assert_eq!(scratch.num_codes(), num_codes);

        let mut per_window = BatchScratch::new();
        for (w, window) in windows.iter().enumerate() {
            multi.batch().correlate_iq_into(window, &mut per_window);
            prop_assert_eq!(scratch.lags(w), per_window.lags());
            for k in 0..num_codes {
                // Bit-identical: the multi-window pass runs the same
                // butterflies, only the forward transforms are hoisted.
                prop_assert_eq!(scratch.row(w, k), per_window.code(k));
            }
        }
    }
}

/// K = 1 degenerates to a plain sliding correlation.
#[test]
fn single_code_batch_equals_sliding() {
    let mut rng = StdRng::seed_from_u64(7);
    let reference: Vec<f64> = (0..63).map(|_| if rng.gen::<bool>() { 1.0 } else { -1.0 }).collect();
    let samples = iqs(&mut rng, 500);
    let batch = BatchCorrelator::new(&[&reference[..]]);
    let mut scratch = BatchScratch::new();
    batch.correlate_iq_into(&samples, &mut scratch);
    assert_eq!(scratch.num_codes(), 1);
    assert_eq!(
        scratch.code(0),
        SlidingCorrelator::new(&reference).correlate_iq(&samples).as_slice()
    );
}

/// A window shorter than the reference produces zero lags; the scratch
/// must report empty rows, not stale data from a previous capture.
#[test]
fn short_window_yields_empty_rows() {
    let reference = vec![1.0; 32];
    let batch = BatchCorrelator::new(&[&reference[..], &reference[..]]);
    let mut scratch = BatchScratch::new();
    // Prime the scratch with a real pass first.
    let mut rng = StdRng::seed_from_u64(3);
    batch.correlate_iq_into(&iqs(&mut rng, 200), &mut scratch);
    assert!(scratch.lags() > 0);
    batch.correlate_iq_into(&iqs(&mut rng, 31), &mut scratch);
    assert_eq!(scratch.lags(), 0);
    assert!(scratch.code(0).is_empty());
    assert!(scratch.code(1).is_empty());
}

/// Steady state reuses the scratch arena: a second same-length capture
/// must not move the row storage.
#[test]
fn batch_scratch_reuse_is_pointer_stable() {
    let mut rng = StdRng::seed_from_u64(11);
    let references: Vec<Vec<f64>> = (0..4)
        .map(|_| (0..31).map(|_| if rng.gen::<bool>() { 1.0 } else { -1.0 }).collect())
        .collect();
    let batch = BatchCorrelator::new(&references);
    let mut scratch = BatchScratch::new();
    let first = iqs(&mut rng, 400);
    batch.correlate_iq_into(&first, &mut scratch);
    let ptr = scratch.storage_ptr();
    let second = iqs(&mut rng, 400);
    batch.correlate_iq_into(&second, &mut scratch);
    assert_eq!(ptr, scratch.storage_ptr(), "row storage reallocated");
}
