//! Moving-average filtering.
//!
//! Frame synchronization first smooths the received energy level with a
//! moving-average filter of window size Wₙ (§III-B) before comparing the
//! instantaneous power against the smoothed baseline. [`MovingAverage`] is
//! the streaming form used sample-by-sample; [`moving_average`] is the
//! batch form used by offline analysis.
//!
//! # Examples
//!
//! ```
//! use cbma_dsp::MovingAverage;
//!
//! let mut ma = MovingAverage::new(4);
//! let outputs: Vec<f64> = [4.0, 4.0, 4.0, 4.0].iter().map(|&x| ma.push(x)).collect();
//! assert_eq!(outputs.last().copied(), Some(4.0));
//! ```

use std::collections::VecDeque;

/// A streaming moving-average filter over a fixed-size window.
///
/// Until the window fills, the average is taken over the samples seen so
/// far (warm-up behaviour), which matches how a real receiver boots its
/// noise-floor estimate.
#[derive(Debug, Clone)]
pub struct MovingAverage {
    window: VecDeque<f64>,
    capacity: usize,
    sum: f64,
}

impl MovingAverage {
    /// Creates a filter with the given window size.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: usize) -> MovingAverage {
        assert!(window > 0, "moving-average window must be non-zero");
        MovingAverage {
            window: VecDeque::with_capacity(window),
            capacity: window,
            sum: 0.0,
        }
    }

    /// The configured window size Wₙ.
    #[inline]
    pub fn window_size(&self) -> usize {
        self.capacity
    }

    /// Number of samples currently inside the window.
    #[inline]
    pub fn len(&self) -> usize {
        self.window.len()
    }

    /// Whether no samples have been pushed yet.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.window.is_empty()
    }

    /// Pushes a sample and returns the current average.
    pub fn push(&mut self, sample: f64) -> f64 {
        if self.window.len() == self.capacity {
            // Remove the oldest contribution before adding the new one.
            if let Some(old) = self.window.pop_front() {
                self.sum -= old;
            }
        }
        self.window.push_back(sample);
        self.sum += sample;
        self.sum / self.window.len() as f64
    }

    /// The current average without pushing, or `None` before any sample.
    pub fn current(&self) -> Option<f64> {
        if self.window.is_empty() {
            None
        } else {
            Some(self.sum / self.window.len() as f64)
        }
    }

    /// Clears all state, returning the filter to its initial condition.
    pub fn reset(&mut self) {
        self.window.clear();
        self.sum = 0.0;
    }
}

/// Batch moving average: `output[i]` is the mean of the window ending at i
/// (warm-up averages over the prefix). Output length equals input length.
///
/// # Panics
///
/// Panics if `window` is zero.
pub fn moving_average(input: &[f64], window: usize) -> Vec<f64> {
    let mut ma = MovingAverage::new(window);
    input.iter().map(|&x| ma.push(x)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_input_yields_constant_output() {
        let out = moving_average(&[2.0; 10], 4);
        assert!(out.iter().all(|&x| (x - 2.0).abs() < 1e-12));
    }

    #[test]
    fn warm_up_averages_prefix() {
        let mut ma = MovingAverage::new(3);
        assert_eq!(ma.push(3.0), 3.0);
        assert_eq!(ma.push(5.0), 4.0);
        assert_eq!(ma.push(7.0), 5.0);
        // Window now full: oldest (3.0) falls out.
        assert_eq!(ma.push(9.0), 7.0);
    }

    #[test]
    fn window_slides_correctly() {
        let out = moving_average(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 2);
        assert_eq!(out, vec![1.0, 1.5, 2.5, 3.5, 4.5, 5.5]);
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut ma = MovingAverage::new(2);
        ma.push(10.0);
        ma.reset();
        assert!(ma.is_empty());
        assert_eq!(ma.current(), None);
        assert_eq!(ma.push(4.0), 4.0);
    }

    #[test]
    fn step_response_lags_by_window() {
        // A power step from 0 to 1 should take `window` samples to fully
        // register — this is what creates the 3 dB detection margin.
        let mut input = vec![0.0; 8];
        input.extend(vec![1.0; 8]);
        let out = moving_average(&input, 4);
        assert!(out[8] < 1.0); // still averaging in zeros
        assert!((out[11] - 1.0).abs() < 1e-12); // fully transitioned
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_window_panics() {
        MovingAverage::new(0);
    }

    #[test]
    fn long_stream_has_no_drift() {
        // Accumulated floating-point error in the running sum must stay
        // negligible over long streams.
        let mut ma = MovingAverage::new(16);
        let mut last = 0.0;
        for i in 0..100_000 {
            last = ma.push((i % 7) as f64);
        }
        // Window holds the last 16 values of the 0..7 cycle.
        let expected: f64 = (99_984..100_000).map(|i| (i % 7) as f64).sum::<f64>() / 16.0;
        assert!((last - expected).abs() < 1e-9);
    }
}
