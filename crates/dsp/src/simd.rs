//! Explicit-SIMD inner-loop kernels with scalar fallbacks.
//!
//! Every hot inner loop of the receive chain — real dot products, complex
//! multiply-accumulate against a real reference, pointwise spectrum
//! multiplication, radix-2 butterflies, energy sums — funnels through this
//! module. On x86-64 with AVX2+FMA (detected once at runtime) the kernels
//! process two complex samples (four `f64` lanes) per instruction; on
//! other machines, or when the features are absent, the portable scalar
//! versions run instead. The `*_scalar` functions are public so the
//! equivalence tests in `crates/dsp/tests/simd_equivalence.rs` can pin
//! both implementations together across every lane-remainder case.
//!
//! Numerically the vector kernels are *not* bit-identical to the scalar
//! ones (they reassociate additions across accumulator lanes), but both
//! are exact to ~1e-12 relative on receiver-scale inputs, well inside the
//! 1e-9 window the cross-path detector tests enforce.
//!
//! Safety: the only `unsafe` in `cbma-dsp` lives here. It is confined to
//! (a) reinterpreting `&[Iq]` as interleaved `&[f64]` — sound because
//! [`Iq`] is `#[repr(C)] { re: f64, im: f64 }` — and (b) calling
//! `#[target_feature(enable = "avx2,fma")]` functions after
//! `is_x86_feature_detected!` has confirmed both features.

use cbma_types::Iq;

/// The SIMD backend runtime dispatch selected for this machine.
///
/// The enum is the dispatch *seam*: detection distinguishes every tier so
/// wider backends can be dropped in behind the same cached check without
/// touching call sites. Today `Avx512` routes through the AVX2 kernel
/// bodies (512-bit bodies are a planned drop-in) and `Neon` routes
/// through the scalar bodies (NEON is architecturally guaranteed on
/// aarch64, so detection is a constant there).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdLevel {
    /// Portable scalar kernels only.
    Scalar,
    /// AVX2 + FMA: two complex (four `f64`) lanes per vector.
    Avx2,
    /// AVX-512F detected; kernels currently execute the AVX2 bodies.
    Avx512,
    /// aarch64 NEON detected; kernels currently execute the scalar
    /// bodies.
    Neon,
}

/// The backend the kernels dispatch to on this machine (cached after the
/// first call).
#[inline]
pub fn simd_level() -> SimdLevel {
    #[cfg(target_arch = "x86_64")]
    {
        x86::level()
    }
    #[cfg(target_arch = "aarch64")]
    {
        aarch64::level()
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        SimdLevel::Scalar
    }
}

/// `true` when vector (non-scalar) kernel bodies are active on this
/// machine — today that means the AVX2+FMA tier or above.
#[inline]
pub fn simd_active() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        x86::available()
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Views a complex slice as its interleaved `[re, im, re, im, …]` floats.
#[inline]
fn as_f64(samples: &[Iq]) -> &[f64] {
    // SAFETY: Iq is #[repr(C)] with exactly two f64 fields, so a slice of
    // n Iq is layout-identical to 2n contiguous f64s.
    unsafe { std::slice::from_raw_parts(samples.as_ptr() as *const f64, 2 * samples.len()) }
}

/// Raw dot product of two equal-length real sequences.
///
/// # Panics
///
/// Panics if the lengths differ.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot product requires equal lengths");
    #[cfg(target_arch = "x86_64")]
    if x86::available() {
        // SAFETY: available() confirmed avx2+fma at runtime.
        return unsafe { x86::dot(a, b) };
    }
    dot_scalar(a, b)
}

/// Portable reference implementation of [`dot`].
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn dot_scalar(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot product requires equal lengths");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Complex multiply-accumulate of IQ samples against a real reference:
/// `Σ_i samples[i] · reference[i]` — the decoder/detector MAC kernel.
///
/// # Panics
///
/// Panics if the lengths differ.
#[inline]
pub fn dot_iq_real(samples: &[Iq], reference: &[f64]) -> Iq {
    assert_eq!(
        samples.len(),
        reference.len(),
        "iq correlation requires equal lengths"
    );
    #[cfg(target_arch = "x86_64")]
    if x86::available() {
        // SAFETY: available() confirmed avx2+fma at runtime.
        return unsafe { x86::dot_iq_real(samples, reference) };
    }
    dot_iq_real_scalar(samples, reference)
}

/// Portable reference implementation of [`dot_iq_real`].
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn dot_iq_real_scalar(samples: &[Iq], reference: &[f64]) -> Iq {
    assert_eq!(
        samples.len(),
        reference.len(),
        "iq correlation requires equal lengths"
    );
    samples
        .iter()
        .zip(reference)
        .map(|(s, &r)| s.scale(r))
        .sum()
}

/// Pointwise complex multiplication `dst[i] *= src[i]` — the overlap-save
/// spectrum product.
///
/// # Panics
///
/// Panics if the lengths differ.
#[inline]
pub fn spectrum_mul(dst: &mut [Iq], src: &[Iq]) {
    assert_eq!(dst.len(), src.len(), "spectrum product requires equal lengths");
    #[cfg(target_arch = "x86_64")]
    if x86::available() {
        // SAFETY: available() confirmed avx2+fma at runtime.
        unsafe { x86::spectrum_mul(dst, src) };
        return;
    }
    spectrum_mul_scalar(dst, src);
}

/// Portable reference implementation of [`spectrum_mul`].
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn spectrum_mul_scalar(dst: &mut [Iq], src: &[Iq]) {
    assert_eq!(dst.len(), src.len(), "spectrum product requires equal lengths");
    for (x, r) in dst.iter_mut().zip(src) {
        *x *= *r;
    }
}

/// Three-operand spectrum product `dst[i] = a[i] · b[i]` — fuses the
/// copy-then-multiply of the batched overlap-save inner loop into one
/// pass (the K-code engine reads the shared window spectrum K times but
/// never copies it).
///
/// # Panics
///
/// Panics if the lengths differ.
#[inline]
pub fn spectrum_mul_to(dst: &mut [Iq], a: &[Iq], b: &[Iq]) {
    assert_eq!(dst.len(), a.len(), "spectrum product requires equal lengths");
    assert_eq!(dst.len(), b.len(), "spectrum product requires equal lengths");
    #[cfg(target_arch = "x86_64")]
    if x86::available() {
        // SAFETY: available() confirmed avx2+fma at runtime.
        unsafe { x86::spectrum_mul_to(dst, a, b) };
        return;
    }
    spectrum_mul_to_scalar(dst, a, b);
}

/// Portable reference implementation of [`spectrum_mul_to`].
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn spectrum_mul_to_scalar(dst: &mut [Iq], a: &[Iq], b: &[Iq]) {
    assert_eq!(dst.len(), a.len(), "spectrum product requires equal lengths");
    assert_eq!(dst.len(), b.len(), "spectrum product requires equal lengths");
    for ((x, u), v) in dst.iter_mut().zip(a).zip(b) {
        *x = *u * *v;
    }
}

/// Total power `Σ |s|²` of a complex window.
#[inline]
pub fn sum_power(samples: &[Iq]) -> f64 {
    #[cfg(target_arch = "x86_64")]
    if x86::available() {
        // SAFETY: available() confirmed avx2+fma at runtime.
        return unsafe { x86::sum_sq(as_f64(samples)) };
    }
    sum_power_scalar(samples)
}

/// Portable reference implementation of [`sum_power`].
pub fn sum_power_scalar(samples: &[Iq]) -> f64 {
    samples.iter().map(|s| s.power()).sum()
}

/// Scales every sample by a real factor in place (the inverse-FFT 1/N
/// normalization).
#[inline]
pub fn scale_iq(buf: &mut [Iq], k: f64) {
    #[cfg(target_arch = "x86_64")]
    if x86::available() {
        // SAFETY: available() confirmed avx2+fma at runtime.
        unsafe { x86::scale(buf, k) };
        return;
    }
    scale_iq_scalar(buf, k);
}

/// Portable reference implementation of [`scale_iq`].
pub fn scale_iq_scalar(buf: &mut [Iq], k: f64) {
    for x in buf.iter_mut() {
        *x = x.scale(k);
    }
}

/// Subtracts a complex-scaled real envelope in place:
/// `dst[i] -= gain · env[i]` — the SIC cancellation kernel.
///
/// # Panics
///
/// Panics if the lengths differ.
#[inline]
pub fn subtract_scaled_real(dst: &mut [Iq], env: &[f64], gain: Iq) {
    assert_eq!(dst.len(), env.len(), "cancellation requires equal lengths");
    #[cfg(target_arch = "x86_64")]
    if x86::available() {
        // SAFETY: available() confirmed avx2+fma at runtime.
        unsafe { x86::subtract_scaled_real(dst, env, gain) };
        return;
    }
    subtract_scaled_real_scalar(dst, env, gain);
}

/// Portable reference implementation of [`subtract_scaled_real`].
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn subtract_scaled_real_scalar(dst: &mut [Iq], env: &[f64], gain: Iq) {
    assert_eq!(dst.len(), env.len(), "cancellation requires equal lengths");
    for (d, &e) in dst.iter_mut().zip(env) {
        *d -= gain.scale(e);
    }
}

/// Writes `√(re² + im²)` of every sample into `out` — the envelope
/// magnitude series.
///
/// # Panics
///
/// Panics if the lengths differ.
#[inline]
pub fn magnitudes_into(samples: &[Iq], out: &mut [f64]) {
    assert_eq!(samples.len(), out.len(), "magnitude output length mismatch");
    #[cfg(target_arch = "x86_64")]
    if x86::available() {
        // SAFETY: available() confirmed avx2+fma at runtime.
        unsafe { x86::magnitudes_into(samples, out) };
        return;
    }
    magnitudes_into_scalar(samples, out);
}

/// Portable reference implementation of [`magnitudes_into`].
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn magnitudes_into_scalar(samples: &[Iq], out: &mut [f64]) {
    assert_eq!(samples.len(), out.len(), "magnitude output length mismatch");
    for (o, s) in out.iter_mut().zip(samples) {
        *o = s.power().sqrt();
    }
}

/// The first radix-2 butterfly stage (`len = 2`, unit twiddle): adjacent
/// pairs `(u, v)` become `(u + v, u − v)`.
///
/// # Panics
///
/// Panics on an odd-length buffer.
#[inline]
pub fn fft_stage_first(buf: &mut [Iq]) {
    assert!(buf.len().is_multiple_of(2), "first stage needs an even buffer");
    #[cfg(target_arch = "x86_64")]
    if x86::available() {
        // SAFETY: available() confirmed avx2+fma at runtime.
        unsafe { x86::fft_stage_first(buf) };
        return;
    }
    fft_stage_first_scalar(buf);
}

/// Portable reference implementation of [`fft_stage_first`].
///
/// # Panics
///
/// Panics on an odd-length buffer.
pub fn fft_stage_first_scalar(buf: &mut [Iq]) {
    assert!(buf.len().is_multiple_of(2), "first stage needs an even buffer");
    for pair in buf.chunks_exact_mut(2) {
        let u = pair[0];
        let v = pair[1];
        pair[0] = u + v;
        pair[1] = u - v;
    }
}

/// One radix-2 butterfly stage of size `len ≥ 4` over the whole buffer:
/// for every chunk of `len` samples and every `k < len/2`,
/// `(chunk[k], chunk[k+len/2])` becomes `(u + w·v, u − w·v)` with
/// `w = tw[k]` (conjugated when `inverse`). `tw` must hold the stage's
/// `len/2` contiguous twiddles.
///
/// # Panics
///
/// Panics if `len < 4`, `len` is not a multiple of 4, `buf.len()` is not a
/// multiple of `len`, or `tw.len() != len / 2`.
#[inline]
pub fn fft_stage(buf: &mut [Iq], len: usize, tw: &[Iq], inverse: bool) {
    assert!(len >= 4 && len.is_multiple_of(4), "stage length must be 4k");
    assert!(buf.len().is_multiple_of(len), "buffer must tile into chunks");
    assert_eq!(tw.len(), len / 2, "one twiddle per butterfly");
    #[cfg(target_arch = "x86_64")]
    if x86::available() {
        // SAFETY: available() confirmed avx2+fma at runtime; len/2 is even
        // so every chunk half splits into whole 2-butterfly vectors.
        unsafe {
            if inverse {
                x86::fft_stage::<true>(buf, len, tw);
            } else {
                x86::fft_stage::<false>(buf, len, tw);
            }
        }
        return;
    }
    fft_stage_scalar(buf, len, tw, inverse);
}

/// Portable reference implementation of [`fft_stage`].
///
/// # Panics
///
/// Panics under the same shape conditions as [`fft_stage`].
pub fn fft_stage_scalar(buf: &mut [Iq], len: usize, tw: &[Iq], inverse: bool) {
    assert!(len >= 4 && len.is_multiple_of(4), "stage length must be 4k");
    assert!(buf.len().is_multiple_of(len), "buffer must tile into chunks");
    assert_eq!(tw.len(), len / 2, "one twiddle per butterfly");
    let half = len / 2;
    for chunk in buf.chunks_exact_mut(len) {
        let (lo, hi) = chunk.split_at_mut(half);
        for (k, (&w0, h)) in tw.iter().zip(hi.iter_mut()).enumerate() {
            let w = if inverse { w0.conj() } else { w0 };
            let u = lo[k];
            let v = *h * w;
            lo[k] = u + v;
            *h = u - v;
        }
    }
}

/// One decimation-in-frequency radix-2 stage of size `len ≥ 4`: for every
/// chunk of `len` samples and every `k < len/2`,
/// `(chunk[k], chunk[k+len/2])` becomes `(u + v, (u − v)·w)` with
/// `w = tw[k]` (conjugated when `inverse`) — the twiddle multiply lands
/// *after* the butterfly, the mirror of [`fft_stage`]. Running the DIF
/// stages from `len = n` down to 4 followed by [`fft_stage_first`]
/// transforms a natural-order buffer into a **bit-reversed-order**
/// spectrum with no permutation pass; [`crate::xcorr::FftPlan`] pairs it
/// with the plain DIT stages to keep the whole correlation pipeline
/// permutation-free.
///
/// # Panics
///
/// Panics under the same shape conditions as [`fft_stage`].
#[inline]
pub fn fft_stage_dif(buf: &mut [Iq], len: usize, tw: &[Iq], inverse: bool) {
    assert!(len >= 4 && len.is_multiple_of(4), "stage length must be 4k");
    assert!(buf.len().is_multiple_of(len), "buffer must tile into chunks");
    assert_eq!(tw.len(), len / 2, "one twiddle per butterfly");
    #[cfg(target_arch = "x86_64")]
    if x86::available() {
        // SAFETY: available() confirmed avx2+fma at runtime; len/2 is even
        // so every chunk half splits into whole 2-butterfly vectors.
        unsafe {
            if inverse {
                x86::fft_stage_dif::<true>(buf, len, tw);
            } else {
                x86::fft_stage_dif::<false>(buf, len, tw);
            }
        }
        return;
    }
    fft_stage_dif_scalar(buf, len, tw, inverse);
}

/// Portable reference implementation of [`fft_stage_dif`].
///
/// # Panics
///
/// Panics under the same shape conditions as [`fft_stage`].
pub fn fft_stage_dif_scalar(buf: &mut [Iq], len: usize, tw: &[Iq], inverse: bool) {
    assert!(len >= 4 && len.is_multiple_of(4), "stage length must be 4k");
    assert!(buf.len().is_multiple_of(len), "buffer must tile into chunks");
    assert_eq!(tw.len(), len / 2, "one twiddle per butterfly");
    let half = len / 2;
    for chunk in buf.chunks_exact_mut(len) {
        let (lo, hi) = chunk.split_at_mut(half);
        for (k, (&w0, h)) in tw.iter().zip(hi.iter_mut()).enumerate() {
            let w = if inverse { w0.conj() } else { w0 };
            let u = lo[k];
            let v = *h;
            lo[k] = u + v;
            *h = (u - v) * w;
        }
    }
}

/// One merged **radix-4 decimation-in-time** stage of size `len ≥ 8`: the
/// exact algebraic fusion of the two radix-2 DIT stages `len/2` and `len`,
/// done in a single pass over the buffer. For every chunk of `len` samples
/// and every `k < q = len/4`, with `W = e^{−2πi/len}` (conjugated when
/// `inverse`, which also flips the `∓i` below to `±i`):
///
/// ```text
/// b̂ = chunk[k+q]·W²ᵏ   ĉ = chunk[k+2q]·Wᵏ   d̂ = chunk[k+3q]·W³ᵏ
/// chunk[k]    = (a + b̂) + (ĉ + d̂)     chunk[k+q]  = (a − b̂) ∓ i(ĉ − d̂)
/// chunk[k+2q] = (a + b̂) − (ĉ + d̂)     chunk[k+3q] = (a − b̂) ± i(ĉ − d̂)
/// ```
///
/// Three complex twiddle multiplies replace the four of the two radix-2
/// stages — ~25% fewer multiplies — and the buffer is walked once instead
/// of twice. `tw1`/`tw2`/`tw3` hold `Wᵏ`/`W²ᵏ`/`W³ᵏ` for `k < q`
/// ([`crate::xcorr::FftPlan`] slices the first two out of its stage-major
/// radix-2 table and owns a dedicated `W³ᵏ` table).
///
/// # Panics
///
/// Panics if `len < 8`, `len` is not a multiple of 8, `buf.len()` is not
/// a multiple of `len`, or any twiddle slice's length differs from
/// `len / 4`.
#[inline]
pub fn fft_stage4(buf: &mut [Iq], len: usize, tw1: &[Iq], tw2: &[Iq], tw3: &[Iq], inverse: bool) {
    check_stage4(buf, len, tw1, tw2, tw3);
    #[cfg(target_arch = "x86_64")]
    if x86::available() {
        // SAFETY: available() confirmed avx2+fma at runtime; len/4 is
        // even so the quarter strides split into whole 2-complex vectors.
        unsafe {
            if inverse {
                x86::fft_stage4::<true>(buf, len, tw1, tw2, tw3, len / 4);
            } else {
                x86::fft_stage4::<false>(buf, len, tw1, tw2, tw3, len / 4);
            }
        }
        return;
    }
    fft_stage4_scalar(buf, len, tw1, tw2, tw3, inverse);
}

/// Output-pruned variant of [`fft_stage4`] for the **final** DIT stage of
/// a transform whose caller only reads `buf[..needed]`.
///
/// The last decimation-in-time stage covers the whole buffer in one
/// chunk (`len == buf.len()`), and butterfly `k` is the only one writing
/// outputs `k`, `k+q`, `k+2q`, `k+3q`. When `needed ≤ q` only butterflies
/// `k < needed` contribute to the read range, so the rest are skipped —
/// an overlap-save correlator that keeps `lags ≪ fft_size` outputs per
/// block saves up to a quarter of its inverse-transform work. Every
/// output that *is* computed gets the exact same value (same operations)
/// as the unpruned stage; outputs past the computed range are left
/// unspecified.
///
/// # Panics
///
/// Panics under [`fft_stage4`]'s shape conditions, or if `len` differs
/// from `buf.len()` (pruning is only sound for a single-chunk stage).
#[inline]
pub fn fft_stage4_pruned(
    buf: &mut [Iq],
    len: usize,
    tw1: &[Iq],
    tw2: &[Iq],
    tw3: &[Iq],
    inverse: bool,
    needed: usize,
) {
    check_stage4(buf, len, tw1, tw2, tw3);
    assert_eq!(buf.len(), len, "pruned stage requires a single chunk");
    let klim = needed.min(len / 4);
    #[cfg(target_arch = "x86_64")]
    if x86::available() {
        // SAFETY: as fft_stage4; the kernel rounds the butterfly limit up
        // to a whole 2-complex vector itself.
        unsafe {
            if inverse {
                x86::fft_stage4::<true>(buf, len, tw1, tw2, tw3, klim.div_ceil(2) * 2);
            } else {
                x86::fft_stage4::<false>(buf, len, tw1, tw2, tw3, klim.div_ceil(2) * 2);
            }
        }
        return;
    }
    fft_stage4_scalar_limited(buf, len, tw1, tw2, tw3, inverse, klim);
}

/// Portable reference implementation of [`fft_stage4`].
///
/// # Panics
///
/// Panics under the same shape conditions as [`fft_stage4`].
pub fn fft_stage4_scalar(
    buf: &mut [Iq],
    len: usize,
    tw1: &[Iq],
    tw2: &[Iq],
    tw3: &[Iq],
    inverse: bool,
) {
    check_stage4(buf, len, tw1, tw2, tw3);
    fft_stage4_scalar_limited(buf, len, tw1, tw2, tw3, inverse, len / 4);
}

/// [`fft_stage4_scalar`] restricted to butterflies `k < klim` (the
/// scalar body of [`fft_stage4_pruned`]).
fn fft_stage4_scalar_limited(
    buf: &mut [Iq],
    len: usize,
    tw1: &[Iq],
    tw2: &[Iq],
    tw3: &[Iq],
    inverse: bool,
    klim: usize,
) {
    let q = len / 4;
    for chunk in buf.chunks_exact_mut(len) {
        for k in 0..klim.min(q) {
            let (w1, w2, w3) = if inverse {
                (tw1[k].conj(), tw2[k].conj(), tw3[k].conj())
            } else {
                (tw1[k], tw2[k], tw3[k])
            };
            let a = chunk[k];
            let b = chunk[k + q] * w2;
            let c = chunk[k + 2 * q] * w1;
            let d = chunk[k + 3 * q] * w3;
            let s0 = a + b;
            let s1 = a - b;
            let s2 = c + d;
            let s3 = c - d;
            let j3 = Iq::new(-s3.im, s3.re); // i·s3
            chunk[k] = s0 + s2;
            chunk[k + 2 * q] = s0 - s2;
            if inverse {
                chunk[k + q] = s1 + j3;
                chunk[k + 3 * q] = s1 - j3;
            } else {
                chunk[k + q] = s1 - j3;
                chunk[k + 3 * q] = s1 + j3;
            }
        }
    }
}

/// The final **radix-4 decimation-in-time** stage (`len = 4`, all unit
/// twiddles): the fusion of [`fft_stage_first`] with the `len = 4` DIT
/// stage, so a DIT ladder over an even-log₂ transform never runs a
/// separate radix-2 pass.
///
/// # Panics
///
/// Panics if `buf.len()` is not a multiple of 4.
#[inline]
pub fn fft_stage4_last(buf: &mut [Iq], inverse: bool) {
    assert!(buf.len().is_multiple_of(4), "radix-4 stage needs 4k samples");
    #[cfg(target_arch = "x86_64")]
    if x86::available() {
        // SAFETY: available() confirmed avx2+fma at runtime.
        unsafe {
            if inverse {
                x86::fft_stage4_last::<true>(buf);
            } else {
                x86::fft_stage4_last::<false>(buf);
            }
        }
        return;
    }
    fft_stage4_last_scalar(buf, inverse);
}

/// Portable reference implementation of [`fft_stage4_last`].
///
/// # Panics
///
/// Panics if `buf.len()` is not a multiple of 4.
pub fn fft_stage4_last_scalar(buf: &mut [Iq], inverse: bool) {
    assert!(buf.len().is_multiple_of(4), "radix-4 stage needs 4k samples");
    for chunk in buf.chunks_exact_mut(4) {
        let s0 = chunk[0] + chunk[1];
        let s1 = chunk[0] - chunk[1];
        let s2 = chunk[2] + chunk[3];
        let s3 = chunk[2] - chunk[3];
        let j3 = Iq::new(-s3.im, s3.re);
        chunk[0] = s0 + s2;
        chunk[2] = s0 - s2;
        if inverse {
            chunk[1] = s1 + j3;
            chunk[3] = s1 - j3;
        } else {
            chunk[1] = s1 - j3;
            chunk[3] = s1 + j3;
        }
    }
}

/// One merged **radix-4 decimation-in-frequency** stage of size
/// `len ≥ 8`: the fusion of the radix-2 DIF stages `len` and `len/2`,
/// with the twiddle multiplies landing *after* the butterfly (the mirror
/// of [`fft_stage4`]):
///
/// ```text
/// t0 = a + c   t1 = a − c   t2 = b + d   t3 = b − d
/// chunk[k]    = t0 + t2            chunk[k+q]  = (t0 − t2)·W²ᵏ
/// chunk[k+2q] = (t1 ∓ i·t3)·Wᵏ     chunk[k+3q] = (t1 ± i·t3)·W³ᵏ
/// ```
///
/// Chained largest-first this produces the same bit-reversed spectral
/// order as the radix-2 DIF cascade, so it composes with
/// [`fft_stage4`]'s DIT ladder permutation-free.
///
/// # Panics
///
/// Panics under the same shape conditions as [`fft_stage4`].
#[inline]
pub fn fft_stage4_dif(
    buf: &mut [Iq],
    len: usize,
    tw1: &[Iq],
    tw2: &[Iq],
    tw3: &[Iq],
    inverse: bool,
) {
    check_stage4(buf, len, tw1, tw2, tw3);
    #[cfg(target_arch = "x86_64")]
    if x86::available() {
        // SAFETY: available() confirmed avx2+fma at runtime; len/4 is
        // even so the quarter strides split into whole 2-complex vectors.
        unsafe {
            if inverse {
                x86::fft_stage4_dif::<true>(buf, len, tw1, tw2, tw3);
            } else {
                x86::fft_stage4_dif::<false>(buf, len, tw1, tw2, tw3);
            }
        }
        return;
    }
    fft_stage4_dif_scalar(buf, len, tw1, tw2, tw3, inverse);
}

/// Portable reference implementation of [`fft_stage4_dif`].
///
/// # Panics
///
/// Panics under the same shape conditions as [`fft_stage4`].
pub fn fft_stage4_dif_scalar(
    buf: &mut [Iq],
    len: usize,
    tw1: &[Iq],
    tw2: &[Iq],
    tw3: &[Iq],
    inverse: bool,
) {
    check_stage4(buf, len, tw1, tw2, tw3);
    let q = len / 4;
    for chunk in buf.chunks_exact_mut(len) {
        for k in 0..q {
            let (w1, w2, w3) = if inverse {
                (tw1[k].conj(), tw2[k].conj(), tw3[k].conj())
            } else {
                (tw1[k], tw2[k], tw3[k])
            };
            let a = chunk[k];
            let b = chunk[k + q];
            let c = chunk[k + 2 * q];
            let d = chunk[k + 3 * q];
            let t0 = a + c;
            let t1 = a - c;
            let t2 = b + d;
            let t3 = b - d;
            let j3 = Iq::new(-t3.im, t3.re); // i·t3
            chunk[k] = t0 + t2;
            chunk[k + q] = (t0 - t2) * w2;
            if inverse {
                chunk[k + 2 * q] = (t1 + j3) * w1;
                chunk[k + 3 * q] = (t1 - j3) * w3;
            } else {
                chunk[k + 2 * q] = (t1 - j3) * w1;
                chunk[k + 3 * q] = (t1 + j3) * w3;
            }
        }
    }
}

/// The final **radix-4 decimation-in-frequency** stage (`len = 4`, all
/// unit twiddles): the fusion of the `len = 4` DIF stage with
/// [`fft_stage_first`].
///
/// # Panics
///
/// Panics if `buf.len()` is not a multiple of 4.
#[inline]
pub fn fft_stage4_dif_last(buf: &mut [Iq], inverse: bool) {
    assert!(buf.len().is_multiple_of(4), "radix-4 stage needs 4k samples");
    #[cfg(target_arch = "x86_64")]
    if x86::available() {
        // SAFETY: available() confirmed avx2+fma at runtime.
        unsafe {
            if inverse {
                x86::fft_stage4_dif_last::<true>(buf);
            } else {
                x86::fft_stage4_dif_last::<false>(buf);
            }
        }
        return;
    }
    fft_stage4_dif_last_scalar(buf, inverse);
}

/// Portable reference implementation of [`fft_stage4_dif_last`].
///
/// # Panics
///
/// Panics if `buf.len()` is not a multiple of 4.
pub fn fft_stage4_dif_last_scalar(buf: &mut [Iq], inverse: bool) {
    assert!(buf.len().is_multiple_of(4), "radix-4 stage needs 4k samples");
    for chunk in buf.chunks_exact_mut(4) {
        let t0 = chunk[0] + chunk[2];
        let t1 = chunk[0] - chunk[2];
        let t2 = chunk[1] + chunk[3];
        let t3 = chunk[1] - chunk[3];
        let j3 = Iq::new(-t3.im, t3.re);
        chunk[0] = t0 + t2;
        chunk[1] = t0 - t2;
        if inverse {
            chunk[2] = t1 + j3;
            chunk[3] = t1 - j3;
        } else {
            chunk[2] = t1 - j3;
            chunk[3] = t1 + j3;
        }
    }
}

/// Shared shape contract of the strided radix-4 stage kernels.
fn check_stage4(buf: &[Iq], len: usize, tw1: &[Iq], tw2: &[Iq], tw3: &[Iq]) {
    assert!(len >= 8 && len.is_multiple_of(8), "stage length must be 8k");
    assert!(buf.len().is_multiple_of(len), "buffer must tile into chunks");
    let q = len / 4;
    assert_eq!(tw1.len(), q, "one Wᵏ twiddle per butterfly");
    assert_eq!(tw2.len(), q, "one W²ᵏ twiddle per butterfly");
    assert_eq!(tw3.len(), q, "one W³ᵏ twiddle per butterfly");
}

#[cfg(target_arch = "aarch64")]
mod aarch64 {
    use super::SimdLevel;

    /// NEON is architecturally guaranteed on aarch64, so detection is a
    /// constant. Kernel bodies still run scalar on this tier — the NEON
    /// implementations slot in behind this same seam.
    #[inline]
    pub fn level() -> SimdLevel {
        SimdLevel::Neon
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::{Iq, SimdLevel};
    use std::arch::x86_64::*;
    use std::sync::atomic::{AtomicU8, Ordering};

    /// 0 = undetected, 1 = scalar only, 2 = avx2+fma, 3 = avx512f on top
    /// (kernel bodies still run the AVX2 tier — the 512-bit bodies are a
    /// planned drop-in behind the same cached check).
    static LEVEL: AtomicU8 = AtomicU8::new(0);

    #[inline]
    fn detect() -> u8 {
        let avx2 =
            std::is_x86_feature_detected!("avx2") && std::is_x86_feature_detected!("fma");
        let tier = if !avx2 {
            1
        } else if std::is_x86_feature_detected!("avx512f") {
            3
        } else {
            2
        };
        LEVEL.store(tier, Ordering::Relaxed);
        tier
    }

    #[inline]
    pub fn available() -> bool {
        match LEVEL.load(Ordering::Relaxed) {
            0 => detect() >= 2,
            level => level >= 2,
        }
    }

    #[inline]
    pub fn level() -> SimdLevel {
        let tier = match LEVEL.load(Ordering::Relaxed) {
            0 => detect(),
            level => level,
        };
        match tier {
            3 => SimdLevel::Avx512,
            2 => SimdLevel::Avx2,
            _ => SimdLevel::Scalar,
        }
    }

    /// Sums the four lanes of a vector.
    #[inline]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn hsum(v: __m256d) -> f64 {
        let lo = _mm256_castpd256_pd128(v);
        let hi = _mm256_extractf128_pd(v, 1);
        let s = _mm_add_pd(lo, hi);
        _mm_cvtsd_f64(_mm_add_sd(s, _mm_unpackhi_pd(s, s)))
    }

    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn dot(a: &[f64], b: &[f64]) -> f64 {
        let n = a.len();
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        let mut acc0 = _mm256_setzero_pd();
        let mut acc1 = _mm256_setzero_pd();
        let mut i = 0;
        while i + 8 <= n {
            acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(ap.add(i)), _mm256_loadu_pd(bp.add(i)), acc0);
            acc1 = _mm256_fmadd_pd(
                _mm256_loadu_pd(ap.add(i + 4)),
                _mm256_loadu_pd(bp.add(i + 4)),
                acc1,
            );
            i += 8;
        }
        if i + 4 <= n {
            acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(ap.add(i)), _mm256_loadu_pd(bp.add(i)), acc0);
            i += 4;
        }
        let mut total = hsum(_mm256_add_pd(acc0, acc1));
        while i < n {
            total += a[i] * b[i];
            i += 1;
        }
        total
    }

    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn sum_sq(a: &[f64]) -> f64 {
        let n = a.len();
        let ap = a.as_ptr();
        let mut acc0 = _mm256_setzero_pd();
        let mut acc1 = _mm256_setzero_pd();
        let mut i = 0;
        while i + 8 <= n {
            let x0 = _mm256_loadu_pd(ap.add(i));
            let x1 = _mm256_loadu_pd(ap.add(i + 4));
            acc0 = _mm256_fmadd_pd(x0, x0, acc0);
            acc1 = _mm256_fmadd_pd(x1, x1, acc1);
            i += 8;
        }
        if i + 4 <= n {
            let x0 = _mm256_loadu_pd(ap.add(i));
            acc0 = _mm256_fmadd_pd(x0, x0, acc0);
            i += 4;
        }
        let mut total = hsum(_mm256_add_pd(acc0, acc1));
        while i < n {
            total += a[i] * a[i];
            i += 1;
        }
        total
    }

    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn dot_iq_real(samples: &[Iq], reference: &[f64]) -> Iq {
        let n = samples.len();
        let sp = samples.as_ptr() as *const f64;
        let rp = reference.as_ptr();
        let mut acc0 = _mm256_setzero_pd();
        let mut acc1 = _mm256_setzero_pd();
        let mut i = 0;
        while i + 4 <= n {
            // [r0, r1, r2, r3] expanded to per-component pairs.
            let r4 = _mm256_loadu_pd(rp.add(i));
            let e01 = _mm256_permute4x64_pd(r4, 0x50); // [r0, r0, r1, r1]
            let e23 = _mm256_permute4x64_pd(r4, 0xFA); // [r2, r2, r3, r3]
            acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(sp.add(2 * i)), e01, acc0);
            acc1 = _mm256_fmadd_pd(_mm256_loadu_pd(sp.add(2 * i + 4)), e23, acc1);
            i += 4;
        }
        let acc = _mm256_add_pd(acc0, acc1);
        let lo = _mm256_castpd256_pd128(acc);
        let hi = _mm256_extractf128_pd(acc, 1);
        let pair = _mm_add_pd(lo, hi); // [Σre, Σim]
        let mut re = _mm_cvtsd_f64(pair);
        let mut im = _mm_cvtsd_f64(_mm_unpackhi_pd(pair, pair));
        while i < n {
            let s = samples[i];
            let r = reference[i];
            re += s.re * r;
            im += s.im * r;
            i += 1;
        }
        Iq::new(re, im)
    }

    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn spectrum_mul(dst: &mut [Iq], src: &[Iq]) {
        let n = dst.len();
        let dp = dst.as_mut_ptr() as *mut f64;
        let sp = src.as_ptr() as *const f64;
        let mut i = 0;
        while i + 2 <= n {
            let v = _mm256_loadu_pd(dp.add(2 * i)); // [a, b] pairs
            let w = _mm256_loadu_pd(sp.add(2 * i)); // [c, d] pairs
            let wre = _mm256_movedup_pd(w); // [c, c]
            let wim = _mm256_permute_pd(w, 0xF); // [d, d]
            let vsw = _mm256_permute_pd(v, 0x5); // [b, a]
            let t2 = _mm256_mul_pd(vsw, wim); // [b·d, a·d]
            // [a·c − b·d, b·c + a·d]
            let prod = _mm256_fmaddsub_pd(v, wre, t2);
            _mm256_storeu_pd(dp.add(2 * i), prod);
            i += 2;
        }
        while i < n {
            dst[i] *= src[i];
            i += 1;
        }
    }

    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn spectrum_mul_to(dst: &mut [Iq], a: &[Iq], b: &[Iq]) {
        let n = dst.len();
        let dp = dst.as_mut_ptr() as *mut f64;
        let ap = a.as_ptr() as *const f64;
        let bp = b.as_ptr() as *const f64;
        let mut i = 0;
        while i + 2 <= n {
            let v = _mm256_loadu_pd(ap.add(2 * i)); // [a, b] pairs
            let w = _mm256_loadu_pd(bp.add(2 * i)); // [c, d] pairs
            let wre = _mm256_movedup_pd(w); // [c, c]
            let wim = _mm256_permute_pd(w, 0xF); // [d, d]
            let vsw = _mm256_permute_pd(v, 0x5); // [b, a]
            let t2 = _mm256_mul_pd(vsw, wim); // [b·d, a·d]
            // [a·c − b·d, b·c + a·d]
            let prod = _mm256_fmaddsub_pd(v, wre, t2);
            _mm256_storeu_pd(dp.add(2 * i), prod);
            i += 2;
        }
        while i < n {
            dst[i] = a[i] * b[i];
            i += 1;
        }
    }

    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn scale(buf: &mut [Iq], k: f64) {
        let n2 = 2 * buf.len();
        let p = buf.as_mut_ptr() as *mut f64;
        let kv = _mm256_set1_pd(k);
        let mut i = 0;
        while i + 4 <= n2 {
            _mm256_storeu_pd(p.add(i), _mm256_mul_pd(_mm256_loadu_pd(p.add(i)), kv));
            i += 4;
        }
        while i < n2 {
            *p.add(i) *= k;
            i += 1;
        }
    }

    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn subtract_scaled_real(dst: &mut [Iq], env: &[f64], gain: Iq) {
        let n = dst.len();
        let dp = dst.as_mut_ptr() as *mut f64;
        let ep = env.as_ptr();
        let g = _mm256_setr_pd(gain.re, gain.im, gain.re, gain.im);
        let mut i = 0;
        while i + 4 <= n {
            let e4 = _mm256_loadu_pd(ep.add(i));
            let e01 = _mm256_permute4x64_pd(e4, 0x50);
            let e23 = _mm256_permute4x64_pd(e4, 0xFA);
            let d01 = _mm256_loadu_pd(dp.add(2 * i));
            let d23 = _mm256_loadu_pd(dp.add(2 * i + 4));
            _mm256_storeu_pd(dp.add(2 * i), _mm256_fnmadd_pd(g, e01, d01));
            _mm256_storeu_pd(dp.add(2 * i + 4), _mm256_fnmadd_pd(g, e23, d23));
            i += 4;
        }
        while i < n {
            dst[i] -= gain.scale(env[i]);
            i += 1;
        }
    }

    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn magnitudes_into(samples: &[Iq], out: &mut [f64]) {
        let n = samples.len();
        let sp = samples.as_ptr() as *const f64;
        let op = out.as_mut_ptr();
        let mut i = 0;
        while i + 4 <= n {
            let x0 = _mm256_loadu_pd(sp.add(2 * i));
            let x1 = _mm256_loadu_pd(sp.add(2 * i + 4));
            let s0 = _mm256_mul_pd(x0, x0);
            let s1 = _mm256_mul_pd(x1, x1);
            // hadd interleaves the two sources: [a01, b01, a23, b23] →
            // permute to sample order before the square root.
            let sums = _mm256_permute4x64_pd(_mm256_hadd_pd(s0, s1), 0xD8);
            _mm256_storeu_pd(op.add(i), _mm256_sqrt_pd(sums));
            i += 4;
        }
        while i < n {
            *op.add(i) = samples[i].power().sqrt();
            i += 1;
        }
    }

    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn fft_stage_first(buf: &mut [Iq]) {
        let n2 = 2 * buf.len();
        let p = buf.as_mut_ptr() as *mut f64;
        let signs = _mm256_setr_pd(1.0, 1.0, -1.0, -1.0);
        let mut i = 0;
        while i + 4 <= n2 {
            let x = _mm256_loadu_pd(p.add(i)); // [u, v]
            let swap = _mm256_permute2f128_pd(x, x, 0x01); // [v, u]
            // [v + u, u − v]
            _mm256_storeu_pd(p.add(i), _mm256_fmadd_pd(x, signs, swap));
            i += 4;
        }
        // Odd single-complex tail cannot occur (even length asserted by
        // the dispatcher), so nothing remains.
    }

    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn fft_stage<const INVERSE: bool>(buf: &mut [Iq], len: usize, tw: &[Iq]) {
        let half = len / 2;
        let tp = tw.as_ptr() as *const f64;
        for chunk in buf.chunks_exact_mut(len) {
            let (lo, hi) = chunk.split_at_mut(half);
            let lp = lo.as_mut_ptr() as *mut f64;
            let hp = hi.as_mut_ptr() as *mut f64;
            let mut k = 0;
            while k < 2 * half {
                let v = _mm256_loadu_pd(hp.add(k));
                let w = _mm256_loadu_pd(tp.add(k));
                let wre = _mm256_movedup_pd(w);
                let wim = _mm256_permute_pd(w, 0xF);
                let t2 = _mm256_mul_pd(_mm256_permute_pd(v, 0x5), wim);
                // Forward: v·w. Inverse: v·conj(w) — the conjugate flips
                // the add/sub interleave of the fused multiply.
                let prod = if INVERSE {
                    _mm256_fmsubadd_pd(v, wre, t2)
                } else {
                    _mm256_fmaddsub_pd(v, wre, t2)
                };
                let u = _mm256_loadu_pd(lp.add(k));
                _mm256_storeu_pd(lp.add(k), _mm256_add_pd(u, prod));
                _mm256_storeu_pd(hp.add(k), _mm256_sub_pd(u, prod));
                k += 4;
            }
        }
    }

    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn fft_stage_dif<const INVERSE: bool>(buf: &mut [Iq], len: usize, tw: &[Iq]) {
        let half = len / 2;
        let tp = tw.as_ptr() as *const f64;
        for chunk in buf.chunks_exact_mut(len) {
            let (lo, hi) = chunk.split_at_mut(half);
            let lp = lo.as_mut_ptr() as *mut f64;
            let hp = hi.as_mut_ptr() as *mut f64;
            let mut k = 0;
            while k < 2 * half {
                let u = _mm256_loadu_pd(lp.add(k));
                let v = _mm256_loadu_pd(hp.add(k));
                _mm256_storeu_pd(lp.add(k), _mm256_add_pd(u, v));
                // (u − v)·w, twiddle applied after the butterfly.
                let d = _mm256_sub_pd(u, v);
                let w = _mm256_loadu_pd(tp.add(k));
                let wre = _mm256_movedup_pd(w);
                let wim = _mm256_permute_pd(w, 0xF);
                let t2 = _mm256_mul_pd(_mm256_permute_pd(d, 0x5), wim);
                let prod = if INVERSE {
                    _mm256_fmsubadd_pd(d, wre, t2)
                } else {
                    _mm256_fmaddsub_pd(d, wre, t2)
                };
                _mm256_storeu_pd(hp.add(k), prod);
                k += 4;
            }
        }
    }

    /// Two packed complex products `v·w` (or `v·conj(w)` when `INVERSE`).
    #[inline]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn cmul<const INVERSE: bool>(v: __m256d, w: __m256d) -> __m256d {
        let wre = _mm256_movedup_pd(w);
        let wim = _mm256_permute_pd(w, 0xF);
        let t2 = _mm256_mul_pd(_mm256_permute_pd(v, 0x5), wim);
        if INVERSE {
            _mm256_fmsubadd_pd(v, wre, t2)
        } else {
            _mm256_fmaddsub_pd(v, wre, t2)
        }
    }

    /// Two packed `i·v` rotations: `(re, im) → (−im, re)`.
    #[inline]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn rot90(v: __m256d) -> __m256d {
        let neg_re = _mm256_setr_pd(-0.0, 0.0, -0.0, 0.0);
        _mm256_xor_pd(_mm256_permute_pd(v, 0x5), neg_re)
    }

    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn fft_stage4<const INVERSE: bool>(
        buf: &mut [Iq],
        len: usize,
        tw1: &[Iq],
        tw2: &[Iq],
        tw3: &[Iq],
        klim: usize,
    ) {
        let q = len / 4;
        let flim = 2 * klim.min(q); // f64 limit within the quarter
        let t1p = tw1.as_ptr() as *const f64;
        let t2p = tw2.as_ptr() as *const f64;
        let t3p = tw3.as_ptr() as *const f64;
        for chunk in buf.chunks_exact_mut(len) {
            let p = chunk.as_mut_ptr() as *mut f64;
            let mut f = 0; // f64 offset within the quarter, 2 complex/iter
            while f < flim {
                let a = _mm256_loadu_pd(p.add(f));
                let b = _mm256_loadu_pd(p.add(f + 2 * q));
                let c = _mm256_loadu_pd(p.add(f + 4 * q));
                let d = _mm256_loadu_pd(p.add(f + 6 * q));
                let bh = cmul::<INVERSE>(b, _mm256_loadu_pd(t2p.add(f)));
                let ch = cmul::<INVERSE>(c, _mm256_loadu_pd(t1p.add(f)));
                let dh = cmul::<INVERSE>(d, _mm256_loadu_pd(t3p.add(f)));
                let s0 = _mm256_add_pd(a, bh);
                let s1 = _mm256_sub_pd(a, bh);
                let s2 = _mm256_add_pd(ch, dh);
                let s3 = _mm256_sub_pd(ch, dh);
                let j3 = rot90(s3);
                _mm256_storeu_pd(p.add(f), _mm256_add_pd(s0, s2));
                _mm256_storeu_pd(p.add(f + 4 * q), _mm256_sub_pd(s0, s2));
                if INVERSE {
                    _mm256_storeu_pd(p.add(f + 2 * q), _mm256_add_pd(s1, j3));
                    _mm256_storeu_pd(p.add(f + 6 * q), _mm256_sub_pd(s1, j3));
                } else {
                    _mm256_storeu_pd(p.add(f + 2 * q), _mm256_sub_pd(s1, j3));
                    _mm256_storeu_pd(p.add(f + 6 * q), _mm256_add_pd(s1, j3));
                }
                f += 4;
            }
        }
    }

    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn fft_stage4_last<const INVERSE: bool>(buf: &mut [Iq]) {
        let n2 = 2 * buf.len();
        let p = buf.as_mut_ptr() as *mut f64;
        let signs = _mm256_setr_pd(1.0, 1.0, -1.0, -1.0);
        // Sign mask giving `[s2, ∓i·s3]` from `[s2, (s3.im, s3.re)]`.
        let jmask = if INVERSE {
            _mm256_setr_pd(0.0, 0.0, -0.0, 0.0) // +i·s3 = (−im, re)
        } else {
            _mm256_setr_pd(0.0, 0.0, 0.0, -0.0) // −i·s3 = (im, −re)
        };
        let mut i = 0;
        while i + 8 <= n2 {
            let v01 = _mm256_loadu_pd(p.add(i));
            let v23 = _mm256_loadu_pd(p.add(i + 4));
            // [c0 + c1, c0 − c1] and [c2 + c3, c2 − c3].
            let s01 = _mm256_fmadd_pd(v01, signs, _mm256_permute2f128_pd(v01, v01, 0x01));
            let s23 = _mm256_fmadd_pd(v23, signs, _mm256_permute2f128_pd(v23, v23, 0x01));
            // [s2.re, s2.im, s3.im, s3.re] → sign-flip into [s2, ∓i·s3].
            let t = _mm256_xor_pd(_mm256_permute_pd(s23, 0x6), jmask);
            _mm256_storeu_pd(p.add(i), _mm256_add_pd(s01, t));
            _mm256_storeu_pd(p.add(i + 4), _mm256_sub_pd(s01, t));
            i += 8;
        }
    }

    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn fft_stage4_dif<const INVERSE: bool>(
        buf: &mut [Iq],
        len: usize,
        tw1: &[Iq],
        tw2: &[Iq],
        tw3: &[Iq],
    ) {
        let q = len / 4;
        let t1p = tw1.as_ptr() as *const f64;
        let t2p = tw2.as_ptr() as *const f64;
        let t3p = tw3.as_ptr() as *const f64;
        for chunk in buf.chunks_exact_mut(len) {
            let p = chunk.as_mut_ptr() as *mut f64;
            let mut f = 0; // f64 offset within the quarter, 2 complex/iter
            while f < 2 * q {
                let a = _mm256_loadu_pd(p.add(f));
                let b = _mm256_loadu_pd(p.add(f + 2 * q));
                let c = _mm256_loadu_pd(p.add(f + 4 * q));
                let d = _mm256_loadu_pd(p.add(f + 6 * q));
                let t0 = _mm256_add_pd(a, c);
                let t1 = _mm256_sub_pd(a, c);
                let t2 = _mm256_add_pd(b, d);
                let t3 = _mm256_sub_pd(b, d);
                let j3 = rot90(t3);
                _mm256_storeu_pd(p.add(f), _mm256_add_pd(t0, t2));
                let w2 = _mm256_loadu_pd(t2p.add(f));
                _mm256_storeu_pd(p.add(f + 2 * q), cmul::<INVERSE>(_mm256_sub_pd(t0, t2), w2));
                let (hi, lo) = if INVERSE {
                    (_mm256_add_pd(t1, j3), _mm256_sub_pd(t1, j3))
                } else {
                    (_mm256_sub_pd(t1, j3), _mm256_add_pd(t1, j3))
                };
                let w1 = _mm256_loadu_pd(t1p.add(f));
                let w3 = _mm256_loadu_pd(t3p.add(f));
                _mm256_storeu_pd(p.add(f + 4 * q), cmul::<INVERSE>(hi, w1));
                _mm256_storeu_pd(p.add(f + 6 * q), cmul::<INVERSE>(lo, w3));
                f += 4;
            }
        }
    }

    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn fft_stage4_dif_last<const INVERSE: bool>(buf: &mut [Iq]) {
        let n2 = 2 * buf.len();
        let p = buf.as_mut_ptr() as *mut f64;
        let signs = _mm256_setr_pd(1.0, 1.0, -1.0, -1.0);
        // [t1 ∓ i·t3, t1 ± i·t3] = [t1, t1] + signs·[t3.im, t3.re, …].
        let jsigns = if INVERSE {
            _mm256_setr_pd(-1.0, 1.0, 1.0, -1.0)
        } else {
            _mm256_setr_pd(1.0, -1.0, -1.0, 1.0)
        };
        let mut i = 0;
        while i + 8 <= n2 {
            let v01 = _mm256_loadu_pd(p.add(i));
            let v23 = _mm256_loadu_pd(p.add(i + 4));
            let s = _mm256_add_pd(v01, v23); // [t0, t2]
            let d = _mm256_sub_pd(v01, v23); // [t1, t3]
            // [t0 + t2, t0 − t2].
            let out01 = _mm256_fmadd_pd(s, signs, _mm256_permute2f128_pd(s, s, 0x01));
            let t1d = _mm256_permute2f128_pd(d, d, 0x00); // [t1, t1]
            let t3sw = _mm256_permute_pd(_mm256_permute2f128_pd(d, d, 0x11), 0x5);
            let out23 = _mm256_fmadd_pd(t3sw, jsigns, t1d);
            _mm256_storeu_pd(p.add(i), out01);
            _mm256_storeu_pd(p.add(i + 4), out23);
            i += 8;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn signal(n: usize) -> Vec<Iq> {
        (0..n)
            .map(|i| {
                let t = i as f64;
                Iq::new((0.37 * t).sin() + 0.2, (0.11 * t).cos() - 0.1)
            })
            .collect()
    }

    fn reals(n: usize) -> Vec<f64> {
        (0..n).map(|i| (0.73 * i as f64).sin() - 0.1).collect()
    }

    #[test]
    fn dot_matches_scalar_across_remainders() {
        for n in 0..40 {
            let a = reals(n);
            let b: Vec<f64> = (0..n).map(|i| (0.31 * i as f64).cos()).collect();
            let fast = dot(&a, &b);
            let slow = dot_scalar(&a, &b);
            assert!((fast - slow).abs() < 1e-9, "n={n}: {fast} vs {slow}");
        }
    }

    #[test]
    fn dot_iq_real_matches_scalar_across_remainders() {
        for n in 0..40 {
            let s = signal(n);
            let r = reals(n);
            let fast = dot_iq_real(&s, &r);
            let slow = dot_iq_real_scalar(&s, &r);
            assert!((fast - slow).abs() < 1e-9, "n={n}");
        }
    }

    #[test]
    fn spectrum_mul_matches_scalar() {
        for n in 0..20 {
            let src = signal(n);
            let mut fast = signal(n);
            let mut slow = fast.clone();
            spectrum_mul(&mut fast, &src);
            spectrum_mul_scalar(&mut slow, &src);
            for (a, b) in fast.iter().zip(&slow) {
                assert!((*a - *b).abs() < 1e-12, "n={n}");
            }
        }
    }

    #[test]
    fn power_scale_magnitude_and_cancel_match_scalar() {
        for n in 0..33 {
            let s = signal(n);
            assert!((sum_power(&s) - sum_power_scalar(&s)).abs() < 1e-9, "n={n}");

            let mut a = s.clone();
            let mut b = s.clone();
            scale_iq(&mut a, 0.37);
            scale_iq_scalar(&mut b, 0.37);
            assert_eq!(a, b, "scale n={n}");

            let env = reals(n);
            let g = Iq::new(0.8, -0.45);
            let mut a = s.clone();
            let mut b = s.clone();
            subtract_scaled_real(&mut a, &env, g);
            subtract_scaled_real_scalar(&mut b, &env, g);
            for (x, y) in a.iter().zip(&b) {
                assert!((*x - *y).abs() < 1e-12, "cancel n={n}");
            }

            let mut ma = vec![0.0; n];
            let mut mb = vec![0.0; n];
            magnitudes_into(&s, &mut ma);
            magnitudes_into_scalar(&s, &mut mb);
            for (x, y) in ma.iter().zip(&mb) {
                assert!((x - y).abs() < 1e-12, "mag n={n}");
            }
        }
    }

    #[test]
    fn butterfly_stages_match_scalar() {
        for log in 2..8usize {
            let len = 1 << log;
            let half = len / 2;
            let tw: Vec<Iq> = (0..half)
                .map(|k| Iq::phasor(-2.0 * std::f64::consts::PI * k as f64 / len as f64))
                .collect();
            for chunks in [1usize, 2, 4] {
                let buf = signal(len * chunks);
                for inverse in [false, true] {
                    let mut fast = buf.clone();
                    let mut slow = buf.clone();
                    fft_stage(&mut fast, len, &tw, inverse);
                    fft_stage_scalar(&mut slow, len, &tw, inverse);
                    for (a, b) in fast.iter().zip(&slow) {
                        assert!((*a - *b).abs() < 1e-12, "len={len} inv={inverse}");
                    }

                    let mut fast = buf.clone();
                    let mut slow = buf.clone();
                    fft_stage_dif(&mut fast, len, &tw, inverse);
                    fft_stage_dif_scalar(&mut slow, len, &tw, inverse);
                    for (a, b) in fast.iter().zip(&slow) {
                        assert!((*a - *b).abs() < 1e-12, "dif len={len} inv={inverse}");
                    }
                }
            }
        }
        let buf = signal(16);
        let mut fast = buf.clone();
        let mut slow = buf;
        fft_stage_first(&mut fast);
        fft_stage_first_scalar(&mut slow);
        assert_eq!(fast, slow);
    }

    fn radix4_twiddles(len: usize) -> (Vec<Iq>, Vec<Iq>, Vec<Iq>) {
        let q = len / 4;
        let w = |m: usize| {
            (0..q)
                .map(|k| Iq::phasor(-2.0 * std::f64::consts::PI * (m * k) as f64 / len as f64))
                .collect::<Vec<Iq>>()
        };
        (w(1), w(2), w(3))
    }

    #[test]
    fn radix4_stages_match_scalar() {
        for log in 3..9usize {
            let len = 1 << log;
            let (tw1, tw2, tw3) = radix4_twiddles(len);
            for chunks in [1usize, 2, 4] {
                let buf = signal(len * chunks);
                for inverse in [false, true] {
                    let mut fast = buf.clone();
                    let mut slow = buf.clone();
                    fft_stage4(&mut fast, len, &tw1, &tw2, &tw3, inverse);
                    fft_stage4_scalar(&mut slow, len, &tw1, &tw2, &tw3, inverse);
                    for (a, b) in fast.iter().zip(&slow) {
                        assert!((*a - *b).abs() < 1e-12, "dit len={len} inv={inverse}");
                    }

                    let mut fast = buf.clone();
                    let mut slow = buf.clone();
                    fft_stage4_dif(&mut fast, len, &tw1, &tw2, &tw3, inverse);
                    fft_stage4_dif_scalar(&mut slow, len, &tw1, &tw2, &tw3, inverse);
                    for (a, b) in fast.iter().zip(&slow) {
                        assert!((*a - *b).abs() < 1e-12, "dif len={len} inv={inverse}");
                    }
                }
            }
        }
        for n in [4usize, 8, 20, 64] {
            let buf = signal(n);
            for inverse in [false, true] {
                let mut fast = buf.clone();
                let mut slow = buf.clone();
                fft_stage4_last(&mut fast, inverse);
                fft_stage4_last_scalar(&mut slow, inverse);
                for (a, b) in fast.iter().zip(&slow) {
                    assert!((*a - *b).abs() < 1e-12, "last n={n} inv={inverse}");
                }

                let mut fast = buf.clone();
                let mut slow = buf.clone();
                fft_stage4_dif_last(&mut fast, inverse);
                fft_stage4_dif_last_scalar(&mut slow, inverse);
                for (a, b) in fast.iter().zip(&slow) {
                    assert!((*a - *b).abs() < 1e-12, "dif last n={n} inv={inverse}");
                }
            }
        }
    }

    #[test]
    fn radix4_stage_merges_two_radix2_stages() {
        // One radix-4 DIT pass == radix-2 stage len/2 then len; one
        // radix-4 DIF pass == radix-2 stage len then len/2.
        for len in [8usize, 32, 256] {
            let half = len / 2;
            let tw_for = |l: usize| {
                (0..l / 2)
                    .map(|k| Iq::phasor(-2.0 * std::f64::consts::PI * k as f64 / l as f64))
                    .collect::<Vec<Iq>>()
            };
            let (tw1, tw2, tw3) = radix4_twiddles(len);
            let buf = signal(len * 2);
            for inverse in [false, true] {
                let mut merged = buf.clone();
                fft_stage4(&mut merged, len, &tw1, &tw2, &tw3, inverse);
                let mut pair = buf.clone();
                fft_stage(&mut pair, half, &tw_for(half), inverse);
                fft_stage(&mut pair, len, &tw_for(len), inverse);
                for (a, b) in merged.iter().zip(&pair) {
                    assert!((*a - *b).abs() < 1e-9, "dit len={len} inv={inverse}");
                }

                let mut merged = buf.clone();
                fft_stage4_dif(&mut merged, len, &tw1, &tw2, &tw3, inverse);
                let mut pair = buf.clone();
                fft_stage_dif(&mut pair, len, &tw_for(len), inverse);
                fft_stage_dif(&mut pair, half, &tw_for(half), inverse);
                for (a, b) in merged.iter().zip(&pair) {
                    assert!((*a - *b).abs() < 1e-9, "dif len={len} inv={inverse}");
                }
            }
        }
    }

    #[test]
    fn simd_level_is_cached_and_consistent() {
        let level = simd_level();
        assert_eq!(level, simd_level(), "level must be stable");
        match level {
            SimdLevel::Avx2 | SimdLevel::Avx512 => assert!(simd_active()),
            SimdLevel::Scalar | SimdLevel::Neon => assert!(!simd_active()),
        }
    }
}
