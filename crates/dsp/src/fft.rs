//! Radix-2 decimation-in-time FFT.
//!
//! Used by the OFDM excitation model in `cbma-channel` (an OFDM symbol is
//! an IFFT of subcarrier constellation points) and for spectrum inspection
//! in tests and ablation benches. Power-of-two sizes only, which covers
//! every internal use.
//!
//! These free functions build a throwaway [`crate::xcorr::FftPlan`] per
//! call — convenient for one-shot transforms. Hot paths that transform the
//! same size repeatedly (the overlap-save correlator, the OFDM symbol
//! loop) should hold a plan instead: it precomputes the bit-reversal
//! permutation and twiddle table once, so the butterfly loop performs no
//! `sin`/`cos` work.

use cbma_types::{Iq, Result};

use crate::xcorr::FftPlan;

/// Forward FFT (no normalization), in place over a power-of-two buffer.
///
/// # Errors
///
/// Returns [`CbmaError::ShapeMismatch`] when the length is not a power of
/// two (length zero is accepted as a no-op).
pub fn fft_in_place(buf: &mut [Iq]) -> Result<()> {
    FftPlan::new(buf.len())?.forward(buf)
}

/// Inverse FFT with 1/N normalization, in place.
///
/// # Errors
///
/// Returns [`CbmaError::ShapeMismatch`] when the length is not a power of
/// two.
pub fn ifft_in_place(buf: &mut [Iq]) -> Result<()> {
    FftPlan::new(buf.len())?.inverse(buf)
}

/// Forward FFT returning a new buffer.
///
/// # Errors
///
/// Returns [`CbmaError::ShapeMismatch`] when the length is not a power of
/// two.
pub fn fft(input: &[Iq]) -> Result<Vec<Iq>> {
    let mut buf = input.to_vec();
    fft_in_place(&mut buf)?;
    Ok(buf)
}

/// Inverse FFT returning a new buffer.
///
/// # Errors
///
/// Returns [`CbmaError::ShapeMismatch`] when the length is not a power of
/// two.
pub fn ifft(input: &[Iq]) -> Result<Vec<Iq>> {
    let mut buf = input.to_vec();
    ifft_in_place(&mut buf)?;
    Ok(buf)
}

/// Power spectrum |FFT|²/N of a buffer.
///
/// # Errors
///
/// Returns [`CbmaError::ShapeMismatch`] when the length is not a power of
/// two.
pub fn power_spectrum(input: &[Iq]) -> Result<Vec<f64>> {
    let n = input.len().max(1) as f64;
    Ok(fft(input)?.into_iter().map(|x| x.power() / n).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut buf = vec![Iq::ZERO; 8];
        buf[0] = Iq::ONE;
        fft_in_place(&mut buf).unwrap();
        for x in &buf {
            assert!((*x - Iq::ONE).abs() < 1e-12);
        }
    }

    #[test]
    fn fft_of_dc_is_impulse() {
        let mut buf = vec![Iq::ONE; 8];
        fft_in_place(&mut buf).unwrap();
        assert!((buf[0].re - 8.0).abs() < 1e-12);
        for x in &buf[1..] {
            assert!(x.abs() < 1e-12);
        }
    }

    #[test]
    fn fft_locates_a_single_tone() {
        let n = 64;
        let k = 5;
        let buf: Vec<Iq> = (0..n)
            .map(|i| Iq::phasor(2.0 * std::f64::consts::PI * k as f64 * i as f64 / n as f64))
            .collect();
        let spec = power_spectrum(&buf).unwrap();
        let peak = spec
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(peak, k);
        // All energy concentrates in that bin.
        assert!(spec[k] / spec.iter().sum::<f64>() > 0.999);
    }

    #[test]
    fn round_trip_identity() {
        let buf: Vec<Iq> = (0..32)
            .map(|i| Iq::new((i as f64 * 0.7).sin(), (i as f64 * 0.3).cos()))
            .collect();
        let back = ifft(&fft(&buf).unwrap()).unwrap();
        for (a, b) in back.iter().zip(&buf) {
            assert!((*a - *b).abs() < 1e-10);
        }
    }

    #[test]
    fn parseval_energy_preserved() {
        let buf: Vec<Iq> = (0..16).map(|i| Iq::new(i as f64, -(i as f64))).collect();
        let time_energy: f64 = buf.iter().map(|x| x.power()).sum();
        let freq_energy: f64 = fft(&buf).unwrap().iter().map(|x| x.power()).sum::<f64>() / 16.0;
        assert!((time_energy - freq_energy).abs() / time_energy < 1e-12);
    }

    #[test]
    fn non_power_of_two_rejected() {
        let mut buf = vec![Iq::ZERO; 12];
        assert!(matches!(
            fft_in_place(&mut buf),
            Err(cbma_types::CbmaError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn empty_buffer_is_noop() {
        let mut buf: Vec<Iq> = Vec::new();
        fft_in_place(&mut buf).unwrap();
        ifft_in_place(&mut buf).unwrap();
        assert!(buf.is_empty());
    }
}
