//! IIR biquad sections.
//!
//! Direct-form-I second-order sections with standard RBJ cookbook
//! designs. The envelope receiver's mean-removal step is a block version
//! of DC blocking; a streaming implementation would use the
//! [`Biquad::dc_blocker`] here, and spectral shaping in tests uses the
//! low-/high-pass designs.

use std::f64::consts::PI;

use cbma_types::{CbmaError, Result};

/// A second-order IIR filter (normalized so a0 = 1).
#[derive(Debug, Clone, PartialEq)]
pub struct Biquad {
    b0: f64,
    b1: f64,
    b2: f64,
    a1: f64,
    a2: f64,
    // Direct form I state.
    x1: f64,
    x2: f64,
    y1: f64,
    y2: f64,
}

impl Biquad {
    /// Creates a biquad from normalized coefficients.
    pub fn from_coefficients(b0: f64, b1: f64, b2: f64, a1: f64, a2: f64) -> Biquad {
        Biquad {
            b0,
            b1,
            b2,
            a1,
            a2,
            x1: 0.0,
            x2: 0.0,
            y1: 0.0,
            y2: 0.0,
        }
    }

    fn check_f(f: f64) -> Result<()> {
        if !(0.0..0.5).contains(&f) || f == 0.0 {
            return Err(CbmaError::InvalidConfig(format!(
                "normalized frequency must be in (0, 0.5), got {f}"
            )));
        }
        Ok(())
    }

    /// RBJ low-pass at normalized frequency `f` with quality `q`.
    ///
    /// # Errors
    ///
    /// Returns [`CbmaError::InvalidConfig`] for out-of-range `f` or
    /// non-positive `q`.
    pub fn low_pass(f: f64, q: f64) -> Result<Biquad> {
        Biquad::check_f(f)?;
        if q <= 0.0 {
            return Err(CbmaError::InvalidConfig("q must be positive".into()));
        }
        let w0 = 2.0 * PI * f;
        let alpha = w0.sin() / (2.0 * q);
        let cosw = w0.cos();
        let a0 = 1.0 + alpha;
        Ok(Biquad::from_coefficients(
            (1.0 - cosw) / 2.0 / a0,
            (1.0 - cosw) / a0,
            (1.0 - cosw) / 2.0 / a0,
            -2.0 * cosw / a0,
            (1.0 - alpha) / a0,
        ))
    }

    /// RBJ high-pass at normalized frequency `f` with quality `q`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Biquad::low_pass`].
    pub fn high_pass(f: f64, q: f64) -> Result<Biquad> {
        Biquad::check_f(f)?;
        if q <= 0.0 {
            return Err(CbmaError::InvalidConfig("q must be positive".into()));
        }
        let w0 = 2.0 * PI * f;
        let alpha = w0.sin() / (2.0 * q);
        let cosw = w0.cos();
        let a0 = 1.0 + alpha;
        Ok(Biquad::from_coefficients(
            (1.0 + cosw) / 2.0 / a0,
            -(1.0 + cosw) / a0,
            (1.0 + cosw) / 2.0 / a0,
            -2.0 * cosw / a0,
            (1.0 - alpha) / a0,
        ))
    }

    /// A first-order-style DC blocker realized as a biquad: pole at `r`
    /// (close to 1), zero at DC.
    ///
    /// # Errors
    ///
    /// Returns [`CbmaError::InvalidConfig`] unless 0 < r < 1.
    pub fn dc_blocker(r: f64) -> Result<Biquad> {
        if !(0.0..1.0).contains(&r) || r == 0.0 {
            return Err(CbmaError::InvalidConfig(format!(
                "dc-blocker pole must be in (0, 1), got {r}"
            )));
        }
        Ok(Biquad::from_coefficients(1.0, -1.0, 0.0, -r, 0.0))
    }

    /// Processes one sample.
    pub fn process(&mut self, x: f64) -> f64 {
        let y = self.b0 * x + self.b1 * self.x1 + self.b2 * self.x2
            - self.a1 * self.y1
            - self.a2 * self.y2;
        self.x2 = self.x1;
        self.x1 = x;
        self.y2 = self.y1;
        self.y1 = y;
        y
    }

    /// Processes a block, returning the outputs.
    pub fn process_block(&mut self, input: &[f64]) -> Vec<f64> {
        input.iter().map(|&x| self.process(x)).collect()
    }

    /// Clears the filter state.
    pub fn reset(&mut self) {
        self.x1 = 0.0;
        self.x2 = 0.0;
        self.y1 = 0.0;
        self.y2 = 0.0;
    }

    /// Magnitude response at normalized frequency `f`.
    pub fn magnitude_at(&self, f: f64) -> f64 {
        use cbma_types::Iq;
        let z1 = Iq::phasor(-2.0 * PI * f);
        let z2 = z1 * z1;
        let num = Iq::new(self.b0, 0.0) + z1.scale(self.b1) + z2.scale(self.b2);
        let den = Iq::ONE + z1.scale(self.a1) + z2.scale(self.a2);
        num.abs() / den.abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn low_pass_response_shape() {
        let bq = Biquad::low_pass(0.1, std::f64::consts::FRAC_1_SQRT_2).unwrap();
        assert!((bq.magnitude_at(0.001) - 1.0).abs() < 0.01);
        assert!((bq.magnitude_at(0.1) - std::f64::consts::FRAC_1_SQRT_2).abs() < 0.02);
        assert!(bq.magnitude_at(0.4) < 0.05);
    }

    #[test]
    fn high_pass_response_shape() {
        let bq = Biquad::high_pass(0.1, std::f64::consts::FRAC_1_SQRT_2).unwrap();
        assert!(bq.magnitude_at(0.001) < 0.01);
        assert!((bq.magnitude_at(0.45) - 1.0).abs() < 0.02);
    }

    #[test]
    fn dc_blocker_kills_dc_keeps_signal() {
        let mut bq = Biquad::dc_blocker(0.995).unwrap();
        // DC + a tone.
        let f = 0.05;
        let input: Vec<f64> = (0..4000)
            .map(|k| 1.0 + (2.0 * PI * f * k as f64).sin())
            .collect();
        let out = bq.process_block(&input);
        // Steady-state mean ≈ 0 (DC removed), tone amplitude preserved.
        let tail = &out[2000..];
        let mean: f64 = tail.iter().sum::<f64>() / tail.len() as f64;
        assert!(mean.abs() < 0.02, "residual dc {mean}");
        let power: f64 =
            tail.iter().map(|y| (y - mean) * (y - mean)).sum::<f64>() / tail.len() as f64;
        assert!((power - 0.5).abs() < 0.05, "tone power {power}");
    }

    #[test]
    fn filtering_is_causal_and_stateful() {
        let mut bq = Biquad::low_pass(0.2, 0.707).unwrap();
        let a = bq.process(1.0);
        let b = bq.process(0.0);
        assert_ne!(a, b, "state must evolve");
        bq.reset();
        assert_eq!(bq.process(1.0), a, "reset must restore the initial state");
    }

    #[test]
    fn impulse_response_is_stable() {
        let mut bq = Biquad::low_pass(0.05, 0.707).unwrap();
        let mut impulse = vec![0.0; 5000];
        impulse[0] = 1.0;
        let out = bq.process_block(&impulse);
        assert!(out[4999].abs() < 1e-9, "impulse response did not decay");
        let energy: f64 = out.iter().map(|y| y * y).sum();
        assert!(energy.is_finite());
    }

    #[test]
    fn invalid_designs_rejected() {
        assert!(Biquad::low_pass(0.0, 0.7).is_err());
        assert!(Biquad::low_pass(0.5, 0.7).is_err());
        assert!(Biquad::low_pass(0.1, 0.0).is_err());
        assert!(Biquad::high_pass(0.6, 0.7).is_err());
        assert!(Biquad::dc_blocker(0.0).is_err());
        assert!(Biquad::dc_blocker(1.0).is_err());
    }
}
