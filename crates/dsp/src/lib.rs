//! Digital signal processing primitives for the CBMA receiver and tags.
//!
//! This crate is the software stand-in for the USRP RIO / LabVIEW signal
//! chain the paper built on (§VI). It provides exactly the blocks the CBMA
//! pipeline needs:
//!
//! * [`mafilter`] — the moving-average filter frame synchronization runs on
//!   the received energy level (§III-B),
//! * [`energy`] — sliding-window energy detection with the +3 dB comparator
//!   threshold,
//! * [`correlate`] — normalized cross-correlation and peak search, the core
//!   of user detection and chip decoding,
//! * [`resample`] — up/down-sampling and fractional-delay interpolation
//!   (tag upsampling §III-A, receiver downsampling §V-B, asynchrony
//!   modelling §VII-C.2),
//! * [`squarewave`] — Fourier synthesis of the Δf square-wave subcarrier
//!   (paper Eq. 2) including the first-harmonic approximation,
//! * [`fft`] — a radix-2 FFT used for spectrum inspection and the OFDM
//!   interference model,
//! * [`xcorr`] — the fast sliding-correlation engine: precomputed
//!   [`xcorr::FftPlan`]s, the overlap-save [`xcorr::SlidingCorrelator`]
//!   with cached reference spectra, the K-code [`xcorr::BatchCorrelator`]
//!   and the W-window [`xcorr::MultiWindowCorrelator`]
//!   that shares one forward FFT per block across every cached reference
//!   spectrum, and [`xcorr::RunningEnergy`] prefix sums for O(1) segment
//!   power/mean queries — the receiver's user detector runs on these,
//! * [`simd`] — the explicit-SIMD inner-loop kernels (AVX2+FMA with
//!   portable scalar fallbacks and one-time runtime dispatch) that all of
//!   the above funnel through,
//! * [`window`] — taper functions for spectral analysis.
//!
//! # Examples
//!
//! ```
//! use cbma_dsp::correlate::normalized_correlation;
//!
//! let code = [1.0, -1.0, 1.0, 1.0, -1.0];
//! let same = normalized_correlation(&code, &code);
//! assert!((same - 1.0).abs() < 1e-12);
//! ```

pub mod biquad;
pub mod correlate;
pub mod energy;
pub mod fft;
pub mod fir;
pub mod goertzel;
pub mod mafilter;
pub mod resample;
pub mod simd;
pub mod squarewave;
pub mod window;
pub mod xcorr;

pub use biquad::Biquad;
pub use correlate::{
    correlate_iq_bipolar, normalized_correlation, sliding_correlation, PeakSearch,
};
pub use xcorr::{
    BatchCorrelator, BatchScratch, BatchStream, FftPlan, MultiWindowCorrelator, RunningEnergy,
    SlidingCorrelator, WindowScratch,
};
pub use energy::{power_series, EnergyDetector};
pub use fir::Fir;
pub use goertzel::Goertzel;
pub use mafilter::MovingAverage;
pub use resample::{downsample_mean, fractional_delay, upsample_repeat};
pub use squarewave::SquareWave;
