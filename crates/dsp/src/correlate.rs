//! Cross-correlation and peak search.
//!
//! Correlation is the workhorse of CBMA's receiver: user detection
//! cross-correlates every known PN code against the received preamble, and
//! decoding cross-correlates each chip window against the detected user's
//! code (§III-B). The functions here work in the bipolar (±1) domain for
//! codes and on complex IQ for received samples; IQ correlation is
//! *noncoherent* (magnitude of the complex correlation) because the
//! backscatter channel applies an unknown phase rotation per tag.

use cbma_types::Iq;

use crate::simd;
use crate::xcorr::SlidingCorrelator;

/// Below this sequence length [`periodic_cross_correlation`] stays in the
/// time domain (with the ring unrolled so the inner loop has no modulo);
/// above it the overlap-save FFT engine wins. Re-tuned against the SIMD
/// direct kernel *and* the permutation-free raw-FFT pipeline by the
/// `periodic_xcorr` cases of the `bench_summary` runner in `cbma-bench`
/// (release build): the vectorized dot product pushes the break-even past
/// the old value of 96 — at n = 95 direct still wins (≈1.3 µs vs
/// ≈1.9 µs) — while the DIF/DIT engine pulls it back under 127, where
/// the FFT path is now ahead (≈1.9 µs vs ≈2.2 µs); interpolating the
/// n² vs n log n trends puts the crossing near 116.
pub const PERIODIC_FFT_CROSSOVER: usize = 120;

/// Raw (unnormalized) dot product of two equal-length real sequences.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    simd::dot(a, b)
}

/// Normalized correlation of two equal-length real sequences, in [−1, 1].
///
/// Returns 0.0 when either sequence has zero energy.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn normalized_correlation(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "correlation requires equal lengths");
    let ea = simd::dot(a, a);
    let eb = simd::dot(b, b);
    if ea == 0.0 || eb == 0.0 {
        return 0.0;
    }
    dot(a, b) / (ea.sqrt() * eb.sqrt())
}

/// Periodic (circular) cross-correlation of two equal-length ±1 sequences
/// at every lag; used to characterize PN-code families.
///
/// The ring access `b[(i + lag) % n]` is unrolled by doubling `b`, which
/// turns every lag into a plain linear dot product; long sequences (≥
/// [`PERIODIC_FFT_CROSSOVER`]) additionally go through the overlap-save
/// FFT engine, for O(n log n) total instead of O(n²). The pre-FFT
/// implementation survives as the `periodic_cross_correlation_naive`
/// oracle in this module's tests.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn periodic_cross_correlation(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(
        a.len(),
        b.len(),
        "periodic correlation requires equal lengths"
    );
    let n = a.len();
    if n == 0 {
        return Vec::new();
    }
    // c[lag] = Σ_i a[i]·b[(i+lag) mod n] = Σ_i a[i]·bb[lag+i] with bb = b‖b.
    let mut bb = Vec::with_capacity(2 * n);
    bb.extend_from_slice(b);
    bb.extend_from_slice(b);
    if n < PERIODIC_FFT_CROSSOVER {
        (0..n)
            .map(|lag| dot(a, &bb[lag..lag + n]))
            .collect()
    } else {
        let mut c = SlidingCorrelator::new(a).correlate_real(&bb);
        c.truncate(n);
        c
    }
}

/// Complex correlation of IQ samples against a real bipolar reference,
/// returning the complex accumulation. Callers usually take `.abs()` for a
/// noncoherent decision statistic.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn correlate_iq_bipolar(samples: &[Iq], reference: &[f64]) -> Iq {
    simd::dot_iq_real(samples, reference)
}

/// Noncoherent normalized correlation magnitude of IQ samples against a
/// bipolar reference, in [0, 1]. Zero-energy inputs yield 0.0.
pub fn normalized_iq_correlation(samples: &[Iq], reference: &[f64]) -> f64 {
    assert_eq!(
        samples.len(),
        reference.len(),
        "iq correlation requires equal lengths"
    );
    let es = simd::sum_power(samples);
    let er = simd::dot(reference, reference);
    if es == 0.0 || er == 0.0 {
        return 0.0;
    }
    correlate_iq_bipolar(samples, reference).abs() / (es.sqrt() * er.sqrt())
}

/// Slides `reference` across `samples` and returns the noncoherent
/// correlation magnitude at each offset (length
/// `samples.len() - reference.len() + 1`). Returns an empty vector when the
/// reference is longer than the samples.
pub fn sliding_correlation(samples: &[Iq], reference: &[f64]) -> Vec<f64> {
    if reference.is_empty() || reference.len() > samples.len() {
        return Vec::new();
    }
    (0..=samples.len() - reference.len())
        .map(|off| correlate_iq_bipolar(&samples[off..off + reference.len()], reference).abs())
        .collect()
}

/// Result of a correlation peak search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PeakSearch {
    /// Offset of the maximum correlation.
    pub offset: usize,
    /// Correlation value at the peak.
    pub value: f64,
    /// Ratio of the peak to the mean of all other offsets — a measure of
    /// how unambiguous the alignment is.
    pub peak_to_mean: f64,
}

/// Finds the peak of a correlation profile.
///
/// Returns `None` for an empty profile.
pub fn find_peak(profile: &[f64]) -> Option<PeakSearch> {
    if profile.is_empty() {
        return None;
    }
    let (offset, &value) = profile
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("correlation values are finite"))?;
    let rest_sum: f64 = profile.iter().sum::<f64>() - value;
    let rest_mean = if profile.len() > 1 {
        rest_sum / (profile.len() - 1) as f64
    } else {
        0.0
    };
    let peak_to_mean = if rest_mean > 0.0 {
        value / rest_mean
    } else {
        f64::INFINITY
    };
    Some(PeakSearch {
        offset,
        value,
        peak_to_mean,
    })
}

/// Convenience: sliding correlation followed by peak search.
pub fn best_alignment(samples: &[Iq], reference: &[f64]) -> Option<PeakSearch> {
    find_peak(&sliding_correlation(samples, reference))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bipolar(bits: &[u8]) -> Vec<f64> {
        bits.iter()
            .map(|&b| if b == 1 { 1.0 } else { -1.0 })
            .collect()
    }

    /// The original O(n²) ring-indexed implementation, kept as the oracle
    /// for the unrolled/FFT production path.
    fn periodic_cross_correlation_naive(a: &[f64], b: &[f64]) -> Vec<f64> {
        assert_eq!(a.len(), b.len());
        let n = a.len();
        (0..n)
            .map(|lag| (0..n).map(|i| a[i] * b[(i + lag) % n]).sum())
            .collect()
    }

    #[test]
    fn periodic_correlation_matches_naive_oracle_both_paths() {
        // One length per side of PERIODIC_FFT_CROSSOVER, plus the
        // boundary itself.
        for n in [1usize, 7, 31, PERIODIC_FFT_CROSSOVER - 1, PERIODIC_FFT_CROSSOVER, 127, 255] {
            let a: Vec<f64> = (0..n).map(|i| if (i * 5) % 3 == 0 { 1.0 } else { -1.0 }).collect();
            let b: Vec<f64> = (0..n).map(|i| if (i * 11) % 7 < 3 { 1.0 } else { -1.0 }).collect();
            let fast = periodic_cross_correlation(&a, &b);
            let oracle = periodic_cross_correlation_naive(&a, &b);
            assert_eq!(fast.len(), oracle.len());
            for (lag, (x, y)) in fast.iter().zip(&oracle).enumerate() {
                assert!((x - y).abs() < 1e-9, "n={n} lag={lag}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn periodic_correlation_of_empty_is_empty() {
        assert!(periodic_cross_correlation(&[], &[]).is_empty());
    }

    #[test]
    fn auto_correlation_is_one() {
        let c = bipolar(&[1, 0, 1, 1, 0, 0, 1]);
        assert!((normalized_correlation(&c, &c) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn anti_correlation_is_minus_one() {
        let c = bipolar(&[1, 0, 1]);
        let neg: Vec<f64> = c.iter().map(|x| -x).collect();
        assert!((normalized_correlation(&c, &neg) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_energy_correlates_to_zero() {
        assert_eq!(normalized_correlation(&[0.0; 4], &[1.0; 4]), 0.0);
        assert_eq!(normalized_iq_correlation(&[Iq::ZERO; 4], &[1.0; 4]), 0.0);
    }

    #[test]
    fn iq_correlation_is_phase_invariant() {
        // The same code received with an arbitrary channel phase must give
        // the same noncoherent statistic — this is why the detector works
        // without carrier recovery.
        let code = bipolar(&[1, 0, 1, 1, 0, 1, 0]);
        let phase = 1.234;
        let rx: Vec<Iq> = code
            .iter()
            .map(|&c| Iq::from_polar(c.abs(), phase).scale(c.signum()))
            .collect();
        let rx0: Vec<Iq> = code.iter().map(|&c| Iq::new(c, 0.0)).collect();
        let m_rot = normalized_iq_correlation(&rx, &code);
        let m_0 = normalized_iq_correlation(&rx0, &code);
        assert!((m_rot - m_0).abs() < 1e-12);
        assert!((m_0 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sliding_correlation_peaks_at_true_offset() {
        let code = bipolar(&[1, 1, 0, 1, 0, 0, 1, 0, 1, 1, 1, 0]);
        let mut rx = vec![Iq::ZERO; 37];
        for (i, &c) in code.iter().enumerate() {
            rx[20 + i] = Iq::new(c, 0.0);
        }
        let peak = best_alignment(&rx, &code).unwrap();
        assert_eq!(peak.offset, 20);
        assert!(peak.peak_to_mean > 2.0);
    }

    #[test]
    fn sliding_correlation_handles_short_input() {
        let code = bipolar(&[1, 0, 1]);
        assert!(sliding_correlation(&[Iq::ONE], &code).is_empty());
        assert!(best_alignment(&[Iq::ONE], &code).is_none());
        assert!(find_peak(&[]).is_none());
    }

    #[test]
    fn periodic_correlation_of_shifted_self_peaks_at_shift() {
        let c = bipolar(&[1, 0, 0, 1, 0, 1, 1]);
        let shifted: Vec<f64> = (0..c.len()).map(|i| c[(i + 3) % c.len()]).collect();
        let prof = periodic_cross_correlation(&shifted, &c);
        let peak = find_peak(&prof).unwrap();
        // shifted[k] = c[k+3], so the profile peaks at the lag that
        // re-aligns `shifted` onto `c`.
        assert!((peak.value - c.len() as f64).abs() < 1e-12);
        assert_eq!(peak.offset, 3);
    }

    #[test]
    fn dot_is_linear() {
        let a = [1.0, 2.0, 3.0];
        let b = [4.0, 5.0, 6.0];
        assert!((dot(&a, &b) - 32.0).abs() < 1e-12);
    }

    #[test]
    fn peak_to_mean_of_single_element_profile() {
        let p = find_peak(&[5.0]).unwrap();
        assert_eq!(p.offset, 0);
        assert!(p.peak_to_mean.is_infinite());
    }
}
