//! FIR filter design and application.
//!
//! A real SDR front end low-pass-filters before decimating; the windowed-
//! sinc designs here let experiments model that stage (e.g. studying how
//! receiver filtering interacts with high chip rates) and give the test
//! suite a reference linear-phase filter.

use std::f64::consts::PI;

use cbma_types::{CbmaError, Iq, Result};

use crate::simd;
use crate::window::WindowKind;

/// A finite-impulse-response filter (real taps, linear phase for the
/// designs produced here).
#[derive(Debug, Clone, PartialEq)]
pub struct Fir {
    taps: Vec<f64>,
    /// Taps in reverse order — the layout the interior of a "same"
    /// convolution needs to run as one contiguous dot product per output.
    rev: Vec<f64>,
}

impl Fir {
    fn from_taps(taps: Vec<f64>) -> Fir {
        let rev: Vec<f64> = taps.iter().rev().copied().collect();
        Fir { taps, rev }
    }

    /// Wraps explicit taps.
    ///
    /// # Errors
    ///
    /// Returns [`CbmaError::InvalidConfig`] for an empty tap list.
    pub fn new(taps: Vec<f64>) -> Result<Fir> {
        if taps.is_empty() {
            return Err(CbmaError::InvalidConfig(
                "fir filter needs at least one tap".into(),
            ));
        }
        Ok(Fir::from_taps(taps))
    }

    /// Windowed-sinc low-pass design: cutoff as a fraction of the sample
    /// rate (0 < cutoff < 0.5), odd length `n_taps`, tapered by `window`.
    /// Taps are normalized to unit DC gain.
    ///
    /// # Errors
    ///
    /// Returns [`CbmaError::InvalidConfig`] for an even/zero tap count or
    /// an out-of-range cutoff.
    pub fn low_pass(cutoff: f64, n_taps: usize, window: WindowKind) -> Result<Fir> {
        if n_taps == 0 || n_taps.is_multiple_of(2) {
            return Err(CbmaError::InvalidConfig(format!(
                "tap count must be odd and non-zero, got {n_taps}"
            )));
        }
        if !(0.0..0.5).contains(&cutoff) || cutoff == 0.0 {
            return Err(CbmaError::InvalidConfig(format!(
                "cutoff must be in (0, 0.5) of the sample rate, got {cutoff}"
            )));
        }
        let mid = (n_taps / 2) as isize;
        let coeffs = window.coefficients(n_taps);
        let mut taps: Vec<f64> = (0..n_taps as isize)
            .map(|i| {
                let k = (i - mid) as f64;
                let sinc = if k == 0.0 {
                    2.0 * cutoff
                } else {
                    (2.0 * PI * cutoff * k).sin() / (PI * k)
                };
                sinc * coeffs[i as usize]
            })
            .collect();
        let dc: f64 = taps.iter().sum();
        for t in &mut taps {
            *t /= dc;
        }
        Ok(Fir::from_taps(taps))
    }

    /// The filter taps.
    pub fn taps(&self) -> &[f64] {
        &self.taps
    }

    /// Group delay in samples ((N−1)/2 for the linear-phase designs).
    pub fn group_delay(&self) -> f64 {
        (self.taps.len() as f64 - 1.0) / 2.0
    }

    /// Filters a complex signal ("same" convolution: output length equals
    /// input length, edges use implicit zero padding).
    ///
    /// The interior — every output whose full tap span lies inside the
    /// input — runs as a contiguous dot product against the reversed taps
    /// through the SIMD kernels; only the zero-padded edges take the
    /// bounds-checked scalar loop.
    pub fn filter(&self, input: &[Iq]) -> Vec<Iq> {
        let n = input.len();
        let m = self.taps.len();
        let half = m / 2;
        let mut out = vec![Iq::ZERO; n];
        // out[i] = Σ_j taps[j]·input[i + half − j]
        //        = Σ_j rev[j]·input[i + half − m + 1 + j],
        // fully in-bounds for i in half+(m−1−m+1).. — i.e. the window
        // start i + half − m + 1 ≥ 0 and end i + half + 1 ≤ n.
        let lo = (m - 1 - half).min(n);
        let hi = n.saturating_sub(half).max(lo);
        for (i, o) in out.iter_mut().enumerate().take(hi).skip(lo) {
            let start = i + half + 1 - m;
            *o = simd::dot_iq_real(&input[start..start + m], &self.rev);
        }
        for (i, o) in out
            .iter_mut()
            .enumerate()
            .filter(|(i, _)| *i < lo || *i >= hi)
        {
            let mut acc = Iq::ZERO;
            for (j, &t) in self.taps.iter().enumerate() {
                // Centered convolution index.
                let k = i as isize + half as isize - j as isize;
                if k >= 0 && (k as usize) < n {
                    acc += input[k as usize].scale(t);
                }
            }
            *o = acc;
        }
        out
    }

    /// Magnitude response at a normalized frequency f ∈ [0, 0.5].
    pub fn magnitude_at(&self, f: f64) -> f64 {
        let mut acc = Iq::ZERO;
        for (k, &t) in self.taps.iter().enumerate() {
            acc += Iq::phasor(-2.0 * PI * f * k as f64).scale(t);
        }
        acc.abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn low_pass_passes_dc_and_blocks_nyquist() {
        let fir = Fir::low_pass(0.1, 63, WindowKind::Hamming).unwrap();
        assert!((fir.magnitude_at(0.0) - 1.0).abs() < 1e-9);
        assert!(fir.magnitude_at(0.45) < 0.01, "stopband leaks");
    }

    #[test]
    fn transition_is_monotonic_enough() {
        let fir = Fir::low_pass(0.1, 63, WindowKind::Hamming).unwrap();
        assert!(fir.magnitude_at(0.05) > 0.9);
        assert!(fir.magnitude_at(0.2) < 0.1);
    }

    #[test]
    fn taps_are_symmetric_linear_phase() {
        let fir = Fir::low_pass(0.2, 31, WindowKind::Hann).unwrap();
        let t = fir.taps();
        for i in 0..t.len() {
            assert!((t[i] - t[t.len() - 1 - i]).abs() < 1e-12);
        }
        assert_eq!(fir.group_delay(), 15.0);
    }

    #[test]
    fn filtering_a_tone_in_the_passband_preserves_it() {
        let fir = Fir::low_pass(0.25, 41, WindowKind::Hamming).unwrap();
        let f = 0.05;
        let input: Vec<Iq> = (0..400)
            .map(|k| Iq::phasor(2.0 * PI * f * k as f64))
            .collect();
        let out = fir.filter(&input);
        // Compare steady-state magnitude (skip edges).
        let mid_power: f64 = out[100..300].iter().map(|s| s.power()).sum::<f64>() / 200.0;
        assert!((mid_power - 1.0).abs() < 0.02, "passband gain {mid_power}");
    }

    #[test]
    fn filtering_a_stopband_tone_kills_it() {
        let fir = Fir::low_pass(0.1, 63, WindowKind::Hamming).unwrap();
        let f = 0.4;
        let input: Vec<Iq> = (0..400)
            .map(|k| Iq::phasor(2.0 * PI * f * k as f64))
            .collect();
        let out = fir.filter(&input);
        let mid_power: f64 = out[100..300].iter().map(|s| s.power()).sum::<f64>() / 200.0;
        assert!(mid_power < 1e-3, "stopband power {mid_power}");
    }

    #[test]
    fn invalid_designs_rejected() {
        assert!(Fir::low_pass(0.1, 0, WindowKind::Hann).is_err());
        assert!(Fir::low_pass(0.1, 10, WindowKind::Hann).is_err()); // even
        assert!(Fir::low_pass(0.0, 11, WindowKind::Hann).is_err());
        assert!(Fir::low_pass(0.5, 11, WindowKind::Hann).is_err());
        assert!(Fir::new(vec![]).is_err());
    }

    #[test]
    fn filter_matches_naive_convolution() {
        // The split interior/edge paths must reproduce the plain centered
        // convolution exactly, at every input length around the tap count.
        let fir = Fir::low_pass(0.2, 21, WindowKind::Hann).unwrap();
        let m = fir.taps().len();
        let half = m / 2;
        for n in [0usize, 1, 5, 20, 21, 22, 64] {
            let input: Vec<Iq> = (0..n)
                .map(|k| Iq::new((k as f64 * 0.37).sin(), (k as f64 * 0.11).cos()))
                .collect();
            let out = fir.filter(&input);
            for (i, &got) in out.iter().enumerate() {
                let mut acc = Iq::ZERO;
                for (j, &t) in fir.taps().iter().enumerate() {
                    let k = i as isize + half as isize - j as isize;
                    if k >= 0 && (k as usize) < n {
                        acc += input[k as usize].scale(t);
                    }
                }
                assert!((got - acc).abs() < 1e-12, "n={n} i={i}");
            }
        }
    }

    #[test]
    fn output_length_matches_input() {
        let fir = Fir::low_pass(0.2, 21, WindowKind::Hann).unwrap();
        assert_eq!(fir.filter(&[Iq::ONE; 7]).len(), 7);
        assert_eq!(fir.filter(&[]).len(), 0);
    }
}
