//! Fast sliding cross-correlation: overlap-save FFT engine, cached FFT
//! plans, and O(1) running-energy queries.
//!
//! CBMA's receiver cross-correlates every known PN code's spread-preamble
//! reference against the received window at every candidate lag (§III-B).
//! Done directly that is O(lags × ref_len) *per code* — the receiver's
//! dominant cost. This module turns the sliding dot products into
//! frequency-domain multiplications (overlap-save block convolution on the
//! workspace's radix-2 FFT) and the per-lag segment-energy normalization
//! into prefix-sum lookups:
//!
//! * [`FftPlan`] — a reusable radix-2 plan with the bit-reversal
//!   permutation and twiddle factors precomputed once, so the butterfly
//!   loop performs no `sin`/`cos` calls,
//! * [`SlidingCorrelator`] — caches the conjugate spectrum of one real
//!   (bipolar) reference and correlates it against arbitrary-length
//!   complex-IQ or real windows in O(N log B) via overlap-save blocks,
//! * [`RunningEnergy`] — prefix sums of |s| and |s|² giving O(1) segment
//!   power, mean and mean-removed energy over any `[off, off + len)`,
//!   serving both the coherent power normalization and the envelope
//!   mean-removed statistic.
//!
//! The engine is exact up to FFT rounding (≈1e-12 relative); the receiver
//! keeps a direct path for short windows and the equivalence proptests in
//! `crates/dsp/tests/xcorr.rs` and `crates/rx/tests/detect_equivalence.rs`
//! pin the two paths together within 1e-9.

use cbma_obs::trace::{SpanId, TraceId, Tracer};
use cbma_types::{CbmaError, Iq, Result};

use crate::simd;

/// A precomputed radix-2 FFT plan for one power-of-two size.
///
/// Building a plan computes the bit-reversal permutation and the twiddle
/// tables once; [`FftPlan::forward`] and [`FftPlan::inverse`] then run the
/// butterflies with table lookups only, through the SIMD stage kernels in
/// [`crate::simd`]. The [`FftPlan::forward_raw`] / [`FftPlan::inverse_raw`]
/// pair additionally skips the permutation passes by working in
/// bit-reversed spectral order (DIF forward, DIT inverse) — the form the
/// overlap-save correlators use, since a pointwise spectrum product does
/// not care about bin order. Twiddles are stored *stage-major*: the stage with
/// `half = len/2` butterflies owns the contiguous run
/// `[half − 1, 2·half − 1)`, so the vector kernels load neighbouring
/// twiddles with one unstrided load (N − 1 entries total).
#[derive(Debug, Clone)]
pub struct FftPlan {
    n: usize,
    /// Bit-reversed index of every position (identity for n ≤ 1).
    rev: Vec<u32>,
    /// Stage-major forward twiddles e^{−2πik/len}; inverse conjugates.
    twiddles: Vec<Iq>,
    /// `W³ᵏ` twiddles of the merged radix-4 stages, stage-major in the
    /// order of `radix4` (`Wᵏ` and `W²ᵏ` are sliced out of `twiddles`).
    tw3: Vec<Iq>,
    /// The merged radix-4 stage ladder as `(len, tw3 offset)`, largest
    /// stage first: each entry fuses the radix-2 stages `len` and
    /// `len/2` into one [`simd::fft_stage4`]/[`simd::fft_stage4_dif`]
    /// pass (`len = 4` entries use the twiddle-free `*_last` kernels).
    radix4: Vec<(u32, u32)>,
    /// Whether one radix-2 stage (`len = 2`) remains after pairing —
    /// true exactly when log₂ n is odd.
    tail2: bool,
}

impl FftPlan {
    /// Builds a plan for transforms of length `n`.
    ///
    /// # Errors
    ///
    /// Returns [`CbmaError::ShapeMismatch`] when `n` is neither zero, one,
    /// nor a power of two.
    pub fn new(n: usize) -> Result<FftPlan> {
        if n > 1 && !n.is_power_of_two() {
            return Err(CbmaError::ShapeMismatch {
                expected: "power-of-two length".into(),
                actual: format!("length {n}"),
            });
        }
        let bits = n.trailing_zeros();
        let rev = if n <= 1 {
            Vec::new()
        } else {
            (0..n as u32)
                .map(|i| i.reverse_bits() >> (u32::BITS - bits))
                .collect()
        };
        let mut twiddles = Vec::with_capacity(n.saturating_sub(1));
        let mut len = 2;
        while len <= n {
            let half = len / 2;
            for k in 0..half {
                twiddles.push(Iq::phasor(
                    -2.0 * std::f64::consts::PI * k as f64 / len as f64,
                ));
            }
            len <<= 1;
        }
        // Pair the radix-2 stages two at a time, largest first, into
        // merged radix-4 passes. Each merged stage of length `len` also
        // needs the W³ᵏ twiddles (k < len/4), which the radix-2 table
        // does not contain; `len = 4` merges need no twiddles at all.
        let mut tw3 = Vec::new();
        let mut radix4 = Vec::new();
        let mut len = n;
        while len >= 4 {
            radix4.push((len as u32, tw3.len() as u32));
            if len >= 8 {
                for k in 0..len / 4 {
                    tw3.push(Iq::phasor(
                        -2.0 * std::f64::consts::PI * (3 * k) as f64 / len as f64,
                    ));
                }
            }
            len >>= 2;
        }
        let tail2 = len == 2;
        Ok(FftPlan {
            n,
            rev,
            twiddles,
            tw3,
            radix4,
            tail2,
        })
    }

    /// The transform length this plan was built for.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` when the plan transforms zero-length buffers.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Forward FFT (no normalization) in place.
    ///
    /// # Errors
    ///
    /// Returns [`CbmaError::ShapeMismatch`] when `buf.len()` differs from
    /// the plan length.
    pub fn forward(&self, buf: &mut [Iq]) -> Result<()> {
        self.check(buf)?;
        self.run(buf, false);
        Ok(())
    }

    /// Inverse FFT with 1/N normalization in place.
    ///
    /// # Errors
    ///
    /// Returns [`CbmaError::ShapeMismatch`] when `buf.len()` differs from
    /// the plan length.
    pub fn inverse(&self, buf: &mut [Iq]) -> Result<()> {
        self.check(buf)?;
        self.run(buf, true);
        simd::scale_iq(buf, 1.0 / self.n.max(1) as f64);
        Ok(())
    }

    /// Forward FFT leaving the spectrum in **bit-reversed order**
    /// (decimation-in-frequency, no permutation pass).
    ///
    /// Pointwise spectrum products are order-agnostic as long as both
    /// operands use the same order, so a correlation pipeline can chain
    /// `forward_raw → multiply → inverse_raw` and skip both bit-reversal
    /// permutations entirely — the overlap-save engines below do exactly
    /// that. Equal to [`FftPlan::forward`] up to the output permutation
    /// and FFT rounding (the DIF stages accumulate in a different order).
    ///
    /// # Errors
    ///
    /// Returns [`CbmaError::ShapeMismatch`] when `buf.len()` differs from
    /// the plan length.
    pub fn forward_raw(&self, buf: &mut [Iq]) -> Result<()> {
        self.check(buf)?;
        if self.n > 1 {
            self.dif_ladder(buf, false);
        }
        Ok(())
    }

    /// Inverse FFT (with 1/N normalization) of a **bit-reversed-order**
    /// spectrum, as produced by [`FftPlan::forward_raw`]; no permutation
    /// pass.
    ///
    /// This is the plain decimation-in-time ladder of [`FftPlan::inverse`]
    /// minus the input permutation: DIT consumes bit-reversed input and
    /// emits natural order, so `inverse_raw(forward_raw(x)) == x` up to
    /// rounding.
    ///
    /// # Errors
    ///
    /// Returns [`CbmaError::ShapeMismatch`] when `buf.len()` differs from
    /// the plan length.
    pub fn inverse_raw(&self, buf: &mut [Iq]) -> Result<()> {
        self.check(buf)?;
        if self.n > 1 {
            self.dit_ladder(buf, true);
        }
        simd::scale_iq(buf, 1.0 / self.n.max(1) as f64);
        Ok(())
    }

    /// [`FftPlan::inverse_raw`] **without** the 1/N normalization pass.
    ///
    /// The overlap-save correlators fold 1/N into their cached conjugate
    /// reference spectra at construction, so the per-block inverse needs
    /// no trailing scale sweep over the buffer — one fewer O(N) memory
    /// pass per (block, code) pair.
    ///
    /// # Errors
    ///
    /// Returns [`CbmaError::ShapeMismatch`] when `buf.len()` differs from
    /// the plan length.
    pub fn inverse_raw_unscaled(&self, buf: &mut [Iq]) -> Result<()> {
        self.check(buf)?;
        if self.n > 1 {
            self.dit_ladder(buf, true);
        }
        Ok(())
    }

    /// [`FftPlan::inverse_raw_unscaled`] for callers that only read
    /// `buf[..needed]` afterwards: the final DIT stage skips butterflies
    /// that contribute nothing to the read range (see
    /// [`simd::fft_stage4_pruned`]). Every element of `buf[..needed]`
    /// gets the exact value the unpruned inverse produces; elements past
    /// the computed range are unspecified.
    ///
    /// # Errors
    ///
    /// Returns [`CbmaError::ShapeMismatch`] when `buf.len()` differs from
    /// the plan length.
    pub fn inverse_raw_unscaled_pruned(&self, buf: &mut [Iq], needed: usize) -> Result<()> {
        self.check(buf)?;
        if self.n <= 1 {
            return Ok(());
        }
        if self.tail2 {
            simd::fft_stage_first(buf);
        }
        let stages = self.radix4.len();
        for (i, &(len, off)) in self.radix4.iter().rev().enumerate() {
            let (len, off) = (len as usize, off as usize);
            if len == 4 {
                simd::fft_stage4_last(buf, true);
                continue;
            }
            let q = len / 4;
            let tw1 = &self.twiddles[len / 2 - 1..len / 2 - 1 + q];
            let tw2 = &self.twiddles[len / 4 - 1..len / 2 - 1];
            let tw3 = &self.tw3[off..off + q];
            // Only the last stage is prunable: every earlier stage's full
            // output feeds the next stage's butterflies.
            if i + 1 == stages && len == self.n && needed < q {
                simd::fft_stage4_pruned(buf, len, tw1, tw2, tw3, true, needed);
            } else {
                simd::fft_stage4(buf, len, tw1, tw2, tw3, true);
            }
        }
        Ok(())
    }

    /// The merged radix-4 DIF cascade, largest stage first, emitting the
    /// same bit-reversed spectral order as the radix-2 DIF ladder it
    /// replaces (merging two radix-2 stages permutes nothing).
    fn dif_ladder(&self, buf: &mut [Iq], inverse: bool) {
        for &(len, off) in &self.radix4 {
            let (len, off) = (len as usize, off as usize);
            if len == 4 {
                simd::fft_stage4_dif_last(buf, inverse);
            } else {
                let q = len / 4;
                let tw1 = &self.twiddles[len / 2 - 1..len / 2 - 1 + q];
                let tw2 = &self.twiddles[len / 4 - 1..len / 2 - 1];
                let tw3 = &self.tw3[off..off + q];
                simd::fft_stage4_dif(buf, len, tw1, tw2, tw3, inverse);
            }
        }
        if self.tail2 {
            // Unit twiddle — its own conjugate, so one kernel serves
            // both directions.
            simd::fft_stage_first(buf);
        }
    }

    /// The merged radix-4 DIT cascade (bit-reversed input, natural
    /// output): the exact stage-reversal of [`FftPlan::dif_ladder`].
    fn dit_ladder(&self, buf: &mut [Iq], inverse: bool) {
        if self.tail2 {
            simd::fft_stage_first(buf);
        }
        for &(len, off) in self.radix4.iter().rev() {
            let (len, off) = (len as usize, off as usize);
            if len == 4 {
                simd::fft_stage4_last(buf, inverse);
            } else {
                let q = len / 4;
                let tw1 = &self.twiddles[len / 2 - 1..len / 2 - 1 + q];
                let tw2 = &self.twiddles[len / 4 - 1..len / 2 - 1];
                let tw3 = &self.tw3[off..off + q];
                simd::fft_stage4(buf, len, tw1, tw2, tw3, inverse);
            }
        }
    }

    fn check(&self, buf: &[Iq]) -> Result<()> {
        if buf.len() != self.n {
            return Err(CbmaError::ShapeMismatch {
                expected: format!("buffer of plan length {}", self.n),
                actual: format!("length {}", buf.len()),
            });
        }
        Ok(())
    }

    fn run(&self, buf: &mut [Iq], inverse: bool) {
        let n = self.n;
        if n <= 1 {
            return;
        }
        for (i, &j) in self.rev.iter().enumerate() {
            let j = j as usize;
            if j > i {
                buf.swap(i, j);
            }
        }
        self.dit_ladder(buf, inverse);
    }
}

/// Prefix sums of |s| and |s|² over a sample window: O(1) segment power,
/// magnitude sum, mean and mean-removed energy for any `[off, off + len)`.
///
/// One instance serves both detector statistics: the coherent path
/// normalizes by segment *power* (Σ|s|²) and the envelope path by the
/// *mean-removed envelope energy* (Σ(|s|−mean)² = Σ|s|² − (Σ|s|)²/len).
#[derive(Debug, Clone)]
pub struct RunningEnergy {
    /// prefix_abs[i] = Σ_{j<i} |s_j|
    prefix_abs: Vec<f64>,
    /// prefix_sq[i] = Σ_{j<i} |s_j|²
    prefix_sq: Vec<f64>,
}

impl Default for RunningEnergy {
    /// An empty window — useful as the initial state of a reusable
    /// scratch instance before the first [`RunningEnergy::rebuild`].
    fn default() -> RunningEnergy {
        RunningEnergy::new(&[])
    }
}

impl RunningEnergy {
    /// Builds the prefix sums for a complex-IQ window (one O(n) pass).
    pub fn new(samples: &[Iq]) -> RunningEnergy {
        let mut re = RunningEnergy {
            prefix_abs: Vec::with_capacity(samples.len() + 1),
            prefix_sq: Vec::with_capacity(samples.len() + 1),
        };
        re.rebuild(samples);
        re
    }

    /// Builds the prefix sums for a real-valued series (|v| and v²), e.g.
    /// a reconstructed OOK envelope or an |s| magnitude series.
    pub fn from_real(values: &[f64]) -> RunningEnergy {
        let mut re = RunningEnergy {
            prefix_abs: Vec::with_capacity(values.len() + 1),
            prefix_sq: Vec::with_capacity(values.len() + 1),
        };
        re.rebuild_real(values);
        re
    }

    /// Recomputes the prefix sums over a new complex window in place,
    /// reusing the existing allocations (grow-only: no heap traffic once
    /// the instance has seen a window at least this long).
    pub fn rebuild(&mut self, samples: &[Iq]) {
        self.prefix_abs.clear();
        self.prefix_sq.clear();
        self.prefix_abs.reserve(samples.len() + 1);
        self.prefix_sq.reserve(samples.len() + 1);
        let (mut sa, mut sq) = (0.0, 0.0);
        self.prefix_abs.push(0.0);
        self.prefix_sq.push(0.0);
        for s in samples {
            let p = s.power();
            sa += p.sqrt();
            sq += p;
            self.prefix_abs.push(sa);
            self.prefix_sq.push(sq);
        }
    }

    /// Recomputes the prefix sums over a new real-valued series in place;
    /// the real-domain counterpart of [`RunningEnergy::rebuild`].
    pub fn rebuild_real(&mut self, values: &[f64]) {
        self.prefix_abs.clear();
        self.prefix_sq.clear();
        self.prefix_abs.reserve(values.len() + 1);
        self.prefix_sq.reserve(values.len() + 1);
        let (mut sa, mut sq) = (0.0, 0.0);
        self.prefix_abs.push(0.0);
        self.prefix_sq.push(0.0);
        for &v in values {
            sa += v.abs();
            sq += v * v;
            self.prefix_abs.push(sa);
            self.prefix_sq.push(sq);
        }
    }

    /// Appends samples to the covered window without recomputing the
    /// existing prefix sums: the accumulators resume from the last prefix
    /// values, so feeding a capture block-by-block produces prefix sums
    /// **bit-identical** to one [`RunningEnergy::rebuild`] over the whole
    /// capture (same sequential additions in the same order).
    pub fn extend(&mut self, samples: &[Iq]) {
        let mut sa = *self.prefix_abs.last().expect("prefix sums hold a leading 0");
        let mut sq = *self.prefix_sq.last().expect("prefix sums hold a leading 0");
        self.prefix_abs.reserve(samples.len());
        self.prefix_sq.reserve(samples.len());
        for s in samples {
            let p = s.power();
            sa += p.sqrt();
            sq += p;
            self.prefix_abs.push(sa);
            self.prefix_sq.push(sq);
        }
    }

    /// Real-domain counterpart of [`RunningEnergy::extend`]: appends to a
    /// series built with [`RunningEnergy::rebuild_real`].
    pub fn extend_real(&mut self, values: &[f64]) {
        let mut sa = *self.prefix_abs.last().expect("prefix sums hold a leading 0");
        let mut sq = *self.prefix_sq.last().expect("prefix sums hold a leading 0");
        self.prefix_abs.reserve(values.len());
        self.prefix_sq.reserve(values.len());
        for &v in values {
            sa += v.abs();
            sq += v * v;
            self.prefix_abs.push(sa);
            self.prefix_sq.push(sq);
        }
    }

    /// Address of the backing storage — exposed so arena-reuse regression
    /// tests can assert that rebuilds did not reallocate. Not part of the
    /// semantic API.
    #[doc(hidden)]
    pub fn storage_ptr(&self) -> *const f64 {
        self.prefix_sq.as_ptr()
    }

    /// Total heap capacity held by the prefix sums, in bytes.
    pub fn capacity_bytes(&self) -> usize {
        (self.prefix_abs.capacity() + self.prefix_sq.capacity()) * std::mem::size_of::<f64>()
    }

    /// Number of samples covered.
    #[inline]
    pub fn len(&self) -> usize {
        self.prefix_sq.len() - 1
    }

    /// `true` when built over an empty window.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Σ|s|² over `[off, off + len)`.
    ///
    /// # Panics
    ///
    /// Panics if the segment exceeds the window.
    #[inline]
    pub fn power(&self, off: usize, len: usize) -> f64 {
        self.prefix_sq[off + len] - self.prefix_sq[off]
    }

    /// Σ|s| over `[off, off + len)`.
    ///
    /// # Panics
    ///
    /// Panics if the segment exceeds the window.
    #[inline]
    pub fn abs_sum(&self, off: usize, len: usize) -> f64 {
        self.prefix_abs[off + len] - self.prefix_abs[off]
    }

    /// Mean of |s| over `[off, off + len)`; 0.0 for an empty segment.
    #[inline]
    pub fn mean_abs(&self, off: usize, len: usize) -> f64 {
        if len == 0 {
            0.0
        } else {
            self.abs_sum(off, len) / len as f64
        }
    }

    /// Mean-removed envelope energy Σ(|s|−mean)² over `[off, off + len)`,
    /// clamped to ≥ 0 against rounding.
    #[inline]
    pub fn centered_energy(&self, off: usize, len: usize) -> f64 {
        if len == 0 {
            return 0.0;
        }
        let sa = self.abs_sum(off, len);
        (self.power(off, len) - sa * sa / len as f64).max(0.0)
    }
}

/// Loads one overlap-save block into `dst`: copies
/// `samples[pos .. pos + take]` (with `take = min(remaining, dst.len())`)
/// and zero-fills the ragged tail.
///
/// This is **the** carry-over normalization for final blocks shorter than
/// the FFT size: every overlap-save engine in this module (single-code,
/// batched, multi-window, and the streamed [`BatchStream`]) loads its
/// blocks through this one helper, so a ragged tail is padded identically
/// on every path and the resulting correlation rows stay bit-identical.
#[inline]
fn load_block(dst: &mut [Iq], samples: &[Iq], pos: usize) {
    let take = (samples.len() - pos).min(dst.len());
    dst[..take].copy_from_slice(&samples[pos..pos + take]);
    for x in dst[take..].iter_mut() {
        *x = Iq::ZERO;
    }
}

/// One cached block size: the FFT plan plus the reference's conjugate
/// spectrum at that size.
#[derive(Debug, Clone)]
struct BlockSpec {
    /// conj(FFT(reference zero-padded to `fft_size`)) / `fft_size`, in
    /// the bit-reversed order of [`FftPlan::forward_raw`]. The 1/N
    /// inverse-FFT normalization is folded in here once so every
    /// per-block inverse can run unscaled.
    ref_conj_spec: Vec<Iq>,
    plan: FftPlan,
    fft_size: usize,
    /// Valid correlation outputs per block: `fft_size − ref_len + 1`.
    block_out: usize,
}

impl BlockSpec {
    fn new(reference: &[f64], fft_size: usize) -> BlockSpec {
        let plan = FftPlan::new(fft_size).expect("power-of-two by construction");
        let mut spec: Vec<Iq> = reference
            .iter()
            .map(|&r| Iq::new(r, 0.0))
            .chain(std::iter::repeat(Iq::ZERO))
            .take(fft_size)
            .collect();
        plan.forward_raw(&mut spec).expect("sized to plan");
        for x in spec.iter_mut() {
            *x = x.conj();
        }
        simd::scale_iq(&mut spec, 1.0 / fft_size as f64);
        BlockSpec {
            ref_conj_spec: spec,
            plan,
            fft_size,
            block_out: fft_size - reference.len() + 1,
        }
    }
}

/// Overlap-save FFT sliding correlator for one cached real reference.
///
/// Construction pads the reference to power-of-two block sizes, computes
/// its conjugate spectrum once per size, and keeps the [`FftPlan`]s. Each
/// [`SlidingCorrelator::correlate_iq`] call then processes the window in
/// blocks of `B` samples overlapping by `ref_len − 1`, producing the exact
/// linear cross-correlation
/// `c[k] = Σ_i s[k+i]·r[i]` for every lag `k in 0..=n − ref_len`
/// in O(N log B) instead of O(N · ref_len).
///
/// Two block sizes are cached: a *compact* one (`≈2L` rounded up) used
/// whenever the whole window fits in a single block — the receiver's
/// common case, where a frame-head search window is only a few hundred
/// lags past the reference — and a *streaming* one (`≈4L`) whose larger
/// valid region amortizes FFT work better over long, many-block windows.
#[derive(Debug, Clone)]
pub struct SlidingCorrelator {
    reference: Vec<f64>,
    /// Cached block sizes, ascending; the last is the streaming size.
    blocks: Vec<BlockSpec>,
}

impl SlidingCorrelator {
    /// Builds a correlator for `reference`, caching its conjugate
    /// spectrum at each block size.
    ///
    /// # Panics
    ///
    /// Panics if `reference` is empty.
    pub fn new(reference: &[f64]) -> SlidingCorrelator {
        assert!(!reference.is_empty(), "reference must be non-empty");
        let l = reference.len();
        // Compact size: the smallest power of two holding the reference
        // plus a same-order slack of lags — one block, minimal FFT work
        // for short search windows. Streaming size: ≈4L keeps FFT work
        // per output low (2·B·log B for B−L+1 lags) without ballooning
        // block memory. Floors of 64 so tiny references still amortize
        // the permutation overhead.
        let compact = (2 * l).next_power_of_two().max(64);
        let streaming = (4 * l.next_power_of_two()).max(64);
        let mut blocks = vec![BlockSpec::new(reference, compact)];
        if streaming > compact {
            blocks.push(BlockSpec::new(reference, streaming));
        }
        SlidingCorrelator {
            reference: reference.to_vec(),
            blocks,
        }
    }

    /// Length of the cached reference.
    #[inline]
    pub fn reference_len(&self) -> usize {
        self.reference.len()
    }

    /// The largest (streaming) overlap-save FFT block size `B`.
    #[inline]
    pub fn fft_size(&self) -> usize {
        self.blocks.last().expect("at least one block size").fft_size
    }

    /// The cached reference sequence.
    #[inline]
    pub fn reference(&self) -> &[f64] {
        &self.reference
    }

    /// The block spec a window of `n` samples runs on: the smallest
    /// cached size that covers the window in a single block, else the
    /// streaming size.
    fn block_for(&self, n: usize) -> &BlockSpec {
        self.blocks
            .iter()
            .find(|b| n <= b.fft_size)
            .unwrap_or_else(|| self.blocks.last().expect("at least one block size"))
    }

    /// Complex sliding correlation `c[k] = Σ_i s[k+i]·r[i]` for every lag
    /// `k in 0..=samples.len() − ref_len` (empty when the window is
    /// shorter than the reference). Matches
    /// [`crate::correlate::correlate_iq_bipolar`] per lag up to FFT
    /// rounding.
    pub fn correlate_iq(&self, samples: &[Iq]) -> Vec<Iq> {
        let mut work = Vec::new();
        let mut out = Vec::new();
        self.correlate_iq_into(samples, &mut work, &mut out);
        out
    }

    /// Allocation-free variant of [`SlidingCorrelator::correlate_iq`]:
    /// `out` receives the per-lag correlations (cleared first) and `work`
    /// is the FFT block scratch. Both buffers grow to a high-water mark on
    /// first use and are reused untouched afterwards.
    pub fn correlate_iq_into(&self, samples: &[Iq], work: &mut Vec<Iq>, out: &mut Vec<Iq>) {
        out.clear();
        let l = self.reference.len();
        if samples.len() < l {
            return;
        }
        let block = self.block_for(samples.len());
        let lags = samples.len() - l + 1;
        out.reserve(lags);
        work.clear();
        work.resize(block.fft_size, Iq::ZERO);
        let mut pos = 0;
        while pos < lags {
            load_block(work, samples, pos);
            // The product runs in bit-reversed spectral order, which the
            // raw DIF/DIT pair makes permutation-free end to end.
            block.plan.forward_raw(work).expect("sized to plan");
            simd::spectrum_mul(work, &block.ref_conj_spec);
            block.plan.inverse_raw_unscaled(work).expect("sized to plan");
            let valid = (lags - pos).min(block.block_out);
            out.extend_from_slice(&work[..valid]);
            pos += block.block_out;
        }
    }

    /// Real sliding correlation of a real-valued window (e.g. an |s|
    /// magnitude series) against the cached reference.
    pub fn correlate_real(&self, samples: &[f64]) -> Vec<f64> {
        let as_iq: Vec<Iq> = samples.iter().map(|&v| Iq::new(v, 0.0)).collect();
        self.correlate_iq(&as_iq).into_iter().map(|c| c.re).collect()
    }
}

/// One cached block size of a [`BatchCorrelator`]: the shared FFT plan
/// plus all K conjugate reference spectra at that size, stored flat
/// (`code k` occupies `k·fft_size .. (k+1)·fft_size`) so the per-code
/// inner loop walks contiguous memory.
#[derive(Debug, Clone)]
struct BatchBlock {
    /// Flat K × `fft_size` conjugate spectra (1/N-prescaled, exactly as
    /// [`BlockSpec`]), in the bit-reversed order of
    /// [`FftPlan::forward_raw`].
    spectra: Vec<Iq>,
    plan: FftPlan,
    fft_size: usize,
    /// Valid correlation outputs per block: `fft_size − ref_len + 1`.
    block_out: usize,
}

impl BatchBlock {
    fn new(references: &[&[f64]], fft_size: usize) -> BatchBlock {
        let ref_len = references[0].len();
        let plan = FftPlan::new(fft_size).expect("power-of-two by construction");
        let mut spectra = Vec::with_capacity(references.len() * fft_size);
        for reference in references {
            let start = spectra.len();
            spectra.extend(
                reference
                    .iter()
                    .map(|&r| Iq::new(r, 0.0))
                    .chain(std::iter::repeat(Iq::ZERO))
                    .take(fft_size),
            );
            let spec = &mut spectra[start..start + fft_size];
            plan.forward_raw(spec).expect("sized to plan");
            for x in spec.iter_mut() {
                *x = x.conj();
            }
            simd::scale_iq(spec, 1.0 / fft_size as f64);
        }
        BatchBlock {
            spectra,
            plan,
            fft_size,
            block_out: fft_size - ref_len + 1,
        }
    }
}

/// Reusable scratch for [`BatchCorrelator::correlate_iq_into`].
///
/// Holds the shared forward-FFT block, the per-code product/IFFT work
/// buffer, and the flat K × lags output matrix. All three grow to a
/// high-water mark on first use and are reused allocation-free
/// afterwards, so a steady-state receiver performs zero heap traffic
/// per call.
#[derive(Debug, Clone, Default)]
pub struct BatchScratch {
    /// Forward FFT of the current window block (shared across codes).
    win: Vec<Iq>,
    /// Per-code spectrum product / inverse-FFT buffer.
    work: Vec<Iq>,
    /// Flat K × `lags` correlation matrix, code-major.
    out: Vec<Iq>,
    lags: usize,
    codes: usize,
}

impl BatchScratch {
    /// An empty scratch; buffers are sized lazily by the first
    /// [`BatchCorrelator::correlate_iq_into`] call.
    pub fn new() -> BatchScratch {
        BatchScratch::default()
    }

    /// Number of valid lags per code in the last correlation
    /// (0 when the window was shorter than the reference).
    #[inline]
    pub fn lags(&self) -> usize {
        self.lags
    }

    /// Number of code rows in the last correlation.
    #[inline]
    pub fn num_codes(&self) -> usize {
        self.codes
    }

    /// Correlation row of code `k`: `c_k[lag] = Σ_i s[lag+i]·r_k[i]`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range for the last correlation.
    #[inline]
    pub fn code(&self, k: usize) -> &[Iq] {
        assert!(k < self.codes, "code index out of range");
        &self.out[k * self.lags..(k + 1) * self.lags]
    }

    /// Total heap capacity held by the scratch, in bytes — exported as
    /// an observability gauge by the receiver.
    pub fn capacity_bytes(&self) -> usize {
        (self.win.capacity() + self.work.capacity() + self.out.capacity())
            * std::mem::size_of::<Iq>()
    }

    /// Stable address of the output matrix, for buffer-reuse regression
    /// tests.
    #[doc(hidden)]
    pub fn storage_ptr(&self) -> *const Iq {
        self.out.as_ptr()
    }
}

/// Batched K-code overlap-save correlator: one forward FFT per window
/// block shared across every cached reference spectrum.
///
/// The per-code [`SlidingCorrelator`] spends `2·K` FFTs per block
/// (forward + inverse for each of the K codes). Since all K references
/// see the *same* window, the forward transform is identical across
/// codes — this engine hoists it: per block it runs **one** forward FFT,
/// then for each code a pointwise spectrum multiply against the cached
/// conjugate reference spectrum and one inverse FFT, i.e. `K + 1` FFTs
/// per block instead of `2·K`. At the paper-default K = 10 that alone is
/// a ~1.8× transform-count reduction; the SIMD butterfly kernels in
/// [`crate::simd`] stack multiplicatively on top.
///
/// Block sizes mirror [`SlidingCorrelator`] exactly (compact ≈ 2L for
/// single-block windows, streaming ≈ 4L for long windows), so each
/// output row is bit-identical to the corresponding per-code
/// correlator's output.
#[derive(Debug, Clone)]
pub struct BatchCorrelator {
    ref_len: usize,
    codes: usize,
    /// Cached block sizes, ascending; the last is the streaming size.
    blocks: Vec<BatchBlock>,
}

impl BatchCorrelator {
    /// Builds a batched correlator over K equal-length real references,
    /// caching each conjugate spectrum at both block sizes.
    ///
    /// # Panics
    ///
    /// Panics if `references` is empty, any reference is empty, or the
    /// references have unequal lengths.
    pub fn new<R: AsRef<[f64]>>(references: &[R]) -> BatchCorrelator {
        assert!(!references.is_empty(), "batch needs at least one reference");
        let refs: Vec<&[f64]> = references.iter().map(|r| r.as_ref()).collect();
        let l = refs[0].len();
        assert!(l > 0, "references must be non-empty");
        assert!(
            refs.iter().all(|r| r.len() == l),
            "batched references must share one length"
        );
        // Same sizing policy as SlidingCorrelator::new so per-code rows
        // match the single-code engine bit for bit.
        let compact = (2 * l).next_power_of_two().max(64);
        let streaming = (4 * l.next_power_of_two()).max(64);
        let mut blocks = vec![BatchBlock::new(&refs, compact)];
        if streaming > compact {
            blocks.push(BatchBlock::new(&refs, streaming));
        }
        BatchCorrelator {
            ref_len: l,
            codes: refs.len(),
            blocks,
        }
    }

    /// Length of the cached references.
    #[inline]
    pub fn reference_len(&self) -> usize {
        self.ref_len
    }

    /// Number of cached codes K.
    #[inline]
    pub fn num_codes(&self) -> usize {
        self.codes
    }

    /// The block spec a window of `n` samples runs on — same policy as
    /// [`SlidingCorrelator`]: smallest single-block size, else streaming.
    fn block_for(&self, n: usize) -> &BatchBlock {
        self.blocks
            .iter()
            .find(|b| n <= b.fft_size)
            .unwrap_or_else(|| self.blocks.last().expect("at least one block size"))
    }

    /// Correlates `samples` against all K references in one shared-FFT
    /// pass, leaving the K × lags matrix in `scratch` (query it with
    /// [`BatchScratch::code`]). Steady-state calls are allocation-free
    /// once the scratch has reached its high-water size.
    pub fn correlate_iq_into(&self, samples: &[Iq], scratch: &mut BatchScratch) {
        self.correlate_iq_into_impl(samples, scratch, None);
    }

    /// [`BatchCorrelator::correlate_iq_into`] with span instrumentation:
    /// each overlap-save block records an `fft_block` child span (arg =
    /// block index) under `parent`. The untraced entry point shares this
    /// body with `trace = None`, which costs one branch per block.
    pub fn correlate_iq_into_traced(
        &self,
        samples: &[Iq],
        scratch: &mut BatchScratch,
        tracer: &Tracer,
        trace: TraceId,
        parent: SpanId,
    ) {
        self.correlate_iq_into_impl(samples, scratch, Some((tracer, trace, parent)));
    }

    fn correlate_iq_into_impl(
        &self,
        samples: &[Iq],
        scratch: &mut BatchScratch,
        trace: Option<(&Tracer, TraceId, SpanId)>,
    ) {
        scratch.codes = self.codes;
        if samples.len() < self.ref_len {
            scratch.lags = 0;
            scratch.out.clear();
            return;
        }
        let block = self.block_for(samples.len());
        let lags = samples.len() - self.ref_len + 1;
        scratch.lags = lags;
        scratch.win.clear();
        scratch.win.resize(block.fft_size, Iq::ZERO);
        scratch.work.clear();
        scratch.work.resize(block.fft_size, Iq::ZERO);
        scratch.out.clear();
        scratch.out.resize(self.codes * lags, Iq::ZERO);
        let mut pos = 0;
        let mut block_index = 0u64;
        while pos < lags {
            let _span = trace.map(|(tracer, trace, parent)| {
                let mut span = tracer.span(trace, Some(parent), "fft_block");
                span.set_arg(block_index);
                span
            });
            self.process_block(block, samples, pos, lags, scratch);
            pos += block.block_out;
            block_index += 1;
        }
    }

    /// One overlap-save block at `pos`: shared forward FFT, then the
    /// per-code spectrum products and inverse transforms into the output
    /// matrix rows. Both the one-shot pass and [`BatchStream`] run every
    /// block through this body, so block-by-block feeding is bit-identical
    /// to the whole-window call by construction.
    fn process_block(
        &self,
        block: &BatchBlock,
        samples: &[Iq],
        pos: usize,
        lags: usize,
        scratch: &mut BatchScratch,
    ) {
        load_block(&mut scratch.win, samples, pos);
        // The expensive part, done once per block instead of once
        // per (block, code) pair; bit-reversed spectral order skips
        // the permutation passes on every transform.
        block.plan.forward_raw(&mut scratch.win).expect("sized to plan");
        let valid = (lags - pos).min(block.block_out);
        for k in 0..self.codes {
            let spec = &block.spectra[k * block.fft_size..(k + 1) * block.fft_size];
            simd::spectrum_mul_to(&mut scratch.work, &scratch.win, spec);
            block
                .plan
                .inverse_raw_unscaled(&mut scratch.work)
                .expect("sized to plan");
            let row = k * lags + pos;
            scratch.out[row..row + valid].copy_from_slice(&scratch.work[..valid]);
        }
    }

    /// Starts a streamed correlation over a window whose **total** length
    /// is declared up front but whose samples arrive in arbitrary chunks
    /// (see [`BatchStream`]). Sizes `scratch` exactly as
    /// [`BatchCorrelator::correlate_iq_into`] would for a `total`-sample
    /// window.
    pub fn begin_stream(&self, total: usize, scratch: &mut BatchScratch) -> BatchStream {
        scratch.codes = self.codes;
        if total < self.ref_len {
            scratch.lags = 0;
            scratch.out.clear();
            return BatchStream {
                total,
                lags: 0,
                buf: Vec::new(),
                pos: 0,
            };
        }
        let block = self.block_for(total);
        let lags = total - self.ref_len + 1;
        scratch.lags = lags;
        scratch.win.clear();
        scratch.win.resize(block.fft_size, Iq::ZERO);
        scratch.work.clear();
        scratch.work.resize(block.fft_size, Iq::ZERO);
        scratch.out.clear();
        scratch.out.resize(self.codes * lags, Iq::ZERO);
        BatchStream {
            total,
            lags,
            buf: Vec::with_capacity(total),
            pos: 0,
        }
    }
}

/// Streamable overlap-save state for a [`BatchCorrelator`] window fed in
/// arbitrary chunks.
///
/// The total window length is declared at [`BatchCorrelator::begin_stream`]
/// so the stream runs on the exact block spec the one-shot pass would pick
/// (`block_for(total)`). Samples accumulate internally (the receiver needs
/// the full capture for decoding anyway); every time a full FFT block is
/// buffered it is processed immediately through the same
/// `process_block`/`load_block` body as the one-shot pass, and
/// [`BatchStream::finish`] zero-pads the ragged tail through that same
/// helper. The resulting K × lags matrix is therefore **bit-identical** to
/// [`BatchCorrelator::correlate_iq_into`] over the concatenated samples,
/// for any chopping of the window — including chunk size 1 and a single
/// whole-window chunk (pinned by `block_chopping_never_changes_the_matrix`
/// below and the ragged-block regression in
/// `crates/dsp/tests/stream_equivalence.rs`).
#[derive(Debug, Clone)]
pub struct BatchStream {
    total: usize,
    lags: usize,
    buf: Vec<Iq>,
    pos: usize,
}

impl BatchStream {
    /// Samples fed so far.
    #[inline]
    pub fn fed(&self) -> usize {
        self.buf.len()
    }

    /// The declared total window length.
    #[inline]
    pub fn total(&self) -> usize {
        self.total
    }

    /// The buffered window so far (the prefix of the declared window).
    #[inline]
    pub fn samples(&self) -> &[Iq] {
        &self.buf
    }

    /// Feeds the next chunk; `engine` and `scratch` must be the pair the
    /// stream was started on. Any block fully covered by the buffered
    /// prefix is processed eagerly.
    ///
    /// # Panics
    ///
    /// Panics if the chunk overruns the declared total length.
    pub fn feed(&mut self, engine: &BatchCorrelator, chunk: &[Iq], scratch: &mut BatchScratch) {
        assert!(
            self.buf.len() + chunk.len() <= self.total,
            "stream overrun: {} + {} exceeds declared total {}",
            self.buf.len(),
            chunk.len(),
            self.total
        );
        self.buf.extend_from_slice(chunk);
        if self.lags == 0 {
            return;
        }
        let block = engine.block_for(self.total);
        while self.pos < self.lags && self.pos + block.fft_size <= self.buf.len() {
            engine.process_block(block, &self.buf, self.pos, self.lags, scratch);
            self.pos += block.block_out;
        }
    }

    /// Processes the remaining blocks (zero-padding the ragged tail) and
    /// consumes the stream, returning the buffered window. After this,
    /// `scratch` holds the same K × lags matrix a one-shot
    /// [`BatchCorrelator::correlate_iq_into`] over the full window would.
    ///
    /// # Panics
    ///
    /// Panics if fewer samples were fed than declared.
    pub fn finish(mut self, engine: &BatchCorrelator, scratch: &mut BatchScratch) -> Vec<Iq> {
        assert_eq!(
            self.buf.len(),
            self.total,
            "stream underrun: fed {} of {} declared samples",
            self.buf.len(),
            self.total
        );
        if self.lags > 0 {
            let block = engine.block_for(self.total);
            while self.pos < self.lags {
                engine.process_block(block, &self.buf, self.pos, self.lags, scratch);
                self.pos += block.block_out;
            }
        }
        std::mem::take(&mut self.buf)
    }
}

/// Reusable arena for [`MultiWindowCorrelator::correlate_iq_multi`].
///
/// Holds the W forward window spectra, the inverse-FFT work buffer and
/// the flat window-major × code-major correlation rows. Everything grows
/// to a high-water mark on the first batch of a given shape and is
/// reused allocation-free afterwards — the counting-allocator proof in
/// `crates/rx/tests/alloc_free.rs` pins the steady state at zero heap
/// traffic across W.
#[derive(Debug, Clone, Default)]
pub struct WindowScratch {
    /// Flat W × `fft_size` forward spectra, one block per window, in the
    /// bit-reversed order of [`FftPlan::forward_raw`].
    spectra: Vec<Iq>,
    /// Per-(window, code) spectrum-product / inverse-FFT buffer.
    work: Vec<Iq>,
    /// Flat correlation rows: all K rows of window 0, then window 1, …
    /// Row (w, k) lives at `offsets[w] + k·lags[w]`.
    out: Vec<Iq>,
    /// Base index of each window's row block in `out`.
    offsets: Vec<usize>,
    /// Valid lags per window (0 when shorter than the reference).
    lags: Vec<usize>,
    codes: usize,
    /// Per-window fallback scratch for windows the shared single-block
    /// fast path cannot serve (multi-block or mixed block sizes).
    single: BatchScratch,
}

impl WindowScratch {
    /// An empty arena; buffers are sized lazily by the first
    /// [`MultiWindowCorrelator::correlate_iq_multi`] call.
    pub fn new() -> WindowScratch {
        WindowScratch::default()
    }

    /// Number of windows in the last batch.
    #[inline]
    pub fn num_windows(&self) -> usize {
        self.lags.len()
    }

    /// Number of code rows per window in the last batch.
    #[inline]
    pub fn num_codes(&self) -> usize {
        self.codes
    }

    /// Valid lags of window `w` in the last batch.
    ///
    /// # Panics
    ///
    /// Panics if `w` is out of range.
    #[inline]
    pub fn lags(&self, w: usize) -> usize {
        self.lags[w]
    }

    /// Correlation row of code `k` against window `w`:
    /// `c[lag] = Σ_i s_w[lag+i]·r_k[i]` — bit-identical to
    /// [`BatchScratch::code`] after a per-window
    /// [`BatchCorrelator::correlate_iq_into`] pass.
    ///
    /// # Panics
    ///
    /// Panics if `w` or `k` is out of range for the last batch.
    #[inline]
    pub fn row(&self, w: usize, k: usize) -> &[Iq] {
        assert!(k < self.codes, "code index out of range");
        let lags = self.lags[w];
        let base = self.offsets[w] + k * lags;
        &self.out[base..base + lags]
    }

    /// Total heap capacity held by the arena, in bytes.
    pub fn capacity_bytes(&self) -> usize {
        (self.spectra.capacity() + self.work.capacity() + self.out.capacity())
            * std::mem::size_of::<Iq>()
            + (self.offsets.capacity() + self.lags.capacity()) * std::mem::size_of::<usize>()
            + self.single.capacity_bytes()
    }

    /// Stable address of the row storage, for buffer-reuse regression
    /// tests.
    #[doc(hidden)]
    pub fn storage_ptr(&self) -> *const Iq {
        self.out.as_ptr()
    }
}

/// Multi-window batched K-code correlator: W capture windows × K codes
/// in one matrix pass over the shared reference spectra.
///
/// The per-window [`BatchCorrelator`] already shares each window's
/// forward FFT across the K codes; this engine additionally shares the K
/// cached conjugate reference spectra (and the FFT plan's twiddle
/// tables) across W windows per call, and exploits what a *batch* of
/// windows makes possible:
///
/// * each window is forward-transformed exactly once (phase A), then the
///   code loop runs **code-major** (phase B) so one reference spectrum
///   is streamed against all W window spectra while hot,
/// * the inverse transforms run **output-pruned**
///   ([`FftPlan::inverse_raw_unscaled_pruned`]): only the `lags` outputs
///   a row keeps are computed, skipping up to a quarter of the butterfly
///   work at paper-default shapes,
/// * all scratch lives in a [`WindowScratch`] arena, so steady-state
///   batches perform zero heap allocation.
///
/// Rows are **bit-identical** to running [`BatchCorrelator`] on each
/// window separately (pinned by `crates/dsp/tests/simd_equivalence.rs`):
/// the fast path applies when every window of the batch maps to the same
/// single overlap-save block, and windows that don't (multi-block or
/// mixed sizes) transparently fall back to the per-window engine.
#[derive(Debug, Clone)]
pub struct MultiWindowCorrelator {
    batch: BatchCorrelator,
}

impl MultiWindowCorrelator {
    /// Builds a multi-window correlator over K equal-length real
    /// references.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`BatchCorrelator::new`].
    pub fn new<R: AsRef<[f64]>>(references: &[R]) -> MultiWindowCorrelator {
        MultiWindowCorrelator::from_batch(BatchCorrelator::new(references))
    }

    /// Wraps an existing per-window batch engine, sharing its cached
    /// reference spectra (no duplication).
    pub fn from_batch(batch: BatchCorrelator) -> MultiWindowCorrelator {
        MultiWindowCorrelator { batch }
    }

    /// The wrapped per-window engine (used for single windows and as the
    /// fallback path).
    #[inline]
    pub fn batch(&self) -> &BatchCorrelator {
        &self.batch
    }

    /// Length of the cached references.
    #[inline]
    pub fn reference_len(&self) -> usize {
        self.batch.ref_len
    }

    /// Number of cached codes K.
    #[inline]
    pub fn num_codes(&self) -> usize {
        self.batch.codes
    }

    /// Correlates every window of the batch against all K references,
    /// leaving the W × K × lags rows in `scratch` (query with
    /// [`WindowScratch::row`]). Steady-state calls are allocation-free
    /// once the arena has reached its high-water size.
    pub fn correlate_iq_multi(&self, windows: &[&[Iq]], scratch: &mut WindowScratch) {
        self.correlate_iq_multi_impl(windows, scratch, None);
    }

    /// [`MultiWindowCorrelator::correlate_iq_multi`] with span
    /// instrumentation: the whole coalesced pass records one
    /// `multi_window_correlate` span under `parent`, its argument packing
    /// the batch shape as `(W << 32) | K`.
    pub fn correlate_iq_multi_traced(
        &self,
        windows: &[&[Iq]],
        scratch: &mut WindowScratch,
        tracer: &Tracer,
        trace: TraceId,
        parent: SpanId,
    ) {
        self.correlate_iq_multi_impl(windows, scratch, Some((tracer, trace, parent)));
    }

    fn correlate_iq_multi_impl(
        &self,
        windows: &[&[Iq]],
        scratch: &mut WindowScratch,
        trace: Option<(&Tracer, TraceId, SpanId)>,
    ) {
        let _span = trace.map(|(tracer, trace, parent)| {
            let mut span = tracer.span(trace, Some(parent), "multi_window_correlate");
            span.set_arg(((windows.len() as u64) << 32) | self.batch.codes as u64);
            span
        });
        let ref_len = self.batch.ref_len;
        let codes = self.batch.codes;
        scratch.codes = codes;
        scratch.lags.clear();
        scratch.offsets.clear();
        let mut total = 0;
        for w in windows {
            let lags = (w.len() + 1).saturating_sub(ref_len);
            scratch.offsets.push(total);
            scratch.lags.push(lags);
            total += codes * lags;
        }
        // Grow-only resizes: shrinking len is free, re-growing within
        // capacity only rewrites the new elements.
        scratch.out.clear();
        scratch.out.resize(total, Iq::ZERO);
        // Fast path: every window must run on the same block spec and fit
        // it in a single overlap-save block, so one forward spectrum per
        // window serves every code. (Windows shorter than the reference
        // contribute zero lags and are skipped outright.)
        let block = windows
            .iter()
            .find(|w| w.len() >= ref_len)
            .map(|w| self.batch.block_for(w.len()));
        let uniform = block.is_some_and(|b| {
            windows.iter().all(|w| {
                w.len() < ref_len
                    || (w.len() <= b.fft_size && std::ptr::eq(self.batch.block_for(w.len()), b))
            })
        });
        if !uniform {
            self.fallback_multi(windows, scratch);
            return;
        }
        let block = block.expect("uniform implies a block");
        let fft = block.fft_size;
        scratch.spectra.clear();
        scratch.spectra.resize(windows.len() * fft, Iq::ZERO);
        scratch.work.clear();
        scratch.work.resize(fft, Iq::ZERO);
        // Phase A: one forward transform per window.
        for (w, window) in windows.iter().enumerate() {
            if scratch.lags[w] == 0 {
                continue;
            }
            let spec = &mut scratch.spectra[w * fft..(w + 1) * fft];
            load_block(spec, window, 0);
            block.plan.forward_raw(spec).expect("sized to plan");
        }
        // Phase B, code-major: stream each cached reference spectrum
        // against every window spectrum while it is hot, with the
        // inverse transform pruned to the lags the row keeps.
        for k in 0..codes {
            let ref_spec = &block.spectra[k * fft..(k + 1) * fft];
            for (w, _) in windows.iter().enumerate() {
                let lags = scratch.lags[w];
                if lags == 0 {
                    continue;
                }
                let spec = &scratch.spectra[w * fft..(w + 1) * fft];
                simd::spectrum_mul_to(&mut scratch.work, spec, ref_spec);
                block
                    .plan
                    .inverse_raw_unscaled_pruned(&mut scratch.work, lags)
                    .expect("sized to plan");
                let base = scratch.offsets[w] + k * lags;
                scratch.out[base..base + lags].copy_from_slice(&scratch.work[..lags]);
            }
        }
    }

    /// Correctness fallback: per-window batch passes copied into the
    /// arena's row layout. Used when the batch mixes block specs or needs
    /// multi-block overlap-save walks.
    fn fallback_multi(&self, windows: &[&[Iq]], scratch: &mut WindowScratch) {
        for (w, window) in windows.iter().enumerate() {
            let lags = scratch.lags[w];
            if lags == 0 {
                continue;
            }
            self.batch.correlate_iq_into(window, &mut scratch.single);
            debug_assert_eq!(scratch.single.lags(), lags);
            let base = scratch.offsets[w];
            scratch.out[base..base + self.batch.codes * lags]
                .copy_from_slice(&scratch.single.out[..self.batch.codes * lags]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::correlate::correlate_iq_bipolar;

    fn direct_sliding(samples: &[Iq], reference: &[f64]) -> Vec<Iq> {
        if reference.len() > samples.len() {
            return Vec::new();
        }
        (0..=samples.len() - reference.len())
            .map(|off| correlate_iq_bipolar(&samples[off..off + reference.len()], reference))
            .collect()
    }

    fn test_signal(n: usize) -> Vec<Iq> {
        (0..n)
            .map(|i| {
                let t = i as f64;
                Iq::new((0.37 * t).sin() + 0.2, (0.11 * t).cos() - 0.1)
            })
            .collect()
    }

    fn test_reference(l: usize) -> Vec<f64> {
        (0..l).map(|i| if (i * 7) % 3 == 0 { 1.0 } else { -1.0 }).collect()
    }

    #[test]
    fn plan_matches_direct_fft_module() {
        let buf: Vec<Iq> = test_signal(64);
        let plan = FftPlan::new(64).unwrap();
        let mut a = buf.clone();
        plan.forward(&mut a).unwrap();
        let b = crate::fft::fft(&buf).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert!((*x - *y).abs() < 1e-9, "{x} vs {y}");
        }
        plan.inverse(&mut a).unwrap();
        for (x, y) in a.iter().zip(&buf) {
            assert!((*x - *y).abs() < 1e-10);
        }
    }

    #[test]
    fn plan_rejects_bad_sizes() {
        assert!(FftPlan::new(12).is_err());
        let plan = FftPlan::new(8).unwrap();
        let mut short = vec![Iq::ZERO; 4];
        assert!(plan.forward(&mut short).is_err());
        assert!(plan.inverse(&mut short).is_err());
        assert!(plan.forward_raw(&mut short).is_err());
        assert!(plan.inverse_raw(&mut short).is_err());
    }

    #[test]
    fn raw_pair_is_permuted_forward_and_exact_round_trip() {
        for n in [2usize, 4, 16, 64, 256] {
            let buf = test_signal(n);
            let plan = FftPlan::new(n).unwrap();
            let mut raw = buf.clone();
            plan.forward_raw(&mut raw).unwrap();
            let mut nat = buf.clone();
            plan.forward(&mut nat).unwrap();
            // forward_raw leaves bin k at the bit-reversed index of k.
            let bits = n.trailing_zeros();
            for (k, &x) in nat.iter().enumerate() {
                let r = (k as u32).reverse_bits() >> (u32::BITS - bits);
                let y = raw[r as usize];
                assert!((x - y).abs() < 1e-9 * n as f64, "n={n} bin {k}: {x} vs {y}");
            }
            plan.inverse_raw(&mut raw).unwrap();
            for (i, (x, y)) in raw.iter().zip(&buf).enumerate() {
                assert!((*x - *y).abs() < 1e-10, "n={n} sample {i}");
            }
        }
    }

    #[test]
    fn raw_pair_handles_degenerate_lengths() {
        let p0 = FftPlan::new(0).unwrap();
        let mut empty: Vec<Iq> = Vec::new();
        p0.forward_raw(&mut empty).unwrap();
        p0.inverse_raw(&mut empty).unwrap();
        let p1 = FftPlan::new(1).unwrap();
        let mut one = vec![Iq::new(2.0, -3.0)];
        p1.forward_raw(&mut one).unwrap();
        p1.inverse_raw(&mut one).unwrap();
        assert!((one[0] - Iq::new(2.0, -3.0)).abs() < 1e-15);
    }

    #[test]
    fn plan_handles_degenerate_lengths() {
        let p0 = FftPlan::new(0).unwrap();
        let mut empty: Vec<Iq> = Vec::new();
        p0.forward(&mut empty).unwrap();
        p0.inverse(&mut empty).unwrap();
        let p1 = FftPlan::new(1).unwrap();
        let mut one = vec![Iq::new(2.0, -3.0)];
        p1.forward(&mut one).unwrap();
        p1.inverse(&mut one).unwrap();
        assert!((one[0] - Iq::new(2.0, -3.0)).abs() < 1e-15);
    }

    #[test]
    fn overlap_save_equals_direct_across_lengths() {
        for &(n, l) in &[(40usize, 7usize), (64, 64), (65, 64), (300, 31), (1000, 248), (129, 128)] {
            let samples = test_signal(n);
            let reference = test_reference(l);
            let xc = SlidingCorrelator::new(&reference);
            let fft = xc.correlate_iq(&samples);
            let direct = direct_sliding(&samples, &reference);
            assert_eq!(fft.len(), direct.len(), "n={n} l={l}");
            for (i, (a, b)) in fft.iter().zip(&direct).enumerate() {
                assert!(
                    (*a - *b).abs() < 1e-9,
                    "n={n} l={l} lag {i}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn short_window_yields_empty() {
        let xc = SlidingCorrelator::new(&test_reference(16));
        assert!(xc.correlate_iq(&test_signal(15)).is_empty());
        assert!(xc.correlate_real(&[0.0; 3]).is_empty());
    }

    #[test]
    fn real_correlation_matches_iq_path() {
        let reference = test_reference(24);
        let series: Vec<f64> = (0..200).map(|i| (0.17 * i as f64).sin().abs()).collect();
        let xc = SlidingCorrelator::new(&reference);
        let real = xc.correlate_real(&series);
        for (off, r) in real.iter().enumerate() {
            let direct: f64 = series[off..off + 24]
                .iter()
                .zip(&reference)
                .map(|(s, c)| s * c)
                .sum();
            assert!((r - direct).abs() < 1e-9, "lag {off}");
        }
    }

    #[test]
    fn running_energy_matches_naive() {
        let samples = test_signal(97);
        let re = RunningEnergy::new(&samples);
        assert_eq!(re.len(), 97);
        for &(off, len) in &[(0usize, 97usize), (3, 10), (90, 7), (50, 0)] {
            let seg = &samples[off..off + len];
            let power: f64 = seg.iter().map(|s| s.power()).sum();
            let abs: f64 = seg.iter().map(|s| s.abs()).sum();
            assert!((re.power(off, len) - power).abs() < 1e-9);
            assert!((re.abs_sum(off, len) - abs).abs() < 1e-9);
            let mean = if len == 0 { 0.0 } else { abs / len as f64 };
            let centered: f64 = seg.iter().map(|s| (s.abs() - mean).powi(2)).sum();
            assert!((re.centered_energy(off, len) - centered).abs() < 1e-9);
        }
    }

    #[test]
    fn running_energy_zero_window_is_zero() {
        let re = RunningEnergy::new(&[Iq::ZERO; 32]);
        assert_eq!(re.power(4, 10), 0.0);
        assert_eq!(re.centered_energy(4, 10), 0.0);
        assert_eq!(re.mean_abs(0, 32), 0.0);
        let empty = RunningEnergy::new(&[]);
        assert!(empty.is_empty());
    }

    #[test]
    fn pruned_inverse_matches_unpruned_prefix() {
        for n in [4usize, 8, 16, 64, 256, 1024] {
            let plan = FftPlan::new(n).unwrap();
            let mut spec = test_signal(n);
            plan.forward_raw(&mut spec).unwrap();
            for needed in [0usize, 1, 2, 3, n / 4, n / 3, n / 2, n] {
                let mut full = spec.clone();
                plan.inverse_raw_unscaled(&mut full).unwrap();
                let mut pruned = spec.clone();
                plan.inverse_raw_unscaled_pruned(&mut pruned, needed).unwrap();
                let take = needed.min(n);
                assert_eq!(&pruned[..take], &full[..take], "n={n} needed={needed}");
            }
        }
    }

    #[test]
    fn multi_window_rows_match_batch_per_window() {
        let references: Vec<Vec<f64>> = (0..3).map(|k| test_reference(40 + k)).collect();
        // Unequal reference lengths are rejected by BatchCorrelator; use
        // uniform ones here.
        let references: Vec<Vec<f64>> = references
            .iter()
            .map(|r| r[..40].to_vec())
            .collect();
        let multi = MultiWindowCorrelator::new(&references);
        let bufs: Vec<Vec<Iq>> = [90usize, 130, 39, 101]
            .iter()
            .map(|&n| test_signal(n))
            .collect();
        let windows: Vec<&[Iq]> = bufs.iter().map(|b| b.as_slice()).collect();
        let mut ws = WindowScratch::new();
        multi.correlate_iq_multi(&windows, &mut ws);
        assert_eq!(ws.num_windows(), 4);
        assert_eq!(ws.num_codes(), 3);
        let mut bs = BatchScratch::new();
        for (w, window) in windows.iter().enumerate() {
            multi.batch().correlate_iq_into(window, &mut bs);
            assert_eq!(ws.lags(w), bs.lags(), "window {w}");
            for k in 0..3 {
                assert_eq!(ws.row(w, k), bs.code(k), "window {w} code {k}");
            }
        }
    }

    #[test]
    fn multi_window_fallback_covers_multi_block_windows() {
        // A long window forces the streaming block (multi-block walk)
        // while a short one uses the compact block — mixed specs land on
        // the per-window fallback, which must still be bit-identical.
        let references = vec![test_reference(64); 2];
        let multi = MultiWindowCorrelator::new(&references);
        let long = test_signal(2000);
        let short = test_signal(100);
        let windows: Vec<&[Iq]> = vec![&long, &short];
        let mut ws = WindowScratch::new();
        multi.correlate_iq_multi(&windows, &mut ws);
        let mut bs = BatchScratch::new();
        for (w, window) in windows.iter().enumerate() {
            multi.batch().correlate_iq_into(window, &mut bs);
            for k in 0..2 {
                assert_eq!(ws.row(w, k), bs.code(k), "window {w} code {k}");
            }
        }
    }

    #[test]
    fn multi_window_scratch_reuse_is_pointer_stable() {
        let references = vec![test_reference(32); 3];
        let multi = MultiWindowCorrelator::new(&references);
        let bufs: Vec<Vec<Iq>> = (0..4).map(|_| test_signal(120)).collect();
        let windows: Vec<&[Iq]> = bufs.iter().map(|b| b.as_slice()).collect();
        let mut ws = WindowScratch::new();
        multi.correlate_iq_multi(&windows, &mut ws);
        let ptr = ws.storage_ptr();
        multi.correlate_iq_multi(&windows, &mut ws);
        assert_eq!(ptr, ws.storage_ptr(), "row storage reallocated");
    }

    #[test]
    fn running_energy_extend_is_bit_identical_to_rebuild() {
        let samples = test_signal(513);
        let mut whole = RunningEnergy::default();
        whole.rebuild(&samples);
        for chunk in [1usize, 7, 64, 513] {
            let mut streamed = RunningEnergy::default();
            streamed.rebuild(&[]);
            for block in samples.chunks(chunk) {
                streamed.extend(block);
            }
            assert_eq!(streamed.len(), whole.len(), "chunk {chunk}");
            for i in 0..=samples.len() {
                assert_eq!(
                    streamed.power(0, i).to_bits(),
                    whole.power(0, i).to_bits(),
                    "chunk {chunk} prefix {i}"
                );
                assert_eq!(
                    streamed.abs_sum(0, i).to_bits(),
                    whole.abs_sum(0, i).to_bits(),
                    "chunk {chunk} prefix {i}"
                );
            }
        }
        // Real-domain variant.
        let values: Vec<f64> = (0..257).map(|i| (i as f64 * 0.13).sin() - 0.2).collect();
        let mut whole = RunningEnergy::default();
        whole.rebuild_real(&values);
        let mut streamed = RunningEnergy::default();
        streamed.rebuild_real(&[]);
        for block in values.chunks(11) {
            streamed.extend_real(block);
        }
        for i in 0..=values.len() {
            assert_eq!(streamed.power(0, i).to_bits(), whole.power(0, i).to_bits());
        }
    }

    #[test]
    fn block_chopping_never_changes_the_matrix() {
        // BatchStream fed in arbitrary chunk sizes — including 1, a prime,
        // a power of two, and the whole window — must reproduce the
        // one-shot matrix bit for bit, for windows that fit one FFT block
        // and windows that need a multi-block overlap-save walk with a
        // ragged final block.
        let references: Vec<Vec<f64>> = (0..3)
            .map(|k| {
                (0..40)
                    .map(|i| if (i * 7 + k) % 3 == 0 { 1.0 } else { -1.0 })
                    .collect()
            })
            .collect();
        let batch = BatchCorrelator::new(&references);
        for n in [39usize, 40, 100, 700, 1337] {
            let samples = test_signal(n);
            let mut want = BatchScratch::new();
            batch.correlate_iq_into(&samples, &mut want);
            for chunk in [1usize, 13, 128, n] {
                let mut got = BatchScratch::new();
                let mut stream = batch.begin_stream(n, &mut got);
                for block in samples.chunks(chunk.max(1)) {
                    stream.feed(&batch, block, &mut got);
                }
                let returned = stream.finish(&batch, &mut got);
                assert_eq!(returned, samples, "n={n} chunk={chunk}: buffered window");
                assert_eq!(got.lags(), want.lags(), "n={n} chunk={chunk}");
                for k in 0..batch.num_codes() {
                    let (g, w) = (got.code(k), want.code(k));
                    assert_eq!(g.len(), w.len());
                    for (i, (a, b)) in g.iter().zip(w).enumerate() {
                        assert_eq!(
                            (a.re.to_bits(), a.im.to_bits()),
                            (b.re.to_bits(), b.im.to_bits()),
                            "n={n} chunk={chunk} code {k} lag {i}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn centered_energy_never_negative() {
        // A constant envelope has zero mean-removed energy; rounding must
        // not drive the clamped value below zero.
        let samples = vec![Iq::new(0.3, 0.4); 500];
        let re = RunningEnergy::new(&samples);
        for off in 0..400 {
            let e = re.centered_energy(off, 100);
            assert!((0.0..1e-9).contains(&e), "off {off}: {e}");
        }
    }
}
