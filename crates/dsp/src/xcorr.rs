//! Fast sliding cross-correlation: overlap-save FFT engine, cached FFT
//! plans, and O(1) running-energy queries.
//!
//! CBMA's receiver cross-correlates every known PN code's spread-preamble
//! reference against the received window at every candidate lag (§III-B).
//! Done directly that is O(lags × ref_len) *per code* — the receiver's
//! dominant cost. This module turns the sliding dot products into
//! frequency-domain multiplications (overlap-save block convolution on the
//! workspace's radix-2 FFT) and the per-lag segment-energy normalization
//! into prefix-sum lookups:
//!
//! * [`FftPlan`] — a reusable radix-2 plan with the bit-reversal
//!   permutation and twiddle factors precomputed once, so the butterfly
//!   loop performs no `sin`/`cos` calls,
//! * [`SlidingCorrelator`] — caches the conjugate spectrum of one real
//!   (bipolar) reference and correlates it against arbitrary-length
//!   complex-IQ or real windows in O(N log B) via overlap-save blocks,
//! * [`RunningEnergy`] — prefix sums of |s| and |s|² giving O(1) segment
//!   power, mean and mean-removed energy over any `[off, off + len)`,
//!   serving both the coherent power normalization and the envelope
//!   mean-removed statistic.
//!
//! The engine is exact up to FFT rounding (≈1e-12 relative); the receiver
//! keeps a direct path for short windows and the equivalence proptests in
//! `crates/dsp/tests/xcorr.rs` and `crates/rx/tests/detect_equivalence.rs`
//! pin the two paths together within 1e-9.

use cbma_types::{CbmaError, Iq, Result};

/// A precomputed radix-2 FFT plan for one power-of-two size.
///
/// Building a plan computes the bit-reversal permutation and the twiddle
/// table e^{−2πik/N} (k < N/2) once; [`FftPlan::forward`] and
/// [`FftPlan::inverse`] then run the butterflies with table lookups only.
/// All stages share the one table: stage `len` uses every (N/len)-th entry.
#[derive(Debug, Clone)]
pub struct FftPlan {
    n: usize,
    /// Bit-reversed index of every position (identity for n ≤ 1).
    rev: Vec<u32>,
    /// Forward twiddles e^{−2πik/n} for k in 0..n/2; inverse conjugates.
    twiddles: Vec<Iq>,
}

impl FftPlan {
    /// Builds a plan for transforms of length `n`.
    ///
    /// # Errors
    ///
    /// Returns [`CbmaError::ShapeMismatch`] when `n` is neither zero, one,
    /// nor a power of two.
    pub fn new(n: usize) -> Result<FftPlan> {
        if n > 1 && !n.is_power_of_two() {
            return Err(CbmaError::ShapeMismatch {
                expected: "power-of-two length".into(),
                actual: format!("length {n}"),
            });
        }
        let bits = n.trailing_zeros();
        let rev = if n <= 1 {
            Vec::new()
        } else {
            (0..n as u32)
                .map(|i| i.reverse_bits() >> (u32::BITS - bits))
                .collect()
        };
        let twiddles = (0..n / 2)
            .map(|k| Iq::phasor(-2.0 * std::f64::consts::PI * k as f64 / n as f64))
            .collect();
        Ok(FftPlan { n, rev, twiddles })
    }

    /// The transform length this plan was built for.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` when the plan transforms zero-length buffers.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Forward FFT (no normalization) in place.
    ///
    /// # Errors
    ///
    /// Returns [`CbmaError::ShapeMismatch`] when `buf.len()` differs from
    /// the plan length.
    pub fn forward(&self, buf: &mut [Iq]) -> Result<()> {
        self.check(buf)?;
        self.run(buf, false);
        Ok(())
    }

    /// Inverse FFT with 1/N normalization in place.
    ///
    /// # Errors
    ///
    /// Returns [`CbmaError::ShapeMismatch`] when `buf.len()` differs from
    /// the plan length.
    pub fn inverse(&self, buf: &mut [Iq]) -> Result<()> {
        self.check(buf)?;
        self.run(buf, true);
        let scale = 1.0 / self.n.max(1) as f64;
        for x in buf.iter_mut() {
            *x = x.scale(scale);
        }
        Ok(())
    }

    fn check(&self, buf: &[Iq]) -> Result<()> {
        if buf.len() != self.n {
            return Err(CbmaError::ShapeMismatch {
                expected: format!("buffer of plan length {}", self.n),
                actual: format!("length {}", buf.len()),
            });
        }
        Ok(())
    }

    fn run(&self, buf: &mut [Iq], inverse: bool) {
        let n = self.n;
        if n <= 1 {
            return;
        }
        for (i, &j) in self.rev.iter().enumerate() {
            let j = j as usize;
            if j > i {
                buf.swap(i, j);
            }
        }
        let mut len = 2;
        while len <= n {
            let half = len / 2;
            let stride = n / len;
            for chunk in buf.chunks_mut(len) {
                for k in 0..half {
                    let mut w = self.twiddles[k * stride];
                    if inverse {
                        w = w.conj();
                    }
                    let u = chunk[k];
                    let v = chunk[k + half] * w;
                    chunk[k] = u + v;
                    chunk[k + half] = u - v;
                }
            }
            len <<= 1;
        }
    }
}

/// Prefix sums of |s| and |s|² over a sample window: O(1) segment power,
/// magnitude sum, mean and mean-removed energy for any `[off, off + len)`.
///
/// One instance serves both detector statistics: the coherent path
/// normalizes by segment *power* (Σ|s|²) and the envelope path by the
/// *mean-removed envelope energy* (Σ(|s|−mean)² = Σ|s|² − (Σ|s|)²/len).
#[derive(Debug, Clone)]
pub struct RunningEnergy {
    /// prefix_abs[i] = Σ_{j<i} |s_j|
    prefix_abs: Vec<f64>,
    /// prefix_sq[i] = Σ_{j<i} |s_j|²
    prefix_sq: Vec<f64>,
}

impl RunningEnergy {
    /// Builds the prefix sums for a complex-IQ window (one O(n) pass).
    pub fn new(samples: &[Iq]) -> RunningEnergy {
        let mut prefix_abs = Vec::with_capacity(samples.len() + 1);
        let mut prefix_sq = Vec::with_capacity(samples.len() + 1);
        let (mut sa, mut sq) = (0.0, 0.0);
        prefix_abs.push(0.0);
        prefix_sq.push(0.0);
        for s in samples {
            let p = s.power();
            sa += p.sqrt();
            sq += p;
            prefix_abs.push(sa);
            prefix_sq.push(sq);
        }
        RunningEnergy { prefix_abs, prefix_sq }
    }

    /// Builds the prefix sums for a real-valued series (|v| and v²), e.g.
    /// a reconstructed OOK envelope or an |s| magnitude series.
    pub fn from_real(values: &[f64]) -> RunningEnergy {
        let mut prefix_abs = Vec::with_capacity(values.len() + 1);
        let mut prefix_sq = Vec::with_capacity(values.len() + 1);
        let (mut sa, mut sq) = (0.0, 0.0);
        prefix_abs.push(0.0);
        prefix_sq.push(0.0);
        for &v in values {
            sa += v.abs();
            sq += v * v;
            prefix_abs.push(sa);
            prefix_sq.push(sq);
        }
        RunningEnergy { prefix_abs, prefix_sq }
    }

    /// Number of samples covered.
    #[inline]
    pub fn len(&self) -> usize {
        self.prefix_sq.len() - 1
    }

    /// `true` when built over an empty window.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Σ|s|² over `[off, off + len)`.
    ///
    /// # Panics
    ///
    /// Panics if the segment exceeds the window.
    #[inline]
    pub fn power(&self, off: usize, len: usize) -> f64 {
        self.prefix_sq[off + len] - self.prefix_sq[off]
    }

    /// Σ|s| over `[off, off + len)`.
    ///
    /// # Panics
    ///
    /// Panics if the segment exceeds the window.
    #[inline]
    pub fn abs_sum(&self, off: usize, len: usize) -> f64 {
        self.prefix_abs[off + len] - self.prefix_abs[off]
    }

    /// Mean of |s| over `[off, off + len)`; 0.0 for an empty segment.
    #[inline]
    pub fn mean_abs(&self, off: usize, len: usize) -> f64 {
        if len == 0 {
            0.0
        } else {
            self.abs_sum(off, len) / len as f64
        }
    }

    /// Mean-removed envelope energy Σ(|s|−mean)² over `[off, off + len)`,
    /// clamped to ≥ 0 against rounding.
    #[inline]
    pub fn centered_energy(&self, off: usize, len: usize) -> f64 {
        if len == 0 {
            return 0.0;
        }
        let sa = self.abs_sum(off, len);
        (self.power(off, len) - sa * sa / len as f64).max(0.0)
    }
}

/// One cached block size: the FFT plan plus the reference's conjugate
/// spectrum at that size.
#[derive(Debug, Clone)]
struct BlockSpec {
    /// conj(FFT(reference zero-padded to `fft_size`)).
    ref_conj_spec: Vec<Iq>,
    plan: FftPlan,
    fft_size: usize,
    /// Valid correlation outputs per block: `fft_size − ref_len + 1`.
    block_out: usize,
}

impl BlockSpec {
    fn new(reference: &[f64], fft_size: usize) -> BlockSpec {
        let plan = FftPlan::new(fft_size).expect("power-of-two by construction");
        let mut spec: Vec<Iq> = reference
            .iter()
            .map(|&r| Iq::new(r, 0.0))
            .chain(std::iter::repeat(Iq::ZERO))
            .take(fft_size)
            .collect();
        plan.forward(&mut spec).expect("sized to plan");
        for x in spec.iter_mut() {
            *x = x.conj();
        }
        BlockSpec {
            ref_conj_spec: spec,
            plan,
            fft_size,
            block_out: fft_size - reference.len() + 1,
        }
    }
}

/// Overlap-save FFT sliding correlator for one cached real reference.
///
/// Construction pads the reference to power-of-two block sizes, computes
/// its conjugate spectrum once per size, and keeps the [`FftPlan`]s. Each
/// [`SlidingCorrelator::correlate_iq`] call then processes the window in
/// blocks of `B` samples overlapping by `ref_len − 1`, producing the exact
/// linear cross-correlation
/// `c[k] = Σ_i s[k+i]·r[i]` for every lag `k in 0..=n − ref_len`
/// in O(N log B) instead of O(N · ref_len).
///
/// Two block sizes are cached: a *compact* one (`≈2L` rounded up) used
/// whenever the whole window fits in a single block — the receiver's
/// common case, where a frame-head search window is only a few hundred
/// lags past the reference — and a *streaming* one (`≈4L`) whose larger
/// valid region amortizes FFT work better over long, many-block windows.
#[derive(Debug, Clone)]
pub struct SlidingCorrelator {
    reference: Vec<f64>,
    /// Cached block sizes, ascending; the last is the streaming size.
    blocks: Vec<BlockSpec>,
}

impl SlidingCorrelator {
    /// Builds a correlator for `reference`, caching its conjugate
    /// spectrum at each block size.
    ///
    /// # Panics
    ///
    /// Panics if `reference` is empty.
    pub fn new(reference: &[f64]) -> SlidingCorrelator {
        assert!(!reference.is_empty(), "reference must be non-empty");
        let l = reference.len();
        // Compact size: the smallest power of two holding the reference
        // plus a same-order slack of lags — one block, minimal FFT work
        // for short search windows. Streaming size: ≈4L keeps FFT work
        // per output low (2·B·log B for B−L+1 lags) without ballooning
        // block memory. Floors of 64 so tiny references still amortize
        // the permutation overhead.
        let compact = (2 * l).next_power_of_two().max(64);
        let streaming = (4 * l.next_power_of_two()).max(64);
        let mut blocks = vec![BlockSpec::new(reference, compact)];
        if streaming > compact {
            blocks.push(BlockSpec::new(reference, streaming));
        }
        SlidingCorrelator {
            reference: reference.to_vec(),
            blocks,
        }
    }

    /// Length of the cached reference.
    #[inline]
    pub fn reference_len(&self) -> usize {
        self.reference.len()
    }

    /// The largest (streaming) overlap-save FFT block size `B`.
    #[inline]
    pub fn fft_size(&self) -> usize {
        self.blocks.last().expect("at least one block size").fft_size
    }

    /// The cached reference sequence.
    #[inline]
    pub fn reference(&self) -> &[f64] {
        &self.reference
    }

    /// The block spec a window of `n` samples runs on: the smallest
    /// cached size that covers the window in a single block, else the
    /// streaming size.
    fn block_for(&self, n: usize) -> &BlockSpec {
        self.blocks
            .iter()
            .find(|b| n <= b.fft_size)
            .unwrap_or_else(|| self.blocks.last().expect("at least one block size"))
    }

    /// Complex sliding correlation `c[k] = Σ_i s[k+i]·r[i]` for every lag
    /// `k in 0..=samples.len() − ref_len` (empty when the window is
    /// shorter than the reference). Matches
    /// [`crate::correlate::correlate_iq_bipolar`] per lag up to FFT
    /// rounding.
    pub fn correlate_iq(&self, samples: &[Iq]) -> Vec<Iq> {
        let l = self.reference.len();
        if samples.len() < l {
            return Vec::new();
        }
        let block = self.block_for(samples.len());
        let lags = samples.len() - l + 1;
        let mut out = Vec::with_capacity(lags);
        let mut buf = vec![Iq::ZERO; block.fft_size];
        let mut pos = 0;
        while pos < lags {
            let take = (samples.len() - pos).min(block.fft_size);
            buf[..take].copy_from_slice(&samples[pos..pos + take]);
            for x in buf[take..].iter_mut() {
                *x = Iq::ZERO;
            }
            block.plan.forward(&mut buf).expect("sized to plan");
            for (x, r) in buf.iter_mut().zip(&block.ref_conj_spec) {
                *x *= *r;
            }
            block.plan.inverse(&mut buf).expect("sized to plan");
            let valid = (lags - pos).min(block.block_out);
            out.extend_from_slice(&buf[..valid]);
            pos += block.block_out;
        }
        out
    }

    /// Real sliding correlation of a real-valued window (e.g. an |s|
    /// magnitude series) against the cached reference.
    pub fn correlate_real(&self, samples: &[f64]) -> Vec<f64> {
        let as_iq: Vec<Iq> = samples.iter().map(|&v| Iq::new(v, 0.0)).collect();
        self.correlate_iq(&as_iq).into_iter().map(|c| c.re).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::correlate::correlate_iq_bipolar;

    fn direct_sliding(samples: &[Iq], reference: &[f64]) -> Vec<Iq> {
        if reference.len() > samples.len() {
            return Vec::new();
        }
        (0..=samples.len() - reference.len())
            .map(|off| correlate_iq_bipolar(&samples[off..off + reference.len()], reference))
            .collect()
    }

    fn test_signal(n: usize) -> Vec<Iq> {
        (0..n)
            .map(|i| {
                let t = i as f64;
                Iq::new((0.37 * t).sin() + 0.2, (0.11 * t).cos() - 0.1)
            })
            .collect()
    }

    fn test_reference(l: usize) -> Vec<f64> {
        (0..l).map(|i| if (i * 7) % 3 == 0 { 1.0 } else { -1.0 }).collect()
    }

    #[test]
    fn plan_matches_direct_fft_module() {
        let buf: Vec<Iq> = test_signal(64);
        let plan = FftPlan::new(64).unwrap();
        let mut a = buf.clone();
        plan.forward(&mut a).unwrap();
        let b = crate::fft::fft(&buf).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert!((*x - *y).abs() < 1e-9, "{x} vs {y}");
        }
        plan.inverse(&mut a).unwrap();
        for (x, y) in a.iter().zip(&buf) {
            assert!((*x - *y).abs() < 1e-10);
        }
    }

    #[test]
    fn plan_rejects_bad_sizes() {
        assert!(FftPlan::new(12).is_err());
        let plan = FftPlan::new(8).unwrap();
        let mut short = vec![Iq::ZERO; 4];
        assert!(plan.forward(&mut short).is_err());
        assert!(plan.inverse(&mut short).is_err());
    }

    #[test]
    fn plan_handles_degenerate_lengths() {
        let p0 = FftPlan::new(0).unwrap();
        let mut empty: Vec<Iq> = Vec::new();
        p0.forward(&mut empty).unwrap();
        p0.inverse(&mut empty).unwrap();
        let p1 = FftPlan::new(1).unwrap();
        let mut one = vec![Iq::new(2.0, -3.0)];
        p1.forward(&mut one).unwrap();
        p1.inverse(&mut one).unwrap();
        assert!((one[0] - Iq::new(2.0, -3.0)).abs() < 1e-15);
    }

    #[test]
    fn overlap_save_equals_direct_across_lengths() {
        for &(n, l) in &[(40usize, 7usize), (64, 64), (65, 64), (300, 31), (1000, 248), (129, 128)] {
            let samples = test_signal(n);
            let reference = test_reference(l);
            let xc = SlidingCorrelator::new(&reference);
            let fft = xc.correlate_iq(&samples);
            let direct = direct_sliding(&samples, &reference);
            assert_eq!(fft.len(), direct.len(), "n={n} l={l}");
            for (i, (a, b)) in fft.iter().zip(&direct).enumerate() {
                assert!(
                    (*a - *b).abs() < 1e-9,
                    "n={n} l={l} lag {i}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn short_window_yields_empty() {
        let xc = SlidingCorrelator::new(&test_reference(16));
        assert!(xc.correlate_iq(&test_signal(15)).is_empty());
        assert!(xc.correlate_real(&[0.0; 3]).is_empty());
    }

    #[test]
    fn real_correlation_matches_iq_path() {
        let reference = test_reference(24);
        let series: Vec<f64> = (0..200).map(|i| (0.17 * i as f64).sin().abs()).collect();
        let xc = SlidingCorrelator::new(&reference);
        let real = xc.correlate_real(&series);
        for (off, r) in real.iter().enumerate() {
            let direct: f64 = series[off..off + 24]
                .iter()
                .zip(&reference)
                .map(|(s, c)| s * c)
                .sum();
            assert!((r - direct).abs() < 1e-9, "lag {off}");
        }
    }

    #[test]
    fn running_energy_matches_naive() {
        let samples = test_signal(97);
        let re = RunningEnergy::new(&samples);
        assert_eq!(re.len(), 97);
        for &(off, len) in &[(0usize, 97usize), (3, 10), (90, 7), (50, 0)] {
            let seg = &samples[off..off + len];
            let power: f64 = seg.iter().map(|s| s.power()).sum();
            let abs: f64 = seg.iter().map(|s| s.abs()).sum();
            assert!((re.power(off, len) - power).abs() < 1e-9);
            assert!((re.abs_sum(off, len) - abs).abs() < 1e-9);
            let mean = if len == 0 { 0.0 } else { abs / len as f64 };
            let centered: f64 = seg.iter().map(|s| (s.abs() - mean).powi(2)).sum();
            assert!((re.centered_energy(off, len) - centered).abs() < 1e-9);
        }
    }

    #[test]
    fn running_energy_zero_window_is_zero() {
        let re = RunningEnergy::new(&[Iq::ZERO; 32]);
        assert_eq!(re.power(4, 10), 0.0);
        assert_eq!(re.centered_energy(4, 10), 0.0);
        assert_eq!(re.mean_abs(0, 32), 0.0);
        let empty = RunningEnergy::new(&[]);
        assert!(empty.is_empty());
    }

    #[test]
    fn centered_energy_never_negative() {
        // A constant envelope has zero mean-removed energy; rounding must
        // not drive the clamped value below zero.
        let samples = vec![Iq::new(0.3, 0.4); 500];
        let re = RunningEnergy::new(&samples);
        for off in 0..400 {
            let e = re.centered_energy(off, 100);
            assert!((0.0..1e-9).contains(&e), "off {off}: {e}");
        }
    }
}
