//! Square-wave subcarrier synthesis (paper Eq. 2).
//!
//! The tag has no RF front end; it shifts the excitation tone by toggling
//! its antenna impedance with a square wave at Δf (§II-A, §VI). By Fourier
//! analysis,
//!
//! ```text
//! Square(Δf·t) = (4/π) Σ_{n=1,3,5,…} (1/n) · sin(2π·n·Δf·t)
//! ```
//!
//! so the first harmonic carries amplitude 4/π and the 3rd/5th harmonics
//! sit ≈9.5 dB and ≈14 dB below it (§VI). [`SquareWave`] synthesizes the
//! truncated series; [`SquareWave::first_harmonic_amplitude`] exposes the
//! 4/π factor the link budget uses when approximating the subcarrier as a
//! sinusoid.

use std::f64::consts::PI;

use cbma_types::units::{Db, Hertz};

/// A square-wave generator defined by its fundamental frequency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SquareWave {
    frequency: Hertz,
}

impl SquareWave {
    /// Creates a generator at the given fundamental Δf.
    ///
    /// # Panics
    ///
    /// Panics if the frequency is not strictly positive.
    pub fn new(frequency: Hertz) -> SquareWave {
        assert!(
            frequency.get() > 0.0,
            "square-wave frequency must be positive"
        );
        SquareWave { frequency }
    }

    /// The paper's configuration: Δf = 20 MHz (§VI).
    pub fn paper_default() -> SquareWave {
        SquareWave::new(Hertz::from_mhz(20.0))
    }

    /// The fundamental frequency Δf.
    #[inline]
    pub fn frequency(&self) -> Hertz {
        self.frequency
    }

    /// Amplitude of the first harmonic: 4/π ≈ 1.273 (Eq. 2 with n = 1).
    #[inline]
    pub fn first_harmonic_amplitude() -> f64 {
        4.0 / PI
    }

    /// Amplitude of odd harmonic `n` (n = 1, 3, 5, …): (4/π)/n.
    ///
    /// # Panics
    ///
    /// Panics if `n` is even or zero.
    pub fn harmonic_amplitude(n: u32) -> f64 {
        assert!(
            n % 2 == 1,
            "square waves contain only odd harmonics, got n={n}"
        );
        4.0 / (PI * f64::from(n))
    }

    /// Power of harmonic `n` relative to the fundamental, in dB
    /// (−20·log₁₀ n). The paper quotes ≈−9.5 dB for n = 3 and ≈−14 dB for
    /// n = 5.
    pub fn harmonic_rejection(n: u32) -> Db {
        assert!(
            n % 2 == 1,
            "square waves contain only odd harmonics, got n={n}"
        );
        Db::new(-20.0 * f64::from(n).log10())
    }

    /// The ideal ±1 square wave value at time `t` seconds.
    pub fn ideal(&self, t: f64) -> f64 {
        let phase = (self.frequency.get() * t).fract();
        // fract() of a negative argument is negative; normalize to [0,1).
        let phase = if phase < 0.0 { phase + 1.0 } else { phase };
        if phase < 0.5 {
            1.0
        } else {
            -1.0
        }
    }

    /// Truncated Fourier synthesis with `n_harmonics` odd harmonics
    /// (n = 1 uses just the fundamental sinusoid — the approximation §VI
    /// adopts).
    ///
    /// # Panics
    ///
    /// Panics if `n_harmonics` is zero.
    pub fn synthesize(&self, t: f64, n_harmonics: u32) -> f64 {
        assert!(n_harmonics > 0, "need at least one harmonic");
        let mut value = 0.0;
        for k in 0..n_harmonics {
            let n = f64::from(2 * k + 1);
            value += (1.0 / n) * (2.0 * PI * n * self.frequency.get() * t).sin();
        }
        value * 4.0 / PI
    }

    /// Samples one period of the ideal wave at `samples_per_period` points.
    ///
    /// # Panics
    ///
    /// Panics if `samples_per_period` is zero.
    pub fn sample_period(&self, samples_per_period: usize) -> Vec<f64> {
        assert!(
            samples_per_period > 0,
            "need at least one sample per period"
        );
        let period = 1.0 / self.frequency.get();
        (0..samples_per_period)
            .map(|i| self.ideal(i as f64 * period / samples_per_period as f64))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_wave_alternates() {
        let sq = SquareWave::new(Hertz::new(1.0)); // 1 Hz: +1 on [0,0.5)
        assert_eq!(sq.ideal(0.0), 1.0);
        assert_eq!(sq.ideal(0.25), 1.0);
        assert_eq!(sq.ideal(0.5), -1.0);
        assert_eq!(sq.ideal(0.75), -1.0);
        assert_eq!(sq.ideal(1.0), 1.0);
        // Negative time also normalizes.
        assert_eq!(sq.ideal(-0.25), -1.0);
    }

    #[test]
    fn first_harmonic_is_four_over_pi() {
        assert!((SquareWave::first_harmonic_amplitude() - 4.0 / PI).abs() < 1e-15);
        assert!((SquareWave::harmonic_amplitude(1) - 4.0 / PI).abs() < 1e-15);
        assert!((SquareWave::harmonic_amplitude(3) - 4.0 / (3.0 * PI)).abs() < 1e-15);
    }

    #[test]
    fn harmonic_rejection_matches_paper() {
        // §VI: 3rd harmonic about 9.5 dB down, 5th about 14 dB down.
        let third = SquareWave::harmonic_rejection(3).get();
        let fifth = SquareWave::harmonic_rejection(5).get();
        assert!((third - (-9.542)).abs() < 0.01, "third = {third}");
        assert!((fifth - (-13.979)).abs() < 0.01, "fifth = {fifth}");
    }

    #[test]
    #[should_panic(expected = "odd harmonics")]
    fn even_harmonic_panics() {
        SquareWave::harmonic_amplitude(2);
    }

    #[test]
    fn synthesis_converges_to_ideal() {
        let sq = SquareWave::new(Hertz::new(1.0));
        // Away from the discontinuities, many-harmonic synthesis is close
        // to the ideal wave.
        for &t in &[0.1, 0.2, 0.3, 0.6, 0.7, 0.9] {
            let approx = sq.synthesize(t, 200);
            assert!(
                (approx - sq.ideal(t)).abs() < 0.02,
                "t={t}: approx={approx}, ideal={}",
                sq.ideal(t)
            );
        }
    }

    #[test]
    fn single_harmonic_is_sinusoid() {
        let sq = SquareWave::new(Hertz::new(2.0));
        let t = 0.033;
        let expected = 4.0 / PI * (2.0 * PI * 2.0 * t).sin();
        assert!((sq.synthesize(t, 1) - expected).abs() < 1e-12);
    }

    #[test]
    fn sampled_period_is_half_high_half_low() {
        let sq = SquareWave::paper_default();
        let samples = sq.sample_period(64);
        assert_eq!(samples.len(), 64);
        assert_eq!(samples.iter().filter(|&&s| s > 0.0).count(), 32);
        assert_eq!(samples.iter().filter(|&&s| s < 0.0).count(), 32);
    }

    #[test]
    fn paper_default_is_20mhz() {
        assert_eq!(
            SquareWave::paper_default().frequency(),
            Hertz::from_mhz(20.0)
        );
    }
}
