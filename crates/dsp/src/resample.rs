//! Up-sampling, down-sampling and fractional delay.
//!
//! The tag up-samples its coded bit stream to the subcarrier rate before
//! the AND operation with the square wave (§III-A, §VI), and the receiver
//! down-samples its ADC stream to the chip rate before decoding (§V-B).
//! Asynchronous tags arrive with arbitrary sub-chip delays (§VII-C.2),
//! which [`fractional_delay`] models with linear interpolation.

use cbma_types::Iq;

/// Up-samples by integer factor `factor`, repeating each input sample
/// (zero-order hold) — exactly what a digital tag does when it stretches
/// each coded bit over `factor` subcarrier periods.
///
/// # Panics
///
/// Panics if `factor` is zero.
pub fn upsample_repeat<T: Copy>(input: &[T], factor: usize) -> Vec<T> {
    assert!(factor > 0, "upsample factor must be non-zero");
    let mut out = Vec::with_capacity(input.len() * factor);
    for &x in input {
        for _ in 0..factor {
            out.push(x);
        }
    }
    out
}

/// Down-samples by integer factor `factor`, averaging each block — the
/// receiver's decimation step (§V-B "we downsample the received data").
/// A trailing partial block is averaged over its actual length.
///
/// # Panics
///
/// Panics if `factor` is zero.
pub fn downsample_mean(input: &[Iq], factor: usize) -> Vec<Iq> {
    assert!(factor > 0, "downsample factor must be non-zero");
    input
        .chunks(factor)
        .map(|chunk| {
            let sum: Iq = chunk.iter().copied().sum();
            sum / chunk.len() as f64
        })
        .collect()
}

/// Down-samples a real-valued series by block averaging.
///
/// # Panics
///
/// Panics if `factor` is zero.
pub fn downsample_mean_real(input: &[f64], factor: usize) -> Vec<f64> {
    assert!(factor > 0, "downsample factor must be non-zero");
    input
        .chunks(factor)
        .map(|chunk| chunk.iter().sum::<f64>() / chunk.len() as f64)
        .collect()
}

/// Applies a (possibly fractional) sample delay with linear interpolation.
///
/// The output has the same length as the input: the first `ceil(delay)`
/// samples are zero (signal not yet arrived) and the tail is truncated.
/// `delay` must be non-negative and finite.
///
/// # Panics
///
/// Panics if `delay` is negative or non-finite.
pub fn fractional_delay(input: &[Iq], delay: f64) -> Vec<Iq> {
    assert!(
        delay >= 0.0 && delay.is_finite(),
        "delay must be non-negative and finite, got {delay}"
    );
    let n = input.len();
    let int_part = delay.floor() as usize;
    let frac = delay - delay.floor();
    let mut out = vec![Iq::ZERO; n];
    if int_part >= n {
        return out;
    }
    for i in int_part..n {
        // out[i] interpolates between input[i - int_part] (weight 1-frac)
        // and input[i - int_part - 1] (weight frac).
        let cur = input[i - int_part];
        let prev = if i > int_part {
            input[i - int_part - 1]
        } else {
            Iq::ZERO
        };
        out[i] = cur.scale(1.0 - frac) + prev.scale(frac);
    }
    out
}

/// Pads a buffer with `n` zero samples in front (pure integer delay that
/// grows the buffer instead of truncating).
pub fn prepend_zeros(input: &[Iq], n: usize) -> Vec<Iq> {
    let mut out = vec![Iq::ZERO; n];
    out.extend_from_slice(input);
    out
}

/// Extends (or truncates) a buffer to exactly `len` samples, padding with
/// zeros at the back.
pub fn fit_length(input: &[Iq], len: usize) -> Vec<Iq> {
    let mut out = input.to_vec();
    out.resize(len, Iq::ZERO);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn re(values: &[f64]) -> Vec<Iq> {
        values.iter().map(|&v| Iq::new(v, 0.0)).collect()
    }

    #[test]
    fn upsample_repeats_each_sample() {
        assert_eq!(
            upsample_repeat(&[1u8, 0, 1], 3),
            vec![1, 1, 1, 0, 0, 0, 1, 1, 1]
        );
        assert_eq!(upsample_repeat::<u8>(&[], 4), Vec::<u8>::new());
    }

    #[test]
    fn downsample_inverts_upsample() {
        let original = re(&[1.0, -1.0, 0.5, 0.25]);
        let up = upsample_repeat(&original, 4);
        let down = downsample_mean(&up, 4);
        assert_eq!(down.len(), original.len());
        for (a, b) in down.iter().zip(&original) {
            assert!((*a - *b).abs() < 1e-12);
        }
    }

    #[test]
    fn downsample_handles_ragged_tail() {
        let down = downsample_mean(&re(&[2.0, 4.0, 6.0]), 2);
        assert_eq!(down.len(), 2);
        assert!((down[0].re - 3.0).abs() < 1e-12);
        assert!((down[1].re - 6.0).abs() < 1e-12);
    }

    #[test]
    fn downsample_real_series() {
        assert_eq!(
            downsample_mean_real(&[1.0, 3.0, 5.0, 7.0], 2),
            vec![2.0, 6.0]
        );
    }

    #[test]
    fn integer_delay_shifts_exactly() {
        let x = re(&[1.0, 2.0, 3.0, 4.0]);
        let y = fractional_delay(&x, 2.0);
        assert_eq!(y.len(), 4);
        assert!(y[0].abs() < 1e-12);
        assert!(y[1].abs() < 1e-12);
        assert!((y[2].re - 1.0).abs() < 1e-12);
        assert!((y[3].re - 2.0).abs() < 1e-12);
    }

    #[test]
    fn half_sample_delay_interpolates() {
        let x = re(&[2.0, 4.0]);
        let y = fractional_delay(&x, 0.5);
        // y[0] = 0.5*x[0] + 0.5*(implicit leading zero) = 1.0
        assert!((y[0].re - 1.0).abs() < 1e-12);
        // y[1] = 0.5*x[1] + 0.5*x[0] = 3.0
        assert!((y[1].re - 3.0).abs() < 1e-12);
    }

    #[test]
    fn zero_delay_is_identity() {
        let x = re(&[1.0, -2.0, 3.0]);
        let y = fractional_delay(&x, 0.0);
        for (a, b) in y.iter().zip(&x) {
            assert!((*a - *b).abs() < 1e-12);
        }
    }

    #[test]
    fn delay_longer_than_buffer_zeroes_everything() {
        let y = fractional_delay(&re(&[1.0, 2.0]), 10.0);
        assert!(y.iter().all(|s| s.abs() < 1e-12));
    }

    #[test]
    fn delay_preserves_energy_for_integer_shifts() {
        let x = re(&[1.0, 1.0, 1.0, 1.0, 0.0, 0.0, 0.0, 0.0]);
        let y = fractional_delay(&x, 3.0);
        let ex: f64 = x.iter().map(|s| s.power()).sum();
        let ey: f64 = y.iter().map(|s| s.power()).sum();
        // One sample of the original pulse is pushed out; 3/4 remains... no:
        // pulse occupies [0,4), shifted to [3,7) which still fits.
        assert!((ex - ey).abs() < 1e-12);
    }

    #[test]
    fn prepend_and_fit() {
        let x = re(&[1.0]);
        let padded = prepend_zeros(&x, 2);
        assert_eq!(padded.len(), 3);
        assert!(padded[0].abs() < 1e-12 && padded[1].abs() < 1e-12);
        let fitted = fit_length(&padded, 5);
        assert_eq!(fitted.len(), 5);
        let trimmed = fit_length(&padded, 2);
        assert_eq!(trimmed.len(), 2);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_delay_panics() {
        fractional_delay(&[Iq::ONE], -1.0);
    }
}
