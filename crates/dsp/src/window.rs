//! Window (taper) functions for spectral analysis.
//!
//! Used when inspecting spectra of simulated signals (tests, ablations) to
//! keep sidelobes of the rectangular window from masking weak backscatter
//! tones next to the strong excitation carrier.

use std::f64::consts::PI;

/// The window shapes provided.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WindowKind {
    /// No taper (all ones).
    Rectangular,
    /// Hann (raised cosine) window.
    Hann,
    /// Hamming window.
    Hamming,
    /// Blackman window (best sidelobe suppression of the set).
    Blackman,
}

impl WindowKind {
    /// Generates the window coefficients for `n` points.
    ///
    /// Lengths 0 and 1 return `[]` and `[1.0]` respectively.
    pub fn coefficients(self, n: usize) -> Vec<f64> {
        if n == 0 {
            return Vec::new();
        }
        if n == 1 {
            return vec![1.0];
        }
        let m = (n - 1) as f64;
        (0..n)
            .map(|i| {
                let x = i as f64 / m;
                match self {
                    WindowKind::Rectangular => 1.0,
                    WindowKind::Hann => 0.5 - 0.5 * (2.0 * PI * x).cos(),
                    WindowKind::Hamming => 0.54 - 0.46 * (2.0 * PI * x).cos(),
                    WindowKind::Blackman => {
                        0.42 - 0.5 * (2.0 * PI * x).cos() + 0.08 * (4.0 * PI * x).cos()
                    }
                }
            })
            .collect()
    }

    /// Coherent gain: mean of the coefficients (1.0 for rectangular).
    pub fn coherent_gain(self, n: usize) -> f64 {
        let c = self.coefficients(n);
        if c.is_empty() {
            return 0.0;
        }
        c.iter().sum::<f64>() / c.len() as f64
    }
}

/// Multiplies a real signal by a window in place.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn apply_window(signal: &mut [f64], window: &[f64]) {
    assert_eq!(signal.len(), window.len(), "window length mismatch");
    for (s, w) in signal.iter_mut().zip(window) {
        *s *= w;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rectangular_is_all_ones() {
        assert!(WindowKind::Rectangular
            .coefficients(16)
            .iter()
            .all(|&w| w == 1.0));
    }

    #[test]
    fn hann_endpoints_are_zero_and_peak_is_one() {
        let w = WindowKind::Hann.coefficients(33);
        assert!(w[0].abs() < 1e-12);
        assert!(w[32].abs() < 1e-12);
        assert!((w[16] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn windows_are_symmetric() {
        for kind in [WindowKind::Hann, WindowKind::Hamming, WindowKind::Blackman] {
            let w = kind.coefficients(21);
            for i in 0..w.len() {
                assert!(
                    (w[i] - w[w.len() - 1 - i]).abs() < 1e-12,
                    "{kind:?} asymmetric at {i}"
                );
            }
        }
    }

    #[test]
    fn coherent_gains_are_ordered() {
        // Rect > Hamming > Hann > Blackman in coherent gain.
        let n = 64;
        let rect = WindowKind::Rectangular.coherent_gain(n);
        let ham = WindowKind::Hamming.coherent_gain(n);
        let hann = WindowKind::Hann.coherent_gain(n);
        let black = WindowKind::Blackman.coherent_gain(n);
        assert!(rect > ham && ham > hann && hann > black);
        assert!((rect - 1.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_lengths() {
        assert!(WindowKind::Hann.coefficients(0).is_empty());
        assert_eq!(WindowKind::Hann.coefficients(1), vec![1.0]);
        assert_eq!(WindowKind::Rectangular.coherent_gain(0), 0.0);
    }

    #[test]
    fn apply_window_multiplies() {
        let mut sig = vec![2.0, 2.0, 2.0];
        apply_window(&mut sig, &[0.5, 1.0, 0.0]);
        assert_eq!(sig, vec![1.0, 2.0, 0.0]);
    }
}
