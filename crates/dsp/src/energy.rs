//! Energy detection for frame synchronization.
//!
//! §III-B: *"The frame synchronization is achieved by energy detection with
//! a sliding window. Concretely, a moving average filter is first performed
//! on the received energy level with a window size Wₙ. The filtered
//! sequence is then passed through a comparator to determine whether a new
//! frame is received by comparing the current power level and the filtered
//! power level. We use a decision threshold P_th, which is configured as
//! 3 dB higher than that of filtered power level."*
//!
//! [`EnergyDetector`] implements exactly that comparator: it tracks the
//! smoothed noise floor and declares a rising edge when instantaneous
//! power exceeds `floor × 10^(threshold_db/10)`.

use cbma_types::units::Db;
use cbma_types::Iq;

use crate::mafilter::MovingAverage;
use crate::simd;

/// Computes the instantaneous power series |I+jQ|² of a sample buffer.
pub fn power_series(samples: &[Iq]) -> Vec<f64> {
    samples.iter().map(|s| s.power()).collect()
}

/// Computes the magnitude series √(I²+Q²) — the paper's P(t) (§V-B).
pub fn magnitude_series(samples: &[Iq]) -> Vec<f64> {
    let mut out = vec![0.0; samples.len()];
    simd::magnitudes_into(samples, &mut out);
    out
}

/// Mean power of a sample buffer, zero for an empty buffer.
pub fn mean_power(samples: &[Iq]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    simd::sum_power(samples) / samples.len() as f64
}

/// An energy rise event reported by [`EnergyDetector`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyEdge {
    /// Sample index at which the edge was declared.
    pub index: usize,
    /// Instantaneous power at the edge.
    pub power: f64,
    /// Smoothed baseline power immediately before the edge.
    pub baseline: f64,
}

/// Sliding-window energy detector with a decibel comparator threshold.
///
/// The decision statistic is a *short* moving average of the power (not
/// the raw sample): instantaneous complex-Gaussian noise power exceeds
/// twice its mean ≈ 13 % of the time, so a raw comparator would false-
/// trigger constantly. Smoothing over a few samples collapses that
/// fluctuation while delaying the reported edge by at most the smoothing
/// window.
#[derive(Debug, Clone)]
pub struct EnergyDetector {
    filter: MovingAverage,
    smoother: MovingAverage,
    threshold_ratio: f64,
    /// Samples to ingest before edges may fire (lets the floor estimate
    /// settle; a real receiver observes noise before any frame arrives).
    warmup: usize,
    seen: usize,
    armed: bool,
}

impl EnergyDetector {
    /// Creates a detector with floor-window `window`, a statistic smoother
    /// of `window / 4` samples (at least 4), and the given threshold above
    /// the smoothed baseline. The paper uses +3 dB.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: usize, threshold: Db) -> EnergyDetector {
        EnergyDetector::with_smoothing(window, (window / 4).max(4), threshold)
    }

    /// Creates a detector with an explicit statistic-smoothing window.
    ///
    /// # Panics
    ///
    /// Panics if either window is zero.
    pub fn with_smoothing(window: usize, smooth: usize, threshold: Db) -> EnergyDetector {
        EnergyDetector {
            filter: MovingAverage::new(window),
            smoother: MovingAverage::new(smooth),
            threshold_ratio: threshold.to_ratio(),
            warmup: window,
            seen: 0,
            armed: true,
        }
    }

    /// The statistic-smoothing window length.
    pub fn smoothing_window(&self) -> usize {
        self.smoother.window_size()
    }

    /// The paper's configuration: +3 dB over the filtered power level.
    pub fn paper_default(window: usize) -> EnergyDetector {
        EnergyDetector::new(window, Db::new(3.0))
    }

    /// The linear comparator ratio (e.g. ≈2.0 for 3 dB).
    #[inline]
    pub fn threshold_ratio(&self) -> f64 {
        self.threshold_ratio
    }

    /// Processes one power sample; returns `Some` on a rising edge.
    ///
    /// After an edge fires, the detector disarms until power falls back
    /// under the threshold, so one frame produces one edge.
    pub fn push_power(&mut self, index: usize, power: f64) -> Option<EnergyEdge> {
        let statistic = self.smoother.push(power);
        let baseline = self.filter.current().unwrap_or(statistic);
        let mut edge = None;
        let over = statistic > baseline * self.threshold_ratio && self.seen >= self.warmup;
        if over {
            if self.armed {
                self.armed = false;
                edge = Some(EnergyEdge {
                    index,
                    power: statistic,
                    baseline,
                });
            }
            // Do not feed frame power into the noise-floor estimate; a
            // receiver freezes AGC/floor tracking during a burst.
        } else {
            self.armed = true;
            self.filter.push(statistic);
        }
        self.seen += 1;
        edge
    }

    /// Scans an IQ buffer and returns every detected rising edge.
    pub fn detect(&mut self, samples: &[Iq]) -> Vec<EnergyEdge> {
        let mut edges = Vec::new();
        self.detect_into(samples, &mut edges);
        edges
    }

    /// Allocation-free variant of [`EnergyDetector::detect`]: `out` is
    /// cleared and refilled, growing only past its high-water capacity.
    pub fn detect_into(&mut self, samples: &[Iq], out: &mut Vec<EnergyEdge>) {
        out.clear();
        out.extend(
            samples
                .iter()
                .enumerate()
                .filter_map(|(i, s)| self.push_power(i, s.power())),
        );
    }

    /// Resets all detector state, including the statistic smoother —
    /// required for a detector that is *reused* across captures (the
    /// receiver's scratch arena keeps one alive), where stale smoother
    /// contents would bleed the previous capture's power into the next
    /// decision statistic.
    pub fn reset(&mut self) {
        self.filter.reset();
        self.smoother.reset();
        self.seen = 0;
        self.armed = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noise_then_burst(noise: f64, burst: f64, n_noise: usize, n_burst: usize) -> Vec<Iq> {
        let mut v = vec![Iq::new(noise.sqrt(), 0.0); n_noise];
        v.extend(vec![Iq::new(burst.sqrt(), 0.0); n_burst]);
        v
    }

    #[test]
    fn detects_a_3db_step() {
        // Burst power 4x the floor: well above the 2x (3 dB) threshold.
        let samples = noise_then_burst(1.0, 4.0, 64, 32);
        let mut det = EnergyDetector::paper_default(16);
        let edges = det.detect(&samples);
        assert_eq!(edges.len(), 1);
        // The smoothed statistic crosses the threshold within the
        // smoothing window of the true burst start.
        let smooth = det.smoothing_window();
        assert!(
            (64..=64 + smooth).contains(&edges[0].index),
            "index {}",
            edges[0].index
        );
        assert!((edges[0].baseline - 1.0).abs() < 0.2);
    }

    #[test]
    fn ignores_sub_threshold_rise() {
        // 1.5x power rise is under the 2x threshold — no edge.
        let samples = noise_then_burst(1.0, 1.5, 64, 32);
        let mut det = EnergyDetector::paper_default(16);
        assert!(det.detect(&samples).is_empty());
    }

    #[test]
    fn one_edge_per_burst() {
        let mut samples = noise_then_burst(1.0, 8.0, 64, 32);
        samples.extend(noise_then_burst(1.0, 8.0, 64, 32));
        let mut det = EnergyDetector::paper_default(16);
        let edges = det.detect(&samples);
        assert_eq!(edges.len(), 2);
        let smooth = det.smoothing_window();
        assert!((64..=64 + smooth).contains(&edges[0].index));
        let second = 64 + 32 + 64;
        assert!((second..=second + smooth).contains(&edges[1].index));
    }

    #[test]
    fn warmup_suppresses_initial_transient() {
        // A burst at the very start (before the floor estimate settles)
        // must not fire an edge.
        let samples = vec![Iq::new(10.0, 0.0); 8];
        let mut det = EnergyDetector::paper_default(16);
        assert!(det.detect(&samples).is_empty());
    }

    #[test]
    fn floor_freezes_during_burst() {
        // A long burst must not be absorbed into the baseline: the edge
        // baseline stays at the pre-burst floor even if we detect later.
        let samples = noise_then_burst(1.0, 4.0, 64, 512);
        let mut det = EnergyDetector::paper_default(16);
        let edges = det.detect(&samples);
        assert_eq!(edges.len(), 1);
        assert!(
            (edges[0].baseline - 1.0).abs() < 0.2,
            "baseline {}",
            edges[0].baseline
        );
    }

    #[test]
    fn custom_threshold_changes_sensitivity() {
        let samples = noise_then_burst(1.0, 1.5, 64, 32);
        // 1 dB threshold (~1.26x) now catches the 1.5x rise.
        let mut det = EnergyDetector::new(16, Db::new(1.0));
        assert_eq!(det.detect(&samples).len(), 1);
    }

    #[test]
    fn power_helpers() {
        let buf = [Iq::new(3.0, 4.0), Iq::new(0.0, 2.0)];
        assert_eq!(power_series(&buf), vec![25.0, 4.0]);
        assert_eq!(magnitude_series(&buf), vec![5.0, 2.0]);
        assert!((mean_power(&buf) - 14.5).abs() < 1e-12);
        assert_eq!(mean_power(&[]), 0.0);
    }

    #[test]
    fn reset_makes_reuse_deterministic() {
        // A detector held in a scratch arena is reset between captures;
        // identical captures must then produce bit-identical edges. A
        // reset that forgets the statistic smoother leaks the previous
        // capture's burst power into the next run's decision statistic.
        let samples = noise_then_burst(1.0, 4.0, 96, 64);
        let mut det = EnergyDetector::with_smoothing(16, 128, Db::new(3.0));
        let first = det.detect(&samples);
        det.reset();
        let second = det.detect(&samples);
        assert_eq!(first, second);
    }

    #[test]
    fn reset_rearms_detector() {
        let samples = noise_then_burst(1.0, 4.0, 64, 8);
        let mut det = EnergyDetector::paper_default(16);
        assert_eq!(det.detect(&samples).len(), 1);
        det.reset();
        assert_eq!(det.detect(&samples).len(), 1);
    }
}
