//! Goertzel single-bin DFT.
//!
//! Evaluates one frequency bin in O(N) with O(1) state — the classic tool
//! for detecting a known tone, here the Δf subcarrier of a backscatter
//! tag: a receiver sweeping candidate subcarrier offsets can run one
//! Goertzel per hypothesis far cheaper than a full FFT per block.

use std::f64::consts::TAU;

use cbma_types::Iq;

/// A Goertzel accumulator for one normalized frequency (cycles/sample).
#[derive(Debug, Clone)]
pub struct Goertzel {
    coeff: Iq,
    acc: Iq,
    n: usize,
}

impl Goertzel {
    /// Creates a detector for normalized frequency `f` ∈ [−0.5, 0.5).
    pub fn new(f: f64) -> Goertzel {
        // With c = e^{+jω}: acc_N = c^{N−1} · Σ x_k e^{−jωk}, whose
        // magnitude is |X(ω)| — the rotation prefactor is unit-modulus.
        Goertzel {
            coeff: Iq::phasor(TAU * f),
            acc: Iq::ZERO,
            n: 0,
        }
    }

    /// Feeds one complex sample.
    pub fn push(&mut self, sample: Iq) {
        // Complex Goertzel reduces to a running rotate-and-add: the
        // accumulator is rotated so each sample is mixed down by f.
        self.acc = self.acc * self.coeff + sample;
        self.n += 1;
    }

    /// Feeds a block of samples.
    pub fn extend(&mut self, samples: &[Iq]) {
        for &s in samples {
            self.push(s);
        }
    }

    /// Samples consumed so far.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether no samples were consumed.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The bin power |X(f)|²/N (0 before any sample).
    pub fn power(&self) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        self.acc.power() / self.n as f64
    }

    /// Resets the accumulator.
    pub fn reset(&mut self) {
        self.acc = Iq::ZERO;
        self.n = 0;
    }
}

/// One-shot convenience: bin power of `samples` at normalized `f`.
pub fn bin_power(samples: &[Iq], f: f64) -> f64 {
    let mut g = Goertzel::new(f);
    g.extend(samples);
    g.power()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tone(f: f64, n: usize) -> Vec<Iq> {
        (0..n).map(|k| Iq::phasor(TAU * f * k as f64)).collect()
    }

    #[test]
    fn detects_its_own_tone() {
        let samples = tone(0.05, 256);
        let on_bin = bin_power(&samples, 0.05);
        let off_bin = bin_power(&samples, 0.20);
        assert!(
            on_bin > 50.0 * off_bin,
            "on {on_bin:.2} vs off {off_bin:.2}"
        );
        // A coherent tone integrates to N²/N = N.
        assert!((on_bin - 256.0).abs() < 1.0);
    }

    #[test]
    fn matches_fft_bin() {
        let n = 64;
        let samples: Vec<Iq> = (0..n)
            .map(|k| {
                Iq::phasor(TAU * 5.0 * k as f64 / n as f64).scale(0.7)
                    + Iq::phasor(TAU * 11.0 * k as f64 / n as f64).scale(0.3)
            })
            .collect();
        let spectrum = crate::fft::fft(&samples).unwrap();
        for bin in [5usize, 11, 20] {
            let via_fft = spectrum[bin].power() / n as f64;
            let via_goertzel = bin_power(&samples, bin as f64 / n as f64);
            assert!(
                (via_fft - via_goertzel).abs() < 1e-9,
                "bin {bin}: fft {via_fft} vs goertzel {via_goertzel}"
            );
        }
    }

    #[test]
    fn negative_frequencies_work() {
        let samples = tone(-0.1, 128);
        assert!(bin_power(&samples, -0.1) > 100.0);
        assert!(bin_power(&samples, 0.1) < 2.0);
    }

    #[test]
    fn reset_and_incremental_feeding() {
        let samples = tone(0.07, 200);
        let mut g = Goertzel::new(0.07);
        g.extend(&samples[..100]);
        g.extend(&samples[100..]);
        let incremental = g.power();
        assert!((incremental - bin_power(&samples, 0.07)).abs() < 1e-9);
        g.reset();
        assert!(g.is_empty());
        assert_eq!(g.power(), 0.0);
        assert_eq!(g.len(), 0);
    }

    #[test]
    fn subcarrier_offset_discrimination() {
        // Two tags with slightly different subcarrier offsets: Goertzel
        // separates them with enough samples.
        let n = 4096;
        let mix: Vec<Iq> = (0..n)
            .map(|k| Iq::phasor(TAU * 0.010 * k as f64) + Iq::phasor(TAU * 0.0125 * k as f64))
            .collect();
        let a = bin_power(&mix, 0.010);
        let between = bin_power(&mix, 0.01125);
        assert!(a > 10.0 * between, "a {a} vs between {between}");
    }
}
