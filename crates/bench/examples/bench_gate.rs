//! CI bench-regression gate for the `bench_summary` artifacts.
//!
//! Compares a freshly generated summary (`BENCH_user_detect.json` by
//! default, or `BENCH_streaming.json` when passed explicitly) against
//! its committed `ci/*.baseline.json` and exits non-zero when anything
//! regressed by more than the tolerance (default 15 %).
//!
//! CI runners and developer machines differ in absolute speed, so raw
//! ns/op comparisons across hosts are meaningless. The gate therefore
//! checks two hardware-independent views:
//!
//! 1. **Median-normalized case times.** For every case present in both
//!    files it forms `r = candidate_ns / baseline_ns`; the median `r`
//!    across all cases estimates the machine-speed factor, and a case
//!    fails only when its own `r` exceeds `median · (1 + tolerance)` —
//!    i.e. it got slower *relative to everything else in the same run*.
//! 2. **Headline ratios.** Every `*speedup*`/`*scaling*` key in the
//!    baseline is a ratio of two measurements on the same host, so it
//!    transfers across machines and must stay above
//!    `baseline · (1 − tolerance)` raw. `realtime_*`/`*rtf*` keys are
//!    air-time over wall-time — absolute speeds — so the candidate is
//!    first multiplied by the machine-speed factor from (1) before the
//!    same floor applies (an aggregate-RTF regression therefore fails
//!    the gate even on a slower host, but a slower host alone does not).
//!
//! Usage: `bench_gate [baseline.json] [candidate.json]`; the tolerance
//! can be overridden with `CBMA_BENCH_GATE_TOLERANCE` (e.g. `0.25`).

use std::collections::BTreeMap;
use std::process::ExitCode;

/// Minimal extractor for the flat JSON `bench_summary` writes: top-level
/// `"key": number` pairs plus the `cases` array of
/// `{"name": ..., "mean_ns_per_op": ...}` objects. Not a general JSON
/// parser — it only understands its sibling writer's output.
#[derive(Debug, Default)]
struct Summary {
    ratios: BTreeMap<String, f64>,
    cases: BTreeMap<String, f64>,
}

fn parse_summary(text: &str) -> Summary {
    let mut out = Summary::default();
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        if let Some(rest) = line.strip_prefix("{\"name\": \"") {
            // A case row: {"name": "x", "mean_ns_per_op": 1.0, "iters": n}
            if let Some((name, tail)) = rest.split_once('"') {
                if let Some(ns) = tail
                    .split("\"mean_ns_per_op\": ")
                    .nth(1)
                    .and_then(|v| v.split(&[',', '}'][..]).next())
                    .and_then(|v| v.trim().parse::<f64>().ok())
                {
                    out.cases.insert(name.to_string(), ns);
                }
            }
        } else if let Some((key, value)) = line.split_once(':') {
            let key = key.trim().trim_matches('"');
            if let Ok(v) = value.trim().parse::<f64>() {
                if key.contains("speedup")
                    || key.contains("scaling")
                    || key.contains("rtf")
                    || key.starts_with("realtime")
                {
                    out.ratios.insert(key.to_string(), v);
                }
            }
        }
    }
    out
}

fn median(mut values: Vec<f64>) -> f64 {
    values.sort_by(|a, b| a.partial_cmp(b).expect("finite ratios"));
    let n = values.len();
    if n % 2 == 1 {
        values[n / 2]
    } else {
        0.5 * (values[n / 2 - 1] + values[n / 2])
    }
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let baseline_path = args
        .next()
        .unwrap_or_else(|| "ci/BENCH_user_detect.baseline.json".into());
    let candidate_path = args.next().unwrap_or_else(|| "BENCH_user_detect.json".into());
    let tolerance: f64 = std::env::var("CBMA_BENCH_GATE_TOLERANCE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.15);

    let baseline = parse_summary(
        &std::fs::read_to_string(&baseline_path)
            .unwrap_or_else(|e| panic!("read {baseline_path}: {e}")),
    );
    let candidate = parse_summary(
        &std::fs::read_to_string(&candidate_path)
            .unwrap_or_else(|e| panic!("read {candidate_path}: {e}")),
    );
    assert!(
        !baseline.cases.is_empty() && !candidate.cases.is_empty(),
        "no cases parsed — wrong file format?"
    );

    let shared: Vec<(&String, f64, f64)> = candidate
        .cases
        .iter()
        .filter_map(|(name, &cand)| baseline.cases.get(name).map(|&base| (name, base, cand)))
        .collect();
    assert!(
        shared.len() >= 4,
        "only {} shared cases between baseline and candidate — \
         regenerate the baseline with bench_summary",
        shared.len()
    );

    let speed_factor = median(shared.iter().map(|(_, base, cand)| cand / base).collect());
    println!(
        "bench gate: {} shared cases, machine-speed factor {speed_factor:.3}, \
         tolerance {:.0}%",
        shared.len(),
        tolerance * 100.0
    );

    // Absolute noise floor: sub-microsecond cases jitter by tens of ns from
    // timer granularity and cache state alone, which can read as a large
    // *relative* excursion on a 250 ns case. A case only fails when it is
    // both relatively outside tolerance and absolutely slower by more than
    // this margin after machine-speed normalization.
    const NOISE_FLOOR_NS: f64 = 150.0;

    let mut failures = Vec::new();
    for (name, base, cand) in &shared {
        let rel = (cand / base) / speed_factor;
        let excess_ns = cand - base * speed_factor;
        let verdict = if rel > 1.0 + tolerance && excess_ns > NOISE_FLOOR_NS {
            failures.push(format!(
                "{name}: {cand:.0} ns vs baseline {base:.0} ns — \
                 {:.0}% slower than the run-wide trend",
                (rel - 1.0) * 100.0
            ));
            "FAIL"
        } else {
            "ok"
        };
        let rel_pct = (rel - 1.0) * 100.0;
        println!(
            "  {verdict:4} {name:28} {base:>12.0} -> {cand:>12.0} ns  (rel {rel_pct:+.1}%)"
        );
    }

    // Every headline ratio the baseline recorded must still be present
    // and above its floor. Absolute-speed ratios (real-time factors) are
    // machine-normalized first; same-run ratios compare raw.
    for (key, &base) in &baseline.ratios {
        let Some(&cand) = candidate.ratios.get(key) else {
            failures.push(format!("{key}: missing from candidate"));
            continue;
        };
        let absolute_speed = key.starts_with("realtime") || key.contains("rtf");
        let adjusted = if absolute_speed { cand * speed_factor } else { cand };
        let floor = base * (1.0 - tolerance);
        let verdict = if adjusted < floor {
            failures.push(format!(
                "{key}: {adjusted:.2}x fell below {floor:.2}x (baseline {base:.2}x{})",
                if absolute_speed {
                    format!(", raw {cand:.2}x at speed factor {speed_factor:.3}")
                } else {
                    String::new()
                }
            ));
            "FAIL"
        } else {
            "ok"
        };
        println!("  {verdict:4} {key:36} {base:>11.2}x -> {adjusted:>11.2}x");
    }

    if failures.is_empty() {
        println!("bench gate passed");
        ExitCode::SUCCESS
    } else {
        eprintln!("bench gate FAILED:");
        for f in &failures {
            eprintln!("  - {f}");
        }
        ExitCode::FAILURE
    }
}
