//! Dependency-free A/B timing of the sliding-correlation backends.
//!
//! Criterion's statistics live in `benches/perf_hot_paths.rs`; this
//! runner is the machine-readable companion: plain `std::time::Instant`
//! loops, mean ns/op per case, and a hand-written `BENCH_user_detect.json`
//! so CI (or the crossover-tuning workflow) can diff numbers without
//! parsing criterion's output directory.
//!
//! Cases:
//!
//! * `user_detect_{direct,fft,auto}` — the full 10-code detector on the
//!   paper-default window (the `user_detect_10_codes` workload), which
//!   backs the receiver's headline speedup and the
//!   `cbma::rx::FFT_LAG_CROSSOVER` constant,
//! * `periodic_xcorr_{direct,fft}_n*` — circular code-family correlation
//!   at several sequence lengths, which picked
//!   `cbma::dsp::correlate::PERIODIC_FFT_CROSSOVER`.
//!
//! Run with `cargo run --release -p cbma-bench --example bench_summary`.

use std::fmt::Write as _;
use std::time::Instant;

use cbma::codes::{CodeFamily, TwoNcFamily};
use cbma::dsp::correlate::dot;
use cbma::dsp::xcorr::SlidingCorrelator;
use cbma::prelude::*;
use cbma::rx::{CorrelationPath, DecoderKind, UserDetector};
use cbma::tag::{PhyProfile, Tag};

/// One timed case: mean ns/op over enough iterations to cover ~80 ms.
struct Case {
    name: String,
    mean_ns: f64,
    iters: u64,
}

fn time_case<R>(name: &str, mut f: impl FnMut() -> R) -> Case {
    // Warm-up + calibration: find an iteration count that runs ≥ 80 ms.
    let mut iters = 1u64;
    loop {
        let t = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        let elapsed = t.elapsed();
        if elapsed.as_millis() >= 80 || iters > 1 << 24 {
            let mean_ns = elapsed.as_nanos() as f64 / iters as f64;
            return Case {
                name: name.to_string(),
                mean_ns,
                iters,
            };
        }
        iters *= 4;
    }
}

fn main() {
    let phy = PhyProfile::paper_default();
    let codes = TwoNcFamily::new(10).unwrap().codes(10).unwrap();
    let detector = UserDetector::with_kind(&codes, &phy, 0.12, DecoderKind::Coherent);
    let mut tag = Tag::new(0, Point::ORIGIN, codes[0].clone());
    let env = tag.transmit(vec![0xA5; 8], &phy).unwrap();
    let mut buf = vec![Iq::ZERO; 400];
    buf.extend(env.iter().map(|&e| Iq::new(0.01 * e, 0.0)));
    buf.extend(vec![Iq::ZERO; 64]);
    let window = &buf[350..3000];
    let ref_len = detector.reference_len(0);
    let lags = window.len() - ref_len + 1;

    let mut cases = Vec::new();
    for (name, path) in [
        ("user_detect_direct", CorrelationPath::Direct),
        ("user_detect_fft", CorrelationPath::Fft),
        ("user_detect_auto", CorrelationPath::Auto),
    ] {
        let case = time_case(name, || {
            detector.detect_candidates_with(window, 350, 8, path)
        });
        println!(
            "{:24} {:>12.0} ns/op  ({} iters)",
            case.name, case.mean_ns, case.iters
        );
        cases.push(case);
    }
    let speedup = cases[0].mean_ns / cases[1].mean_ns;
    println!(
        "fft speedup over direct: {speedup:.2}x  (window {}, ref {ref_len}, {lags} lags, 10 codes)",
        window.len()
    );

    // Circular correlation A/B at the lengths around
    // PERIODIC_FFT_CROSSOVER: direct = unrolled ring dot products,
    // fft = the overlap-save engine on the doubled sequence.
    for n in [31usize, 63, 95, 127, 255, 511] {
        let a: Vec<f64> = (0..n)
            .map(|i| if (i * 5) % 3 == 0 { 1.0 } else { -1.0 })
            .collect();
        let b: Vec<f64> = (0..n)
            .map(|i| if (i * 11) % 7 < 3 { 1.0 } else { -1.0 })
            .collect();
        let mut bb = b.clone();
        bb.extend_from_slice(&b);
        let direct = time_case(&format!("periodic_xcorr_direct_n{n}"), || {
            (0..n).map(|lag| dot(&a, &bb[lag..lag + n])).collect::<Vec<f64>>()
        });
        let xc = SlidingCorrelator::new(&a);
        let fft = time_case(&format!("periodic_xcorr_fft_n{n}"), || {
            let mut c = xc.correlate_real(&bb);
            c.truncate(n);
            c
        });
        println!(
            "periodic n={n:<4} direct {:>9.0} ns/op   fft {:>9.0} ns/op   ratio {:.2}x",
            direct.mean_ns,
            fft.mean_ns,
            direct.mean_ns / fft.mean_ns
        );
        cases.push(direct);
        cases.push(fft);
    }

    // Hand-rolled JSON — no serializer dependency in the bench harness.
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"window_samples\": {},", window.len());
    let _ = writeln!(json, "  \"reference_len\": {ref_len},");
    let _ = writeln!(json, "  \"lags\": {lags},");
    let _ = writeln!(json, "  \"codes\": {},", codes.len());
    let _ = writeln!(json, "  \"fft_speedup_over_direct\": {speedup:.3},");
    json.push_str("  \"cases\": [\n");
    for (i, case) in cases.iter().enumerate() {
        let comma = if i + 1 == cases.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"mean_ns_per_op\": {:.1}, \"iters\": {}}}{comma}",
            case.name, case.mean_ns, case.iters
        );
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_user_detect.json", &json).expect("write BENCH_user_detect.json");
    println!("wrote BENCH_user_detect.json");
}
