//! Dependency-free A/B timing of the sliding-correlation backends.
//!
//! Criterion's statistics live in `benches/perf_hot_paths.rs`; this
//! runner is the machine-readable companion: plain `std::time::Instant`
//! loops, mean ns/op per case, and a hand-written `BENCH_user_detect.json`
//! so CI (or the crossover-tuning workflow) can diff numbers without
//! parsing criterion's output directory.
//!
//! Cases:
//!
//! * `user_detect_{direct,fft,batch,auto}` — the full 10-code detector on
//!   the paper-default window (the `user_detect_10_codes` workload), which
//!   backs the receiver's headline speedup and the
//!   `cbma::rx::FFT_LAG_CROSSOVER` constant; `batch` is the shared-FFT
//!   K-code engine (one forward transform per overlap-save block for all
//!   ten codes),
//! * `user_detect_multiwindow` — the coalesced W=4 multi-window matrix
//!   pass, normalized to ns per window (backs the
//!   `multiwindow_speedup_over_batch` and `realtime_factor_multiwindow`
//!   headline numbers),
//! * `periodic_xcorr_{direct,fft}_n*` — circular code-family correlation
//!   at several sequence lengths, which picked
//!   `cbma::dsp::correlate::PERIODIC_FFT_CROSSOVER`.
//!
//! Run with `cargo run --release -p cbma-bench --example bench_summary`.

use std::fmt::Write as _;
use std::time::Instant;

use cbma::codes::{CodeFamily, TwoNcFamily};
use cbma::dsp::correlate::dot;
use cbma::dsp::xcorr::SlidingCorrelator;
use cbma::prelude::*;
use cbma::rx::{CorrelationPath, DecoderKind, DetectScratch, MultiDetectScratch, UserDetector};
use cbma::tag::{PhyProfile, Tag};

/// One timed case: best-of-3 mean ns/op, each repetition covering ~40 ms.
struct Case {
    name: String,
    mean_ns: f64,
    iters: u64,
}

fn time_case<R>(name: &str, mut f: impl FnMut() -> R) -> Case {
    // Warm-up + calibration: find an iteration count that runs ≥ 40 ms.
    let mut iters = 1u64;
    loop {
        let t = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        if t.elapsed().as_millis() >= 40 || iters > 1 << 24 {
            break;
        }
        iters *= 4;
    }
    // Timed repetitions, keeping the minimum: scheduler preemption and
    // frequency wobble only ever add time, so min-of-3 is far more stable
    // run-to-run than any single pass — the bench gate depends on that.
    let mut mean_ns = f64::INFINITY;
    for _ in 0..3 {
        let t = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        mean_ns = mean_ns.min(t.elapsed().as_nanos() as f64 / iters as f64);
    }
    Case {
        name: name.to_string(),
        mean_ns,
        iters,
    }
}

fn main() {
    let phy = PhyProfile::paper_default();
    let codes = TwoNcFamily::new(10).unwrap().codes(10).unwrap();
    let detector = UserDetector::with_kind(&codes, &phy, 0.12, DecoderKind::Coherent);
    let mut tag = Tag::new(0, Point::ORIGIN, codes[0].clone());
    let env = tag.transmit(vec![0xA5; 8], &phy).unwrap();
    let mut buf = vec![Iq::ZERO; 400];
    buf.extend(env.iter().map(|&e| Iq::new(0.01 * e, 0.0)));
    buf.extend(vec![Iq::ZERO; 64]);
    let window = &buf[350..3000];
    let ref_len = detector.reference_len(0);
    let lags = window.len() - ref_len + 1;

    let mut cases = Vec::new();
    // Steady-state protocol: the receiver owns a scratch arena and reuses
    // it every capture, so the timed op is `detect_candidates_in` over a
    // warm arena — allocation-free by the `alloc_free` test's guarantee.
    let mut scratch = DetectScratch::new();
    let mut out = Vec::new();
    for (name, path) in [
        ("user_detect_direct", CorrelationPath::Direct),
        ("user_detect_fft", CorrelationPath::Fft),
        ("user_detect_batch", CorrelationPath::Batch),
        ("user_detect_auto", CorrelationPath::Auto),
    ] {
        let case = time_case(name, || {
            detector.detect_candidates_in(window, 350, 8, path, &mut scratch, &mut out);
            out.len()
        });
        println!(
            "{:24} {:>12.0} ns/op  ({} iters)",
            case.name, case.mean_ns, case.iters
        );
        cases.push(case);
    }
    // The coalesced multi-window pass (W paper-default windows sharing
    // one matrix correlation), normalized to ns per *window* so the
    // ratio against the single-window batch case is apples-to-apples.
    const MULTI_W: usize = 4;
    let windows: Vec<&[Iq]> = (0..MULTI_W).map(|_| window).collect();
    let origins = vec![350usize; MULTI_W];
    let mut multi_scratch = MultiDetectScratch::new();
    let mut multi_out = Vec::new();
    let mut multi = time_case("user_detect_multiwindow", || {
        detector.detect_candidates_multi(&windows, &origins, 8, &mut multi_scratch, &mut multi_out);
        multi_out.len()
    });
    multi.mean_ns /= MULTI_W as f64;
    println!(
        "{:24} {:>12.0} ns/op  ({} iters, per window, W={MULTI_W})",
        multi.name, multi.mean_ns, multi.iters
    );

    let speedup = cases[0].mean_ns / cases[1].mean_ns;
    let batch_speedup = cases[1].mean_ns / cases[2].mean_ns;
    let multiwindow_speedup = cases[2].mean_ns / multi.mean_ns;
    // Real-time factor: air time the window represents (samples at the
    // paper-default rate) over the time the detector needs to scan it.
    let window_ns = window.len() as f64 / phy.sample_rate.get() * 1e9;
    let realtime_factor = window_ns / cases[2].mean_ns;
    let realtime_factor_multi = window_ns / multi.mean_ns;
    cases.push(multi);
    println!(
        "fft speedup over direct: {speedup:.2}x  (window {}, ref {ref_len}, {lags} lags, 10 codes)",
        window.len()
    );
    println!(
        "batch speedup over fft:  {batch_speedup:.2}x   real-time factor (batch): {realtime_factor:.2}x"
    );
    println!(
        "multiwindow speedup over batch: {multiwindow_speedup:.2}x   real-time factor (multiwindow): {realtime_factor_multi:.2}x"
    );

    // Circular correlation A/B at the lengths around
    // PERIODIC_FFT_CROSSOVER: direct = unrolled ring dot products,
    // fft = the overlap-save engine on the doubled sequence.
    for n in [31usize, 63, 95, 127, 255, 511] {
        let a: Vec<f64> = (0..n)
            .map(|i| if (i * 5) % 3 == 0 { 1.0 } else { -1.0 })
            .collect();
        let b: Vec<f64> = (0..n)
            .map(|i| if (i * 11) % 7 < 3 { 1.0 } else { -1.0 })
            .collect();
        let mut bb = b.clone();
        bb.extend_from_slice(&b);
        let direct = time_case(&format!("periodic_xcorr_direct_n{n}"), || {
            (0..n).map(|lag| dot(&a, &bb[lag..lag + n])).collect::<Vec<f64>>()
        });
        let xc = SlidingCorrelator::new(&a);
        let fft = time_case(&format!("periodic_xcorr_fft_n{n}"), || {
            let mut c = xc.correlate_real(&bb);
            c.truncate(n);
            c
        });
        println!(
            "periodic n={n:<4} direct {:>9.0} ns/op   fft {:>9.0} ns/op   ratio {:.2}x",
            direct.mean_ns,
            fft.mean_ns,
            direct.mean_ns / fft.mean_ns
        );
        cases.push(direct);
        cases.push(fft);
    }

    // Hand-rolled JSON — no serializer dependency in the bench harness.
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"window_samples\": {},", window.len());
    let _ = writeln!(json, "  \"reference_len\": {ref_len},");
    let _ = writeln!(json, "  \"lags\": {lags},");
    let _ = writeln!(json, "  \"codes\": {},", codes.len());
    let _ = writeln!(json, "  \"fft_speedup_over_direct\": {speedup:.3},");
    let _ = writeln!(json, "  \"batch_speedup_over_fft\": {batch_speedup:.3},");
    let _ = writeln!(json, "  \"realtime_factor_batch\": {realtime_factor:.3},");
    let _ = writeln!(
        json,
        "  \"multiwindow_speedup_over_batch\": {multiwindow_speedup:.3},"
    );
    let _ = writeln!(
        json,
        "  \"realtime_factor_multiwindow\": {realtime_factor_multi:.3},"
    );
    json.push_str("  \"cases\": [\n");
    for (i, case) in cases.iter().enumerate() {
        let comma = if i + 1 == cases.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"mean_ns_per_op\": {:.1}, \"iters\": {}}}{comma}",
            case.name, case.mean_ns, case.iters
        );
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_user_detect.json", &json).expect("write BENCH_user_detect.json");
    println!("wrote BENCH_user_detect.json");

    write_pipeline_obs();
    write_streaming_throughput();
}

/// Multi-stream scheduler throughput: `BENCH_streaming.json`.
///
/// Runs the same capture mix through the streaming flowgraph under the
/// thread-per-stage scheduler and work-stealing pools of several sizes,
/// at 1, 8 and 64 concurrent streams. Each case reports the elapsed time
/// per capture (`mean_ns_per_op`, so the bench gate's median-normalized
/// comparison applies unchanged), the aggregate real-time factor (total
/// air time represented by all streams over wall time — the headline
/// "hundreds of flowgraphs at aggregate real time" number), and the pool
/// steal rate. Scaling-efficiency ratios divide same-run RTFs, so they
/// transfer across machines; note that on an N-CPU host a pool wider
/// than N cannot scale, which is why the gate normalizes RTF keys by the
/// run-wide machine-speed factor instead of comparing them raw.
fn write_streaming_throughput() {
    use cbma::codes::GoldFamily;
    use cbma::rx::runtime::{CaptureSource, RuntimeConfig, RxFlowgraph, Scheduler};
    use cbma::rx::ReceiverConfig;

    let phy = PhyProfile::paper_default();
    let codes = GoldFamily::new(5).unwrap().codes(3).unwrap();

    // One frame per stream, staggered leads so frames do not align.
    let capture_for = |stream: usize| -> Vec<Iq> {
        let tag_idx = stream % codes.len();
        let mut tag = Tag::new(tag_idx as u32, Point::ORIGIN, codes[tag_idx].clone());
        let env = tag
            .transmit(format!("stream {stream}").into_bytes(), &phy)
            .unwrap();
        let mut buf = vec![Iq::ZERO; 200 + 37 * (stream % 8)];
        buf.extend(
            env.iter()
                .map(|&e| Iq::from_polar(0.01 * e, 0.2 + 0.1 * tag_idx as f64)),
        );
        buf.extend(vec![Iq::ZERO; 64]);
        buf
    };

    struct StreamCase {
        name: String,
        streams: usize,
        scheduler: Scheduler,
        mean_ns_per_op: f64,
        aggregate_rtf: f64,
        captures_per_sec: f64,
        steal_rate: f64,
        iters: u64,
    }

    let mut cases: Vec<StreamCase> = Vec::new();
    let sweeps: &[(usize, Scheduler)] = &[
        (1, Scheduler::WorkStealing { workers: 1, pin: false }),
        (8, Scheduler::ThreadPerStage),
        (8, Scheduler::WorkStealing { workers: 1, pin: false }),
        (8, Scheduler::WorkStealing { workers: 2, pin: false }),
        (64, Scheduler::ThreadPerStage),
        (64, Scheduler::WorkStealing { workers: 1, pin: false }),
        (64, Scheduler::WorkStealing { workers: 2, pin: false }),
        (64, Scheduler::WorkStealing { workers: 4, pin: false }),
    ];
    const BLOCK: usize = 2048;
    for &(streams, scheduler) in sweeps {
        let captures: Vec<Vec<Iq>> = (0..streams).map(capture_for).collect();
        let air_ns: f64 = captures
            .iter()
            .map(|c| c.len() as f64 / phy.sample_rate.get() * 1e9)
            .sum();
        let runtime = RuntimeConfig {
            block_size: BLOCK,
            ring_capacity: 2,
            scheduler,
        };
        // Min-of-3 for the same run-to-run stability argument as
        // `time_case`; each rep rebuilds the flowgraph so no warm rings
        // carry over.
        let mut elapsed_ns = f64::INFINITY;
        let mut steal_rate = 0.0;
        for _ in 0..3 {
            let mut flow =
                RxFlowgraph::new(codes.clone(), phy, ReceiverConfig::default(), runtime);
            let mut source = CaptureSource::new(BLOCK);
            for (stream, cap) in captures.iter().enumerate() {
                source.push(stream, cap.clone());
            }
            let t = Instant::now();
            let output = flow.run(source).expect("bench run");
            let ns = t.elapsed().as_nanos() as f64;
            assert_eq!(output.results.len(), streams, "bench dropped a capture");
            if ns < elapsed_ns {
                elapsed_ns = ns;
                let grabs = output.stats.steals + output.stats.local_hits;
                steal_rate = if grabs > 0 {
                    output.stats.steals as f64 / grabs as f64
                } else {
                    0.0
                };
            }
        }
        let name = match scheduler {
            Scheduler::ThreadPerStage => format!("streaming_threaded_s{streams}"),
            Scheduler::WorkStealing { workers, .. } => {
                format!("streaming_worksteal_w{workers}_s{streams}")
            }
            Scheduler::Inline => format!("streaming_inline_s{streams}"),
        };
        let case = StreamCase {
            name,
            streams,
            scheduler,
            mean_ns_per_op: elapsed_ns / streams as f64,
            aggregate_rtf: air_ns / elapsed_ns,
            captures_per_sec: streams as f64 / (elapsed_ns / 1e9),
            steal_rate,
            iters: 3,
        };
        println!(
            "{:32} {:>12.0} ns/capture   aggregate RTF {:>6.2}x   steal rate {:.2}",
            case.name, case.mean_ns_per_op, case.aggregate_rtf, case.steal_rate
        );
        cases.push(case);
    }

    let rtf = |name: &str| -> f64 {
        cases
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.aggregate_rtf)
            .unwrap_or(f64::NAN)
    };
    // Same-run ratios (machine-independent): how the pool scales with
    // workers at 64 streams, and worksteal vs thread-per-stage. On a
    // single-CPU host efficiency degenerates to ~1/workers — the gate
    // compares against a baseline from the same class of machine.
    let eff_w2 = rtf("streaming_worksteal_w2_s64") / (2.0 * rtf("streaming_worksteal_w1_s64"));
    let eff_w4 = rtf("streaming_worksteal_w4_s64") / (4.0 * rtf("streaming_worksteal_w1_s64"));
    let vs_threaded = rtf("streaming_worksteal_w2_s64") / rtf("streaming_threaded_s64");
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "streaming scaling at 64 streams: w2 efficiency {eff_w2:.2}, w4 efficiency {eff_w4:.2}, \
         worksteal/threaded {vs_threaded:.2} ({cpus} CPUs)"
    );

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"cpus\": {cpus},");
    let _ = writeln!(json, "  \"block_size\": {BLOCK},");
    let _ = writeln!(
        json,
        "  \"aggregate_rtf_worksteal_w2_s64\": {:.3},",
        rtf("streaming_worksteal_w2_s64")
    );
    let _ = writeln!(
        json,
        "  \"aggregate_rtf_threaded_s64\": {:.3},",
        rtf("streaming_threaded_s64")
    );
    let _ = writeln!(json, "  \"scaling_efficiency_w2_s64\": {eff_w2:.3},");
    let _ = writeln!(json, "  \"scaling_efficiency_w4_s64\": {eff_w4:.3},");
    let _ = writeln!(
        json,
        "  \"worksteal_speedup_over_threaded_s64\": {vs_threaded:.3},"
    );
    json.push_str("  \"cases\": [\n");
    for (i, case) in cases.iter().enumerate() {
        let comma = if i + 1 == cases.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"mean_ns_per_op\": {:.1}, \"iters\": {}, \
             \"streams\": {}, \"scheduler\": \"{}\", \"aggregate_rtf\": {:.3}, \
             \"captures_per_sec\": {:.1}, \"steal_rate\": {:.3}}}{comma}",
            case.name,
            case.mean_ns_per_op,
            case.iters,
            case.streams,
            case.scheduler.name(),
            case.aggregate_rtf,
            case.captures_per_sec,
            case.steal_rate
        );
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_streaming.json", &json).expect("write BENCH_streaming.json");
    println!("wrote BENCH_streaming.json ({} cases)", cases.len());
}

/// The 4-tag paper-default deployment both observability benches run.
fn obs_scenario() -> Scenario {
    Scenario::paper_default(vec![
        Point::new(0.0, 0.35),
        Point::new(0.25, -0.40),
        Point::new(-0.30, 0.45),
        Point::new(0.40, 0.55),
    ])
    .with_seed(7)
}

/// One timed pass of `rounds` under an observability configuration.
/// Rounds are stateful, so every pass rebuilds the engine from the same
/// seed. Callers interleave passes across configurations and keep the
/// per-config minimum, so slow phases (frequency ramps, preemption) hit
/// every configuration instead of biasing whichever ran first.
fn obs_ns_per_round_once(rounds: usize, setup: impl Fn(&mut Engine)) -> f64 {
    let mut engine = Engine::new(obs_scenario()).expect("paper-default scenario is valid");
    setup(&mut engine);
    let t = Instant::now();
    std::hint::black_box(engine.run_rounds(rounds));
    t.elapsed().as_nanos() as f64 / rounds as f64
}

/// Runs a short paper-default deployment with full observability attached
/// (metrics registry + recording sink) and exports the merged snapshot as
/// `BENCH_pipeline_obs.json`: per-stage timing histograms (`cbma.rx.stage.*`,
/// `cbma.sim.round_ns`), domain counters, the structured round-event
/// stream and an observability-overhead A/B, so CI can diff pipeline
/// behaviour — not just speed.
fn write_pipeline_obs() {
    use cbma::obs::{FieldValue, MetricsRegistry, RecordingSink, Tracer};
    use std::collections::BTreeMap;
    use std::sync::Arc;

    const ROUNDS: usize = 32;

    let registry = MetricsRegistry::new();
    let sink = Arc::new(RecordingSink::new());
    let mut engine = Engine::new(obs_scenario()).expect("paper-default scenario is valid");
    engine.attach_observability(&registry);
    engine.set_sink(sink.clone());
    let stats = engine.run_rounds(ROUNDS);

    let snapshot = registry.snapshot();
    let metrics_json = snapshot.to_json();
    // The artifact must survive a parse — fail the bench run loudly if the
    // exporter ever regresses.
    let reparsed = cbma::obs::Snapshot::from_json(&metrics_json)
        .expect("snapshot JSON must round-trip");
    assert_eq!(reparsed, snapshot, "snapshot JSON round-trip drifted");

    // Event stream digest: per-name counts plus per-round delivery sizes.
    let events = sink.take();
    let mut by_name: BTreeMap<String, usize> = BTreeMap::new();
    let mut delivered_per_round: Vec<u64> = Vec::new();
    for event in &events {
        *by_name.entry(event.name.clone()).or_default() += 1;
        if event.name == "cbma.sim.round" {
            if let Some(FieldValue::List(d)) = event.field("delivered") {
                delivered_per_round.push(d.len() as u64);
            }
        }
    }

    // Observability overhead A/B over the identical deployment: detached
    // registry vs attached-with-NoopSink vs full recording (event sink +
    // span tracer). The first two should be indistinguishable — that is
    // the branch-per-stage guarantee the receive path is built around;
    // the ratios land in the artifact for trend-watching, not as a gate.
    const OVERHEAD_ROUNDS: usize = 24;
    let mut detached_ns = f64::INFINITY;
    let mut noop_ns = f64::INFINITY;
    let mut recording_ns = f64::INFINITY;
    for _ in 0..3 {
        detached_ns = detached_ns.min(obs_ns_per_round_once(OVERHEAD_ROUNDS, |_| {}));
        noop_ns = noop_ns.min(obs_ns_per_round_once(OVERHEAD_ROUNDS, |engine| {
            engine.attach_observability(&MetricsRegistry::new());
        }));
        recording_ns = recording_ns.min(obs_ns_per_round_once(OVERHEAD_ROUNDS, |engine| {
            engine.attach_observability(&MetricsRegistry::new());
            engine.set_sink(Arc::new(RecordingSink::new()));
            engine.attach_tracer(&Tracer::new(1 << 16));
        }));
    }
    println!(
        "obs overhead: detached {detached_ns:.0} ns/round, noop {noop_ns:.0} ns/round \
({:.3}x), recording {recording_ns:.0} ns/round ({:.3}x)",
        noop_ns / detached_ns,
        recording_ns / detached_ns
    );

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"rounds\": {ROUNDS},");
    let _ = writeln!(json, "  \"tags\": 4,");
    let _ = writeln!(json, "  \"fer\": {:.4},", stats.fer());
    let _ = writeln!(json, "  \"metric_count\": {},", snapshot.metric_count());
    let _ = writeln!(json, "  \"events_recorded\": {},", events.len());
    json.push_str("  \"events_by_name\": {\n");
    for (i, (name, count)) in by_name.iter().enumerate() {
        let comma = if i + 1 == by_name.len() { "" } else { "," };
        let _ = writeln!(json, "    \"{name}\": {count}{comma}");
    }
    json.push_str("  },\n");
    let _ = writeln!(
        json,
        "  \"delivered_per_round\": {:?},",
        delivered_per_round
    );
    json.push_str("  \"obs_overhead\": {\n");
    let _ = writeln!(json, "    \"rounds\": {OVERHEAD_ROUNDS},");
    let _ = writeln!(json, "    \"detached_ns_per_round\": {detached_ns:.1},");
    let _ = writeln!(json, "    \"noop_ns_per_round\": {noop_ns:.1},");
    let _ = writeln!(json, "    \"recording_ns_per_round\": {recording_ns:.1},");
    let _ = writeln!(
        json,
        "    \"noop_over_detached\": {:.4},",
        noop_ns / detached_ns
    );
    let _ = writeln!(
        json,
        "    \"recording_over_detached\": {:.4}",
        recording_ns / detached_ns
    );
    json.push_str("  },\n");
    // The full metrics snapshot, re-indented two levels into the artifact.
    json.push_str("  \"metrics\": ");
    for (i, line) in metrics_json.lines().enumerate() {
        if i > 0 {
            json.push_str("\n  ");
        }
        json.push_str(line);
    }
    json.push_str("\n}\n");
    std::fs::write("BENCH_pipeline_obs.json", &json).expect("write BENCH_pipeline_obs.json");
    println!(
        "wrote BENCH_pipeline_obs.json ({} metrics, {} events, FER {:.2}%)",
        snapshot.metric_count(),
        events.len(),
        stats.fer() * 100.0
    );
}
