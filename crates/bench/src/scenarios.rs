//! Shared scenario builders for the paper's figure experiments.
//!
//! Each figure campaign exists twice in this repository: as a
//! human-readable bench target under `benches/` and as a declarative
//! `Campaign` in `cbma-harness`. Both must measure the *same* physics, so
//! the scenario construction lives here — the benches and the campaign
//! runner call the same builders and can never drift apart.
//!
//! Every builder is deterministic in its arguments: the same
//! `(parameters, seed)` pair always produces the same engine.

use cbma::prelude::*;
use cbma::sim::adaptation::Adapter;
use cbma::sim::deployment::random_positions;
use rand::SeedableRng;

use crate::table_area;

/// Fig. 8(a): `n` tags clustered 50 cm from the ES, receiver slid so the
/// tag→RX distance is `d_cm` centimeters. The Rician K-factor decays with
/// the tag→RX distance (clean LOS on the bench, fading-dominated at the
/// far end of the office), which is what reproduces the paper's beyond-2 m
/// error rise — see EXPERIMENTS.md.
///
/// # Panics
///
/// Panics if `n` exceeds the 4-tag cluster geometry.
pub fn fig8a_engine(n: usize, d_cm: f64, seed: u64) -> Engine {
    let offsets = [(0.0, 0.0), (0.0, 0.12), (0.0, -0.12), (0.12, 0.0)];
    let tags: Vec<Point> = (0..n)
        .map(|i| Point::new(0.5 + offsets[i].0, offsets[i].1))
        .collect();
    let mut scenario = Scenario::paper_default(tags).with_seed(seed);
    scenario.es = Point::new(0.0, 0.0);
    scenario.rx = Point::new(0.5 + d_cm / 100.0, 0.0);
    let d_m = (d_cm / 100.0).max(0.1);
    scenario.multipath = MultipathModel {
        k_factor: (12.0 / d_m).clamp(2.0, 24.0),
        ..MultipathModel::indoor_default()
    };
    let mut engine = Engine::new(scenario).expect("valid fig8a scenario");
    for t in engine.tags_mut() {
        t.set_impedance(ImpedanceState::Open);
    }
    engine
}

/// Fig. 9(c): one random table-scale deployment of `n` tags. `group`
/// selects the deployment (the paper draws 50 groups); the positions and
/// the channel seed both derive deterministically from `(n, group)`, so
/// the power-control-on and power-control-off arms of the experiment can
/// measure the *same* deployment.
pub fn fig9c_scenario(n: usize, group: u64) -> Scenario {
    let seeds = SeedSequence::new(0x916C).child(&format!("tags-{n}"));
    let mut rng = rand::rngs::StdRng::seed_from_u64(seeds.derive_indexed("group", group));
    let positions = random_positions(&mut rng, table_area(), n, 0.12);
    Scenario::paper_default(positions).with_seed(seeds.derive_indexed("scenario", group))
}

/// Fig. 9(c), power-control arm: runs Algorithm 1 to convergence on the
/// engine (the paper's adaptation loop), leaving the tags at their
/// converged impedance states.
pub fn fig9c_power_control(engine: &mut Engine, packets_per_cycle: usize) {
    let adapter = Adapter::paper_default(packets_per_cycle.max(5));
    let _ = adapter.run_power_control(engine);
}

/// Fig. 11: two symmetric tags; tag 1's clock is the reference and tag 2
/// starts `delay_chips` chips late (controlled clocks, no jitter).
pub fn fig11_engine(delay_chips: f64, seed: u64) -> Engine {
    let spc = PhyProfile::paper_default().samples_per_chip() as f64;
    let mut scenario =
        Scenario::paper_default(vec![Point::new(0.0, 0.40), Point::new(0.0, -0.40)])
            .with_seed(seed);
    scenario.clock = ClockModel::synchronized();
    scenario.clock_overrides = vec![
        Some(ClockModel::synchronized()),
        Some(ClockModel::fixed(delay_chips * spc)),
    ];
    let mut engine = Engine::new(scenario).expect("valid fig11 scenario");
    for t in engine.tags_mut() {
        t.set_impedance(ImpedanceState::Open);
    }
    engine
}

/// The four working conditions of Fig. 12.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fig12Condition {
    /// Clean channel, tone excitation.
    Clean,
    /// CSMA/CA WiFi interferer at −62 dBm.
    Wifi,
    /// FHSS Bluetooth interferer at −62 dBm.
    Bluetooth,
    /// Intermittent OFDM traffic as the excitation signal.
    OfdmExcitation,
}

impl Fig12Condition {
    /// All four conditions, in the paper's presentation order.
    pub const ALL: [Fig12Condition; 4] = [
        Fig12Condition::Clean,
        Fig12Condition::Wifi,
        Fig12Condition::Bluetooth,
        Fig12Condition::OfdmExcitation,
    ];

    /// The label used in tables and manifests.
    pub fn label(self) -> &'static str {
        match self {
            Fig12Condition::Clean => "no interference",
            Fig12Condition::Wifi => "wifi interference",
            Fig12Condition::Bluetooth => "bluetooth interference",
            Fig12Condition::OfdmExcitation => "ofdm excitation",
        }
    }
}

/// Fig. 12: the fixed 3-tag deployment under one of the four working
/// conditions.
pub fn fig12_engine(condition: Fig12Condition, seed: u64) -> Engine {
    let mut scenario = Scenario::paper_default(vec![
        Point::new(0.0, 0.40),
        Point::new(0.0, -0.45),
        Point::new(0.2, 0.60),
    ])
    .with_seed(seed);
    match condition {
        Fig12Condition::Clean => {}
        Fig12Condition::Wifi => {
            scenario.interference = InterferenceModel::wifi(Dbm::new(-62.0), 1500);
        }
        Fig12Condition::Bluetooth => {
            scenario.interference = InterferenceModel::bluetooth(Dbm::new(-62.0), 5000);
        }
        Fig12Condition::OfdmExcitation => {
            scenario.excitation = Excitation::ofdm(0.6, 60_000);
        }
    }
    let mut engine = Engine::new(scenario).expect("valid fig12 scenario");
    for t in engine.tags_mut() {
        t.set_impedance(ImpedanceState::Open);
    }
    engine
}

/// Fig. 8(b): 2–4 tags in the balanced geometry with the excitation power
/// swept (the paper's −5…20 dBm axis). Lower power → the backscatter
/// signal sinks under the −73 dBm effective receiver floor.
pub fn fig8b_engine(n: usize, tx_power_dbm: f64, seed: u64) -> Engine {
    let mut scenario =
        Scenario::paper_default(crate::balanced_positions(n)).with_seed(seed);
    scenario.link = scenario.link.with_tx_power(Dbm::new(tx_power_dbm));
    // The paper's error knee sits near 0 dBm excitation, which locates
    // their effective receiver floor around −73 dBm.
    scenario.noise = NoiseModel::new(Db::new(6.0), Dbm::new(-73.0));
    let mut engine = Engine::new(scenario).expect("valid fig8b scenario");
    for t in engine.tags_mut() {
        t.set_impedance(ImpedanceState::Open);
    }
    engine
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig8a_geometry_tracks_distance() {
        let e = fig8a_engine(3, 150.0, 7);
        assert_eq!(e.scenario().n_tags(), 3);
        assert_eq!(e.scenario().rx, Point::new(2.0, 0.0));
        assert!(e
            .tags()
            .iter()
            .all(|t| t.impedance() == ImpedanceState::Open));
    }

    #[test]
    fn fig9c_groups_are_deterministic_and_distinct() {
        let a = fig9c_scenario(4, 0);
        let b = fig9c_scenario(4, 0);
        let c = fig9c_scenario(4, 1);
        assert_eq!(a.tag_positions, b.tag_positions);
        assert_eq!(a.seed, b.seed);
        assert_ne!(a.tag_positions, c.tag_positions);
        a.validate().unwrap();
    }

    #[test]
    fn fig11_sets_controlled_clocks() {
        let e = fig11_engine(8.0, 3);
        let spc = PhyProfile::paper_default().samples_per_chip() as f64;
        assert_eq!(e.scenario().clock_for(0), ClockModel::synchronized());
        assert_eq!(e.scenario().clock_for(1), ClockModel::fixed(8.0 * spc));
    }

    #[test]
    fn fig12_conditions_differ_only_where_stated() {
        let clean = fig12_engine(Fig12Condition::Clean, 5);
        let ofdm = fig12_engine(Fig12Condition::OfdmExcitation, 5);
        assert_eq!(
            clean.scenario().tag_positions,
            ofdm.scenario().tag_positions
        );
        assert_ne!(clean.scenario().excitation, ofdm.scenario().excitation);
        assert_eq!(Fig12Condition::ALL.len(), 4);
        assert_eq!(Fig12Condition::Wifi.label(), "wifi interference");
    }

    #[test]
    fn fig8b_applies_power_and_floor() {
        let e = fig8b_engine(2, -5.0, 1);
        assert_eq!(e.scenario().link.tx_power, Dbm::new(-5.0));
        assert_eq!(e.scenario().noise.leakage_floor, Dbm::new(-73.0));
    }
}
