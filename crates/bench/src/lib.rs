//! Shared harness utilities for the experiment benches.
//!
//! Every table and figure of the paper's evaluation has a dedicated bench
//! target in `benches/` (see DESIGN.md's experiment index). Each target is
//! a custom-harness binary that regenerates the same rows/series the paper
//! reports and prints them to stdout, so `cargo bench --workspace`
//! reproduces the entire evaluation.
//!
//! Two profiles control the packet counts:
//!
//! * **fast** (default) — reduced counts with identical shape, minutes for
//!   the full suite,
//! * **full** — paper-scale counts (≈1000 collided packets per point);
//!   select with `CBMA_BENCH_PROFILE=full`.

use cbma::prelude::*;

pub mod scenarios;

/// The run profile, selected by `CBMA_BENCH_PROFILE`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Profile {
    /// Reduced packet counts (default).
    Fast,
    /// Paper-scale packet counts.
    Full,
}

impl Profile {
    /// Reads the profile from the environment.
    pub fn from_env() -> Profile {
        match std::env::var("CBMA_BENCH_PROFILE").as_deref() {
            Ok("full") | Ok("FULL") => Profile::Full,
            _ => Profile::Fast,
        }
    }

    /// Packets per measurement point: the paper uses 1000; fast mode
    /// scales that down.
    pub fn packets(self, full_count: usize) -> usize {
        match self {
            Profile::Full => full_count,
            Profile::Fast => (full_count / 20).max(20),
        }
    }

    /// Number of random deployment groups (the paper uses 50 for
    /// Fig. 9(c)/Fig. 10).
    pub fn groups(self, full_count: usize) -> usize {
        match self {
            Profile::Full => full_count,
            Profile::Fast => (full_count / 5).max(6),
        }
    }
}

/// Prints the standard bench header.
pub fn header(id: &str, paper_ref: &str, what: &str) {
    println!("================================================================");
    println!("{id} — {paper_ref}");
    println!("{what}");
    let profile = Profile::from_env();
    println!("profile: {profile:?} (set CBMA_BENCH_PROFILE=full for paper-scale counts)");
    println!("================================================================");
}

/// The balanced ten-tag bench geometry: positions mirrored across both
/// axes share the same d1²·d2² link-budget product, so all links sit
/// within ~2 dB — the regime where concurrent decoding shines.
pub fn balanced_positions(n: usize) -> Vec<Point> {
    let full = vec![
        Point::new(0.15, 0.45),
        Point::new(-0.15, 0.45),
        Point::new(0.15, -0.45),
        Point::new(-0.15, -0.45),
        Point::new(0.35, 0.5),
        Point::new(-0.35, 0.5),
        Point::new(0.35, -0.5),
        Point::new(-0.35, -0.5),
        Point::new(0.0, 0.62),
        Point::new(0.0, -0.62),
    ];
    assert!(n <= full.len(), "at most 10 balanced positions are defined");
    full[..n].to_vec()
}

/// The paper's table-scale random-deployment area (tags, ES and RX all
/// sit on one table, Fig. 7).
pub fn table_area() -> Rect {
    Rect::new(Point::new(-0.6, -0.5), Point::new(0.6, 0.5))
}

/// Builds a paper-default scenario at full tag power (the micro-benchmark
/// baseline: adaptation disabled unless the experiment studies it).
pub fn scenario_at_full_power(positions: Vec<Point>, seed: u64) -> Engine {
    let scenario = Scenario::paper_default(positions).with_seed(seed);
    let mut engine = Engine::new(scenario).expect("bench scenario is valid");
    for tag in engine.tags_mut() {
        tag.set_impedance(ImpedanceState::Open);
    }
    engine
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1} %", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_profile_scales_counts_down() {
        assert_eq!(Profile::Fast.packets(1000), 50);
        assert_eq!(Profile::Full.packets(1000), 1000);
        assert_eq!(Profile::Fast.packets(100), 20);
        assert_eq!(Profile::Fast.groups(50), 10);
    }

    #[test]
    fn balanced_positions_are_clamped() {
        assert_eq!(balanced_positions(3).len(), 3);
        assert_eq!(balanced_positions(10).len(), 10);
    }

    #[test]
    fn engine_builder_sets_full_power() {
        let engine = scenario_at_full_power(balanced_positions(2), 1);
        assert!(engine
            .tags()
            .iter()
            .all(|t| t.impedance() == ImpedanceState::Open));
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.1234), "12.3 %");
    }
}
