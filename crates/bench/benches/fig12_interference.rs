//! Fig. 12 — correct packet reception rate under working conditions.
//!
//! §VII-C.3: fixed tag locations, four cases: (i) no interference,
//! (ii) WiFi interference, (iii) Bluetooth interference, (iv) OFDM signal
//! as the excitation. WiFi/Bluetooth cost little (CSMA/CA and FHSS leave
//! the channel mostly free); OFDM excitation drops reception
//! significantly because the tags cannot tell when there is a signal to
//! reflect.
//!
//! Condition construction lives in `cbma_bench::scenarios::fig12_engine`
//! so this bench and the `fig12` campaign in `cbma-harness` measure the
//! same physics.

use cbma_bench::scenarios::{fig12_engine, Fig12Condition};
use cbma_bench::{header, pct, Profile};

fn main() {
    header(
        "Fig. 12",
        "paper §VII-C.3, Fig. 12",
        "correct packet reception rate under four working conditions (3 tags)",
    );
    let profile = Profile::from_env();
    let packets = profile.packets(1000);

    let cases: Vec<Fig12Condition> = Fig12Condition::ALL.to_vec();

    println!(
        "{:<26} {:>22}",
        "working condition", "packet reception rate"
    );
    let rows = cbma::sim::sweep::parallel_sweep(&cases, |&condition| {
        let mut engine = fig12_engine(condition, 0xF16_1200);
        (condition.label(), 1.0 - engine.run_rounds(packets).fer())
    });
    for (label, prr) in rows {
        println!("{label:<26} {:>22}", pct(prr));
    }
    println!("\npaper shape: WiFi and Bluetooth reduce reception only slightly");
    println!("(duty-cycled channels); OFDM excitation drops it significantly.");
}
