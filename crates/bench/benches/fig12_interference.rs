//! Fig. 12 — correct packet reception rate under working conditions.
//!
//! §VII-C.3: fixed tag locations, four cases: (i) no interference,
//! (ii) WiFi interference, (iii) Bluetooth interference, (iv) OFDM signal
//! as the excitation. WiFi/Bluetooth cost little (CSMA/CA and FHSS leave
//! the channel mostly free); OFDM excitation drops reception
//! significantly because the tags cannot tell when there is a signal to
//! reflect.

use cbma::prelude::*;
use cbma_bench::{header, pct, Profile};

fn measure(scenario: Scenario, packets: usize) -> f64 {
    let mut engine = Engine::new(scenario).expect("valid scenario");
    for t in engine.tags_mut() {
        t.set_impedance(ImpedanceState::Open);
    }
    1.0 - engine.run_rounds(packets).fer()
}

fn main() {
    header(
        "Fig. 12",
        "paper §VII-C.3, Fig. 12",
        "correct packet reception rate under four working conditions (3 tags)",
    );
    let profile = Profile::from_env();
    let packets = profile.packets(1000);

    let base = Scenario::paper_default(vec![
        Point::new(0.0, 0.40),
        Point::new(0.0, -0.45),
        Point::new(0.2, 0.60),
    ])
    .with_seed(0xF16_1200);

    let cases: Vec<(&str, Scenario)> = vec![
        ("no interference", base.clone()),
        ("wifi interference", {
            let mut s = base.clone();
            s.interference = InterferenceModel::wifi(Dbm::new(-62.0), 1500);
            s
        }),
        ("bluetooth interference", {
            let mut s = base.clone();
            s.interference = InterferenceModel::bluetooth(Dbm::new(-62.0), 5000);
            s
        }),
        ("ofdm excitation", {
            let mut s = base.clone();
            // Intermittent OFDM traffic: on the air 60 % of the time in
            // multi-millisecond bursts.
            s.excitation = Excitation::ofdm(0.6, 60_000);
            s
        }),
    ];

    println!(
        "{:<26} {:>22}",
        "working condition", "packet reception rate"
    );
    let rows = cbma::sim::sweep::parallel_sweep(&cases, |(label, scenario)| {
        (*label, measure(scenario.clone(), packets))
    });
    for (label, prr) in rows {
        println!("{label:<26} {:>22}", pct(prr));
    }
    println!("\npaper shape: WiFi and Bluetooth reduce reception only slightly");
    println!("(duty-cycled channels); OFDM excitation drops it significantly.");
}
