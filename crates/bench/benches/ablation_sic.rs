//! Ablation — successive interference cancellation (reproduction
//! extension) vs tag-side power control.
//!
//! The paper fixes near-far at the *tag* (impedance power control); SIC
//! fixes it at the *receiver*. This bench sweeps the two-tag power
//! difference (the Table II axis) and compares: no mitigation, SIC only,
//! power control only, and both. SIC rescues deep imbalances that exceed
//! the tag's 7 dB |ΔΓ| actuation range.

use cbma::prelude::*;
use cbma::sim::adaptation::Adapter;
use cbma_bench::{header, pct, Profile};

fn engine(diff_target: f64, sic: bool, seed: u64) -> Engine {
    // Same controlled geometry as the Table II bench: tag 2 slides along
    // the symmetry axis.
    let link = BackscatterLink::paper_default();
    let es = Point::from_cm(-50.0, 0.0);
    let rx = Point::from_cm(50.0, 0.0);
    let p_ref = link
        .received_power(es, Point::new(0.0, -0.40), rx)
        .to_milliwatts();
    let (mut lo, mut hi) = (0.40f64, 3.5f64);
    for _ in 0..60 {
        let mid = (lo + hi) / 2.0;
        let p = link
            .received_power(es, Point::new(0.0, -mid), rx)
            .to_milliwatts();
        if 1.0 - p / p_ref < diff_target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let y2 = (lo + hi) / 2.0;

    let mut scenario =
        Scenario::paper_default(vec![Point::new(0.0, 0.40), Point::new(0.0, -y2)]).with_seed(seed);
    scenario.shadowing = ShadowingModel::disabled();
    if sic {
        scenario.rx_config.sic_passes = 2;
    }
    let mut e = Engine::new(scenario).expect("valid scenario");
    for t in e.tags_mut() {
        t.set_impedance(ImpedanceState::Open);
    }
    e
}

fn main() {
    header(
        "ablation: SIC",
        "reproduction extension (DESIGN.md)",
        "2-tag error vs power difference: none / SIC / power control / both",
    );
    let profile = Profile::from_env();
    let packets = profile.packets(600);

    println!(
        "{:>12} {:>10} {:>10} {:>10} {:>10}",
        "difference", "none", "sic", "pc", "sic+pc"
    );
    let targets: Vec<f64> = vec![0.0, 0.5, 0.8, 0.9, 0.95, 0.97];
    let rows = cbma::sim::sweep::parallel_sweep(&targets, |&t| {
        let seed = 0x51C0 + (t * 100.0) as u64;
        let none = engine(t, false, seed).run_rounds(packets).fer();
        let sic = engine(t, true, seed).run_rounds(packets).fer();
        let pc = {
            let mut e = engine(t, false, seed);
            let _ = Adapter::paper_default(packets.max(10) / 2).run_power_control(&mut e);
            e.run_rounds(packets).fer()
        };
        let both = {
            let mut e = engine(t, true, seed);
            let _ = Adapter::paper_default(packets.max(10) / 2).run_power_control(&mut e);
            e.run_rounds(packets).fer()
        };
        (t, none, sic, pc, both)
    });
    for (t, none, sic, pc, both) in rows {
        println!(
            "{:>12} {:>10} {:>10} {:>10} {:>10}",
            pct(t),
            pct(none),
            pct(sic),
            pct(pc),
            pct(both)
        );
    }
    println!("\nreading: power control (7 dB of |ΔΓ| actuation) helps moderate");
    println!("imbalance; SIC keeps the weak tag decodable far past the actuation");
    println!("range; combining both is strictly best.");
}
