//! Fig. 9(b) — error rate: Gold codes vs 2NC codes.
//!
//! §VII-B.3: 2 to 5 concurrent tags, decoding error per code family.
//! 2NC's better orthogonality yields lower error; with Gold codes the
//! 5-tag error jumps (the paper reports ≈11 %). The bench also prints the
//! correlation-property analysis that explains the gap.

use cbma::codes::{CodeFamily, CorrelationReport, FamilyKind, GoldFamily, TwoNcFamily};
use cbma::prelude::*;
use cbma_bench::{balanced_positions, header, pct, Profile};

fn fer(family: FamilyKind, n: usize, packets: usize, seed: u64) -> f64 {
    let mut scenario = Scenario::paper_default(balanced_positions(n)).with_seed(seed);
    scenario.family = family;
    let mut engine = Engine::new(scenario).expect("valid scenario");
    for t in engine.tags_mut() {
        t.set_impedance(ImpedanceState::Open);
    }
    engine.run_rounds(packets).fer()
}

fn main() {
    header(
        "Fig. 9(b)",
        "paper §VII-B.3, Fig. 9(b)",
        "decode error rate per PN-code family, 2–5 concurrent tags",
    );
    let profile = Profile::from_env();
    let packets = profile.packets(1000);

    println!("{:>8} {:>14} {:>14}", "tags", "gold (n=5)", "2nc");
    let counts: Vec<usize> = vec![2, 3, 4, 5];
    let rows = cbma::sim::sweep::parallel_sweep(&counts, |&n| {
        (
            n,
            fer(
                FamilyKind::Gold { degree: 5 },
                n,
                packets,
                0x916B + n as u64,
            ),
            // A fixed 32-chip 2NC family (as dimensioned for the paper's
            // 10-tag deployment) so both families spread comparably
            // (Gold-31 vs 2NC-32).
            fer(
                FamilyKind::TwoNc { users: 16 },
                n,
                packets,
                0x916B + n as u64,
            ),
        )
    });
    for (n, g, t) in rows {
        println!("{:>8} {:>14} {:>14}", n, pct(g), pct(t));
    }

    println!("\ncorrelation properties behind the gap:");
    let gold = GoldFamily::new(5).unwrap();
    let twonc = TwoNcFamily::new(5).unwrap();
    println!(
        "  gold : {}",
        CorrelationReport::analyze(&gold.codes(5).unwrap())
    );
    println!(
        "  2nc  : {}",
        CorrelationReport::analyze(&twonc.codes(5).unwrap())
    );
    println!("\npaper shape: error grows with tag count; 2NC beats Gold at every");
    println!("count, and Gold's 5-tag error jumps to ≈11 %.");
}
