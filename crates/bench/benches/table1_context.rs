//! Table I — summary of existing backscatter systems, plus this
//! reproduction's measured CBMA row.
//!
//! Table I is survey context (numbers quoted from the cited papers), so
//! there is nothing to re-measure for the other systems; the bench
//! reprints it and appends the CBMA row as *measured by this simulator*:
//! 10 concurrent tags, aggregate modulated bit rate at the working
//! distance of the headline bench.

use cbma::prelude::*;
use cbma_bench::{balanced_positions, header, Profile};

fn main() {
    header(
        "Table I",
        "paper §I, Table I",
        "summary of existing backscatter systems + measured CBMA row",
    );
    let profile = Profile::from_env();
    let packets = profile.packets(200);

    // Measure the CBMA row: 10 concurrent tags at the paper's default
    // 1 Mbps symbol rate.
    let mut scenario = Scenario::paper_default(balanced_positions(10)).with_seed(0x7AB1E1);
    scenario.phy = scenario.phy.with_chip_rate(Hertz::from_mhz(1.0));
    scenario.clock.jitter_samples = scenario.phy.samples_per_chip() as f64;
    let mut engine = Engine::new(scenario).expect("valid scenario");
    for t in engine.tags_mut() {
        t.set_impedance(ImpedanceState::Open);
    }
    let stats = engine.run_rounds(packets);
    let rate = stats.aggregate_symbol_rate(&engine.scenario().phy).get();
    let max_d = balanced_positions(10)
        .iter()
        .map(|p| p.distance_to(engine.scenario().rx))
        .fold(0.0f64, f64::max);

    println!(
        "{:<22} {:>12} {:>8} {:>12}",
        "technology", "data rate", "tags", "distance"
    );
    let survey = [
        ("Ambient Backscatter", "1 kbps", "2", "<= 1 m"),
        ("Wi-Fi Backscatter", "1 kbps", "1", "0.65 m"),
        ("BackFi", "5 Mbps", "1", "1 m"),
        ("FM Backscatter", "3.2 kbps", "1", "18 m"),
        ("LoRa Backscatter", "8.7 bps", "1-2", "475 m"),
        ("PLoRa", "6.25 kbps", "1", "1.1 km"),
        ("Netscatter", "500 kbps", "256", "2 m"),
    ];
    for (tech, rate, tags, dist) in survey {
        println!("{tech:<22} {rate:>12} {tags:>8} {dist:>12}");
    }
    println!(
        "{:<22} {:>9.1} Mbps {:>8} {:>9.2} m   <- measured by this reproduction",
        "CBMA (this work)",
        rate / 1e6,
        10,
        max_d
    );
    println!(
        "\n(fer over the measurement: {:.1} %; the paper quotes 8 Mbps at 10 tags",
        stats.fer() * 100.0
    );
    println!("up to 5 m tag-receiver distance — see the headline_throughput bench.)");
}
