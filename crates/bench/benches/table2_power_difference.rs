//! Table II — error rate vs. inter-tag received-power difference.
//!
//! §IV's benchmark: two tags per test, ES at (−50 cm, 0), RX at
//! (50 cm, 0); the "difference" column is the power gap over the larger
//! power, and the error rate is missing packets over transmitted packets.
//! The library's default (coherent) receiver is used: its near-far
//! mechanism is the §III-B detection threshold — a tag far below the
//! aggregate received energy fails user detection. (The paper's
//! envelope-first receiver is compared separately in the
//! `ablation_receiver` bench; in our baseband model its errors are
//! dominated by inter-tag phase geometry rather than power difference.)
//!
//! Placement: tag 1 sits at (0, 0.40); tag 2 starts at the mirror point
//! (0, −0.40) — exactly equal received power by symmetry — and slides
//! away along the axis until the link budget hits each target difference,
//! giving a controlled sweep instead of the paper's random draws.

use cbma::prelude::*;
use cbma_bench::{header, pct, Profile};

/// Received power (mW) for a tag at (0, −y).
fn power_at(link: &BackscatterLink, es: Point, rx: Point, y: f64) -> f64 {
    link.received_power(es, Point::new(0.0, -y), rx)
        .to_milliwatts()
}

/// Finds y so that the power difference ratio vs the reference tag hits
/// `target` (bisection; power falls monotonically with y).
fn y_for_difference(link: &BackscatterLink, es: Point, rx: Point, p_ref: f64, target: f64) -> f64 {
    let (mut lo, mut hi) = (0.40, 3.5);
    for _ in 0..60 {
        let mid = (lo + hi) / 2.0;
        let diff = 1.0 - power_at(link, es, rx, mid) / p_ref;
        if diff < target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    (lo + hi) / 2.0
}

fn main() {
    header(
        "Table II",
        "paper §IV, Table II",
        "two-tag collisions: error rate vs received-power difference",
    );
    let profile = Profile::from_env();
    let packets = profile.packets(1000);
    let seeds_per_target = if profile == Profile::Full { 4 } else { 2 };

    let link = BackscatterLink::paper_default();
    let es = Point::from_cm(-50.0, 0.0);
    let rx = Point::from_cm(50.0, 0.0);
    let tag1 = Point::new(0.0, 0.40);
    let p_ref = power_at(&link, es, rx, 0.40);

    println!(
        "{:>10} {:>8} {:>8} {:>12} {:>12}",
        "target", "P1(dBm)", "P2(dBm)", "difference", "error rate"
    );

    // The paper stops at 68 %; our coherent receiver's detection cliff
    // sits deeper, so the sweep extends to 97 % (≈15 dB) to expose it.
    let targets = [
        0.0, 0.05, 0.10, 0.20, 0.35, 0.50, 0.60, 0.70, 0.80, 0.90, 0.95, 0.97,
    ];
    let mut below_10 = Vec::new();
    let mut above_50 = Vec::new();
    for &target in &targets {
        let y2 = y_for_difference(&link, es, rx, p_ref, target);
        let tag2 = Point::new(0.0, -y2);
        let p2 = power_at(&link, es, rx, y2);
        let diff = 1.0 - p2 / p_ref;

        let mut fer_sum = 0.0;
        for s in 0..seeds_per_target {
            let mut scenario =
                Scenario::paper_default(vec![tag1, tag2]).with_seed(0x7AB1E + s as u64 * 131);
            scenario.shadowing = ShadowingModel::disabled();
            let mut engine = Engine::new(scenario).unwrap();
            for t in engine.tags_mut() {
                t.set_impedance(ImpedanceState::Open);
            }
            fer_sum += engine.run_rounds(packets).fer();
        }
        let fer = fer_sum / seeds_per_target as f64;
        println!(
            "{:>10} {:>8.1} {:>8.1} {:>12} {:>12}",
            pct(target),
            10.0 * p_ref.log10(),
            10.0 * p2.log10(),
            pct(diff),
            pct(fer)
        );
        if diff < 0.10 {
            below_10.push(fer);
        }
        if diff > 0.50 {
            above_50.push(fer);
        }
    }

    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    println!(
        "\nsummary: mean error below 10 % difference = {}; above 50 % = {}",
        pct(mean(&below_10)),
        pct(mean(&above_50))
    );
    println!("paper: ≤0.9 % error below 10 % difference; 16–38 % above 50 %.");
}
