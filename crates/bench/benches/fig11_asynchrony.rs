//! Fig. 11 — error rate vs inter-tag clock delay.
//!
//! §VII-C.2: two tags; tag 1's clock is the reference and tag 2's
//! transmission is delayed by a controlled amount. The paper observes the
//! lowest error at perfect synchronization and a jump to a ≈4 % plateau
//! once any delay exists.
//!
//! Scenario construction lives in `cbma_bench::scenarios::fig11_engine` so
//! this bench and the `fig11` campaign in `cbma-harness` measure the same
//! physics.

use cbma_bench::scenarios::fig11_engine;
use cbma_bench::{header, pct, Profile};

fn main() {
    header(
        "Fig. 11",
        "paper §VII-C.2, Fig. 11",
        "2-tag error rate vs tag-2 clock delay (tag 1 is the reference)",
    );
    let profile = Profile::from_env();
    let packets = profile.packets(1000);

    // Delays in chips (the natural unit of misalignment); sub-chip and
    // multi-chip offsets both appear in the sweep.
    let delays: Vec<f64> = vec![0.0, 0.25, 0.5, 1.0, 2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 16.0];

    println!("{:>14} {:>12}", "delay (chips)", "error rate");
    let rows = cbma::sim::sweep::parallel_sweep(&delays, |&d| {
        (d, fig11_engine(d, 0xF16_1100).run_rounds(packets).fer())
    });
    for (d, fer) in rows {
        println!("{:>14} {:>12}", d, pct(fer));
    }
    println!("\npaper shape: minimum error at perfect synchronization; with any");
    println!("delay the error rises and fluctuates around ≈4 %.");
    println!("deviation: our candidate-validating correlator tolerates offsets up");
    println!("to its search horizon (≈8 chips, configurable), beyond which the");
    println!("error rises sharply — see EXPERIMENTS.md.");
}
