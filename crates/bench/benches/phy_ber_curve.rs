//! PHY validation — bit error rate vs excitation power.
//!
//! Not a paper figure: this curve validates the simulated PHY against
//! communication theory. A correlation receiver despreading SF chips of
//! OOK enjoys a processing gain of SF·(samples/chip); the measured BER
//! should fall off a cliff once the per-bit SNR passes the coherent
//! detection threshold, with the multi-tag curves shifted right by the
//! extra MAI. The frame error rate is printed alongside so the
//! FER ≈ 1 − (1 − BER)^bits relationship can be eyeballed.

use cbma::prelude::*;
use cbma_bench::{balanced_positions, header, Profile};

fn measure(n: usize, tx_dbm: f64, packets: usize) -> (Option<f64>, f64) {
    let mut scenario =
        Scenario::paper_default(balanced_positions(n)).with_seed(0xBE5 + tx_dbm as u64);
    scenario.link = scenario.link.with_tx_power(Dbm::new(tx_dbm));
    scenario.noise = NoiseModel::new(Db::new(6.0), Dbm::new(-73.0));
    scenario.shadowing = ShadowingModel::disabled();
    let mut engine = Engine::new(scenario).expect("valid scenario");
    for t in engine.tags_mut() {
        t.set_impedance(ImpedanceState::Open);
    }
    let stats = engine.run_rounds(packets);
    (stats.ber(), stats.fer())
}

fn main() {
    header(
        "PHY: BER curve",
        "reproduction validation (not a paper figure)",
        "bit error rate vs excitation power, 1 and 3 concurrent tags",
    );
    let profile = Profile::from_env();
    let packets = profile.packets(600);

    println!(
        "{:>10} {:>14} {:>10} {:>14} {:>10}",
        "Pt (dBm)", "BER (1 tag)", "FER", "BER (3 tags)", "FER"
    );
    let powers: Vec<f64> = vec![0.0, 2.0, 4.0, 6.0, 8.0, 12.0, 16.0, 20.0];
    let rows = cbma::sim::sweep::parallel_sweep(&powers, |&p| {
        (p, measure(1, p, packets), measure(3, p, packets))
    });
    for (p, (ber1, fer1), (ber3, fer3)) in rows {
        let fmt_ber = |b: Option<f64>| match b {
            Some(x) if x > 0.0 => format!("{x:.2e}"),
            Some(_) => "<1e-5".to_string(),
            None => "n/a".to_string(),
        };
        println!(
            "{:>10} {:>14} {:>9.1}% {:>14} {:>9.1}%",
            p,
            fmt_ber(ber1),
            fer1 * 100.0,
            fmt_ber(ber3),
            fer3 * 100.0
        );
    }
    println!("\nreading: both curves are coherent-receiver waterfalls. Note the");
    println!("1-tag FER is *worse* than 3 tags near the knee: frame sync keys on");
    println!("aggregate energy, and three tags together trip the detector at");
    println!("powers where one alone cannot — per-bit decoding, by contrast, is");
    println!("cleanest with a single tag (compare the BER columns). Measured bits");
    println!("come from frames whose header decoded, so the deep-failure region");
    println!("under-counts (FER tells that part of the story).");
}
