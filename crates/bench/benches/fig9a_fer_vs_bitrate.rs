//! Fig. 9(a) — frame error rate vs tag bitrate.
//!
//! §VII-B.1: the tag symbol (chip) rate is swept from 250 kbps to 5 Mbps
//! while the receiver's sampling capacity stays fixed at 8 Msps, so high
//! rates leave fewer samples per symbol ("dwell time at each signal state
//! is short, which may lead to too few sampling points"); 2/3/4 tags.
//! Expected shape: error grows with bitrate but the system remains usable
//! at 5 Mbps.

use cbma::prelude::*;
use cbma_bench::{balanced_positions, header, pct, Profile};

fn engine_at(n: usize, rate_hz: f64, seed: u64) -> Engine {
    let mut scenario = Scenario::paper_default(balanced_positions(n)).with_seed(seed);
    scenario.phy = scenario.phy.with_chip_rate(Hertz::new(rate_hz));
    // Keep the absolute clock jitter constant in *time* (it is a property
    // of the tags, not of the symbol rate).
    scenario.clock.jitter_samples = scenario.phy.samples_per_chip() as f64;
    // Short sensor packets: low symbol rates would otherwise stretch the
    // frame into many milliseconds of oscillator drift.
    scenario.payload_len = 4;
    let mut engine = Engine::new(scenario).expect("valid scenario");
    for t in engine.tags_mut() {
        t.set_impedance(ImpedanceState::Open);
    }
    engine
}

fn main() {
    header(
        "Fig. 9(a)",
        "paper §VII-B.1, Fig. 9(a)",
        "frame error rate vs tag bitrate at a fixed 8 Msps receiver, 2/3/4 tags",
    );
    let profile = Profile::from_env();
    let packets = profile.packets(1000);
    let rates: Vec<f64> = vec![250e3, 500e3, 1e6, 2e6, 4e6, 5e6];

    println!(
        "{:>12} {:>10} {:>12} {:>12} {:>12}",
        "bitrate", "smp/chip", "2 tags", "3 tags", "4 tags"
    );
    let rows = cbma::sim::sweep::parallel_sweep(&rates, |&r| {
        let spc = PhyProfile::paper_default()
            .with_chip_rate(Hertz::new(r))
            .samples_per_chip();
        let fer = |n: usize| {
            engine_at(n, r, 0x0F16_9A00 + r as u64)
                .run_rounds(packets)
                .fer()
        };
        (r, spc, fer(2), fer(3), fer(4))
    });
    for (r, spc, f2, f3, f4) in rows {
        println!(
            "{:>9.2} Mbps {:>8} {:>12} {:>12} {:>12}",
            r / 1e6,
            spc,
            pct(f2),
            pct(f3),
            pct(f4)
        );
    }
    println!("\npaper shape: bitrate is a key factor but performance stays decent");
    println!("even at 5 Mbps symbol rate.");
}
