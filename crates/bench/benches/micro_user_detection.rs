//! §VII-B.2 — user-detection accuracy with a 10-tag group.
//!
//! "A group of 10 tags are deployed for backscattering data. For each
//! case, we randomly select a part of tags to send their data. The
//! receiver uses all the PN codes of the tags in the group to detect
//! which tag is backscattering. We perform the experiment 1000 times and
//! the results demonstrate that we can 99.9 % correctly detect which tags
//! are sending data."
//!
//! In this receiver a tag is declared present when its frame decodes
//! (CRC-valid, alias-resolved): the §III-B correlation threshold only
//! nominates *candidates*, and validation is the declaration. The bench
//! reports per-tag detection accuracy (the paper's 99.9 % figure) and the
//! stricter exact-active-set rate.

use cbma::prelude::*;
use cbma_bench::{balanced_positions, header, pct, Profile};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

fn main() {
    header(
        "user detection",
        "paper §VII-B.2",
        "10-tag group, random active subsets: how often the detected set is exact",
    );
    let profile = Profile::from_env();
    let trials = profile.packets(1000);

    let scenario = Scenario::paper_default(balanced_positions(10)).with_seed(0xDE7EC7);
    let mut engine = Engine::new(scenario).expect("valid scenario");
    for t in engine.tags_mut() {
        t.set_impedance(ImpedanceState::Open);
    }

    let mut rng = rand::rngs::StdRng::seed_from_u64(0xDE7EC7);
    let mut exact = 0usize;
    let mut missed = 0usize;
    let mut phantom = 0usize;
    let mut judged = 0usize;
    for _ in 0..trials {
        let k = rng.gen_range(1..=10usize);
        let mut ids: Vec<usize> = (0..10).collect();
        ids.shuffle(&mut rng);
        let mut active = ids[..k].to_vec();
        active.sort_unstable();

        let outcome = engine.run_round_subset(&active);
        let detected: Vec<usize> = outcome.report.ack.iter().map(|id| id as usize).collect();
        if detected == active {
            exact += 1;
        }
        missed += active.iter().filter(|a| !detected.contains(a)).count();
        phantom += detected.iter().filter(|d| !active.contains(d)).count();
        judged += 10; // every tag of the group is classified each trial
    }

    let per_tag = 1.0 - (missed + phantom) as f64 / judged as f64;
    println!("trials: {trials}");
    println!("per-tag detection accuracy:  {}", pct(per_tag));
    println!(
        "exact active-set detections: {}",
        pct(exact as f64 / trials as f64)
    );
    println!("missed tag instances: {missed}, phantom tag instances: {phantom}");
    println!("\npaper: 99.9 % correct detection over 1000 trials.");
}
