//! Ablation — receiver ADC resolution under near-far.
//!
//! The paper's receiver is a USRP RIO; §VII-A notes it "can be replaced by
//! commercial WiFi NICs". With AGC the converter's full scale is set by
//! the strongest tag, so a weak tag lives in the bottom LSBs — this bench
//! quantifies how many effective bits the CBMA receiver actually needs at
//! a given power imbalance.

use cbma::channel::AdcModel;
use cbma::prelude::*;
use cbma_bench::{header, pct, Profile};

fn fer(bits: Option<u32>, imbalanced: bool, packets: usize) -> f64 {
    let positions = if imbalanced {
        // ~10 dB apart.
        vec![Point::new(0.0, 0.35), Point::new(0.0, -0.95)]
    } else {
        vec![Point::new(0.0, 0.40), Point::new(0.0, -0.40)]
    };
    let mut scenario = Scenario::paper_default(positions).with_seed(0xADC0);
    scenario.shadowing = ShadowingModel::disabled();
    scenario.adc = bits.map(AdcModel::new);
    let mut engine = Engine::new(scenario).expect("valid scenario");
    for t in engine.tags_mut() {
        t.set_impedance(ImpedanceState::Open);
    }
    engine.run_rounds(packets).fer()
}

fn main() {
    header(
        "ablation: ADC bits",
        "reproduction extension (§VII-A: USRP vs commodity WiFi NIC)",
        "2-tag error vs effective ADC bits, balanced and ~10 dB imbalanced",
    );
    let profile = Profile::from_env();
    let packets = profile.packets(600);

    println!("{:>10} {:>12} {:>14}", "bits", "balanced", "10 dB near-far");
    let cases: Vec<Option<u32>> = vec![Some(3), Some(4), Some(5), Some(6), Some(8), Some(12), None];
    let rows = cbma::sim::sweep::parallel_sweep(&cases, |&bits| {
        (bits, fer(bits, false, packets), fer(bits, true, packets))
    });
    for (bits, bal, imb) in rows {
        let label = bits.map_or("ideal".to_string(), |b| b.to_string());
        println!("{label:>10} {:>12} {:>14}", pct(bal), pct(imb));
    }
    println!("\nreading: 5 effective bits already reach the channel-limited floor —");
    println!("the despreading gain averages quantization noise like any other");
    println!("noise — while 3–4 bits collapse the system. A commodity WiFi NIC's");
    println!("8 bits are comfortably sufficient, supporting §VII-A's claim that");
    println!("the USRP \"can be replaced by commercial WiFi NICs\".");
}
