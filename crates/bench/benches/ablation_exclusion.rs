//! Ablation — the node-selection exclusion radius.
//!
//! §V-C: "once a tag is selected, we exclude those tags near to this
//! selected tag" — the paper motivates λ/2 (mutual coupling). This bench
//! sweeps the exclusion radius used when accepting replacement positions
//! and measures the post-selection error of deployments engineered to
//! tempt the selector into clustering (all the best candidate positions
//! sit next to each other near the field maximum).

use cbma::prelude::*;
use cbma::sim::adaptation::Adapter;
use cbma_bench::{header, pct, Profile};

fn run(radius_m: f64, packets: usize, seed: u64) -> f64 {
    // One good tag, two hopeless corner tags; the candidate pool is a
    // tight cluster of excellent positions 3–6 cm apart — accepting more
    // than one of them puts the replacements inside each other's coupling
    // range.
    let scenario = Scenario::paper_default(vec![
        Point::new(0.0, 0.35),
        Point::new(1.8, 2.8),
        Point::new(-1.8, 2.8),
    ])
    .with_seed(seed);
    let mut engine = Engine::new(scenario).expect("valid scenario");
    // Override the selector's radius through the link carrier? The
    // NodeSelector derives λ/2 from the carrier; emulate other radii by
    // filtering the pool ourselves: candidates closer than `radius_m` to
    // an already-chosen position are removed before selection.
    let pool_raw = vec![
        Point::new(0.22, -0.38),
        Point::new(0.25, -0.40),
        Point::new(0.28, -0.36),
        Point::new(0.24, -0.33),
        Point::new(-0.3, 0.42),
    ];
    // Greedy filter at the requested radius (mirrors the selector's
    // exclusion rule; radius 0 disables it).
    let mut pool: Vec<Point> = Vec::new();
    for p in pool_raw {
        if pool.iter().all(|q| q.distance_to(p) >= radius_m) {
            pool.push(p);
        }
    }
    let adapter = Adapter::paper_default(packets.max(10) / 2);
    let _ = adapter.run_with_node_selection(&mut engine, &pool);
    engine.run_rounds(packets).fer()
}

fn main() {
    header(
        "ablation: exclusion radius",
        "paper §V-C (λ/2 ≈ 7.5 cm at 2 GHz)",
        "post-node-selection error vs candidate exclusion radius",
    );
    let profile = Profile::from_env();
    let packets = profile.packets(600);
    let seeds = 6u64;

    println!("{:>14} {:>12}", "radius (cm)", "error rate");
    let radii: Vec<f64> = vec![0.0, 0.02, 0.05, 0.075, 0.12, 0.2];
    let rows = cbma::sim::sweep::parallel_sweep(&radii, |&r| {
        let fer = (0..seeds)
            .map(|s| run(r, packets, 0xE8C1 + s * 97))
            .sum::<f64>()
            / seeds as f64;
        (r, fer)
    });
    for (r, fer) in rows {
        println!("{:>14.1} {:>12}", r * 100.0, pct(fer));
    }
    println!("\nreading: the exclusion radius is a trade, and which side wins");
    println!("depends on the candidate pool. Here the pool is deliberately tight");
    println!("(good spots 3–6 cm apart): enforcing λ/2 ≈ 7.5 cm leaves too few");
    println!("candidates and a tag stays in its dead corner — worse than accepting");
    println!("some mutual coupling. With a rich pool the λ/2 rule is free");
    println!("insurance; §V-C implicitly assumes that regime (\"many tags");
    println!("distributed in the environment\").");
}
