//! Ablation — the paper's envelope receiver vs this library's coherent
//! receiver.
//!
//! The paper computes P(t) = √(I²+Q²) before decoding (§V-B); this
//! reproduction adds a coherent receiver with preamble channel estimation
//! and decision-directed phase tracking. The ablation quantifies what
//! that buys: the envelope statistic is phase-blind, so superposed tags
//! destructively interfere at unlucky phase geometries, while the
//! coherent statistic separates them. This is the reproduction's main
//! engineering finding — most of the near-far fragility the paper fixes
//! with power control is an artifact of envelope-first decoding.

use cbma::prelude::*;
use cbma::rx::DecoderKind;
use cbma_bench::{balanced_positions, header, pct, Profile};

fn fer(kind: DecoderKind, n: usize, packets: usize, seed: u64) -> f64 {
    let mut scenario = Scenario::paper_default(balanced_positions(n)).with_seed(seed);
    scenario.rx_config.decoder_kind = kind;
    let mut engine = Engine::new(scenario).expect("valid scenario");
    for t in engine.tags_mut() {
        t.set_impedance(ImpedanceState::Open);
    }
    engine.run_rounds(packets).fer()
}

fn main() {
    header(
        "ablation",
        "reproduction extension (DESIGN.md)",
        "envelope-first receiver (paper §V-B) vs coherent receiver, 1–5 tags",
    );
    let profile = Profile::from_env();
    let packets = profile.packets(600);

    println!("{:>8} {:>14} {:>14}", "tags", "envelope", "coherent");
    let counts: Vec<usize> = vec![1, 2, 3, 4, 5];
    let rows = cbma::sim::sweep::parallel_sweep(&counts, |&n| {
        (
            n,
            fer(DecoderKind::Envelope, n, packets, 0xAB1A + n as u64),
            fer(DecoderKind::Coherent, n, packets, 0xAB1A + n as u64),
        )
    });
    for (n, env, coh) in rows {
        println!("{:>8} {:>14} {:>14}", n, pct(env), pct(coh));
    }
    println!("\nreading: single-tag performance matches (phase does not matter");
    println!("without superposition); from 2 tags up, the envelope receiver loses");
    println!("frames whenever inter-tag phases approach cancellation, which is the");
    println!("regime the paper's power-control loop spends its cycles fighting.");
}
