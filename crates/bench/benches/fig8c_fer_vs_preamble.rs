//! Fig. 8(c) — frame error rate vs preamble length.
//!
//! §VII-B.1: preamble lengths 4, 8, 16, 32, 64 bits; 2/3/4 concurrent
//! tags. Longer preambles sharpen both frame detection and the user-
//! detection correlation, so the error falls with preamble length; the
//! paper reports <1 % at 64 bits even with 4 tags.
//!
//! To expose the preamble's contribution the sweep runs at a reduced
//! excitation power (5 dBm): at the full 20 dBm every length ≥ 8 bits is
//! already error-free in our model.

use cbma::prelude::*;
use cbma_bench::{balanced_positions, header, pct, Profile};

fn engine_at(n: usize, preamble_bits: usize, seed: u64) -> Engine {
    let mut scenario = Scenario::paper_default(balanced_positions(n)).with_seed(seed);
    scenario.phy = scenario.phy.with_preamble_bits(preamble_bits);
    // Detection-limited regime: a reduced excitation power and the same
    // −70 dBm effective floor as Fig. 8(b); at the paper's full 20 dBm
    // every preamble length is detection-perfect in our model.
    scenario.link = scenario.link.with_tx_power(Dbm::new(7.0));
    scenario.noise = NoiseModel::new(Db::new(6.0), Dbm::new(-70.0));
    // A tight user-detection threshold (the paper's "predetermined
    // threshold"): the per-tag preamble correlation sits just above it,
    // so the correlation noise — which shrinks with preamble length —
    // decides detection.
    scenario.rx_config.user_threshold = 0.30;
    // Keep energy-based frame sync out of the way (it does not depend on
    // the preamble length): a gentler comparator, with false alarms still
    // suppressed by candidate validation.
    scenario.rx_config.energy_threshold_db = 1.5;
    // Bench-top conditions: without fading the per-tag correlation
    // fluctuation is purely noise-driven and scales as 1/√(preamble
    // samples) — the effect under study.
    scenario.multipath = MultipathModel::disabled();
    scenario.shadowing = ShadowingModel::disabled();
    let mut engine = Engine::new(scenario).expect("valid scenario");
    for t in engine.tags_mut() {
        t.set_impedance(ImpedanceState::Open);
    }
    engine
}

/// Frame-detection error for one run: a tag counts as detected when the
/// receiver's user detection lists it, decoded or not — Fig. 8(c) studies
/// "the error rate of frame detection", not full decode.
fn detection_error(engine: &mut Engine, packets: usize) -> f64 {
    let n = engine.tags().len();
    let mut sent = 0usize;
    let mut detected = 0usize;
    for _ in 0..packets {
        let outcome = engine.run_round();
        sent += n;
        let ids = outcome.report.detected_ids();
        detected += (0..n).filter(|i| ids.contains(i)).count();
    }
    1.0 - detected as f64 / sent as f64
}

fn main() {
    header(
        "Fig. 8(c)",
        "paper §VII-B.1, Fig. 8(c)",
        "frame-detection error rate vs preamble length, 2/3/4 tags (7 dBm excitation)",
    );
    let profile = Profile::from_env();
    let packets = profile.packets(1000);
    let lengths: Vec<usize> = vec![4, 8, 16, 32, 64];

    println!(
        "{:>12} {:>12} {:>12} {:>12}",
        "preamble", "2 tags", "3 tags", "4 tags"
    );
    let rows = cbma::sim::sweep::parallel_sweep(&lengths, |&l| {
        let err = |n: usize| {
            // Detection failures at the threshold are bursty per
            // deployment (geometry and static phases), so average over
            // several independent deployments.
            let seeds = 6;
            (0..seeds)
                .map(|s| {
                    let mut engine = engine_at(n, l, 0x0F16_8C00 + (l * 17 + s * 131 + n) as u64);
                    detection_error(&mut engine, (packets / seeds).max(30))
                })
                .sum::<f64>()
                / seeds as f64
        };
        (l, err(2), err(3), err(4))
    });
    for (l, f2, f3, f4) in rows {
        println!(
            "{:>10} b {:>12} {:>12} {:>12}",
            l,
            pct(f2),
            pct(f3),
            pct(f4)
        );
    }
    println!("\npaper shape: error falls as the preamble grows; 64-bit preambles");
    println!("push the 4-tag error below 1 %.");
}
