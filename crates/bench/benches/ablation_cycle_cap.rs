//! Ablation — the power-control cycle cap.
//!
//! §V-B: "To avoid our power control scheme to fall into an infinite
//! loop, we limit the number of execution cycles to 3 times the number of
//! tags." This bench sweeps that budget on deployments with a mix of
//! recoverable (weak-booted) and unrecoverable (position-doomed) tags and
//! reports both the final error and the control rounds actually spent —
//! showing the knee the paper's 3 n choice sits on.

use cbma::mac::power_control::{PowerController, RoundObservation};
use cbma::prelude::*;
use cbma_bench::{header, pct, Profile};

/// Runs Algorithm 1 with an explicit cycle budget (the Adapter hard-codes
/// the paper's 3 n, so this drives the controller directly).
fn run_with_cap(cap: usize, packets: usize, seed: u64) -> (f64, usize) {
    let scenario = Scenario::paper_default(vec![
        Point::new(0.0, 0.35), // healthy
        Point::new(0.5, -0.8), // recoverable: fails at 2nH, works at Open
        Point::new(1.9, 2.9),  // doomed regardless of impedance
    ])
    .with_seed(seed);
    let mut engine = Engine::new(scenario).expect("valid scenario");
    engine.tags_mut()[0].set_impedance(ImpedanceState::Open);
    engine.tags_mut()[1].set_impedance(ImpedanceState::Inductor2nH);
    engine.tags_mut()[2].set_impedance(ImpedanceState::Open);

    let mut pc = PowerController::with_cycle_budget(0.1, cap);
    let mut rounds = 0usize;
    loop {
        engine.reset_tag_stats();
        let batch = engine.run_rounds(packets.max(10) / 2);
        let decision = pc.round(&RoundObservation::from_ack_ratios(&batch.ack_ratios()));
        rounds += 1;
        if decision.is_stable() || decision.exhausted {
            break;
        }
        for &i in &decision.step_impedance {
            engine.tags_mut()[i].step_impedance();
        }
    }
    (engine.run_rounds(packets).fer(), rounds)
}

fn main() {
    header(
        "ablation: cycle cap",
        "paper §V-B (cap = 3 × number of tags)",
        "3-tag deployment (1 healthy, 1 recoverable, 1 doomed): error vs budget",
    );
    let profile = Profile::from_env();
    let packets = profile.packets(400);
    let seeds = 4u64;

    println!("{:>10} {:>12} {:>16}", "cap", "error rate", "rounds used");
    let caps: Vec<usize> = vec![1, 2, 3, 6, 9, 18, 36];
    let rows = cbma::sim::sweep::parallel_sweep(&caps, |&cap| {
        let mut fer = 0.0;
        let mut used = 0usize;
        for s in 0..seeds {
            let (f, r) = run_with_cap(cap, packets, 0xCAB0 + s * 131);
            fer += f;
            used += r;
        }
        (cap, fer / seeds as f64, used as f64 / seeds as f64)
    });
    for (cap, fer, used) in rows {
        println!("{cap:>10} {:>12} {used:>16.1}", pct(fer));
    }
    println!("\nreading: the first few cycles recover the weak-booted tag; beyond");
    println!("the paper's 3 n = 9 the loop only churns the doomed tag through its");
    println!("four states without improving anything — the cap is where the error");
    println!("curve flattens, which is why §V-B picked it.");
}
