//! Fig. 5 — theoretical backscatter signal strength over tag positions.
//!
//! Evaluates paper Eq. 1 on a grid: ES at (−50 cm, 0), RX at (50 cm, 0),
//! printing the received power in dBm per cell (an ASCII rendition of the
//! paper's heat map) plus the extrema the node-selection scheme ascends.

use cbma::prelude::*;
use cbma_bench::header;

fn main() {
    header(
        "Fig. 5",
        "paper §V-C, Fig. 5",
        "theoretical received signal strength (Eq. 1) over the deployment plane",
    );
    let link = BackscatterLink::paper_default();
    let es = Point::from_cm(-50.0, 0.0);
    let rx = Point::from_cm(50.0, 0.0);
    let (nx, ny) = (13usize, 9usize);
    let field = link.field(es, rx, Point::new(-1.2, -0.8), Point::new(1.2, 0.8), nx, ny);

    // Header row of x coordinates.
    print!("{:>7}", "y\\x");
    for cell in field.iter().take(nx) {
        print!("{:>7.2}", cell.0.x);
    }
    println!();
    for iy in (0..ny).rev() {
        print!("{:>7.2}", field[iy * nx].0.y);
        for ix in 0..nx {
            let p = field[iy * nx + ix].1;
            print!("{:>7.1}", p.get());
        }
        println!();
    }

    let best = field
        .iter()
        .max_by(|a, b| a.1.get().partial_cmp(&b.1.get()).expect("finite"))
        .expect("grid is non-empty");
    let worst = field
        .iter()
        .min_by(|a, b| a.1.get().partial_cmp(&b.1.get()).expect("finite"))
        .expect("grid is non-empty");
    println!(
        "\nstrongest cell {} at {}, weakest {} at {}",
        best.1, best.0, worst.1, worst.0
    );
    println!("shape check: strength peaks near the ES/RX and falls toward the corners,");
    println!("the gradient the greedy node-selection ascent follows (§V-C).");
}
