//! Fig. 10 — CDFs of error rate across random 5-tag deployments.
//!
//! §VII-C.1: random 5-tag deployments, three systems compared per
//! deployment: (i) no adaptation, (ii) power control, (iii) power control
//! plus node selection against a pool of idle positions. The paper's
//! observation: with power control alone only ~60 % of deployments reach
//! <5 % error; adding tag selection dominates both.

use cbma::prelude::*;
use cbma::sim::adaptation::Adapter;
use cbma::sim::deployment::random_positions;
use cbma::sim::Cdf;
use cbma_bench::{header, pct, table_area, Profile};
use rand::SeedableRng;

fn main() {
    header(
        "Fig. 10",
        "paper §VII-C.1, Fig. 10",
        "CDF of 5-tag deployment error rate: none vs power control vs +node selection",
    );
    let profile = Profile::from_env();
    let packets = profile.packets(300);
    let groups = profile.groups(50);

    let group_ids: Vec<usize> = (0..groups).collect();
    let samples = cbma::sim::sweep::parallel_sweep(&group_ids, |&g| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xF160_0000 + g as u64);
        let positions = random_positions(&mut rng, table_area(), 5, 0.10);
        let idle = random_positions(&mut rng, table_area(), 10, 0.15);
        let scenario = Scenario::paper_default(positions).with_seed(0xF16_0A00 + g as u64);

        let mut raw = Engine::new(scenario.clone()).expect("valid scenario");
        let none = raw.run_rounds(packets).fer();

        let adapter = Adapter::paper_default(packets.max(10) / 2);
        let mut pc = Engine::new(scenario.clone()).expect("valid scenario");
        let _ = adapter.run_power_control(&mut pc);
        let with_pc = pc.run_rounds(packets).fer();

        let mut ns = Engine::new(scenario).expect("valid scenario");
        let _ = adapter.run_with_node_selection(&mut ns, &idle);
        let with_ns = ns.run_rounds(packets).fer();

        (none, with_pc, with_ns)
    });

    let cdf_none = Cdf::from_samples(samples.iter().map(|s| s.0));
    let cdf_pc = Cdf::from_samples(samples.iter().map(|s| s.1));
    let cdf_ns = Cdf::from_samples(samples.iter().map(|s| s.2));

    println!(
        "{:>12} {:>14} {:>14} {:>14}",
        "error ≤", "no adaptation", "power control", "+node select"
    );
    for x in [0.01, 0.02, 0.05, 0.10, 0.15, 0.20, 0.30, 0.50] {
        println!(
            "{:>12} {:>14} {:>14} {:>14}",
            pct(x),
            pct(cdf_none.probability_at(x)),
            pct(cdf_pc.probability_at(x)),
            pct(cdf_ns.probability_at(x))
        );
    }
    println!(
        "\nmedians: none {} | power control {} | +node selection {}",
        pct(cdf_none.median()),
        pct(cdf_pc.median()),
        pct(cdf_ns.median())
    );
    println!("\npaper shape: node selection + power control dominates power control");
    println!("alone, which dominates no adaptation; with power control alone only");
    println!("~60 % of deployments achieve <5 % error.");
}
