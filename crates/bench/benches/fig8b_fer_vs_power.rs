//! Fig. 8(b) — frame error rate vs excitation-source transmit power.
//!
//! §VII-B.1: transmit power swept from −5 dBm to 20 dBm in 5 dB steps
//! (the backscatter power is linear in it, per Eq. 1), 2/3/4 concurrent
//! tags. Expected shape: error falls as power rises, and is very high at
//! −5 dBm where the backscatter signal sinks into the noise.

use cbma::prelude::*;
use cbma_bench::{balanced_positions, header, pct, Profile};

fn engine_at(n: usize, tx_dbm: f64, seed: u64) -> Engine {
    let mut scenario = Scenario::paper_default(balanced_positions(n)).with_seed(seed);
    scenario.link = scenario.link.with_tx_power(Dbm::new(tx_dbm));
    // The paper's error knee sits near 0 dBm excitation, which locates
    // their effective receiver floor around −73 dBm (ours defaults to a
    // quieter −87 dBm and would keep every point error-free).
    scenario.noise = NoiseModel::new(Db::new(6.0), Dbm::new(-73.0));
    let mut engine = Engine::new(scenario).expect("valid scenario");
    for t in engine.tags_mut() {
        t.set_impedance(ImpedanceState::Open);
    }
    engine
}

fn main() {
    header(
        "Fig. 8(b)",
        "paper §VII-B.1, Fig. 8(b)",
        "frame error rate vs excitation transmit power, 2/3/4 tags",
    );
    let profile = Profile::from_env();
    let packets = profile.packets(1000);
    let powers: Vec<f64> = vec![-5.0, 0.0, 5.0, 10.0, 15.0, 20.0];

    println!(
        "{:>10} {:>12} {:>12} {:>12}",
        "Pt (dBm)", "2 tags", "3 tags", "4 tags"
    );
    let rows = cbma::sim::sweep::parallel_sweep(&powers, |&p| {
        let fer = |n: usize| {
            engine_at(n, p, 0x0F16_8B00 + (p + 10.0) as u64)
                .run_rounds(packets)
                .fer()
        };
        (p, fer(2), fer(3), fer(4))
    });
    for (p, f2, f3, f4) in rows {
        println!("{:>10} {:>12} {:>12} {:>12}", p, pct(f2), pct(f3), pct(f4));
    }
    println!("\npaper shape: error decreases with transmit power; at −5 dBm the");
    println!("backscatter signal is buried in environmental noise and error is very high.");
}
