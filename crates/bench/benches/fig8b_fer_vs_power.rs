//! Fig. 8(b) — frame error rate vs excitation-source transmit power.
//!
//! §VII-B.1: transmit power swept from −5 dBm to 20 dBm in 5 dB steps
//! (the backscatter power is linear in it, per Eq. 1), 2/3/4 concurrent
//! tags. Expected shape: error falls as power rises, and is very high at
//! −5 dBm where the backscatter signal sinks into the noise.
//!
//! Scenario construction lives in `cbma_bench::scenarios::fig8b_engine` so
//! this bench and the harness campaigns measure the same physics.

use cbma_bench::scenarios::fig8b_engine;
use cbma_bench::{header, pct, Profile};

fn main() {
    header(
        "Fig. 8(b)",
        "paper §VII-B.1, Fig. 8(b)",
        "frame error rate vs excitation transmit power, 2/3/4 tags",
    );
    let profile = Profile::from_env();
    let packets = profile.packets(1000);
    let powers: Vec<f64> = vec![-5.0, 0.0, 5.0, 10.0, 15.0, 20.0];

    println!(
        "{:>10} {:>12} {:>12} {:>12}",
        "Pt (dBm)", "2 tags", "3 tags", "4 tags"
    );
    let rows = cbma::sim::sweep::parallel_sweep(&powers, |&p| {
        let fer = |n: usize| {
            fig8b_engine(n, p, 0x0F16_8B00 + (p + 10.0) as u64)
                .run_rounds(packets)
                .fer()
        };
        (p, fer(2), fer(3), fer(4))
    });
    for (p, f2, f3, f4) in rows {
        println!("{:>10} {:>12} {:>12} {:>12}", p, pct(f2), pct(f3), pct(f4));
    }
    println!("\npaper shape: error decreases with transmit power; at −5 dBm the");
    println!("backscatter signal is buried in environmental noise and error is very high.");
}
