//! Headline — 10-tag aggregate bitrate and the >10× throughput claim.
//!
//! §I/§VII: "The CBMA system achieves a 10-tag bit rate of 8 Mbps …
//! Compared to single-tag solutions, CBMA improves the backscatter
//! throughput by more than 10×." This bench runs 10 concurrent tags at
//! the paper's top symbol rate and compares against TDMA (one tag per
//! slot) and optimal framed slotted ALOHA under identical channel
//! conditions and equal airtime.

use cbma::mac::{AccessScheme, CbmaAccess, FsaAccess, TdmaAccess};
use cbma::prelude::*;
use cbma_bench::{balanced_positions, header, Profile};
use rand::SeedableRng;

fn engine(seed: u64) -> Engine {
    let mut scenario = Scenario::paper_default(balanced_positions(10)).with_seed(seed);
    // The paper's default symbol rate (1 symbol/µs, §III-A); at 10
    // concurrent tags this is where the paper's 8 Mbps aggregate lives.
    scenario.phy = scenario.phy.with_chip_rate(Hertz::from_mhz(1.0));
    scenario.clock.jitter_samples = scenario.phy.samples_per_chip() as f64;
    let mut e = Engine::new(scenario).expect("valid scenario");
    for t in e.tags_mut() {
        t.set_impedance(ImpedanceState::Open);
    }
    e
}

fn run(scheme: &mut dyn AccessScheme, engine: &mut Engine, slots: usize) -> (u64, f64) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xEAD11E);
    let mut delivered = 0u64;
    for _ in 0..slots {
        let tx: Vec<usize> = scheme
            .next_slot(&mut rng)
            .into_iter()
            .map(|t| t as usize)
            .collect();
        if tx.is_empty() {
            continue;
        }
        delivered += engine.run_round_subset(&tx).delivered.len() as u64;
    }
    // Aggregate modulated bitrate: delivered frames per slot × symbol rate.
    let rate = delivered as f64 / slots as f64 * engine.scenario().phy.chip_rate.get();
    (delivered, rate)
}

fn main() {
    header(
        "headline",
        "paper §I / §VII (10-tag bitrate, >10× throughput)",
        "10 concurrent tags at 1 Mbps symbols vs TDMA and slotted-ALOHA baselines",
    );
    let profile = Profile::from_env();
    let slots = profile.packets(200);

    let mut rows: Vec<(&str, u64, f64)> = Vec::new();
    {
        let mut e = engine(0xEAD);
        let (d, r) = run(&mut CbmaAccess::new(10), &mut e, slots);
        rows.push(("cbma (10 concurrent)", d, r));
    }
    {
        let mut e = engine(0xEAD);
        let (d, r) = run(&mut TdmaAccess::new(10), &mut e, slots);
        rows.push(("tdma (single tag/slot)", d, r));
    }
    {
        let mut e = engine(0xEAD);
        let (d, r) = run(&mut FsaAccess::optimal(10), &mut e, slots);
        rows.push(("fsa (frame = 10 slots)", d, r));
    }

    println!(
        "{:<26} {:>10} {:>22}",
        "scheme", "frames", "aggregate symbol rate"
    );
    for (name, frames, rate) in &rows {
        println!("{name:<26} {frames:>10} {:>17.2} Mbps", rate / 1e6);
    }
    let cbma_rate = rows[0].2;
    let tdma_rate = rows[1].2;
    let fsa_rate = rows[2].2;
    println!(
        "\nimprovement: {:.1}x over ideal TDMA, {:.1}x over FSA",
        cbma_rate / tdma_rate,
        cbma_rate / fsa_rate
    );
    // Against an *ideal* TDMA the ceiling is exactly 10×(1 − FER); real
    // single-tag systems also pay coordination airtime (downlink polls,
    // guard intervals — §I notes TDMA/FSA need a central coordinator).
    // A conservative 25 % overhead gives the deployed-system comparison.
    let tdma_deployed = tdma_rate * 0.75;
    println!(
        "improvement vs TDMA with 25 % coordination overhead: {:.1}x",
        cbma_rate / tdma_deployed
    );
    println!("\npaper: 10-tag aggregate bit rate ≈ 8 Mbps; >10× over single-tag");
    println!("solutions. (The per-tag information goodput divides the symbol rate");
    println!("by the spreading factor — see EXPERIMENTS.md for both figures.)");
}
