//! Ablation — three spreading-code families: Gold vs 2NC vs Kasami.
//!
//! Extends Fig. 9(b) with the small-set Kasami family (a reproduction
//! extension): Kasami meets the Welch bound on cross-correlation
//! (s = 2^{n/2}+1, tighter than Gold's t = 2^{n/2+1}+1 at the same
//! length), at the price of a much smaller family. The bench decodes 2–5
//! concurrent tags under each family and prints the corresponding
//! correlation analyses.

use cbma::codes::{
    CodeFamily, CorrelationReport, FamilyKind, GoldFamily, KasamiFamily, TwoNcFamily,
};
use cbma::prelude::*;
use cbma_bench::{balanced_positions, header, pct, Profile};

fn fer(family: FamilyKind, n: usize, packets: usize, seed: u64) -> f64 {
    let mut scenario = Scenario::paper_default(balanced_positions(n)).with_seed(seed);
    scenario.family = family;
    let mut engine = Engine::new(scenario).expect("valid scenario");
    for t in engine.tags_mut() {
        t.set_impedance(ImpedanceState::Open);
    }
    engine.run_rounds(packets).fer()
}

fn main() {
    header(
        "ablation: code families",
        "reproduction extension (Fig. 9(b) + Kasami)",
        "decode error per family, 2–5 concurrent tags (Gold-31 / 2NC-32 / Kasami-63)",
    );
    let profile = Profile::from_env();
    let packets = profile.packets(600);

    println!(
        "{:>8} {:>12} {:>12} {:>12}",
        "tags", "gold(31)", "2nc(32)", "kasami(63)"
    );
    let counts: Vec<usize> = vec![2, 3, 4, 5];
    let rows = cbma::sim::sweep::parallel_sweep(&counts, |&n| {
        (
            n,
            fer(
                FamilyKind::Gold { degree: 5 },
                n,
                packets,
                0xC0DE + n as u64,
            ),
            fer(
                FamilyKind::TwoNc { users: 16 },
                n,
                packets,
                0xC0DE + n as u64,
            ),
            fer(
                FamilyKind::Kasami { degree: 6 },
                n,
                packets,
                0xC0DE + n as u64,
            ),
        )
    });
    for (n, g, t, k) in rows {
        println!("{:>8} {:>12} {:>12} {:>12}", n, pct(g), pct(t), pct(k));
    }

    println!("\ncorrelation analyses (5 codes each):");
    for (label, report) in [
        (
            "gold-31 ",
            CorrelationReport::analyze(&GoldFamily::new(5).unwrap().codes(5).unwrap()),
        ),
        (
            "2nc-32  ",
            CorrelationReport::analyze(&TwoNcFamily::new(16).unwrap().codes(5).unwrap()),
        ),
        (
            "kasami63",
            CorrelationReport::analyze(&KasamiFamily::new(6).unwrap().codes(5).unwrap()),
        ),
    ] {
        println!("  {label}: {report}");
    }
    println!("\nreading: 2NC wins at full contention — exactly zero aligned cross-");
    println!("correlation beats everything when tags are near-aligned. Kasami's");
    println!("uniformly tight bound (0.143) does not pay off here: its 63-chip");
    println!("words double the per-bit airtime, so each bit integrates twice the");
    println!("oscillator-drift rotation, which costs more than the tighter bound");
    println!("saves. Gold shows the same 5-tag jump as the paper's Fig. 9(b).");
}
