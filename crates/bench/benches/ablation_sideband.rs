//! Ablation — double- vs single-sideband backscatter (paper footnote 1 /
//! ref. [10]).
//!
//! A square-wave subcarrier mirrors the excitation into both f_c ± Δf and
//! the receiver hears only one copy; single-sideband modulation recovers
//! that 3 dB. The bench sweeps excitation power at the sensitivity edge,
//! where 3 dB moves the error knee by one 5 dB step.

use cbma::prelude::*;
use cbma_bench::{balanced_positions, header, pct, Profile};

fn fer(tx_dbm: f64, ssb: bool, packets: usize) -> f64 {
    let mut scenario =
        Scenario::paper_default(balanced_positions(3)).with_seed(0x55B0 + tx_dbm as u64);
    scenario.link = scenario.link.with_tx_power(Dbm::new(tx_dbm));
    scenario.noise = NoiseModel::new(Db::new(6.0), Dbm::new(-73.0));
    if ssb {
        scenario.link = scenario.link.with_single_sideband();
    }
    let mut engine = Engine::new(scenario).expect("valid scenario");
    for t in engine.tags_mut() {
        t.set_impedance(ImpedanceState::Open);
    }
    engine.run_rounds(packets).fer()
}

fn main() {
    header(
        "ablation: sideband",
        "paper footnote 1 / ref. [10]",
        "3-tag error vs excitation power: double vs single sideband",
    );
    let profile = Profile::from_env();
    let packets = profile.packets(600);

    println!(
        "{:>10} {:>16} {:>16}",
        "Pt (dBm)", "double sideband", "single sideband"
    );
    let powers: Vec<f64> = vec![-2.0, 0.0, 2.0, 5.0, 8.0, 12.0];
    let rows = cbma::sim::sweep::parallel_sweep(&powers, |&p| {
        (p, fer(p, false, packets), fer(p, true, packets))
    });
    for (p, dsb, ssb) in rows {
        println!("{:>10} {:>16} {:>16}", p, pct(dsb), pct(ssb));
    }
    println!("\nreading: the single-sideband curve tracks the double-sideband one");
    println!("shifted left by ≈3 dB — ref. [10]'s quadrature switching buys exactly");
    println!("the mirror image back.");
}
