//! Criterion micro-benchmarks of the hot signal-processing paths.
//!
//! These are engineering benchmarks (ns/op) rather than paper
//! reproductions: sliding preamble correlation (the receiver's dominant
//! cost), per-frame decoding, spreading, FFT, and the full single-round
//! pipeline.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use cbma::codes::{CodeFamily, TwoNcFamily};
use cbma::prelude::*;
use cbma::rx::{
    CorrelationPath, Decoder, DecoderKind, DetectScratch, MultiDetectScratch, UserDetector,
};
use cbma::tag::{encoder::spread, modulator::ook_envelope, PhyProfile, Tag};

fn bench_correlation(c: &mut Criterion) {
    let phy = PhyProfile::paper_default();
    let codes = TwoNcFamily::new(10).unwrap().codes(10).unwrap();
    let detector = UserDetector::with_kind(&codes, &phy, 0.12, DecoderKind::Coherent);
    let mut tag = Tag::new(0, Point::ORIGIN, codes[0].clone());
    let env = tag.transmit(vec![0xA5; 8], &phy).unwrap();
    let mut buf = vec![Iq::ZERO; 400];
    buf.extend(env.iter().map(|&e| Iq::new(0.01 * e, 0.0)));
    buf.extend(vec![Iq::ZERO; 64]);

    // The production entry point (Auto picks FFT at this window size).
    c.bench_function("user_detect_10_codes", |b| {
        b.iter(|| detector.detect_candidates(&buf[350..3000], 350, 8))
    });
    // A/B of the two backends on the identical workload — the ≥3×
    // headline speedup of the overlap-save engine is measured here (and
    // in machine-readable form by `--example bench_summary`).
    c.bench_function("user_detect_direct", |b| {
        b.iter(|| detector.detect_candidates_with(&buf[350..3000], 350, 8, CorrelationPath::Direct))
    });
    c.bench_function("user_detect_fft", |b| {
        b.iter(|| detector.detect_candidates_with(&buf[350..3000], 350, 8, CorrelationPath::Fft))
    });
    // Shared-FFT K-code matrix pass on the steady-state (scratch-reusing)
    // entry point — the receiver's production configuration.
    c.bench_function("user_detect_batch", |b| {
        let mut scratch = DetectScratch::new();
        let mut out = Vec::new();
        b.iter(|| {
            detector.detect_candidates_in(
                &buf[350..3000],
                350,
                8,
                CorrelationPath::Batch,
                &mut scratch,
                &mut out,
            );
            out.len()
        })
    });
    // Coalesced multi-window matrix pass: four identical windows share
    // one set of forward transforms (one iteration scans all four, so
    // divide by 4 to compare per window with `user_detect_batch`).
    c.bench_function("user_detect_multiwindow_w4", |b| {
        let windows: Vec<&[Iq]> = (0..4).map(|_| &buf[350..3000]).collect();
        let origins = vec![350usize; 4];
        let mut scratch = MultiDetectScratch::new();
        let mut out = Vec::new();
        b.iter(|| {
            detector.detect_candidates_multi(&windows, &origins, 8, &mut scratch, &mut out);
            out.len()
        })
    });
}

fn bench_decode(c: &mut Criterion) {
    let phy = PhyProfile::paper_default();
    let codes = TwoNcFamily::new(10).unwrap().codes(10).unwrap();
    let decoder = Decoder::with_kind(&codes[0], &phy, DecoderKind::Coherent);
    let mut tag = Tag::new(0, Point::ORIGIN, codes[0].clone());
    let env = tag.transmit(vec![0xA5; 16], &phy).unwrap();
    let buf: Vec<Iq> = env.iter().map(|&e| Iq::new(0.01 * e, 0.0)).collect();

    c.bench_function("decode_16_byte_frame", |b| {
        b.iter(|| decoder.decode_frame(&buf, 0, Iq::new(0.01, 0.0)))
    });
}

fn bench_spreading(c: &mut Criterion) {
    let codes = TwoNcFamily::new(10).unwrap().codes(1).unwrap();
    let bits: Bits = (0..1024u32).map(|i| (i % 2) as u8).collect();
    c.bench_function("spread_1024_bits", |b| b.iter(|| spread(&bits, &codes[0])));
    let chips = spread(&bits, &codes[0]);
    c.bench_function("ook_envelope_1024_bits", |b| {
        b.iter(|| ook_envelope(&chips, 8))
    });
}

fn bench_fft(c: &mut Criterion) {
    let buf: Vec<Iq> = (0..1024).map(|i| Iq::phasor(0.1 * i as f64)).collect();
    c.bench_function("fft_1024", |b| {
        b.iter_batched(
            || buf.clone(),
            |mut x| cbma::dsp::fft::fft_in_place(&mut x).unwrap(),
            BatchSize::SmallInput,
        )
    });
}

fn bench_full_round(c: &mut Criterion) {
    let scenario = Scenario::paper_default(vec![
        Point::new(0.0, 0.4),
        Point::new(0.0, -0.4),
        Point::new(0.15, 0.55),
    ]);
    let mut engine = Engine::new(scenario).unwrap();
    c.bench_function("full_round_3_tags", |b| b.iter(|| engine.run_round()));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_correlation, bench_decode, bench_spreading, bench_fft, bench_full_round
}
criterion_main!(benches);
