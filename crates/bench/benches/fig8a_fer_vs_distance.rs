//! Fig. 8(a) — frame error rate vs tag-to-receiver distance.
//!
//! §VII-B.1: ES-to-tag distance fixed at 50 cm; tag-to-RX distance swept
//! from 10 cm to 400 cm; 2, 3 and 4 concurrent tags; 1000 collided
//! packets per point (fast profile scales this down). Expected shape:
//! roughly flat below ~2 m, rising with distance beyond, and more tags →
//! higher error.

use cbma::prelude::*;
use cbma_bench::{header, pct, Profile};

/// Places `n` tags clustered 50 cm from the ES, then slides the receiver
/// so the tag-to-RX distance is `d` meters (the paper moves the RX; the
/// link budget only sees the two distances).
fn scenario_at(n: usize, d_cm: f64, seed: u64) -> Engine {
    // Tags in a tight cluster around (0, 0.5): 50 cm from the ES at
    // (-0.5 ... use ES at origin side. Geometry: ES at (0,0); tags near
    // (0.5, 0); RX at (0.5 + d, 0).
    let offsets = [(0.0, 0.0), (0.0, 0.12), (0.0, -0.12), (0.12, 0.0)];
    let tags: Vec<Point> = (0..n)
        .map(|i| Point::new(0.5 + offsets[i].0, offsets[i].1))
        .collect();
    let mut scenario = Scenario::paper_default(tags).with_seed(seed);
    scenario.es = Point::new(0.0, 0.0);
    scenario.rx = Point::new(0.5 + d_cm / 100.0, 0.0);
    // The paper's FER starts rising beyond ~2 m. Pure AWGN cannot produce
    // that (the despreading gain keeps Eb/N0 huge at 4 m); what grows with
    // indoor range is the scattered-to-LOS ratio, so the Rician K-factor
    // decays with the tag→RX distance: clean LOS on the bench, fading-
    // dominated at the far end of the office.
    let d_m = (d_cm / 100.0).max(0.1);
    scenario.multipath = MultipathModel {
        k_factor: (12.0 / d_m).clamp(2.0, 24.0),
        ..MultipathModel::indoor_default()
    };
    let mut engine = Engine::new(scenario).expect("valid scenario");
    for t in engine.tags_mut() {
        t.set_impedance(ImpedanceState::Open);
    }
    engine
}

fn main() {
    header(
        "Fig. 8(a)",
        "paper §VII-B.1, Fig. 8(a)",
        "frame error rate vs tag→RX distance (ES→tag fixed at 50 cm), 2/3/4 tags",
    );
    let profile = Profile::from_env();
    let packets = profile.packets(1000);
    // The paper steps 10 cm from 10 to 400 cm; the fast profile uses a
    // coarser 14-point grid with the same span.
    let distances: Vec<f64> = if profile == Profile::Full {
        (1..=40).map(|i| i as f64 * 10.0).collect()
    } else {
        vec![
            10.0, 25.0, 50.0, 75.0, 100.0, 125.0, 150.0, 175.0, 200.0, 250.0, 300.0, 350.0, 400.0,
        ]
    };

    println!(
        "{:>10} {:>12} {:>12} {:>12}",
        "d (cm)", "2 tags", "3 tags", "4 tags"
    );
    let rows = cbma::sim::sweep::parallel_sweep(&distances, |&d| {
        let fer = |n: usize| {
            scenario_at(n, d, 0x0F16_8A00 + d as u64)
                .run_rounds(packets)
                .fer()
        };
        (d, fer(2), fer(3), fer(4))
    });
    for (d, f2, f3, f4) in rows {
        println!("{:>10} {:>12} {:>12} {:>12}", d, pct(f2), pct(f3), pct(f4));
    }
    println!("\npaper shape: near-constant error below 2 m (lowest for 2 tags),");
    println!("slightly increasing with distance beyond 2 m.");
}
