//! Fig. 8(a) — frame error rate vs tag-to-receiver distance.
//!
//! §VII-B.1: ES-to-tag distance fixed at 50 cm; tag-to-RX distance swept
//! from 10 cm to 400 cm; 2, 3 and 4 concurrent tags; 1000 collided
//! packets per point (fast profile scales this down). Expected shape:
//! roughly flat below ~2 m, rising with distance beyond, and more tags →
//! higher error.
//!
//! The scenario construction lives in `cbma_bench::scenarios::fig8a_engine`
//! so this bench and the `fig8a` campaign in `cbma-harness` measure the
//! same physics.

use cbma_bench::scenarios::fig8a_engine;
use cbma_bench::{header, pct, Profile};

fn main() {
    header(
        "Fig. 8(a)",
        "paper §VII-B.1, Fig. 8(a)",
        "frame error rate vs tag→RX distance (ES→tag fixed at 50 cm), 2/3/4 tags",
    );
    let profile = Profile::from_env();
    let packets = profile.packets(1000);
    // The paper steps 10 cm from 10 to 400 cm; the fast profile uses a
    // coarser 14-point grid with the same span.
    let distances: Vec<f64> = if profile == Profile::Full {
        (1..=40).map(|i| i as f64 * 10.0).collect()
    } else {
        vec![
            10.0, 25.0, 50.0, 75.0, 100.0, 125.0, 150.0, 175.0, 200.0, 250.0, 300.0, 350.0, 400.0,
        ]
    };

    println!(
        "{:>10} {:>12} {:>12} {:>12}",
        "d (cm)", "2 tags", "3 tags", "4 tags"
    );
    let rows = cbma::sim::sweep::parallel_sweep(&distances, |&d| {
        let fer = |n: usize| {
            fig8a_engine(n, d, 0x0F16_8A00 + d as u64)
                .run_rounds(packets)
                .fer()
        };
        (d, fer(2), fer(3), fer(4))
    });
    for (d, f2, f3, f4) in rows {
        println!("{:>10} {:>12} {:>12} {:>12}", d, pct(f2), pct(f3), pct(f4));
    }
    println!("\npaper shape: near-constant error below 2 m (lowest for 2 tags),");
    println!("slightly increasing with distance beyond 2 m.");
}
