//! Fig. 9(c) — error rate with vs without power control.
//!
//! §VII-B.3: for 2–5 tags, 50 groups of random positions each (fast
//! profile scales the group count); every group is measured once with the
//! tags at their arbitrary boot impedance states (no power control) and
//! once after Algorithm 1 converges. The paper reports ≤5 % error with
//! power control at 5 tags and a ~5× gap at 5 tags.
//!
//! Deployment construction lives in `cbma_bench::scenarios::fig9c_scenario`
//! so this bench and the `fig9c` campaign in `cbma-harness` measure the
//! same groups: positions and channel seed derive from `(n, group)`, and
//! both arms of each group share the same deployment.

use cbma::prelude::*;
use cbma_bench::scenarios::{fig9c_power_control, fig9c_scenario};
use cbma_bench::{header, pct, Profile};

fn main() {
    header(
        "Fig. 9(c)",
        "paper §VII-B.3, Fig. 9(c)",
        "error rate with vs without Algorithm 1 power control, 2–5 tags",
    );
    let profile = Profile::from_env();
    let packets = profile.packets(300);
    let groups = profile.groups(50);

    println!(
        "{:>8} {:>16} {:>16} {:>10}",
        "tags", "no power ctl", "with power ctl", "gain"
    );
    let counts: Vec<usize> = vec![2, 3, 4, 5];
    let rows = cbma::sim::sweep::parallel_sweep(&counts, |&n| {
        let mut no_pc = 0.0;
        let mut with_pc = 0.0;
        for g in 0..groups {
            let scenario = fig9c_scenario(n, g as u64);
            // Without power control: arbitrary boot impedance states.
            let mut raw = Engine::new(scenario.clone()).expect("valid scenario");
            no_pc += raw.run_rounds(packets).fer();
            // With power control: Algorithm 1 to convergence, then measure.
            let mut adapted = Engine::new(scenario).expect("valid scenario");
            fig9c_power_control(&mut adapted, packets.max(10) / 2);
            with_pc += adapted.run_rounds(packets).fer();
        }
        (n, no_pc / groups as f64, with_pc / groups as f64)
    });
    for (n, raw, pc) in rows {
        println!(
            "{:>8} {:>16} {:>16} {:>9.2}x",
            n,
            pct(raw),
            pct(pc),
            raw / pc.max(1e-4)
        );
    }
    println!("\npaper shape: error grows with tag count; power control reduces it at");
    println!("every count (the paper reports ≤5 % at 5 tags with control, ~5× gain).");
    println!("note: our coherent receiver is less power-sensitive than the paper's");
    println!("envelope receiver, so the absolute gain is smaller — see EXPERIMENTS.md.");
}
