//! Frozen metric snapshots: merging (for parallel sweeps) and the JSON
//! exchange format behind the `BENCH_*.json` artifacts.

use std::collections::BTreeMap;

use crate::json::{write_f64, write_json_string, JsonError, JsonValue};

/// A frozen histogram: sparse non-empty buckets plus summary statistics.
///
/// `buckets` holds `(bucket index, count)` pairs sorted by index; bucket
/// semantics are those of [`crate::Histogram::bucket_index`] (bucket 0 is
/// the value 0, bucket `k` spans `[2^(k-1), 2^k)`).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// Sparse `(bucket index, count)` pairs, ascending by index.
    pub buckets: Vec<(u8, u64)>,
}

impl HistogramSnapshot {
    /// Mean sample, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Merges another histogram's samples into this one.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.count += other.count;
        self.sum += other.sum;
        let mut merged: BTreeMap<u8, u64> = self.buckets.iter().copied().collect();
        for &(idx, n) in &other.buckets {
            *merged.entry(idx).or_insert(0) += n;
        }
        self.buckets = merged.into_iter().collect();
    }
}

/// Errors decoding a snapshot from JSON.
#[derive(Debug, Clone, PartialEq)]
pub enum SnapshotError {
    /// The document was not valid JSON.
    Json(JsonError),
    /// The JSON was valid but not snapshot-shaped.
    Shape(String),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Json(e) => write!(f, "snapshot json: {e}"),
            SnapshotError::Shape(msg) => write!(f, "snapshot shape: {msg}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<JsonError> for SnapshotError {
    fn from(e: JsonError) -> SnapshotError {
        SnapshotError::Json(e)
    }
}

/// Every metric in a registry at one instant.
#[derive(Debug, Clone, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge levels by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl Snapshot {
    /// An empty snapshot.
    pub fn new() -> Snapshot {
        Snapshot::default()
    }

    /// Number of distinct named metrics.
    pub fn metric_count(&self) -> usize {
        self.counters.len() + self.gauges.len() + self.histograms.len()
    }

    /// Merges another snapshot: counters and histogram contents add;
    /// gauges keep the **maximum** (across sweep workers a gauge is a
    /// high-water mark — there is no meaningful "last" writer).
    ///
    /// Merging is commutative and associative, so shards can be folded
    /// in any order and any partition and produce the same snapshot —
    /// the property the live aggregator and the multi-process sharding
    /// plan both rely on.
    pub fn merge(&mut self, other: &Snapshot) {
        for (name, value) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += value;
        }
        for (name, value) in &other.gauges {
            match self.gauges.get_mut(name) {
                Some(entry) => *entry = merge_gauge(*entry, *value),
                None => {
                    self.gauges.insert(name.clone(), *value);
                }
            }
        }
        for (name, hist) in &other.histograms {
            self.histograms.entry(name.clone()).or_default().merge(hist);
        }
    }

    /// Returns a copy containing only the metrics whose name passes
    /// `keep`. Used by campaign manifests to project a snapshot down to a
    /// reproducible subset before embedding it in an artifact.
    pub fn retain_metrics<F: Fn(&str) -> bool>(&self, keep: F) -> Snapshot {
        Snapshot {
            counters: self
                .counters
                .iter()
                .filter(|(name, _)| keep(name))
                .map(|(name, v)| (name.clone(), *v))
                .collect(),
            gauges: self
                .gauges
                .iter()
                .filter(|(name, _)| keep(name))
                .map(|(name, v)| (name.clone(), *v))
                .collect(),
            histograms: self
                .histograms
                .iter()
                .filter(|(name, _)| keep(name))
                .map(|(name, h)| (name.clone(), h.clone()))
                .collect(),
        }
    }

    /// Drops wall-clock timing metrics (names ending in `_ns`). Timing
    /// histograms vary run-to-run even for bit-identical simulations, so
    /// artifacts that must be byte-identical across same-seed runs embed
    /// this projection instead of the raw snapshot.
    pub fn without_timings(&self) -> Snapshot {
        self.retain_metrics(|name| !name.ends_with("_ns"))
    }

    /// Drops every run-to-run volatile metric: wall-clock timings
    /// (`*_ns`), memory levels (`*_bytes`, e.g. scratch-arena high-water
    /// gauges, which depend on allocator rounding and capture coalescing
    /// order), and scheduling placement (`cbma.rx.runtime.worker.*`
    /// steal/local-hit counters, `cbma.rx.runtime.ring_depth`,
    /// `cbma.rx.runtime.pool_utilization`), which depend on thread
    /// interleaving even though the *decisions* they accompany are
    /// bit-identical across schedulers. This is the projection
    /// deterministic campaign manifests embed;
    /// [`Snapshot::without_timings`] remains for consumers that want the
    /// memory levels kept.
    pub fn without_volatile(&self) -> Snapshot {
        self.retain_metrics(|name| {
            !name.ends_with("_ns")
                && !name.ends_with("_bytes")
                && !name.starts_with("cbma.rx.runtime.worker.")
                && name != "cbma.rx.runtime.ring_depth"
                && name != "cbma.rx.runtime.pool_utilization"
        })
    }

    /// Serializes to a stable, human-diffable JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    ");
            write_json_string(&mut out, name);
            out.push_str(&format!(": {value}"));
        }
        if !self.counters.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"gauges\": {");
        for (i, (name, value)) in self.gauges.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    ");
            write_json_string(&mut out, name);
            out.push_str(": ");
            write_f64(&mut out, *value);
        }
        if !self.gauges.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"histograms\": {");
        for (i, (name, hist)) in self.histograms.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    ");
            write_json_string(&mut out, name);
            out.push_str(&format!(
                ": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \"buckets\": [",
                hist.count,
                hist.sum,
                hist.min,
                hist.max,
                hist.quantile(0.50).unwrap_or(0),
                hist.quantile(0.90).unwrap_or(0),
                hist.quantile(0.99).unwrap_or(0)
            ));
            for (j, (idx, n)) in hist.buckets.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("[{idx}, {n}]"));
            }
            out.push_str("]}");
        }
        if !self.histograms.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }

    /// Parses a document produced by [`Snapshot::to_json`].
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Json`] for malformed JSON, [`SnapshotError::Shape`]
    /// for valid JSON that is not a snapshot.
    pub fn from_json(text: &str) -> Result<Snapshot, SnapshotError> {
        let value = JsonValue::parse(text)?;
        let root = value
            .as_object()
            .ok_or_else(|| SnapshotError::Shape("top level must be an object".into()))?;
        let mut snapshot = Snapshot::new();

        if let Some(counters) = root.get("counters") {
            let map = counters
                .as_object()
                .ok_or_else(|| SnapshotError::Shape("\"counters\" must be an object".into()))?;
            for (name, v) in map {
                let value = v.as_u64().ok_or_else(|| {
                    SnapshotError::Shape(format!("counter {name:?} must be a u64"))
                })?;
                snapshot.counters.insert(name.clone(), value);
            }
        }
        if let Some(gauges) = root.get("gauges") {
            let map = gauges
                .as_object()
                .ok_or_else(|| SnapshotError::Shape("\"gauges\" must be an object".into()))?;
            for (name, v) in map {
                let value = v.as_f64().ok_or_else(|| {
                    SnapshotError::Shape(format!("gauge {name:?} must be a number"))
                })?;
                snapshot.gauges.insert(name.clone(), value);
            }
        }
        if let Some(histograms) = root.get("histograms") {
            let map = histograms
                .as_object()
                .ok_or_else(|| SnapshotError::Shape("\"histograms\" must be an object".into()))?;
            for (name, v) in map {
                snapshot
                    .histograms
                    .insert(name.clone(), parse_histogram(name, v)?);
            }
        }
        Ok(snapshot)
    }
}

/// Commutative, NaN-tolerant gauge merge: the larger finite value wins,
/// a `NaN` loses to anything, and ties (including `-0.0` vs `0.0`) are
/// broken by `total_cmp` so the result — and its serialization — is
/// independent of merge order.
fn merge_gauge(a: f64, b: f64) -> f64 {
    if a.is_nan() {
        b
    } else if b.is_nan() {
        a
    } else if a.total_cmp(&b) == std::cmp::Ordering::Less {
        b
    } else {
        a
    }
}

fn parse_histogram(name: &str, value: &JsonValue) -> Result<HistogramSnapshot, SnapshotError> {
    let obj = value
        .as_object()
        .ok_or_else(|| SnapshotError::Shape(format!("histogram {name:?} must be an object")))?;
    let field = |key: &str| -> Result<u64, SnapshotError> {
        obj.get(key)
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| SnapshotError::Shape(format!("histogram {name:?} needs u64 {key:?}")))
    };
    let mut hist = HistogramSnapshot {
        count: field("count")?,
        sum: field("sum")?,
        min: field("min")?,
        max: field("max")?,
        buckets: Vec::new(),
    };
    let buckets = obj
        .get("buckets")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| SnapshotError::Shape(format!("histogram {name:?} needs a bucket array")))?;
    for pair in buckets {
        let pair = pair.as_array().filter(|p| p.len() == 2).ok_or_else(|| {
            SnapshotError::Shape(format!("histogram {name:?} buckets must be [index, count]"))
        })?;
        let idx = pair[0].as_u64().filter(|&i| i < 65).ok_or_else(|| {
            SnapshotError::Shape(format!("histogram {name:?} bucket index out of range"))
        })?;
        let n = pair[1].as_u64().ok_or_else(|| {
            SnapshotError::Shape(format!("histogram {name:?} bucket count must be u64"))
        })?;
        hist.buckets.push((idx as u8, n));
    }
    Ok(hist)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;

    fn sample_snapshot() -> Snapshot {
        let reg = MetricsRegistry::new();
        reg.counter("cbma.rx.users_decoded").add(7);
        reg.counter("cbma.sim.rounds").add(3);
        reg.gauge("cbma.sim.delivery_ratio").set(0.75);
        let h = reg.histogram("cbma.rx.stage.decode_ns");
        for v in [100u64, 1000, 100_000, 0] {
            h.record(v);
        }
        reg.snapshot()
    }

    #[test]
    fn json_round_trip_is_identity() {
        let snap = sample_snapshot();
        let json = snap.to_json();
        let parsed = Snapshot::from_json(&json).unwrap();
        assert_eq!(parsed, snap);
        // And the round-trip is a fixed point.
        assert_eq!(parsed.to_json(), json);
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let snap = Snapshot::new();
        assert_eq!(Snapshot::from_json(&snap.to_json()).unwrap(), snap);
        assert_eq!(snap.metric_count(), 0);
    }

    #[test]
    fn merge_adds_counters_and_histograms_maxes_gauges() {
        let mut a = sample_snapshot();
        let b = sample_snapshot();
        a.merge(&b);
        assert_eq!(a.counters["cbma.rx.users_decoded"], 14);
        assert_eq!(a.gauges["cbma.sim.delivery_ratio"], 0.75);
        let h = &a.histograms["cbma.rx.stage.decode_ns"];
        assert_eq!(h.count, 8);
        assert_eq!(h.sum, 2 * 101_100);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 100_000);
    }

    #[test]
    fn merge_into_empty_copies() {
        let mut a = Snapshot::new();
        let b = sample_snapshot();
        a.merge(&b);
        assert_eq!(a, b);
    }

    #[test]
    fn merge_histogram_with_empty_is_identity() {
        let mut h = HistogramSnapshot {
            count: 2,
            sum: 5,
            min: 1,
            max: 4,
            buckets: vec![(1, 1), (3, 1)],
        };
        let before = h.clone();
        h.merge(&HistogramSnapshot::default());
        assert_eq!(h, before);
    }

    #[test]
    fn malformed_snapshots_are_rejected() {
        assert!(matches!(
            Snapshot::from_json("not json"),
            Err(SnapshotError::Json(_))
        ));
        assert!(matches!(
            Snapshot::from_json("[1, 2]"),
            Err(SnapshotError::Shape(_))
        ));
        assert!(matches!(
            Snapshot::from_json(r#"{"counters": {"x": -1}}"#),
            Err(SnapshotError::Shape(_))
        ));
        assert!(matches!(
            Snapshot::from_json(r#"{"histograms": {"h": {"count": 1}}}"#),
            Err(SnapshotError::Shape(_))
        ));
        assert!(matches!(
            Snapshot::from_json(r#"{"histograms": {"h": {"count": 0, "sum": 0, "min": 0, "max": 0, "buckets": [[70, 1]]}}}"#),
            Err(SnapshotError::Shape(_))
        ));
    }

    #[test]
    fn retain_metrics_projects_all_three_kinds() {
        let snap = sample_snapshot();
        let rx_only = snap.retain_metrics(|name| name.starts_with("cbma.rx."));
        assert_eq!(rx_only.counters.len(), 1);
        assert_eq!(rx_only.counters["cbma.rx.users_decoded"], 7);
        assert!(rx_only.gauges.is_empty());
        assert_eq!(rx_only.histograms.len(), 1);
        // Keeping everything is the identity.
        assert_eq!(snap.retain_metrics(|_| true), snap);
        // Keeping nothing empties the snapshot.
        assert_eq!(snap.retain_metrics(|_| false), Snapshot::new());
    }

    #[test]
    fn without_timings_drops_ns_metrics_only() {
        let snap = sample_snapshot();
        let filtered = snap.without_timings();
        assert!(!filtered.histograms.contains_key("cbma.rx.stage.decode_ns"));
        assert_eq!(filtered.counters, snap.counters);
        assert_eq!(filtered.gauges, snap.gauges);
        // Round-trips like any other snapshot.
        assert_eq!(Snapshot::from_json(&filtered.to_json()).unwrap(), filtered);
    }

    #[test]
    fn without_volatile_drops_ns_and_bytes_metrics() {
        let mut snap = sample_snapshot();
        snap.gauges.insert("cbma.rx.scratch_bytes".into(), 8192.0);
        let filtered = snap.without_volatile();
        assert!(!filtered.histograms.contains_key("cbma.rx.stage.decode_ns"));
        assert!(!filtered.gauges.contains_key("cbma.rx.scratch_bytes"));
        // Deterministic metrics survive untouched.
        assert_eq!(filtered.counters, snap.counters);
        assert_eq!(filtered.gauges["cbma.sim.delivery_ratio"], 0.75);
        // without_timings keeps the memory level; without_volatile is the
        // strictly smaller projection.
        assert!(snap
            .without_timings()
            .gauges
            .contains_key("cbma.rx.scratch_bytes"));
    }

    #[test]
    fn without_volatile_drops_scheduler_placement_metrics() {
        let mut snap = sample_snapshot();
        snap.counters
            .insert("cbma.rx.runtime.worker.steal_count".into(), 3);
        snap.counters
            .insert("cbma.rx.runtime.worker.local_hit".into(), 41);
        snap.gauges.insert("cbma.rx.runtime.ring_depth".into(), 2.0);
        snap.gauges
            .insert("cbma.rx.runtime.pool_utilization".into(), 0.5);
        let filtered = snap.without_volatile();
        // Placement metrics vary with thread interleaving and must not
        // leak into deterministic manifests.
        assert!(!filtered
            .counters
            .keys()
            .any(|name| name.starts_with("cbma.rx.runtime.worker.")));
        assert!(!filtered.gauges.contains_key("cbma.rx.runtime.ring_depth"));
        assert!(!filtered
            .gauges
            .contains_key("cbma.rx.runtime.pool_utilization"));
        // Decision-carrying runtime metrics survive.
        assert_eq!(
            filtered.counters["cbma.rx.users_decoded"],
            snap.counters["cbma.rx.users_decoded"]
        );
    }

    #[test]
    fn gauge_merge_is_commutative_even_with_nan() {
        let cases: &[(f64, f64)] = &[
            (1.0, 2.0),
            (f64::NAN, 2.0),
            (2.0, f64::NAN),
            (f64::NAN, f64::NAN),
            (-0.0, 0.0),
            (f64::NEG_INFINITY, -1.0),
        ];
        for &(x, y) in cases {
            let mut a = Snapshot::new();
            a.gauges.insert("g".into(), x);
            let mut b = Snapshot::new();
            b.gauges.insert("g".into(), y);
            let mut ab = a.clone();
            ab.merge(&b);
            let mut ba = b.clone();
            ba.merge(&a);
            // Byte-identical serialization regardless of merge order.
            assert_eq!(ab.to_json(), ba.to_json(), "merge({x}, {y}) order-dependent");
        }
        // NaN merged into an empty snapshot must not conjure -inf.
        let mut empty = Snapshot::new();
        let mut nan = Snapshot::new();
        nan.gauges.insert("g".into(), f64::NAN);
        empty.merge(&nan);
        assert!(empty.gauges["g"].is_nan());
    }

    #[test]
    fn histogram_json_exports_quantiles() {
        let snap = sample_snapshot();
        let json = snap.to_json();
        assert!(json.contains("\"p50\": "));
        assert!(json.contains("\"p90\": "));
        assert!(json.contains("\"p99\": "));
        // Quantile keys are derived, not stored: the parse ignores them
        // and the round-trip stays a fixed point.
        let parsed = Snapshot::from_json(&json).unwrap();
        assert_eq!(parsed.to_json(), json);
    }

    #[test]
    fn gauge_values_survive_json() {
        let mut snap = Snapshot::new();
        snap.gauges.insert("g.fraction".into(), 0.1 + 0.2);
        snap.gauges.insert("g.negative".into(), -3.5);
        snap.gauges.insert("g.integral".into(), 4.0);
        let parsed = Snapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(parsed, snap);
    }
}
