//! Pipeline observability for the CBMA stack.
//!
//! The paper's whole evaluation (§VIII, Figs. 8–12) is about *why* frames
//! are lost — detection misses, SIC residue, asynchrony, power imbalance —
//! so the reproduction needs the same visibility: per-stage timing,
//! domain counters, and structured per-round events, without slowing the
//! hot path down when nobody is looking.
//!
//! Three pieces, all std-only (the crate has **zero dependencies by
//! default**):
//!
//! * [`MetricsRegistry`] — named [`Counter`]s, [`Gauge`]s and
//!   log₂-bucketed [`Histogram`]s. Handles are `Arc`'d atomics: recording
//!   is lock-free and `&self`, so the receiver can record from its
//!   immutable `receive` path and sweep workers can merge registries at
//!   join via [`Snapshot::merge`].
//! * [`StageTimer`] — a scoped span over a histogram using monotonic
//!   [`std::time::Instant`] timing; records nanoseconds on drop (or
//!   explicitly via [`StageTimer::stop`]).
//! * [`Sink`] — a pluggable structured-event consumer. [`NoopSink`]
//!   reports `enabled() == false`, so instrumented call sites guard with
//!   one virtual call and skip event construction entirely; the hot path
//!   with the no-op sink costs nothing beyond that boolean.
//! * [`Tracer`] — hierarchical span trees (capture → stage → kernel) in a
//!   bounded lock-free ring, exported as Chrome trace-event JSON for
//!   Perfetto/`chrome://tracing` ([`Tracer::chrome_trace`]). Like sinks,
//!   tracing is opt-in: uninstrumented paths pay one `Option` branch.
//!
//! [`MetricsRegistry::snapshot`] freezes everything into a [`Snapshot`]
//! that serializes to JSON ([`Snapshot::to_json`] /
//! [`Snapshot::from_json`]) for the `bench_summary` artifacts and CI
//! diffing. With the `serde` feature the snapshot types additionally
//! derive `Serialize`/`Deserialize`.
//!
//! # Metric naming scheme
//!
//! Dotted lowercase paths, one namespace per layer:
//!
//! * `cbma.rx.*` — receiver pipeline (e.g. `cbma.rx.stage.user_detect_ns`,
//!   `cbma.rx.candidates`, `cbma.rx.sic_recovered`),
//! * `cbma.sim.*` — simulation engine and adaptation (e.g.
//!   `cbma.sim.rounds`, `cbma.sim.frames_delivered`,
//!   `cbma.sim.power_control_steps`).
//!
//! # Examples
//!
//! ```
//! use cbma_obs::MetricsRegistry;
//!
//! let registry = MetricsRegistry::new();
//! let decoded = registry.counter("cbma.rx.users_decoded");
//! let span_ns = registry.histogram("cbma.rx.stage.decode_ns");
//!
//! decoded.inc();
//! {
//!     let _span = span_ns.time(); // records on drop
//! }
//!
//! let snap = registry.snapshot();
//! assert_eq!(snap.counters["cbma.rx.users_decoded"], 1);
//! assert_eq!(snap.histograms["cbma.rx.stage.decode_ns"].count, 1);
//! let json = snap.to_json();
//! assert_eq!(cbma_obs::Snapshot::from_json(&json).unwrap(), snap);
//! ```

pub mod json;
pub mod metrics;
pub mod quantile;
pub mod sink;
pub mod snapshot;
pub mod timer;
pub mod trace;

pub use metrics::{Counter, Gauge, Histogram, MetricsRegistry};
pub use quantile::Quantiles;
pub use sink::{Event, FieldValue, NoopSink, RecordingSink, Sink};
pub use snapshot::{HistogramSnapshot, Snapshot, SnapshotError};
pub use timer::StageTimer;
pub use trace::{SpanGuard, SpanId, SpanRecord, TraceId, Tracer};
