//! Scoped stage spans over monotonic time.

use std::time::Instant;

use crate::metrics::Histogram;

/// A scoped span: started against a [`Histogram`], it records its elapsed
/// **nanoseconds** when dropped, or explicitly via [`StageTimer::stop`]
/// (which also returns the measurement).
///
/// Timing uses [`Instant`], the monotonic clock — wall-clock steps (NTP,
/// suspend) cannot produce negative or wildly wrong spans.
///
/// # Examples
///
/// ```
/// use cbma_obs::Histogram;
///
/// let hist = Histogram::new();
/// {
///     let _span = hist.time();
///     // … stage work …
/// } // recorded here
/// assert_eq!(hist.count(), 1);
/// ```
#[derive(Debug)]
pub struct StageTimer {
    hist: Option<Histogram>,
    start: Instant,
}

impl StageTimer {
    /// Starts a span that will record into `hist`.
    pub fn start(hist: Histogram) -> StageTimer {
        StageTimer {
            hist: Some(hist),
            start: Instant::now(),
        }
    }

    /// Nanoseconds elapsed so far (the span keeps running).
    pub fn elapsed_ns(&self) -> u64 {
        self.start.elapsed().as_nanos().min(u64::MAX as u128) as u64
    }

    /// Stops the span, records it, and returns the elapsed nanoseconds.
    pub fn stop(mut self) -> u64 {
        let ns = self.elapsed_ns();
        if let Some(hist) = self.hist.take() {
            hist.record(ns);
        }
        ns
    }
}

impl Drop for StageTimer {
    fn drop(&mut self) {
        if let Some(hist) = self.hist.take() {
            hist.record(self.start.elapsed().as_nanos().min(u64::MAX as u128) as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drop_records_once() {
        let hist = Histogram::new();
        {
            let _span = hist.time();
        }
        assert_eq!(hist.count(), 1);
    }

    #[test]
    fn stop_records_once_and_returns_elapsed() {
        let hist = Histogram::new();
        let span = hist.time();
        std::thread::sleep(std::time::Duration::from_millis(1));
        let ns = span.stop(); // drop after stop must not double-record
        assert!(ns >= 1_000_000, "measured {ns} ns");
        assert_eq!(hist.count(), 1);
        assert_eq!(hist.sum(), ns);
    }

    #[test]
    fn elapsed_is_monotone_nonnegative() {
        let hist = Histogram::new();
        let span = hist.time();
        let a = span.elapsed_ns();
        let b = span.elapsed_ns();
        assert!(b >= a);
    }
}
