//! Hierarchical span tracing with Chrome trace-event export.
//!
//! A [`Tracer`] records **span trees**: each span has a name, a parent, a
//! trace id grouping one capture's spans together, and a `[start, start +
//! duration)` window measured against the tracer's monotonic epoch. The
//! receiver opens a `capture` root span per processed buffer, one child
//! span per pipeline stage (`frame_sync`, `user_detect`, `decode`, `sic`)
//! and kernel-level grandchildren (per-code `correlate` spans, shared-FFT
//! `fft_block` spans), so a single capture renders as a flame graph.
//!
//! Storage is a **bounded ring**: slot claims are a single lock-free
//! `fetch_add` on an atomic cursor (wrapping modulo capacity), so writers
//! never contend on a shared lock; each claimed slot is then published
//! under its own tiny per-slot mutex (held only for the record copy).
//! When the ring wraps, the oldest spans are overwritten — a long
//! instrumented campaign keeps the most recent history and
//! [`Tracer::dropped`] counts what was evicted.
//!
//! [`Tracer::chrome_trace`] exports the buffer in the Chrome trace-event
//! format (an object with a `traceEvents` array of `"ph": "X"` complete
//! events, timestamps in microseconds), which opens directly in Perfetto
//! or `chrome://tracing`.
//!
//! Cost model: like the metric handles, tracing is strictly opt-in. The
//! receiver and engine hold `Option<Tracer>` — `None` (the default) costs
//! one branch per stage and nothing else, preserving the NoopSink-is-free
//! guarantee.
//!
//! # Examples
//!
//! ```
//! use cbma_obs::trace::Tracer;
//!
//! let tracer = Tracer::new(64);
//! let trace = tracer.new_trace();
//! let capture = tracer.span(trace, None, "capture");
//! {
//!     let _stage = tracer.span(trace, Some(capture.id()), "frame_sync");
//! } // recorded on drop
//! capture.finish();
//!
//! let spans = tracer.spans();
//! assert_eq!(spans.len(), 2);
//! let json = tracer.chrome_trace(None);
//! assert!(json.contains("\"traceEvents\""));
//! ```

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::json::JsonValue;

/// Groups the spans of one capture (or one round) together.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(u64);

impl TraceId {
    /// The raw id (always non-zero).
    #[inline]
    pub fn get(self) -> u64 {
        self.0
    }
}

/// Identifies one span within a tracer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanId(u64);

impl SpanId {
    /// The raw id (always non-zero; `0` marks "no parent" in records).
    #[inline]
    pub fn get(self) -> u64 {
        self.0
    }
}

/// One completed span as stored in the ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// Global claim order (monotonic across the whole tracer); export
    /// sorts by this so wrapped rings still render in record order.
    pub seq: u64,
    /// The trace this span belongs to.
    pub trace: u64,
    /// This span's id.
    pub span: u64,
    /// Parent span id, `0` for a root span.
    pub parent: u64,
    /// Static span name (`capture`, `frame_sync`, `correlate`, …).
    pub name: &'static str,
    /// Optional numeric argument (e.g. the code index of a `correlate`
    /// span or the block index of an `fft_block` span).
    pub arg: Option<u64>,
    /// Start offset from the tracer epoch, nanoseconds.
    pub start_ns: u64,
    /// Duration, nanoseconds.
    pub dur_ns: u64,
}

#[derive(Debug)]
struct TracerCore {
    epoch: Instant,
    next_trace: AtomicU64,
    next_span: AtomicU64,
    /// Total spans ever claimed; `seq % capacity` is the slot index.
    cursor: AtomicU64,
    slots: Box<[Mutex<Option<SpanRecord>>]>,
}

/// A shared, thread-safe span recorder (cheap to clone: an `Arc`).
#[derive(Debug, Clone)]
pub struct Tracer(Arc<TracerCore>);

impl Tracer {
    /// A tracer whose ring holds the `capacity` most recent spans.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is 0.
    pub fn new(capacity: usize) -> Tracer {
        assert!(capacity > 0, "tracer capacity must be positive");
        Tracer(Arc::new(TracerCore {
            epoch: Instant::now(),
            next_trace: AtomicU64::new(1),
            next_span: AtomicU64::new(1),
            cursor: AtomicU64::new(0),
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
        }))
    }

    /// Ring capacity in spans.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.0.slots.len()
    }

    /// Nanoseconds since the tracer's epoch.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.0.epoch.elapsed().as_nanos().min(u64::MAX as u128) as u64
    }

    /// Total spans recorded over the tracer's lifetime (including any the
    /// ring has since evicted).
    pub fn recorded(&self) -> u64 {
        self.0.cursor.load(Ordering::Relaxed)
    }

    /// Spans evicted by ring wrap-around.
    pub fn dropped(&self) -> u64 {
        self.recorded().saturating_sub(self.capacity() as u64)
    }

    /// Allocates a fresh trace id (one per capture or round).
    pub fn new_trace(&self) -> TraceId {
        TraceId(self.0.next_trace.fetch_add(1, Ordering::Relaxed))
    }

    /// Opens a span; it records itself when dropped (or via
    /// [`SpanGuard::finish`]). Children reference [`SpanGuard::id`] as
    /// their parent, so the id is live before the span completes.
    pub fn span(&self, trace: TraceId, parent: Option<SpanId>, name: &'static str) -> SpanGuard {
        SpanGuard {
            tracer: self.clone(),
            trace,
            id: SpanId(self.0.next_span.fetch_add(1, Ordering::Relaxed)),
            parent: parent.map_or(0, |p| p.0),
            name,
            arg: None,
            start_ns: self.now_ns(),
            finished: false,
        }
    }

    /// Stores one completed record into the ring. The slot claim is a
    /// lock-free `fetch_add`; only the claimed slot's mutex is touched.
    fn push(&self, mut record: SpanRecord) {
        let seq = self.0.cursor.fetch_add(1, Ordering::Relaxed);
        record.seq = seq;
        let slot = (seq % self.0.slots.len() as u64) as usize;
        *self.0.slots[slot].lock().expect("tracer slot poisoned") = Some(record);
    }

    /// Every retained span, in record (claim) order.
    pub fn spans(&self) -> Vec<SpanRecord> {
        let mut out: Vec<SpanRecord> = self
            .0
            .slots
            .iter()
            .filter_map(|s| *s.lock().expect("tracer slot poisoned"))
            .collect();
        out.sort_by_key(|r| r.seq);
        out
    }

    /// The retained spans of one trace, in record order.
    pub fn trace_spans(&self, trace: TraceId) -> Vec<SpanRecord> {
        let mut out = self.spans();
        out.retain(|r| r.trace == trace.0);
        out
    }

    /// Empties the ring (ids and the eviction counter keep advancing).
    pub fn clear(&self) {
        for slot in self.0.slots.iter() {
            *slot.lock().expect("tracer slot poisoned") = None;
        }
    }

    /// Exports the retained spans (optionally restricted to one trace) as
    /// a Chrome trace-event JSON document: `{"traceEvents": [...]}` with
    /// `"ph": "X"` complete events, `ts`/`dur` in microseconds, and each
    /// trace on its own `tid` track. Opens directly in Perfetto or
    /// `chrome://tracing`.
    pub fn chrome_trace(&self, trace: Option<TraceId>) -> String {
        let spans = match trace {
            Some(t) => self.trace_spans(t),
            None => self.spans(),
        };
        chrome_trace_events(&spans)
    }
}

/// Serializes span records as a Chrome trace-event JSON document.
pub fn chrome_trace_events(spans: &[SpanRecord]) -> String {
    let events: Vec<JsonValue> = spans
        .iter()
        .map(|r| {
            let mut args = BTreeMap::new();
            args.insert("span".to_string(), JsonValue::UInt(r.span));
            args.insert("parent".to_string(), JsonValue::UInt(r.parent));
            args.insert("trace".to_string(), JsonValue::UInt(r.trace));
            if let Some(arg) = r.arg {
                args.insert("arg".to_string(), JsonValue::UInt(arg));
            }
            let mut o = BTreeMap::new();
            o.insert("name".to_string(), JsonValue::Str(r.name.to_string()));
            o.insert("cat".to_string(), JsonValue::Str("cbma".to_string()));
            o.insert("ph".to_string(), JsonValue::Str("X".to_string()));
            o.insert("ts".to_string(), JsonValue::Float(r.start_ns as f64 / 1e3));
            o.insert("dur".to_string(), JsonValue::Float(r.dur_ns as f64 / 1e3));
            o.insert("pid".to_string(), JsonValue::UInt(1));
            o.insert("tid".to_string(), JsonValue::UInt(r.trace));
            o.insert("args".to_string(), JsonValue::Object(args));
            JsonValue::Object(o)
        })
        .collect();
    let mut root = BTreeMap::new();
    root.insert("traceEvents".to_string(), JsonValue::Array(events));
    root.insert(
        "displayTimeUnit".to_string(),
        JsonValue::Str("ns".to_string()),
    );
    let mut text = JsonValue::Object(root).to_json();
    text.push('\n');
    text
}

/// An open span; records itself into the tracer on drop.
#[derive(Debug)]
pub struct SpanGuard {
    tracer: Tracer,
    trace: TraceId,
    id: SpanId,
    parent: u64,
    name: &'static str,
    arg: Option<u64>,
    start_ns: u64,
    finished: bool,
}

impl SpanGuard {
    /// This span's id — pass as the parent of child spans.
    #[inline]
    pub fn id(&self) -> SpanId {
        self.id
    }

    /// Attaches a numeric argument (code index, block index, …).
    #[inline]
    pub fn set_arg(&mut self, arg: u64) {
        self.arg = Some(arg);
    }

    /// Ends the span now (equivalent to dropping it).
    pub fn finish(mut self) {
        self.record();
    }

    fn record(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        let end = self.tracer.now_ns();
        self.tracer.push(SpanRecord {
            seq: 0, // assigned at push
            trace: self.trace.0,
            span: self.id.0,
            parent: self.parent,
            name: self.name,
            arg: self.arg,
            start_ns: self.start_ns,
            dur_ns: end.saturating_sub(self.start_ns),
        });
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.record();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_keep_order() {
        let tracer = Tracer::new(16);
        let trace = tracer.new_trace();
        let root = tracer.span(trace, None, "capture");
        let root_id = root.id();
        {
            let _a = tracer.span(trace, Some(root_id), "frame_sync");
        }
        {
            let mut b = tracer.span(trace, Some(root_id), "correlate");
            b.set_arg(3);
        }
        root.finish();

        let spans = tracer.spans();
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0].name, "frame_sync");
        assert_eq!(spans[1].name, "correlate");
        assert_eq!(spans[1].arg, Some(3));
        assert_eq!(spans[2].name, "capture");
        assert_eq!(spans[0].parent, spans[2].span);
        assert_eq!(spans[2].parent, 0);
        // The parent covers its children.
        let parent_end = spans[2].start_ns + spans[2].dur_ns;
        for child in &spans[..2] {
            assert!(child.start_ns >= spans[2].start_ns);
            assert!(child.start_ns + child.dur_ns <= parent_end);
        }
    }

    #[test]
    fn ring_keeps_the_most_recent_spans() {
        let tracer = Tracer::new(4);
        let trace = tracer.new_trace();
        for _ in 0..7 {
            tracer.span(trace, None, "s").finish();
        }
        assert_eq!(tracer.recorded(), 7);
        assert_eq!(tracer.dropped(), 3);
        let spans = tracer.spans();
        assert_eq!(spans.len(), 4);
        // Sequences 3..7 survive, in order.
        let seqs: Vec<u64> = spans.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![3, 4, 5, 6]);
    }

    #[test]
    fn trace_ids_partition_spans() {
        let tracer = Tracer::new(16);
        let a = tracer.new_trace();
        let b = tracer.new_trace();
        assert_ne!(a, b);
        tracer.span(a, None, "a").finish();
        tracer.span(b, None, "b").finish();
        tracer.span(a, None, "a2").finish();
        assert_eq!(tracer.trace_spans(a).len(), 2);
        assert_eq!(tracer.trace_spans(b).len(), 1);
    }

    #[test]
    fn chrome_trace_is_valid_json_with_complete_events() {
        let tracer = Tracer::new(16);
        let trace = tracer.new_trace();
        let root = tracer.span(trace, None, "capture");
        let mut k = tracer.span(trace, Some(root.id()), "correlate");
        k.set_arg(7);
        k.finish();
        root.finish();

        let text = tracer.chrome_trace(Some(trace));
        let v = JsonValue::parse(&text).expect("chrome trace parses");
        let events = v
            .as_object()
            .and_then(|o| o.get("traceEvents"))
            .and_then(JsonValue::as_array)
            .expect("traceEvents array");
        assert_eq!(events.len(), 2);
        for e in events {
            let o = e.as_object().unwrap();
            assert_eq!(o.get("ph").and_then(JsonValue::as_str), Some("X"));
            assert!(o.get("ts").and_then(JsonValue::as_f64).is_some());
            assert!(o.get("dur").and_then(JsonValue::as_f64).is_some());
            assert!(o.get("pid").and_then(JsonValue::as_u64).is_some());
            assert!(o.get("tid").and_then(JsonValue::as_u64).is_some());
            assert!(o.get("name").and_then(JsonValue::as_str).is_some());
        }
        assert_eq!(
            events[0]
                .as_object()
                .unwrap()
                .get("args")
                .and_then(JsonValue::as_object)
                .unwrap()
                .get("arg")
                .and_then(JsonValue::as_u64),
            Some(7)
        );
    }

    #[test]
    fn clear_empties_but_keeps_counters() {
        let tracer = Tracer::new(4);
        let trace = tracer.new_trace();
        tracer.span(trace, None, "s").finish();
        tracer.clear();
        assert!(tracer.spans().is_empty());
        assert_eq!(tracer.recorded(), 1);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        let _ = Tracer::new(0);
    }
}
