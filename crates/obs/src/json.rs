//! A minimal, dependency-free JSON model: enough of RFC 8259 to write and
//! re-read [`crate::Snapshot`]s and bench artifacts.
//!
//! Numbers are kept in two lanes so `u64` metric values survive exactly:
//! non-negative integer literals parse to [`JsonValue::UInt`] (full 64-bit
//! range, no `f64` rounding at 2⁵³), everything else to
//! [`JsonValue::Float`].

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parse error with byte offset context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset where parsing failed.
    pub offset: usize,
    /// Human-readable reason.
    pub reason: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.reason)
    }
}

impl std::error::Error for JsonError {}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer literal (exact to the full `u64` range).
    UInt(u64),
    /// Any other number (negative, fractional, exponent).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object (insertion order is not preserved; keys sort).
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// The value as `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::UInt(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as `f64` (integers widen; `null` maps to NaN so
    /// non-finite gauges round-trip through their `null` encoding).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::UInt(v) => Some(*v as f64),
            JsonValue::Float(v) => Some(*v),
            JsonValue::Null => Some(f64::NAN),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The value as an object map.
    pub fn as_object(&self) -> Option<&BTreeMap<String, JsonValue>> {
        match self {
            JsonValue::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Parses a JSON document (one top-level value, trailing whitespace
    /// allowed).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] with the byte offset of the first
    /// malformed construct.
    pub fn parse(text: &str) -> Result<JsonValue, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(value)
    }

    /// Serializes back to compact JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            JsonValue::Float(v) => write_f64(out, *v),
            JsonValue::Str(s) => write_json_string(out, s),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            JsonValue::Object(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_string(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Writes a float: `null` for non-finite values (JSON has no NaN/Inf),
/// otherwise Rust's shortest round-trip `Display` form.
pub fn write_f64(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null");
    } else if v == v.trunc() && v.abs() < 1e15 {
        // Keep integral floats distinguishable from integers? JSON does
        // not distinguish; emit a decimal point so gauges re-parse as
        // floats and Snapshot round-trips stay type-stable.
        let _ = write!(out, "{v:.1}");
    } else {
        let _ = write!(out, "{v}");
    }
}

/// Writes a JSON string literal with the required escapes.
pub fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, reason: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            reason: reason.into(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected {word:?}")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => self.string().map(JsonValue::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.err(format!("unexpected character {:?}", other as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| self.err("non-utf8 \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed for metric
                            // names; reject them explicitly.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("surrogate \\u escape"))?;
                            out.push(c);
                        }
                        other => {
                            return Err(self.err(format!("bad escape {:?}", other as char)))
                        }
                    }
                }
                _ => {
                    // Consume the full UTF-8 sequence starting at b.
                    let start = self.pos - 1;
                    let len = utf8_len(b)
                        .ok_or_else(|| self.err("invalid utf-8 in string"))?;
                    if start + len > self.bytes.len() {
                        return Err(self.err("truncated utf-8 in string"));
                    }
                    let s = std::str::from_utf8(&self.bytes[start..start + len])
                        .map_err(|_| self.err("invalid utf-8 in string"))?;
                    out.push_str(s);
                    self.pos = start + len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number bytes are ascii");
        if integral && !text.starts_with('-') {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(JsonValue::UInt(v));
            }
        }
        text.parse::<f64>()
            .map(JsonValue::Float)
            .map_err(|_| JsonError {
                offset: start,
                reason: format!("bad number {text:?}"),
            })
    }
}

fn utf8_len(first: u8) -> Option<usize> {
    match first {
        0x00..=0x7F => Some(1),
        0xC0..=0xDF => Some(2),
        0xE0..=0xEF => Some(3),
        0xF0..=0xF7 => Some(4),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "0", "42", "18446744073709551615"] {
            let v = JsonValue::parse(text).unwrap();
            assert_eq!(v.to_json(), text);
        }
        assert_eq!(
            JsonValue::parse("18446744073709551615").unwrap().as_u64(),
            Some(u64::MAX),
            "u64::MAX must not round through f64"
        );
    }

    #[test]
    fn floats_parse_and_round_trip() {
        let v = JsonValue::parse("-2.5e3").unwrap();
        assert_eq!(v.as_f64(), Some(-2500.0));
        let v = JsonValue::parse("0.125").unwrap();
        assert_eq!(v, JsonValue::Float(0.125));
        assert_eq!(JsonValue::parse(&v.to_json()).unwrap(), v);
        // Negative integers stay in the float lane.
        assert_eq!(JsonValue::parse("-3").unwrap(), JsonValue::Float(-3.0));
    }

    #[test]
    fn strings_escape_and_round_trip() {
        let original = JsonValue::Str("quote \" slash \\ newline \n tab \t é".to_string());
        let json = original.to_json();
        assert_eq!(JsonValue::parse(&json).unwrap(), original);
        assert_eq!(
            JsonValue::parse(r#""A\n""#).unwrap(),
            JsonValue::Str("A\n".to_string())
        );
    }

    #[test]
    fn containers_round_trip() {
        let text = r#"{"a": [1, 2.5, "x", null, true], "b": {"nested": []}}"#;
        let v = JsonValue::parse(text).unwrap();
        let obj = v.as_object().unwrap();
        assert_eq!(obj["a"].as_array().unwrap().len(), 5);
        assert_eq!(JsonValue::parse(&v.to_json()).unwrap(), v);
    }

    #[test]
    fn malformed_inputs_error_with_offsets() {
        for text in [
            "", "{", "[1,", "{\"a\"}", "{\"a\":}", "tru", "\"unterminated",
            "01x", "[1 2]", "{1: 2}", "nullnull", "\"bad \\q escape\"",
        ] {
            let err = JsonValue::parse(text).unwrap_err();
            assert!(err.offset <= text.len(), "{text:?}: {err}");
            assert!(!err.to_string().is_empty());
        }
    }

    #[test]
    fn non_finite_floats_serialize_as_null() {
        let mut out = String::new();
        write_f64(&mut out, f64::NAN);
        assert_eq!(out, "null");
        assert!(JsonValue::parse("null").unwrap().as_f64().unwrap().is_nan());
    }

    #[test]
    fn integral_floats_keep_a_decimal_point() {
        let mut out = String::new();
        write_f64(&mut out, 2.0);
        assert_eq!(out, "2.0");
        assert_eq!(JsonValue::parse("2.0").unwrap(), JsonValue::Float(2.0));
    }
}
