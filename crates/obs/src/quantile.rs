//! Quantile estimation over log2-bucketed histogram snapshots.
//!
//! The histograms store only bucket counts plus exact `min`/`max`/`sum`,
//! so quantiles are *estimates*: the rank is located by a cumulative walk
//! over the sparse buckets, then interpolated inside the bucket by
//! placing its `n` samples at the midpoints of `n` equal sub-intervals of
//! the bucket's `[lo, hi)` range. The estimate is clamped to the exact
//! `[min, max]` envelope, which provably cannot move it out of its
//! bucket. Because buckets are powers of two, the estimate is always
//! within 2× of the true sample — and `bucket_index(estimate)` equals
//! `bucket_index(true quantile)` exactly, which is what the oracle
//! proptest pins.
//!
//! All arithmetic is integer (`u128` intermediates), so estimates are
//! deterministic across platforms and merge order: the same bucket
//! counts always serialize to the same `p50`/`p90`/`p99` fields.

use crate::metrics::Histogram;
use crate::snapshot::HistogramSnapshot;

/// The derived quantile summary exported in snapshots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Quantiles {
    /// Median estimate.
    pub p50: u64,
    /// 90th-percentile estimate.
    pub p90: u64,
    /// 99th-percentile estimate.
    pub p99: u64,
    /// Exact maximum recorded value.
    pub max: u64,
}

impl HistogramSnapshot {
    /// Estimates the `q`-quantile (`0.0 ..= 1.0`) of the recorded
    /// samples, or `None` if the histogram is empty.
    ///
    /// Uses the nearest-rank definition `rank = floor(q · (count − 1))`
    /// (0-based), so `q = 0.0` targets the smallest sample and `q = 1.0`
    /// the largest, matching `sorted[floor(q · (n − 1))]` on raw data.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // 1-based rank of the targeted sample in sorted order.
        let rank = (q * (self.count - 1) as f64).floor() as u64 + 1;
        // The extreme ranks are stored exactly — no interpolation needed.
        if rank == 1 {
            return Some(self.min);
        }
        if rank == self.count {
            return Some(self.max);
        }
        let mut cum = 0u64;
        for &(index, n) in &self.buckets {
            if n == 0 {
                continue;
            }
            if cum + n >= rank {
                let (lo, hi) = Histogram::bucket_bounds(index as usize);
                // Position of the targeted sample among this bucket's n:
                // model them at the midpoints of n equal sub-intervals.
                let within = rank - cum; // 1..=n
                let width = (hi - lo) as u128;
                let est = lo + ((width * (2 * within as u128 - 1)) / (2 * n as u128)) as u64;
                return Some(est.clamp(self.min, self.max));
            }
            cum += n;
        }
        // Counts and bucket sums always agree; unreachable in practice.
        Some(self.max)
    }

    /// The p50/p90/p99/max summary, or `None` if the histogram is empty.
    pub fn quantiles(&self) -> Option<Quantiles> {
        Some(Quantiles {
            p50: self.quantile(0.50)?,
            p90: self.quantile(0.90)?,
            p99: self.quantile(0.99)?,
            max: self.max,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;

    fn hist_of(samples: &[u64]) -> HistogramSnapshot {
        let registry = MetricsRegistry::new();
        let h = registry.histogram("t");
        for &s in samples {
            h.record(s);
        }
        registry.snapshot().histograms["t"].clone()
    }

    #[test]
    fn empty_has_no_quantiles() {
        let h = hist_of(&[]);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.quantiles(), None);
    }

    #[test]
    fn single_sample_is_every_quantile() {
        let h = hist_of(&[42]);
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(h.quantile(q), Some(42));
        }
    }

    #[test]
    fn quantiles_bracket_and_order() {
        let samples: Vec<u64> = (1..=1000).map(|i| i * 17 % 4096 + 1).collect();
        let h = hist_of(&samples);
        let q = h.quantiles().unwrap();
        assert!(q.p50 <= q.p90 && q.p90 <= q.p99 && q.p99 <= q.max);
        assert!(q.p50 >= h.min && q.p99 <= h.max);
        assert_eq!(q.max, *samples.iter().max().unwrap());
    }

    #[test]
    fn estimate_lands_in_the_true_samples_bucket() {
        let samples: Vec<u64> = (0..500).map(|i| (i * i * 7 + 3) % 100_000).collect();
        let h = hist_of(&samples);
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for q in [0.0, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let truth = sorted[(q * (sorted.len() - 1) as f64).floor() as usize];
            let est = h.quantile(q).unwrap();
            assert_eq!(
                Histogram::bucket_index(est),
                Histogram::bucket_index(truth),
                "q={q}: est {est} not in bucket of true {truth}"
            );
        }
    }

    #[test]
    fn uniform_bucket_interpolates_monotonically() {
        // 100 samples spread across one bucket [64, 128).
        let samples: Vec<u64> = (0..100).map(|i| 64 + (i * 64) / 100).collect();
        let h = hist_of(&samples);
        let mut last = 0;
        for i in 0..=10 {
            let est = h.quantile(i as f64 / 10.0).unwrap();
            assert!(est >= last, "quantiles must be monotone");
            assert!((64..128).contains(&est));
            last = est;
        }
    }

    #[test]
    fn extreme_values_clamp_to_exact_envelope() {
        let h = hist_of(&[u64::MAX, u64::MAX - 7, 1]);
        assert_eq!(h.quantile(1.0), Some(u64::MAX));
        assert_eq!(h.quantile(0.0), Some(1));
    }
}
