//! Pluggable structured-event sinks.
//!
//! Instrumented code guards event construction with [`Sink::enabled`]:
//!
//! ```
//! use cbma_obs::{Event, NoopSink, Sink};
//!
//! let sink: &dyn Sink = &NoopSink;
//! if sink.enabled() {
//!     sink.record(Event::new("cbma.sim.round").with("round", 3u64));
//! }
//! ```
//!
//! With [`NoopSink`] the guard is one virtual call returning `false` and
//! no event is ever allocated — the overhead guarantee the receiver and
//! engine rely on. [`RecordingSink`] keeps every event in memory for
//! tests, examples and the bench artifacts.

use std::fmt;
use std::sync::Mutex;

/// One typed field value on an event.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// An unsigned integer (counts, indices, nanoseconds).
    U64(u64),
    /// A float (rates, correlations, energies).
    F64(f64),
    /// A boolean flag.
    Bool(bool),
    /// A string label.
    Str(String),
    /// A list of indices (active sets, delivered sets).
    List(Vec<u64>),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> FieldValue {
        FieldValue::U64(v)
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> FieldValue {
        FieldValue::U64(v as u64)
    }
}
impl From<u32> for FieldValue {
    fn from(v: u32) -> FieldValue {
        FieldValue::U64(u64::from(v))
    }
}
impl From<f64> for FieldValue {
    fn from(v: f64) -> FieldValue {
        FieldValue::F64(v)
    }
}
impl From<bool> for FieldValue {
    fn from(v: bool) -> FieldValue {
        FieldValue::Bool(v)
    }
}
impl From<&str> for FieldValue {
    fn from(v: &str) -> FieldValue {
        FieldValue::Str(v.to_string())
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> FieldValue {
        FieldValue::Str(v)
    }
}
impl From<&[usize]> for FieldValue {
    fn from(v: &[usize]) -> FieldValue {
        FieldValue::List(v.iter().map(|&i| i as u64).collect())
    }
}
impl From<&Vec<usize>> for FieldValue {
    fn from(v: &Vec<usize>) -> FieldValue {
        FieldValue::from(v.as_slice())
    }
}

/// One structured event: a dotted name plus ordered key/value fields.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Dotted event name, e.g. `cbma.sim.round`.
    pub name: String,
    /// Ordered fields.
    pub fields: Vec<(String, FieldValue)>,
}

impl Event {
    /// A new event with no fields.
    pub fn new(name: impl Into<String>) -> Event {
        Event {
            name: name.into(),
            fields: Vec::new(),
        }
    }

    /// Builder-style field append.
    pub fn with(mut self, key: impl Into<String>, value: impl Into<FieldValue>) -> Event {
        self.fields.push((key.into(), value.into()));
        self
    }

    /// The first field with this key, if any.
    pub fn field(&self, key: &str) -> Option<&FieldValue> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Convenience: the field as `u64` if present and numeric.
    pub fn field_u64(&self, key: &str) -> Option<u64> {
        match self.field(key)? {
            FieldValue::U64(v) => Some(*v),
            _ => None,
        }
    }
}

/// A consumer of structured events.
///
/// Implementations must be cheap to call and thread-safe; `record` takes
/// `&self` so one sink can be shared across sweep workers.
pub trait Sink: Send + Sync + fmt::Debug {
    /// Whether this sink wants events at all. Call sites must guard event
    /// construction with this so disabled sinks cost nothing.
    fn enabled(&self) -> bool {
        true
    }

    /// Consumes one event.
    fn record(&self, event: Event);
}

/// The default sink: drops everything, reports `enabled() == false`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopSink;

impl Sink for NoopSink {
    #[inline]
    fn enabled(&self) -> bool {
        false
    }

    #[inline]
    fn record(&self, _event: Event) {}
}

/// An in-memory sink for tests, examples and bench artifacts.
#[derive(Debug, Default)]
pub struct RecordingSink {
    events: Mutex<Vec<Event>>,
}

impl RecordingSink {
    /// An empty recording sink.
    pub fn new() -> RecordingSink {
        RecordingSink::default()
    }

    /// A copy of every event recorded so far.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().expect("sink poisoned").clone()
    }

    /// Number of events recorded.
    pub fn len(&self) -> usize {
        self.events.lock().expect("sink poisoned").len()
    }

    /// Whether no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drains the recorded events.
    pub fn take(&self) -> Vec<Event> {
        std::mem::take(&mut *self.events.lock().expect("sink poisoned"))
    }
}

impl Sink for RecordingSink {
    fn record(&self, event: Event) {
        self.events.lock().expect("sink poisoned").push(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_sink_is_disabled() {
        let sink = NoopSink;
        assert!(!sink.enabled());
        sink.record(Event::new("dropped"));
    }

    #[test]
    fn recording_sink_keeps_events_in_order() {
        let sink = RecordingSink::new();
        assert!(sink.is_empty());
        sink.record(Event::new("a").with("x", 1u64));
        sink.record(Event::new("b").with("ok", true));
        assert_eq!(sink.len(), 2);
        let events = sink.events();
        assert_eq!(events[0].name, "a");
        assert_eq!(events[0].field_u64("x"), Some(1));
        assert_eq!(events[1].field("ok"), Some(&FieldValue::Bool(true)));
        assert_eq!(sink.take().len(), 2);
        assert!(sink.is_empty());
    }

    #[test]
    fn field_conversions_cover_domain_types() {
        let active = vec![0usize, 3, 7];
        let e = Event::new("cbma.sim.round")
            .with("round", 5u64)
            .with("fer", 0.25)
            .with("detected", true)
            .with("label", "paper")
            .with("active", &active);
        assert_eq!(e.field_u64("round"), Some(5));
        assert_eq!(e.field("fer"), Some(&FieldValue::F64(0.25)));
        assert_eq!(
            e.field("active"),
            Some(&FieldValue::List(vec![0, 3, 7]))
        );
        assert_eq!(e.field("missing"), None);
        assert_eq!(e.field_u64("fer"), None, "typed accessor rejects floats");
    }
}
