//! Pluggable structured-event sinks.
//!
//! Instrumented code guards event construction with [`Sink::enabled`]:
//!
//! ```
//! use cbma_obs::{Event, NoopSink, Sink};
//!
//! let sink: &dyn Sink = &NoopSink;
//! if sink.enabled() {
//!     sink.record(Event::new("cbma.sim.round").with("round", 3u64));
//! }
//! ```
//!
//! With [`NoopSink`] the guard is one virtual call returning `false` and
//! no event is ever allocated — the overhead guarantee the receiver and
//! engine rely on. [`RecordingSink`] keeps every event in memory for
//! tests, examples and the bench artifacts.

use std::collections::VecDeque;
use std::fmt;
use std::sync::Mutex;

/// One typed field value on an event.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// An unsigned integer (counts, indices, nanoseconds).
    U64(u64),
    /// A float (rates, correlations, energies).
    F64(f64),
    /// A boolean flag.
    Bool(bool),
    /// A string label.
    Str(String),
    /// A list of indices (active sets, delivered sets).
    List(Vec<u64>),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> FieldValue {
        FieldValue::U64(v)
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> FieldValue {
        FieldValue::U64(v as u64)
    }
}
impl From<u32> for FieldValue {
    fn from(v: u32) -> FieldValue {
        FieldValue::U64(u64::from(v))
    }
}
impl From<f64> for FieldValue {
    fn from(v: f64) -> FieldValue {
        FieldValue::F64(v)
    }
}
impl From<bool> for FieldValue {
    fn from(v: bool) -> FieldValue {
        FieldValue::Bool(v)
    }
}
impl From<&str> for FieldValue {
    fn from(v: &str) -> FieldValue {
        FieldValue::Str(v.to_string())
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> FieldValue {
        FieldValue::Str(v)
    }
}
impl From<&[usize]> for FieldValue {
    fn from(v: &[usize]) -> FieldValue {
        FieldValue::List(v.iter().map(|&i| i as u64).collect())
    }
}
impl From<&Vec<usize>> for FieldValue {
    fn from(v: &Vec<usize>) -> FieldValue {
        FieldValue::from(v.as_slice())
    }
}

/// One structured event: a dotted name plus ordered key/value fields.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Dotted event name, e.g. `cbma.sim.round`.
    pub name: String,
    /// Ordered fields.
    pub fields: Vec<(String, FieldValue)>,
}

impl Event {
    /// A new event with no fields.
    pub fn new(name: impl Into<String>) -> Event {
        Event {
            name: name.into(),
            fields: Vec::new(),
        }
    }

    /// Builder-style field append.
    pub fn with(mut self, key: impl Into<String>, value: impl Into<FieldValue>) -> Event {
        self.fields.push((key.into(), value.into()));
        self
    }

    /// The first field with this key, if any.
    pub fn field(&self, key: &str) -> Option<&FieldValue> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Convenience: the field as `u64` if present and numeric.
    pub fn field_u64(&self, key: &str) -> Option<u64> {
        match self.field(key)? {
            FieldValue::U64(v) => Some(*v),
            _ => None,
        }
    }
}

/// A consumer of structured events.
///
/// Implementations must be cheap to call and thread-safe; `record` takes
/// `&self` so one sink can be shared across sweep workers.
pub trait Sink: Send + Sync + fmt::Debug {
    /// Whether this sink wants events at all. Call sites must guard event
    /// construction with this so disabled sinks cost nothing.
    fn enabled(&self) -> bool {
        true
    }

    /// Consumes one event.
    fn record(&self, event: Event);
}

/// The default sink: drops everything, reports `enabled() == false`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopSink;

impl Sink for NoopSink {
    #[inline]
    fn enabled(&self) -> bool {
        false
    }

    #[inline]
    fn record(&self, _event: Event) {}
}

/// An in-memory sink for tests, examples and bench artifacts.
///
/// Unbounded by default; [`RecordingSink::bounded`] caps retention with
/// ring semantics (oldest events evicted first) so a long instrumented
/// campaign cannot grow memory without limit. [`RecordingSink::dropped`]
/// counts evictions.
#[derive(Debug, Default)]
pub struct RecordingSink {
    inner: Mutex<RecordingInner>,
}

#[derive(Debug, Default)]
struct RecordingInner {
    events: VecDeque<Event>,
    capacity: Option<usize>,
    dropped: u64,
}

impl RecordingSink {
    /// An empty, unbounded recording sink.
    pub fn new() -> RecordingSink {
        RecordingSink::default()
    }

    /// A sink retaining at most `capacity` events; once full, each new
    /// event evicts the oldest retained one.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is 0.
    pub fn bounded(capacity: usize) -> RecordingSink {
        assert!(capacity > 0, "recording sink capacity must be positive");
        RecordingSink {
            inner: Mutex::new(RecordingInner {
                events: VecDeque::with_capacity(capacity),
                capacity: Some(capacity),
                dropped: 0,
            }),
        }
    }

    /// The retention cap, if any.
    pub fn capacity(&self) -> Option<usize> {
        self.inner.lock().expect("sink poisoned").capacity
    }

    /// Events evicted so far by the retention cap.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().expect("sink poisoned").dropped
    }

    /// A copy of every retained event, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.inner
            .lock()
            .expect("sink poisoned")
            .events
            .iter()
            .cloned()
            .collect()
    }

    /// Number of events retained.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("sink poisoned").events.len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drains the retained events, oldest first.
    pub fn take(&self) -> Vec<Event> {
        std::mem::take(&mut self.inner.lock().expect("sink poisoned").events).into()
    }
}

impl Sink for RecordingSink {
    fn record(&self, event: Event) {
        let mut inner = self.inner.lock().expect("sink poisoned");
        if let Some(capacity) = inner.capacity {
            while inner.events.len() >= capacity {
                inner.events.pop_front();
                inner.dropped += 1;
            }
        }
        inner.events.push_back(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_sink_is_disabled() {
        let sink = NoopSink;
        assert!(!sink.enabled());
        sink.record(Event::new("dropped"));
    }

    #[test]
    fn recording_sink_keeps_events_in_order() {
        let sink = RecordingSink::new();
        assert!(sink.is_empty());
        sink.record(Event::new("a").with("x", 1u64));
        sink.record(Event::new("b").with("ok", true));
        assert_eq!(sink.len(), 2);
        let events = sink.events();
        assert_eq!(events[0].name, "a");
        assert_eq!(events[0].field_u64("x"), Some(1));
        assert_eq!(events[1].field("ok"), Some(&FieldValue::Bool(true)));
        assert_eq!(sink.take().len(), 2);
        assert!(sink.is_empty());
    }

    #[test]
    fn bounded_sink_evicts_oldest_first() {
        let sink = RecordingSink::bounded(3);
        assert_eq!(sink.capacity(), Some(3));
        for i in 0..5u64 {
            sink.record(Event::new(format!("e{i}")));
        }
        assert_eq!(sink.len(), 3);
        assert_eq!(sink.dropped(), 2);
        let names: Vec<String> = sink.events().into_iter().map(|e| e.name).collect();
        assert_eq!(names, vec!["e2", "e3", "e4"], "oldest events evicted first");
        // Draining preserves order and keeps the eviction count.
        let drained: Vec<String> = sink.take().into_iter().map(|e| e.name).collect();
        assert_eq!(drained, vec!["e2", "e3", "e4"]);
        assert!(sink.is_empty());
        assert_eq!(sink.dropped(), 2);
    }

    #[test]
    fn unbounded_sink_never_drops() {
        let sink = RecordingSink::new();
        assert_eq!(sink.capacity(), None);
        for i in 0..100u64 {
            sink.record(Event::new("e").with("i", i));
        }
        assert_eq!(sink.len(), 100);
        assert_eq!(sink.dropped(), 0);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_sink_panics() {
        let _ = RecordingSink::bounded(0);
    }

    #[test]
    fn field_conversions_cover_domain_types() {
        let active = vec![0usize, 3, 7];
        let e = Event::new("cbma.sim.round")
            .with("round", 5u64)
            .with("fer", 0.25)
            .with("detected", true)
            .with("label", "paper")
            .with("active", &active);
        assert_eq!(e.field_u64("round"), Some(5));
        assert_eq!(e.field("fer"), Some(&FieldValue::F64(0.25)));
        assert_eq!(
            e.field("active"),
            Some(&FieldValue::List(vec![0, 3, 7]))
        );
        assert_eq!(e.field("missing"), None);
        assert_eq!(e.field_u64("fer"), None, "typed accessor rejects floats");
    }
}
