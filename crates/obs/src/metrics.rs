//! The metrics registry: named counters, gauges and log₂ histograms.
//!
//! Handles returned by the registry are cheap `Arc`-clones over atomics:
//! registration takes a write lock once, recording is lock-free and
//! wait-free (`fetch_add`/`fetch_min`/`fetch_max` with relaxed ordering —
//! metrics are statistical, not synchronization).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use crate::snapshot::{HistogramSnapshot, Snapshot};
use crate::timer::StageTimer;

/// Number of histogram buckets: bucket 0 holds the value `0`, bucket
/// `k ≥ 1` holds values in `[2^(k-1), 2^k)`, up to bucket 64 which tops
/// out at `u64::MAX`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A monotonically increasing event count.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A standalone counter (not registered anywhere).
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current count.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins floating-point level (stored as `f64` bits).
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Default for Gauge {
    fn default() -> Gauge {
        Gauge(Arc::new(AtomicU64::new(0f64.to_bits())))
    }
}

impl Gauge {
    /// A standalone gauge (not registered anywhere), initialized to 0.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Sets the level.
    #[inline]
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// The current level.
    #[inline]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }

    /// Raises the gauge to `value` if it is higher (high-water mark).
    pub fn max(&self, value: f64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            if f64::from_bits(cur) >= value {
                return;
            }
            match self.0.compare_exchange_weak(
                cur,
                value.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }
}

#[derive(Debug)]
struct HistogramCore {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for HistogramCore {
    fn default() -> HistogramCore {
        HistogramCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

/// A log₂-bucketed histogram of `u64` samples (typically nanoseconds or
/// small counts).
///
/// Bucket layout has **exact power-of-two edges**: bucket 0 counts only
/// the value `0`; bucket `k ≥ 1` counts values `v` with
/// `2^(k-1) <= v < 2^k`. A value exactly equal to `2^k` therefore lands
/// in bucket `k + 1`'s lower edge — see [`Histogram::bucket_index`].
#[derive(Debug, Clone, Default)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    /// A standalone histogram (not registered anywhere).
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// The bucket a value falls into: 0 for `v == 0`, otherwise
    /// `bit_length(v)` (so bucket `k` spans `[2^(k-1), 2^k)`).
    #[inline]
    pub fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// The `[lower, upper)` bounds of bucket `index` (bucket 0 is
    /// `[0, 1)`; bucket 64's upper bound saturates at `u64::MAX`).
    ///
    /// # Panics
    ///
    /// Panics if `index >= HISTOGRAM_BUCKETS`.
    pub fn bucket_bounds(index: usize) -> (u64, u64) {
        assert!(index < HISTOGRAM_BUCKETS, "bucket index out of range");
        if index == 0 {
            (0, 1)
        } else {
            let lower = 1u64 << (index - 1);
            let upper = if index == 64 { u64::MAX } else { 1u64 << index };
            (lower, upper)
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        let core = &*self.0;
        core.buckets[Histogram::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        core.count.fetch_add(1, Ordering::Relaxed);
        core.sum.fetch_add(value, Ordering::Relaxed);
        core.min.fetch_min(value, Ordering::Relaxed);
        core.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records a duration in nanoseconds (saturating at `u64::MAX`).
    #[inline]
    pub fn record_duration(&self, duration: std::time::Duration) {
        self.record(duration.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Starts a scoped span that records its elapsed nanoseconds into
    /// this histogram when dropped (or stopped).
    #[inline]
    pub fn time(&self) -> StageTimer {
        StageTimer::start(self.clone())
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Mean sample, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        let count = self.count();
        (count > 0).then(|| self.sum() as f64 / count as f64)
    }

    /// Freezes the histogram into its snapshot form (sparse non-empty
    /// buckets).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let core = &*self.0;
        let count = core.count.load(Ordering::Relaxed);
        let buckets: Vec<(u8, u64)> = core
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then_some((i as u8, n))
            })
            .collect();
        HistogramSnapshot {
            count,
            sum: core.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                core.min.load(Ordering::Relaxed)
            },
            max: core.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Histogram>,
}

/// A named collection of metrics.
///
/// `counter`/`gauge`/`histogram` get-or-create by name and hand back a
/// clonable lock-free handle, so hot paths register once at construction
/// and never touch the registry lock again.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: RwLock<Inner>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Counter {
        if let Some(c) = self.inner.read().expect("registry poisoned").counters.get(name) {
            return c.clone();
        }
        let mut inner = self.inner.write().expect("registry poisoned");
        inner.counters.entry(name.to_string()).or_default().clone()
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        if let Some(g) = self.inner.read().expect("registry poisoned").gauges.get(name) {
            return g.clone();
        }
        let mut inner = self.inner.write().expect("registry poisoned");
        inner.gauges.entry(name.to_string()).or_default().clone()
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Histogram {
        if let Some(h) = self
            .inner
            .read()
            .expect("registry poisoned")
            .histograms
            .get(name)
        {
            return h.clone();
        }
        let mut inner = self.inner.write().expect("registry poisoned");
        inner.histograms.entry(name.to_string()).or_default().clone()
    }

    /// Number of distinct named metrics registered.
    pub fn metric_count(&self) -> usize {
        let inner = self.inner.read().expect("registry poisoned");
        inner.counters.len() + inner.gauges.len() + inner.histograms.len()
    }

    /// Freezes every metric into a [`Snapshot`].
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.inner.read().expect("registry poisoned");
        Snapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_share() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("cbma.test.events");
        let b = reg.counter("cbma.test.events");
        a.inc();
        b.add(4);
        assert_eq!(a.get(), 5);
        assert_eq!(reg.snapshot().counters["cbma.test.events"], 5);
    }

    #[test]
    fn gauges_set_and_max() {
        let g = Gauge::new();
        g.set(1.5);
        assert_eq!(g.get(), 1.5);
        g.max(0.5);
        assert_eq!(g.get(), 1.5, "max must not lower the gauge");
        g.max(2.25);
        assert_eq!(g.get(), 2.25);
    }

    #[test]
    fn histogram_bucket_indices_have_exact_power_of_two_edges() {
        // Bucket 0 = {0}; bucket k = [2^(k-1), 2^k).
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        for k in 1..=63usize {
            let edge = 1u64 << k;
            // The exact power of two opens bucket k+1 …
            assert_eq!(Histogram::bucket_index(edge), k + 1, "edge 2^{k}");
            // … and the value just below it closes bucket k.
            assert_eq!(Histogram::bucket_index(edge - 1), k, "edge 2^{k} - 1");
        }
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
    }

    #[test]
    fn histogram_bucket_bounds_match_indices() {
        for idx in 0..HISTOGRAM_BUCKETS {
            let (lo, hi) = Histogram::bucket_bounds(idx);
            assert_eq!(Histogram::bucket_index(lo), idx, "lower bound of {idx}");
            if idx < 64 {
                assert_eq!(
                    Histogram::bucket_index(hi),
                    idx + 1,
                    "upper bound of {idx} is exclusive"
                );
            }
            assert_eq!(Histogram::bucket_index(hi - 1), idx, "top of {idx}");
        }
        assert_eq!(Histogram::bucket_bounds(0), (0, 1));
        assert_eq!(Histogram::bucket_bounds(1), (1, 2));
        assert_eq!(Histogram::bucket_bounds(5), (16, 32));
        assert_eq!(Histogram::bucket_bounds(64).1, u64::MAX);
    }

    #[test]
    #[should_panic(expected = "bucket index out of range")]
    fn bucket_bounds_rejects_out_of_range() {
        Histogram::bucket_bounds(HISTOGRAM_BUCKETS);
    }

    #[test]
    fn histogram_statistics() {
        let h = Histogram::new();
        assert_eq!(h.mean(), None);
        for v in [0u64, 1, 2, 3, 4, 1024] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1034);
        let snap = h.snapshot();
        assert_eq!(snap.min, 0);
        assert_eq!(snap.max, 1024);
        // 0 → bucket 0; 1 → 1; 2,3 → 2; 4 → 3; 1024 → 11.
        assert_eq!(
            snap.buckets,
            vec![(0, 1), (1, 1), (2, 2), (3, 1), (11, 1)]
        );
        assert!((h.mean().unwrap() - 1034.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_snapshot_has_zero_min() {
        let snap = Histogram::new().snapshot();
        assert_eq!(snap.count, 0);
        assert_eq!(snap.min, 0);
        assert_eq!(snap.max, 0);
        assert!(snap.buckets.is_empty());
    }

    #[test]
    fn registry_is_shareable_across_threads() {
        let reg = std::sync::Arc::new(MetricsRegistry::new());
        let c = reg.counter("cbma.test.parallel");
        std::thread::scope(|s| {
            for _ in 0..4 {
                let reg = std::sync::Arc::clone(&reg);
                s.spawn(move || {
                    for _ in 0..1000 {
                        reg.counter("cbma.test.parallel").inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 4000);
    }

    #[test]
    fn metric_count_counts_distinct_names() {
        let reg = MetricsRegistry::new();
        reg.counter("a");
        reg.counter("a");
        reg.gauge("b");
        reg.histogram("c");
        assert_eq!(reg.metric_count(), 3);
    }
}
