//! Property tests for the shard-merge and quantile-export semantics the
//! harness leans on: per-shard snapshots must merge to the same bytes in
//! any order or partition (work-stealing never changes the manifest),
//! and exported quantiles must agree with a naive sorted-sample oracle
//! up to bucket resolution.

use cbma_obs::{Histogram, MetricsRegistry, Snapshot};
use proptest::prelude::*;

const COUNTER_NAMES: [&str; 3] = ["cbma.a.count", "cbma.b.count", "cbma.c.count"];
const GAUGE_NAMES: [&str; 2] = ["cbma.a.level", "cbma.b.level"];
const HIST_NAMES: [&str; 2] = ["cbma.a.size", "cbma.b.stage_ns"];

/// One shard's worth of raw metric activity.
#[derive(Debug, Clone)]
struct ShardOps {
    counters: Vec<(usize, u64)>,
    gauges: Vec<(usize, f64)>,
    samples: Vec<(usize, u64)>,
}

fn shard_strategy() -> impl Strategy<Value = ShardOps> {
    (
        proptest::collection::vec((0usize..COUNTER_NAMES.len(), 0u64..1000), 0..8),
        proptest::collection::vec((0usize..GAUGE_NAMES.len(), -1e9f64..1e9), 0..8),
        proptest::collection::vec((0usize..HIST_NAMES.len(), 0u64..1u64 << 40), 0..12),
    )
        .prop_map(|(counters, gauges, samples)| ShardOps {
            counters,
            gauges,
            samples,
        })
}

/// Replays a shard's operations into a fresh registry and freezes it.
fn shard_snapshot(ops: &ShardOps) -> Snapshot {
    let registry = MetricsRegistry::new();
    for &(i, n) in &ops.counters {
        registry.counter(COUNTER_NAMES[i]).add(n);
    }
    for &(i, level) in &ops.gauges {
        registry.gauge(GAUGE_NAMES[i]).set(level);
    }
    for &(i, v) in &ops.samples {
        registry.histogram(HIST_NAMES[i]).record(v);
    }
    registry.snapshot()
}

/// Merges the shards into one snapshot in the given visit order.
fn merge_in_order(shards: &[Snapshot], order: &[usize]) -> Snapshot {
    let mut merged = Snapshot::new();
    for &i in order {
        merged.merge(&shards[i]);
    }
    merged
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Shard merge is order-insensitive: grid order, reverse order and
    /// an arbitrary rotation all serialize to identical bytes after
    /// timing-stripping — exactly what makes harness manifests
    /// byte-stable under work stealing.
    #[test]
    fn shard_merge_is_order_insensitive(
        shards in proptest::collection::vec(shard_strategy(), 1..6),
        rotate in any::<usize>(),
    ) {
        let snaps: Vec<Snapshot> = shards.iter().map(shard_snapshot).collect();
        let forward: Vec<usize> = (0..snaps.len()).collect();
        let mut reverse = forward.clone();
        reverse.reverse();
        let mut rotated = forward.clone();
        rotated.rotate_left(rotate % snaps.len().max(1));

        let base = merge_in_order(&snaps, &forward).without_timings().to_json();
        let rev = merge_in_order(&snaps, &reverse).without_timings().to_json();
        let rot = merge_in_order(&snaps, &rotated).without_timings().to_json();
        prop_assert_eq!(&base, &rev);
        prop_assert_eq!(&base, &rot);
    }

    /// Shard merge is partition-insensitive: merging each shard directly
    /// into the total equals first combining shards pairwise into
    /// sub-aggregates and merging those — so live aggregation (partial
    /// rollups) converges to the same bytes as the final manifest pass.
    #[test]
    fn shard_merge_is_partition_insensitive(
        shards in proptest::collection::vec(shard_strategy(), 2..7),
        split in any::<usize>(),
    ) {
        let snaps: Vec<Snapshot> = shards.iter().map(shard_snapshot).collect();
        let flat: Vec<usize> = (0..snaps.len()).collect();
        let direct = merge_in_order(&snaps, &flat).without_timings().to_json();

        let cut = 1 + split % (snaps.len() - 1);
        let mut left = Snapshot::new();
        for s in &snaps[..cut] {
            left.merge(s);
        }
        let mut right = Snapshot::new();
        for s in &snaps[cut..] {
            right.merge(s);
        }
        let mut combined = Snapshot::new();
        combined.merge(&left);
        combined.merge(&right);
        prop_assert_eq!(&direct, &combined.without_timings().to_json());
    }

    /// Exported quantiles agree with a naive nearest-rank oracle over
    /// the raw samples: identical bucket (log₂ resolution) always, and
    /// exact equality at the envelope (min/max).
    #[test]
    fn quantile_estimates_match_the_sorted_sample_oracle(
        samples in proptest::collection::vec(
            prop_oneof![0u64..64, 0u64..100_000, 0u64..1u64 << 50],
            1..200,
        ),
    ) {
        let hist = Histogram::new();
        for &v in &samples {
            hist.record(v);
        }
        let snap = hist.snapshot();

        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            let est = snap.quantile(q).unwrap();
            let oracle = sorted[(q * (sorted.len() - 1) as f64).floor() as usize];
            prop_assert_eq!(
                Histogram::bucket_index(est),
                Histogram::bucket_index(oracle),
                "q={} est={} oracle={}", q, est, oracle
            );
            prop_assert!(est >= snap.min && est <= snap.max);
        }
        // The envelope is exact, not just bucket-accurate.
        prop_assert_eq!(snap.quantile(0.0), Some(sorted[0]));
        prop_assert_eq!(snap.quantile(1.0), Some(*sorted.last().unwrap()));
    }
}
