//! Property-based tests for the channel models.

use cbma_channel::friis::BackscatterLink;
use cbma_channel::mixer::{Mixer, TagSignal};
use cbma_channel::{
    AdcModel, ClockModel, Excitation, InterferenceModel, MultipathModel, NoiseModel,
};
use cbma_types::geometry::Point;
use cbma_types::units::{Db, Dbm, Hertz};
use cbma_types::Iq;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The Friis field is monotone in both distances: moving the tag
    /// farther from either radio never increases the received power.
    #[test]
    fn friis_is_monotone_in_distance(
        d1 in 0.05f64..3.0,
        d2 in 0.05f64..3.0,
        grow in 0.01f64..2.0,
    ) {
        let link = BackscatterLink::paper_default();
        let base = link.received_power_at(d1, d2).get();
        prop_assert!(link.received_power_at(d1 + grow, d2).get() <= base + 1e-9);
        prop_assert!(link.received_power_at(d1, d2 + grow).get() <= base + 1e-9);
    }

    /// Reciprocity: swapping d1 and d2 leaves the budget unchanged when
    /// the antenna gains match.
    #[test]
    fn friis_is_reciprocal(d1 in 0.05f64..3.0, d2 in 0.05f64..3.0) {
        let link = BackscatterLink::paper_default();
        let a = link.received_power_at(d1, d2).get();
        let b = link.received_power_at(d2, d1).get();
        prop_assert!((a - b).abs() < 1e-9);
    }

    /// |ΔΓ| scales power by exactly 20·log10(ΔΓ₁/ΔΓ₂) dB.
    #[test]
    fn delta_gamma_is_a_pure_scale(
        g1 in 0.05f64..2.0,
        g2 in 0.05f64..2.0,
    ) {
        let link = BackscatterLink::paper_default();
        let p1 = link.with_delta_gamma(g1).received_power_at(0.5, 1.0).get();
        let p2 = link.with_delta_gamma(g2).received_power_at(0.5, 1.0).get();
        let expected = 20.0 * (g1 / g2).log10();
        prop_assert!((p1 - p2 - expected).abs() < 1e-9);
    }

    /// The mixer is linear in the tag amplitudes (no noise): scaling a
    /// tag's amplitude scales its contribution.
    #[test]
    fn mixer_is_linear_in_amplitude(
        amp in 0.001f64..1.0,
        phase in 0.0f64..std::f64::consts::TAU,
    ) {
        let mixer = Mixer {
            noise: NoiseModel::new(Db::new(0.0), Dbm::new(-300.0)),
            bandwidth: Hertz::new(1.0),
            excitation: Excitation::tone(),
            interference: InterferenceModel::none(),
            lead_in: 4,
            tail: 4,
        };
        let mk = |a: f64| TagSignal {
            envelope: vec![1.0, 0.0, 1.0, 1.0],
            amplitude: a,
            phase,
            taps: cbma_channel::multipath::ChannelTaps::identity(),
            delay_samples: 0.0,
            freq_offset_rad_per_sample: 0.0,
        };
        let mut rng = StdRng::seed_from_u64(1);
        let one = mixer.combine(&mut rng, &[mk(amp)]);
        let mut rng = StdRng::seed_from_u64(1);
        let two = mixer.combine(&mut rng, &[mk(2.0 * amp)]);
        for (a, b) in one.iter().zip(&two) {
            prop_assert!((b.abs() - 2.0 * a.abs()).abs() < 1e-9 * (1.0 + a.abs()));
        }
    }

    /// Clock delays are always non-negative and bounded by the configured
    /// jitter + drift envelope.
    #[test]
    fn clock_delays_are_bounded(
        fixed in 0.0f64..20.0,
        jitter in 0.0f64..20.0,
        ppm in 0.0f64..100.0,
        frame in 0usize..100_000,
    ) {
        let clock = ClockModel {
            fixed_offset_samples: fixed,
            jitter_samples: jitter,
            drift_ppm: ppm,
        };
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            let d = clock.frame_delay(&mut rng, frame);
            let bound = fixed + jitter + ppm * 1e-6 * frame as f64 + 1e-9;
            prop_assert!((0.0..=bound).contains(&d), "delay {d} vs bound {bound}");
        }
    }

    /// Fading realizations always carry finite, positive-power main taps.
    #[test]
    fn fading_is_physical(k in 0.0f64..100.0, seed in any::<u64>()) {
        let model = MultipathModel {
            k_factor: k,
            echo_taps: 1,
            echo_decay: 0.05,
            max_echo_delay: 1,
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let taps = model.realize(&mut rng);
        prop_assert!(taps.total_power().is_finite());
        prop_assert!(taps.taps()[0].1.power() >= 0.0);
        prop_assert_eq!(taps.taps()[0].0, 0, "main tap must be at delay 0");
    }

    /// Quantization never moves a sample by more than one LSB (with
    /// dithering off) and preserves silence.
    #[test]
    fn adc_error_is_bounded(bits in 2u32..16, seed in any::<u64>()) {
        let adc = AdcModel {
            bits,
            headroom: 1.25,
            dither: false,
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let original: Vec<Iq> = (0..256)
            .map(|k| Iq::from_polar(0.8, 0.37 * k as f64))
            .collect();
        let mut q = original.clone();
        adc.quantize(&mut rng, &mut q);
        let lsb = 2.0 * 0.8 * 1.25 / (1u64 << bits) as f64;
        for (a, b) in original.iter().zip(&q) {
            prop_assert!((a.re - b.re).abs() <= lsb + 1e-12);
            prop_assert!((a.im - b.im).abs() <= lsb + 1e-12);
        }
    }

    /// Interference waveforms have exactly the requested length and only
    /// carry power while "active".
    #[test]
    fn interference_length_is_exact(n in 0usize..4096, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let wifi = InterferenceModel::wifi(Dbm::new(-60.0), 200).waveform(&mut rng, n);
        prop_assert_eq!(wifi.len(), n);
        let bt = InterferenceModel::bluetooth(Dbm::new(-60.0), 100).waveform(&mut rng, n);
        prop_assert_eq!(bt.len(), n);
        let none = InterferenceModel::none().waveform(&mut rng, n);
        prop_assert!(none.iter().all(|s| s.power() == 0.0));
    }

    /// Excitation masks are binary, exact-length, and tone is all-ones.
    #[test]
    fn excitation_masks_are_well_formed(
        n in 0usize..4096,
        duty in 0.05f64..1.0,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let tone = Excitation::tone().availability_mask(&mut rng, n);
        prop_assert!(tone.iter().all(|&m| m == 1.0));
        let ofdm = Excitation::ofdm(duty, 64).availability_mask(&mut rng, n);
        prop_assert_eq!(ofdm.len(), n);
        prop_assert!(ofdm.iter().all(|&m| m == 0.0 || m == 1.0));
    }

    /// The shadowing field is deterministic per position and has zero
    /// offset when disabled.
    #[test]
    fn shadowing_is_frozen(x in -3.0f64..3.0, y in -3.0f64..3.0, seed in any::<u64>()) {
        let model = cbma_channel::ShadowingModel::new(3.0, seed);
        let p = Point::new(x, y);
        prop_assert_eq!(model.offset_for(p), model.offset_for(p));
        prop_assert_eq!(
            cbma_channel::ShadowingModel::disabled().offset_for(p),
            Db::ZERO
        );
    }
}
