//! Superposition of concurrent tag signals at the receiver.
//!
//! The receiver's antenna sees the *sum* of every tag's backscattered
//! waveform — each scaled by its own link gain (the near-far problem of
//! §IV), rotated by an unknown static phase, spread by multipath, shifted
//! by its clock offset — plus ambient interference and the noise floor.
//! [`Mixer::combine`] produces that composite IQ stream, which is exactly
//! what `cbma-rx` decodes.

use rand::Rng;

use cbma_types::units::Hertz;
use cbma_types::Iq;

use crate::awgn::NoiseModel;
use crate::excitation::Excitation;
use crate::interference::InterferenceModel;
use crate::multipath::ChannelTaps;

/// One tag's contribution to the received signal.
#[derive(Debug, Clone)]
pub struct TagSignal {
    /// OOK envelope at the receiver sample rate: 1.0 while the tag
    /// reflects, 0.0 while it absorbs.
    pub envelope: Vec<f64>,
    /// Mean received amplitude in √W (Friis × shadowing × |ΔΓ| state).
    pub amplitude: f64,
    /// Static carrier phase of this tag's reflection path for the frame.
    pub phase: f64,
    /// Realized small-scale fading taps.
    pub taps: ChannelTaps,
    /// Start delay in samples (clock asynchrony), possibly fractional.
    pub delay_samples: f64,
    /// Residual subcarrier frequency offset as *radians per sample*:
    /// tag oscillators are only ppm-accurate, so the inter-tag phase
    /// beats across the frame instead of staying fixed.
    pub freq_offset_rad_per_sample: f64,
}

impl TagSignal {
    /// A flat line-of-sight signal with no fading or delay.
    pub fn ideal(envelope: Vec<f64>, amplitude: f64) -> TagSignal {
        TagSignal {
            envelope,
            amplitude,
            phase: 0.0,
            taps: ChannelTaps::identity(),
            delay_samples: 0.0,
            freq_offset_rad_per_sample: 0.0,
        }
    }

    /// Length of the contribution including its delay and echo tail.
    fn extent(&self) -> usize {
        let tap_tail = self.taps.taps().iter().map(|(d, _)| *d).max().unwrap_or(0);
        self.delay_samples.ceil() as usize + self.envelope.len() + tap_tail
    }
}

/// Combines tag signals with the channel impairments into received IQ.
#[derive(Debug, Clone)]
pub struct Mixer {
    /// Receiver noise environment.
    pub noise: NoiseModel,
    /// Bandwidth over which the noise integrates (≈ the chip bandwidth).
    pub bandwidth: Hertz,
    /// Excitation availability model (shared by all tags).
    pub excitation: Excitation,
    /// Ambient interference source.
    pub interference: InterferenceModel,
    /// Noise-only samples prepended so the frame detector can estimate the
    /// floor before the burst arrives.
    pub lead_in: usize,
    /// Noise-only samples appended after the last tag contribution ends.
    pub tail: usize,
}

impl Mixer {
    /// A quiet-channel mixer for the given bandwidth with paper-default
    /// noise, tone excitation and no interference.
    pub fn new(bandwidth: Hertz) -> Mixer {
        Mixer {
            noise: NoiseModel::paper_default(),
            bandwidth,
            excitation: Excitation::tone(),
            interference: InterferenceModel::none(),
            lead_in: 256,
            tail: 64,
        }
    }

    /// The sample index at which tag signals start (end of the lead-in).
    #[inline]
    pub fn signal_start(&self) -> usize {
        self.lead_in
    }

    /// Builds the composite received IQ stream.
    ///
    /// The buffer is `lead_in + max tag extent + tail` samples: noise-only
    /// lead-in, then the superposed tags (each at its own delay), then a
    /// noise-only tail.
    pub fn combine<R: Rng + ?Sized>(&self, rng: &mut R, signals: &[TagSignal]) -> Vec<Iq> {
        let body = signals.iter().map(TagSignal::extent).max().unwrap_or(0);
        let total = self.lead_in + body + self.tail;

        let mut buf = self.noise.samples(rng, total, self.bandwidth);

        for (i, x) in self
            .interference
            .waveform(rng, total)
            .into_iter()
            .enumerate()
        {
            buf[i] += x;
        }

        let mask = self.excitation.availability_mask(rng, total);

        for sig in signals {
            // Complex baseband contribution before channel effects; the
            // residual subcarrier offset makes the phase ramp with time.
            let step = Iq::phasor(sig.freq_offset_rad_per_sample);
            let mut phasor = Iq::phasor(sig.phase);
            let clean: Vec<Iq> = sig
                .envelope
                .iter()
                .map(|&e| {
                    let sample = phasor.scale(e * sig.amplitude);
                    phasor *= step;
                    sample
                })
                .collect();
            // Pad to the full extent before fading/delaying so echo tails
            // and delayed samples are not truncated.
            let padded = cbma_dsp::resample::fit_length(&clean, sig.extent());
            let faded = sig.taps.apply(&padded);
            let delayed = cbma_dsp::resample::fractional_delay(&faded, sig.delay_samples);
            for (k, s) in delayed.into_iter().enumerate() {
                let pos = self.lead_in + k;
                if pos < buf.len() {
                    // The tag can only reflect while the excitation is on
                    // the air.
                    buf[pos] += s.scale(mask[pos]);
                }
            }
        }
        buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbma_types::units::{Db, Dbm};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn quiet_mixer() -> Mixer {
        Mixer {
            noise: NoiseModel::new(Db::new(0.0), Dbm::new(-200.0)),
            bandwidth: Hertz::new(1.0),
            excitation: Excitation::tone(),
            interference: InterferenceModel::none(),
            lead_in: 16,
            tail: 8,
        }
    }

    #[test]
    fn single_tag_appears_after_lead_in() {
        let mixer = quiet_mixer();
        let mut rng = StdRng::seed_from_u64(1);
        let sig = TagSignal::ideal(vec![1.0, 1.0, 0.0, 1.0], 2.0);
        let buf = mixer.combine(&mut rng, &[sig]);
        assert_eq!(buf.len(), 16 + 4 + 8);
        assert!(buf[..16].iter().all(|s| s.abs() < 1e-3));
        assert!((buf[16].re - 2.0).abs() < 1e-3);
        assert!((buf[17].re - 2.0).abs() < 1e-3);
        assert!(buf[18].abs() < 1e-3);
        assert!((buf[19].re - 2.0).abs() < 1e-3);
    }

    #[test]
    fn two_tags_superpose_linearly() {
        let mixer = quiet_mixer();
        let mut rng = StdRng::seed_from_u64(2);
        let a = TagSignal::ideal(vec![1.0, 1.0], 1.0);
        let b = TagSignal::ideal(vec![1.0, 0.0], 3.0);
        let buf = mixer.combine(&mut rng, &[a, b]);
        assert!((buf[16].re - 4.0).abs() < 1e-3);
        assert!((buf[17].re - 1.0).abs() < 1e-3);
    }

    #[test]
    fn delay_shifts_a_tag() {
        let mixer = quiet_mixer();
        let mut rng = StdRng::seed_from_u64(3);
        let mut sig = TagSignal::ideal(vec![1.0, 1.0], 1.0);
        sig.delay_samples = 2.0;
        let buf = mixer.combine(&mut rng, &[sig]);
        assert!(buf[16].abs() < 1e-3);
        assert!(buf[17].abs() < 1e-3);
        assert!((buf[18].re - 1.0).abs() < 1e-3);
        assert!((buf[19].re - 1.0).abs() < 1e-3);
    }

    #[test]
    fn phase_rotates_the_contribution() {
        let mixer = quiet_mixer();
        let mut rng = StdRng::seed_from_u64(4);
        let mut sig = TagSignal::ideal(vec![1.0], 1.0);
        sig.phase = std::f64::consts::FRAC_PI_2;
        let buf = mixer.combine(&mut rng, &[sig]);
        assert!(buf[16].re.abs() < 1e-3);
        assert!((buf[16].im - 1.0).abs() < 1e-3);
    }

    #[test]
    fn empty_signal_list_is_noise_only() {
        let mixer = quiet_mixer();
        let mut rng = StdRng::seed_from_u64(5);
        let buf = mixer.combine(&mut rng, &[]);
        assert_eq!(buf.len(), 16 + 8);
    }

    #[test]
    fn noise_floor_present_throughout() {
        let mut mixer = quiet_mixer();
        mixer.noise = NoiseModel::new(Db::new(0.0), Dbm::new(-30.0));
        let mut rng = StdRng::seed_from_u64(6);
        let buf = mixer.combine(&mut rng, &[]);
        let mean: f64 = buf.iter().map(|s| s.power()).sum::<f64>() / buf.len() as f64;
        let expected = Dbm::new(-30.0).to_watts().get();
        assert!((mean / expected - 1.0).abs() < 0.6, "noise power off");
    }

    #[test]
    fn multipath_tail_extends_contribution() {
        let mixer = quiet_mixer();
        let mut rng = StdRng::seed_from_u64(7);
        let mut sig = TagSignal::ideal(vec![1.0], 1.0);
        sig.taps = ChannelTaps::identity();
        let base_len = mixer.combine(&mut rng, &[sig.clone()]).len();
        // Add an echo 3 samples later: extent grows by 3.
        let taps = crate::multipath::MultipathModel {
            k_factor: f64::INFINITY,
            echo_taps: 1,
            echo_decay: 0.25,
            max_echo_delay: 3,
        }
        .realize(&mut rng);
        sig.taps = taps;
        let echo_len = mixer.combine(&mut rng, &[sig]).len();
        assert!(echo_len > base_len);
    }
}
