//! Receiver front-end: AGC and ADC quantization.
//!
//! The paper's USRP RIO digitizes with a high-resolution ADC; a
//! commodity-WiFi-class receiver (the deployment target, §I) has fewer
//! effective bits, and with automatic gain control the full scale is set
//! by the *strongest* signal in the band — so a weak tag's waveform rides
//! on a handful of LSBs under a strong neighbour. [`AdcModel`] applies
//! that chain to the mixed IQ stream; the `ablation_quantization` bench
//! sweeps the bit depth.

use rand::Rng;
use serde::{Deserialize, Serialize};

use cbma_types::Iq;

/// An AGC + uniform-quantizer front end.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdcModel {
    /// Effective number of bits per I/Q component.
    pub bits: u32,
    /// AGC headroom above the observed peak, linear (≥ 1). The converter
    /// full scale is `headroom × max(|I|, |Q|)`.
    pub headroom: f64,
    /// Add ±½ LSB dither before quantizing (decorrelates the error).
    pub dither: bool,
}

impl AdcModel {
    /// Creates a model with the given effective bits, ×1.25 headroom and
    /// dithering on.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or > 24.
    pub fn new(bits: u32) -> AdcModel {
        assert!((1..=24).contains(&bits), "bits must be in 1..=24");
        AdcModel {
            bits,
            headroom: 1.25,
            dither: true,
        }
    }

    /// A USRP-class converter (12 effective bits).
    pub fn usrp() -> AdcModel {
        AdcModel::new(12)
    }

    /// A commodity-WiFi-class converter (8 effective bits).
    pub fn commodity_wifi() -> AdcModel {
        AdcModel::new(8)
    }

    /// Quantizes a buffer in place. The AGC full scale is derived from
    /// the buffer itself (peak detector), matching a per-capture AGC.
    pub fn quantize<R: Rng + ?Sized>(&self, rng: &mut R, samples: &mut [Iq]) {
        let peak = samples
            .iter()
            .map(|s| s.re.abs().max(s.im.abs()))
            .fold(0.0f64, f64::max);
        if peak == 0.0 {
            return;
        }
        let full_scale = peak * self.headroom;
        let levels = (1u64 << self.bits) as f64;
        let lsb = 2.0 * full_scale / levels;
        let q = |x: f64, rng: &mut R| -> f64 {
            let dither = if self.dither {
                rng.gen_range(-0.5..0.5)
            } else {
                0.0
            };
            let code = (x / lsb + dither).round();
            let max_code = levels / 2.0 - 1.0;
            code.clamp(-(levels / 2.0), max_code) * lsb
        };
        for s in samples.iter_mut() {
            *s = Iq::new(q(s.re, rng), q(s.im, rng));
        }
    }

    /// Ideal SQNR for a full-scale sinusoid: 6.02·bits + 1.76 dB.
    pub fn ideal_sqnr_db(&self) -> f64 {
        6.02 * f64::from(self.bits) + 1.76
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn quantization_error_is_sub_lsb() {
        let adc = AdcModel::new(8);
        let mut rng = StdRng::seed_from_u64(1);
        let original: Vec<Iq> = (0..1000)
            .map(|k| Iq::from_polar(0.9, 0.1 * k as f64))
            .collect();
        let mut q = original.clone();
        adc.quantize(&mut rng, &mut q);
        let full_scale = 0.9 * adc.headroom;
        let lsb = 2.0 * full_scale / 256.0;
        for (a, b) in original.iter().zip(&q) {
            assert!((a.re - b.re).abs() <= lsb, "I error exceeds one LSB");
            assert!((a.im - b.im).abs() <= lsb, "Q error exceeds one LSB");
        }
    }

    #[test]
    fn measured_sqnr_tracks_ideal() {
        let adc = AdcModel {
            bits: 10,
            headroom: 1.0,
            dither: false,
        };
        let mut rng = StdRng::seed_from_u64(2);
        let original: Vec<Iq> = (0..50_000)
            .map(|k| Iq::from_polar(1.0, 0.01 * k as f64))
            .collect();
        let mut q = original.clone();
        adc.quantize(&mut rng, &mut q);
        let sig: f64 = original.iter().map(|s| s.power()).sum();
        let err: f64 = original
            .iter()
            .zip(&q)
            .map(|(a, b)| (*a - *b).power())
            .sum();
        let sqnr = 10.0 * (sig / err).log10();
        let ideal = adc.ideal_sqnr_db();
        assert!(
            (sqnr - ideal).abs() < 3.0,
            "sqnr {sqnr:.1} dB vs ideal {ideal:.1} dB"
        );
    }

    #[test]
    fn weak_signal_under_agc_loses_resolution() {
        // A strong and a weak component: with 4 bits the weak one is
        // mangled; with 12 bits it survives.
        let weak_amp = 0.002;
        let original: Vec<Iq> = (0..2000)
            .map(|k| Iq::new(0.9, 0.0) + Iq::from_polar(weak_amp, 0.07 * k as f64))
            .collect();
        let err_at = |bits: u32| {
            let adc = AdcModel::new(bits);
            let mut rng = StdRng::seed_from_u64(3);
            let mut q = original.clone();
            adc.quantize(&mut rng, &mut q);
            original
                .iter()
                .zip(&q)
                .map(|(a, b)| (*a - *b).power())
                .sum::<f64>()
                / original.len() as f64
        };
        let coarse = err_at(4);
        let fine = err_at(12);
        // The weak component's power is 4e-6; 4-bit error dwarfs it,
        // 12-bit error is far below it.
        assert!(coarse > weak_amp * weak_amp);
        assert!(fine < weak_amp * weak_amp / 10.0);
    }

    #[test]
    fn silence_is_left_alone() {
        let adc = AdcModel::new(8);
        let mut rng = StdRng::seed_from_u64(4);
        let mut buf = vec![Iq::ZERO; 16];
        adc.quantize(&mut rng, &mut buf);
        assert!(buf.iter().all(|s| s.power() == 0.0));
    }

    #[test]
    fn presets_and_bounds() {
        assert_eq!(AdcModel::usrp().bits, 12);
        assert_eq!(AdcModel::commodity_wifi().bits, 8);
        assert!((AdcModel::new(12).ideal_sqnr_db() - 74.0).abs() < 0.1);
    }

    #[test]
    #[should_panic(expected = "bits")]
    fn zero_bits_panics() {
        AdcModel::new(0);
    }
}
