//! Rician small-scale fading.
//!
//! The office environment is "challenging … with rich multipath" (§I). The
//! dominant line-of-sight reflection plus scattered echoes is the textbook
//! Rician channel: a deterministic LOS component of relative power
//! K/(K+1) plus a circularly-symmetric scattered component of power
//! 1/(K+1), optionally extended with a short tap-delay line of discrete
//! echoes. Fading is frozen per frame (the office is static at frame
//! timescales) and drawn from the simulation's seeded RNG.

use rand::Rng;
use serde::{Deserialize, Serialize};

use cbma_types::Iq;

use crate::shadowing::gaussian;

/// One realized multipath channel: a list of (sample-delay, complex-gain)
/// taps with unit expected total power.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelTaps {
    taps: Vec<(usize, Iq)>,
}

impl ChannelTaps {
    /// A single unit tap (no fading, no echo).
    pub fn identity() -> ChannelTaps {
        ChannelTaps {
            taps: vec![(0, Iq::ONE)],
        }
    }

    /// The taps as (delay-in-samples, gain) pairs, first tap at delay 0.
    pub fn taps(&self) -> &[(usize, Iq)] {
        &self.taps
    }

    /// Total power across taps.
    pub fn total_power(&self) -> f64 {
        self.taps.iter().map(|(_, g)| g.power()).sum()
    }

    /// Applies the taps to a waveform (sparse convolution). Output length
    /// equals input length; echoes beyond the end are truncated.
    pub fn apply(&self, input: &[Iq]) -> Vec<Iq> {
        let mut out = vec![Iq::ZERO; input.len()];
        for &(delay, gain) in &self.taps {
            for (i, &x) in input.iter().enumerate() {
                let j = i + delay;
                if j >= out.len() {
                    break;
                }
                out[j] += x * gain;
            }
        }
        out
    }
}

/// Rician fading generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MultipathModel {
    /// Rician K-factor (linear). Large K → nearly pure LOS;
    /// K = 0 → Rayleigh.
    pub k_factor: f64,
    /// Number of discrete echo taps after the main tap.
    pub echo_taps: usize,
    /// Power decay per echo tap, linear (e.g. 0.25 → each echo 6 dB below
    /// the previous).
    pub echo_decay: f64,
    /// Maximum echo delay in samples.
    pub max_echo_delay: usize,
}

impl MultipathModel {
    /// Indoor office: strong LOS (K = 10) with one weak echo. At chip-scale
    /// sample rates (≈125 ns/sample) a 4 m × 6 m office's delay spread is
    /// sub-sample, so fading is mostly *flat* — echoes beyond one sample
    /// would imply tens of meters of excess path.
    pub fn indoor_default() -> MultipathModel {
        MultipathModel {
            k_factor: 10.0,
            echo_taps: 1,
            echo_decay: 0.05,
            max_echo_delay: 1,
        }
    }

    /// No fading at all (for unit tests and ablations).
    pub fn disabled() -> MultipathModel {
        MultipathModel {
            k_factor: f64::INFINITY,
            echo_taps: 0,
            echo_decay: 0.0,
            max_echo_delay: 0,
        }
    }

    /// Draws one channel realization. The main tap has unit *expected*
    /// power: LOS amplitude √(K/(K+1)) plus scattered component of
    /// variance 1/(K+1).
    pub fn realize<R: Rng + ?Sized>(&self, rng: &mut R) -> ChannelTaps {
        if self.k_factor.is_infinite() && self.echo_taps == 0 {
            return ChannelTaps::identity();
        }
        let (los, scatter_var) = if self.k_factor.is_infinite() {
            (1.0, 0.0)
        } else {
            (
                (self.k_factor / (self.k_factor + 1.0)).sqrt(),
                1.0 / (self.k_factor + 1.0),
            )
        };
        let sigma = (scatter_var / 2.0).sqrt();
        let main = Iq::new(los + gaussian(rng, sigma), gaussian(rng, sigma));
        let mut taps = vec![(0usize, main)];
        let mut echo_power = self.echo_decay;
        for t in 0..self.echo_taps {
            let delay = (1 + t).min(self.max_echo_delay.max(1));
            let amp = echo_power.sqrt();
            let phase = rng.gen_range(0.0..std::f64::consts::TAU);
            taps.push((delay, Iq::from_polar(amp * (0.5 + rng.gen::<f64>()), phase)));
            echo_power *= self.echo_decay;
        }
        ChannelTaps { taps }
    }
}

impl Default for MultipathModel {
    fn default() -> MultipathModel {
        MultipathModel::indoor_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn identity_taps_pass_through() {
        let taps = ChannelTaps::identity();
        let input = vec![Iq::new(1.0, -2.0), Iq::new(0.5, 0.5)];
        assert_eq!(taps.apply(&input), input);
        assert!((taps.total_power() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disabled_model_is_identity() {
        let mut rng = StdRng::seed_from_u64(1);
        let taps = MultipathModel::disabled().realize(&mut rng);
        assert_eq!(taps, ChannelTaps::identity());
    }

    #[test]
    fn mean_main_tap_power_is_unity() {
        let model = MultipathModel {
            k_factor: 8.0,
            echo_taps: 0,
            echo_decay: 0.0,
            max_echo_delay: 0,
        };
        let mut rng = StdRng::seed_from_u64(3);
        let mean: f64 = (0..20_000)
            .map(|_| model.realize(&mut rng).taps()[0].1.power())
            .sum::<f64>()
            / 20_000.0;
        assert!((mean - 1.0).abs() < 0.03, "mean main-tap power {mean}");
    }

    #[test]
    fn rayleigh_limit_fluctuates_deeply() {
        // K = 0: amplitude is Rayleigh; ~10% of draws fall below
        // 0.1 of the mean power (deep fades exist).
        let model = MultipathModel {
            k_factor: 0.0,
            echo_taps: 0,
            echo_decay: 0.0,
            max_echo_delay: 0,
        };
        let mut rng = StdRng::seed_from_u64(4);
        let deep = (0..10_000)
            .filter(|_| model.realize(&mut rng).taps()[0].1.power() < 0.1)
            .count();
        assert!(deep > 500, "only {deep} deep fades in 10k draws");
    }

    #[test]
    fn high_k_concentrates_near_los() {
        let model = MultipathModel {
            k_factor: 100.0,
            echo_taps: 0,
            echo_decay: 0.0,
            max_echo_delay: 0,
        };
        // At K = 100 the scatter component is ~3σ away from the band
        // edges, so a *per-draw* assertion over 1000 draws fails with
        // probability ≈ 1 − (1 − 1e-3)^1000 ≈ 58%. Assert the
        // distribution instead: nearly all draws concentrate in the
        // band and the mean power stays at unity.
        let mut rng = StdRng::seed_from_u64(5);
        let draws = 1000;
        let mut strayed = 0usize;
        let mut sum = 0.0f64;
        for _ in 0..draws {
            let p = model.realize(&mut rng).taps()[0].1.power();
            sum += p;
            if !(0.6..1.5).contains(&p) {
                strayed += 1;
            }
        }
        assert!(strayed <= 10, "K=100: {strayed}/{draws} draws strayed");
        let mean = sum / draws as f64;
        assert!((mean - 1.0).abs() < 0.05, "K=100 mean power {mean}");
    }

    #[test]
    fn echoes_are_delayed_and_weak() {
        let model = MultipathModel::indoor_default();
        let mut rng = StdRng::seed_from_u64(6);
        let taps = model.realize(&mut rng);
        assert_eq!(taps.taps().len(), 2);
        let main_p = taps.taps()[0].1.power();
        for &(delay, gain) in &taps.taps()[1..] {
            assert!(delay >= 1 && delay <= model.max_echo_delay);
            assert!(gain.power() < main_p, "echo stronger than main tap");
        }
    }

    #[test]
    fn apply_superposes_echoes() {
        let taps = ChannelTaps {
            taps: vec![(0, Iq::ONE), (2, Iq::new(0.5, 0.0))],
        };
        let input = vec![Iq::ONE, Iq::ZERO, Iq::ZERO, Iq::ZERO];
        let out = taps.apply(&input);
        assert!((out[0] - Iq::ONE).abs() < 1e-12);
        assert!(out[1].abs() < 1e-12);
        assert!((out[2] - Iq::new(0.5, 0.0)).abs() < 1e-12);
    }
}
