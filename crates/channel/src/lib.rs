//! Radio-channel models replacing the paper's office testbed.
//!
//! The paper evaluates CBMA on real hardware in a 4 m × 6 m office
//! (§VII-A). This crate substitutes that environment with physics-faithful
//! models (see DESIGN.md for the substitution table):
//!
//! * [`friis`] — the backscatter link budget of paper Eq. 1, including the
//!   |ΔΓ|²/4 reflection term tuned by the tag's impedance state, used both
//!   for signal synthesis and by the node-selection scheme (Fig. 5),
//! * [`shadowing`] — log-distance path loss with log-normal shadowing for
//!   the "challenging indoor scenarios" variability,
//! * [`multipath`] — Rician tap-delay-line small-scale fading,
//! * [`awgn`] — thermal-plus-leakage noise floor,
//! * [`clock`] — per-tag timing offsets and drift, the asynchrony of
//!   Fig. 11,
//! * [`excitation`] — continuous-tone vs intermittent-OFDM excitation
//!   (Fig. 12 case iv),
//! * [`interference`] — WiFi CSMA/CA bursts and Bluetooth FHSS hops
//!   (Fig. 12 cases ii/iii),
//! * [`mixer`] — superposes every tag's chip waveform, fading, delay,
//!   interference and noise into the receiver's IQ stream.
//!
//! # Examples
//!
//! ```
//! use cbma_channel::friis::BackscatterLink;
//! use cbma_types::geometry::Point;
//!
//! let link = BackscatterLink::paper_default();
//! let p = link.received_power(
//!     Point::from_cm(-50.0, 0.0), // excitation source
//!     Point::new(0.0, 0.3),       // tag
//!     Point::from_cm(50.0, 0.0),  // receiver
//! );
//! assert!(p.get() < 0.0, "backscatter power is far below 1 mW");
//! ```

pub mod awgn;
pub mod clock;
pub mod excitation;
pub mod friis;
pub mod frontend;
pub mod interference;
pub mod mixer;
pub mod multipath;
pub mod shadowing;

pub use awgn::NoiseModel;
pub use clock::ClockModel;
pub use excitation::{Excitation, ExcitationKind};
pub use friis::{BackscatterLink, Sideband};
pub use frontend::AdcModel;
pub use interference::{InterferenceKind, InterferenceModel};
pub use mixer::{Mixer, TagSignal};
pub use multipath::MultipathModel;
pub use shadowing::ShadowingModel;
