//! Log-normal shadowing for "challenging indoor scenarios".
//!
//! The Friis field (Eq. 1) is the free-space mean; the paper's office has
//! obstacles and rich multipath (§I, §VII). Large-scale variation is
//! modelled the standard way: a per-link log-normal shadowing term with
//! standard deviation σ dB, frozen per deployment (obstacles do not move
//! between frames) and drawn deterministically from the link's position so
//! reruns reproduce the same environment.

use rand::Rng;
use rand_distr_normal::sample_standard_normal;
use serde::{Deserialize, Serialize};

use cbma_types::units::Db;
use cbma_types::{geometry::Point, SeedSequence};

/// Box–Muller standard normal sampling without external distributions.
mod rand_distr_normal {
    use rand::Rng;

    /// Draws one standard-normal sample.
    pub fn sample_standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        loop {
            let u1: f64 = rng.gen();
            if u1 <= f64::MIN_POSITIVE {
                continue;
            }
            let u2: f64 = rng.gen();
            return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        }
    }
}

/// Draws one zero-mean Gaussian sample with the given σ.
pub fn gaussian<R: Rng + ?Sized>(rng: &mut R, sigma: f64) -> f64 {
    sample_standard_normal(rng) * sigma
}

/// Per-deployment log-normal shadowing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShadowingModel {
    /// Standard deviation of the shadowing term in dB. 0 disables it.
    pub sigma_db: f64,
    /// Root seed tying the shadowing realization to the deployment.
    pub seed: u64,
}

impl ShadowingModel {
    /// Creates a model with the given σ (dB) and seed.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when `sigma_db` is negative.
    pub fn new(sigma_db: f64, seed: u64) -> ShadowingModel {
        debug_assert!(sigma_db >= 0.0, "shadowing sigma must be non-negative");
        ShadowingModel { sigma_db, seed }
    }

    /// A typical indoor-office value: σ = 3 dB.
    pub fn indoor_default(seed: u64) -> ShadowingModel {
        ShadowingModel::new(3.0, seed)
    }

    /// Disabled shadowing (free-space only).
    pub fn disabled() -> ShadowingModel {
        ShadowingModel::new(0.0, 0)
    }

    /// The shadowing offset for the link to a tag at `tag`. Deterministic
    /// in `(seed, position)`: the same deployment always sees the same
    /// obstacles.
    pub fn offset_for(&self, tag: Point) -> Db {
        if self.sigma_db == 0.0 {
            return Db::ZERO;
        }
        // Quantize position to centimeters so that nearby floating-point
        // representations of "the same place" shadow identically.
        let qx = (tag.x * 100.0).round() as i64;
        let qy = (tag.y * 100.0).round() as i64;
        let seq = SeedSequence::new(self.seed);
        let mut rng = seq.rng_indexed("shadowing", (qx as u64) ^ (qy as u64).rotate_left(32));
        Db::new(gaussian(&mut rng, self.sigma_db))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn disabled_model_is_zero_everywhere() {
        let m = ShadowingModel::disabled();
        assert_eq!(m.offset_for(Point::new(1.0, 2.0)), Db::ZERO);
    }

    #[test]
    fn offsets_are_deterministic_per_position() {
        let m = ShadowingModel::indoor_default(42);
        let p = Point::new(0.37, -1.22);
        assert_eq!(m.offset_for(p), m.offset_for(p));
        // 1 mm away rounds to the same centimeter cell.
        assert_eq!(m.offset_for(p), m.offset_for(Point::new(0.3701, -1.2203)));
    }

    #[test]
    fn different_positions_shadow_differently() {
        let m = ShadowingModel::indoor_default(42);
        let a = m.offset_for(Point::new(0.0, 0.0));
        let b = m.offset_for(Point::new(1.0, 1.0));
        assert_ne!(a, b);
    }

    #[test]
    fn different_seeds_give_different_environments() {
        let p = Point::new(0.5, 0.5);
        let a = ShadowingModel::indoor_default(1).offset_for(p);
        let b = ShadowingModel::indoor_default(2).offset_for(p);
        assert_ne!(a, b);
    }

    #[test]
    fn sample_statistics_match_sigma() {
        let m = ShadowingModel::new(3.0, 7);
        let samples: Vec<f64> = (0..4000)
            .map(|i| {
                m.offset_for(Point::new(i as f64 * 0.01, -(i as f64) * 0.013))
                    .get()
            })
            .collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var =
            samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / samples.len() as f64;
        assert!(mean.abs() < 0.25, "mean = {mean}");
        assert!((var.sqrt() - 3.0).abs() < 0.3, "std = {}", var.sqrt());
    }

    #[test]
    fn gaussian_helper_statistics() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let samples: Vec<f64> = (0..20_000).map(|_| gaussian(&mut rng, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var =
            samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / samples.len() as f64;
        assert!(mean.abs() < 0.05);
        assert!((var.sqrt() - 2.0).abs() < 0.05);
    }
}
