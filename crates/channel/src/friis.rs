//! The backscatter link budget — paper Eq. 1.
//!
//! ```text
//! P_r = (P_t·G_t / 4π d₁²) · (λ²·G_tag² / 4π · |ΔΓ|²/4 · α) · (1 / 4π d₂² · λ²·G_r / 4π)
//! ```
//!
//! The first factor propagates the excitation to the tag, the middle one is
//! the fraction the tag re-radiates (scaled by the reflection-coefficient
//! difference |ΔΓ| the impedance switch controls), and the last propagates
//! the reflection to the receiver. The node-selection scheme evaluates this
//! field over candidate positions (Fig. 5), and the mixer uses it as the
//! mean link gain for signal synthesis.

use serde::{Deserialize, Serialize};

use cbma_types::geometry::Point;
use cbma_types::units::{Dbm, Hertz, Watts};

use std::f64::consts::PI;

/// Which sidebands the tag's subcarrier modulation produces.
///
/// A square-wave subcarrier mirrors the excitation into both f_c ± Δf
/// (the paper's footnote 1); the receiver listens to one of them, so half
/// the backscattered power is wasted. Ref. \[10\] ("Inter-technology
/// backscatter") generates a single sideband with a quadrature switch
/// network, recovering that 3 dB — modelled here as a link-budget option
/// and measured by the `ablation_sideband` bench.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Sideband {
    /// Ordinary square-wave modulation: energy splits across f_c ± Δf.
    #[default]
    Double,
    /// Single-sideband modulation (ref. \[10\]): all energy lands in the
    /// receiver's band (+3 dB).
    Single,
}

/// Parameters of the backscatter link budget.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BackscatterLink {
    /// Excitation-source transmit power P_t.
    pub tx_power: Dbm,
    /// Excitation antenna gain G_t (linear).
    pub tx_gain: f64,
    /// Tag antenna gain G_tag (linear).
    pub tag_gain: f64,
    /// Receiver antenna gain G_r (linear).
    pub rx_gain: f64,
    /// Carrier frequency (sets λ).
    pub carrier: Hertz,
    /// Reflection-coefficient difference magnitude |ΔΓ| ∈ [0, 2].
    pub delta_gamma: f64,
    /// Backscatter efficiency α ∈ (0, 1] — modulation, harmonic (4/π sine
    /// approximation of the square subcarrier) and switching losses.
    pub alpha: f64,
    /// Sideband structure of the subcarrier modulation.
    pub sideband: Sideband,
}

impl BackscatterLink {
    /// The paper's implementation constants: 20 dBm excitation, 2 dBi
    /// antennas, 2 GHz carrier (§VI), full-swing reflection, and an α that
    /// folds in the single-sideband/harmonic losses of the square-wave
    /// subcarrier.
    pub fn paper_default() -> BackscatterLink {
        BackscatterLink {
            tx_power: Dbm::new(20.0),
            tx_gain: 1.58, // 2 dBi
            tag_gain: 1.58,
            rx_gain: 1.58,
            carrier: Hertz::from_ghz(2.0),
            delta_gamma: 1.0,
            alpha: 0.2,
            sideband: Sideband::Double,
        }
    }

    /// Returns a copy with a different |ΔΓ| (the impedance actuator).
    ///
    /// # Panics
    ///
    /// Panics in debug builds when `delta_gamma` is outside [0, 2].
    pub fn with_delta_gamma(mut self, delta_gamma: f64) -> BackscatterLink {
        debug_assert!(
            (0.0..=2.0).contains(&delta_gamma),
            "|ΔΓ| must be within [0, 2], got {delta_gamma}"
        );
        self.delta_gamma = delta_gamma;
        self
    }

    /// Returns a copy with a different excitation power (Fig. 8(b) sweep).
    pub fn with_tx_power(mut self, tx_power: Dbm) -> BackscatterLink {
        self.tx_power = tx_power;
        self
    }

    /// Returns a copy using single-sideband modulation (ref. \[10\]).
    pub fn with_single_sideband(mut self) -> BackscatterLink {
        self.sideband = Sideband::Single;
        self
    }

    /// Mean received backscatter power for given ES→tag and tag→RX
    /// distances (meters), clamping distances to 1 cm to avoid the
    /// near-field singularity of the far-field formula.
    pub fn received_power_at(&self, d1_m: f64, d2_m: f64) -> Dbm {
        let d1 = d1_m.max(0.01);
        let d2 = d2_m.max(0.01);
        let lambda = self.carrier.wavelength().get();
        let pt = self.tx_power.to_watts().get();

        let incident = pt * self.tx_gain / (4.0 * PI * d1 * d1);
        let reradiated = (lambda * lambda * self.tag_gain * self.tag_gain / (4.0 * PI))
            * (self.delta_gamma * self.delta_gamma / 4.0)
            * self.alpha;
        let capture = (1.0 / (4.0 * PI * d2 * d2)) * (lambda * lambda * self.rx_gain / (4.0 * PI));
        // The receiver listens to one shifted band; double-sideband
        // modulation wastes the mirror image.
        let sideband_gain = match self.sideband {
            Sideband::Double => 0.5,
            Sideband::Single => 1.0,
        };

        Watts::new(incident * reradiated * capture * sideband_gain).to_dbm()
    }

    /// Mean received power for concrete ES/tag/RX positions.
    pub fn received_power(&self, es: Point, tag: Point, rx: Point) -> Dbm {
        self.received_power_at(es.distance_to(tag), rx.distance_to(tag))
    }

    /// Received *amplitude* (√W) used when synthesizing the tag waveform.
    pub fn received_amplitude(&self, es: Point, tag: Point, rx: Point) -> f64 {
        self.received_power(es, tag, rx).to_watts().get().sqrt()
    }

    /// Evaluates the theoretical signal-strength field over a grid of tag
    /// positions (Fig. 5). Returns row-major `(point, power)` samples with
    /// `nx × ny` entries spanning the rectangle `[min, max]`.
    pub fn field(
        &self,
        es: Point,
        rx: Point,
        min: Point,
        max: Point,
        nx: usize,
        ny: usize,
    ) -> Vec<(Point, Dbm)> {
        let mut out = Vec::with_capacity(nx * ny);
        for iy in 0..ny {
            for ix in 0..nx {
                let fx = if nx > 1 {
                    ix as f64 / (nx - 1) as f64
                } else {
                    0.5
                };
                let fy = if ny > 1 {
                    iy as f64 / (ny - 1) as f64
                } else {
                    0.5
                };
                let p = Point::new(min.x + (max.x - min.x) * fx, min.y + (max.y - min.y) * fy);
                out.push((p, self.received_power(es, p, rx)));
            }
        }
        out
    }
}

impl Default for BackscatterLink {
    fn default() -> BackscatterLink {
        BackscatterLink::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_falls_with_fourth_power_of_symmetric_distance() {
        // Doubling both d1 and d2 costs 2^4 = 12 dB... (6 dB per hop
        // squared): 10·log10(16) ≈ 12.04 dB.
        let link = BackscatterLink::paper_default();
        let near = link.received_power_at(0.5, 0.5);
        let far = link.received_power_at(1.0, 1.0);
        let drop = (near - far).get();
        assert!((drop - 12.04).abs() < 0.1, "drop = {drop}");
    }

    #[test]
    fn power_scales_linearly_with_tx_power() {
        // §VII-B.1: "backscatter power and the excitation source power are
        // linearly related to each other".
        let base = BackscatterLink::paper_default();
        let p0 = base.received_power_at(0.5, 1.0);
        let p10 = base
            .with_tx_power(Dbm::new(30.0))
            .received_power_at(0.5, 1.0);
        assert!(((p10 - p0).get() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn delta_gamma_controls_power_quadratically() {
        let link = BackscatterLink::paper_default();
        let full = link.received_power_at(0.5, 1.0);
        let half = link.with_delta_gamma(0.5).received_power_at(0.5, 1.0);
        // Halving |ΔΓ| costs 6.02 dB.
        assert!(((full - half).get() - 6.02).abs() < 0.01);
    }

    #[test]
    fn typical_office_power_is_plausible() {
        // At d1=0.5 m, d2=1 m with paper defaults the backscatter power
        // should sit in the tens of dB above a -100 dBm noise floor but
        // far below the excitation power.
        let p = BackscatterLink::paper_default().received_power_at(0.5, 1.0);
        assert!(p.get() < -40.0 && p.get() > -80.0, "p = {p}");
    }

    #[test]
    fn near_field_is_clamped() {
        let link = BackscatterLink::paper_default();
        let p = link.received_power_at(0.0, 0.0);
        assert!(p.is_finite());
        assert_eq!(p, link.received_power_at(0.005, 0.002));
    }

    #[test]
    fn field_grid_shape_and_monotonicity() {
        let link = BackscatterLink::paper_default();
        let es = Point::from_cm(-50.0, 0.0);
        let rx = Point::from_cm(50.0, 0.0);
        let field = link.field(es, rx, Point::new(-2.0, -2.0), Point::new(2.0, 2.0), 9, 9);
        assert_eq!(field.len(), 81);
        // The point midway between ES and RX beats a far corner.
        let center = field
            .iter()
            .min_by(|a, b| {
                a.0.distance_to(Point::ORIGIN)
                    .partial_cmp(&b.0.distance_to(Point::ORIGIN))
                    .unwrap()
            })
            .unwrap();
        let corner = &field[0];
        assert!(center.1.get() > corner.1.get());
    }

    #[test]
    fn single_sideband_buys_exactly_3db() {
        let dsb = BackscatterLink::paper_default();
        let ssb = BackscatterLink::paper_default().with_single_sideband();
        let gain = (ssb.received_power_at(0.5, 1.0) - dsb.received_power_at(0.5, 1.0)).get();
        assert!((gain - 3.0103).abs() < 0.001, "gain {gain} dB");
    }

    #[test]
    fn amplitude_is_sqrt_of_power() {
        let link = BackscatterLink::paper_default();
        let es = Point::from_cm(-50.0, 0.0);
        let tag = Point::new(0.0, 0.5);
        let rx = Point::from_cm(50.0, 0.0);
        let a = link.received_amplitude(es, tag, rx);
        let p = link.received_power(es, tag, rx).to_watts().get();
        assert!((a * a - p).abs() / p < 1e-12);
    }
}
