//! Tag clock asynchrony.
//!
//! "As the tags operate in a distributed manner, the backscatter signals
//! from the tags may have time differences due to the different
//! transmission delays, processing times, etc." (§VII-C.2). Each tag's
//! oscillator also drifts by some parts-per-million. [`ClockModel`]
//! produces per-frame start delays (in samples, possibly fractional) that
//! the mixer applies with linear-interpolation fractional delay.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Per-tag timing behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClockModel {
    /// Fixed offset in samples applied to every frame (used directly by
    /// the Fig. 11 sweep).
    pub fixed_offset_samples: f64,
    /// Uniform random jitter amplitude in samples: each frame adds a draw
    /// from [0, jitter].
    pub jitter_samples: f64,
    /// Oscillator drift in parts per million; accumulates over the frame
    /// and is modelled as an extra offset of `ppm × 1e-6 × frame_len`.
    /// The same tolerance offsets the Δf subcarrier, which makes the
    /// inter-tag phase beat across a frame (see
    /// [`ClockModel::subcarrier_beat`]).
    pub drift_ppm: f64,
}

impl ClockModel {
    /// A perfectly synchronized clock.
    pub fn synchronized() -> ClockModel {
        ClockModel {
            fixed_offset_samples: 0.0,
            jitter_samples: 0.0,
            drift_ppm: 0.0,
        }
    }

    /// Default asynchrony for distributed tags: up to two chips of random
    /// start jitter (at the mixer's samples-per-chip resolution the caller
    /// scales this) and 20 ppm drift.
    pub fn distributed_default(samples_per_chip: usize) -> ClockModel {
        ClockModel {
            fixed_offset_samples: 0.0,
            jitter_samples: 2.0 * samples_per_chip as f64,
            drift_ppm: 20.0,
        }
    }

    /// A clock with only a fixed offset (Fig. 11's controlled delay).
    pub fn fixed(offset_samples: f64) -> ClockModel {
        ClockModel {
            fixed_offset_samples: offset_samples,
            jitter_samples: 0.0,
            drift_ppm: 0.0,
        }
    }

    /// Draws the residual subcarrier offset for one frame, in radians per
    /// sample: the tag's Δf oscillator is `drift_ppm`-accurate, so at a
    /// subcarrier of `subcarrier_hz` the received baseband rotates by up
    /// to `2π · ppm·1e-6 · subcarrier / sample_rate` per sample (uniform
    /// in ±that).
    pub fn subcarrier_beat<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        subcarrier_hz: f64,
        sample_rate_hz: f64,
    ) -> f64 {
        let max = std::f64::consts::TAU * self.drift_ppm.abs() * 1e-6 * subcarrier_hz
            / sample_rate_hz.max(1.0);
        if max > 0.0 {
            rng.gen_range(-max..max)
        } else {
            0.0
        }
    }

    /// Draws the start delay (in samples) for one frame of `frame_samples`
    /// samples. Always non-negative.
    pub fn frame_delay<R: Rng + ?Sized>(&self, rng: &mut R, frame_samples: usize) -> f64 {
        let jitter = if self.jitter_samples > 0.0 {
            rng.gen_range(0.0..self.jitter_samples)
        } else {
            0.0
        };
        let drift = self.drift_ppm.abs() * 1e-6 * frame_samples as f64;
        (self.fixed_offset_samples + jitter + drift).max(0.0)
    }
}

impl Default for ClockModel {
    fn default() -> ClockModel {
        ClockModel::synchronized()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn synchronized_clock_has_zero_delay() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(
            ClockModel::synchronized().frame_delay(&mut rng, 10_000),
            0.0
        );
    }

    #[test]
    fn fixed_clock_returns_exact_offset() {
        let mut rng = StdRng::seed_from_u64(1);
        let c = ClockModel::fixed(12.5);
        assert_eq!(c.frame_delay(&mut rng, 10_000), 12.5);
        assert_eq!(c.frame_delay(&mut rng, 0), 12.5);
    }

    #[test]
    fn jitter_is_bounded_and_varies() {
        let mut rng = StdRng::seed_from_u64(2);
        let c = ClockModel {
            fixed_offset_samples: 0.0,
            jitter_samples: 8.0,
            drift_ppm: 0.0,
        };
        let draws: Vec<f64> = (0..100).map(|_| c.frame_delay(&mut rng, 0)).collect();
        assert!(draws.iter().all(|&d| (0.0..8.0).contains(&d)));
        let distinct = draws.windows(2).filter(|w| w[0] != w[1]).count();
        assert!(distinct > 90);
    }

    #[test]
    fn drift_grows_with_frame_length() {
        let mut rng = StdRng::seed_from_u64(3);
        let c = ClockModel {
            fixed_offset_samples: 0.0,
            jitter_samples: 0.0,
            drift_ppm: 20.0,
        };
        let short = c.frame_delay(&mut rng, 1_000);
        let long = c.frame_delay(&mut rng, 100_000);
        assert!(long > short);
        assert!((long - 2.0).abs() < 1e-9); // 20e-6 × 1e5
    }

    #[test]
    fn distributed_default_scales_with_oversampling() {
        let c = ClockModel::distributed_default(8);
        assert_eq!(c.jitter_samples, 16.0);
    }

    #[test]
    fn delay_never_negative() {
        let mut rng = StdRng::seed_from_u64(4);
        let c = ClockModel::fixed(-5.0);
        assert_eq!(c.frame_delay(&mut rng, 100), 0.0);
    }
}
