//! Ambient interference: WiFi CSMA/CA bursts and Bluetooth FHSS hops.
//!
//! §VII-C.3 / Fig. 12: WiFi and Bluetooth interference degrade the packet
//! reception rate only slightly, because "Bluetooth is based on
//! frequency-hopping spread spectrum and WiFi transmission is based on
//! CSMA/CA with random backup, so the channel is not always occupied."
//! Both properties are modelled here:
//!
//! * **WiFi** occupies the channel in bursts with idle backoff gaps; the
//!   fraction of airtime used is the `traffic_load`.
//! * **Bluetooth** hops pseudo-randomly over 79 1-MHz channels every slot;
//!   only the hops that land inside the receiver's band interfere
//!   (`overlap_probability`).
//!
//! During an active interval the interferer contributes noise-like complex
//! samples at the configured received power.

use rand::Rng;
use serde::{Deserialize, Serialize};

use cbma_types::units::Dbm;
use cbma_types::Iq;

use crate::shadowing::gaussian;

/// The interference source present in the environment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum InterferenceKind {
    /// A clean channel.
    None,
    /// A WiFi transmitter sharing the band, using CSMA/CA.
    Wifi {
        /// Fraction of airtime occupied, in [0, 1].
        traffic_load: f64,
        /// Mean packet (busy-burst) duration in samples.
        mean_burst_samples: usize,
    },
    /// A Bluetooth piconet hopping across 79 channels.
    Bluetooth {
        /// Probability that a hop lands inside the receiver band
        /// (≈ band-overlap/79 channels).
        overlap_probability: f64,
        /// Hop slot duration in samples (625 µs at the sample rate).
        slot_samples: usize,
    },
}

/// An interference generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InterferenceModel {
    /// The source kind and its medium-access behaviour.
    pub kind: InterferenceKind,
    /// Received interference power while the source is active in-band.
    pub active_power: Dbm,
}

impl InterferenceModel {
    /// No interference.
    pub fn none() -> InterferenceModel {
        InterferenceModel {
            kind: InterferenceKind::None,
            active_power: Dbm::new(f64::NEG_INFINITY),
        }
    }

    /// A typical office WiFi neighbour: 30 % airtime, bursts of the given
    /// length, received at `active_power`.
    pub fn wifi(active_power: Dbm, mean_burst_samples: usize) -> InterferenceModel {
        InterferenceModel {
            kind: InterferenceKind::Wifi {
                traffic_load: 0.3,
                mean_burst_samples,
            },
            active_power,
        }
    }

    /// A Bluetooth piconet: 20-of-79-channel overlap with a 20 MHz
    /// receiver band, hopping every `slot_samples`.
    pub fn bluetooth(active_power: Dbm, slot_samples: usize) -> InterferenceModel {
        InterferenceModel {
            kind: InterferenceKind::Bluetooth {
                overlap_probability: 20.0 / 79.0,
                slot_samples,
            },
            active_power,
        }
    }

    /// Fraction of samples expected to carry interference.
    pub fn expected_duty(&self) -> f64 {
        match self.kind {
            InterferenceKind::None => 0.0,
            InterferenceKind::Wifi { traffic_load, .. } => traffic_load.clamp(0.0, 1.0),
            InterferenceKind::Bluetooth {
                overlap_probability,
                ..
            } => overlap_probability.clamp(0.0, 1.0),
        }
    }

    /// Generates `n` samples of interference (zeros while inactive).
    pub fn waveform<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<Iq> {
        match self.kind {
            InterferenceKind::None => vec![Iq::ZERO; n],
            InterferenceKind::Wifi {
                traffic_load,
                mean_burst_samples,
            } => {
                let load = traffic_load.clamp(0.0, 1.0);
                if load == 0.0 {
                    return vec![Iq::ZERO; n];
                }
                if load >= 1.0 {
                    let sigma = (self.active_power.to_watts().get() / 2.0).sqrt();
                    return (0..n)
                        .map(|_| Iq::new(gaussian(rng, sigma), gaussian(rng, sigma)))
                        .collect();
                }
                let mut out = Vec::with_capacity(n);
                let mean_on = mean_burst_samples.max(1) as f64;
                let mean_off = if load >= 1.0 {
                    0.0
                } else {
                    mean_on * (1.0 - load) / load
                };
                let sigma = (self.active_power.to_watts().get() / 2.0).sqrt();
                let mut on = rng.gen_bool(load);
                while out.len() < n {
                    let mean = if on { mean_on } else { mean_off.max(1.0) };
                    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                    let len = ((-mean * u.ln()).ceil().max(1.0) as usize).min(n - out.len());
                    for _ in 0..len {
                        out.push(if on {
                            Iq::new(gaussian(rng, sigma), gaussian(rng, sigma))
                        } else {
                            Iq::ZERO
                        });
                    }
                    on = !on;
                }
                out
            }
            InterferenceKind::Bluetooth {
                overlap_probability,
                slot_samples,
            } => {
                let p = overlap_probability.clamp(0.0, 1.0);
                let slot = slot_samples.max(1);
                let sigma = (self.active_power.to_watts().get() / 2.0).sqrt();
                let mut out = Vec::with_capacity(n);
                while out.len() < n {
                    let in_band = rng.gen_bool(p);
                    let len = slot.min(n - out.len());
                    for _ in 0..len {
                        out.push(if in_band {
                            Iq::new(gaussian(rng, sigma), gaussian(rng, sigma))
                        } else {
                            Iq::ZERO
                        });
                    }
                }
                out
            }
        }
    }
}

impl Default for InterferenceModel {
    fn default() -> InterferenceModel {
        InterferenceModel::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn none_is_all_zero() {
        let mut rng = StdRng::seed_from_u64(1);
        let w = InterferenceModel::none().waveform(&mut rng, 100);
        assert_eq!(w.len(), 100);
        assert!(w.iter().all(|s| s.power() == 0.0));
        assert_eq!(InterferenceModel::none().expected_duty(), 0.0);
    }

    #[test]
    fn wifi_duty_matches_traffic_load() {
        let mut rng = StdRng::seed_from_u64(2);
        let model = InterferenceModel::wifi(Dbm::new(-60.0), 500);
        let w = model.waveform(&mut rng, 500_000);
        let busy = w.iter().filter(|s| s.power() > 0.0).count() as f64 / w.len() as f64;
        assert!((busy - 0.3).abs() < 0.05, "busy fraction {busy}");
    }

    #[test]
    fn wifi_active_power_is_calibrated() {
        let mut rng = StdRng::seed_from_u64(3);
        let model = InterferenceModel::wifi(Dbm::new(-60.0), 500);
        let w = model.waveform(&mut rng, 500_000);
        let active: Vec<f64> = w.iter().map(|s| s.power()).filter(|&p| p > 0.0).collect();
        let mean = active.iter().sum::<f64>() / active.len() as f64;
        let expected = Dbm::new(-60.0).to_watts().get();
        assert!(
            (mean / expected - 1.0).abs() < 0.1,
            "active power {mean:e} vs {expected:e}"
        );
    }

    #[test]
    fn bluetooth_hops_in_slots() {
        let mut rng = StdRng::seed_from_u64(4);
        let model = InterferenceModel::bluetooth(Dbm::new(-55.0), 250);
        let w = model.waveform(&mut rng, 100_000);
        // Activity only changes at slot boundaries: within each 250-sample
        // slot, either all samples are active or none.
        for slot in w.chunks(250) {
            let active = slot.iter().filter(|s| s.power() > 0.0).count();
            assert!(active == 0 || active == slot.len());
        }
        let duty = w.iter().filter(|s| s.power() > 0.0).count() as f64 / w.len() as f64;
        assert!((duty - 20.0 / 79.0).abs() < 0.08, "duty {duty}");
    }

    #[test]
    fn waveform_length_is_exact() {
        let mut rng = StdRng::seed_from_u64(5);
        for n in [0usize, 1, 999] {
            assert_eq!(
                InterferenceModel::wifi(Dbm::new(-60.0), 100)
                    .waveform(&mut rng, n)
                    .len(),
                n
            );
            assert_eq!(
                InterferenceModel::bluetooth(Dbm::new(-60.0), 100)
                    .waveform(&mut rng, n)
                    .len(),
                n
            );
        }
    }

    #[test]
    fn full_load_wifi_is_always_busy() {
        let mut rng = StdRng::seed_from_u64(6);
        let model = InterferenceModel {
            kind: InterferenceKind::Wifi {
                traffic_load: 1.0,
                mean_burst_samples: 100,
            },
            active_power: Dbm::new(-50.0),
        };
        let w = model.waveform(&mut rng, 10_000);
        let busy = w.iter().filter(|s| s.power() > 0.0).count();
        assert_eq!(busy, 10_000);
    }
}
