//! Excitation-source models.
//!
//! The excitation source broadcasts either a continuous single-frequency
//! tone or an OFDM signal (§III). A tone gives the tag something to
//! reflect at every instant; OFDM traffic is intermittent, and "the tags
//! do not know when there is signal they can reflect, leading to poor
//! performance" (§VII-C.3, Fig. 12 case iv). The mixer multiplies each
//! tag's chip waveform by the excitation availability envelope, which is
//! exactly the mechanism that degrades OFDM-excited backscatter.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// The kind of excitation signal.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ExcitationKind {
    /// Continuous single-frequency tone — always reflectable.
    Tone,
    /// Intermittent OFDM traffic: bursts of presence separated by idle
    /// gaps the tag cannot exploit.
    Ofdm {
        /// Fraction of time the OFDM signal is on the air, in (0, 1].
        duty: f64,
        /// Mean burst duration in samples.
        mean_burst_samples: usize,
    },
}

/// An excitation source with a transmit envelope model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Excitation {
    /// The signal kind.
    pub kind: ExcitationKind,
}

impl Excitation {
    /// Continuous-tone excitation (the paper's main configuration).
    pub fn tone() -> Excitation {
        Excitation {
            kind: ExcitationKind::Tone,
        }
    }

    /// OFDM excitation with the given duty cycle and mean burst length.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when `duty` is outside (0, 1] or the burst
    /// length is zero.
    pub fn ofdm(duty: f64, mean_burst_samples: usize) -> Excitation {
        debug_assert!(duty > 0.0 && duty <= 1.0, "duty must be in (0, 1]");
        debug_assert!(mean_burst_samples > 0, "burst length must be non-zero");
        Excitation {
            kind: ExcitationKind::Ofdm {
                duty,
                mean_burst_samples,
            },
        }
    }

    /// Samples the availability envelope for `n` samples: 1.0 when the
    /// excitation is reflectable, 0.0 during gaps.
    pub fn availability_mask<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<f64> {
        match self.kind {
            ExcitationKind::Tone => vec![1.0; n],
            ExcitationKind::Ofdm {
                duty,
                mean_burst_samples,
            } => {
                let mut mask = Vec::with_capacity(n);
                // Alternate on-bursts and off-gaps with geometric-ish
                // lengths so the long-run duty matches `duty`.
                let mean_on = mean_burst_samples.max(1) as f64;
                let mean_off = mean_on * (1.0 - duty) / duty;
                let mut on = rng.gen_bool(duty);
                while mask.len() < n {
                    let mean = if on { mean_on } else { mean_off.max(1.0) };
                    // Exponential length via inverse CDF, at least 1.
                    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                    let len = (-mean * u.ln()).ceil().max(1.0) as usize;
                    let value = if on { 1.0 } else { 0.0 };
                    for _ in 0..len.min(n - mask.len()) {
                        mask.push(value);
                    }
                    on = !on;
                }
                mask
            }
        }
    }

    /// Long-run fraction of time the excitation is reflectable.
    pub fn duty(&self) -> f64 {
        match self.kind {
            ExcitationKind::Tone => 1.0,
            ExcitationKind::Ofdm { duty, .. } => duty,
        }
    }
}

impl Default for Excitation {
    fn default() -> Excitation {
        Excitation::tone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn tone_is_always_available() {
        let mut rng = StdRng::seed_from_u64(1);
        let mask = Excitation::tone().availability_mask(&mut rng, 1000);
        assert_eq!(mask.len(), 1000);
        assert!(mask.iter().all(|&m| m == 1.0));
        assert_eq!(Excitation::tone().duty(), 1.0);
    }

    #[test]
    fn ofdm_duty_matches_configuration() {
        let mut rng = StdRng::seed_from_u64(2);
        let exc = Excitation::ofdm(0.6, 200);
        let mask = exc.availability_mask(&mut rng, 400_000);
        let measured = mask.iter().sum::<f64>() / mask.len() as f64;
        assert!(
            (measured - 0.6).abs() < 0.05,
            "measured duty {measured}, configured 0.6"
        );
    }

    #[test]
    fn ofdm_mask_is_bursty_not_alternating() {
        let mut rng = StdRng::seed_from_u64(3);
        let mask = Excitation::ofdm(0.5, 100).availability_mask(&mut rng, 10_000);
        let transitions = mask.windows(2).filter(|w| w[0] != w[1]).count();
        // With ~100-sample bursts we expect on the order of 100
        // transitions, not thousands.
        assert!(transitions < 500, "too many transitions: {transitions}");
        assert!(transitions > 10, "mask never toggled");
    }

    #[test]
    fn ofdm_mask_length_is_exact() {
        let mut rng = StdRng::seed_from_u64(4);
        for n in [0usize, 1, 7, 1000] {
            assert_eq!(
                Excitation::ofdm(0.3, 50)
                    .availability_mask(&mut rng, n)
                    .len(),
                n
            );
        }
    }
}
