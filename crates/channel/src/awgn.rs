//! Receiver noise floor.
//!
//! The weak backscatter signal competes against thermal noise plus the
//! residual excitation-carrier leakage a real direct-conversion receiver
//! sees even at the shifted frequency f_c − Δf (§VII-B.1: below 0 dBm
//! excitation "the backscatter signal is so weak and can easily be buried
//! in the environmental noise"). [`NoiseModel`] produces complex AWGN at a
//! power set by thermal noise over the signal bandwidth, a receiver noise
//! figure, and a leakage floor.

use rand::Rng;
use serde::{Deserialize, Serialize};

use cbma_types::units::{Db, Dbm, Hertz};
use cbma_types::Iq;

use crate::shadowing::gaussian;

/// Thermal noise density at 290 K in dBm/Hz.
pub const THERMAL_NOISE_DBM_PER_HZ: f64 = -174.0;

/// The receiver's noise environment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoiseModel {
    /// Receiver noise figure.
    pub noise_figure: Db,
    /// Residual excitation/carrier leakage and ambient floor, independent
    /// of bandwidth. Set to `Dbm::new(f64::NEG_INFINITY)` to disable.
    pub leakage_floor: Dbm,
}

impl NoiseModel {
    /// Creates a model from a noise figure and leakage floor.
    pub fn new(noise_figure: Db, leakage_floor: Dbm) -> NoiseModel {
        NoiseModel {
            noise_figure,
            leakage_floor,
        }
    }

    /// Default calibrated to reproduce the paper's error-rate shape: 6 dB
    /// noise figure and a −87 dBm leakage/ambient floor (indoor office
    /// with an active excitation source 1 m away).
    pub fn paper_default() -> NoiseModel {
        NoiseModel::new(Db::new(6.0), Dbm::new(-87.0))
    }

    /// An idealized quiet receiver (thermal only), for unit tests.
    pub fn thermal_only() -> NoiseModel {
        NoiseModel::new(Db::new(0.0), Dbm::new(f64::NEG_INFINITY))
    }

    /// Total noise power over `bandwidth`: thermal·NF + leakage.
    pub fn noise_power(&self, bandwidth: Hertz) -> Dbm {
        let thermal_dbm = THERMAL_NOISE_DBM_PER_HZ
            + 10.0 * bandwidth.get().max(1.0).log10()
            + self.noise_figure.get();
        let thermal_mw = 10f64.powf(thermal_dbm / 10.0);
        let leak_mw = if self.leakage_floor.get().is_finite() {
            self.leakage_floor.to_milliwatts()
        } else {
            0.0
        };
        Dbm::new(10.0 * (thermal_mw + leak_mw).log10())
    }

    /// Generates `n` complex AWGN samples with total power matching
    /// [`noise_power`](NoiseModel::noise_power) over `bandwidth`.
    /// Amplitudes are in √W, matching the mixer's signal scale.
    pub fn samples<R: Rng + ?Sized>(&self, rng: &mut R, n: usize, bandwidth: Hertz) -> Vec<Iq> {
        let power_w = self.noise_power(bandwidth).to_watts().get();
        let sigma = (power_w / 2.0).sqrt(); // per quadrature component
        (0..n)
            .map(|_| Iq::new(gaussian(rng, sigma), gaussian(rng, sigma)))
            .collect()
    }
}

impl Default for NoiseModel {
    fn default() -> NoiseModel {
        NoiseModel::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn thermal_noise_at_1mhz() {
        // kTB over 1 MHz = -114 dBm; with NF 0 and no leakage.
        let m = NoiseModel::thermal_only();
        let p = m.noise_power(Hertz::from_mhz(1.0));
        assert!((p.get() - (-114.0)).abs() < 0.1, "p = {p}");
    }

    #[test]
    fn leakage_dominates_at_narrow_bandwidth() {
        let m = NoiseModel::paper_default();
        let p = m.noise_power(Hertz::new(1.0e3)); // 1 kHz: thermal ≈ -138 dBm
        assert!((p.get() - (-87.0)).abs() < 0.2, "p = {p}");
    }

    #[test]
    fn wider_bandwidth_means_more_noise() {
        let m = NoiseModel::paper_default();
        let narrow = m.noise_power(Hertz::from_mhz(1.0));
        let wide = m.noise_power(Hertz::from_mhz(20.0));
        assert!(wide.get() > narrow.get());
    }

    #[test]
    fn sample_power_matches_model() {
        let m = NoiseModel::paper_default();
        let bw = Hertz::from_mhz(1.0);
        let mut rng = StdRng::seed_from_u64(11);
        let samples = m.samples(&mut rng, 50_000, bw);
        let measured: f64 = samples.iter().map(|s| s.power()).sum::<f64>() / samples.len() as f64;
        let expected = m.noise_power(bw).to_watts().get();
        assert!(
            (measured / expected - 1.0).abs() < 0.05,
            "measured {measured:e}, expected {expected:e}"
        );
    }

    #[test]
    fn noise_is_circularly_symmetric() {
        let m = NoiseModel::paper_default();
        let mut rng = StdRng::seed_from_u64(5);
        let samples = m.samples(&mut rng, 50_000, Hertz::from_mhz(1.0));
        let pi: f64 = samples.iter().map(|s| s.re * s.re).sum();
        let pq: f64 = samples.iter().map(|s| s.im * s.im).sum();
        assert!((pi / pq - 1.0).abs() < 0.05, "I/Q power ratio {}", pi / pq);
    }
}
