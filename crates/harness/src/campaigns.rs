//! The built-in figure campaigns.
//!
//! Each campaign mirrors one bench target under `crates/bench/benches/`
//! — both call the same `cbma_bench::scenarios` builders, so the
//! declarative campaign and the human-readable bench can never measure
//! different physics. The fast tier keeps every figure's grid shape with
//! reduced counts; the full tier restores paper-scale packet counts.
//!
//! Seeding: every point replicate receives an independent stream derived
//! from `(root seed, campaign, point label, replicate)`. The one
//! exception is `fig9c`, where the deployment must be *paired* between
//! the power-control-on and power-control-off arms: there the deployment
//! and channel seeds derive from `(tag count, group)` inside
//! `fig9c_scenario`, exactly as the bench does.

use cbma::obs::json::JsonValue;
use cbma::prelude::*;
use cbma_bench::scenarios::{
    fig11_engine, fig12_engine, fig8a_engine, fig8b_engine, fig9c_power_control, fig9c_scenario,
    Fig12Condition,
};

use crate::campaign::{Campaign, CampaignPoint};
use crate::tier::Tier;

/// Packets per adaptation control round in the fig9c power-control arm.
const FIG9C_CONTROL_PACKETS: usize = 10;

/// Fig. 8(a): FER vs tag→RX distance for 2–4 tags.
pub fn fig8a(tier: Tier) -> Campaign {
    let distances: Vec<f64> = match tier {
        Tier::Fast => vec![25.0, 100.0, 250.0, 400.0],
        Tier::Full => (1..=40).map(|i| i as f64 * 10.0).collect(),
    };
    let mut points = Vec::new();
    for &n in &[2usize, 3, 4] {
        for &d in &distances {
            points.push(CampaignPoint::new(
                format!("n{n}_d{d:03.0}cm"),
                &[
                    ("n_tags", JsonValue::UInt(n as u64)),
                    ("d_cm", JsonValue::Float(d)),
                ],
                move |ctx| fig8a_engine(n, d, ctx.seed),
            ));
        }
    }
    Campaign {
        name: "fig8a",
        paper_ref: "Fig. 8(a), §VII-B.1",
        description: "frame error rate vs tag→RX distance, 2/3/4 tags",
        tier: tier.label(),
        replicates: tier.pick(2, 10),
        rounds: tier.pick(25, 100),
        points,
    }
}

/// Fig. 8(b): FER vs excitation transmit power for 2–4 tags.
pub fn fig8b(tier: Tier) -> Campaign {
    let powers: Vec<f64> = match tier {
        Tier::Fast => vec![-5.0, 5.0, 20.0],
        Tier::Full => vec![-5.0, 0.0, 5.0, 10.0, 15.0, 20.0],
    };
    let mut points = Vec::new();
    for &n in &[2usize, 3, 4] {
        for &p in &powers {
            points.push(CampaignPoint::new(
                format!("n{n}_pt{p:+03.0}dbm"),
                &[
                    ("n_tags", JsonValue::UInt(n as u64)),
                    ("tx_power_dbm", JsonValue::Float(p)),
                ],
                move |ctx| fig8b_engine(n, p, ctx.seed),
            ));
        }
    }
    Campaign {
        name: "fig8b",
        paper_ref: "Fig. 8(b), §VII-B.1",
        description: "frame error rate vs excitation transmit power, 2/3/4 tags",
        tier: tier.label(),
        replicates: tier.pick(2, 10),
        rounds: tier.pick(25, 100),
        points,
    }
}

/// Fig. 9(c): error rate with vs without Algorithm 1 power control.
///
/// Replicates are deployment groups: replicate `g` of the `pc_on` and
/// `pc_off` points for tag count `n` measures the *same* random
/// deployment, so the arms are paired exactly as in the paper.
pub fn fig9c(tier: Tier) -> Campaign {
    let mut points = Vec::new();
    for &n in &[2usize, 3, 4, 5] {
        for &pc in &[false, true] {
            let arm = if pc { "pc_on" } else { "pc_off" };
            points.push(CampaignPoint::new(
                format!("n{n}_{arm}"),
                &[
                    ("n_tags", JsonValue::UInt(n as u64)),
                    ("power_control", JsonValue::Bool(pc)),
                ],
                move |ctx| {
                    // Deployment pairing: seeds derive from (n, group),
                    // not from ctx.seed — see module docs.
                    let scenario = fig9c_scenario(n, ctx.replicate as u64);
                    let mut engine = Engine::new(scenario).expect("valid fig9c scenario");
                    if pc {
                        fig9c_power_control(&mut engine, FIG9C_CONTROL_PACKETS);
                    }
                    engine
                },
            ));
        }
    }
    Campaign {
        name: "fig9c",
        paper_ref: "Fig. 9(c), §VII-B.3",
        description: "error rate with vs without Algorithm 1 power control, 2–5 tags",
        tier: tier.label(),
        replicates: tier.pick(3, 50),
        rounds: tier.pick(20, 300),
        points,
    }
}

/// Fig. 11: 2-tag error rate vs tag-2 clock delay.
pub fn fig11(tier: Tier) -> Campaign {
    let delays: Vec<f64> = match tier {
        Tier::Fast => vec![0.0, 0.5, 2.0, 6.0, 8.0, 12.0, 16.0],
        Tier::Full => vec![0.0, 0.25, 0.5, 1.0, 2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 16.0],
    };
    let points = delays
        .iter()
        .map(|&d| {
            CampaignPoint::new(
                format!("delay_{:05.2}chips", d),
                &[("delay_chips", JsonValue::Float(d))],
                move |ctx| fig11_engine(d, ctx.seed),
            )
        })
        .collect();
    Campaign {
        name: "fig11",
        paper_ref: "Fig. 11, §VII-C.2",
        description: "2-tag error rate vs inter-tag clock delay",
        tier: tier.label(),
        replicates: tier.pick(2, 10),
        rounds: tier.pick(30, 100),
        points,
    }
}

/// Fig. 12: reception rate under the four working conditions.
pub fn fig12(tier: Tier) -> Campaign {
    let points = Fig12Condition::ALL
        .iter()
        .map(|&condition| {
            CampaignPoint::new(
                condition.label().replace(' ', "_"),
                &[("condition", JsonValue::Str(condition.label().to_string()))],
                move |ctx| fig12_engine(condition, ctx.seed),
            )
        })
        .collect();
    Campaign {
        name: "fig12",
        paper_ref: "Fig. 12, §VII-C.3",
        description: "packet reception rate under four working conditions, 3 tags",
        tier: tier.label(),
        replicates: tier.pick(2, 10),
        rounds: tier.pick(30, 100),
        points,
    }
}

/// All built-in campaign names, in suite order.
pub const CAMPAIGN_NAMES: [&str; 5] = ["fig8a", "fig8b", "fig9c", "fig11", "fig12"];

/// Builds a campaign by name at the given tier.
pub fn by_name(name: &str, tier: Tier) -> Option<Campaign> {
    match name {
        "fig8a" => Some(fig8a(tier)),
        "fig8b" => Some(fig8b(tier)),
        "fig9c" => Some(fig9c(tier)),
        "fig11" => Some(fig11(tier)),
        "fig12" => Some(fig12(tier)),
        _ => None,
    }
}

/// Builds the full suite at the given tier.
pub fn all(tier: Tier) -> Vec<Campaign> {
    CAMPAIGN_NAMES
        .iter()
        .map(|name| by_name(name, tier).expect("built-in name"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::JobCtx;

    #[test]
    fn all_builtins_validate_on_both_tiers() {
        for tier in [Tier::Fast, Tier::Full] {
            let suite = all(tier);
            assert_eq!(suite.len(), CAMPAIGN_NAMES.len());
            for c in &suite {
                c.validate().unwrap_or_else(|e| panic!("{e}"));
                assert_eq!(c.tier, tier.label());
            }
        }
    }

    #[test]
    fn by_name_rejects_unknown() {
        assert!(by_name("fig99", Tier::Fast).is_none());
        assert!(by_name("fig8a", Tier::Fast).is_some());
    }

    #[test]
    fn fast_tier_is_smaller_than_full() {
        for name in CAMPAIGN_NAMES {
            let fast = by_name(name, Tier::Fast).unwrap();
            let full = by_name(name, Tier::Full).unwrap();
            assert!(fast.job_count() * fast.rounds < full.job_count() * full.rounds);
        }
    }

    #[test]
    fn fig9c_arms_are_paired_on_the_same_deployment() {
        let c = fig9c(Tier::Fast);
        let off = c.points.iter().find(|p| p.label == "n3_pc_off").unwrap();
        let on = c.points.iter().find(|p| p.label == "n3_pc_on").unwrap();
        let ctx = JobCtx {
            seed: 1,
            replicate: 0,
        };
        let a = (off.builder)(ctx);
        let b = (on.builder)(ctx);
        assert_eq!(
            a.scenario().tag_positions,
            b.scenario().tag_positions,
            "paired arms must share the deployment"
        );
        assert_eq!(a.scenario().seed, b.scenario().seed);
    }

    #[test]
    fn fig8a_grid_covers_tag_counts_and_distances() {
        let c = fig8a(Tier::Fast);
        assert_eq!(c.points.len(), 12);
        let ctx = JobCtx {
            seed: 3,
            replicate: 0,
        };
        let e = (c.points[0].builder)(ctx);
        assert_eq!(e.scenario().n_tags(), 2);
    }
}
