//! Live campaign telemetry: streaming shard snapshots.
//!
//! While a campaign runs, workers publish [`LiveUpdate`]s over an mpsc
//! channel to a [`LiveAggregator`] thread, which merges them into a
//! rolling `live.json` written atomically (`.tmp` + rename) so an
//! external watcher never reads a torn file. Updates are throttled to the
//! configured interval; the final state is always flushed when the last
//! publisher hangs up.
//!
//! The aggregator merges only **timing-stripped** point snapshots, in
//! grid order, so the `merged_snapshot` subtree of the final `live.json`
//! is byte-identical to merging the manifest's embedded per-point
//! snapshots — the CLI asserts exactly that under `--live`.

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::PathBuf;
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use cbma::obs::json::JsonValue;
use cbma::obs::Snapshot;

use crate::manifest::Measurement;

/// Schema version of the `live.json` document.
pub const LIVE_SCHEMA_VERSION: u64 = 1;

/// Aggregator knobs.
#[derive(Debug, Clone)]
pub struct LiveConfig {
    /// Where the rolling snapshot is written.
    pub path: PathBuf,
    /// Minimum delay between consecutive writes (the final write always
    /// happens).
    pub interval: Duration,
    /// Print a one-line progress report to stderr on every write.
    pub progress: bool,
}

impl LiveConfig {
    /// A config writing to `path` with a 500 ms throttle and no progress
    /// output.
    pub fn new(path: impl Into<PathBuf>) -> LiveConfig {
        LiveConfig {
            path: path.into(),
            interval: Duration::from_millis(500),
            progress: false,
        }
    }
}

/// One event published by the runner.
#[derive(Debug, Clone)]
pub enum LiveUpdate {
    /// A campaign run began.
    CampaignStarted {
        /// Campaign machine name.
        campaign: String,
        /// Tier label.
        tier: String,
        /// Points in the grid.
        points_total: usize,
        /// Replicates per point.
        replicates: u64,
        /// Rounds per replicate.
        rounds: u64,
        /// Worker threads measuring points.
        workers: usize,
    },
    /// A replicate of an in-flight point finished. `totals` and
    /// `snapshot` are cumulative over the point's replicates so far;
    /// the snapshot is already timing-stripped.
    ReplicateDone {
        /// Campaign machine name.
        campaign: String,
        /// Grid index of the point.
        point_index: usize,
        /// Point label.
        label: String,
        /// Replicates completed so far (1-based count).
        replicates_done: usize,
        /// Cumulative totals over completed replicates.
        totals: Measurement,
        /// Cumulative timing-stripped snapshot.
        snapshot: Snapshot,
    },
    /// A point completed (all replicates).
    PointDone {
        /// Campaign machine name.
        campaign: String,
        /// Grid index of the point.
        point_index: usize,
        /// Point label.
        label: String,
        /// Final totals.
        totals: Measurement,
        /// Final timing-stripped snapshot.
        snapshot: Snapshot,
        /// Per-replicate FERs.
        replicate_fers: Vec<f64>,
        /// Wall-clock seconds the point took to compute.
        secs: f64,
        /// Whether the point was replayed from a checkpoint (its `secs`
        /// is excluded from ETA estimation).
        from_checkpoint: bool,
    },
}

impl LiveUpdate {
    fn campaign(&self) -> &str {
        match self {
            LiveUpdate::CampaignStarted { campaign, .. }
            | LiveUpdate::ReplicateDone { campaign, .. }
            | LiveUpdate::PointDone { campaign, .. } => campaign,
        }
    }
}

/// The sending half handed to the runner. Cheap to clone; sends after
/// the aggregator has shut down are silently dropped.
#[derive(Debug, Clone)]
pub struct LivePublisher {
    tx: Sender<LiveUpdate>,
}

impl LivePublisher {
    /// Publishes one update. Never blocks and never fails: a hung-up
    /// aggregator just discards the message.
    pub fn publish(&self, update: LiveUpdate) {
        let _ = self.tx.send(update);
    }
}

/// A partially-measured point.
#[derive(Debug)]
struct PartialPoint {
    label: String,
    replicates_done: usize,
    totals: Measurement,
}

/// A completed point.
#[derive(Debug)]
struct FinalPoint {
    label: String,
    totals: Measurement,
    snapshot: Snapshot,
    replicates_done: usize,
}

/// Rolling state of one campaign.
#[derive(Debug)]
struct CampaignState {
    tier: String,
    points_total: usize,
    replicates: u64,
    rounds: u64,
    workers: usize,
    partial: BTreeMap<usize, PartialPoint>,
    finals: BTreeMap<usize, FinalPoint>,
    /// Wall-clock seconds per *computed* (non-checkpoint) point, for ETA.
    point_secs: Vec<f64>,
}

impl CampaignState {
    fn new() -> CampaignState {
        CampaignState {
            tier: String::new(),
            points_total: 0,
            replicates: 0,
            rounds: 0,
            workers: 1,
            partial: BTreeMap::new(),
            finals: BTreeMap::new(),
            point_secs: Vec::new(),
        }
    }

    /// Campaign FER over everything measured so far (final + partial).
    fn fer(&self) -> f64 {
        let mut all = Measurement::default();
        for p in self.finals.values() {
            all.merge(&p.totals);
        }
        for p in self.partial.values() {
            all.merge(&p.totals);
        }
        all.fer()
    }

    /// Seconds remaining, estimated from the mean computed-point time
    /// and the worker count. `None` until a point has been computed.
    fn eta_seconds(&self) -> Option<f64> {
        if self.point_secs.is_empty() {
            return None;
        }
        let mean = self.point_secs.iter().sum::<f64>() / self.point_secs.len() as f64;
        let remaining = self.points_total.saturating_sub(self.finals.len());
        Some(mean * remaining as f64 / self.workers.max(1) as f64)
    }

    /// All final point snapshots merged in grid order.
    fn merged_snapshot(&self) -> Snapshot {
        let mut merged = Snapshot::new();
        for p in self.finals.values() {
            merged.merge(&p.snapshot);
        }
        merged
    }

    fn to_json_value(&self) -> JsonValue {
        let mut points = BTreeMap::new();
        for (&index, p) in &self.partial {
            let mut o = BTreeMap::new();
            o.insert("index".into(), JsonValue::UInt(index as u64));
            o.insert("state".into(), JsonValue::Str("partial".into()));
            o.insert(
                "replicates_done".into(),
                JsonValue::UInt(p.replicates_done as u64),
            );
            o.insert("fer".into(), JsonValue::Float(p.totals.fer()));
            points.insert(p.label.clone(), JsonValue::Object(o));
        }
        for (&index, p) in &self.finals {
            let mut o = BTreeMap::new();
            o.insert("index".into(), JsonValue::UInt(index as u64));
            o.insert("state".into(), JsonValue::Str("done".into()));
            o.insert(
                "replicates_done".into(),
                JsonValue::UInt(p.replicates_done as u64),
            );
            o.insert("fer".into(), JsonValue::Float(p.totals.fer()));
            points.insert(p.label.clone(), JsonValue::Object(o));
        }

        let merged = JsonValue::parse(&self.merged_snapshot().to_json())
            .expect("snapshot serialization is valid JSON");

        let mut o = BTreeMap::new();
        o.insert("tier".into(), JsonValue::Str(self.tier.clone()));
        o.insert(
            "points_total".into(),
            JsonValue::UInt(self.points_total as u64),
        );
        o.insert(
            "points_done".into(),
            JsonValue::UInt(self.finals.len() as u64),
        );
        o.insert("replicates".into(), JsonValue::UInt(self.replicates));
        o.insert("rounds".into(), JsonValue::UInt(self.rounds));
        o.insert("fer".into(), JsonValue::Float(self.fer()));
        o.insert(
            "eta_seconds".into(),
            match self.eta_seconds() {
                Some(s) => JsonValue::Float(s),
                None => JsonValue::Null,
            },
        );
        o.insert("points".into(), JsonValue::Object(points));
        o.insert("merged_snapshot".into(), merged);
        JsonValue::Object(o)
    }
}

/// Full aggregator state (all campaigns of the run).
#[derive(Debug)]
struct LiveState {
    campaigns: BTreeMap<String, CampaignState>,
}

impl LiveState {
    fn apply(&mut self, update: LiveUpdate) {
        let state = self
            .campaigns
            .entry(update.campaign().to_string())
            .or_insert_with(CampaignState::new);
        match update {
            LiveUpdate::CampaignStarted {
                tier,
                points_total,
                replicates,
                rounds,
                workers,
                ..
            } => {
                state.tier = tier;
                state.points_total = points_total;
                state.replicates = replicates;
                state.rounds = rounds;
                state.workers = workers;
            }
            LiveUpdate::ReplicateDone {
                point_index,
                label,
                replicates_done,
                totals,
                ..
            } => {
                // A checkpoint replay can finish the point before its
                // last replicate message drains; never demote a final.
                if !state.finals.contains_key(&point_index) {
                    state.partial.insert(
                        point_index,
                        PartialPoint {
                            label,
                            replicates_done,
                            totals,
                        },
                    );
                }
            }
            LiveUpdate::PointDone {
                point_index,
                label,
                totals,
                snapshot,
                replicate_fers,
                secs,
                from_checkpoint,
                ..
            } => {
                state.partial.remove(&point_index);
                state.finals.insert(
                    point_index,
                    FinalPoint {
                        label,
                        totals,
                        snapshot,
                        replicates_done: replicate_fers.len(),
                    },
                );
                if !from_checkpoint {
                    state.point_secs.push(secs);
                }
            }
        }
    }

    fn to_json(&self) -> String {
        let mut campaigns = BTreeMap::new();
        for (name, state) in &self.campaigns {
            campaigns.insert(name.clone(), state.to_json_value());
        }
        let mut o = BTreeMap::new();
        o.insert(
            "schema_version".into(),
            JsonValue::UInt(LIVE_SCHEMA_VERSION),
        );
        o.insert("campaigns".into(), JsonValue::Object(campaigns));
        let mut s = JsonValue::Object(o).to_json();
        s.push('\n');
        s
    }
}

/// Writes `text` to `path` atomically (`.tmp` + rename).
fn write_atomic(path: &PathBuf, text: &str) -> io::Result<()> {
    let tmp = path.with_extension("json.tmp");
    fs::write(&tmp, text)?;
    fs::rename(&tmp, path)
}

fn progress_line(state: &LiveState) -> String {
    let mut parts = Vec::new();
    for (name, c) in &state.campaigns {
        let eta = match c.eta_seconds() {
            Some(s) => format!("{s:.0}s"),
            None => "?".to_string(),
        };
        parts.push(format!(
            "{name} {}/{} points fer={:.4} eta={eta}",
            c.finals.len(),
            c.points_total,
            c.fer()
        ));
    }
    format!("[live] {}", parts.join(" | "))
}

/// The aggregator thread. Owns the channel's receiving end; merges
/// updates and writes the rolling `live.json`.
#[derive(Debug)]
pub struct LiveAggregator {
    tx: Option<Sender<LiveUpdate>>,
    handle: Option<JoinHandle<io::Result<()>>>,
    path: PathBuf,
}

impl LiveAggregator {
    /// Starts the aggregator thread. The parent directory of the
    /// configured path is created if missing.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the parent directory cannot be created.
    pub fn start(cfg: LiveConfig) -> io::Result<LiveAggregator> {
        if let Some(parent) = cfg.path.parent() {
            if !parent.as_os_str().is_empty() {
                fs::create_dir_all(parent)?;
            }
        }
        let (tx, rx) = mpsc::channel();
        let path = cfg.path.clone();
        let handle = std::thread::Builder::new()
            .name("cbma-live".into())
            .spawn(move || aggregate(cfg, rx))
            .expect("spawn live aggregator thread");
        Ok(LiveAggregator {
            tx: Some(tx),
            handle: Some(handle),
            path,
        })
    }

    /// A cloneable sending handle for the runner.
    pub fn publisher(&self) -> LivePublisher {
        LivePublisher {
            tx: self.tx.clone().expect("aggregator not finished"),
        }
    }

    /// The path the rolling snapshot is written to.
    pub fn path(&self) -> &PathBuf {
        &self.path
    }

    /// Hangs up the channel, drains remaining updates, flushes the final
    /// state and joins the thread.
    ///
    /// All [`LivePublisher`] clones must be dropped before (or shortly
    /// after) this call, or the aggregator keeps draining until they are.
    ///
    /// # Errors
    ///
    /// Returns the first I/O error the writer hit.
    pub fn finish(mut self) -> io::Result<()> {
        drop(self.tx.take());
        match self.handle.take() {
            Some(handle) => handle.join().expect("live aggregator panicked"),
            None => Ok(()),
        }
    }
}

fn aggregate(cfg: LiveConfig, rx: Receiver<LiveUpdate>) -> io::Result<()> {
    let mut state = LiveState {
        campaigns: BTreeMap::new(),
    };
    let mut dirty = false;
    let mut last_write: Option<Instant> = None;
    loop {
        match rx.recv_timeout(cfg.interval) {
            Ok(update) => {
                state.apply(update);
                dirty = true;
                let due = last_write
                    .map(|t| t.elapsed() >= cfg.interval)
                    .unwrap_or(true);
                if due {
                    write_atomic(&cfg.path, &state.to_json())?;
                    if cfg.progress {
                        eprintln!("{}", progress_line(&state));
                    }
                    last_write = Some(Instant::now());
                    dirty = false;
                }
            }
            Err(RecvTimeoutError::Timeout) => {
                if dirty {
                    write_atomic(&cfg.path, &state.to_json())?;
                    if cfg.progress {
                        eprintln!("{}", progress_line(&state));
                    }
                    last_write = Some(Instant::now());
                    dirty = false;
                }
            }
            Err(RecvTimeoutError::Disconnected) => {
                // Final flush: always write, even if nothing changed
                // since the last one, so the file exists and is current.
                write_atomic(&cfg.path, &state.to_json())?;
                if cfg.progress {
                    eprintln!("{}", progress_line(&state));
                }
                return Ok(());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmppath(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "cbma-live-{tag}-{}-{:?}.json",
            std::process::id(),
            std::thread::current().id()
        ))
    }

    fn measurement(delivered: u64) -> Measurement {
        Measurement {
            rounds: 4,
            frames_sent: 8,
            frames_delivered: delivered,
            frames_detected: 8,
            false_detections: 0,
            bit_errors: 0,
            bits_measured: 256,
        }
    }

    fn started(campaign: &str, points_total: usize) -> LiveUpdate {
        LiveUpdate::CampaignStarted {
            campaign: campaign.into(),
            tier: "fast".into(),
            points_total,
            replicates: 2,
            rounds: 4,
            workers: 2,
        }
    }

    fn point_done(campaign: &str, index: usize, delivered: u64) -> LiveUpdate {
        LiveUpdate::PointDone {
            campaign: campaign.into(),
            point_index: index,
            label: format!("p{index}"),
            totals: measurement(delivered),
            snapshot: Snapshot::new(),
            replicate_fers: vec![0.0, 0.0],
            secs: 0.25,
            from_checkpoint: false,
        }
    }

    #[test]
    fn state_tracks_partial_then_final_points() {
        let mut state = LiveState {
            campaigns: BTreeMap::new(),
        };
        state.apply(started("figtest", 2));
        state.apply(LiveUpdate::ReplicateDone {
            campaign: "figtest".into(),
            point_index: 0,
            label: "p0".into(),
            replicates_done: 1,
            totals: measurement(7),
            snapshot: Snapshot::new(),
        });
        let c = &state.campaigns["figtest"];
        assert_eq!(c.partial.len(), 1);
        assert_eq!(c.finals.len(), 0);
        assert!(c.eta_seconds().is_none());

        state.apply(point_done("figtest", 0, 8));
        let c = &state.campaigns["figtest"];
        assert_eq!(c.partial.len(), 0, "final point clears its partial");
        assert_eq!(c.finals.len(), 1);
        assert_eq!(c.point_secs, vec![0.25]);
        // 1 of 2 points done, mean 0.25 s, 2 workers.
        assert!((c.eta_seconds().unwrap() - 0.125).abs() < 1e-12);
    }

    #[test]
    fn replicate_for_a_final_point_never_demotes_it() {
        let mut state = LiveState {
            campaigns: BTreeMap::new(),
        };
        state.apply(started("figtest", 1));
        state.apply(point_done("figtest", 0, 8));
        state.apply(LiveUpdate::ReplicateDone {
            campaign: "figtest".into(),
            point_index: 0,
            label: "p0".into(),
            replicates_done: 1,
            totals: measurement(6),
            snapshot: Snapshot::new(),
        });
        let c = &state.campaigns["figtest"];
        assert_eq!(c.partial.len(), 0);
        assert_eq!(c.finals.len(), 1);
    }

    #[test]
    fn checkpoint_points_are_excluded_from_eta() {
        let mut state = LiveState {
            campaigns: BTreeMap::new(),
        };
        state.apply(started("figtest", 3));
        state.apply(LiveUpdate::PointDone {
            campaign: "figtest".into(),
            point_index: 0,
            label: "p0".into(),
            totals: measurement(8),
            snapshot: Snapshot::new(),
            replicate_fers: vec![0.0, 0.0],
            secs: 0.0001,
            from_checkpoint: true,
        });
        assert!(state.campaigns["figtest"].eta_seconds().is_none());
        state.apply(point_done("figtest", 1, 8));
        assert!(state.campaigns["figtest"].eta_seconds().is_some());
    }

    #[test]
    fn json_document_has_the_documented_shape() {
        let mut state = LiveState {
            campaigns: BTreeMap::new(),
        };
        state.apply(started("figtest", 2));
        state.apply(point_done("figtest", 0, 6));
        let v = JsonValue::parse(&state.to_json()).unwrap();
        let o = v.as_object().unwrap();
        assert_eq!(
            o.get("schema_version").and_then(JsonValue::as_u64),
            Some(LIVE_SCHEMA_VERSION)
        );
        let c = o
            .get("campaigns")
            .and_then(JsonValue::as_object)
            .unwrap()
            .get("figtest")
            .and_then(JsonValue::as_object)
            .unwrap();
        assert_eq!(c.get("points_total").and_then(JsonValue::as_u64), Some(2));
        assert_eq!(c.get("points_done").and_then(JsonValue::as_u64), Some(1));
        assert!((c.get("fer").unwrap().as_f64().unwrap() - 0.25).abs() < 1e-12);
        let p0 = c
            .get("points")
            .and_then(JsonValue::as_object)
            .unwrap()
            .get("p0")
            .and_then(JsonValue::as_object)
            .unwrap();
        assert_eq!(p0.get("state").and_then(JsonValue::as_str), Some("done"));
        assert!(c.get("merged_snapshot").is_some());
    }

    #[test]
    fn aggregator_flushes_final_state_on_finish() {
        let path = tmppath("flush");
        let _ = fs::remove_file(&path);
        let agg = LiveAggregator::start(LiveConfig {
            path: path.clone(),
            interval: Duration::from_millis(5),
            progress: false,
        })
        .unwrap();
        let publisher = agg.publisher();
        publisher.publish(started("figtest", 1));
        publisher.publish(point_done("figtest", 0, 8));
        drop(publisher);
        agg.finish().unwrap();

        let text = fs::read_to_string(&path).unwrap();
        let v = JsonValue::parse(&text).unwrap();
        let c = v
            .as_object()
            .unwrap()
            .get("campaigns")
            .and_then(JsonValue::as_object)
            .unwrap()
            .get("figtest")
            .and_then(JsonValue::as_object)
            .unwrap();
        assert_eq!(c.get("points_done").and_then(JsonValue::as_u64), Some(1));
        assert!(
            !path.with_extension("json.tmp").exists(),
            "tmp file renamed away"
        );
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn merged_snapshot_merges_finals_in_grid_order() {
        let mut state = LiveState {
            campaigns: BTreeMap::new(),
        };
        state.apply(started("figtest", 2));
        let mut snap_a = Snapshot::new();
        snap_a.counters.insert("cbma.sim.rounds".into(), 4);
        let mut snap_b = Snapshot::new();
        snap_b.counters.insert("cbma.sim.rounds".into(), 6);
        // Deliver out of grid order; BTreeMap iteration restores it.
        state.apply(LiveUpdate::PointDone {
            campaign: "figtest".into(),
            point_index: 1,
            label: "p1".into(),
            totals: measurement(8),
            snapshot: snap_b,
            replicate_fers: vec![0.0],
            secs: 0.1,
            from_checkpoint: false,
        });
        state.apply(LiveUpdate::PointDone {
            campaign: "figtest".into(),
            point_index: 0,
            label: "p0".into(),
            totals: measurement(8),
            snapshot: snap_a,
            replicate_fers: vec![0.0],
            secs: 0.1,
            from_checkpoint: false,
        });
        let merged = state.campaigns["figtest"].merged_snapshot();
        assert_eq!(merged.counters.get("cbma.sim.rounds"), Some(&10));
    }
}
