//! The sharded campaign runner.
//!
//! Points are the unit of work. A bounded worker pool pulls point indices
//! from a shared atomic counter (work stealing: fast workers drain the
//! queue, nobody idles behind a slow shard), each worker measures its
//! point single-threaded and fully deterministically, and the manifest is
//! assembled in grid order afterwards — so worker count and scheduling
//! order can never change the output bytes.
//!
//! Fault-injected scenarios can panic mid-round; a panicking point is
//! retried with capped exponential backoff and a fresh engine (the
//! replicate seeds do not change across attempts, so a retry that
//! succeeds produces exactly the bytes an untroubled run would have).
//! Completed points are checkpointed to disk before the campaign
//! finishes, so an interrupted run resumes instead of restarting.

use std::panic::{self, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use cbma::obs::MetricsRegistry;
use cbma::sim::StreamingConfig;
use cbma_types::SeedSequence;

use crate::campaign::{Campaign, JobCtx};
use crate::checkpoint::{CheckpointHeader, CheckpointStore};
use crate::live::{LivePublisher, LiveUpdate};
use crate::manifest::{CampaignManifest, Measurement, PointResult, SCHEMA_VERSION};

/// A campaign run that could not complete.
#[derive(Debug)]
pub enum HarnessError {
    /// Campaign definition failed validation.
    InvalidCampaign(String),
    /// Checkpoint or manifest I/O failed.
    Io(std::io::Error),
    /// A point kept panicking after all retry attempts.
    PointFailed {
        /// Campaign name.
        campaign: String,
        /// Point label.
        point: String,
        /// Attempts made (= the configured maximum).
        attempts: u32,
        /// The last panic payload, stringified.
        last_panic: String,
    },
}

impl std::fmt::Display for HarnessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HarnessError::InvalidCampaign(msg) => write!(f, "invalid campaign: {msg}"),
            HarnessError::Io(e) => write!(f, "harness I/O error: {e}"),
            HarnessError::PointFailed {
                campaign,
                point,
                attempts,
                last_panic,
            } => write!(
                f,
                "campaign {campaign}: point {point:?} failed after {attempts} attempts: {last_panic}"
            ),
        }
    }
}

impl std::error::Error for HarnessError {}

impl From<std::io::Error> for HarnessError {
    fn from(e: std::io::Error) -> HarnessError {
        HarnessError::Io(e)
    }
}

/// Runner knobs. `Default` gives the deterministic CI configuration.
#[derive(Debug, Clone)]
pub struct RunnerConfig {
    /// Worker threads (clamped to at least 1). Changing this never
    /// changes the manifest bytes.
    pub workers: usize,
    /// Root seed every job seed derives from.
    pub root_seed: u64,
    /// Attempts per point before the campaign fails (≥ 1).
    pub max_attempts: u32,
    /// Backoff before retry `k` is `base_backoff · 2^(k−1)`, capped.
    pub base_backoff: Duration,
    /// Backoff cap.
    pub max_backoff: Duration,
    /// Where to checkpoint completed points; `None` disables resume.
    pub checkpoint_dir: Option<PathBuf>,
    /// Live telemetry sink; workers publish replicate/point completions
    /// here. `None` (the default) disables live streaming and costs
    /// nothing on the measurement path.
    pub live: Option<LivePublisher>,
    /// Measure through the streaming receiver runtime instead of the
    /// round-synchronous engine loop. Decisions are identical (the
    /// streaming stages call the same receive seams), so the manifest
    /// bytes do not change; only the execution shape does.
    pub streaming: Option<StreamingConfig>,
}

impl Default for RunnerConfig {
    fn default() -> RunnerConfig {
        RunnerConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get().min(8))
                .unwrap_or(2),
            root_seed: 0xCB3A,
            max_attempts: 3,
            base_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(2),
            checkpoint_dir: None,
            live: None,
            streaming: None,
        }
    }
}

impl RunnerConfig {
    /// The backoff before retry attempt `k` (1-based over failures).
    fn backoff(&self, failure: u32) -> Duration {
        let factor = 1u32 << failure.saturating_sub(1).min(16);
        self.base_backoff
            .saturating_mul(factor)
            .min(self.max_backoff)
    }
}

/// The deterministic seed for `(root, campaign, point, replicate)`.
///
/// Exposed so tests can predict the exact stream a job received.
pub fn job_seed(root_seed: u64, campaign: &str, point_label: &str, replicate: usize) -> u64 {
    SeedSequence::new(root_seed)
        .child(campaign)
        .child(point_label)
        .derive_indexed("replicate", replicate as u64)
}

/// Measures one point: all replicates, one shared metrics registry.
/// When a live publisher is supplied, every completed replicate streams
/// the point's cumulative volatile-stripped snapshot. When a streaming
/// configuration is set, rounds run through the pipelined receiver
/// runtime — same decisions, same manifest bytes.
fn measure_point(campaign: &Campaign, index: usize, cfg: &RunnerConfig) -> PointResult {
    let point = &campaign.points[index];
    let registry = MetricsRegistry::new();
    let mut totals = Measurement::default();
    let mut replicate_fers = Vec::with_capacity(campaign.replicates);
    for replicate in 0..campaign.replicates {
        let ctx = JobCtx {
            seed: job_seed(cfg.root_seed, campaign.name, &point.label, replicate),
            replicate,
        };
        let mut engine = (point.builder)(ctx);
        engine.attach_observability(&registry);
        let m = match &cfg.streaming {
            Some(streaming) => {
                Measurement::from_engine_streaming(&mut engine, campaign.rounds, streaming)
            }
            None => Measurement::from_engine(&mut engine, campaign.rounds),
        };
        replicate_fers.push(m.fer());
        totals.merge(&m);
        if let Some(live) = &cfg.live {
            live.publish(LiveUpdate::ReplicateDone {
                campaign: campaign.name.to_string(),
                point_index: index,
                label: point.label.clone(),
                replicates_done: replicate + 1,
                totals,
                snapshot: registry.snapshot().without_volatile(),
            });
        }
    }
    PointResult {
        index,
        label: point.label.clone(),
        params: point.params.clone(),
        totals,
        replicate_fers,
        // Wall-clock and allocation metrics are stripped so manifests are
        // byte-stable (and identical between the round-synchronous and
        // streaming execution shapes).
        snapshot: registry.snapshot().without_volatile(),
    }
}

/// Measures one point with panic-retry.
fn measure_point_with_retry(
    campaign: &Campaign,
    index: usize,
    cfg: &RunnerConfig,
) -> Result<PointResult, HarnessError> {
    let mut last_panic = String::new();
    for attempt in 1..=cfg.max_attempts.max(1) {
        let run = panic::catch_unwind(AssertUnwindSafe(|| measure_point(campaign, index, cfg)));
        match run {
            Ok(result) => return Ok(result),
            Err(payload) => {
                // `&*payload`: downcast the payload itself, not the box.
                last_panic = panic_message(&*payload);
                if attempt < cfg.max_attempts.max(1) {
                    std::thread::sleep(cfg.backoff(attempt));
                }
            }
        }
    }
    Err(HarnessError::PointFailed {
        campaign: campaign.name.to_string(),
        point: campaign.points[index].label.clone(),
        attempts: cfg.max_attempts.max(1),
        last_panic,
    })
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs a campaign to a manifest.
///
/// Work is sharded across `cfg.workers` threads; completed points are
/// checkpointed (when a checkpoint directory is configured) and replayed
/// on resume; the manifest is assembled in grid order, independent of
/// scheduling. Two runs with the same `(campaign, tier, root_seed)`
/// produce byte-identical `to_json()` output.
///
/// # Errors
///
/// Fails if the campaign definition is invalid, checkpoint I/O fails, or
/// a point exhausts its retry budget.
pub fn run_campaign(
    campaign: &Campaign,
    cfg: &RunnerConfig,
) -> Result<CampaignManifest, HarnessError> {
    campaign.validate().map_err(HarnessError::InvalidCampaign)?;

    let store = match &cfg.checkpoint_dir {
        Some(dir) => Some(CheckpointStore::open(
            dir,
            CheckpointHeader {
                campaign: campaign.name.to_string(),
                tier: campaign.tier.to_string(),
                root_seed: cfg.root_seed,
                replicates: campaign.replicates as u64,
                rounds: campaign.rounds as u64,
            },
        )?),
        None => None,
    };
    let store = store.as_ref();

    let n_points = campaign.points.len();
    if let Some(live) = &cfg.live {
        live.publish(LiveUpdate::CampaignStarted {
            campaign: campaign.name.to_string(),
            tier: campaign.tier.to_string(),
            points_total: n_points,
            replicates: campaign.replicates as u64,
            rounds: campaign.rounds as u64,
            workers: cfg.workers.max(1).min(n_points.max(1)),
        });
    }
    let next = AtomicUsize::new(0);
    let failed = AtomicBool::new(false);
    let workers = cfg.workers.max(1).min(n_points.max(1));

    let collected: Vec<Result<Vec<PointResult>, HarnessError>> =
        crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let next = &next;
                    let failed = &failed;
                    scope.spawn(move |_| -> Result<Vec<PointResult>, HarnessError> {
                        let mut mine = Vec::new();
                        loop {
                            if failed.load(Ordering::Relaxed) {
                                break;
                            }
                            let index = next.fetch_add(1, Ordering::Relaxed);
                            if index >= n_points {
                                break;
                            }
                            let label = &campaign.points[index].label;
                            let point_started = Instant::now();
                            let (result, from_checkpoint) =
                                match store.and_then(|s| s.load(index, label)) {
                                    // Shards written before the volatile-metric
                                    // policy may still embed `_ns`/`_bytes`
                                    // series; strip on load so the manifest
                                    // bytes never depend on when a shard was
                                    // persisted.
                                    Some(mut cached) => {
                                        cached.snapshot = cached.snapshot.without_volatile();
                                        (cached, true)
                                    }
                                    None => {
                                        let computed =
                                            measure_point_with_retry(campaign, index, cfg)
                                                .inspect_err(|_| {
                                                    failed.store(true, Ordering::Relaxed);
                                                })?;
                                        if let Some(s) = store {
                                            s.store(&computed).map_err(|e| {
                                                failed.store(true, Ordering::Relaxed);
                                                HarnessError::Io(e)
                                            })?;
                                        }
                                        (computed, false)
                                    }
                                };
                            if let Some(live) = &cfg.live {
                                live.publish(LiveUpdate::PointDone {
                                    campaign: campaign.name.to_string(),
                                    point_index: index,
                                    label: result.label.clone(),
                                    totals: result.totals,
                                    snapshot: result.snapshot.clone(),
                                    replicate_fers: result.replicate_fers.clone(),
                                    secs: point_started.elapsed().as_secs_f64(),
                                    from_checkpoint,
                                });
                            }
                            mine.push(result);
                        }
                        Ok(mine)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker thread panicked"))
                .collect()
        })
        .expect("worker scope");

    let mut points = Vec::with_capacity(n_points);
    for shard in collected {
        points.extend(shard?);
    }
    points.sort_by_key(|p| p.index);
    debug_assert!(points.iter().enumerate().all(|(i, p)| p.index == i));

    Ok(CampaignManifest {
        schema_version: SCHEMA_VERSION,
        campaign: campaign.name.to_string(),
        paper_ref: campaign.paper_ref.to_string(),
        tier: campaign.tier.to_string(),
        root_seed: cfg.root_seed,
        replicates: campaign.replicates as u64,
        rounds_per_replicate: campaign.rounds as u64,
        points,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::CampaignPoint;
    use cbma::obs::json::JsonValue;
    use cbma::prelude::*;
    use std::sync::atomic::AtomicU32;
    use std::sync::Arc;

    fn tiny_engine(seed: u64) -> Engine {
        let scenario =
            Scenario::paper_default(vec![Point::new(0.0, 0.4), Point::new(0.0, -0.4)])
                .with_seed(seed);
        let mut engine = Engine::new(scenario).expect("valid scenario");
        for t in engine.tags_mut() {
            t.set_impedance(ImpedanceState::Open);
        }
        engine
    }

    fn tiny_campaign(n_points: usize) -> Campaign {
        Campaign {
            name: "tiny",
            paper_ref: "test",
            description: "runner test campaign",
            tier: "fast",
            replicates: 2,
            rounds: 2,
            points: (0..n_points)
                .map(|i| {
                    CampaignPoint::new(
                        format!("p{i}"),
                        &[("i", JsonValue::UInt(i as u64))],
                        |ctx| tiny_engine(ctx.seed),
                    )
                })
                .collect(),
        }
    }

    fn cfg(workers: usize) -> RunnerConfig {
        RunnerConfig {
            workers,
            root_seed: 11,
            max_attempts: 2,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(4),
            checkpoint_dir: None,
            live: None,
            streaming: None,
        }
    }

    #[test]
    fn job_seed_is_stable_and_distinct() {
        let a = job_seed(1, "fig8a", "n2_d100", 0);
        assert_eq!(a, job_seed(1, "fig8a", "n2_d100", 0));
        assert_ne!(a, job_seed(1, "fig8a", "n2_d100", 1));
        assert_ne!(a, job_seed(1, "fig8a", "n3_d100", 0));
        assert_ne!(a, job_seed(2, "fig8a", "n2_d100", 0));
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let c = cfg(1);
        assert_eq!(c.backoff(1), Duration::from_millis(1));
        assert_eq!(c.backoff(2), Duration::from_millis(2));
        assert_eq!(c.backoff(3), Duration::from_millis(4));
        assert_eq!(c.backoff(9), Duration::from_millis(4)); // capped
    }

    #[test]
    fn manifest_is_independent_of_worker_count() {
        let campaign = tiny_campaign(3);
        let one = run_campaign(&campaign, &cfg(1)).unwrap().to_json();
        let four = run_campaign(&campaign, &cfg(4)).unwrap().to_json();
        assert_eq!(one, four);
    }

    #[test]
    fn flaky_point_is_retried_to_success() {
        let flakes = Arc::new(AtomicU32::new(0));
        let flakes_in = Arc::clone(&flakes);
        let campaign = Campaign {
            name: "flaky",
            paper_ref: "test",
            description: "one point panics on its first attempt",
            tier: "fast",
            replicates: 1,
            rounds: 2,
            points: vec![CampaignPoint::new("p0", &[], move |ctx| {
                if flakes_in.fetch_add(1, Ordering::Relaxed) == 0 {
                    panic!("injected fault");
                }
                tiny_engine(ctx.seed)
            })],
        };
        let manifest = run_campaign(&campaign, &cfg(1)).unwrap();
        assert_eq!(manifest.points.len(), 1);
        assert!(flakes.load(Ordering::Relaxed) >= 2, "first attempt panicked");
        // The retried run measured the same seed an untroubled run would.
        assert_eq!(manifest.points[0].totals.rounds, 2);
    }

    #[test]
    fn persistent_failure_names_the_point() {
        let campaign = Campaign {
            name: "doomed",
            paper_ref: "test",
            description: "always panics",
            tier: "fast",
            replicates: 1,
            rounds: 1,
            points: vec![CampaignPoint::new("bad_point", &[], |_| {
                panic!("unrecoverable")
            })],
        };
        let err = run_campaign(&campaign, &cfg(2)).unwrap_err();
        match err {
            HarnessError::PointFailed {
                point,
                attempts,
                last_panic,
                ..
            } => {
                assert_eq!(point, "bad_point");
                assert_eq!(attempts, 2);
                assert!(last_panic.contains("unrecoverable"));
            }
            other => panic!("expected PointFailed, got {other}"),
        }
    }

    #[test]
    fn live_stream_converges_to_the_manifest_snapshot() {
        use crate::live::{LiveAggregator, LiveConfig};
        let path = std::env::temp_dir().join(format!(
            "cbma-runner-live-{}.json",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        let agg = LiveAggregator::start(LiveConfig::new(&path)).unwrap();

        let campaign = tiny_campaign(3);
        let mut config = cfg(2);
        config.live = Some(agg.publisher());
        let manifest = run_campaign(&campaign, &config).unwrap();
        drop(config); // hang up the publisher clone
        agg.finish().unwrap();

        let text = std::fs::read_to_string(&path).unwrap();
        let v = JsonValue::parse(&text).unwrap();
        let c = v
            .as_object()
            .unwrap()
            .get("campaigns")
            .and_then(JsonValue::as_object)
            .unwrap()
            .get("tiny")
            .and_then(JsonValue::as_object)
            .unwrap();
        assert_eq!(c.get("points_done").and_then(JsonValue::as_u64), Some(3));
        assert_eq!(c.get("points_total").and_then(JsonValue::as_u64), Some(3));
        // The live rollup must agree with the manifest byte-for-byte.
        let live_merged = c.get("merged_snapshot").unwrap().to_json();
        let manifest_merged = JsonValue::parse(&manifest.merged_snapshot().to_json())
            .unwrap()
            .to_json();
        assert_eq!(live_merged, manifest_merged);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn checkpoints_resume_without_recompute() {
        let dir = std::env::temp_dir().join(format!(
            "cbma-runner-resume-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut config = cfg(2);
        config.checkpoint_dir = Some(dir.clone());

        let campaign = tiny_campaign(3);
        let first = run_campaign(&campaign, &config).unwrap();
        assert!(dir.join("point_0000.json").exists());

        // Second run must replay checkpoints even if the builders would
        // now fail: replace the campaign with poisoned builders.
        let poisoned = Campaign {
            points: (0..3)
                .map(|i| {
                    CampaignPoint::new(
                        format!("p{i}"),
                        &[("i", JsonValue::UInt(i as u64))],
                        |_| panic!("must not rebuild a checkpointed point"),
                    )
                })
                .collect(),
            ..tiny_campaign(3)
        };
        let mut resumed_cfg = config.clone();
        resumed_cfg.max_attempts = 1;
        let second = run_campaign(&poisoned, &resumed_cfg).unwrap();
        assert_eq!(first.to_json(), second.to_json());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
