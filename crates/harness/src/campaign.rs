//! The declarative campaign model.
//!
//! A [`Campaign`] is a named grid of measurement points — one per
//! parameter combination of a paper figure — plus the replicate/round
//! counts the selected [`Tier`](crate::Tier) resolved. Each point carries
//! a builder closure that turns a per-job seed into a ready-to-measure
//! [`Engine`]; the runner owns scheduling, retries and checkpointing, so
//! the campaign definition stays pure description.

use std::collections::BTreeMap;

use cbma::obs::json::JsonValue;
use cbma::prelude::*;
// The prelude exports a 1-parameter `Result<T>` alias; validation uses a
// plain string error, so restore the std form.
use std::result::Result;

/// Per-job context handed to a point builder.
///
/// `seed` derives deterministically from
/// `(root seed, campaign name, point label, replicate)` via
/// `SeedSequence`, so every job owns an independent, reproducible RNG
/// stream regardless of which worker runs it or in what order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobCtx {
    /// The job's deterministic seed.
    pub seed: u64,
    /// The replicate index within the point (campaigns that measure
    /// random deployments use this as the deployment-group index).
    pub replicate: usize,
}

/// The engine factory for one point. Must be pure: the same `JobCtx`
/// always yields the same engine.
pub type PointBuilder = Box<dyn Fn(JobCtx) -> Engine + Send + Sync>;

/// One measurement point of a campaign grid.
pub struct CampaignPoint {
    /// Stable human-readable label, unique within the campaign (used in
    /// manifests, checkpoints and seed derivation — never reword).
    pub label: String,
    /// The parameter values this point fixes, for the manifest.
    pub params: BTreeMap<String, JsonValue>,
    /// Builds the engine for one replicate.
    pub builder: PointBuilder,
}

impl CampaignPoint {
    /// Convenience constructor.
    pub fn new<F>(label: impl Into<String>, params: &[(&str, JsonValue)], builder: F) -> CampaignPoint
    where
        F: Fn(JobCtx) -> Engine + Send + Sync + 'static,
    {
        CampaignPoint {
            label: label.into(),
            params: params
                .iter()
                .map(|(k, v)| ((*k).to_string(), v.clone()))
                .collect(),
            builder: Box::new(builder),
        }
    }
}

impl std::fmt::Debug for CampaignPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CampaignPoint")
            .field("label", &self.label)
            .field("params", &self.params)
            .finish_non_exhaustive()
    }
}

/// A full figure campaign: the grid plus its tier-resolved sizes.
#[derive(Debug)]
pub struct Campaign {
    /// Stable machine name (`fig8a`, `fig9c`, …) used for manifests,
    /// checkpoints and seed derivation.
    pub name: &'static str,
    /// The paper figure/table this reproduces.
    pub paper_ref: &'static str,
    /// One-line description for `--list`.
    pub description: &'static str,
    /// The tier label the counts below were resolved for.
    pub tier: &'static str,
    /// Replicates (independent seeds or deployment groups) per point.
    pub replicates: usize,
    /// Transmission rounds measured per replicate.
    pub rounds: usize,
    /// The measurement grid.
    pub points: Vec<CampaignPoint>,
}

impl Campaign {
    /// Total jobs in the campaign (`points × replicates`).
    pub fn job_count(&self) -> usize {
        self.points.len() * self.replicates
    }

    /// Validates the definition: non-empty grid, positive counts, unique
    /// point labels (labels seed the RNG streams, so collisions would
    /// silently correlate points).
    pub fn validate(&self) -> Result<(), String> {
        if self.points.is_empty() {
            return Err(format!("campaign {}: no points", self.name));
        }
        if self.replicates == 0 || self.rounds == 0 {
            return Err(format!(
                "campaign {}: replicates and rounds must be positive",
                self.name
            ));
        }
        let mut seen = std::collections::BTreeSet::new();
        for p in &self.points {
            if !seen.insert(p.label.as_str()) {
                return Err(format!(
                    "campaign {}: duplicate point label {:?}",
                    self.name, p.label
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_point(label: &str) -> CampaignPoint {
        CampaignPoint::new(label, &[("n", JsonValue::UInt(2))], |ctx| {
            let scenario =
                Scenario::paper_default(vec![Point::new(0.0, 0.4), Point::new(0.0, -0.4)])
                    .with_seed(ctx.seed);
            Engine::new(scenario).expect("valid scenario")
        })
    }

    fn tiny_campaign(points: Vec<CampaignPoint>) -> Campaign {
        Campaign {
            name: "tiny",
            paper_ref: "test",
            description: "test campaign",
            tier: "fast",
            replicates: 2,
            rounds: 3,
            points,
        }
    }

    #[test]
    fn job_count_is_grid_size() {
        let c = tiny_campaign(vec![tiny_point("a"), tiny_point("b")]);
        assert_eq!(c.job_count(), 4);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validate_rejects_duplicate_labels() {
        let c = tiny_campaign(vec![tiny_point("a"), tiny_point("a")]);
        assert!(c.validate().unwrap_err().contains("duplicate point label"));
    }

    #[test]
    fn validate_rejects_empty_grid() {
        let c = tiny_campaign(vec![]);
        assert!(c.validate().is_err());
    }

    #[test]
    fn builder_is_deterministic_in_ctx() {
        let p = tiny_point("a");
        let ctx = JobCtx {
            seed: 42,
            replicate: 0,
        };
        let a = (p.builder)(ctx);
        let b = (p.builder)(ctx);
        assert_eq!(a.scenario().seed, b.scenario().seed);
    }
}
