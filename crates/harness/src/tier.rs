//! The fast/full tier split.
//!
//! Every campaign exists at two sizes. The **fast** tier keeps the grid
//! shape of the paper's figure but cuts replicates and rounds so the whole
//! suite finishes in tens of seconds — it is what CI and the regression
//! tests run. The **full** tier restores paper-scale counts (≈1000
//! collided packets per point, 50 deployment groups) for generating the
//! numbers EXPERIMENTS.md reports.

use std::fmt;

/// Campaign size selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tier {
    /// Reduced replicates/rounds, same grid shape. Seconds per campaign.
    Fast,
    /// Paper-scale counts. Minutes to hours for the full suite.
    Full,
}

impl Tier {
    /// Parses a CLI tier name (case-insensitive).
    pub fn parse(s: &str) -> Option<Tier> {
        match s.to_ascii_lowercase().as_str() {
            "fast" => Some(Tier::Fast),
            "full" => Some(Tier::Full),
            _ => None,
        }
    }

    /// The canonical lower-case label (used in manifests and checkpoint
    /// headers, so it must never change spelling).
    pub fn label(self) -> &'static str {
        match self {
            Tier::Fast => "fast",
            Tier::Full => "full",
        }
    }

    /// Picks the tier-appropriate count.
    pub fn pick(self, fast: usize, full: usize) -> usize {
        match self {
            Tier::Fast => fast,
            Tier::Full => full,
        }
    }
}

impl fmt::Display for Tier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_case_insensitively() {
        assert_eq!(Tier::parse("fast"), Some(Tier::Fast));
        assert_eq!(Tier::parse("FULL"), Some(Tier::Full));
        assert_eq!(Tier::parse("paper"), None);
    }

    #[test]
    fn labels_round_trip() {
        for tier in [Tier::Fast, Tier::Full] {
            assert_eq!(Tier::parse(tier.label()), Some(tier));
            assert_eq!(format!("{tier}"), tier.label());
        }
    }

    #[test]
    fn pick_selects_by_tier() {
        assert_eq!(Tier::Fast.pick(2, 50), 2);
        assert_eq!(Tier::Full.pick(2, 50), 50);
    }
}
