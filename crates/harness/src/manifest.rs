//! The canonical campaign manifest.
//!
//! A [`CampaignManifest`] is the single artifact a campaign run produces:
//! per-point frame/detection/bit-error totals, per-replicate FERs, derived
//! rates and an embedded `cbma-obs` snapshot. Serialization goes through
//! [`JsonValue`] (object keys are `BTreeMap`-sorted and floats use the
//! shortest round-trip form), and wall-clock metrics are stripped from the
//! snapshot before embedding, so two same-seed runs produce **byte
//! identical** manifests and `parse(to_json)` is lossless.

use std::collections::BTreeMap;

use cbma::obs::json::JsonValue;
use cbma::obs::Snapshot;
use cbma::prelude::*;
// The prelude exports a 1-parameter `Result<T>` alias; manifest parsing
// uses its own error type, so restore the std form.
use std::result::Result;

/// Manifest schema version; bump when the JSON layout changes.
pub const SCHEMA_VERSION: u64 = 1;

/// A manifest that failed to parse or validate.
#[derive(Debug, Clone, PartialEq)]
pub struct ManifestError(pub String);

impl std::fmt::Display for ManifestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "manifest error: {}", self.0)
    }
}

impl std::error::Error for ManifestError {}

fn err(msg: impl Into<String>) -> ManifestError {
    ManifestError(msg.into())
}

/// Aggregated counts from measured rounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Measurement {
    /// Transmission rounds measured.
    pub rounds: u64,
    /// Frames transmitted by active tags.
    pub frames_sent: u64,
    /// Frames delivered with the exact transmitted payload.
    pub frames_delivered: u64,
    /// Detections whose code index matched an active tag.
    pub frames_detected: u64,
    /// Detections claiming a tag that was not transmitting.
    pub false_detections: u64,
    /// Errored bits across frames whose header decoded.
    pub bit_errors: u64,
    /// Total bits those error counts are measured over.
    pub bits_measured: u64,
}

impl Measurement {
    /// Runs `rounds` transmission rounds on the engine and aggregates the
    /// outcomes. Deterministic in the engine's scenario seed and the
    /// engine's current round counter.
    pub fn from_engine(engine: &mut Engine, rounds: usize) -> Measurement {
        let mut m = Measurement::default();
        for _ in 0..rounds {
            m.record_outcome(&engine.run_round());
        }
        m
    }

    /// Runs `rounds` transmission rounds through the streaming receiver
    /// runtime ([`Engine::run_streaming_with`]) and aggregates the
    /// outcomes. The streaming stages make the same decisions as the
    /// monolithic receive at every block size and scheduler, so this is
    /// byte-for-byte interchangeable with [`Measurement::from_engine`].
    pub fn from_engine_streaming(
        engine: &mut Engine,
        rounds: usize,
        cfg: &StreamingConfig,
    ) -> Measurement {
        let mut m = Measurement::default();
        engine.run_streaming_with(rounds, cfg, |outcome| m.record_outcome(outcome));
        m
    }

    fn record_outcome(&mut self, outcome: &RoundOutcome) {
        self.rounds += 1;
        self.frames_sent += outcome.active.len() as u64;
        self.frames_delivered += outcome.delivered.len() as u64;
        for id in outcome.report.detected_ids() {
            if outcome.active.contains(&id) {
                self.frames_detected += 1;
            } else {
                self.false_detections += 1;
            }
        }
        for &(_, errs, bits) in &outcome.bit_errors {
            self.bit_errors += errs as u64;
            self.bits_measured += bits as u64;
        }
    }

    /// Frame error rate (1 − delivered/sent); 0 when nothing was sent.
    pub fn fer(&self) -> f64 {
        if self.frames_sent == 0 {
            0.0
        } else {
            1.0 - self.frames_delivered as f64 / self.frames_sent as f64
        }
    }

    /// Fraction of transmitted frames whose tag was detected at all.
    pub fn detection_rate(&self) -> f64 {
        if self.frames_sent == 0 {
            0.0
        } else {
            (self.frames_detected as f64 / self.frames_sent as f64).min(1.0)
        }
    }

    /// Bit error rate over the measured bits, if any were measured.
    pub fn ber(&self) -> Option<f64> {
        if self.bits_measured == 0 {
            None
        } else {
            Some(self.bit_errors as f64 / self.bits_measured as f64)
        }
    }

    /// Delivered frames per round — the concurrent-throughput figure of
    /// merit (ideal = number of concurrent tags).
    pub fn throughput_frames_per_round(&self) -> f64 {
        if self.rounds == 0 {
            0.0
        } else {
            self.frames_delivered as f64 / self.rounds as f64
        }
    }

    /// Accumulates another measurement into this one.
    pub fn merge(&mut self, other: &Measurement) {
        self.rounds += other.rounds;
        self.frames_sent += other.frames_sent;
        self.frames_delivered += other.frames_delivered;
        self.frames_detected += other.frames_detected;
        self.false_detections += other.false_detections;
        self.bit_errors += other.bit_errors;
        self.bits_measured += other.bits_measured;
    }

    /// The manifest representation.
    pub fn to_json_value(&self) -> JsonValue {
        let mut o = BTreeMap::new();
        o.insert("rounds".into(), JsonValue::UInt(self.rounds));
        o.insert("frames_sent".into(), JsonValue::UInt(self.frames_sent));
        o.insert(
            "frames_delivered".into(),
            JsonValue::UInt(self.frames_delivered),
        );
        o.insert(
            "frames_detected".into(),
            JsonValue::UInt(self.frames_detected),
        );
        o.insert(
            "false_detections".into(),
            JsonValue::UInt(self.false_detections),
        );
        o.insert("bit_errors".into(), JsonValue::UInt(self.bit_errors));
        o.insert("bits_measured".into(), JsonValue::UInt(self.bits_measured));
        JsonValue::Object(o)
    }

    /// Parses the manifest representation.
    pub fn from_json_value(v: &JsonValue) -> Result<Measurement, ManifestError> {
        let o = v.as_object().ok_or_else(|| err("totals: not an object"))?;
        let get = |k: &str| -> Result<u64, ManifestError> {
            o.get(k)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| err(format!("totals: missing/invalid field {k:?}")))
        };
        Ok(Measurement {
            rounds: get("rounds")?,
            frames_sent: get("frames_sent")?,
            frames_delivered: get("frames_delivered")?,
            frames_detected: get("frames_detected")?,
            false_detections: get("false_detections")?,
            bit_errors: get("bit_errors")?,
            bits_measured: get("bits_measured")?,
        })
    }
}

/// The completed measurement of one campaign point.
#[derive(Debug, Clone, PartialEq)]
pub struct PointResult {
    /// Grid position (manifest points are ordered by this index).
    pub index: usize,
    /// The point's stable label.
    pub label: String,
    /// The parameter values the point fixed.
    pub params: BTreeMap<String, JsonValue>,
    /// Totals over all replicates.
    pub totals: Measurement,
    /// Per-replicate FERs, replicate order.
    pub replicate_fers: Vec<f64>,
    /// The point's `cbma-obs` snapshot with wall-clock (`*_ns`) metrics
    /// stripped for byte-stable output.
    pub snapshot: Snapshot,
}

impl PointResult {
    /// The manifest representation (includes derived rates alongside the
    /// raw totals; parsers treat the derived block as advisory).
    pub fn to_json_value(&self) -> JsonValue {
        let mut derived = BTreeMap::new();
        derived.insert("fer".into(), JsonValue::Float(self.totals.fer()));
        derived.insert(
            "detection_rate".into(),
            JsonValue::Float(self.totals.detection_rate()),
        );
        derived.insert(
            "throughput_frames_per_round".into(),
            JsonValue::Float(self.totals.throughput_frames_per_round()),
        );
        derived.insert(
            "ber".into(),
            match self.totals.ber() {
                Some(b) => JsonValue::Float(b),
                None => JsonValue::Null,
            },
        );

        let snapshot = JsonValue::parse(&self.snapshot.to_json())
            .expect("snapshot serialization is valid JSON");

        let mut o = BTreeMap::new();
        o.insert("index".into(), JsonValue::UInt(self.index as u64));
        o.insert("label".into(), JsonValue::Str(self.label.clone()));
        o.insert("params".into(), JsonValue::Object(self.params.clone()));
        o.insert("totals".into(), self.totals.to_json_value());
        o.insert("derived".into(), JsonValue::Object(derived));
        o.insert(
            "replicate_fers".into(),
            JsonValue::Array(
                self.replicate_fers
                    .iter()
                    .map(|&f| JsonValue::Float(f))
                    .collect(),
            ),
        );
        o.insert("snapshot".into(), snapshot);
        JsonValue::Object(o)
    }

    /// Parses the manifest representation.
    pub fn from_json_value(v: &JsonValue) -> Result<PointResult, ManifestError> {
        let o = v.as_object().ok_or_else(|| err("point: not an object"))?;
        let index = o
            .get("index")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| err("point: missing index"))? as usize;
        let label = o
            .get("label")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| err("point: missing label"))?
            .to_string();
        let params = o
            .get("params")
            .and_then(JsonValue::as_object)
            .ok_or_else(|| err("point: missing params"))?
            .clone();
        let totals = Measurement::from_json_value(
            o.get("totals").ok_or_else(|| err("point: missing totals"))?,
        )?;
        let replicate_fers = o
            .get("replicate_fers")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| err("point: missing replicate_fers"))?
            .iter()
            .map(|f| {
                f.as_f64()
                    .ok_or_else(|| err("point: non-numeric replicate fer"))
            })
            .collect::<Result<Vec<f64>, ManifestError>>()?;
        let snapshot_value = o
            .get("snapshot")
            .ok_or_else(|| err("point: missing snapshot"))?;
        let snapshot = Snapshot::from_json(&snapshot_value.to_json())
            .map_err(|e| err(format!("point {label:?}: bad snapshot: {e}")))?;
        Ok(PointResult {
            index,
            label,
            params,
            totals,
            replicate_fers,
            snapshot,
        })
    }
}

/// The canonical artifact of one campaign run.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignManifest {
    /// Layout version ([`SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// Campaign machine name.
    pub campaign: String,
    /// The paper figure the campaign reproduces.
    pub paper_ref: String,
    /// Tier label the counts were resolved for.
    pub tier: String,
    /// Root seed all job seeds derive from.
    pub root_seed: u64,
    /// Replicates per point.
    pub replicates: u64,
    /// Rounds per replicate.
    pub rounds_per_replicate: u64,
    /// Per-point results, ordered by grid index.
    pub points: Vec<PointResult>,
}

impl CampaignManifest {
    /// All per-point snapshots merged in grid order — the campaign-wide
    /// observability rollup. Point snapshots are timing-stripped before
    /// embedding and `Snapshot::merge` is order-insensitive, so this
    /// matches the final `merged_snapshot` a live aggregator converges
    /// to byte-for-byte.
    pub fn merged_snapshot(&self) -> Snapshot {
        let mut merged = Snapshot::new();
        for p in &self.points {
            merged.merge(&p.snapshot);
        }
        merged
    }

    /// The JSON tree.
    pub fn to_json_value(&self) -> JsonValue {
        let mut o = BTreeMap::new();
        o.insert(
            "schema_version".into(),
            JsonValue::UInt(self.schema_version),
        );
        o.insert("campaign".into(), JsonValue::Str(self.campaign.clone()));
        o.insert("paper_ref".into(), JsonValue::Str(self.paper_ref.clone()));
        o.insert("tier".into(), JsonValue::Str(self.tier.clone()));
        o.insert("root_seed".into(), JsonValue::UInt(self.root_seed));
        o.insert("replicates".into(), JsonValue::UInt(self.replicates));
        o.insert(
            "rounds_per_replicate".into(),
            JsonValue::UInt(self.rounds_per_replicate),
        );
        o.insert(
            "points".into(),
            JsonValue::Array(self.points.iter().map(PointResult::to_json_value).collect()),
        );
        JsonValue::Object(o)
    }

    /// Serializes to the canonical byte-stable JSON document (compact,
    /// sorted keys, trailing newline).
    pub fn to_json(&self) -> String {
        let mut s = self.to_json_value().to_json();
        s.push('\n');
        s
    }

    /// Parses and validates a manifest document.
    pub fn from_json(text: &str) -> Result<CampaignManifest, ManifestError> {
        let v = JsonValue::parse(text).map_err(|e| err(format!("invalid JSON: {e}")))?;
        Self::from_json_value(&v)
    }

    /// Parses the JSON tree form.
    pub fn from_json_value(v: &JsonValue) -> Result<CampaignManifest, ManifestError> {
        let o = v
            .as_object()
            .ok_or_else(|| err("manifest: not an object"))?;
        let get_u64 = |k: &str| -> Result<u64, ManifestError> {
            o.get(k)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| err(format!("manifest: missing/invalid field {k:?}")))
        };
        let get_str = |k: &str| -> Result<String, ManifestError> {
            o.get(k)
                .and_then(JsonValue::as_str)
                .map(str::to_string)
                .ok_or_else(|| err(format!("manifest: missing/invalid field {k:?}")))
        };
        let schema_version = get_u64("schema_version")?;
        if schema_version != SCHEMA_VERSION {
            return Err(err(format!(
                "manifest: unsupported schema_version {schema_version} (expected {SCHEMA_VERSION})"
            )));
        }
        let points = o
            .get("points")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| err("manifest: missing points"))?
            .iter()
            .map(PointResult::from_json_value)
            .collect::<Result<Vec<PointResult>, ManifestError>>()?;
        for (i, p) in points.iter().enumerate() {
            if p.index != i {
                return Err(err(format!(
                    "manifest: point {i} has out-of-order index {}",
                    p.index
                )));
            }
        }
        Ok(CampaignManifest {
            schema_version,
            campaign: get_str("campaign")?,
            paper_ref: get_str("paper_ref")?,
            tier: get_str("tier")?,
            root_seed: get_u64("root_seed")?,
            replicates: get_u64("replicates")?,
            rounds_per_replicate: get_u64("rounds_per_replicate")?,
            points,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_measurement() -> Measurement {
        Measurement {
            rounds: 10,
            frames_sent: 30,
            frames_delivered: 27,
            frames_detected: 29,
            false_detections: 1,
            bit_errors: 4,
            bits_measured: 960,
        }
    }

    pub(crate) fn sample_manifest() -> CampaignManifest {
        let mut params = BTreeMap::new();
        params.insert("n_tags".to_string(), JsonValue::UInt(3));
        params.insert("d_cm".to_string(), JsonValue::Float(150.0));
        CampaignManifest {
            schema_version: SCHEMA_VERSION,
            campaign: "figtest".into(),
            paper_ref: "Fig. 0".into(),
            tier: "fast".into(),
            root_seed: 0xCB3A,
            replicates: 2,
            rounds_per_replicate: 5,
            points: vec![PointResult {
                index: 0,
                label: "n3_d150".into(),
                params,
                totals: sample_measurement(),
                replicate_fers: vec![0.1, 0.0],
                snapshot: Snapshot::new(),
            }],
        }
    }

    #[test]
    fn measurement_rates() {
        let m = sample_measurement();
        assert!((m.fer() - 0.1).abs() < 1e-12);
        assert!((m.detection_rate() - 29.0 / 30.0).abs() < 1e-12);
        assert!((m.ber().unwrap() - 4.0 / 960.0).abs() < 1e-12);
        assert!((m.throughput_frames_per_round() - 2.7).abs() < 1e-12);
        assert_eq!(Measurement::default().ber(), None);
        assert_eq!(Measurement::default().fer(), 0.0);
    }

    #[test]
    fn measurement_merge_adds_fields() {
        let mut a = sample_measurement();
        a.merge(&sample_measurement());
        assert_eq!(a.rounds, 20);
        assert_eq!(a.frames_sent, 60);
        assert_eq!(a.bits_measured, 1920);
        // Rates are invariant under self-merge.
        assert!((a.fer() - sample_measurement().fer()).abs() < 1e-12);
    }

    #[test]
    fn manifest_json_round_trips_losslessly() {
        let m = sample_manifest();
        let text = m.to_json();
        let parsed = CampaignManifest::from_json(&text).unwrap();
        assert_eq!(parsed, m);
        assert_eq!(parsed.to_json(), text);
    }

    #[test]
    fn manifest_rejects_wrong_schema_version() {
        let m = sample_manifest();
        let text = m.to_json().replace(
            "\"schema_version\":1",
            "\"schema_version\":999",
        );
        let e = CampaignManifest::from_json(&text).unwrap_err();
        assert!(e.0.contains("unsupported schema_version"), "{e}");
    }

    #[test]
    fn manifest_rejects_out_of_order_points() {
        let mut m = sample_manifest();
        m.points[0].index = 5;
        let e = CampaignManifest::from_json(&m.to_json()).unwrap_err();
        assert!(e.0.contains("out-of-order"), "{e}");
    }

    #[test]
    fn measurement_from_engine_counts_frames() {
        let scenario =
            Scenario::paper_default(vec![Point::new(0.0, 0.4), Point::new(0.0, -0.4)])
                .with_seed(7);
        let mut engine = Engine::new(scenario).expect("valid scenario");
        for t in engine.tags_mut() {
            t.set_impedance(ImpedanceState::Open);
        }
        let m = Measurement::from_engine(&mut engine, 4);
        assert_eq!(m.rounds, 4);
        assert!(m.frames_sent >= m.frames_delivered);
        assert!(m.fer() >= 0.0 && m.fer() <= 1.0);
    }
}
