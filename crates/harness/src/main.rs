//! The campaign runner CLI.
//!
//! ```text
//! cbma-harness [--tier fast|full] [--out DIR] [--campaign NAME]...
//!              [--seed N] [--workers N] [--fresh] [--list]
//!              [--live] [--trace-out FILE]
//!              [--streaming inline|threaded|worksteal[:N][:pin]]
//! ```
//!
//! Runs the selected campaigns (default: all built-ins) at the selected
//! tier, checkpointing under `<out>/.checkpoints/<campaign>/` and writing
//! one `<out>/<campaign>.<tier>.json` manifest per campaign. Re-running
//! after an interruption resumes from the checkpoints; `--fresh` wipes
//! them first.
//!
//! `--live` streams progress to a rolling `<out>/live.json` (atomically
//! replaced, safe to poll) plus a stderr progress line, and verifies on
//! exit that the final live rollup agrees byte-for-byte with the
//! manifests. `--trace-out FILE` records one instrumented round of the
//! first selected campaign's first point and writes a Chrome
//! trace-event JSON viewable in Perfetto / `chrome://tracing`.
//! `--streaming` measures through the pipelined receiver runtime with
//! the given stage scheduler — the manifests are byte-identical to the
//! round-synchronous default (and the trace, when requested, shows the
//! flowgraph's stage spans instead of the monolithic capture tree).
//! `worksteal[:N][:pin]` runs every stream's stages over a fixed pool of
//! N workers (default: one per CPU), optionally pinned round-robin onto
//! CPUs.

use std::path::PathBuf;
use std::process::ExitCode;

use cbma::obs::json::JsonValue;
use cbma::obs::Tracer;
use cbma::rx::Scheduler;
use cbma::sim::StreamingConfig;
use cbma_harness::{
    campaigns, job_seed, run_campaign, CampaignManifest, JobCtx, LiveAggregator, LiveConfig,
    RunnerConfig, Tier,
};

struct Cli {
    tier: Tier,
    out: PathBuf,
    names: Vec<String>,
    seed: u64,
    workers: Option<usize>,
    fresh: bool,
    list: bool,
    live: bool,
    trace_out: Option<PathBuf>,
    streaming: Option<Scheduler>,
}

const USAGE: &str = "usage: cbma-harness [--tier fast|full] [--out DIR] [--campaign NAME]... \
[--seed N] [--workers N] [--fresh] [--list] [--live] [--trace-out FILE] \
[--streaming inline|threaded|worksteal[:N][:pin]]";

fn parse_cli(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        tier: Tier::Fast,
        out: PathBuf::from("manifests"),
        names: Vec::new(),
        seed: 0xCB3A,
        workers: None,
        fresh: false,
        list: false,
        live: false,
        trace_out: None,
        streaming: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value\n{USAGE}"))
        };
        match arg.as_str() {
            "--tier" => {
                let v = value("--tier")?;
                cli.tier = Tier::parse(&v).ok_or_else(|| format!("unknown tier {v:?}\n{USAGE}"))?;
            }
            "--out" => cli.out = PathBuf::from(value("--out")?),
            "--campaign" => cli.names.push(value("--campaign")?),
            "--seed" => {
                let v = value("--seed")?;
                cli.seed = v
                    .parse()
                    .map_err(|_| format!("--seed expects an integer, got {v:?}"))?;
            }
            "--workers" => {
                let v = value("--workers")?;
                cli.workers = Some(
                    v.parse()
                        .map_err(|_| format!("--workers expects an integer, got {v:?}"))?,
                );
            }
            "--fresh" => cli.fresh = true,
            "--list" => cli.list = true,
            "--live" => cli.live = true,
            "--trace-out" => cli.trace_out = Some(PathBuf::from(value("--trace-out")?)),
            "--streaming" => {
                let v = value("--streaming")?;
                cli.streaming = Some(Scheduler::parse(&v).ok_or_else(|| {
                    format!(
                        "unknown streaming scheduler {v:?} (valid: {})\n{USAGE}",
                        Scheduler::VALID_NAMES
                    )
                })?);
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument {other:?}\n{USAGE}")),
        }
    }
    Ok(cli)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_cli(&args) {
        Ok(cli) => cli,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    if cli.list {
        println!("built-in campaigns ({} tier):", cli.tier);
        for c in campaigns::all(cli.tier) {
            println!(
                "  {:<8} {:<24} {} points × {} replicates × {} rounds — {}",
                c.name,
                c.paper_ref,
                c.points.len(),
                c.replicates,
                c.rounds,
                c.description
            );
        }
        return ExitCode::SUCCESS;
    }

    let names: Vec<String> = if cli.names.is_empty() {
        campaigns::CAMPAIGN_NAMES
            .iter()
            .map(|s| s.to_string())
            .collect()
    } else {
        cli.names.clone()
    };

    if let Err(e) = std::fs::create_dir_all(&cli.out) {
        eprintln!("cannot create output directory {}: {e}", cli.out.display());
        return ExitCode::FAILURE;
    }

    let aggregator = if cli.live {
        let mut live_cfg = LiveConfig::new(cli.out.join("live.json"));
        live_cfg.progress = true;
        match LiveAggregator::start(live_cfg) {
            Ok(agg) => Some(agg),
            Err(e) => {
                eprintln!("cannot start live aggregator: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        None
    };

    let mut manifests: Vec<CampaignManifest> = Vec::new();
    for name in &names {
        let Some(campaign) = campaigns::by_name(name, cli.tier) else {
            eprintln!(
                "unknown campaign {name:?} (available: {})",
                campaigns::CAMPAIGN_NAMES.join(", ")
            );
            return ExitCode::FAILURE;
        };

        let checkpoint_dir = cli.out.join(".checkpoints").join(format!(
            "{}.{}",
            campaign.name, campaign.tier
        ));
        if cli.fresh {
            let _ = std::fs::remove_dir_all(&checkpoint_dir);
        }

        let mut cfg = RunnerConfig {
            root_seed: cli.seed,
            checkpoint_dir: Some(checkpoint_dir),
            live: aggregator.as_ref().map(LiveAggregator::publisher),
            streaming: cli.streaming.map(|scheduler| StreamingConfig {
                scheduler,
                ..StreamingConfig::default()
            }),
            ..RunnerConfig::default()
        };
        if let Some(w) = cli.workers {
            cfg.workers = w.max(1);
        }

        eprintln!(
            "running {} ({}, {} tier): {} points × {} replicates × {} rounds",
            campaign.name,
            campaign.paper_ref,
            campaign.tier,
            campaign.points.len(),
            campaign.replicates,
            campaign.rounds
        );
        let started = std::time::Instant::now();
        let manifest = match run_campaign(&campaign, &cfg) {
            Ok(m) => m,
            Err(e) => {
                eprintln!("campaign {name} failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        let path = cli
            .out
            .join(format!("{}.{}.json", manifest.campaign, manifest.tier));
        if let Err(e) = std::fs::write(&path, manifest.to_json()) {
            eprintln!("cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }

        let fers: Vec<f64> = manifest.points.iter().map(|p| p.totals.fer()).collect();
        let (lo, hi) = fers.iter().fold((f64::MAX, f64::MIN), |(lo, hi), &f| {
            (lo.min(f), hi.max(f))
        });
        eprintln!(
            "  wrote {} ({} points, FER {:.1}%–{:.1}%, {:.1}s)",
            path.display(),
            manifest.points.len(),
            lo * 100.0,
            hi * 100.0,
            started.elapsed().as_secs_f64()
        );
        manifests.push(manifest);
    }

    if let Some(path) = &cli.trace_out {
        if let Err(msg) = write_trace(path, &names[0], cli.tier, cli.seed, cli.streaming) {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
        eprintln!("  wrote {} (Chrome trace-event JSON)", path.display());
    }

    if let Some(agg) = aggregator {
        let live_path = agg.path().clone();
        if let Err(e) = agg.finish() {
            eprintln!("live aggregator failed: {e}");
            return ExitCode::FAILURE;
        }
        if let Err(msg) = verify_live(&live_path, &manifests) {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
        eprintln!(
            "  live snapshot {} agrees with the manifests",
            live_path.display()
        );
    }
    ExitCode::SUCCESS
}

/// Records one fully-instrumented round of `name`'s first point and
/// writes a Chrome trace-event document for Perfetto. With a streaming
/// scheduler, the round runs through the flowgraph so the trace shows
/// the pipeline's stage spans (`sync_stage` … `sic_stage`, `stage_run`,
/// `stage_wait`) instead of the monolithic capture tree.
fn write_trace(
    path: &PathBuf,
    name: &str,
    tier: Tier,
    seed: u64,
    streaming: Option<Scheduler>,
) -> Result<(), String> {
    let campaign =
        campaigns::by_name(name, tier).ok_or_else(|| format!("unknown campaign {name:?}"))?;
    let point = campaign
        .points
        .first()
        .ok_or_else(|| format!("campaign {name} has no points"))?;
    let tracer = Tracer::new(8192);
    let ctx = JobCtx {
        seed: job_seed(seed, campaign.name, &point.label, 0),
        replicate: 0,
    };
    let mut engine = (point.builder)(ctx);
    engine.attach_tracer(&tracer);
    match streaming {
        Some(scheduler) => {
            let cfg = StreamingConfig {
                width: 1,
                scheduler,
                ..StreamingConfig::default()
            };
            engine.run_streaming(1, &cfg);
        }
        None => {
            engine.run_round();
        }
    }
    std::fs::write(path, tracer.chrome_trace(None))
        .map_err(|e| format!("cannot write {}: {e}", path.display()))
}

/// Asserts the final live rollup matches every manifest's merged
/// snapshot byte-for-byte (both sides are timing-stripped already).
fn verify_live(path: &PathBuf, manifests: &[CampaignManifest]) -> Result<(), String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let v = JsonValue::parse(&text)
        .map_err(|e| format!("{}: invalid JSON: {e}", path.display()))?;
    let campaigns_obj = v
        .as_object()
        .and_then(|o| o.get("campaigns"))
        .and_then(JsonValue::as_object)
        .ok_or_else(|| format!("{}: missing campaigns object", path.display()))?;
    for m in manifests {
        let live_merged = campaigns_obj
            .get(&m.campaign)
            .and_then(JsonValue::as_object)
            .and_then(|c| c.get("merged_snapshot"))
            .ok_or_else(|| {
                format!(
                    "{}: campaign {} missing merged_snapshot",
                    path.display(),
                    m.campaign
                )
            })?
            .to_json();
        let manifest_merged = JsonValue::parse(&m.merged_snapshot().to_json())
            .expect("snapshot serialization is valid JSON")
            .to_json();
        if live_merged != manifest_merged {
            return Err(format!(
                "live snapshot for campaign {} diverges from the manifest rollup",
                m.campaign
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn defaults_are_fast_tier_all_campaigns() {
        let cli = parse_cli(&args(&[])).unwrap();
        assert_eq!(cli.tier, Tier::Fast);
        assert!(cli.names.is_empty());
        assert_eq!(cli.out, PathBuf::from("manifests"));
        assert!(!cli.fresh && !cli.list && !cli.live);
        assert_eq!(cli.trace_out, None);
        assert_eq!(cli.streaming, None);
    }

    #[test]
    fn parses_full_invocation() {
        let cli = parse_cli(&args(&[
            "--tier", "full", "--out", "m", "--campaign", "fig11", "--campaign", "fig12",
            "--seed", "99", "--workers", "3", "--fresh", "--live", "--trace-out", "t.json",
            "--streaming", "threaded",
        ]))
        .unwrap();
        assert_eq!(cli.tier, Tier::Full);
        assert_eq!(cli.out, PathBuf::from("m"));
        assert_eq!(cli.names, vec!["fig11", "fig12"]);
        assert_eq!(cli.seed, 99);
        assert_eq!(cli.workers, Some(3));
        assert!(cli.fresh);
        assert!(cli.live);
        assert_eq!(cli.trace_out, Some(PathBuf::from("t.json")));
        assert_eq!(cli.streaming, Some(Scheduler::ThreadPerStage));
    }

    #[test]
    fn parses_inline_streaming_scheduler() {
        let cli = parse_cli(&args(&["--streaming", "inline"])).unwrap();
        assert_eq!(cli.streaming, Some(Scheduler::Inline));
    }

    #[test]
    fn parses_worksteal_streaming_schedulers() {
        for (flag, workers, pin) in [
            ("worksteal", 0, false),
            ("worksteal:4", 4, false),
            ("worksteal:pin", 0, true),
            ("worksteal:4:pin", 4, true),
        ] {
            let cli = parse_cli(&args(&["--streaming", flag])).unwrap();
            assert_eq!(
                cli.streaming,
                Some(Scheduler::WorkStealing { workers, pin }),
                "{flag}"
            );
            // The CLI name round-trips through Scheduler::name.
            assert_eq!(cli.streaming.unwrap().name(), flag);
        }
    }

    #[test]
    fn rejects_unknown_flags_and_bad_values() {
        assert!(parse_cli(&args(&["--bogus"])).is_err());
        assert!(parse_cli(&args(&["--tier", "paper"])).is_err());
        assert!(parse_cli(&args(&["--seed", "abc"])).is_err());
        assert!(parse_cli(&args(&["--campaign"])).is_err());
        assert!(parse_cli(&args(&["--streaming"])).is_err());
        assert!(parse_cli(&args(&["--streaming", "coalesced"])).is_err());
        assert!(parse_cli(&args(&["--streaming", "worksteal:x"])).is_err());
        // Unknown schedulers name the valid set.
        let err = parse_cli(&args(&["--streaming", "coalesced"]))
            .err()
            .expect("unknown scheduler must be rejected");
        assert!(
            err.contains(Scheduler::VALID_NAMES),
            "error should list valid schedulers: {err}"
        );
    }
}
