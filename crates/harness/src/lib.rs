//! # cbma-harness — batched campaign runner
//!
//! Reproduces the paper's evaluation as declarative **campaigns**: each
//! figure is a named grid of scenario points × replicates, run by a
//! bounded work-stealing worker pool with per-job deterministic RNG
//! streams, checkpointed to disk so interrupted campaigns resume, and
//! emitted as a canonical JSON [`CampaignManifest`] that is byte-identical
//! across same-seed runs.
//!
//! ```text
//! cargo run -p cbma-harness -- --tier fast --out manifests/
//! cargo run -p cbma-harness -- --campaign fig11 --campaign fig12
//! cargo run -p cbma-harness -- --list
//! ```
//!
//! The scenario physics live in `cbma_bench::scenarios`, shared with the
//! bench targets under `crates/bench/benches/`; this crate owns only the
//! orchestration: sharding, retries, checkpoints and the manifest format.
//! See EXPERIMENTS.md for the figure ↔ campaign mapping.

pub mod campaign;
pub mod campaigns;
pub mod checkpoint;
pub mod live;
pub mod manifest;
pub mod runner;
pub mod tier;

pub use campaign::{Campaign, CampaignPoint, JobCtx, PointBuilder};
pub use checkpoint::{CheckpointHeader, CheckpointStore};
pub use live::{LiveAggregator, LiveConfig, LivePublisher, LiveUpdate};
pub use manifest::{CampaignManifest, ManifestError, Measurement, PointResult, SCHEMA_VERSION};
pub use runner::{job_seed, run_campaign, HarnessError, RunnerConfig};
pub use tier::Tier;
