//! Shard checkpointing: resumable campaigns.
//!
//! Every completed point is persisted as one JSON file under the
//! campaign's checkpoint directory. On the next run the store replays
//! matching checkpoints instead of recomputing, so an interrupted campaign
//! resumes where it stopped. A checkpoint carries a header binding it to
//! `(campaign, tier, root seed, replicates, rounds, schema)`; any mismatch
//! — different seed, resized tier, renamed point — invalidates the file
//! and the point is recomputed. Writes are atomic (`.tmp` + rename), so a
//! kill mid-write never leaves a half checkpoint behind.

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use cbma::obs::json::JsonValue;

use crate::manifest::{PointResult, SCHEMA_VERSION};

/// The binding header every checkpoint must match to be replayed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointHeader {
    /// Campaign machine name.
    pub campaign: String,
    /// Tier label.
    pub tier: String,
    /// Root seed of the run.
    pub root_seed: u64,
    /// Replicates per point.
    pub replicates: u64,
    /// Rounds per replicate.
    pub rounds: u64,
}

impl CheckpointHeader {
    fn to_json_value(&self) -> JsonValue {
        let mut o = BTreeMap::new();
        o.insert("schema_version".into(), JsonValue::UInt(SCHEMA_VERSION));
        o.insert("campaign".into(), JsonValue::Str(self.campaign.clone()));
        o.insert("tier".into(), JsonValue::Str(self.tier.clone()));
        o.insert("root_seed".into(), JsonValue::UInt(self.root_seed));
        o.insert("replicates".into(), JsonValue::UInt(self.replicates));
        o.insert("rounds".into(), JsonValue::UInt(self.rounds));
        JsonValue::Object(o)
    }

    fn matches(&self, v: &JsonValue) -> bool {
        let Some(o) = v.as_object() else {
            return false;
        };
        let str_eq = |k: &str, want: &str| {
            o.get(k).and_then(JsonValue::as_str) == Some(want)
        };
        let u64_eq = |k: &str, want: u64| {
            o.get(k).and_then(JsonValue::as_u64) == Some(want)
        };
        u64_eq("schema_version", SCHEMA_VERSION)
            && str_eq("campaign", &self.campaign)
            && str_eq("tier", &self.tier)
            && u64_eq("root_seed", self.root_seed)
            && u64_eq("replicates", self.replicates)
            && u64_eq("rounds", self.rounds)
    }
}

/// A per-campaign checkpoint directory.
#[derive(Debug)]
pub struct CheckpointStore {
    dir: PathBuf,
    header: CheckpointHeader,
}

impl CheckpointStore {
    /// Opens (creating if needed) the store at `dir`.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>, header: CheckpointHeader) -> io::Result<CheckpointStore> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(CheckpointStore { dir, header })
    }

    /// The file a point checkpoints to.
    pub fn point_path(&self, index: usize) -> PathBuf {
        self.dir.join(format!("point_{index:04}.json"))
    }

    /// Loads the checkpoint for `index` if it exists, parses, matches the
    /// header and carries the expected point label. Any failure — missing
    /// file, torn/garbage JSON, stale header, renamed point — returns
    /// `None` and the caller recomputes.
    pub fn load(&self, index: usize, expected_label: &str) -> Option<PointResult> {
        let text = fs::read_to_string(self.point_path(index)).ok()?;
        let v = JsonValue::parse(&text).ok()?;
        let o = v.as_object()?;
        if !self.header.matches(o.get("header")?) {
            return None;
        }
        let result = PointResult::from_json_value(o.get("result")?).ok()?;
        if result.index != index || result.label != expected_label {
            return None;
        }
        Some(result)
    }

    /// Atomically persists a completed point.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the temp write or rename fails.
    pub fn store(&self, result: &PointResult) -> io::Result<PathBuf> {
        let mut o = BTreeMap::new();
        o.insert("header".to_string(), self.header.to_json_value());
        o.insert("result".to_string(), result.to_json_value());
        let mut text = JsonValue::Object(o).to_json();
        text.push('\n');

        let path = self.point_path(result.index);
        let tmp = path.with_extension("json.tmp");
        fs::write(&tmp, text)?;
        fs::rename(&tmp, &path)?;
        Ok(path)
    }

    /// The directory backing this store.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::Measurement;
    use cbma::obs::Snapshot;

    fn header() -> CheckpointHeader {
        CheckpointHeader {
            campaign: "figtest".into(),
            tier: "fast".into(),
            root_seed: 7,
            replicates: 2,
            rounds: 5,
        }
    }

    fn result(index: usize, label: &str) -> PointResult {
        PointResult {
            index,
            label: label.into(),
            params: BTreeMap::new(),
            totals: Measurement {
                rounds: 10,
                frames_sent: 20,
                frames_delivered: 18,
                frames_detected: 20,
                false_detections: 0,
                bit_errors: 0,
                bits_measured: 640,
            },
            replicate_fers: vec![0.1, 0.1],
            snapshot: Snapshot::new(),
        }
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "cbma-ckpt-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn store_then_load_round_trips() {
        let dir = tmpdir("rt");
        let store = CheckpointStore::open(&dir, header()).unwrap();
        let r = result(3, "p3");
        let path = store.store(&r).unwrap();
        assert!(path.ends_with("point_0003.json"));
        assert_eq!(store.load(3, "p3"), Some(r));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_and_garbage_files_are_skipped() {
        let dir = tmpdir("bad");
        let store = CheckpointStore::open(&dir, header()).unwrap();
        assert_eq!(store.load(0, "p0"), None);
        fs::write(store.point_path(0), "{ torn json").unwrap();
        assert_eq!(store.load(0, "p0"), None);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn header_mismatch_invalidates() {
        let dir = tmpdir("hdr");
        let store = CheckpointStore::open(&dir, header()).unwrap();
        store.store(&result(0, "p0")).unwrap();
        // Same dir, different root seed: checkpoint must not replay.
        let mut other = header();
        other.root_seed = 8;
        let store2 = CheckpointStore::open(&dir, other).unwrap();
        assert_eq!(store2.load(0, "p0"), None);
        // Original header still replays.
        assert!(store.load(0, "p0").is_some());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn label_mismatch_invalidates() {
        let dir = tmpdir("lbl");
        let store = CheckpointStore::open(&dir, header()).unwrap();
        store.store(&result(0, "p0")).unwrap();
        assert_eq!(store.load(0, "renamed"), None);
        let _ = fs::remove_dir_all(&dir);
    }
}
