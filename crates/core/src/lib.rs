//! # CBMA: Coded-Backscatter Multiple Access
//!
//! A faithful, fully-software reproduction of *CBMA: Coded-Backscatter
//! Multiple Access* (Mi et al., ICDCS 2019): concurrent multi-tag WiFi
//! backscatter with per-tag PN spreading, correlation-based asynchronous
//! decoding, impedance-switching power control at the passive tag
//! (Algorithm 1), and greedy/annealing node selection.
//!
//! This crate is the facade over the workspace:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`types`] | `cbma-types` | units, geometry, IQ, bits, seeding |
//! | [`dsp`] | `cbma-dsp` | filters, correlators, resampling, FFT |
//! | [`codes`] | `cbma-codes` | Gold and 2NC spreading-code families |
//! | [`channel`] | `cbma-channel` | Friis link budget, fading, interference |
//! | [`tag`] | `cbma-tag` | framing, CRC, impedance bank, OOK modulation |
//! | [`rx`] | `cbma-rx` | frame sync, user detection, decoding, ACKs |
//! | [`mac`] | `cbma-mac` | Algorithm 1, node selection, TDMA/FSA baselines |
//! | [`sim`] | `cbma-sim` | end-to-end engine, adaptation, experiments |
//! | [`obs`] | `cbma-obs` | metrics, stage timers, event sinks, JSON snapshots |
//!
//! # Quickstart
//!
//! ```
//! use cbma::prelude::*;
//!
//! // Two tags on the paper's bench: ES at (−50 cm, 0), RX at (50 cm, 0).
//! let scenario = Scenario::paper_default(vec![
//!     Point::new(0.0, 0.40),
//!     Point::new(0.0, -0.40),
//! ]);
//! let mut engine = Engine::new(scenario)?;
//! let stats = engine.run_rounds(20);
//! println!(
//!     "FER {:.2}%, aggregate modulated rate {}",
//!     stats.fer() * 100.0,
//!     stats.aggregate_symbol_rate(&PhyProfile::paper_default()),
//! );
//! assert!(stats.fer() < 0.5);
//! # Ok::<(), cbma_types::CbmaError>(())
//! ```
//!
//! # Closing the loop
//!
//! ```
//! use cbma::prelude::*;
//! use cbma::sim::adaptation::Adapter;
//!
//! let scenario = Scenario::paper_default(vec![
//!     Point::new(0.0, 0.4),
//!     Point::new(0.3, -0.55),
//! ]);
//! let mut engine = Engine::new(scenario)?;
//! let adapter = Adapter::paper_default(8);
//! let report = adapter.run_power_control(&mut engine);
//! println!("power control finished at FER {:.2}%", report.final_fer() * 100.0);
//! # Ok::<(), cbma_types::CbmaError>(())
//! ```

pub mod system;

pub use cbma_channel as channel;
pub use cbma_codes as codes;
pub use cbma_dsp as dsp;
pub use cbma_mac as mac;
pub use cbma_obs as obs;
pub use cbma_rx as rx;
pub use cbma_sim as sim;
pub use cbma_tag as tag;
pub use cbma_types as types;

/// One-stop import for applications and examples.
pub mod prelude {
    pub use cbma_sim::prelude::*;
    pub use cbma_types::{Bits, CbmaError, Iq, Result};
}

pub use cbma_sim::{Engine, RoundOutcome, Scenario};
pub use cbma_types::{CbmaError, Result};
pub use system::{CbmaSystem, SystemReport};

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_are_wired() {
        // Compile-time sanity: the core types are reachable through the
        // facade paths users will write.
        let _ = crate::prelude::Point::new(0.0, 0.0);
        let _ = crate::codes::FamilyKind::Gold { degree: 5 };
        let _ = crate::tag::ImpedanceState::Open;
        let _ = crate::mac::access::TdmaAccess::new(3);
        let _: crate::Result<()> = Ok(());
    }
}
