//! The high-level `CbmaSystem` API.
//!
//! Wraps scenario construction, the simulation engine, and the adaptation
//! stack behind one builder so applications can go from "here are my tag
//! positions" to delivered-frame statistics in a few lines, without
//! touching the per-crate machinery.
//!
//! # Examples
//!
//! ```
//! use cbma::system::CbmaSystem;
//! use cbma::prelude::*;
//!
//! let mut system = CbmaSystem::builder()
//!     .tags(vec![Point::new(0.0, 0.4), Point::new(0.0, -0.4)])
//!     .seed(7)
//!     .build()?;
//! let report = system.run(20);
//! assert!(report.fer < 0.5);
//! # Ok::<(), cbma_types::CbmaError>(())
//! ```

use cbma_sim::adaptation::Adapter;
use cbma_sim::{Engine, RunStats, Scenario};
use cbma_types::geometry::Point;
use cbma_types::units::Hertz;
use cbma_types::{CbmaError, Result};

/// Builder for a [`CbmaSystem`].
#[derive(Debug, Clone, Default)]
pub struct CbmaSystemBuilder {
    tags: Vec<Point>,
    seed: Option<u64>,
    chip_rate: Option<Hertz>,
    payload_len: Option<usize>,
    power_control: bool,
    sic_passes: Option<usize>,
    spare_positions: Vec<Point>,
    scenario_override: Option<Scenario>,
}

impl CbmaSystemBuilder {
    /// Places the tags (required).
    pub fn tags(mut self, tags: Vec<Point>) -> Self {
        self.tags = tags;
        self
    }

    /// Root seed (defaults to the scenario default).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Tag symbol rate (defaults to the paper's 1 Mcps).
    pub fn chip_rate(mut self, rate: Hertz) -> Self {
        self.chip_rate = Some(rate);
        self
    }

    /// Payload bytes per frame (defaults to 8).
    pub fn payload_len(mut self, len: usize) -> Self {
        self.payload_len = Some(len);
        self
    }

    /// Run Algorithm 1 power control before measuring.
    pub fn power_control(mut self, enabled: bool) -> Self {
        self.power_control = enabled;
        self
    }

    /// Enable receiver-side successive interference cancellation.
    pub fn sic_passes(mut self, passes: usize) -> Self {
        self.sic_passes = Some(passes);
        self
    }

    /// Spare positions node selection may move bad tags to (implies
    /// power control).
    pub fn spare_positions(mut self, spares: Vec<Point>) -> Self {
        self.spare_positions = spares;
        self
    }

    /// Replaces the generated scenario wholesale (advanced use; the other
    /// builder knobs are ignored except adaptation settings).
    pub fn scenario(mut self, scenario: Scenario) -> Self {
        self.scenario_override = Some(scenario);
        self
    }

    /// Builds the system.
    ///
    /// # Errors
    ///
    /// Returns [`CbmaError::InvalidConfig`] when no tags were given, and
    /// propagates scenario validation errors.
    pub fn build(self) -> Result<CbmaSystem> {
        let scenario = match self.scenario_override {
            Some(s) => s,
            None => {
                if self.tags.is_empty() {
                    return Err(CbmaError::InvalidConfig(
                        "CbmaSystem needs at least one tag position".into(),
                    ));
                }
                let mut s = Scenario::paper_default(self.tags);
                if let Some(seed) = self.seed {
                    s.seed = seed;
                }
                if let Some(rate) = self.chip_rate {
                    s.phy = s.phy.with_chip_rate(rate);
                }
                if let Some(len) = self.payload_len {
                    s.payload_len = len;
                }
                if let Some(passes) = self.sic_passes {
                    s.rx_config.sic_passes = passes;
                }
                s
            }
        };
        let engine = Engine::new(scenario)?;
        Ok(CbmaSystem {
            engine,
            power_control: self.power_control || !self.spare_positions.is_empty(),
            spare_positions: self.spare_positions,
            adapted: false,
        })
    }
}

/// The result of a [`CbmaSystem::run`].
#[derive(Debug, Clone, PartialEq)]
pub struct SystemReport {
    /// Frame error rate over the run.
    pub fer: f64,
    /// Aggregate modulated symbol rate (the paper's headline metric), Hz.
    pub aggregate_symbol_rate: f64,
    /// Aggregate information goodput, bit/s.
    pub goodput: f64,
    /// Per-tag ACK ratios.
    pub per_tag_ack: Vec<f64>,
    /// The raw statistics, for further analysis.
    pub stats: RunStats,
}

/// A ready-to-run CBMA deployment.
#[derive(Debug)]
pub struct CbmaSystem {
    engine: Engine,
    power_control: bool,
    spare_positions: Vec<Point>,
    adapted: bool,
}

impl CbmaSystem {
    /// Starts a builder.
    pub fn builder() -> CbmaSystemBuilder {
        CbmaSystemBuilder::default()
    }

    /// The underlying engine (full control when the facade is not
    /// enough).
    pub fn engine_mut(&mut self) -> &mut Engine {
        &mut self.engine
    }

    /// Runs `packets` collided packets and reports. The first call runs
    /// the configured adaptation (power control / node selection) before
    /// measuring; later calls measure directly.
    pub fn run(&mut self, packets: usize) -> SystemReport {
        if self.power_control && !self.adapted {
            let adapter = Adapter::paper_default(packets.max(4));
            if self.spare_positions.is_empty() {
                let _ = adapter.run_power_control(&mut self.engine);
            } else {
                let _ = adapter.run_with_node_selection(&mut self.engine, &self.spare_positions);
            }
            self.adapted = true;
        }
        let stats = self.engine.run_rounds(packets);
        let scenario = self.engine.scenario();
        let spreading = scenario
            .family
            .build()
            .map(|f| f.spreading_factor())
            .unwrap_or(1);
        SystemReport {
            fer: stats.fer(),
            aggregate_symbol_rate: stats.aggregate_symbol_rate(&scenario.phy).get(),
            goodput: stats
                .goodput(&scenario.phy, scenario.payload_len, spreading)
                .get(),
            per_tag_ack: stats.ack_ratios(),
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cbma_tag::ImpedanceState;

    fn positions() -> Vec<Point> {
        vec![Point::new(0.0, 0.4), Point::new(0.0, -0.4)]
    }

    #[test]
    fn builder_produces_a_working_system() {
        let mut system = CbmaSystem::builder()
            .tags(positions())
            .seed(5)
            .build()
            .unwrap();
        for t in system.engine_mut().tags_mut() {
            t.set_impedance(ImpedanceState::Open);
        }
        let report = system.run(10);
        assert!(report.fer <= 1.0);
        assert_eq!(report.per_tag_ack.len(), 2);
        assert!(report.aggregate_symbol_rate > 0.0);
        assert!(report.goodput > 0.0);
    }

    #[test]
    fn empty_tags_rejected() {
        assert!(matches!(
            CbmaSystem::builder().build(),
            Err(CbmaError::InvalidConfig(_))
        ));
    }

    #[test]
    fn builder_knobs_reach_the_scenario() {
        let mut system = CbmaSystem::builder()
            .tags(positions())
            .chip_rate(Hertz::from_mhz(2.0))
            .payload_len(4)
            .sic_passes(1)
            .seed(9)
            .build()
            .unwrap();
        let s = system.engine_mut().scenario();
        assert_eq!(s.phy.chip_rate, Hertz::from_mhz(2.0));
        assert_eq!(s.payload_len, 4);
        assert_eq!(s.rx_config.sic_passes, 1);
        assert_eq!(s.seed, 9);
    }

    #[test]
    fn power_control_runs_once() {
        let mut system = CbmaSystem::builder()
            .tags(positions())
            .power_control(true)
            .seed(11)
            .build()
            .unwrap();
        let first = system.run(6);
        let second = system.run(6);
        // Adaptation happened before the first run; the second run
        // measures the already-adapted system.
        assert!(first.fer <= 1.0 && second.fer <= 1.0);
    }

    #[test]
    fn scenario_override_wins() {
        let scenario = Scenario::clean(positions()).with_seed(77);
        let mut system = CbmaSystem::builder()
            .tags(vec![Point::ORIGIN]) // ignored
            .scenario(scenario)
            .build()
            .unwrap();
        assert_eq!(system.engine_mut().scenario().seed, 77);
        assert_eq!(system.engine_mut().tags().len(), 2);
    }
}
