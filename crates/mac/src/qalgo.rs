//! EPC Gen2-style Q-algorithm — adaptive framed slotted ALOHA (ref. \[25\]).
//!
//! The paper's related work cites the EPC UHF Gen2 air-interface protocol
//! as the deployed TDMA/FSA baseline. Gen2 adapts its frame size online:
//! the reader keeps a floating-point parameter Q; each inventory round
//! uses 2^⌈Q⌉ slots; empty slots decrement Q by a step C, collision slots
//! increment it, and singleton slots leave it unchanged — steering the
//! frame size toward the tag population without knowing it.
//!
//! [`QAlgoAccess`] implements that loop behind the [`AccessScheme`] trait
//! so it can be driven by the same harness as TDMA/FSA/CBMA.

use rand::Rng;

use crate::access::AccessScheme;

/// The Gen2 Q-algorithm as an access scheme.
#[derive(Debug, Clone)]
pub struct QAlgoAccess {
    n: usize,
    q: f64,
    c: f64,
    /// Slot assignments for the current frame.
    frame: Vec<Vec<u32>>,
    cursor: usize,
}

impl QAlgoAccess {
    /// Creates the scheme for `n` tags with initial Q = 4 and the
    /// standard adjustment step C = 0.3.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize) -> QAlgoAccess {
        QAlgoAccess::with_parameters(n, 4.0, 0.3)
    }

    /// Creates the scheme with explicit initial Q and step C.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero, Q is outside [0, 15], or C is outside
    /// (0, 0.5].
    pub fn with_parameters(n: usize, q0: f64, c: f64) -> QAlgoAccess {
        assert!(n > 0, "need at least one tag");
        assert!((0.0..=15.0).contains(&q0), "Q must be in [0, 15]");
        assert!(c > 0.0 && c <= 0.5, "C must be in (0, 0.5]");
        QAlgoAccess {
            n,
            q: q0,
            c,
            frame: Vec::new(),
            cursor: 0,
        }
    }

    /// The current Q parameter.
    #[inline]
    pub fn q(&self) -> f64 {
        self.q
    }

    /// The frame size the current Q implies: 2^⌈Q⌉ (clamped to ≥ 1).
    pub fn frame_size(&self) -> usize {
        1usize << (self.q.round().clamp(0.0, 15.0) as u32)
    }

    fn deal_frame<'a>(&mut self, rng: &mut (dyn rand::RngCore + 'a)) {
        let size = self.frame_size();
        self.frame = vec![Vec::new(); size];
        for tag in 0..self.n as u32 {
            let slot = rng.gen_range(0..size);
            self.frame[slot].push(tag);
        }
        self.cursor = 0;
    }
}

impl AccessScheme for QAlgoAccess {
    fn name(&self) -> &'static str {
        "q-algorithm"
    }
    fn n_tags(&self) -> usize {
        self.n
    }
    fn next_slot<'a>(&mut self, rng: &mut (dyn rand::RngCore + 'a)) -> Vec<u32> {
        if self.cursor >= self.frame.len() {
            self.deal_frame(rng);
        }
        let slot = self.frame[self.cursor].clone();
        self.cursor += 1;
        // Q adjustment on the observed slot outcome.
        match slot.len() {
            0 => self.q = (self.q - self.c).max(0.0),
            1 => {}
            _ => self.q = (self.q + self.c).min(15.0),
        }
        // Gen2's QueryAdjust: when the rounded Q changes, the reader
        // abandons the rest of the frame and re-queries with the new
        // frame size (without this, long frames integrate the update far
        // past the operating point and Q oscillates rail to rail).
        if self.frame_size() != self.frame.len() {
            self.cursor = self.frame.len();
        }
        slot
    }
    fn ideal_per_tag_slot_share(&self) -> f64 {
        // At the converged operating point (frame ≈ population) Gen2
        // approaches slotted-ALOHA efficiency 1/e shared by n tags.
        1.0 / (std::f64::consts::E * self.n as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn q_converges_near_log2_population() {
        // 64 tags: the stationary Q should hover near log2(64) = 6.
        let mut access = QAlgoAccess::new(64);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20_000 {
            access.next_slot(&mut rng);
        }
        assert!(
            (4.5..=7.5).contains(&access.q()),
            "Q = {} did not converge near 6",
            access.q()
        );
    }

    #[test]
    fn small_population_shrinks_the_frame() {
        let mut access = QAlgoAccess::new(2);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..5_000 {
            access.next_slot(&mut rng);
        }
        assert!(
            access.q() < 3.0,
            "Q = {} should shrink for 2 tags",
            access.q()
        );
    }

    #[test]
    fn access_is_fair_across_tags() {
        // QueryAdjust abandons frames mid-way, so per-frame appearance is
        // not guaranteed — but over many frames every tag gets a similar
        // number of opportunities.
        let mut access = QAlgoAccess::with_parameters(10, 4.0, 0.3);
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = vec![0usize; 10];
        for _ in 0..20_000 {
            for t in access.next_slot(&mut rng) {
                seen[t as usize] += 1;
            }
        }
        let max = *seen.iter().max().unwrap() as f64;
        let min = *seen.iter().min().unwrap() as f64;
        assert!(min > 0.0);
        assert!(max / min < 1.3, "unfair access: {seen:?}");
    }

    #[test]
    fn singleton_efficiency_approaches_one_over_e() {
        let mut access = QAlgoAccess::new(32);
        let mut rng = StdRng::seed_from_u64(4);
        // Warm up to the operating point.
        for _ in 0..5_000 {
            access.next_slot(&mut rng);
        }
        let mut singletons = 0usize;
        let mut transmissions = 0usize;
        let trials = 50_000;
        for _ in 0..trials {
            let slot = access.next_slot(&mut rng);
            transmissions += slot.len();
            if slot.len() == 1 {
                singletons += 1;
            }
        }
        let efficiency = singletons as f64 / transmissions.max(1) as f64;
        // Slotted-ALOHA singleton efficiency is 1/e ≈ 0.37 per
        // transmission at the optimum; Gen2 oscillates around it.
        assert!(
            (0.25..=0.50).contains(&efficiency),
            "singleton efficiency {efficiency}"
        );
    }

    #[test]
    fn parameters_are_validated() {
        assert!(std::panic::catch_unwind(|| QAlgoAccess::with_parameters(0, 4.0, 0.3)).is_err());
        assert!(std::panic::catch_unwind(|| QAlgoAccess::with_parameters(4, 16.0, 0.3)).is_err());
        assert!(std::panic::catch_unwind(|| QAlgoAccess::with_parameters(4, 4.0, 0.6)).is_err());
    }

    #[test]
    fn trait_metadata() {
        let access = QAlgoAccess::new(10);
        assert_eq!(access.name(), "q-algorithm");
        assert_eq!(access.n_tags(), 10);
        assert!(access.ideal_per_tag_slot_share() < 0.04);
        assert_eq!(access.frame_size(), 16);
    }
}
