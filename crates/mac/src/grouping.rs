//! Tag grouping — §V-C / §VIII-D.
//!
//! "When there are many tags distributed in the environment, we choose
//! some of them in a group to transmit data" (§V-C), and "if the signal
//! strength of the tags within a group are almost the same, the decoding
//! performance will be notably good. Hence, the starvation problem can be
//! probably solved by selecting different groups of tags" (§VIII-D).
//!
//! [`GroupPlan`] partitions a population into groups no larger than the
//! concurrency the code family supports, either round-robin or by sorting
//! on the theoretical received power so each group is *power-homogeneous*
//! (the property Table II shows decoding needs). [`GroupedCbmaAccess`]
//! rotates the groups slot-by-slot, giving every tag airtime (no
//! starvation by construction).

use crate::access::AccessScheme;

/// A partition of tag ids into transmission groups.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupPlan {
    groups: Vec<Vec<u32>>,
}

impl GroupPlan {
    /// Round-robin partition: tag i joins group i mod ⌈n/size⌉.
    /// Preserves arbitrary mixtures (the baseline grouping).
    ///
    /// # Panics
    ///
    /// Panics if `group_size` is zero or `n_tags` is zero.
    pub fn round_robin(n_tags: usize, group_size: usize) -> GroupPlan {
        assert!(n_tags > 0, "need at least one tag");
        assert!(group_size > 0, "group size must be non-zero");
        let n_groups = n_tags.div_ceil(group_size);
        let mut groups = vec![Vec::new(); n_groups];
        for tag in 0..n_tags {
            groups[tag % n_groups].push(tag as u32);
        }
        GroupPlan { groups }
    }

    /// Power-homogeneous partition: tags are sorted by their (theoretical)
    /// received power and sliced into consecutive groups, so the power
    /// spread *within* each group is minimized — §VIII-D's recipe for
    /// good decoding without starving weak tags.
    ///
    /// `scores` holds one value per tag (e.g. dBm from the Friis field);
    /// higher is stronger.
    ///
    /// # Panics
    ///
    /// Panics if `scores` is empty or `group_size` is zero.
    pub fn by_power(scores: &[f64], group_size: usize) -> GroupPlan {
        assert!(!scores.is_empty(), "need at least one tag");
        assert!(group_size > 0, "group size must be non-zero");
        let mut order: Vec<u32> = (0..scores.len() as u32).collect();
        order.sort_by(|&a, &b| {
            scores[b as usize]
                .partial_cmp(&scores[a as usize])
                .expect("scores are finite")
        });
        let groups = order.chunks(group_size).map(<[u32]>::to_vec).collect();
        GroupPlan { groups }
    }

    /// The groups, in rotation order.
    pub fn groups(&self) -> &[Vec<u32>] {
        &self.groups
    }

    /// Number of groups.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// Whether the plan holds no groups (never true for constructors).
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Largest within-group spread of `scores` (diagnostic: smaller is
    /// better for decoding, per Table II).
    pub fn max_group_spread(&self, scores: &[f64]) -> f64 {
        self.groups
            .iter()
            .map(|g| {
                let vals: Vec<f64> = g.iter().map(|&t| scores[t as usize]).collect();
                let max = vals.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                let min = vals.iter().copied().fold(f64::INFINITY, f64::min);
                max - min
            })
            .fold(0.0, f64::max)
    }
}

/// CBMA access over a group plan: slot t is group t mod len, every tag in
/// the scheduled group transmits concurrently.
#[derive(Debug, Clone)]
pub struct GroupedCbmaAccess {
    plan: GroupPlan,
    n_tags: usize,
    next: usize,
}

impl GroupedCbmaAccess {
    /// Creates the scheme over a plan covering `n_tags` tags.
    pub fn new(plan: GroupPlan, n_tags: usize) -> GroupedCbmaAccess {
        GroupedCbmaAccess {
            plan,
            n_tags,
            next: 0,
        }
    }
}

impl AccessScheme for GroupedCbmaAccess {
    fn name(&self) -> &'static str {
        "cbma-grouped"
    }
    fn n_tags(&self) -> usize {
        self.n_tags
    }
    fn next_slot<'a>(&mut self, _rng: &mut (dyn rand::RngCore + 'a)) -> Vec<u32> {
        let group = self.plan.groups()[self.next].clone();
        self.next = (self.next + 1) % self.plan.len();
        group
    }
    fn ideal_per_tag_slot_share(&self) -> f64 {
        1.0 / self.plan.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn round_robin_covers_everyone_within_size() {
        let plan = GroupPlan::round_robin(23, 10);
        assert_eq!(plan.len(), 3);
        let mut seen = [false; 23];
        for g in plan.groups() {
            assert!(g.len() <= 10);
            for &t in g {
                assert!(!seen[t as usize], "tag {t} scheduled twice");
                seen[t as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn by_power_minimizes_within_group_spread() {
        // Two clusters of power levels: homogeneous grouping separates
        // them; round-robin mixes them.
        let scores = vec![-50.0, -51.0, -52.0, -70.0, -71.0, -72.0];
        let homogeneous = GroupPlan::by_power(&scores, 3);
        let mixed = GroupPlan::round_robin(6, 3);
        assert!(homogeneous.max_group_spread(&scores) <= 2.0 + 1e-9);
        assert!(mixed.max_group_spread(&scores) >= 19.0);
    }

    #[test]
    fn by_power_groups_strongest_first() {
        let scores = vec![-60.0, -40.0, -50.0];
        let plan = GroupPlan::by_power(&scores, 2);
        assert_eq!(plan.groups()[0], vec![1, 2]);
        assert_eq!(plan.groups()[1], vec![0]);
    }

    #[test]
    fn grouped_access_rotates_without_starvation() {
        let plan = GroupPlan::round_robin(7, 3);
        let n_groups = plan.len();
        let mut access = GroupedCbmaAccess::new(plan, 7);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = vec![0usize; 7];
        for _ in 0..n_groups * 4 {
            for t in access.next_slot(&mut rng) {
                counts[t as usize] += 1;
            }
        }
        assert!(
            counts.iter().all(|&c| c == 4),
            "every tag transmits once per rotation: {counts:?}"
        );
    }

    #[test]
    fn ideal_share_reflects_rotation() {
        let plan = GroupPlan::round_robin(10, 5);
        let access = GroupedCbmaAccess::new(plan, 10);
        assert!((access.ideal_per_tag_slot_share() - 0.5).abs() < 1e-12);
        assert_eq!(access.name(), "cbma-grouped");
        assert_eq!(access.n_tags(), 10);
    }

    #[test]
    #[should_panic(expected = "group size")]
    fn zero_group_size_panics() {
        GroupPlan::round_robin(5, 0);
    }
}
