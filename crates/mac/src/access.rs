//! Who-transmits-when: CBMA concurrency and the TDMA/FSA baselines.
//!
//! The paper's headline claim — ">10× backscatter throughput versus
//! single-tag solutions" — compares concurrent CBMA against schemes that
//! serialize the channel. [`AccessScheme`] abstracts the per-round
//! transmitter set so the simulation engine and the throughput benches can
//! drive all three:
//!
//! * [`CbmaAccess`] — every tag transmits every round (code-domain
//!   separation),
//! * [`TdmaAccess`] — deterministic round-robin, one tag per slot (the
//!   idealized single-tag baseline; §I notes real FSA/TDMA need a central
//!   coordinator),
//! * [`FsaAccess`] — framed slotted ALOHA: per frame, each tag picks one
//!   of F slots uniformly at random; slots chosen by more than one tag
//!   collide and are lost (the random-access baseline used by RFID
//!   Gen2-style systems, ref. \[25\]).

use rand::Rng;

/// A medium-access scheme: yields the set of tag ids transmitting in each
/// successive slot.
pub trait AccessScheme: std::fmt::Debug {
    /// Scheme name for reports.
    fn name(&self) -> &'static str;

    /// Number of tags managed.
    fn n_tags(&self) -> usize;

    /// Tag ids transmitting in the next slot. `rng` feeds randomized
    /// schemes; deterministic schemes ignore it.
    fn next_slot<'a>(&mut self, rng: &mut (dyn rand::RngCore + 'a)) -> Vec<u32>;

    /// Expected fraction of slots in which a given tag delivers a frame,
    /// assuming collisions are fatal and the channel is otherwise perfect.
    /// Used as the analytic cross-check in the throughput bench.
    fn ideal_per_tag_slot_share(&self) -> f64;
}

/// All tags transmit concurrently every slot.
#[derive(Debug, Clone)]
pub struct CbmaAccess {
    n: usize,
}

impl CbmaAccess {
    /// Creates the scheme for `n` tags.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize) -> CbmaAccess {
        assert!(n > 0, "need at least one tag");
        CbmaAccess { n }
    }
}

impl AccessScheme for CbmaAccess {
    fn name(&self) -> &'static str {
        "cbma"
    }
    fn n_tags(&self) -> usize {
        self.n
    }
    fn next_slot<'a>(&mut self, _rng: &mut (dyn rand::RngCore + 'a)) -> Vec<u32> {
        (0..self.n as u32).collect()
    }
    fn ideal_per_tag_slot_share(&self) -> f64 {
        1.0
    }
}

/// Deterministic round-robin: slot t belongs to tag t mod n.
#[derive(Debug, Clone)]
pub struct TdmaAccess {
    n: usize,
    next: usize,
}

impl TdmaAccess {
    /// Creates the scheme for `n` tags.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize) -> TdmaAccess {
        assert!(n > 0, "need at least one tag");
        TdmaAccess { n, next: 0 }
    }
}

impl AccessScheme for TdmaAccess {
    fn name(&self) -> &'static str {
        "tdma"
    }
    fn n_tags(&self) -> usize {
        self.n
    }
    fn next_slot<'a>(&mut self, _rng: &mut (dyn rand::RngCore + 'a)) -> Vec<u32> {
        let id = self.next as u32;
        self.next = (self.next + 1) % self.n;
        vec![id]
    }
    fn ideal_per_tag_slot_share(&self) -> f64 {
        1.0 / self.n as f64
    }
}

/// Framed slotted ALOHA with frame size F.
#[derive(Debug, Clone)]
pub struct FsaAccess {
    n: usize,
    frame_size: usize,
    /// Slot assignments for the current frame, one per slot.
    frame: Vec<Vec<u32>>,
    cursor: usize,
}

impl FsaAccess {
    /// Creates the scheme with an explicit frame size.
    ///
    /// # Panics
    ///
    /// Panics if `n` or `frame_size` is zero.
    pub fn new(n: usize, frame_size: usize) -> FsaAccess {
        assert!(n > 0, "need at least one tag");
        assert!(frame_size > 0, "frame size must be non-zero");
        FsaAccess {
            n,
            frame_size,
            frame: Vec::new(),
            cursor: 0,
        }
    }

    /// The throughput-optimal configuration F = n.
    pub fn optimal(n: usize) -> FsaAccess {
        FsaAccess::new(n, n)
    }

    /// The configured frame size.
    #[inline]
    pub fn frame_size(&self) -> usize {
        self.frame_size
    }

    fn deal_frame<'a>(&mut self, rng: &mut (dyn rand::RngCore + 'a)) {
        self.frame = vec![Vec::new(); self.frame_size];
        for tag in 0..self.n as u32 {
            let slot = rng.gen_range(0..self.frame_size);
            self.frame[slot].push(tag);
        }
        self.cursor = 0;
    }
}

impl AccessScheme for FsaAccess {
    fn name(&self) -> &'static str {
        "fsa"
    }
    fn n_tags(&self) -> usize {
        self.n
    }
    fn next_slot<'a>(&mut self, rng: &mut (dyn rand::RngCore + 'a)) -> Vec<u32> {
        if self.cursor >= self.frame.len() {
            self.deal_frame(rng);
        }
        let slot = self.frame[self.cursor].clone();
        self.cursor += 1;
        slot
    }
    fn ideal_per_tag_slot_share(&self) -> f64 {
        // P(success in a given slot for a given tag) = (1/F)·(1−1/F)^(n−1);
        // per frame a tag sends once, so per-slot share multiplies by 1.
        let f = self.frame_size as f64;
        (1.0 / f) * (1.0 - 1.0 / f).powi(self.n as i32 - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn cbma_all_tags_every_slot() {
        let mut s = CbmaAccess::new(5);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..3 {
            assert_eq!(s.next_slot(&mut rng), vec![0, 1, 2, 3, 4]);
        }
        assert_eq!(s.ideal_per_tag_slot_share(), 1.0);
        assert_eq!(s.name(), "cbma");
    }

    #[test]
    fn tdma_round_robins() {
        let mut s = TdmaAccess::new(3);
        let mut rng = StdRng::seed_from_u64(1);
        let order: Vec<Vec<u32>> = (0..6).map(|_| s.next_slot(&mut rng)).collect();
        assert_eq!(
            order,
            vec![vec![0], vec![1], vec![2], vec![0], vec![1], vec![2]]
        );
        assert!((s.ideal_per_tag_slot_share() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn fsa_every_tag_appears_once_per_frame() {
        let mut s = FsaAccess::optimal(8);
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = vec![0usize; 8];
        for _ in 0..8 {
            for id in s.next_slot(&mut rng) {
                seen[id as usize] += 1;
            }
        }
        assert_eq!(seen, vec![1; 8], "each tag transmits once per frame");
    }

    #[test]
    fn fsa_ideal_share_matches_simulation() {
        let mut s = FsaAccess::optimal(10);
        let mut rng = StdRng::seed_from_u64(3);
        let mut success = 0usize;
        let slots = 100_000;
        for _ in 0..slots {
            if s.next_slot(&mut rng).len() == 1 {
                success += 1;
            }
        }
        // Fraction of singleton slots = n × per-tag share.
        let measured = success as f64 / slots as f64;
        let expected = 10.0 * s.ideal_per_tag_slot_share();
        assert!(
            (measured - expected).abs() < 0.01,
            "measured {measured}, expected {expected}"
        );
    }

    #[test]
    fn cbma_beats_baselines_by_10x_at_10_tags() {
        // The analytic core of the paper's headline: concurrent access
        // carries 10× TDMA and ≈27× optimal FSA at n = 10.
        let cbma = CbmaAccess::new(10);
        let tdma = TdmaAccess::new(10);
        let fsa = FsaAccess::optimal(10);
        let cbma_total = 10.0 * cbma.ideal_per_tag_slot_share();
        let tdma_total = 10.0 * tdma.ideal_per_tag_slot_share();
        let fsa_total = 10.0 * fsa.ideal_per_tag_slot_share();
        assert!((cbma_total / tdma_total - 10.0).abs() < 1e-9);
        assert!(cbma_total / fsa_total > 10.0);
    }

    #[test]
    fn schemes_are_object_safe() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut schemes: Vec<Box<dyn AccessScheme>> = vec![
            Box::new(CbmaAccess::new(2)),
            Box::new(TdmaAccess::new(2)),
            Box::new(FsaAccess::optimal(2)),
        ];
        for s in schemes.iter_mut() {
            assert_eq!(s.n_tags(), 2);
            let t = s.next_slot(&mut rng);
            assert!(t.iter().all(|&id| id < 2));
        }
    }

    #[test]
    #[should_panic(expected = "at least one tag")]
    fn zero_tags_panics() {
        CbmaAccess::new(0);
    }
}
